GO ?= go

.PHONY: all build test bench bench-smoke bench-json bench-json-smoke serve-smoke vet fmt-check lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every table and figure of the paper
# plus the checkpointed-vs-from-reset campaign engine comparison.
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark, no unit tests: cheap CI smoke that
# exercises the checkpointed campaign speedup path on every PR.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full benchmark suite distilled to JSON (benchmark name -> ns/op plus
# custom metrics). BENCH_PR2.json is the committed perf baseline; rerun
# this target on comparable hardware to refresh it.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 2s -out BENCH_PR2.json

# CI variant: one iteration of every benchmark, JSON to stdout. Validates
# the whole suite and the benchjson pipeline without committing numbers.
bench-json-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x -out -

# Hermetic service smoke: builds faultserverd and faultcampaign, boots
# the daemon on an ephemeral port, submits one small campaign over HTTP
# twice, and asserts one engine execution plus byte-identical results
# between the server and `faultcampaign -json`.
serve-smoke:
	$(GO) run ./cmd/servesmoke

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check
