GO ?= go

.PHONY: all build test bench bench-smoke vet fmt-check lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every table and figure of the paper
# plus the checkpointed-vs-from-reset campaign engine comparison.
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark, no unit tests: cheap CI smoke that
# exercises the checkpointed campaign speedup path on every PR.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check
