GO ?= go

# Tolerated fractional throughput regression for bench-check (0.15 = 15%).
# Widen it when gating on hardware that differs from the baseline's.
BENCH_TOLERANCE ?= 0.15

.PHONY: all build test bench bench-smoke bench-json bench-json-smoke bench-check serve-smoke shard-smoke vet fmt-check staticcheck lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every table and figure of the paper
# plus the checkpointed-vs-from-reset campaign engine comparison.
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark, no unit tests: cheap CI smoke that
# exercises the checkpointed campaign speedup path on every PR.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full benchmark suite distilled to JSON (benchmark name -> ns/op plus
# custom metrics). BENCH_PR2.json is the committed perf baseline; rerun
# this target on comparable hardware to refresh it.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 2s -out BENCH_PR2.json

# CI variant: one iteration of every benchmark, JSON to stdout. Validates
# the whole suite and the benchjson pipeline without committing numbers.
bench-json-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x -out -

# Benchmark-regression gate: measure the speed-critical benchmarks (the
# engine throughput set: RTL cycles/s, ISS inst/s, campaign exp/s) and
# fail if any throughput metric regresses more than BENCH_TOLERANCE
# against the committed BENCH_PR2.json baseline. CampaignTransient is
# measured alongside so transient-model throughput is tracked in every
# gate run; absent from the committed baseline it cannot regress the
# permanent numbers (the gate only compares metrics present on both
# sides), and it joins the gate when the baseline is next refreshed.
bench-check:
	$(GO) run ./cmd/benchjson \
		-bench '^Benchmark(RTLExecution|ISSExecution|CampaignCheckpointed|CampaignFromReset|CampaignTransient)$$' \
		-benchtime 2s -out - -baseline BENCH_PR2.json -max-regress $(BENCH_TOLERANCE)

# Hermetic service smoke: builds faultserverd and faultcampaign, boots
# the daemon on an ephemeral port, submits one small campaign over HTTP
# twice, and asserts one engine execution plus byte-identical results
# between the server and `faultcampaign -json`.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# Hermetic sharding smoke: boots a remote-only shard coordinator plus 3
# worker processes, runs a Figure-4-sized campaign through the
# distributed shard path, and asserts byte-identical results against the
# unsharded CLI (and the in-process -shards mode, both targets).
shard-smoke:
	$(GO) run ./cmd/shardsmoke

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# staticcheck is optional locally (the container may not ship it); CI
# installs and runs it unconditionally via its action.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

lint: vet fmt-check staticcheck
