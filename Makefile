GO ?= go

# Tolerated fractional throughput regression for bench-check (0.5 = 50%).
# Calibrated to the measured infrastructure noise of shared runners:
# hypervisor frequency/memory-bandwidth phases swing the memory-heavy
# campaign benchmarks by up to ~45% for tens of minutes at a time, which
# best-of-3 sampling and retry cooldowns cannot fully ride out. At 50%
# the gate still catches every architectural regression it exists for —
# losing the bit-parallel engine (-84% exp/s), checkpoint forking, or
# pooling are all far outside it — while the committed BENCH_PR9.json
# stays the precise quiet-hardware record. Tighten to 0.15 when gating
# on dedicated hardware: BENCH_TOLERANCE=0.15 make bench-check.
BENCH_TOLERANCE ?= 0.5

.PHONY: all build test bench bench-smoke bench-json bench-json-smoke bench-check serve-smoke shard-smoke crash-smoke hybrid-smoke fuzz-smoke vet fmt-check staticcheck reprolint lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every table and figure of the paper
# plus the checkpointed-vs-from-reset campaign engine comparison.
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark, no unit tests: cheap CI smoke that
# exercises the checkpointed campaign speedup path on every PR.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full benchmark suite distilled to JSON (benchmark name -> ns/op plus
# custom metrics). BENCH_PR9.json is the committed perf baseline (cut
# with the bit-parallel campaign engine on, and including the hybrid
# router's ISS campaign engine); rerun this target on comparable
# hardware to refresh it. BENCH_PR2.json (pre-batching) and
# BENCH_PR6.json (pre-hybrid) stay committed as the historical records
# behind DESIGN.md's speedup tables.
# -count 3 folds throughput metrics best-of-3 (see cmd/benchjson): the
# baseline records the machine's uncontended speed, and bench-check
# measures with the same estimator.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 2s -count 3 -out BENCH_PR9.json

# CI variant: one iteration of every benchmark, JSON to stdout. Validates
# the whole suite and the benchjson pipeline without committing numbers.
bench-json-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x -out -

# Benchmark-regression gate: measure the speed-critical benchmarks (the
# engine throughput set: RTL cycles/s, ISS inst/s, campaign exp/s) and
# fail if any throughput metric regresses more than BENCH_TOLERANCE
# against the committed BENCH_PR9.json baseline — cut with the
# bit-parallel (PPSFP) engine on, so CampaignCheckpointed gates at the
# batched throughput (~6x the BENCH_PR2 scalar engine) and a regression
# that silently disabled batching would trip it immediately.
# CampaignTransient and CampaignHybrid are in the gate set too: the
# hybrid benchmark gates the ISS campaign engine's exp/s (the hybrid
# router's prediction pass) and logs the ISS-vs-RTL speedup ratio in
# the JSON without gating it. Throughput is measured
# best-of-3 (-count 3) to reject neighbour-load / frequency-throttle
# noise on shared runners: interference only ever lowers a sample, so
# the max of 3 is the cleanest estimate, while a real code regression
# depresses all 3 and still trips the gate. Because throttle episodes
# last minutes — longer than one gate run — a failed attempt retries
# after a cooldown (up to BENCH_ATTEMPTS attempts): infra noise clears
# between attempts, a genuine regression fails every one.
BENCH_ATTEMPTS ?= 3
bench-check:
	@i=1; while :; do \
		if $(GO) run ./cmd/benchjson \
			-bench '^Benchmark(RTLExecution|ISSExecution|CampaignCheckpointed|CampaignFromReset|CampaignTransient|CampaignHybrid)$$' \
			-benchtime 2s -count 3 -out - -baseline BENCH_PR9.json -max-regress $(BENCH_TOLERANCE); then \
			exit 0; \
		fi; \
		if [ $$i -ge $(BENCH_ATTEMPTS) ]; then \
			echo "bench-check: failed $$i attempt(s); regression is persistent" >&2; exit 1; \
		fi; \
		echo "bench-check: attempt $$i failed; cooling down 60s before retry" >&2; \
		i=$$((i+1)); sleep 60; \
	done

# Hermetic service smoke: builds faultserverd and faultcampaign, boots
# the daemon (sharded + durable) on an ephemeral port, submits one small
# campaign over HTTP twice, and asserts one engine execution plus
# byte-identical results between the server and `faultcampaign -json` —
# then scrapes /metrics and asserts the Prometheus exposition covers
# every instrumented layer with sane values.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# Hermetic sharding smoke: boots a remote-only shard coordinator plus 3
# worker processes, runs a Figure-4-sized campaign through the
# distributed shard path, and asserts byte-identical results against the
# unsharded CLI (and the in-process -shards mode, both targets).
shard-smoke:
	$(GO) run ./cmd/shardsmoke

# Hermetic crash-recovery smoke: boots a durable (-data-dir) coordinator
# plus 3 workers, SIGKILLs the coordinator at three journal-growth-gated
# points mid-campaign (one cycle also SIGKILLs a worker), restarts it on
# the same address each time, and asserts the recovered merged result is
# byte-identical to an undisturbed unsharded run — then proves a final
# restart serves the finished result straight from the on-disk store
# with zero engine executions. Kill points are randomized; pin a failing
# schedule with `go run ./cmd/crashsmoke -seed N` (the seed is logged).
crash-smoke:
	$(GO) run ./cmd/crashsmoke

# Hermetic hybrid-router smoke: executes a real hybrid (ISS-predicted,
# RTL-audited) campaign and audits the outcome's routing contract, then
# proves through the built CLI that `-engine hybrid -rtl-audit 1.0` is
# byte-identical to the pure-RTL campaign and that a 3-way sharded
# hybrid run is byte-identical to the unsharded one.
hybrid-smoke:
	$(GO) run ./cmd/hybridsmoke

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz pass over the WAL replay path: arbitrary journal bytes must
# never panic replay, and truncation to the longest valid prefix must be
# idempotent (re-replaying the truncated file is clean and lossless).
# 10s is a smoke, not a campaign; run longer locally with
# `go test -fuzz FuzzJournalReplay -fuzztime 5m ./internal/store/`.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME) ./internal/store/

# staticcheck is optional locally (the container may not ship it); CI
# installs and runs it unconditionally via its action.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# The repo's own analyzers (internal/lint): determinism, content-address
# stability, observability nil-safety, engine-construction seams. Zero
# findings is the only passing state; audited exceptions live as
# //lint:allow comments next to their justification, not here.
reprolint:
	$(GO) run ./cmd/reprolint ./...

lint: vet fmt-check staticcheck reprolint
