package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each experiment
// benchmark prints its paper-style artifact once and reports the headline
// quantities as custom metrics, so the -bench output is itself the
// reproduction record. The Ablation* benchmarks exercise the design
// choices called out in DESIGN.md §5.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/core"
	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/iss"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// campaignExtTransient is the future-work transient sweep (not part of the
// stable core facade).
var campaignExtTransient = campaign.ExtTransient

// benchOpts balances precision and harness runtime.
var benchOpts = core.ExperimentOptions{Nodes: 192, Seed: 1, Iterations: 2}

var printOnce sync.Map

func printFirst(key, s string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Println(s)
	}
}

// BenchmarkTable1 regenerates the benchmark characterization table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table1", res.Render())
	}
}

// BenchmarkFigure3 regenerates the input-data-variation excerpts.
func BenchmarkFigure3(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := core.Figure3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig3", res.Render())
		if res.SpreadA > res.SpreadB {
			spread = res.SpreadA
		} else {
			spread = res.SpreadB
		}
	}
	b.ReportMetric(100*spread, "max-spread-pp")
}

// BenchmarkFigure4 regenerates the iteration-scaling experiment.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig4", res.Render())
		b.ReportMetric(res.Points[0].Pf*100, "Pf2-%")
		b.ReportMetric(res.Points[2].Pf*100, "Pf10-%")
		b.ReportMetric(res.Points[2].MaxLatencyUS, "maxlat10-us")
	}
}

// BenchmarkFigure5 regenerates the IU-node fault sweep.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig5", res.Render())
	}
}

// BenchmarkFigure6 regenerates the CMEM-node fault sweep.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig6", res.Render())
	}
}

// BenchmarkFigure7 regenerates the diversity correlation and its log fit.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig7", res.Render())
		b.ReportMetric(res.R2, "R2")
		b.ReportMetric(res.A, "ln-slope")
	}
}

// BenchmarkSimTime regenerates the §4.2 simulation-time comparison.
func BenchmarkSimTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.SimTime(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("simtime", res.Render())
		b.ReportMetric(res.Speedup, "RTL/ISS-slowdown")
	}
}

// BenchmarkEq1 runs the Equation-(1) calibration-and-predict workflow.
func BenchmarkEq1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.Eq1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("eq1", res.Render())
		b.ReportMetric(res.PredCorr, "pred-corr")
		b.ReportMetric(res.FitR2, "unit-fit-R2")
	}
}

// BenchmarkExtTransient runs the future-work transient-fault sweep.
func BenchmarkExtTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaignExtTransient(benchOpts, "rspeed")
		if err != nil {
			b.Fatal(err)
		}
		printFirst("ext-transient", res.Render())
		b.ReportMetric(100*res.PermanentPf, "Pf-perm-%")
		b.ReportMetric(100*res.Points[0].Pf, "Pf-flip-early-%")
		b.ReportMetric(100*res.Points[len(res.Points)-1].Pf, "Pf-flip-late-%")
	}
}

// BenchmarkISSExecution measures raw functional-simulation throughput.
func BenchmarkISSExecution(b *testing.B) {
	w, err := core.BuildWorkload("puwmod", core.WorkloadConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := core.NewISS(w.Program)
		if st := cpu.Run(100_000_000); st != iss.StatusExited {
			b.Fatal(st)
		}
		insts = cpu.Icount
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkRTLExecution measures raw RTL-simulation throughput.
func BenchmarkRTLExecution(b *testing.B) {
	w, err := core.BuildWorkload("puwmod", core.WorkloadConfig{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := core.NewRTL(w.Program)
		if st := rt.Run(400_000_000); st != iss.StatusExited {
			b.Fatal(st)
		}
		cycles = rt.Cycles()
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// benchmarkCampaignEngine times an identical campaign with the injection
// instant at half the golden run, either forked from the golden-run
// checkpoint or re-simulated from reset. The pair is the checkpointed
// engine's headline: the warm-up prefix is simulated once instead of once
// per experiment, so the checkpointed variant must be severalfold faster
// while producing the same Pf.
func benchmarkCampaignEngine(b *testing.B, noCheckpoint bool) {
	w, err := workloads.Build("rspeed", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fault.NewRunner(w.Program, fault.Options{
		InjectAtFraction: 0.5,
		NoCheckpoint:     noCheckpoint,
	})
	if err != nil {
		b.Fatal(err)
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), 48, 1)
	exps := fault.Expand(nodes, rtl.StuckAt1)
	r.PrepareCheckpoint() // capture outside the timed region
	var pf float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf = fault.Pf(r.Campaign(exps, 0))
	}
	b.ReportMetric(100*pf, "Pf-%")
	b.ReportMetric(float64(len(exps))*float64(b.N)/b.Elapsed().Seconds(), "exp/s")
}

// BenchmarkCampaignCheckpointed forks every experiment from the golden-run
// snapshot at the injection instant (the default engine).
func BenchmarkCampaignCheckpointed(b *testing.B) {
	benchmarkCampaignEngine(b, false)
}

// BenchmarkCampaignFromReset re-simulates every experiment's warm-up
// prefix from cycle 0 (the paper's original cost model).
func BenchmarkCampaignFromReset(b *testing.B) {
	benchmarkCampaignEngine(b, true)
}

// BenchmarkCampaignTransient times the transient-model engine: SEU
// bit-flips and 2-cycle SET pulses with per-experiment injection cycles
// scheduled across the golden run, forked from the same checkpoint the
// permanent campaigns use. Its exp/s rides the bench-check gate next to
// the permanent baseline, so transient throughput is tracked without
// perturbing the committed permanent numbers.
func BenchmarkCampaignTransient(b *testing.B) {
	w, err := workloads.Build("rspeed", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fault.NewRunner(w.Program, fault.Options{
		InjectAtFraction: 0.5,
		PulseCycles:      2,
	})
	if err != nil {
		b.Fatal(err)
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), 48, 1)
	exps := fault.Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	r.ScheduleTransients(exps, 1)
	r.PrepareCheckpoint() // capture outside the timed region
	var pf float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf = fault.Pf(r.Campaign(exps, 0))
	}
	b.ReportMetric(100*pf, "Pf-%")
	b.ReportMetric(float64(len(exps))*float64(b.N)/b.Elapsed().Seconds(), "exp/s")
}

// BenchmarkCampaignHybrid times the hybrid router's prediction engine:
// the ISS campaign pass that stands in for RTL re-simulation on trusted
// node classes, pinned to the RTL golden run's timebase exactly as the
// hybrid planner pins it. Its exp/s rides the bench-check gate — losing
// ISS campaign throughput erases the hybrid's whole reason to exist.
// The ISS-vs-RTL speedup over the identical experiment list is reported
// alongside in a ratio unit, so the perf JSON records the routing
// economics without the regression gate comparing a hardware ratio.
func BenchmarkCampaignHybrid(b *testing.B) {
	w, err := workloads.Build("rspeed", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	rtlR, err := fault.NewRunner(w.Program, fault.Options{InjectAtFraction: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	issR, err := fault.NewISSRunner(w.Program, fault.Options{InjectAtFraction: 0.5},
		rtlR.GoldenCycles, rtlR.InjectCycle())
	if err != nil {
		b.Fatal(err)
	}
	nodes := fault.SampleNodes(rtlR.Nodes(fault.TargetIU), 48, 1)
	exps := fault.Expand(nodes, rtl.StuckAt1)
	rtlR.PrepareCheckpoint()
	// One RTL pass outside the timed region: the denominator of the
	// speedup ratio, and the batched engine the audits would run on.
	rtlStart := time.Now()
	rtlRes := rtlR.Campaign(exps, 0)
	rtlPerExp := time.Since(rtlStart).Seconds() / float64(len(exps))
	issR.Campaign(exps, 0) // warm the ISS checkpoint outside the timed region
	var res []fault.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = issR.Campaign(exps, 0)
	}
	issPerExp := b.Elapsed().Seconds() / (float64(len(exps)) * float64(b.N))
	b.ReportMetric(100*fault.Pf(res), "Pf-iss-%")
	b.ReportMetric(100*fault.Pf(rtlRes), "Pf-rtl-%")
	b.ReportMetric(1/issPerExp, "exp/s")
	b.ReportMetric(rtlPerExp/issPerExp, "iss-vs-rtl-x")
}

// BenchmarkSingleInjection measures the cost of one fault experiment.
func BenchmarkSingleInjection(b *testing.B) {
	w, err := workloads.Build("excerptB", workloads.Config{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fault.NewRunner(w.Program, fault.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := fault.Experiment{
		Node:  fault.NodeInfo{Node: rtl.Node{Name: "iu.ex.result", Bit: 5}},
		Model: rtl.StuckAt1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunOne(e)
	}
}

// BenchmarkAblationEarlyExit compares campaign cost with and without the
// first-mismatch early exit (DESIGN.md A1). Classifications are identical;
// only wall-clock differs.
func BenchmarkAblationEarlyExit(b *testing.B) {
	w, err := workloads.Build("rspeed", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts fault.Options
	}{
		{"early-exit", fault.Options{}},
		{"full-run", fault.Options{NoEarlyExit: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			r, err := fault.NewRunner(w.Program, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), 64, 1)
			exps := fault.Expand(nodes, rtl.StuckAt1)
			var pf float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pf = fault.Pf(r.Campaign(exps, 0))
			}
			b.ReportMetric(100*pf, "Pf-%")
		})
	}
}

// BenchmarkAblationSampleSize shows the Pf estimate stabilizing with the
// statistical-fault-injection sample size (DESIGN.md A2).
func BenchmarkAblationSampleSize(b *testing.B) {
	w, err := workloads.Build("ttsprk", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fault.NewRunner(w.Program, fault.Options{})
	if err != nil {
		b.Fatal(err)
	}
	all := r.Nodes(fault.TargetIU)
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			var pf float64
			for i := 0; i < b.N; i++ {
				nodes := fault.SampleNodes(all, n, 1)
				pf = fault.Pf(r.Campaign(fault.Expand(nodes, rtl.StuckAt1), 0))
			}
			b.ReportMetric(100*pf, "Pf-%")
		})
	}
}

// BenchmarkAblationWeightedEq1 compares the R^2 of the plain global
// diversity fit against the Equation-(1) area-weighted per-unit model
// (DESIGN.md A3).
func BenchmarkAblationWeightedEq1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure7(core.ExperimentOptions{Nodes: 128, Seed: 1, Iterations: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.R2, "R2-global")

		// Weighted model: predict each point from its per-unit diversity
		// using the fitted coefficients, then fit predictions to
		// measurements.
		weights := core.AreaWeights(core.TargetIU)
		var xs, ys []float64
		for _, p := range res.Points {
			name := p.Label
			cfg := core.WorkloadConfig{Iterations: 2}
			if len(name) > 8 && name[:7] == "excerpt" {
				cfg = core.WorkloadConfig{Dataset: int(name[len(name)-1] - '0')}
				name = name[:8]
			}
			w, err := core.BuildWorkload(name, cfg)
			if err != nil {
				b.Fatal(err)
			}
			prof, err := core.MeasureDiversity(w)
			if err != nil {
				b.Fatal(err)
			}
			xs = append(xs, core.PredictPf(prof, weights, res.A, res.Bderiv))
			ys = append(ys, p.Pf)
		}
		_, _, r2w, err := stats.LinFit(xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r2w, "R2-weighted")
	}
}

// BenchmarkAblationOpenLineModel compares the charge-retention open-line
// interpretation against a discharge-to-0 one (DESIGN.md A4): open-line
// Pf is bracketed by the stuck-at models.
func BenchmarkAblationOpenLineModel(b *testing.B) {
	w, err := workloads.Build("canrdr", workloads.Config{Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fault.NewRunner(w.Program, fault.Options{})
	if err != nil {
		b.Fatal(err)
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), 128, 1)
	for i := 0; i < b.N; i++ {
		open := fault.Pf(r.Campaign(fault.Expand(nodes, rtl.OpenLine), 0))
		sa0 := fault.Pf(r.Campaign(fault.Expand(nodes, rtl.StuckAt0), 0))
		sa1 := fault.Pf(r.Campaign(fault.Expand(nodes, rtl.StuckAt1), 0))
		b.ReportMetric(100*open, "Pf-open-%")
		b.ReportMetric(100*sa0, "Pf-sa0-%")
		b.ReportMetric(100*sa1, "Pf-sa1-%")
	}
}
