// Command benchjson runs the repository benchmark suite and distills the
// result into a JSON perf record: benchmark name -> ns/op plus every
// custom metric the benchmarks report (cycles/s, exp/s, Pf-%, ...).
// The committed baseline lives in BENCH_PR2.json; CI runs the 1x smoke
// variant on every change (make bench-json-smoke) so the tool and the
// whole suite stay green, and fresh baselines are cut with
// make bench-json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Record is the emitted perf document.
type Record struct {
	Schema     string                        `json:"schema"`
	Command    string                        `json:"command"`
	Go         string                        `json:"go,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "1s", "benchtime passed to go test (a duration, or Nx for fixed iterations)")
	count := flag.Int("count", 1, "go test -count; repeated measurements are averaged")
	out := flag.String("out", "BENCH_PR2.json", `output path ("-" for stdout)`)
	flag.Parse()

	args := []string{"test", "-bench=" + *bench, "-benchtime=" + *benchtime,
		"-count=" + strconv.Itoa(*count), "-run=^$", "."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	// Tee the raw bench output to stderr so long runs show progress and
	// the paper-style artifacts the benchmarks print stay visible.
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rec := parse(buf.String())
	if len(rec.Benchmarks) == 0 {
		// An empty record means the regexp matched nothing or the bench
		// output format drifted; exiting 0 would let CI validate nothing
		// and a baseline refresh overwrite the committed record with {}.
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines parsed from go %s\n", strings.Join(args, " "))
		os.Exit(1)
	}
	rec.Command = "go " + strings.Join(args, " ")
	rec.Go = runtime.Version()
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// parse extracts benchmark result lines from go test -bench output. Each
// line reads "BenchmarkName  N  v1 unit1  v2 unit2 ..."; every value/unit
// pair becomes a metric. Repeated lines (go test -count > 1) are
// averaged.
func parse(output string) *Record {
	rec := &Record{Schema: "bench-json/1", Benchmarks: map[string]map[string]float64{}}
	seen := map[string]map[string]int{}
	for _, line := range strings.Split(output, "\n") {
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = strings.TrimSpace(v)
		}
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
			continue
		}
		// The name is kept exactly as go test prints it (minus the
		// Benchmark prefix), including any -GOMAXPROCS suffix — sub-
		// benchmark names like nodes-64 make a smarter strip ambiguous.
		name := strings.TrimPrefix(f[0], "Benchmark")
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			continue // not an iteration count; some other output line
		}
		metrics := rec.Benchmarks[name]
		if metrics == nil {
			metrics = map[string]float64{}
			rec.Benchmarks[name] = metrics
			seen[name] = map[string]int{}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			unit := f[i+1]
			n := seen[name][unit]
			metrics[unit] = (metrics[unit]*float64(n) + v) / float64(n+1)
			seen[name][unit] = n + 1
		}
	}
	return rec
}
