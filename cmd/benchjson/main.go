// Command benchjson runs the repository benchmark suite and distills the
// result into a JSON perf record: benchmark name -> ns/op plus every
// custom metric the benchmarks report (cycles/s, exp/s, Pf-%, ...).
// The committed baseline lives in BENCH_PR6.json; CI runs the 1x smoke
// variant on every change (make bench-json-smoke) so the tool and the
// whole suite stay green, and fresh baselines are cut with
// make bench-json.
//
// With -baseline the run becomes a regression gate (make bench-check):
// every throughput metric (cycles/s, exp/s, inst/s — higher is better)
// present in both the baseline and the current run is compared, and the
// tool exits nonzero when any regresses by more than -max-regress
// (default 15%). Only throughput units participate: ns/op on a shared CI
// runner is too noisy, while the engine's cycles/s and exp/s are the
// quantities the ROADMAP optimizes. With -count N both the baseline cut
// and the gate fold repeated samples best-of for throughput units:
// neighbour load and frequency throttling on shared machines only ever
// slow a run down, so the fastest of N samples is the closest estimate
// of the code's real speed, and a genuine regression shows in all N.
// Absolute numbers are still hardware-sensitive — compare against a
// baseline cut on comparable hardware, or widen -max-regress.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Record is the emitted perf document.
type Record struct {
	Schema     string                        `json:"schema"`
	Command    string                        `json:"command"`
	Go         string                        `json:"go,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to go test")
	benchtime := flag.String("benchtime", "1s", "benchtime passed to go test (a duration, or Nx for fixed iterations)")
	count := flag.Int("count", 1, "go test -count; throughput metrics keep the best sample, others are averaged")
	out := flag.String("out", "BENCH_PR6.json", `output path ("-" for stdout)`)
	baseline := flag.String("baseline", "", "compare throughput metrics against this committed record and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.15, "tolerated fractional throughput regression against -baseline")
	flag.Parse()
	// Refuse to overwrite the record we are about to gate against: the
	// write would make the comparison vacuous and clobber the committed
	// baseline. Checked before the (slow) benchmark run.
	if *baseline != "" && *out != "-" && *out == *baseline {
		fmt.Fprintf(os.Stderr, "benchjson: -out and -baseline are both %s; use -out - when gating\n", *baseline)
		os.Exit(1)
	}

	args := []string{"test", "-bench=" + *bench, "-benchtime=" + *benchtime,
		"-count=" + strconv.Itoa(*count), "-run=^$", "."}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	// Tee the raw bench output to stderr so long runs show progress and
	// the paper-style artifacts the benchmarks print stay visible.
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rec := parse(buf.String())
	if len(rec.Benchmarks) == 0 {
		// An empty record means the regexp matched nothing or the bench
		// output format drifted; exiting 0 would let CI validate nothing
		// and a baseline refresh overwrite the committed record with {}.
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines parsed from go %s\n", strings.Join(args, " "))
		os.Exit(1)
	}
	rec.Command = "go " + strings.Join(args, " ")
	rec.Go = runtime.Version()
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')

	// The gate runs before any write: a failed gate must not replace a
	// record on disk with the regressed measurements.
	if *baseline != "" {
		regressions, err := check(rec, *baseline, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d throughput regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *maxRegress*100, *baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no throughput regression beyond %.0f%% vs %s\n",
			*maxRegress*100, *baseline)
	}

	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// throughputUnits are the higher-is-better metrics the regression gate
// compares. Wall-clock ns/op is deliberately excluded: on shared CI
// machines it regresses with neighbour load, while the engine throughput
// metrics are what the perf work optimizes.
var throughputUnits = map[string]bool{
	"cycles/s": true,
	"exp/s":    true,
	"inst/s":   true,
}

// check compares the current record against a committed baseline and
// returns one line per throughput metric that regressed beyond tol.
// Benchmarks or metrics present on only one side are skipped: the gate
// guards known quantities, it does not freeze the suite's shape.
func check(cur *Record, baselinePath string, tol float64) ([]string, error) {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base Record
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	var regressions []string
	compared := 0
	for _, name := range sortedKeys(base.Benchmarks) {
		baseMetrics := base.Benchmarks[name]
		curMetrics := cur.Benchmarks[name]
		if curMetrics == nil {
			continue
		}
		for _, unit := range sortedKeys(baseMetrics) {
			if !throughputUnits[unit] {
				continue
			}
			was := baseMetrics[unit]
			now, ok := curMetrics[unit]
			if !ok || was <= 0 {
				continue
			}
			compared++
			if now < was*(1-tol) {
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %.4g -> %.4g (%.1f%% below baseline)",
						name, unit, was, now, 100*(1-now/was)))
			}
		}
	}
	if compared == 0 {
		// A gate that compared nothing would pass vacuously forever — the
		// baseline drifted out from under the suite; fail loudly instead.
		return nil, fmt.Errorf("no throughput metrics shared with %s; refresh the baseline", baselinePath)
	}
	return regressions, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parse extracts benchmark result lines from go test -bench output. Each
// line reads "BenchmarkName  N  v1 unit1  v2 unit2 ..."; every value/unit
// pair becomes a metric. Repeated lines (go test -count > 1) fold
// per-unit: throughput metrics keep the best (maximum) sample — on a
// shared machine interference can only slow a benchmark down, so the max
// is the least contaminated estimate and a genuine code regression still
// shows in every sample — while non-throughput metrics are averaged.
func parse(output string) *Record {
	rec := &Record{Schema: "bench-json/1", Benchmarks: map[string]map[string]float64{}}
	seen := map[string]map[string]int{}
	for _, line := range strings.Split(output, "\n") {
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = strings.TrimSpace(v)
		}
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
			continue
		}
		// The name is kept exactly as go test prints it (minus the
		// Benchmark prefix), including any -GOMAXPROCS suffix — sub-
		// benchmark names like nodes-64 make a smarter strip ambiguous.
		name := strings.TrimPrefix(f[0], "Benchmark")
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			continue // not an iteration count; some other output line
		}
		metrics := rec.Benchmarks[name]
		if metrics == nil {
			metrics = map[string]float64{}
			rec.Benchmarks[name] = metrics
			seen[name] = map[string]int{}
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			unit := f[i+1]
			n := seen[name][unit]
			if throughputUnits[unit] {
				if n == 0 || v > metrics[unit] {
					metrics[unit] = v
				}
			} else {
				metrics[unit] = (metrics[unit]*float64(n) + v) / float64(n+1)
			}
			seen[name][unit] = n + 1
		}
	}
	return rec
}
