// Command correlate regenerates the paper's evaluation artifacts: Table 1,
// Figures 3-7 and the simulation-time comparison, printing each in a
// paper-style layout.
//
// Usage:
//
//	correlate -exp all [-nodes 256] [-seed 1]
//	correlate -exp fig7
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("correlate: ")
	var (
		exp   = flag.String("exp", "all", "experiment: table1, fig3, fig4, fig5, fig6, fig7, simtime or all")
		nodes = flag.Int("nodes", 256, "injection node sample size per campaign")
		seed  = flag.Int64("seed", 1, "sampling seed")
		iters = flag.Int("iters", 2, "workload iterations for RTL campaigns")
	)
	flag.Parse()

	o := core.ExperimentOptions{Nodes: *nodes, Seed: *seed, Iterations: *iters}

	type renderer interface{ Render() string }
	run := func(name string, f func() (renderer, error)) {
		t0 := time.Now()
		r, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(r.Render())
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(t0).Seconds())
	}

	all := *exp == "all"
	if all || *exp == "table1" {
		run("table1", func() (renderer, error) { return core.Table1() })
	}
	if all || *exp == "fig3" {
		run("fig3", func() (renderer, error) { return core.Figure3(o) })
	}
	if all || *exp == "fig4" {
		run("fig4", func() (renderer, error) { return core.Figure4(o) })
	}
	if all || *exp == "fig5" {
		run("fig5", func() (renderer, error) { return core.Figure5(o) })
	}
	if all || *exp == "fig6" {
		run("fig6", func() (renderer, error) { return core.Figure6(o) })
	}
	if all || *exp == "fig7" {
		run("fig7", func() (renderer, error) { return core.Figure7(o) })
	}
	if all || *exp == "simtime" {
		run("simtime", func() (renderer, error) { return core.SimTime(o) })
	}
}
