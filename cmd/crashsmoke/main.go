// Command crashsmoke is the hermetic crash-recovery smoke test behind
// `make crash-smoke`: it builds faultserverd and faultcampaign, boots a
// durable coordinator (-data-dir) in remote-only shard mode plus three
// worker processes, submits a 240-experiment campaign, and then
// SIGKILLs the coordinator — no shutdown hooks, no warning — at three
// journal-growth-gated points (one cycle also SIGKILLs a worker),
// restarting it on the same address each time. The workers are never
// told anything happened; they ride out the dead coordinator on their
// jittered lease backoff, get 410 Gone for leases the restarted
// process has never heard of, and pull fresh leases from the recovered
// campaign.
//
// The assertions are the durability contract end to end:
//
//   - every restarted coordinator resumes the in-flight campaign from
//     its journal (resubmitting the spec coalesces, HTTP 200 — never a
//     fresh 201);
//   - the merged outcome after three crashes is byte-identical to
//     `faultcampaign -json` run undisturbed and unsharded;
//   - a final SIGKILL+restart serves a resubmission of the same spec
//     straight from the on-disk result store: state "done" immediately,
//     zero engine executions on the fresh process, same result bytes.
//
// Kill points are randomized; the seed is logged and can be pinned with
// -seed to replay a failing schedule. Needs only the go toolchain and a
// TCP loopback.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// spec is sized so three kill/restart cycles fit comfortably inside the
// campaign: 240 experiments (120 nodes x sa0,sa1) at 100 kernel
// iterations, split 24 ways so the journal grows shard by shard. No
// epsilon: adaptive early stopping is order-sensitive, and this test is
// about byte-identity across crashes.
var spec = map[string]interface{}{
	"workload":           "rspeed",
	"iterations":         100,
	"target":             "iu",
	"models":             []string{"sa0", "sa1"},
	"nodes":              120,
	"seed":               1,
	"inject_at_fraction": 0.3,
}

var cliArgs = []string{
	"-w", "rspeed", "-iters", "100", "-target", "iu", "-models", "sa0,sa1",
	"-nodes", "120", "-seed", "1", "-inject-frac", "0.3", "-json",
}

const killCycles = 3

// logger writes the smoke's own structured lines. The subprocesses it
// boots log structured too (they inherit stderr), so a failing run's
// transcript — above all the kill-schedule seed needed to replay it —
// survives machine parsing instead of interleaving raw printf noise.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil)).With("prog", "crashsmoke")

func main() {
	seed := flag.Int64("seed", 0, "kill-schedule seed (0 = derive from the clock)")
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	logger.Info("kill-schedule seed chosen", "seed", *seed,
		"replay", fmt.Sprintf("-seed %d", *seed))
	if err := run(rand.New(rand.NewSource(*seed))); err != nil {
		logger.Error("smoke failed", "error", err)
		os.Exit(1)
	}
	fmt.Println("crashsmoke: OK")
}

func run(rng *rand.Rand) error {
	dir, err := os.MkdirTemp("", "crashsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	serverBin := filepath.Join(dir, "faultserverd")
	cliBin := filepath.Join(dir, "faultcampaign")
	for bin, pkg := range map[string]string{
		serverBin: "./cmd/faultserverd",
		cliBin:    "./cmd/faultcampaign",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	dataDir := filepath.Join(dir, "data")
	journal := filepath.Join(dataDir, "journal.ndjson")

	// The coordinator must come back on the same address after each
	// SIGKILL so the workers' configured URL stays valid: reserve a free
	// port once and reuse it for every boot.
	addr, err := reservePort()
	if err != nil {
		return err
	}
	base := "http://" + addr

	coord, err := startCoordinator(serverBin, addr, dataDir)
	if err != nil {
		return err
	}
	defer func() {
		if coord != nil && coord.Process != nil {
			coord.Process.Kill()
			coord.Wait()
		}
	}()

	// Three worker processes with a tight backoff cap so they re-attach
	// within ~1s of a coordinator resurrection.
	workers := make(map[int]*exec.Cmd)
	defer func() {
		for _, w := range workers {
			w.Process.Signal(syscall.SIGTERM)
			w.Wait()
		}
	}()
	startWorker := func(i int) error {
		w := exec.Command(serverBin, "-worker", "-coordinator", base,
			"-worker-id", fmt.Sprintf("w%d", i), "-campaign-workers", "1",
			"-worker-backoff-max", "500ms")
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return err
		}
		workers[i] = w
		return nil
	}
	for i := 1; i <= 3; i++ {
		if err := startWorker(i); err != nil {
			return err
		}
	}
	logger.Info("workers pulling shards", "workers", 3, "coordinator", base)

	body, _ := json.Marshal(spec)
	id, code, err := submit(base, body)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("first submission: HTTP %d, want 201", code)
	}
	logger.Info("campaign submitted", "job", id, "experiments", 240, "shards", 24)

	// Kill/restart cycles, each gated on durable progress: wait until the
	// journal has recorded at least one more completed shard than when
	// this coordinator incarnation started, linger a random beat, then
	// SIGKILL. Cycle 2 also SIGKILLs a worker mid-flight.
	for cycle := 1; cycle <= killCycles; cycle++ {
		before := countShardRecords(journal)
		if err := waitForJournalGrowth(journal, before, 60*time.Second); err != nil {
			return fmt.Errorf("cycle %d: %w", cycle, err)
		}
		delay := time.Duration(rng.Intn(250)) * time.Millisecond
		time.Sleep(delay)

		if cycle == 2 {
			w := workers[2]
			w.Process.Kill() // SIGKILL, no cleanup
			w.Wait()
			delete(workers, 2)
			logger.Info("SIGKILLed worker", "cycle", cycle, "worker", "w2")
			if err := startWorker(4); err != nil {
				return err
			}
		}

		coord.Process.Kill() // SIGKILL, no cleanup
		coord.Wait()
		completed := countShardRecords(journal)
		logger.Info("SIGKILLed coordinator", "cycle", cycle, "linger", delay, "shards_journaled", completed)

		if coord, err = startCoordinator(serverBin, addr, dataDir); err != nil {
			return fmt.Errorf("cycle %d restart: %w", cycle, err)
		}

		// The restarted coordinator must already know the campaign: a
		// resubmission coalesces onto the recovered job (or, if the last
		// shard squeaked in pre-kill, hits the on-disk result store) —
		// either way HTTP 200, never a fresh 201.
		rid, rcode, err := submit(base, body)
		if err != nil {
			return fmt.Errorf("cycle %d resubmit: %w", cycle, err)
		}
		if rcode != http.StatusOK {
			return fmt.Errorf("cycle %d resubmit: HTTP %d, want 200 (recovered or stored)", cycle, rcode)
		}
		id = rid
		logger.Info("coordinator resurrected, campaign recovered", "cycle", cycle, "job", id)
	}

	// Let the survivors finish the campaign.
	if err := waitDone(base, id, 120*time.Second); err != nil {
		return err
	}
	crashed, err := getBytes(base + "/api/v1/campaigns/" + id + "/result")
	if err != nil {
		return err
	}
	logger.Info("campaign finished", "kill_cycles", killCycles, "result_bytes", len(crashed))

	// The thrice-crashed merged outcome must be byte-identical to the
	// undisturbed, unsharded CLI run of the same spec.
	cli := exec.Command(cliBin, cliArgs...)
	cli.Stderr = os.Stderr
	undisturbed, err := cli.Output()
	if err != nil {
		return fmt.Errorf("faultcampaign -json: %w", err)
	}
	if !bytes.Equal(crashed, undisturbed) {
		return fmt.Errorf("crash-recovered result and undisturbed faultcampaign -json diverge:\n--- crashed\n%s\n--- undisturbed\n%s", crashed, undisturbed)
	}
	logger.Info("crash-recovered result matches undisturbed unsharded CLI")

	// Final act: kill the coordinator once more and prove the finished
	// result outlives the process — the resubmission must be answered
	// from the on-disk store with zero engine executions.
	coord.Process.Kill()
	coord.Wait()
	if coord, err = startCoordinator(serverBin, addr, dataDir); err != nil {
		return fmt.Errorf("final restart: %w", err)
	}
	fid, fcode, err := submit(base, body)
	if err != nil {
		return err
	}
	if fcode != http.StatusOK {
		return fmt.Errorf("post-crash resubmission: HTTP %d, want 200 (stored result)", fcode)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := getJSON(base+"/api/v1/campaigns/"+fid, &st); err != nil {
		return err
	}
	if st.State != "done" {
		return fmt.Errorf("post-crash resubmission is %q, want done immediately from the store", st.State)
	}
	var health struct {
		Stats struct {
			Executed  int `json:"executed"`
			CacheHits int `json:"cache_hits"`
		} `json:"stats"`
	}
	if err := getJSON(base+"/api/v1/healthz", &health); err != nil {
		return err
	}
	if health.Stats.Executed != 0 || health.Stats.CacheHits < 1 {
		return fmt.Errorf("fresh coordinator stats %+v: want 0 executions, >=1 cache hit", health.Stats)
	}
	stored, err := getBytes(base + "/api/v1/campaigns/" + fid + "/result")
	if err != nil {
		return err
	}
	if !bytes.Equal(stored, crashed) {
		return fmt.Errorf("stored result differs from the pre-crash result bytes")
	}
	logger.Info("final restart served the result from the store", "executions", 0, "byte_identical", true)
	return nil
}

// startCoordinator boots a durable remote-only coordinator on addr and
// waits until /readyz reports recovery is complete. The bind is retried
// briefly: a SIGKILLed predecessor's socket can take a beat to release.
func startCoordinator(bin, addr, dataDir string) (*exec.Cmd, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		cmd := exec.Command(bin, "-addr", addr, "-jobs", "1",
			"-shards", "24", "-shard-local-workers=-1", "-shard-lease-ttl", "5s",
			"-data-dir", dataDir)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		bound := false
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on ") {
				bound = true
				break
			}
		}
		if !bound { // bind failed (address still in TIME_WAIT teardown)
			cmd.Wait()
			lastErr = fmt.Errorf("coordinator on %s never bound", addr)
			time.Sleep(100 * time.Millisecond)
			continue
		}
		go io.Copy(io.Discard, stdout)
		if err := waitReady("http://" + addr); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
		return cmd, nil
	}
	return nil, lastErr
}

// reservePort grabs a free loopback port and releases it for the
// coordinator to claim. The tiny reuse race is acceptable in a smoke
// test; startCoordinator retries the bind regardless.
func reservePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// countShardRecords counts durably journaled shard completions. It
// greps the raw journal on purpose: the gate must observe what is on
// disk, not what the (about-to-die) coordinator claims in memory.
func countShardRecords(journal string) int {
	b, err := os.ReadFile(journal)
	if err != nil {
		return 0
	}
	return bytes.Count(b, []byte(`"type":"shard_completed"`))
}

func waitForJournalGrowth(journal string, before int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if countShardRecords(journal) > before {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("journal recorded no shard completion beyond %d within %s", before, timeout)
}

func waitDone(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st struct {
			State string `json:"state"`
		}
		if err := getJSON(base+"/api/v1/campaigns/"+id, &st); err == nil {
			switch st.State {
			case "done":
				return nil
			case "failed", "cancelled":
				return fmt.Errorf("campaign ended %q", st.State)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("campaign not done within %s", timeout)
}

func waitReady(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("coordinator never became ready")
}

func submit(base string, body []byte) (id string, code int, err error) {
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return "", resp.StatusCode, fmt.Errorf("submit response %q: %w", b, err)
	}
	return st.ID, resp.StatusCode, nil
}

func getBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func getJSON(url string, v interface{}) error {
	b, err := getBytes(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
