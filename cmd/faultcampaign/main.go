// Command faultcampaign runs an RTL fault-injection campaign on one
// workload and reports the probability of failure at the off-core
// boundary, broken down by outcome and functional unit.
//
// Usage:
//
//	faultcampaign -w ttsprk -target iu -model sa1 -nodes 256 -seed 1
//
// -models (alias -model) takes a comma-separated list of fault models:
// the permanent sa0, sa1 and open, the transient seu (single-event
// bit-flip) and set (glitch pulse; width via -pulse), or "all" for the
// paper's permanent trio. Transient injection instants are sampled
// deterministically per experiment from -seed over the window between
// the fixed injection instant and the end of the golden run.
//
// With -json the campaign is executed through the same canonical path the
// campaign job server uses and the result is emitted in the service's
// deterministic encoding, so CLI output and `faultserverd` responses are
// byte-for-byte diffable for the same spec.
//
// -shards N executes the campaign as N deterministic experiment-range
// shards on in-process workers (one binary, no daemon); results are
// byte-identical to the unsharded run. -epsilon E enables adaptive early
// stopping: the campaign halts once the Wilson 95% half-width around the
// progressive Pf drops to E.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/core"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/sparc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultcampaign: ")
	var (
		name    = flag.String("w", "ttsprk", "workload name ("+strings.Join(core.WorkloadNames(), ", ")+")")
		iters   = flag.Int("iters", 2, "kernel iterations")
		dataset = flag.Int("dataset", 0, "input dataset selector")
		target  = flag.String("target", "iu", "injection target: iu or cmem")
		model   = flag.String("model", "all", "comma-separated fault models: sa0, sa1, open, seu, set or all (= sa0,sa1,open)")
		nodes   = flag.Int("nodes", 256, "node sample size (0 = exhaustive)")
		pulse   = flag.Uint64("pulse", 0, "set-pulse glitch width in cycles (0 = 1; only with the set model)")
		seed    = flag.Int64("seed", 1, "sampling seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		inject  = flag.Uint64("inject-at", 0, "injection instant (cycle)")
		injfrac = flag.Float64("inject-frac", 0, "injection instant as a fraction of the golden run (overrides -inject-at)")
		noCkpt  = flag.Bool("no-checkpoint", false, "re-simulate each experiment from reset instead of forking the golden-run checkpoint")
		noBatch = flag.Bool("no-batch", false, "run each experiment as its own scalar simulation instead of batching fault universes through the bit-parallel engine")
		asJSON  = flag.Bool("json", false, "emit the campaign job service's canonical result JSON")
		shards  = flag.Int("shards", 0, "split the campaign into this many experiment-range shards on in-process workers (0/1 = unsharded)")
		epsilon = flag.Float64("epsilon", 0, "adaptive early stop once the Wilson 95% half-width around Pf reaches this (0 = run to completion)")
		engine  = flag.String("engine", "rtl", "campaign engine: rtl, iss, or hybrid (ISS-predicted, RTL-audited)")
		audit   = flag.Float64("rtl-audit", 0, "hybrid: RTL-audit fraction of ISS-trusted experiments (0 = default 0.1; 1.0 = pure RTL)")
		conf    = flag.Float64("confidence", 0, "hybrid: per-class R² threshold below which the class re-runs on RTL (0 = default 0.9)")
	)
	flag.Var(aliasValue{model}, "models", "alias for -model (comma-separated fault model list)")
	flag.Parse()

	if *asJSON || *shards > 1 || *epsilon > 0 || *engine != "rtl" {
		// The -iters flag defaults to 2 for the human-readable campaign,
		// but an HTTP submission that omits "iterations" means 0
		// (workload default). For byte-parity with the server, -json maps
		// an unset flag to 0 too; an explicit -iters still wins. The
		// human-readable sharded/adaptive path keeps the CLI default so
		// `-shards`/`-epsilon` never change which campaign runs.
		jsonIters := *iters
		if *asJSON {
			jsonIters = 0
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "iters" {
					jsonIters = *iters
				}
			})
		}
		req := jobs.Request{
			Workload:         *name,
			Iterations:       jsonIters,
			Dataset:          *dataset,
			Target:           *target,
			Nodes:            *nodes,
			Seed:             *seed,
			InjectAtCycle:    *inject,
			InjectAtFraction: *injfrac,
			NoCheckpoint:     *noCkpt,
			NoBatch:          *noBatch,
			Epsilon:          *epsilon,
			Engine:           *engine,
			RTLAudit:         *audit,
			Confidence:       *conf,
		}
		if *model != "all" {
			// Unknown names are rejected by the request normalization
			// inside Execute, keeping one canonical model list.
			req.Models = splitModels(*model)
		}
		req.PulseCycles = *pulse
		t0 := time.Now()
		var out *jobs.Outcome
		var err error
		if *shards > 1 {
			// Sharded in-process execution: byte-identical to unsharded
			// (sharding is scheduling, not content).
			out, err = jobs.ExecuteSharded(context.Background(), req, *shards, *workers, nil)
		} else {
			out, err = jobs.Execute(context.Background(), req, *workers, nil)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			if err := jobs.EncodeOutcome(os.Stdout, out); err != nil {
				log.Fatal(err)
			}
			return
		}
		renderOutcome(out, *shards, time.Since(t0))
		return
	}

	spec := core.CampaignSpec{
		Nodes:            *nodes,
		Seed:             *seed,
		Workers:          *workers,
		InjectAtCycle:    *inject,
		InjectAtFraction: *injfrac,
		PulseCycles:      *pulse,
		NoCheckpoint:     *noCkpt,
		NoBatch:          *noBatch,
	}
	switch *target {
	case "iu":
		spec.Target = core.TargetIU
	case "cmem":
		spec.Target = core.TargetCMEM
	default:
		log.Fatalf("unknown target %q", *target)
	}
	if *model != "all" {
		// Mirror the service path's validation: a duplicate model would
		// run every experiment twice and falsely tighten the Wilson
		// interval (2N dependent trials reported as independent).
		seen := map[string]bool{}
		for _, name := range splitModels(*model) {
			m, ok := modelByName[name]
			if !ok {
				log.Fatalf("unknown model %q (want sa0, sa1, open, seu, set or all)", name)
			}
			if seen[name] {
				log.Fatalf("duplicate fault model %q", name)
			}
			seen[name] = true
			spec.Models = append(spec.Models, m)
		}
	}

	w, err := core.BuildWorkload(*name, core.WorkloadConfig{Iterations: *iters, Dataset: *dataset})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := core.RunCampaign(w, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %s, target %v, %d injections in %.1fs\n",
		w.Name, spec.Target, res.Injections, time.Since(t0).Seconds())
	mode := "from-reset re-simulation"
	if res.Checkpointed {
		mode = "golden-run forking (warm-up prefix simulated once)"
	}
	fmt.Printf("engine:     %s, golden run %d cycles\n", mode, res.GoldenCycles)
	fmt.Printf("Pf:         %s of faults propagated to failures (95%% CI %s..%s, Wilson)\n",
		report.Percent(res.Pf), report.Percent(res.PfLow), report.Percent(res.PfHigh))
	if res.MaxLatencyCycles >= 0 {
		fmt.Printf("latency:    max detection latency %d cycles\n", res.MaxLatencyCycles)
	}

	counts := fault.OutcomeCounts(res.Results)
	outs := make([]fault.Outcome, 0, len(counts))
	for o := range counts {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	fmt.Printf("outcomes:  ")
	for _, o := range outs {
		fmt.Printf(" %v=%d", o, counts[o])
	}
	fmt.Println()

	tab := &report.Table{Title: "per-unit Pf (Pmf of Equation 1)", Columns: []string{"unit", "Pf"}}
	units := make([]sparc.Unit, 0, len(res.PfByUnit))
	for u := range res.PfByUnit {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	for _, u := range units {
		tab.AddRow(u.String(), report.Percent(res.PfByUnit[u]))
	}
	fmt.Print(tab.String())
}

// aliasValue lets -models share the -model flag's storage.
type aliasValue struct{ s *string }

func (a aliasValue) String() string {
	if a.s == nil {
		return ""
	}
	return *a.s
}
func (a aliasValue) Set(v string) error { *a.s = v; return nil }

// modelByName maps CLI model names onto core fault models for the
// raw-results path; the service path defers to jobs.Request validation.
var modelByName = map[string]core.FaultModel{
	"sa0":  core.StuckAt0,
	"sa1":  core.StuckAt1,
	"open": core.OpenLine,
	"seu":  core.BitFlip,
	"set":  core.SETPulse,
}

// splitModels turns a comma-separated -model value into the service's
// model-name list, trimming blanks so "sa1, seu" parses.
func splitModels(v string) []string {
	var out []string
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// renderOutcome prints the human-readable summary of a service-path
// campaign (sharded and/or adaptive executions go through the canonical
// outcome rather than raw engine results).
func renderOutcome(out *jobs.Outcome, shards int, elapsed time.Duration) {
	fmt.Printf("workload:   %s, target %s, %d injections in %.1fs",
		out.Request.Workload, strings.ToUpper(out.Request.Target), out.Injections, elapsed.Seconds())
	if shards > 1 {
		fmt.Printf(" (%d shards)", shards)
	}
	fmt.Println()
	engine := "from-reset re-simulation"
	if out.Checkpointed {
		engine = "golden-run forking (warm-up prefix simulated once)"
	}
	ticks := "cycles"
	if out.Request.Engine == "iss" {
		ticks = "instructions (ISS timebase)"
	}
	fmt.Printf("engine:     %s, golden run %d %s\n", engine, out.GoldenCycles, ticks)
	if out.EarlyStopped {
		fmt.Printf("adaptive:   converged after %d of %d experiments (epsilon %.3g, Wilson 95%%)\n",
			out.Injections, out.Requested, out.Request.Epsilon)
	}
	fmt.Printf("Pf:         %s of faults propagated to failures (95%% CI %s..%s, Wilson)\n",
		report.Percent(out.Pf), report.Percent(out.PfLow), report.Percent(out.PfHigh))
	if out.MaxLatencyCycles >= 0 {
		fmt.Printf("latency:    max detection latency %d cycles\n", out.MaxLatencyCycles)
	}
	if h := out.Hybrid; h != nil {
		fmt.Printf("hybrid:     %d ISS-trusted + %d RTL (%d audited), %d audit disagreements (%s)\n",
			h.ISSExperiments, h.RTLExperiments, h.Audited, h.Disagreements, report.Percent(h.DisagreementRate))
		fmt.Printf("corrected:  Pf interval %s..%s after audit-error widening\n",
			report.Percent(h.CorrectedPfLow), report.Percent(h.CorrectedPfHigh))
		tab := &report.Table{
			Title:   "hybrid routing by node class",
			Columns: []string{"unit", "exps", "rtl", "audited", "R2", "routed", "pred Pf", "audit Pf"},
		}
		for _, c := range h.Classes {
			routed := "trust"
			if c.Escalated {
				routed = "escalate"
			}
			tab.AddRow(c.Unit, c.Experiments, c.RTLExperiments, c.Audited,
				fmt.Sprintf("%.3f", c.R2), routed,
				report.Percent(c.PredictedPf), report.Percent(c.AuditedPf))
		}
		fmt.Print(tab.String())
	}
	// Sort outcome and unit names in their enum order, exactly like the
	// raw-results path above: adding -shards or -epsilon must not reorder
	// any output line.
	keys := make([]string, 0, len(out.Outcomes))
	for k := range out.Outcomes {
		keys = append(keys, k)
	}
	sortByRank(keys, outcomeRank())
	fmt.Printf("outcomes:  ")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, out.Outcomes[k])
	}
	fmt.Println()
	tab := &report.Table{Title: "per-unit Pf (Pmf of Equation 1)", Columns: []string{"unit", "Pf"}}
	units := make([]string, 0, len(out.PfByUnit))
	for u := range out.PfByUnit {
		units = append(units, u)
	}
	sortByRank(units, unitRank())
	for _, u := range units {
		tab.AddRow(u, report.Percent(out.PfByUnit[u]))
	}
	fmt.Print(tab.String())
}

// outcomeRank and unitRank map the service's wire names back onto their
// enum order so sharded/adaptive renderings sort like the raw-results
// path.
func outcomeRank() map[string]int {
	r := map[string]int{}
	for o := fault.OutcomeNoEffect; o <= fault.OutcomeHang; o++ {
		r[o.String()] = int(o)
	}
	return r
}

func unitRank() map[string]int {
	r := map[string]int{}
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		r[u.String()] = int(u)
	}
	return r
}

// sortByRank orders names by their rank, unknown names last by name.
func sortByRank(names []string, rank map[string]int) {
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return names[i] < names[j]
		}
	})
}
