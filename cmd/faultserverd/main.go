// Command faultserverd is the fault-campaign job server: a long-running
// HTTP daemon that schedules RTL fault-injection campaigns on a bounded
// worker pool, coalesces duplicate submissions, serves repeated requests
// from a content-addressed result cache, and streams live campaign
// progress (experiment counts, progressive Pf with Wilson confidence
// intervals) as NDJSON.
//
// Usage:
//
//	faultserverd -addr :8080 -jobs 2 -campaign-workers 0
//
// With -data-dir the daemon is durable and crash-restartable: completed
// campaign outcomes are committed to an on-disk content-addressed
// result store and every job/shard lifecycle event to a checksummed
// write-ahead journal under that directory. A restarted daemon —
// SIGKILL included — replays the journal, serves finished campaigns
// from the store without re-executing them, and resumes in-flight
// campaigns from their last durably completed shard; the recovered
// outcome is byte-identical to an undisturbed run. /readyz answers 503
// until recovery finishes, then 200.
//
// With -shards N each campaign is split into N deterministic
// experiment-range shards, drained by in-process shard workers and by
// any remote workers pulling leases over the HTTP shard surface.
// Sharding is scheduling, not content: results stay byte-identical to
// unsharded runs. That holds for transient campaigns too — requests may
// list the transient models "seu" and "set" (with "pulse_cycles" for
// the glitch width) next to the permanent ones; injection instants are
// sampled from the request seed keyed by absolute experiment index, so
// every worker schedules the identical instants.
//
// Worker mode joins another daemon's campaigns instead of serving:
//
//	faultserverd -worker -coordinator http://host:8080 -worker-id w1
//
// The worker polls the coordinator for shards, executes them on the
// local pooled engine (each campaign's golden run is simulated once per
// worker process, then shared across its shards), streams partial
// tallies back, and survives coordinator restarts. Scale out = start
// more workers; no other configuration.
//
// The listening address is printed to stdout once the socket is bound
// (useful with -addr 127.0.0.1:0 in scripts). See internal/server for the
// API surface and README "Scaling out" for examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultserverd: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		njobs   = flag.Int("jobs", 2, "campaigns executed concurrently")
		queue   = flag.Int("queue", 64, "max queued campaigns")
		workers = flag.Int("campaign-workers", 0, "experiment workers per campaign, or per shard in worker mode (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "experiment-range shards per campaign (>1 enables the shard pool and the HTTP shard surface)")
		local   = flag.Int("shard-local-workers", 0, "in-process shard executors per campaign (0 = campaign workers, -1 = serve shards to remote workers only)")
		ttl     = flag.Duration("shard-lease-ttl", 2*time.Minute, "reclaim a shard whose worker has been silent this long")
		dataDir = flag.String("data-dir", "", "directory for the durable result store and job journal (empty = in-memory only)")

		workerMode  = flag.Bool("worker", false, "run as a shard worker instead of a server")
		coordinator = flag.String("coordinator", "", "coordinator base URL (worker mode)")
		workerID    = flag.String("worker-id", "", "worker name reported to the coordinator (default host:pid)")
		backoffMax  = flag.Duration("worker-backoff-max", 5*time.Second, "cap on the worker's jittered lease backoff (worker mode)")
	)
	flag.Parse()

	if *workerMode {
		runWorker(*coordinator, *workerID, *workers, *backoffMax)
		return
	}

	mgr, recovery, err := jobs.OpenManager(jobs.ManagerOptions{
		Concurrency:       *njobs,
		QueueDepth:        *queue,
		CampaignWorkers:   *workers,
		Shards:            *shards,
		ShardLocalWorkers: *local,
		ShardLeaseTTL:     *ttl,
		DataDir:           *dataDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faultserverd: listening on http://%s\n", ln.Addr())
	if *shards > 1 {
		log.Printf("sharding campaigns %d ways (local executors: %s)", *shards, localDesc(*local))
	}
	if *dataDir != "" {
		log.Printf("durable data dir %s: %d stored results, %d in-flight jobs resumed (%d shards pre-folded)",
			*dataDir, recovery.StoredResults, recovery.ResumedJobs, recovery.RecoveredShards)
		if recovery.TornTail {
			log.Printf("journal had a torn final record (crash mid-append); truncated and continuing")
		}
	}
	api := server.New(mgr)
	api.SetReady()
	srv := &http.Server{
		Handler: api.Handler(),
		// No WriteTimeout: the NDJSON stream endpoint is legitimately
		// long-lived. Reads (headers and bodies — a campaign request is
		// tiny) and idle keep-alives are bounded so stalled clients
		// cannot pin connections.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		log.Printf("received %v, shutting down", sig)
		// Shutdown ordering matters: close the manager first so in-flight
		// jobs cancel within one experiment granule and every watcher gets
		// its terminal snapshot; then drain the NDJSON streams so their
		// last lines are flushed over still-open connections; only then
		// close the listener. Draining before Shutdown is what spares
		// clients the connection resets a racing close used to cause.
		mgr.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.SetKeepAlivesEnabled(false)
		if err := api.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}
}

func localDesc(local int) string {
	if local < 0 {
		return "none, remote workers only"
	}
	if local == 0 {
		return "campaign workers"
	}
	return fmt.Sprint(local)
}

// runWorker joins a coordinator's campaigns until SIGTERM/SIGINT.
func runWorker(coordinator, id string, workers int, backoffMax time.Duration) {
	if coordinator == "" {
		log.Fatal("-worker requires -coordinator URL")
	}
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	log.SetPrefix("faultserverd[" + id + "]: ")
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	w := &server.Worker{
		Coordinator: coordinator,
		Name:        id,
		Workers:     workers,
		BackoffMax:  backoffMax,
		Log:         log.Default(),
	}
	log.Printf("pulling shards from %s", coordinator)
	if err := w.Run(ctx); err != nil && err != context.Canceled {
		log.Fatal(err)
	}
	log.Printf("worker stopped")
}
