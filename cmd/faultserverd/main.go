// Command faultserverd is the fault-campaign job server: a long-running
// HTTP daemon that schedules RTL fault-injection campaigns on a bounded
// worker pool, coalesces duplicate submissions, serves repeated requests
// from a content-addressed result cache, and streams live campaign
// progress (experiment counts, progressive Pf with Wilson confidence
// intervals) as NDJSON.
//
// Usage:
//
//	faultserverd -addr :8080 -jobs 2 -campaign-workers 0
//
// With -data-dir the daemon is durable and crash-restartable: completed
// campaign outcomes are committed to an on-disk content-addressed
// result store and every job/shard lifecycle event to a checksummed
// write-ahead journal under that directory. A restarted daemon —
// SIGKILL included — replays the journal, serves finished campaigns
// from the store without re-executing them, and resumes in-flight
// campaigns from their last durably completed shard; the recovered
// outcome is byte-identical to an undisturbed run. /readyz answers 503
// until recovery finishes, then 200.
//
// With -shards N each campaign is split into N deterministic
// experiment-range shards, drained by in-process shard workers and by
// any remote workers pulling leases over the HTTP shard surface.
// Sharding is scheduling, not content: results stay byte-identical to
// unsharded runs. That holds for transient campaigns too — requests may
// list the transient models "seu" and "set" (with "pulse_cycles" for
// the glitch width) next to the permanent ones; injection instants are
// sampled from the request seed keyed by absolute experiment index, so
// every worker schedules the identical instants.
//
// Observability: GET /metrics serves a Prometheus text exposition
// covering the fault engine, job manager, shard pool, durable store and
// HTTP transport. Daemon logs are structured (-log-format text|json,
// -log-level debug|info|warn|error) with per-job and per-shard
// attributes. -pprof-addr starts a net/http/pprof listener on a
// separate address. None of this touches campaign content: metrics and
// logs are observation only, and content addresses are byte-identical
// with or without them.
//
// Worker mode joins another daemon's campaigns instead of serving:
//
//	faultserverd -worker -coordinator http://host:8080 -worker-id w1
//
// The worker polls the coordinator for shards, executes them on the
// local pooled engine (each campaign's golden run is simulated once per
// worker process, then shared across its shards), streams partial
// tallies back, and survives coordinator restarts. Scale out = start
// more workers; no other configuration. With -metrics-addr a worker
// serves its own small /metrics listener (shards executed, report
// retries, drops, current lease backoff) plus /healthz with the same
// counters as JSON.
//
// The listening address is printed to stdout once the socket is bound
// (useful with -addr 127.0.0.1:0 in scripts). See internal/server for the
// API surface and README "Scaling out" for examples.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
)

// newLogger builds the process logger from the -log-format/-log-level
// flags. Unknown values fall back to text/info rather than failing the
// boot: a daemon with slightly wrong logging flags should still serve.
func newLogger(format, level string) *slog.Logger {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h)
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		njobs   = flag.Int("jobs", 2, "campaigns executed concurrently")
		queue   = flag.Int("queue", 64, "max queued campaigns")
		workers = flag.Int("campaign-workers", 0, "experiment workers per campaign, or per shard in worker mode (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "experiment-range shards per campaign (>1 enables the shard pool and the HTTP shard surface)")
		local   = flag.Int("shard-local-workers", 0, "in-process shard executors per campaign (0 = campaign workers, -1 = serve shards to remote workers only)")
		ttl     = flag.Duration("shard-lease-ttl", 2*time.Minute, "reclaim a shard whose worker has been silent this long")
		dataDir = flag.String("data-dir", "", "directory for the durable result store and job journal (empty = in-memory only)")

		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")

		workerMode  = flag.Bool("worker", false, "run as a shard worker instead of a server")
		coordinator = flag.String("coordinator", "", "coordinator base URL (worker mode)")
		workerID    = flag.String("worker-id", "", "worker name reported to the coordinator (default host:pid)")
		backoffMax  = flag.Duration("worker-backoff-max", 5*time.Second, "cap on the worker's jittered lease backoff (worker mode)")
		metricsAddr = flag.String("metrics-addr", "", "worker mode: serve /metrics and /healthz on this address (empty = disabled)")
	)
	flag.Parse()
	logger := newLogger(*logFormat, *logLevel)

	if *pprofAddr != "" {
		go servePprof(*pprofAddr, logger)
	}

	if *workerMode {
		runWorker(logger, *coordinator, *workerID, *workers, *backoffMax, *metricsAddr)
		return
	}

	reg := obs.NewRegistry()
	mgr, recovery, err := jobs.OpenManager(jobs.ManagerOptions{
		Concurrency:       *njobs,
		QueueDepth:        *queue,
		CampaignWorkers:   *workers,
		Shards:            *shards,
		ShardLocalWorkers: *local,
		ShardLeaseTTL:     *ttl,
		DataDir:           *dataDir,
		Obs:               reg,
		Log:               logger,
	})
	if err != nil {
		logger.Error("boot failed", "error", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	// The stdout line is an interface: scripts (and the smoke tests)
	// scrape the bound address from it, so it stays a bare printf no
	// matter the log format.
	fmt.Printf("faultserverd: listening on http://%s\n", ln.Addr())
	if *shards > 1 {
		logger.Info("sharding enabled", "shards", *shards, "local_executors", localDesc(*local))
	}
	if *dataDir != "" {
		logger.Info("durable mode",
			"data_dir", *dataDir,
			"stored_results", recovery.StoredResults,
			"resumed_jobs", recovery.ResumedJobs,
			"recovered_shards", recovery.RecoveredShards)
		if recovery.TornTail {
			logger.Warn("journal had a torn final record (crash mid-append); truncated and continuing")
		}
	}
	api := server.New(mgr, server.WithObs(reg), server.WithBootInfo(recovery, *dataDir))
	api.SetReady()
	srv := &http.Server{
		Handler: api.Handler(),
		// No WriteTimeout: the NDJSON stream endpoint is legitimately
		// long-lived. Reads (headers and bodies — a campaign request is
		// tiny) and idle keep-alives are bounded so stalled clients
		// cannot pin connections.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		// Shutdown ordering matters: close the manager first so in-flight
		// jobs cancel within one experiment granule and every watcher gets
		// its terminal snapshot; then drain the NDJSON streams so their
		// last lines are flushed over still-open connections; only then
		// close the listener. Draining before Shutdown is what spares
		// clients the connection resets a racing close used to cause.
		mgr.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.SetKeepAlivesEnabled(false)
		if err := api.Drain(ctx); err != nil {
			logger.Warn("stream drain incomplete", "error", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown incomplete", "error", err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}
}

// servePprof runs the profiling listener. Registered explicitly on a
// private mux — importing net/http/pprof for its DefaultServeMux side
// effect would expose the profiler on the API listener too.
func servePprof(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener failed", "addr", addr, "error", err)
	}
}

func localDesc(local int) string {
	if local < 0 {
		return "none, remote workers only"
	}
	if local == 0 {
		return "campaign workers"
	}
	return fmt.Sprint(local)
}

// runWorker joins a coordinator's campaigns until SIGTERM/SIGINT.
func runWorker(logger *slog.Logger, coordinator, id string, workers int, backoffMax time.Duration, metricsAddr string) {
	if coordinator == "" {
		logger.Error("-worker requires -coordinator URL")
		os.Exit(1)
	}
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logger = logger.With("worker", id)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	reg := obs.NewRegistry()
	w := &server.Worker{
		Coordinator: coordinator,
		Name:        id,
		Workers:     workers,
		BackoffMax:  backoffMax,
		Log:         logger,
		Obs:         reg,
	}
	if metricsAddr != "" {
		// Register before the listener goes up so the first scrape already
		// sees the worker series (Run would re-register idempotently).
		w.RegisterMetrics(reg)
		go serveWorkerMetrics(metricsAddr, reg, w, logger)
	}
	logger.Info("pulling shards", "coordinator", coordinator)
	if err := w.Run(ctx); err != nil && err != context.Canceled {
		logger.Error("worker failed", "error", err)
		os.Exit(1)
	}
	logger.Info("worker stopped")
}

// serveWorkerMetrics is the worker-mode observability listener: /metrics
// in the text exposition format (engine counters included, since the
// worker's registry is threaded into its shard executions) and /healthz
// with the WorkerStats counters as JSON.
func serveWorkerMetrics(addr string, reg *obs.Registry, w *server.Worker, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(struct {
			Status string             `json:"status"`
			Stats  server.WorkerStats `json:"stats"`
		}{Status: "ok", Stats: w.Stats()})
	})
	logger.Info("worker metrics listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("worker metrics listener failed", "addr", addr, "error", err)
	}
}
