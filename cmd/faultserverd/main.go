// Command faultserverd is the fault-campaign job server: a long-running
// HTTP daemon that schedules RTL fault-injection campaigns on a bounded
// worker pool, coalesces duplicate submissions, serves repeated requests
// from a content-addressed result cache, and streams live campaign
// progress (experiment counts, progressive Pf with Wilson confidence
// intervals) as NDJSON.
//
// Usage:
//
//	faultserverd -addr :8080 -jobs 2 -campaign-workers 0
//
// The listening address is printed to stdout once the socket is bound
// (useful with -addr 127.0.0.1:0 in scripts). See internal/server for the
// API surface and README "Running as a service" for curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultserverd: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		njobs   = flag.Int("jobs", 2, "campaigns executed concurrently")
		queue   = flag.Int("queue", 64, "max queued campaigns")
		workers = flag.Int("campaign-workers", 0, "experiment workers per campaign (0 = GOMAXPROCS)")
	)
	flag.Parse()

	mgr := jobs.NewManager(jobs.ManagerOptions{
		Concurrency:     *njobs,
		QueueDepth:      *queue,
		CampaignWorkers: *workers,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faultserverd: listening on http://%s\n", ln.Addr())
	srv := &http.Server{
		Handler: server.New(mgr).Handler(),
		// No WriteTimeout: the NDJSON stream endpoint is legitimately
		// long-lived. Reads (headers and bodies — a campaign request is
		// tiny) and idle keep-alives are bounded so stalled clients
		// cannot pin connections.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		log.Printf("received %v, shutting down", sig)
		// Close the manager first: in-flight jobs cancel within one
		// experiment granule, watchers get their terminal snapshots and
		// the stream handlers return, so the connections Shutdown waits
		// on actually go idle.
		mgr.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}
}
