// Command hybridsmoke is the hermetic end-to-end smoke test behind
// `make hybrid-smoke`: it proves the hybrid router's contract from the
// outside, through the same binary a user runs.
//
// Three checks, in order of the guarantees they pin:
//
//  1. Routing-contract audit (in-process): a real hybrid campaign's
//     outcome must be internally consistent — the ISS/RTL engine
//     partition sums to the injection count, every RTL row carries its
//     ISS prediction, unaudited RTL rows appear only in escalated
//     classes, the per-class accounting recounts exactly from the
//     experiments array, and the audit-corrected Pf interval contains
//     the raw Wilson interval.
//  2. Full-audit collapse (CLI): `faultcampaign -json -engine hybrid
//     -rtl-audit 1.0` must emit bytes identical to the pure-RTL
//     spelling of the same campaign — auditing everything IS a pure
//     RTL campaign, down to the content address.
//  3. Shard invariance (CLI): the hybrid campaign sharded 3 ways must
//     be byte-identical to the unsharded run — the routing plan is a
//     pure function of the request, the audit sample of
//     (seed, absolute index).
//
// It needs only the go toolchain; no network, no daemon.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/fault"
	"repro/internal/jobs"
)

// contractReq is the in-process routing-contract campaign: three
// permanent models over a 24-node IU sample with a high audit fraction,
// so every node class collects a judgeable audit sample.
var contractReq = jobs.Request{
	Workload:         "excerptA",
	Models:           []string{"sa0", "sa1", "open"},
	Nodes:            24,
	Seed:             3,
	InjectAtFraction: 0.3,
	Engine:           "hybrid",
	RTLAudit:         0.5,
}

// cliArgs is the CLI campaign the collapse and shard checks run: small
// enough to finish in seconds, big enough that the audit sample and the
// escalation set are both non-trivial.
func cliArgs(extra ...string) []string {
	args := []string{
		"-w", "excerptA", "-target", "iu", "-models", "sa0,sa1,open",
		"-nodes", "24", "-seed", "3", "-inject-frac", "0.3", "-json",
	}
	return append(args, extra...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hybridsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybridsmoke: OK (routing contract, full-audit collapse, shard invariance)")
}

func run() error {
	if err := contract(); err != nil {
		return fmt.Errorf("routing contract: %w", err)
	}

	dir, err := os.MkdirTemp("", "hybridsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "faultcampaign")
	build := exec.Command("go", "build", "-o", bin, "./cmd/faultcampaign")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building faultcampaign: %w", err)
	}

	// Full-audit collapse: hybrid with -rtl-audit 1.0 == pure RTL, byte
	// for byte. The hybrid spelling must also shed its accounting block
	// (a collapsed campaign has no router to account for).
	pure, err := campaign(bin, cliArgs()...)
	if err != nil {
		return err
	}
	full, err := campaign(bin, cliArgs("-engine", "hybrid", "-rtl-audit", "1.0")...)
	if err != nil {
		return err
	}
	if !bytes.Equal(pure, full) {
		return fmt.Errorf("-engine hybrid -rtl-audit 1.0 output differs from pure RTL (%d vs %d bytes)", len(full), len(pure))
	}
	if strings.Contains(string(full), `"hybrid"`) {
		return fmt.Errorf("collapsed full-audit campaign still mentions hybrid in its JSON")
	}
	log.Printf("full-audit collapse: hybrid -rtl-audit 1.0 == pure RTL (%d identical bytes)", len(pure))

	// Shard invariance: the same hybrid campaign, unsharded vs 3 shards.
	un, err := campaign(bin, cliArgs("-engine", "hybrid", "-rtl-audit", "0.5")...)
	if err != nil {
		return err
	}
	if !strings.Contains(string(un), `"hybrid"`) {
		return fmt.Errorf("hybrid campaign JSON carries no hybrid accounting block")
	}
	sh, err := campaign(bin, cliArgs("-engine", "hybrid", "-rtl-audit", "0.5", "-shards", "3")...)
	if err != nil {
		return err
	}
	if !bytes.Equal(un, sh) {
		return fmt.Errorf("sharded hybrid output differs from unsharded (%d vs %d bytes)", len(sh), len(un))
	}
	log.Printf("shard invariance: 3-way sharded hybrid == unsharded (%d identical bytes)", len(un))
	return nil
}

// campaign runs the built CLI once and returns its stdout.
func campaign(bin string, args ...string) ([]byte, error) {
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%s %s: %w", filepath.Base(bin), strings.Join(args, " "), err)
	}
	return out.Bytes(), nil
}

// contract executes the hybrid campaign in-process and audits the
// outcome's internal consistency.
func contract() error {
	out, err := jobs.Execute(context.Background(), contractReq, 4, nil)
	if err != nil {
		return err
	}
	h := out.Hybrid
	if h == nil {
		return fmt.Errorf("hybrid campaign returned no hybrid accounting")
	}
	if h.ISSExperiments+h.RTLExperiments != out.Injections {
		return fmt.Errorf("engine partition %d ISS + %d RTL != %d injections",
			h.ISSExperiments, h.RTLExperiments, out.Injections)
	}
	escalated := map[string]bool{}
	for _, c := range h.Classes {
		escalated[c.Unit] = c.Escalated
	}
	iss, rtl, audited, disagreements := 0, 0, 0, 0
	for i, e := range out.Experiments {
		switch e.Engine {
		case "iss":
			iss++
			if e.Audited || e.Predicted != "" {
				return fmt.Errorf("experiment %d: ISS-trusted row carries audit fields", i)
			}
			if escalated[e.Unit] {
				return fmt.Errorf("experiment %d: ISS-trusted row in escalated class %s", i, e.Unit)
			}
		case "rtl":
			rtl++
			if e.Predicted == "" {
				return fmt.Errorf("experiment %d: RTL row without its ISS prediction", i)
			}
			if e.Audited {
				audited++
				// Disagreement is on the failure indicator, not the exact
				// outcome label: a predicted mismatch audited as a hang is
				// still a correctly predicted failure.
				noEffect := fault.OutcomeNoEffect.String()
				if (e.Predicted != noEffect) != (e.Outcome != noEffect) {
					disagreements++
				}
			} else if !escalated[e.Unit] {
				return fmt.Errorf("experiment %d: unaudited RTL row in trusted class %s", i, e.Unit)
			}
		default:
			return fmt.Errorf("experiment %d: engine %q", i, e.Engine)
		}
	}
	if iss != h.ISSExperiments || rtl != h.RTLExperiments || audited != h.Audited {
		return fmt.Errorf("accounting (%d,%d,%d) != recount (%d,%d,%d)",
			h.ISSExperiments, h.RTLExperiments, h.Audited, iss, rtl, audited)
	}
	if disagreements != h.Disagreements {
		return fmt.Errorf("accounting reports %d disagreements, recount finds %d", h.Disagreements, disagreements)
	}
	if h.Audited == 0 {
		return fmt.Errorf("audit fraction %v selected nothing", contractReq.RTLAudit)
	}
	if h.CorrectedPfLow > out.PfLow || h.CorrectedPfHigh < out.PfHigh {
		return fmt.Errorf("corrected interval [%v,%v] narrower than Wilson [%v,%v]",
			h.CorrectedPfLow, h.CorrectedPfHigh, out.PfLow, out.PfHigh)
	}
	log.Printf("routing contract: %d ISS-trusted + %d RTL (%d audited, %d disagreements) over %d injections",
		h.ISSExperiments, h.RTLExperiments, h.Audited, h.Disagreements, out.Injections)
	return nil
}
