// Command issrun executes a bundled workload on the functional instruction
// set simulator and prints its Table-1-style characterization: instruction
// counts, off-core write count, instruction diversity and per-unit
// diversity Dm.
//
// Usage:
//
//	issrun -w rspeed [-iters 4] [-dataset 1] [-trace]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/core"
	"repro/internal/iss"
	"repro/internal/sparc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("issrun: ")
	var (
		name    = flag.String("w", "rspeed", "workload name ("+strings.Join(core.WorkloadNames(), ", ")+")")
		iters   = flag.Int("iters", 0, "kernel iterations (0 = workload default)")
		dataset = flag.Int("dataset", 0, "input dataset selector")
		budget  = flag.Uint64("max-insts", 100_000_000, "instruction budget")
		trace   = flag.Bool("trace", false, "print every executed instruction")
	)
	flag.Parse()

	w, err := core.BuildWorkload(*name, core.WorkloadConfig{Iterations: *iters, Dataset: *dataset})
	if err != nil {
		log.Fatal(err)
	}
	cpu := core.NewISS(w.Program)
	if *trace {
		cpu.OnInst = func(pc uint32, in sparc.Inst) {
			fmt.Fprintf(os.Stdout, "%08x  %s\n", pc, in.String())
		}
	}
	st := cpu.Run(*budget)
	if st != iss.StatusExited {
		log.Fatalf("workload did not exit: %v (trap %#x)", st, cpu.TrapTaken())
	}

	fmt.Printf("workload:     %s (%v, iterations=%d, dataset=%d)\n", w.Name, w.Kind, w.Config.Iterations, w.Config.Dataset)
	fmt.Printf("instructions: %d total, %d memory\n", cpu.Icount, cpu.MemoryInstCount())
	fmt.Printf("off-core:     %d writes, exit code %d\n", len(cpu.Bus.Trace.Writes), cpu.Bus.ExitCode())
	fmt.Printf("diversity:    %d instruction types\n", cpu.Diversity())
	ud := cpu.UnitDiversity()
	fmt.Printf("per-unit Dm: ")
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		fmt.Printf(" %s=%d", u, ud[u])
	}
	fmt.Println()
}
