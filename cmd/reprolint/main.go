// Command reprolint runs the repo's custom static-analysis suite: the
// analyzers in internal/lint that mechanically enforce the determinism,
// content-address and observability invariants (see DESIGN.md §14).
//
// Usage:
//
//	go run ./cmd/reprolint [packages]
//
// With no arguments it analyzes ./... . Exit status 0 means clean, 1
// means findings were reported, 2 means the driver itself failed (bad
// pattern, package that does not type-check). Line-scoped escape
// hatches are //lint:allow <tag> comments next to the audited site.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

var analyzers = []*lint.Analyzer{
	lint.DetAnalyzer,
	lint.AddrAnalyzer,
	lint.ObsAnalyzer,
	lint.SeamAnalyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "\n  %s (//lint:allow %s)\n    %s\n", a.Name, a.Tag, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(lint.Main(os.Stdout, flag.Args(), analyzers...))
}
