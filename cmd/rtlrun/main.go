// Command rtlrun executes a bundled workload on the LEON3-like RTL model,
// verifies it in lockstep against the functional ISS (off-core trace,
// instruction counts, exit status) and prints timing figures.
//
// Usage:
//
//	rtlrun -w canrdr [-iters 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/core"
	"repro/internal/iss"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtlrun: ")
	var (
		name    = flag.String("w", "canrdr", "workload name ("+strings.Join(core.WorkloadNames(), ", ")+")")
		iters   = flag.Int("iters", 2, "kernel iterations")
		dataset = flag.Int("dataset", 0, "input dataset selector")
		cycles  = flag.Uint64("max-cycles", 400_000_000, "cycle budget")
	)
	flag.Parse()

	w, err := core.BuildWorkload(*name, core.WorkloadConfig{Iterations: *iters, Dataset: *dataset})
	if err != nil {
		log.Fatal(err)
	}

	cpu := core.NewISS(w.Program)
	if st := cpu.Run(*cycles); st != iss.StatusExited {
		log.Fatalf("ISS did not exit: %v", st)
	}

	rtl := core.NewRTL(w.Program)
	t0 := time.Now()
	st := rtl.Run(*cycles)
	wall := time.Since(t0)
	if st != iss.StatusExited {
		log.Fatalf("RTL did not exit: %v (pc=%08x)", st, rtl.PC())
	}

	if d := rtl.Bus.Trace.Divergence(&cpu.Bus.Trace); d != -1 {
		log.Fatalf("LOCKSTEP FAILURE: off-core traces diverge at write %d", d)
	}
	if rtl.Icount != cpu.Icount {
		log.Fatalf("LOCKSTEP FAILURE: icount RTL=%d ISS=%d", rtl.Icount, cpu.Icount)
	}

	fmt.Printf("workload:  %s (iterations=%d)\n", w.Name, *iters)
	fmt.Printf("lockstep:  OK — %d off-core writes identical to ISS\n", len(rtl.Bus.Trace.Writes))
	fmt.Printf("executed:  %d instructions in %d cycles (CPI %.2f)\n",
		rtl.Icount, rtl.Cycles(), float64(rtl.Cycles())/float64(rtl.Icount))
	fmt.Printf("sim speed: %.0f cycles/s (%.3fs wall clock)\n",
		float64(rtl.Cycles())/wall.Seconds(), wall.Seconds())
	fmt.Printf("design:    %v\n", rtl.K)
}
