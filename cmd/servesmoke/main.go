// Command servesmoke is the hermetic end-to-end smoke test behind `make
// serve-smoke`: it builds faultserverd and faultcampaign, boots the
// daemon (sharded and durable, so every subsystem is live) on an
// ephemeral port, submits one small campaign over HTTP twice, streams
// its NDJSON progress, and asserts the service contract — the duplicate
// submission coalesces or cache-hits (one engine execution), both
// result payloads are byte-identical, and they match `faultcampaign
// -json` byte for byte for the same spec.
//
// It also scrapes GET /metrics twice — once mid-campaign, once after —
// and asserts the observability contract: the exposition parses, core
// series from every layer (engine, jobs, shards, store, HTTP) exist,
// the experiment counter is monotone, and the queue depth returns to
// zero once the campaign finishes.
//
// It needs only the go toolchain and a TCP loopback; no curl or jq.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// spec is the one small campaign the smoke submits: excerptA's golden run
// is under a thousand cycles, so the whole round trip is sub-second.
var spec = map[string]interface{}{
	"workload":           "excerptA",
	"target":             "iu",
	"models":             []string{"sa1"},
	"nodes":              6,
	"seed":               1,
	"inject_at_fraction": 0.3,
}

var cliArgs = []string{
	"-w", "excerptA", "-target", "iu", "-model", "sa1",
	"-nodes", "6", "-seed", "1", "-inject-frac", "0.3", "-json",
	"-iters", "0",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("servesmoke: OK")
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	serverBin := filepath.Join(dir, "faultserverd")
	cliBin := filepath.Join(dir, "faultcampaign")
	for bin, pkg := range map[string]string{
		serverBin: "./cmd/faultserverd",
		cliBin:    "./cmd/faultcampaign",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Boot the daemon on an ephemeral port and scrape the bound address.
	// Sharded + durable so the shard-pool and store metric families are
	// exercised too; neither changes result bytes.
	srv := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-jobs", "1",
		"-shards", "2", "-data-dir", filepath.Join(dir, "data"))
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
			base = strings.TrimSpace(sc.Text()[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		return fmt.Errorf("server never reported its address")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	log.Printf("server at %s", base)
	if err := waitReady(base); err != nil {
		return err
	}

	// Submit the campaign twice.
	body, _ := json.Marshal(spec)
	id1, code1, err := submit(base, body)
	if err != nil {
		return err
	}
	if code1 != http.StatusCreated {
		return fmt.Errorf("first submission: HTTP %d, want 201", code1)
	}
	id2, code2, err := submit(base, body)
	if err != nil {
		return err
	}
	if code2 != http.StatusOK {
		return fmt.Errorf("second submission: HTTP %d, want 200 (coalesced or cached)", code2)
	}
	if id2 != id1 {
		return fmt.Errorf("second submission got job %s, want %s", id2, id1)
	}

	// First metrics scrape, while the campaign is (at most) in flight:
	// the exposition must already parse and carry the HTTP series.
	midMetrics, err := scrapeMetrics(base)
	if err != nil {
		return fmt.Errorf("mid-campaign metrics: %w", err)
	}

	// Stream progress until the job is terminal.
	sresp, err := http.Get(base + "/api/v1/campaigns/" + id1 + "/stream")
	if err != nil {
		return err
	}
	defer sresp.Body.Close()
	var lastLine []byte
	lines := 0
	ssc := bufio.NewScanner(sresp.Body)
	for ssc.Scan() {
		lastLine = append(lastLine[:0], ssc.Bytes()...)
		lines++
	}
	var last struct {
		State string  `json:"state"`
		Done  int     `json:"done"`
		Total int     `json:"total"`
		Pf    float64 `json:"pf"`
	}
	if err := json.Unmarshal(lastLine, &last); err != nil {
		return fmt.Errorf("bad NDJSON tail %q: %w", lastLine, err)
	}
	if last.State != "done" {
		return fmt.Errorf("job ended %q after %d snapshots", last.State, lines)
	}
	log.Printf("streamed %d progress snapshots, final Pf %.4f over %d experiments",
		lines, last.Pf, last.Total)

	// The engine must have run exactly once for the two submissions.
	var health struct {
		Stats struct {
			Executed  int `json:"executed"`
			Submitted int `json:"submitted"`
		} `json:"stats"`
	}
	if err := getJSON(base+"/api/v1/healthz", &health); err != nil {
		return err
	}
	if health.Stats.Executed != 1 || health.Stats.Submitted != 2 {
		return fmt.Errorf("stats %+v: want 2 submissions, 1 execution", health.Stats)
	}

	// Both result fetches must be byte-identical...
	res1, err := getBytes(base + "/api/v1/campaigns/" + id1 + "/result")
	if err != nil {
		return err
	}
	res2, err := getBytes(base + "/api/v1/campaigns/" + id1 + "/result")
	if err != nil {
		return err
	}
	if !bytes.Equal(res1, res2) {
		return fmt.Errorf("result payloads differ between fetches")
	}

	// ...and byte-identical to `faultcampaign -json` for the same spec.
	cli := exec.Command(cliBin, cliArgs...)
	cli.Stderr = os.Stderr
	cliOut, err := cli.Output()
	if err != nil {
		return fmt.Errorf("faultcampaign -json: %w", err)
	}
	if !bytes.Equal(res1, cliOut) {
		return fmt.Errorf("server result and faultcampaign -json diverge:\n--- server\n%s\n--- cli\n%s", res1, cliOut)
	}
	log.Printf("server result == faultcampaign -json (%d bytes)", len(res1))

	// Final metrics scrape: every layer must have reported, the
	// experiment counter must be monotone across the two scrapes, and the
	// queue must have drained.
	final, err := scrapeMetrics(base)
	if err != nil {
		return fmt.Errorf("final metrics: %w", err)
	}
	if err := checkMetrics(midMetrics, final); err != nil {
		return err
	}
	log.Printf("metrics OK: %d series, %v experiments executed",
		len(final), final.value("engine_experiments_total"))
	return nil
}

// metrics is a flat view of one /metrics scrape: full series name
// (labels included) -> value.
type metrics map[string]float64

// value returns the exact (label-free) series value, NaN-safe zero when
// absent — callers assert presence separately via has/hasPrefix.
func (m metrics) value(name string) float64 { return m[name] }

func (m metrics) has(name string) bool { _, ok := m[name]; return ok }

// hasPrefix reports whether any series of the family exists (labelled
// families render as name{...}).
func (m metrics) hasPrefix(name string) bool {
	for k := range m {
		if strings.HasPrefix(k, name) {
			return true
		}
	}
	return false
}

// scrapeMetrics fetches and parses GET /metrics. The parser accepts
// exactly the text exposition subset the daemon emits: comment lines
// and `series value` pairs.
func scrapeMetrics(base string) (metrics, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("GET /metrics: content type %q", ct)
	}
	m := metrics{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("unparseable metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %w", line, err)
		}
		m[line[:i]] = v
	}
	return m, sc.Err()
}

// checkMetrics asserts the observability contract over the two scrapes.
func checkMetrics(mid, final metrics) error {
	// One series per instrumented layer must exist after the campaign.
	for _, name := range []string{
		"engine_experiments_total",
		"engine_golden_pass_cycles_total",
		"jobs_submitted_total",
		"jobs_executed_total",
		"jobs_queue_depth",
		"shards_campaigns_total",
		"shards_completed_total",
		"shards_inflight",
		"store_results",
		"store_journal_records",
	} {
		if !final.has(name) {
			return fmt.Errorf("metrics: series %s missing", name)
		}
	}
	for _, prefix := range []string{
		"http_requests_total{",
		"http_request_seconds_bucket{",
		"jobs_job_duration_seconds_count",
		"jobs_campaign_stage_seconds_count{",
	} {
		if !final.hasPrefix(prefix) {
			return fmt.Errorf("metrics: no series matching %s", prefix)
		}
	}
	if got, was := final.value("engine_experiments_total"), mid.value("engine_experiments_total"); got < was {
		return fmt.Errorf("engine_experiments_total went backwards: %v then %v", was, got)
	} else if got <= 0 {
		return fmt.Errorf("engine_experiments_total = %v after an executed campaign", got)
	}
	if v := final.value("jobs_queue_depth"); v != 0 {
		return fmt.Errorf("jobs_queue_depth = %v after all jobs finished, want 0", v)
	}
	if v := final.value("jobs_submitted_total"); v != 2 {
		return fmt.Errorf("jobs_submitted_total = %v, want 2", v)
	}
	if v := final.value("jobs_executed_total"); v != 1 {
		return fmt.Errorf("jobs_executed_total = %v, want 1", v)
	}
	if v := final.value("shards_campaigns_total"); v != 1 {
		return fmt.Errorf("shards_campaigns_total = %v, want 1", v)
	}
	if v := final.value("shards_completed_total"); v < 1 {
		return fmt.Errorf("shards_completed_total = %v, want >= 1", v)
	}
	if v := final.value("store_results"); v != 1 {
		return fmt.Errorf("store_results = %v, want 1", v)
	}
	return nil
}

// waitReady polls the readiness probe, not liveness: /readyz answers 503
// until the daemon has finished opening its data dir and replaying any
// journal, so a durable server is only used once recovery is complete.
func waitReady(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server never became ready")
}

func submit(base string, body []byte) (id string, code int, err error) {
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return "", resp.StatusCode, fmt.Errorf("submit response %q: %w", b, err)
	}
	return st.ID, resp.StatusCode, nil
}

func getBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func getJSON(url string, v interface{}) error {
	b, err := getBytes(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
