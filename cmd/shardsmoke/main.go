// Command shardsmoke is the hermetic end-to-end smoke test behind `make
// shard-smoke`: it builds faultserverd and faultcampaign, boots a
// coordinator daemon in remote-only shard mode plus three worker
// processes, runs a Figure-4-sized campaign (rspeed) through the
// distributed shard path, and asserts the scaling contract — the merged
// result is byte-identical to `faultcampaign -json` run unsharded, the
// in-process sharded CLI (3 workers, one binary) matches too, on both
// injection targets, and the coordinator accounted for every shard. A
// second campaign repeats the exercise with the transient models
// (seu/set), whose per-experiment injection-cycle sampling must survive
// arbitrary shard-to-worker assignment byte-for-byte.
//
// It needs only the go toolchain and a TCP loopback.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// spec is the Figure-4-sized campaign: rspeed at 2 kernel iterations
// (the figure's first configuration), stuck-at-1 over a 60-node IU
// sample — 60 experiments split 6 ways across 3 worker processes.
var spec = map[string]interface{}{
	"workload":           "rspeed",
	"iterations":         2,
	"target":             "iu",
	"models":             []string{"sa1"},
	"nodes":              60,
	"seed":               1,
	"inject_at_fraction": 0.3,
}

// transientSpec is the transient twin: both transient models (SEU
// bit-flips and 2-cycle SET pulses) over a 30-node sample of the same
// workload — 60 experiments whose injection cycles are sampled per
// experiment, so byte-identity across the distributed path proves the
// schedule is keyed by absolute experiment index, not worker order.
var transientSpec = map[string]interface{}{
	"workload":           "rspeed",
	"iterations":         2,
	"target":             "iu",
	"models":             []string{"seu", "set"},
	"pulse_cycles":       2,
	"nodes":              30,
	"seed":               1,
	"inject_at_fraction": 0.3,
}

func cliArgs(target string, extra ...string) []string {
	args := []string{
		"-w", "rspeed", "-iters", "2", "-target", target, "-model", "sa1",
		"-nodes", "60", "-seed", "1", "-inject-frac", "0.3", "-json",
	}
	return append(args, extra...)
}

func transientCliArgs(extra ...string) []string {
	args := []string{
		"-w", "rspeed", "-iters", "2", "-target", "iu", "-models", "seu,set",
		"-pulse", "2", "-nodes", "30", "-seed", "1", "-inject-frac", "0.3", "-json",
	}
	return append(args, extra...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shardsmoke: OK")
}

func run() error {
	dir, err := os.MkdirTemp("", "shardsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	serverBin := filepath.Join(dir, "faultserverd")
	cliBin := filepath.Join(dir, "faultcampaign")
	for bin, pkg := range map[string]string{
		serverBin: "./cmd/faultserverd",
		cliBin:    "./cmd/faultcampaign",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Coordinator: 6 shards per campaign, no local shard execution — all
	// work must flow over the HTTP shard surface to the workers.
	srv := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-jobs", "1",
		"-shards", "6", "-shard-local-workers=-1", "-shard-lease-ttl", "30s")
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
			base = strings.TrimSpace(sc.Text()[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		return fmt.Errorf("coordinator never reported its address")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	log.Printf("coordinator at %s", base)
	if err := waitHealthy(base); err != nil {
		return err
	}

	// Three worker processes, each with modest intra-shard parallelism.
	var workers []*exec.Cmd
	defer func() {
		for _, w := range workers {
			w.Process.Signal(syscall.SIGTERM)
			w.Wait()
		}
	}()
	for i := 1; i <= 3; i++ {
		w := exec.Command(serverBin, "-worker", "-coordinator", base,
			"-worker-id", fmt.Sprintf("w%d", i), "-campaign-workers", "2")
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return err
		}
		workers = append(workers, w)
	}
	log.Printf("3 workers pulling shards")

	// Submit the campaign and stream progress until terminal.
	body, _ := json.Marshal(spec)
	id, code, err := submit(base, body)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("submission: HTTP %d, want 201", code)
	}
	state, snapshots, err := streamToEnd(base, id)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("job ended %q after %d snapshots", state, snapshots)
	}
	log.Printf("sharded campaign done after %d progress snapshots", snapshots)

	// The distributed result must be byte-identical to the unsharded CLI.
	serverRes, err := getBytes(base + "/api/v1/campaigns/" + id + "/result")
	if err != nil {
		return err
	}
	unsharded, err := runCLI(cliBin, cliArgs("iu")...)
	if err != nil {
		return err
	}
	if !bytes.Equal(serverRes, unsharded) {
		return fmt.Errorf("distributed sharded result and unsharded faultcampaign -json diverge:\n--- server\n%s\n--- cli\n%s", serverRes, unsharded)
	}
	log.Printf("coordinator+workers == unsharded CLI (%d bytes)", len(serverRes))

	// The in-process sharded CLI (3 workers, one binary) matches too —
	// on the IU target and on CMEM.
	for _, target := range []string{"iu", "cmem"} {
		want := unsharded
		if target == "cmem" {
			if want, err = runCLI(cliBin, cliArgs(target)...); err != nil {
				return err
			}
		}
		sharded, err := runCLI(cliBin, cliArgs(target, "-shards", "3")...)
		if err != nil {
			return err
		}
		if !bytes.Equal(want, sharded) {
			return fmt.Errorf("target %s: -shards 3 diverged from unsharded -json", target)
		}
		log.Printf("target %s: -shards 3 == unsharded (%d bytes)", target, len(want))
	}

	// Transient campaign through the same distributed path: SEU bit-flips
	// and SET pulses, whose per-experiment injection cycles must come out
	// identical no matter which worker executes which shard.
	tbody, _ := json.Marshal(transientSpec)
	tid, tcode, err := submit(base, tbody)
	if err != nil {
		return err
	}
	if tcode != http.StatusCreated {
		return fmt.Errorf("transient submission: HTTP %d, want 201", tcode)
	}
	tstate, tsnaps, err := streamToEnd(base, tid)
	if err != nil {
		return err
	}
	if tstate != "done" {
		return fmt.Errorf("transient job ended %q after %d snapshots", tstate, tsnaps)
	}
	tServer, err := getBytes(base + "/api/v1/campaigns/" + tid + "/result")
	if err != nil {
		return err
	}
	tUnsharded, err := runCLI(cliBin, transientCliArgs()...)
	if err != nil {
		return err
	}
	if !bytes.Equal(tServer, tUnsharded) {
		return fmt.Errorf("distributed transient result and unsharded faultcampaign -json diverge:\n--- server\n%s\n--- cli\n%s", tServer, tUnsharded)
	}
	tSharded, err := runCLI(cliBin, transientCliArgs("-shards", "3")...)
	if err != nil {
		return err
	}
	if !bytes.Equal(tUnsharded, tSharded) {
		return fmt.Errorf("transient -shards 3 diverged from unsharded -json")
	}
	if !bytes.Contains(tUnsharded, []byte(`"at_cycle"`)) {
		return fmt.Errorf("transient outcome carries no sampled injection cycles")
	}
	log.Printf("transient seu/set campaign: coordinator+workers == unsharded == -shards 3 (%d bytes)", len(tUnsharded))

	// The coordinator must have planned 6 shards per campaign and merged
	// all of them, all executed by remote workers.
	var health struct {
		Shards struct {
			Planned   int            `json:"planned"`
			Completed int            `json:"completed"`
			Workers   map[string]int `json:"workers"`
		} `json:"shards"`
	}
	if err := getJSON(base+"/api/v1/healthz", &health); err != nil {
		return err
	}
	if health.Shards.Planned != 12 || health.Shards.Completed != 12 {
		return fmt.Errorf("shard stats %+v: want 12 planned, 12 completed", health.Shards)
	}
	total := 0
	for w, n := range health.Shards.Workers {
		if !strings.HasPrefix(w, "w") {
			return fmt.Errorf("unexpected worker %q in stats (local execution leaked?)", w)
		}
		total += n
	}
	if total < 12 {
		return fmt.Errorf("workers leased %d shards, want >= 12", total)
	}
	log.Printf("shard accounting: %d leases across %d workers", total, len(health.Shards.Workers))
	return nil
}

func runCLI(bin string, args ...string) ([]byte, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", filepath.Base(bin), strings.Join(args, " "), err)
	}
	return out, nil
}

func streamToEnd(base, id string) (state string, lines int, err error) {
	resp, err := http.Get(base + "/api/v1/campaigns/" + id + "/stream")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var lastLine []byte
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lastLine = append(lastLine[:0], sc.Bytes()...)
		lines++
	}
	var last struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(lastLine, &last); err != nil {
		return "", lines, fmt.Errorf("bad NDJSON tail %q: %w", lastLine, err)
	}
	return last.State, lines, nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("coordinator never became healthy")
}

func submit(base string, body []byte) (id string, code int, err error) {
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return "", resp.StatusCode, fmt.Errorf("submit response %q: %w", b, err)
	}
	return st.ID, resp.StatusCode, nil
}

func getBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func getJSON(url string, v interface{}) error {
	b, err := getBytes(url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
