// Package core is the public API of the ISS-RTL correlation library, a
// reproduction of "Analysis and RTL Correlation of Instruction Set
// Simulators for Automotive Microcontroller Robustness Verification"
// (Espinosa et al., DAC 2015).
//
// The library provides, end to end:
//
//   - a SPARC V8 functional instruction set simulator (the cheap,
//     early-design-stage model),
//   - a LEON3-like RTL microcontroller model with per-bit fault injection
//     on all signals of its integer unit (IU) and cache memory (CMEM),
//   - the EEMBC-Autobench-workalike workload suite of the paper,
//   - the instruction-diversity metric and the Equation-(1) failure
//     probability model,
//   - campaign orchestration reproducing every table and figure of the
//     paper's evaluation, and
//   - an async campaign job service (NewJobService: SubmitCampaign /
//     JobStatus / WatchProgress) with duplicate coalescing, a
//     content-addressed result cache and per-granule cancellation — the
//     same scheduler cmd/faultserverd serves over HTTP/NDJSON.
//
// # Checkpointed campaign engine
//
// Fault-injection campaigns fork every experiment from a golden-run
// checkpoint: the fault-free warm-up prefix up to the injection instant
// is simulated exactly once, its complete RTL state (pipeline registers,
// register-file windows, cache arrays, architectural counters) is frozen
// together with a copy-on-write image of program memory, and each of the
// campaign's thousands of experiments resumes from that snapshot with its
// fault armed. Results are bit-identical to from-reset re-simulation —
// same outcome sequence, latencies and Pf — at a fraction of the cost for
// realistic injection instants. Set CampaignSpec.NoCheckpoint (or
// fault.Options.NoCheckpoint) to fall back to from-reset re-simulation
// when debugging the engine.
//
// From the checkpoint, experiments run bit-parallel (PPSFP): the engine
// batches up to 64 fault universes — lanes — into one witnessed golden
// pass that records which bit values every batched net is read with,
// finalizes the lanes that provably never activate as no-effect without
// simulating them, and re-runs only the activated lanes scalar from an
// in-pass snapshot. Per-lane results are byte-identical to scalar
// execution for every fault model and injection target, so batching is
// invisible to result encodings, content addresses and shard merges.
// Set CampaignSpec.NoBatch to force one scalar simulation per
// experiment (the pre-batching engine); see DESIGN.md §10 for the
// design and the measured lane-count ablation.
//
// Quick start:
//
//	w, _ := core.BuildWorkload("rspeed", core.WorkloadConfig{Iterations: 2})
//	prof, _ := core.MeasureDiversity(w)      // ISS run, Table-1 style profile
//	res, _ := core.RunCampaign(w, core.CampaignSpec{
//	    Target: core.TargetIU, Models: []core.FaultModel{core.StuckAt1},
//	    Nodes: 256, Seed: 1,
//	})
//	fmt.Printf("diversity=%d Pf=%.1f%%\n", prof.Diversity, 100*res.Pf)
package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/campaign"
	"repro/internal/diversity"
	"repro/internal/fault"
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Re-exported building blocks. The aliases give external users access to
// the full functionality of the internal packages through a single import.
type (
	// Workload is an assembled benchmark program.
	Workload = workloads.Workload
	// WorkloadConfig selects iteration count and input dataset.
	WorkloadConfig = workloads.Config
	// Program is a loadable SPARC V8 memory image.
	Program = asm.Program
	// Profile is a Table-1-style workload characterization.
	Profile = diversity.Profile
	// FaultModel is a permanent fault model.
	FaultModel = rtl.FaultModel
	// Fault is a fault model applied at an RTL node.
	Fault = rtl.Fault
	// Node identifies one injectable RTL bit.
	Node = rtl.Node
	// Target selects IU or CMEM injection.
	Target = fault.Target
	// Outcome classifies one injection experiment.
	Outcome = fault.Outcome
	// InjectionResult is the outcome of one experiment.
	InjectionResult = fault.Result
	// Unit is a microcontroller functional unit.
	Unit = sparc.Unit
	// ISS is the functional instruction set simulator.
	ISS = iss.CPU
	// RTL is the LEON3-like RTL core.
	RTL = leon3.Core
	// Status is a simulator's terminal state.
	Status = iss.Status
)

// Fault models and targets. StuckAt0/StuckAt1/OpenLine are the paper's
// permanent models; BitFlip (SEU) and SETPulse (transient glitch) are the
// transient extensions, whose injection instants are sampled per
// experiment from the campaign seed.
const (
	StuckAt0 = rtl.StuckAt0
	StuckAt1 = rtl.StuckAt1
	OpenLine = rtl.OpenLine
	BitFlip  = rtl.BitFlip
	SETPulse = rtl.SETPulse

	TargetIU   = fault.TargetIU
	TargetCMEM = fault.TargetCMEM
)

// PermanentFaultModels lists the paper's permanent models (the default
// of a CampaignSpec with no Models).
func PermanentFaultModels() []FaultModel { return rtl.FaultModels() }

// TransientFaultModels lists the transient models (BitFlip, SETPulse).
func TransientFaultModels() []FaultModel { return rtl.TransientFaultModels() }

// AllFaultModels lists every supported model in canonical order.
func AllFaultModels() []FaultModel { return rtl.AllFaultModels() }

// WorkloadNames lists the bundled benchmarks.
func WorkloadNames() []string { return workloads.Names() }

// BuildWorkload assembles a bundled benchmark.
func BuildWorkload(name string, cfg WorkloadConfig) (*Workload, error) {
	return workloads.Build(name, cfg)
}

// AssembleProgram assembles arbitrary SPARC V8 source at the RAM base.
func AssembleProgram(src string) (*Program, error) {
	return asm.Assemble(src, mem.RAMBase)
}

// NewISS builds a functional simulator loaded with the program.
func NewISS(p *Program) *ISS {
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	return iss.New(mem.NewBus(m), p.Entry)
}

// NewRTL builds an RTL core loaded with the program.
func NewRTL(p *Program) *RTL {
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	return leon3.New(mem.NewBus(m), p.Entry)
}

// MeasureDiversity runs the workload on the ISS and returns its profile
// (instruction counts, diversity, per-unit diversity Dm).
func MeasureDiversity(w *Workload) (Profile, error) {
	return diversity.Measure(w.Name, w.Program, 100_000_000)
}

// CampaignSpec configures an RTL fault-injection campaign. The json
// tags declare the spec's stable schema — the field spellings mirror
// the jobs.Request wire form that feeds the job service's sha256
// content address, and addrlint (internal/lint) holds them frozen:
// post-v1 fields are omitempty so a spec that predates them encodes to
// the exact bytes it always did.
type CampaignSpec struct {
	// Target selects the injected unit hierarchy (IU or CMEM).
	Target Target `json:"target"`
	// Models lists the permanent fault models to apply (default: all).
	Models []FaultModel `json:"models"`
	// Nodes is the statistical sample size; 0 injects every node.
	Nodes int `json:"nodes"`
	// Seed makes sampling reproducible.
	Seed int64 `json:"seed"`
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// InjectAtCycle is the fixed injection instant.
	InjectAtCycle uint64 `json:"inject_at_cycle"`
	// InjectAtFraction, when nonzero, positions the injection instant at
	// this fraction of the golden run length (overrides InjectAtCycle).
	// For transient models this is the start of the per-experiment
	// injection-cycle sampling window (which extends to the end of the
	// golden run).
	InjectAtFraction float64 `json:"inject_at_fraction"`
	// PulseCycles is the SETPulse glitch width in cycles (0 = 1).
	// Permanent models and BitFlip ignore it.
	PulseCycles uint64 `json:"pulse_cycles,omitempty"`
	// NoCheckpoint disables the checkpointed campaign engine. By default
	// (false) the golden warm-up prefix up to the injection instant is
	// simulated once, its full RTL state is frozen in a snapshot with a
	// copy-on-write memory image, and every experiment forks from it;
	// disabling re-simulates each experiment from reset, which produces
	// identical results at a much higher cost and exists for debugging
	// the engine itself.
	NoCheckpoint bool `json:"no_checkpoint"`
	// NoBatch disables the bit-parallel (PPSFP) campaign engine. By
	// default (false) a checkpointed campaign groups experiments that
	// share an injection instant into batches of up to 64 fault
	// universes ("lanes"); one witnessed golden pass resolves every lane
	// that never observably activates, and only the rest simulate.
	// Disabling runs each experiment as its own scalar simulation, which
	// produces identical results at a higher cost and exists for
	// debugging and ablation. With NoCheckpoint set (or injection at
	// reset) every experiment is scalar regardless.
	NoBatch bool `json:"no_batch,omitempty"`
}

// CampaignResult aggregates an injection campaign.
type CampaignResult struct {
	// Pf is the fraction of faults that propagated to failures at the
	// off-core boundary.
	Pf float64
	// PfLow and PfHigh bound Pf with the 95% Wilson score confidence
	// interval: campaigns are statistical fault injection, so the point
	// estimate carries sampling uncertainty.
	PfLow, PfHigh float64
	// PfByUnit groups Pf by functional unit (for Equation 1).
	PfByUnit map[Unit]float64
	// MaxLatencyCycles is the largest bounded detection latency.
	MaxLatencyCycles int64
	// Results holds every individual experiment.
	Results []InjectionResult
	// Injections is the number of experiments performed.
	Injections int
	// GoldenCycles is the fault-free run's length in cycles.
	GoldenCycles uint64
	// Checkpointed reports whether the experiments forked from the
	// golden-run snapshot at the injection instant instead of
	// re-simulating the warm-up prefix from reset.
	Checkpointed bool
}

// RunCampaign executes an RTL fault-injection campaign on a workload.
func RunCampaign(w *Workload, spec CampaignSpec) (*CampaignResult, error) {
	// The synchronous one-shot API deliberately builds an unshared,
	// unmemoized engine: callers hand in an already-built Workload (the
	// registry seam keys on workload name + config, which this signature
	// predates), and a one-shot run must not pin a slot in the bounded
	// runner cache the job service depends on.
	r, err := fault.NewRunner(w.Program, fault.Options{ //lint:allow seam audited one-shot public API build
		InjectAtCycle:    spec.InjectAtCycle,
		InjectAtFraction: spec.InjectAtFraction,
		PulseCycles:      spec.PulseCycles,
		NoCheckpoint:     spec.NoCheckpoint,
		NoBatch:          spec.NoBatch,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nodes := r.Nodes(spec.Target)
	if spec.Nodes > 0 {
		nodes = fault.SampleNodes(nodes, spec.Nodes, spec.Seed)
	}
	models := spec.Models
	if len(models) == 0 {
		models = rtl.FaultModels()
	}
	exps := fault.Expand(nodes, models...)
	// Transient experiments get their injection instants here, before any
	// execution: a pure function of (seed, absolute experiment index).
	r.ScheduleTransients(exps, spec.Seed)
	results := r.Campaign(exps, spec.Workers)
	lo, hi := fault.PfInterval(results, stats.Z95)
	return &CampaignResult{
		Pf:               fault.Pf(results),
		PfLow:            lo,
		PfHigh:           hi,
		PfByUnit:         fault.PfByUnit(results),
		MaxLatencyCycles: fault.MaxLatency(results),
		Results:          results,
		Injections:       len(results),
		GoldenCycles:     r.GoldenCycles,
		Checkpointed:     r.Checkpointed(),
	}, nil
}

// PredictPf estimates a workload's failure probability from its ISS
// profile alone, using the Equation-(1) area-weighted model with the
// fitted per-unit log coefficients (a, b). areaWeights typically comes
// from AreaWeightsIU.
func PredictPf(prof Profile, areaWeights map[Unit]float64, a, b float64) float64 {
	pmf := diversity.PredictPmf(prof.UnitDiversity, a, b)
	return diversity.CombinePf(areaWeights, pmf)
}

// AreaWeights returns alpha_m for the target: each functional unit's share
// of the RTL's injectable nodes (the paper's area fraction proxy).
func AreaWeights(target Target) map[Unit]float64 {
	c := leon3.New(mem.NewBus(mem.NewMemory()), mem.RAMBase)
	counts := map[Unit]int{}
	for _, n := range c.K.Nodes(target.Prefix()) {
		counts[Unit(c.K.UnitOf(n.Name))]++
	}
	return diversity.AreaWeights(counts)
}

// Experiment entry points (Table 1, Figures 3-7, simulation time). See
// package repro/internal/campaign for the result types; each result has a
// Render method that prints the paper-style table or series.
type (
	// ExperimentOptions tunes campaign cost versus precision.
	ExperimentOptions = campaign.Options
	// Table1Result is the reproduced Table 1.
	Table1Result = campaign.Table1Result
	// Fig3Result is Figure 3 (input-data variation).
	Fig3Result = campaign.Fig3Result
	// Fig4Result is Figure 4 (iteration scaling).
	Fig4Result = campaign.Fig4Result
	// FigPfResult is Figure 5 or 6 (Pf per benchmark and model).
	FigPfResult = campaign.FigPfResult
	// Fig7Result is Figure 7 (Pf versus diversity with log fit).
	Fig7Result = campaign.Fig7Result
	// SimTimeResult is the §4.2 simulation-time comparison.
	SimTimeResult = campaign.SimTimeResult
	// TransientBreakdownResult is the per-model Pf breakdown contrasting
	// permanent and transient fault classes.
	TransientBreakdownResult = campaign.TransientBreakdownResult
)

// Table1 reproduces Table 1 on the ISS.
func Table1() (*Table1Result, error) { return campaign.Table1() }

// Figure3 reproduces Figure 3.
func Figure3(o ExperimentOptions) (*Fig3Result, error) { return campaign.Figure3(o) }

// Figure4 reproduces Figure 4.
func Figure4(o ExperimentOptions) (*Fig4Result, error) { return campaign.Figure4(o) }

// Figure5 reproduces Figure 5 (IU nodes).
func Figure5(o ExperimentOptions) (*FigPfResult, error) { return campaign.Figure5(o) }

// Figure6 reproduces Figure 6 (CMEM nodes).
func Figure6(o ExperimentOptions) (*FigPfResult, error) { return campaign.Figure6(o) }

// Figure7 reproduces Figure 7.
func Figure7(o ExperimentOptions) (*Fig7Result, error) { return campaign.Figure7(o) }

// SimTime reproduces the simulation-time comparison.
func SimTime(o ExperimentOptions) (*SimTimeResult, error) { return campaign.SimTime(o) }

// TransientBreakdown runs one campaign per fault model — permanent and
// transient — over a shared node sample of one benchmark and returns the
// per-model Pf columns with the class aggregates. pulse is the SET
// glitch width in cycles (0 = 1).
func TransientBreakdown(o ExperimentOptions, benchmark string, pulse uint64) (*TransientBreakdownResult, error) {
	return campaign.TransientBreakdown(o, benchmark, pulse)
}
