package core

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/sparc"
)

func TestBuildAndRunISS(t *testing.T) {
	w, err := BuildWorkload("rspeed", WorkloadConfig{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewISS(w.Program)
	if st := cpu.Run(1_000_000); st != iss.StatusExited {
		t.Fatalf("status %v", st)
	}
	if cpu.Diversity() < 40 {
		t.Errorf("diversity %d", cpu.Diversity())
	}
}

func TestBuildAndRunRTL(t *testing.T) {
	w, err := BuildWorkload("intbench", WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	core := NewRTL(w.Program)
	if st := core.Run(1_000_000); st != iss.StatusExited {
		t.Fatalf("status %v", st)
	}
}

func TestMeasureDiversityProfile(t *testing.T) {
	w, err := BuildWorkload("membench", WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := MeasureDiversity(w)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Diversity == 0 || prof.TotalInsts == 0 || prof.MemoryInsts == 0 {
		t.Errorf("degenerate profile %+v", prof)
	}
	if prof.UnitDiversity[sparc.UnitFetch] != prof.Diversity {
		t.Error("fetch unit diversity must equal total diversity")
	}
}

func TestRunCampaignFacade(t *testing.T) {
	w, err := BuildWorkload("excerptB", WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCampaign(w, CampaignSpec{
		Target: TargetIU,
		Models: []FaultModel{StuckAt1},
		Nodes:  32,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections != 32 {
		t.Errorf("injections = %d", res.Injections)
	}
	if res.Pf <= 0 || res.Pf >= 1 {
		t.Errorf("Pf = %v", res.Pf)
	}
	if len(res.PfByUnit) == 0 {
		t.Error("missing per-unit grouping")
	}
	if res.GoldenCycles == 0 {
		t.Error("missing golden run length")
	}
	if res.Checkpointed {
		t.Error("checkpointed with injection at reset")
	}
}

func TestRunCampaignCheckpointToggle(t *testing.T) {
	w, err := BuildWorkload("excerptB", WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spec := CampaignSpec{
		Target:           TargetIU,
		Models:           []FaultModel{StuckAt1},
		Nodes:            16,
		Seed:             5,
		InjectAtFraction: 0.5,
	}
	forked, err := RunCampaign(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !forked.Checkpointed {
		t.Error("mid-run injection did not use the checkpoint engine")
	}
	spec.NoCheckpoint = true
	reset, err := RunCampaign(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reset.Checkpointed {
		t.Error("NoCheckpoint spec still checkpointed")
	}
	if forked.Pf != reset.Pf {
		t.Errorf("Pf differs: checkpointed %v, from-reset %v", forked.Pf, reset.Pf)
	}
	for i := range forked.Results {
		if forked.Results[i] != reset.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, forked.Results[i], reset.Results[i])
		}
	}
}

func TestAreaWeightsNormalized(t *testing.T) {
	for _, target := range []Target{TargetIU, TargetCMEM} {
		ws := AreaWeights(target)
		sum := 0.0
		for _, v := range ws {
			if v < 0 || v > 1 {
				t.Errorf("%v: weight %v out of range", target, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%v: weights sum to %v", target, sum)
		}
	}
}

func TestPredictPfMonotoneInDiversity(t *testing.T) {
	weights := AreaWeights(TargetIU)
	lo := Profile{UnitDiversity: [sparc.NumUnits]int{}}
	hi := Profile{UnitDiversity: [sparc.NumUnits]int{}}
	for u := 0; u < int(sparc.NumUnits); u++ {
		lo.UnitDiversity[u] = 5
		hi.UnitDiversity[u] = 45
	}
	a, b := 0.08, -0.02
	if PredictPf(lo, weights, a, b) >= PredictPf(hi, weights, a, b) {
		t.Error("predicted Pf not increasing with diversity")
	}
}

func TestAssembleProgramFacade(t *testing.T) {
	p, err := AssembleProgram("start:\n\tmov 1, %o0\n\tset 0x90000000, %o1\n\tst %o0, [%o1]\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	cpu := NewISS(p)
	if st := cpu.Run(100); st != iss.StatusExited {
		t.Fatalf("status %v", st)
	}
	if cpu.Bus.ExitCode() != 1 {
		t.Errorf("exit code %d", cpu.Bus.ExitCode())
	}
}

func TestWorkloadNamesComplete(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 12 {
		t.Errorf("workloads = %d: %v", len(names), names)
	}
}
