package core

import (
	"context"

	"repro/internal/jobs"
)

// Async campaign job API. JobService wraps the campaign job scheduler of
// internal/jobs — the same engine cmd/faultserverd serves over HTTP — so
// embedders get an identical surface: submissions are deduplicated
// through a content-addressed result cache (a resubmitted spec coalesces
// onto the in-flight job or returns the cached outcome without running
// the engine), campaigns execute on a bounded worker pool, cancellation
// takes effect within one experiment granule, and watchers stream
// incremental progress with progressive Pf and Wilson confidence
// intervals.
type (
	// CampaignRequest describes one campaign to the job service; its
	// canonical hash is the job's content address.
	CampaignRequest = jobs.Request
	// CampaignJob is a job status snapshot.
	CampaignJob = jobs.Status
	// CampaignProgress is one incremental progress snapshot.
	CampaignProgress = jobs.Progress
	// CampaignOutcome is the deterministic result encoding shared with
	// the HTTP API and `faultcampaign -json`.
	CampaignOutcome = jobs.Outcome
	// JobServiceOptions sizes the scheduler. Setting Shards > 1 executes
	// every campaign through a shard pool: deterministic experiment-range
	// shards drained by in-process workers and by remote workers attached
	// over the HTTP shard surface. Sharding never changes result bytes.
	JobServiceOptions = jobs.ManagerOptions
	// JobState is a job's lifecycle phase.
	JobState = jobs.State
	// ShardRange is one contiguous experiment range of a sharded campaign.
	ShardRange = jobs.ShardRange
	// ShardStats counts what a shard pool has done.
	ShardStats = jobs.ShardStats
	// RecoveryInfo summarizes what a persistent job service found in its
	// data directory on open: stored results, resumed in-flight jobs,
	// pre-folded completed shards, and whether a torn journal tail was
	// truncated.
	RecoveryInfo = jobs.RecoveryInfo
)

// JobService is an in-process campaign job scheduler.
type JobService struct {
	m *jobs.Manager
}

// NewJobService starts an in-memory job service with its worker pool
// running. Close it when done. For a durable service (results and job
// state surviving restarts) set JobServiceOptions.DataDir and use
// OpenJobService — this constructor ignores the field because it cannot
// report the I/O errors durability can hit.
func NewJobService(opts JobServiceOptions) *JobService {
	return &JobService{m: jobs.NewManager(opts)}
}

// OpenJobService starts a job service backed by opts.DataDir: completed
// campaign outcomes are committed to an on-disk content-addressed
// result store (so resubmitted requests cache-hit across process
// lifetimes) and job/shard lifecycle events to a write-ahead journal
// (so in-flight campaigns resume from their last completed shard after
// a crash). With an empty DataDir it is NewJobService with an empty
// RecoveryInfo.
func OpenJobService(opts JobServiceOptions) (*JobService, RecoveryInfo, error) {
	m, info, err := jobs.OpenManager(opts)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	return &JobService{m: m}, info, nil
}

// SubmitCampaign submits a campaign asynchronously. A request matching an
// in-flight job coalesces onto it and one matching a completed outcome is
// answered from the result cache; fresh reports whether a new job was
// created (and hence the engine will run).
func (s *JobService) SubmitCampaign(req CampaignRequest) (st CampaignJob, fresh bool, err error) {
	return s.m.Submit(req)
}

// JobStatus returns a job's current status, including its result once
// done.
func (s *JobService) JobStatus(id string) (CampaignJob, error) { return s.m.Get(id) }

// Jobs lists every job in submission order.
func (s *JobService) Jobs() []CampaignJob { return s.m.List() }

// WatchProgress subscribes to a job's progress snapshots. The channel
// closes after the terminal snapshot; call unsub to detach early.
func (s *JobService) WatchProgress(id string) (ch <-chan CampaignProgress, unsub func(), err error) {
	return s.m.Watch(id)
}

// CancelJob cancels a queued or running job and returns its status as of
// the cancellation; the engine stops within one experiment granule.
func (s *JobService) CancelJob(id string) (CampaignJob, error) { return s.m.Cancel(id) }

// WaitJob blocks until the job is terminal (or ctx expires) and returns
// its final status.
func (s *JobService) WaitJob(ctx context.Context, id string) (CampaignJob, error) {
	return s.m.Wait(ctx, id)
}

// Close cancels in-flight jobs and stops the worker pool.
func (s *JobService) Close() { s.m.Close() }

// ExecuteCampaign runs one campaign request synchronously on the shared
// memoized runner cache and returns its canonical outcome — the
// synchronous twin of SubmitCampaign and the exact path behind
// `faultcampaign -json`. A request with a nonzero Epsilon stops
// adaptively once the Wilson 95% half-width around its progressive Pf
// reaches it.
func ExecuteCampaign(ctx context.Context, req CampaignRequest, workers int) (*CampaignOutcome, error) {
	return jobs.Execute(ctx, req, workers, nil)
}

// ExecuteShardedCampaign runs one campaign split into `shards`
// deterministic experiment-range shards on in-process workers (0 =
// GOMAXPROCS) — the single-binary multi-worker mode. With early stopping
// off the outcome is byte-identical to ExecuteCampaign for the same
// request: sharding is scheduling, not content.
func ExecuteShardedCampaign(ctx context.Context, req CampaignRequest, shards, workers int) (*CampaignOutcome, error) {
	return jobs.ExecuteSharded(ctx, req, shards, workers, nil)
}

// PlanCampaignShards splits n experiments into at most k contiguous,
// near-equal ranges — the deterministic shard plan coordinators use.
func PlanCampaignShards(n, k int) []ShardRange {
	return jobs.PlanShards(n, k)
}
