package core_test

import (
	"context"
	"testing"
	"time"

	"repro/core"
)

// TestJobServiceRoundTrip drives the embedder-facing async API the same
// way faultserverd drives the HTTP layer: submit, watch progress, wait,
// and check that a duplicate submission never reruns the engine and that
// the cached outcome matches the synchronous execution path bit for bit.
func TestJobServiceRoundTrip(t *testing.T) {
	svc := core.NewJobService(core.JobServiceOptions{Concurrency: 2})
	defer svc.Close()

	req := core.CampaignRequest{
		Workload:         "excerptB",
		Models:           []string{"sa0"},
		Nodes:            4,
		Seed:             3,
		InjectAtFraction: 0.4,
	}
	st, fresh, err := svc.SubmitCampaign(req)
	if err != nil || !fresh {
		t.Fatalf("submit: fresh=%v err=%v", fresh, err)
	}
	ch, unsub, err := svc.WatchProgress(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final = %v (%s)", final.State, final.Error)
	}
	var lastDone int
	for p := range ch {
		if p.Done < lastDone {
			t.Errorf("progress went backwards: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
	}
	if lastDone != final.Result.Injections {
		t.Errorf("last progress %d, want %d", lastDone, final.Result.Injections)
	}

	st2, fresh, err := svc.SubmitCampaign(req)
	if err != nil || fresh || st2.ID != st.ID || st2.Result == nil {
		t.Fatalf("resubmit: fresh=%v id=%s err=%v", fresh, st2.ID, err)
	}

	sync, err := core.ExecuteCampaign(context.Background(), req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Pf != final.Result.Pf || sync.Injections != final.Result.Injections ||
		sync.PfLow != final.Result.PfLow || sync.PfHigh != final.Result.PfHigh {
		t.Fatalf("async outcome %+v diverges from synchronous %+v", final.Result, sync)
	}
	for i := range sync.Experiments {
		if sync.Experiments[i] != final.Result.Experiments[i] {
			t.Fatalf("experiment %d diverged: %+v vs %+v",
				i, final.Result.Experiments[i], sync.Experiments[i])
		}
	}

	if status, err := svc.JobStatus(st.ID); err != nil || status.State != "done" {
		t.Fatalf("JobStatus: %v %v", status.State, err)
	}
	if jobsList := svc.Jobs(); len(jobsList) != 1 {
		t.Fatalf("Jobs() has %d entries, want 1", len(jobsList))
	}
}

// TestRunCampaignReportsWilson checks the synchronous API carries the
// confidence interval alongside Pf.
// TestExecuteShardedCampaignFacade pins the public sharded surface: the
// in-process sharded execution matches the synchronous path bit for bit,
// and the shard planner covers [0,n) contiguously.
func TestExecuteShardedCampaignFacade(t *testing.T) {
	req := core.CampaignRequest{
		Workload:         "excerptB",
		Models:           []string{"sa0"},
		Nodes:            8,
		Seed:             3,
		InjectAtFraction: 0.4,
	}
	want, err := core.ExecuteCampaign(context.Background(), req, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ExecuteShardedCampaign(context.Background(), req, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Experiments) != len(got.Experiments) {
		t.Fatalf("sharded %d experiments, unsharded %d", len(got.Experiments), len(want.Experiments))
	}
	for i := range want.Experiments {
		if want.Experiments[i] != got.Experiments[i] {
			t.Fatalf("experiment %d diverged: %+v vs %+v", i, got.Experiments[i], want.Experiments[i])
		}
	}
	plan := core.PlanCampaignShards(10, 3)
	if len(plan) != 3 || plan[0].Start != 0 || plan[2].End != 10 {
		t.Fatalf("PlanCampaignShards(10,3) = %+v", plan)
	}
}

func TestRunCampaignReportsWilson(t *testing.T) {
	w, err := core.BuildWorkload("excerptA", core.WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(w, core.CampaignSpec{
		Target: core.TargetIU, Models: []core.FaultModel{core.StuckAt1},
		Nodes: 6, Seed: 1, InjectAtFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PfLow > res.Pf || res.PfHigh < res.Pf {
		t.Fatalf("Pf %v outside [%v, %v]", res.Pf, res.PfLow, res.PfHigh)
	}
	if res.PfLow == res.PfHigh {
		t.Error("degenerate Wilson interval")
	}
}
