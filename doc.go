// Package repro reproduces "Analysis and RTL Correlation of Instruction
// Set Simulators for Automotive Microcontroller Robustness Verification"
// (Espinosa, Hernandez, Abella, de Andres, Ruiz — DAC 2015).
//
// The public API lives in repro/core; the benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation. See README.md for the architecture overview, DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-versus-measured
// results.
package repro
