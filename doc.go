// Package repro reproduces "Analysis and RTL Correlation of Instruction
// Set Simulators for Automotive Microcontroller Robustness Verification"
// (Espinosa, Hernandez, Abella, de Andres, Ruiz — DAC 2015).
//
// The public API lives in repro/core; the benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation and prints the paper-versus-measured quantities as custom
// benchmark metrics. See README.md for the architecture overview and
// DESIGN.md for the system inventory, the documented microarchitectural
// deviations, the ablation suite and the slab-kernel/pooled-engine
// design.
//
// Fault-injection campaigns run on the checkpointed engine: the golden
// (fault-free) warm-up prefix up to the injection instant is simulated
// once, frozen as a full RTL snapshot plus a copy-on-write memory image,
// and every experiment forks from it instead of re-simulating from reset.
// The BenchmarkCampaignCheckpointed / BenchmarkCampaignFromReset pair in
// bench_test.go measures the resulting campaign speedup; results are
// bit-identical either way (see internal/fault's TestCheckpointFidelity).
// Disable the engine with fault.Options.NoCheckpoint or
// core.CampaignSpec.NoCheckpoint when debugging.
//
// On top of the checkpoint, experiments execute bit-parallel in the
// PPSFP style: the runner batches up to 64 fault universes (lanes) per
// witnessed golden pass, using the kernel's per-cycle read witnesses to
// prove most lanes never activate — those are classified no-effect
// without being simulated — while activated lanes fall back to an exact
// scalar run from an in-pass snapshot. Per-lane results are
// byte-identical to the scalar engine (TestEngineEquivalence,
// TestBatchedCampaignRace), so batching never leaks into content
// addresses, shard merges or cached outcomes. Disable it with
// fault.Options.NoBatch / core.CampaignSpec.NoBatch / `-no-batch`, and
// cap the lane count with fault.Options.BatchLanes (DESIGN.md §10).
//
// Campaigns can also be served instead of batch-run: cmd/faultserverd is
// a long-running HTTP/NDJSON job server (internal/jobs, internal/server)
// that schedules campaigns on a bounded worker pool, coalesces duplicate
// submissions, answers repeated specs from a content-addressed result
// cache, streams progressive Pf with Wilson confidence intervals, and
// cancels in-flight campaigns within one experiment granule. The same
// scheduler is available in-process through core.NewJobService, and
// `faultcampaign -json` emits the service's canonical result encoding so
// CLI and server outputs are byte-for-byte diffable (DESIGN.md §7).
//
// Campaigns scale out by sharding: `faultserverd -shards N` splits each
// campaign into deterministic experiment-range shards drained by
// in-process workers and by remote `faultserverd -worker` processes
// pulling leases over HTTP; results stay byte-identical to unsharded
// runs, and a request with a nonzero epsilon stops adaptively once the
// Wilson half-width around its progressive Pf converges (DESIGN.md §8,
// core.ExecuteShardedCampaign, `faultcampaign -shards/-epsilon`).
//
// Beyond the paper's permanent models (stuck-at-0/1, open-line), the
// stack executes transient faults end to end: rtl.BitFlip single-event
// upsets and rtl.SETPulse glitches with a configurable pulse width,
// requested as the "seu" and "set" models. Each transient experiment's
// injection cycle is sampled deterministically from the campaign seed,
// keyed by absolute experiment index, so transient campaigns shard
// byte-identically too (DESIGN.md §9, `faultcampaign -models seu,set
// -pulse N`).
package repro
