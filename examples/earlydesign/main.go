// Early-design-stage verification (the paper's benefit B2): rank candidate
// software workloads by expected fault-propagation probability using ONLY
// the instruction set simulator — no RTL description needed — then verify
// the ranking with RTL injection for the extremes.
//
// This is the workflow an automotive supplier can run before the
// microcontroller RTL exists: the ISA definition suffices.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/core"
)

func main() {
	log.SetFlags(0)

	names := []string{"puwmod", "canrdr", "ttsprk", "rspeed", "membench", "intbench"}
	type ranked struct {
		name      string
		diversity int
		predicted float64
	}
	weights := core.AreaWeights(core.TargetIU)

	var rows []ranked
	for _, n := range names {
		w, err := core.BuildWorkload(n, core.WorkloadConfig{})
		if err != nil {
			log.Fatal(err)
		}
		prof, err := core.MeasureDiversity(w)
		if err != nil {
			log.Fatal(err)
		}
		// Figure-7-style coefficients; in a qualified flow these come from
		// a one-off calibration campaign on a previous-generation core.
		pred := core.PredictPf(prof, weights, 0.084, -0.019)
		rows = append(rows, ranked{n, prof.Diversity, pred})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].predicted > rows[j].predicted })

	fmt.Println("ISS-only ranking (higher predicted Pf = exercises more area = better fault coverage):")
	for i, r := range rows {
		fmt.Printf("  %d. %-9s diversity=%2d  predicted Pf=%.1f%%\n",
			i+1, r.name, r.diversity, 100*r.predicted)
	}

	// Verify the extremes against the RTL (this is the step the paper's
	// correlation makes optional for every intermediate iteration).
	for _, n := range []string{rows[0].name, rows[len(rows)-1].name} {
		w, err := core.BuildWorkload(n, core.WorkloadConfig{Iterations: 2})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunCampaign(w, core.CampaignSpec{
			Target: core.TargetIU,
			Models: []core.FaultModel{core.StuckAt1},
			Nodes:  128,
			Seed:   1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RTL check %-9s measured Pf=%.1f%%\n", n, 100*res.Pf)
	}
}
