// Light-lockstep failure detection demo: run a clean RTL core and a
// faulted one side by side and compare their off-core activity — exactly
// the detection mechanism of light-lockstep automotive microcontrollers
// (Infineon AURIX, ST SPC56XL) that defines the paper's failure boundary.
package main

import (
	"fmt"
	"log"

	"repro/core"
	"repro/internal/iss"
)

func main() {
	log.SetFlags(0)

	w, err := core.BuildWorkload("canrdr", core.WorkloadConfig{Iterations: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The "golden" core of the lockstep pair.
	golden := core.NewRTL(w.Program)
	if st := golden.Run(10_000_000); st != iss.StatusExited {
		log.Fatalf("golden run: %v", st)
	}
	fmt.Printf("golden core: %d instructions, %d off-core writes\n",
		golden.Icount, len(golden.Bus.Trace.Writes))

	// The monitored core with a manufacturing defect: stuck-at-1 on bit 7
	// of the ALU result bus.
	faulty := core.NewRTL(w.Program)
	fault := core.Fault{Node: core.Node{Name: "iu.ex.result", Bit: 7}, Model: core.StuckAt1}
	if err := faulty.K.Inject(fault); err != nil {
		log.Fatal(err)
	}
	faulty.Run(10_000_000)

	// The lockstep comparator: first divergence in off-core activity.
	d := faulty.Bus.Trace.Divergence(&golden.Bus.Trace)
	if d < 0 {
		fmt.Println("fault did not propagate: cores agree at the off-core boundary")
		return
	}
	g := golden.Bus.Trace.Writes
	f := faulty.Bus.Trace.Writes
	fmt.Printf("lockstep mismatch at write #%d (fault: %v)\n", d, fault)
	if d < len(g) {
		fmt.Printf("  golden:  %v\n", g[d])
	}
	if d < len(f) {
		fmt.Printf("  faulty:  %v\n", f[d])
	}
	fmt.Printf("detection latency: write #%d out of %d total — the error was "+
		"caught before %d further bus operations\n", d, len(g), len(g)-d)
}
