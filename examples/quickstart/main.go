// Quickstart: build a workload, characterize it on the ISS, run a small
// RTL fault-injection campaign and compare the measured failure
// probability against the diversity-based prediction — the paper's whole
// flow in one page.
package main

import (
	"fmt"
	"log"

	"repro/core"
)

func main() {
	log.SetFlags(0)

	// 1. Build one of the bundled EEMBC-workalike benchmarks.
	w, err := core.BuildWorkload("rspeed", core.WorkloadConfig{Iterations: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Characterize it on the functional ISS (cheap, pre-RTL stage).
	prof, err := core.MeasureDiversity(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d memory, diversity=%d\n",
		w.Name, prof.TotalInsts, prof.MemoryInsts, prof.Diversity)

	// 3. Inject permanent faults into the RTL integer unit.
	res, err := core.RunCampaign(w, core.CampaignSpec{
		Target: core.TargetIU,
		Models: []core.FaultModel{core.StuckAt1},
		Nodes:  192,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTL campaign: %d injections, Pf = %.1f%% propagated to failures\n",
		res.Injections, 100*res.Pf)

	// 4. Predict Pf from the ISS profile alone using the paper's log
	// model (coefficients in the ballpark of Figure 7) and compare.
	weights := core.AreaWeights(core.TargetIU)
	pred := core.PredictPf(prof, weights, 0.084, -0.019)
	fmt.Printf("ISS-only prediction via Eq.(1): %.1f%% (measured %.1f%%)\n",
		100*pred, 100*res.Pf)
}
