// ISO 26262-flavored robustness comparison: evaluate how two
// implementations of the same software function differ in fault coverage
// when used as a verification workload. A calibration routine written with
// a rich instruction mix (table lookup + interpolation) exercises far more
// microcontroller area than a naive constant-step loop, so an RTL fault
// injection campaign driven by it converts more latent faults into
// detectable failures — the property the diversity metric predicts.
package main

import (
	"fmt"
	"log"

	"repro/core"
	"repro/internal/iss"
)

// naive is a deliberately impoverished implementation: same output buffer
// contract as the tblook workload, but computed with a constant-increment
// loop using very few instruction types.
const naive = `
start:
	set out, %o1
	set 64, %o2
	set 100, %o3
naive_loop:
	st %o3, [%o1]
	add %o3, 17, %o3
	add %o1, 4, %o1
	subcc %o2, 1, %o2
	bne naive_loop
	nop
	set 0x90000004, %o5
	st %o3, [%o5]
	set 0x90000000, %o5
	st %g0, [%o5]
	nop
out:
	.space 260
`

func campaignPf(p *core.Program) float64 {
	w := &core.Workload{Name: "candidate", Program: p}
	res, err := core.RunCampaign(w, core.CampaignSpec{
		Target: core.TargetIU,
		Models: []core.FaultModel{core.StuckAt1},
		Nodes:  160,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Pf
}

func main() {
	log.SetFlags(0)

	// Candidate A: the full interpolating implementation (bundled tblook).
	rich, err := core.BuildWorkload("tblook", core.WorkloadConfig{Iterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	richProf, err := core.MeasureDiversity(rich)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate B: the naive loop, assembled from source.
	naiveProg, err := core.AssembleProgram(naive)
	if err != nil {
		log.Fatal(err)
	}
	cpu := core.NewISS(naiveProg)
	if st := cpu.Run(1_000_000); st != iss.StatusExited {
		log.Fatalf("naive candidate did not exit: %v", st)
	}

	fmt.Println("Verification-workload quality for ISO 26262 fault-injection campaigns:")
	fmt.Printf("  interpolating lookup: diversity=%2d\n", richProf.Diversity)
	fmt.Printf("  naive constant loop:  diversity=%2d\n", cpu.Diversity())

	pfRich := campaignPf(rich.Program)
	pfNaive := campaignPf(naiveProg)
	fmt.Printf("measured stuck-at-1 IU coverage: rich %.1f%%, naive %.1f%%\n",
		100*pfRich, 100*pfNaive)
	if pfRich > pfNaive {
		fmt.Println("=> the higher-diversity workload flushes out more permanent faults,")
		fmt.Println("   as the ISS-level diversity metric predicted without any RTL run.")
	} else {
		fmt.Println("=> unexpected: diversity ranking not confirmed at RTL level")
	}
}
