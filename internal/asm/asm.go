// Package asm implements a two-pass assembler for the SPARC V8 integer
// instruction set defined by internal/sparc.
//
// The assembler exists so that the workload suite (internal/workloads) can
// be authored as real machine programs without an external cross toolchain.
// It supports labels, a small set of data directives, the standard SPARC
// synthetic instructions (set, mov, cmp, ret, retl, nop, clr, inc, dec,
// neg, not, tst, btst, b, jmp) and %hi()/%lo() relocation operators.
//
// Syntax summary:
//
//	label:              define label at current location
//	.org ADDR           move location counter forward
//	.align N            pad with zero bytes to an N-byte boundary
//	.word V, V, ...     32-bit big-endian values (labels allowed)
//	.half V, ...        16-bit values
//	.byte V, ...        8-bit values
//	.space N            N zero bytes
//	! comment           comment to end of line
//
// Instructions follow SPARC assembler conventions, e.g.:
//
//	set   table, %o0
//	ld    [%o0+4], %o1
//	addcc %o1, -1, %o1
//	bne,a loop
//	st    %o1, [%o0+4]
package asm

import (
	"fmt"
	"strings"
)

// Program is an assembled, loadable memory image.
type Program struct {
	Origin  uint32            // load address of Image[0]
	Image   []byte            // big-endian memory image
	Entry   uint32            // entry point (label "start" or "_start", else Origin)
	Symbols map[string]uint32 // label -> address
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return len(p.Image) }

// Word returns the 32-bit big-endian word at address a, which must be
// word-aligned and inside the image.
func (p *Program) Word(a uint32) uint32 {
	off := a - p.Origin
	return uint32(p.Image[off])<<24 | uint32(p.Image[off+1])<<16 |
		uint32(p.Image[off+2])<<8 | uint32(p.Image[off+3])
}

// Error is an assembly error annotated with a 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// item is one source statement occupying space in the image.
type item struct {
	line  int
	addr  uint32
	mnem  string   // lower-case mnemonic or directive
	annul bool     // ",a" suffix on branches
	args  []string // raw operand strings
	size  uint32   // bytes occupied
}

// Assemble assembles src with the given load origin.
func Assemble(src string, origin uint32) (*Program, error) {
	a := &assembler{
		origin:  origin,
		symbols: make(map[string]uint32),
	}
	if err := a.scan(src); err != nil {
		return nil, err
	}
	if err := a.encode(); err != nil {
		return nil, err
	}
	p := &Program{
		Origin:  origin,
		Image:   a.image,
		Entry:   origin,
		Symbols: a.symbols,
	}
	if e, ok := a.symbols["start"]; ok {
		p.Entry = e
	} else if e, ok := a.symbols["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

type assembler struct {
	origin  uint32
	pc      uint32
	items   []item
	symbols map[string]uint32
	image   []byte
}

// scan is the first pass: it tokenizes lines, assigns addresses and defines
// labels. Sizes are deterministic (set is always 8 bytes) so one pass
// suffices for layout.
func (a *assembler) scan(src string) error {
	a.pc = a.origin
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "!"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Labels (possibly several, possibly followed by a statement).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" || strings.ContainsAny(name, " \t[],") {
				break // ':' inside an operand, not a label
			}
			if _, dup := a.symbols[name]; dup {
				return &Error{lineNo + 1, fmt.Sprintf("duplicate label %q", name)}
			}
			a.symbols[name] = a.pc
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		it, err := a.parseStatement(line, lineNo+1)
		if err != nil {
			return err
		}
		it.addr = a.pc
		a.pc += it.size
		a.items = append(a.items, it)
	}
	return nil
}

func (a *assembler) parseStatement(line string, lineNo int) (item, error) {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnem = strings.ToLower(mnem)
	it := item{line: lineNo, mnem: mnem, args: splitOperands(rest)}
	if strings.HasSuffix(mnem, ",a") {
		it.mnem = strings.TrimSuffix(mnem, ",a")
		it.annul = true
	}
	switch it.mnem {
	case ".org":
		v, err := a.evalConst(it.args, lineNo)
		if err != nil {
			return it, err
		}
		if v < a.pc {
			return it, &Error{lineNo, fmt.Sprintf(".org %#x moves backwards from %#x", v, a.pc)}
		}
		it.size = v - a.pc
		it.mnem = ".space" // handled uniformly as zero fill
		return it, nil
	case ".align":
		v, err := a.evalConst(it.args, lineNo)
		if err != nil {
			return it, err
		}
		if v == 0 || v&(v-1) != 0 {
			return it, &Error{lineNo, ".align requires a power of two"}
		}
		it.size = (v - a.pc%v) % v
		it.mnem = ".space"
		return it, nil
	case ".space", ".skip":
		v, err := a.evalConst(it.args, lineNo)
		if err != nil {
			return it, err
		}
		it.mnem = ".space"
		it.size = v
		return it, nil
	case ".word":
		it.size = 4 * uint32(len(it.args))
		return it, nil
	case ".half":
		it.size = 2 * uint32(len(it.args))
		return it, nil
	case ".byte":
		it.size = uint32(len(it.args))
		return it, nil
	case ".global", ".globl", ".text", ".data":
		it.mnem = ".space"
		it.size = 0
		return it, nil
	case "set":
		it.size = 8 // sethi + or, always
		return it, nil
	}
	it.size = 4
	return it, nil
}

// evalConst evaluates a directive operand in pass 1. Numeric constants and
// already-defined labels (with ± offsets) are allowed; forward references
// are not, since the directive determines the layout.
func (a *assembler) evalConst(args []string, lineNo int) (uint32, error) {
	if len(args) != 1 {
		return 0, &Error{lineNo, "directive needs exactly one operand"}
	}
	v, err := a.eval(args[0], lineNo)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// splitOperands splits at top-level commas (commas inside brackets do not
// occur in SPARC syntax, but %hi(...) parentheses are respected).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[last:]))
	return out
}

func (a *assembler) emit32(v uint32) {
	a.image = append(a.image, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// encode is the second pass.
func (a *assembler) encode() error {
	for _, it := range a.items {
		if uint32(len(a.image)) != it.addr-a.origin {
			return &Error{it.line, "internal: layout mismatch"}
		}
		if err := a.encodeItem(it); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) encodeItem(it item) error {
	switch it.mnem {
	case ".space":
		a.image = append(a.image, make([]byte, it.size)...)
		return nil
	case ".word":
		for _, arg := range it.args {
			v, err := a.eval(arg, it.line)
			if err != nil {
				return err
			}
			a.emit32(uint32(v))
		}
		return nil
	case ".half":
		for _, arg := range it.args {
			v, err := a.eval(arg, it.line)
			if err != nil {
				return err
			}
			a.image = append(a.image, byte(v>>8), byte(v))
		}
		return nil
	case ".byte":
		for _, arg := range it.args {
			v, err := a.eval(arg, it.line)
			if err != nil {
				return err
			}
			a.image = append(a.image, byte(v))
		}
		return nil
	}
	return a.encodeInst(it)
}
