package asm

import (
	"strings"
	"testing"

	"repro/internal/sparc"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0x40000000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAt(p *Program, a uint32) sparc.Inst { return sparc.Decode(p.Word(a)) }

func TestAssembleBasicALU(t *testing.T) {
	p := mustAssemble(t, `
start:
	add %o0, %o1, %o2
	sub %o2, 5, %o3
	andcc %l0, 0xff, %g0
`)
	in := decodeAt(p, 0x40000000)
	if in.Op != sparc.OpADD || in.Rs1 != 8 || in.Rs2 != 9 || in.Rd != 10 {
		t.Errorf("add decoded %v", &in)
	}
	in = decodeAt(p, 0x40000004)
	if in.Op != sparc.OpSUB || !in.Imm || in.Simm13 != 5 || in.Rd != 11 {
		t.Errorf("sub decoded %v", &in)
	}
	in = decodeAt(p, 0x40000008)
	if in.Op != sparc.OpANDCC || in.Simm13 != 0xff || in.Rd != 0 {
		t.Errorf("andcc decoded %v", &in)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
start:
	cmp %o0, 0
	be done
	nop
loop:
	deccc %o0
	bne,a loop
	nop
done:
	ret
	nop
`)
	// be done: at 0x40000004, done at 0x40000018 -> disp = (0x18-0x4)/4 = 5
	in := decodeAt(p, 0x40000004)
	if in.Op != sparc.OpBE || in.Imm22 != 5 || in.Annul {
		t.Errorf("be decoded %+v", in)
	}
	// bne,a loop: at 0x40000010, loop at 0x4000000c -> disp -1
	in = decodeAt(p, 0x40000010)
	if in.Op != sparc.OpBNE || in.Imm22 != -1 || !in.Annul {
		t.Errorf("bne,a decoded %+v", in)
	}
	// ret = jmpl %i7+8, %g0
	in = decodeAt(p, 0x40000018)
	if in.Op != sparc.OpJMPL || in.Rs1 != 31 || in.Simm13 != 8 || in.Rd != 0 {
		t.Errorf("ret decoded %+v", in)
	}
}

func TestAssembleSetExpansion(t *testing.T) {
	p := mustAssemble(t, `
start:
	set 0x40001234, %o0
	set 12, %o1
`)
	hi := decodeAt(p, 0x40000000)
	lo := decodeAt(p, 0x40000004)
	if hi.Op != sparc.OpSETHI || lo.Op != sparc.OpOR {
		t.Fatalf("set expanded to %v / %v", hi.Op, lo.Op)
	}
	v := uint32(hi.Imm22)<<10 | uint32(lo.Simm13)
	if v != 0x40001234 {
		t.Errorf("set value = %#x", v)
	}
	// Small values still occupy two words (deterministic layout).
	if p.Size() != 16 {
		t.Errorf("size = %d, want 16", p.Size())
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	p := mustAssemble(t, `
start:
	ld  [%o0], %o1
	ld  [%o0+8], %o1
	st  %o1, [%o0-4]
	ldd [%l0+%l1], %o2
	stb %o1, [%fp-1]
	swap [%g2], %g3
`)
	cases := []struct {
		addr uint32
		op   sparc.Op
		rs1  int
		imm  bool
		s13  int32
		rd   int
	}{
		{0x40000000, sparc.OpLD, 8, true, 0, 9},
		{0x40000004, sparc.OpLD, 8, true, 8, 9},
		{0x40000008, sparc.OpST, 8, true, -4, 9},
		{0x4000000c, sparc.OpLDD, 16, false, 0, 10},
		{0x40000010, sparc.OpSTB, 30, true, -1, 9},
		{0x40000014, sparc.OpSWAP, 2, true, 0, 3},
	}
	for _, c := range cases {
		in := decodeAt(p, c.addr)
		if in.Op != c.op || in.Rs1 != c.rs1 || in.Imm != c.imm || in.Simm13 != c.s13 || in.Rd != c.rd {
			t.Errorf("%#x: decoded %+v, want %+v", c.addr, in, c)
		}
	}
}

func TestAssembleCall(t *testing.T) {
	p := mustAssemble(t, `
start:
	call func
	nop
	nop
func:
	retl
	nop
`)
	in := decodeAt(p, 0x40000000)
	if in.Op != sparc.OpCALL || in.Disp30 != 3 {
		t.Errorf("call decoded %+v", in)
	}
	if got := in.Target(0x40000000); got != p.Symbols["func"] {
		t.Errorf("call target %#x, want %#x", got, p.Symbols["func"])
	}
}

func TestAssembleDirectives(t *testing.T) {
	p := mustAssemble(t, `
start:
	nop
data:
	.word 0xdeadbeef, 42, data
	.half 0x1234
	.byte 1, 2
	.align 4
tail:
	.word tail
`)
	if got := p.Word(p.Symbols["data"]); got != 0xdeadbeef {
		t.Errorf("word0 = %#x", got)
	}
	if got := p.Word(p.Symbols["data"] + 4); got != 42 {
		t.Errorf("word1 = %d", got)
	}
	if got := p.Word(p.Symbols["data"] + 8); got != p.Symbols["data"] {
		t.Errorf("label word = %#x", got)
	}
	tail := p.Symbols["tail"]
	if tail%4 != 0 {
		t.Errorf("tail not aligned: %#x", tail)
	}
	if got := p.Word(tail); got != tail {
		t.Errorf("tail word = %#x", got)
	}
}

func TestAssembleHiLo(t *testing.T) {
	p := mustAssemble(t, `
start:
	sethi %hi(target), %o0
	or %o0, %lo(target), %o0
	.org 0x40000ff0
target:
	.word 7
`)
	hi := decodeAt(p, 0x40000000)
	lo := decodeAt(p, 0x40000004)
	v := uint32(hi.Imm22)<<10 | uint32(lo.Simm13)
	if v != p.Symbols["target"] {
		t.Errorf("hi/lo = %#x, want %#x", v, p.Symbols["target"])
	}
}

func TestAssembleSpecialRegs(t *testing.T) {
	p := mustAssemble(t, `
start:
	rd %y, %o0
	wr %o1, %y
	wr %o1, 0, %psr
	rd %psr, %l0
	mov 3, %g1
	ta 0x10
`)
	checks := []sparc.Op{sparc.OpRDY, sparc.OpWRY, sparc.OpWRPSR, sparc.OpRDPSR, sparc.OpOR, sparc.OpTA}
	for i, want := range checks {
		in := decodeAt(p, 0x40000000+uint32(4*i))
		if in.Op != want {
			t.Errorf("inst %d = %v, want %v", i, in.Op, want)
		}
	}
	ta := decodeAt(p, 0x40000014)
	if !ta.Imm || ta.Simm13 != 0x10 {
		t.Errorf("ta operand %+v", ta)
	}
}

func TestAssembleSaveRestore(t *testing.T) {
	p := mustAssemble(t, `
start:
	save %sp, -96, %sp
	restore
`)
	in := decodeAt(p, 0x40000000)
	if in.Op != sparc.OpSAVE || in.Rs1 != 14 || in.Simm13 != -96 || in.Rd != 14 {
		t.Errorf("save decoded %+v", in)
	}
	in = decodeAt(p, 0x40000004)
	if in.Op != sparc.OpRESTORE || in.Rd != 0 || in.Rs1 != 0 {
		t.Errorf("restore decoded %+v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frobnicate %o0", "unknown mnemonic"},
		{"add %o0, %o1", "needs rs1"},
		{"ld %o0, %o1", "expected memory operand"},
		{"be nowhere", "undefined symbol"},
		{"add %o0, 99999, %o1", "out of simm13 range"},
		{"x: nop\nx: nop", "duplicate label"},
		{".align 3", "power of two"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, 0x40000000)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestAssembleEntryDetection(t *testing.T) {
	p := mustAssemble(t, ".word 1\nstart:\n nop\n")
	if p.Entry != p.Symbols["start"] {
		t.Errorf("entry = %#x", p.Entry)
	}
	p2, err := Assemble("nop\n", 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Entry != 0x100 {
		t.Errorf("default entry = %#x", p2.Entry)
	}
}

func TestAssembleComments(t *testing.T) {
	p := mustAssemble(t, `
start:
	nop ! trailing comment
	// whole-line comment
	nop
`)
	if p.Size() != 8 {
		t.Errorf("size = %d, want 8", p.Size())
	}
}

func TestAssembleSyntheticsRoundTrip(t *testing.T) {
	// Each synthetic must expand to the documented underlying instruction.
	p := mustAssemble(t, `
start:
	clr %o0
	tst %o1
	btst 4, %o2
	inc %o3
	dec 2, %o4
	neg %o5
	not %l0
	jmp %o7+8
`)
	want := []struct {
		op  sparc.Op
		rd  int
		rs1 int
	}{
		{sparc.OpOR, 8, 0},
		{sparc.OpORCC, 0, 0},
		{sparc.OpANDCC, 0, 10},
		{sparc.OpADD, 11, 11},
		{sparc.OpSUB, 12, 12},
		{sparc.OpSUB, 13, 0},
		{sparc.OpXNOR, 16, 16},
		{sparc.OpJMPL, 0, 15},
	}
	for i, w := range want {
		in := decodeAt(p, 0x40000000+uint32(4*i))
		if in.Op != w.op || in.Rd != w.rd || in.Rs1 != w.rs1 {
			t.Errorf("synthetic %d: got %v rd=%d rs1=%d, want %+v", i, in.Op, in.Rd, in.Rs1, w)
		}
	}
}
