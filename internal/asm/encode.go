package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sparc"
)

// mnemonics maps assembler mnemonics to instruction types. Synthetic
// instructions and branch aliases are handled in encodeInst.
var mnemonics = map[string]sparc.Op{
	"sethi": sparc.OpSETHI,
	"ba":    sparc.OpBA, "bn": sparc.OpBN, "bne": sparc.OpBNE, "be": sparc.OpBE,
	"bg": sparc.OpBG, "ble": sparc.OpBLE, "bge": sparc.OpBGE, "bl": sparc.OpBL,
	"bgu": sparc.OpBGU, "bleu": sparc.OpBLEU, "bcc": sparc.OpBCC, "bcs": sparc.OpBCS,
	"bpos": sparc.OpBPOS, "bneg": sparc.OpBNEG, "bvc": sparc.OpBVC, "bvs": sparc.OpBVS,
	// Aliases.
	"b": sparc.OpBA, "bz": sparc.OpBE, "bnz": sparc.OpBNE,
	"bgeu": sparc.OpBCC, "blu": sparc.OpBCS,
	"call": sparc.OpCALL,
	"add":  sparc.OpADD, "addcc": sparc.OpADDCC, "addx": sparc.OpADDX, "addxcc": sparc.OpADDXCC,
	"sub": sparc.OpSUB, "subcc": sparc.OpSUBCC, "subx": sparc.OpSUBX, "subxcc": sparc.OpSUBXCC,
	"and": sparc.OpAND, "andcc": sparc.OpANDCC, "andn": sparc.OpANDN, "andncc": sparc.OpANDNCC,
	"or": sparc.OpOR, "orcc": sparc.OpORCC, "orn": sparc.OpORN, "orncc": sparc.OpORNCC,
	"xor": sparc.OpXOR, "xorcc": sparc.OpXORCC, "xnor": sparc.OpXNOR, "xnorcc": sparc.OpXNORCC,
	"taddcc": sparc.OpTADDCC, "tsubcc": sparc.OpTSUBCC, "mulscc": sparc.OpMULSCC,
	"sll": sparc.OpSLL, "srl": sparc.OpSRL, "sra": sparc.OpSRA,
	"umul": sparc.OpUMUL, "umulcc": sparc.OpUMULCC, "smul": sparc.OpSMUL, "smulcc": sparc.OpSMULCC,
	"udiv": sparc.OpUDIV, "udivcc": sparc.OpUDIVCC, "sdiv": sparc.OpSDIV, "sdivcc": sparc.OpSDIVCC,
	"save": sparc.OpSAVE, "restore": sparc.OpRESTORE,
	"jmpl": sparc.OpJMPL, "rett": sparc.OpRETT,
	"rd": sparc.OpRDY, "wr": sparc.OpWRY, // resolved by special-register operand
	"ta": sparc.OpTA, "tn": sparc.OpTN, "tne": sparc.OpTNE, "te": sparc.OpTE,
	"tg": sparc.OpTG, "tle": sparc.OpTLE, "tge": sparc.OpTGE, "tl": sparc.OpTL,
	"tgu": sparc.OpTGU, "tleu": sparc.OpTLEU, "tcc": sparc.OpTCC, "tcs": sparc.OpTCS,
	"tpos": sparc.OpTPOS, "tneg": sparc.OpTNEG, "tvc": sparc.OpTVC, "tvs": sparc.OpTVS,
	"ld": sparc.OpLD, "ldub": sparc.OpLDUB, "ldsb": sparc.OpLDSB,
	"lduh": sparc.OpLDUH, "ldsh": sparc.OpLDSH, "ldd": sparc.OpLDD,
	"st": sparc.OpST, "stb": sparc.OpSTB, "sth": sparc.OpSTH, "std": sparc.OpSTD,
	"ldstub": sparc.OpLDSTUB, "swap": sparc.OpSWAP,
}

var regNames = func() map[string]int {
	m := map[string]int{"%sp": 14, "%fp": 30}
	for i := 0; i < 8; i++ {
		m[fmt.Sprintf("%%g%d", i)] = i
		m[fmt.Sprintf("%%o%d", i)] = 8 + i
		m[fmt.Sprintf("%%l%d", i)] = 16 + i
		m[fmt.Sprintf("%%i%d", i)] = 24 + i
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("%%r%d", i)] = i
	}
	return m
}()

func parseReg(s string) (int, bool) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	return r, ok
}

// parseInt parses decimal or 0x/0b/0o prefixed integers with optional sign.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow unsigned 32-bit constants like 0xffffffff.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad integer %q", s)
		}
		v = int64(u)
	}
	return v, nil
}

// eval evaluates an expression in pass 2: integers, labels, label+const,
// label-const, %hi(expr), %lo(expr), and '.' for the current location.
func (a *assembler) eval(expr string, line int) (int64, error) {
	expr = strings.TrimSpace(expr)
	lower := strings.ToLower(expr)
	if strings.HasPrefix(lower, "%hi(") && strings.HasSuffix(expr, ")") {
		v, err := a.eval(expr[4:len(expr)-1], line)
		if err != nil {
			return 0, err
		}
		return int64(uint32(v) >> 10), nil
	}
	if strings.HasPrefix(lower, "%lo(") && strings.HasSuffix(expr, ")") {
		v, err := a.eval(expr[4:len(expr)-1], line)
		if err != nil {
			return 0, err
		}
		return int64(uint32(v) & 0x3ff), nil
	}
	// label±const split at the last top-level + or - (not leading sign).
	for i := len(expr) - 1; i > 0; i-- {
		if expr[i] == '+' || expr[i] == '-' {
			left, lerr := a.eval(expr[:i], line)
			if lerr != nil {
				break
			}
			right, rerr := a.eval(expr[i+1:], line)
			if rerr != nil {
				return 0, rerr
			}
			if expr[i] == '+' {
				return left + right, nil
			}
			return left - right, nil
		}
	}
	if v, err := parseInt(expr); err == nil {
		return v, nil
	}
	if v, ok := a.symbols[expr]; ok {
		return int64(v), nil
	}
	return 0, &Error{line, fmt.Sprintf("undefined symbol or bad expression %q", expr)}
}

// memOperand parses "[%rs1]", "[%rs1+imm]", "[%rs1-imm]", "[%rs1+%rs2]",
// or "[imm]" into the rs1/rs2/simm13 fields of in.
func (a *assembler) memOperand(s string, in *sparc.Inst, line int) error {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return &Error{line, fmt.Sprintf("expected memory operand, got %q", s)}
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Find a top-level + or - separating base and offset.
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			base := strings.TrimSpace(inner[:i])
			off := strings.TrimSpace(inner[i+1:])
			r1, ok := parseReg(base)
			if !ok {
				return &Error{line, fmt.Sprintf("bad base register %q", base)}
			}
			in.Rs1 = r1
			if r2, ok := parseReg(off); ok {
				if inner[i] == '-' {
					return &Error{line, "cannot subtract a register in an address"}
				}
				in.Rs2 = r2
				return nil
			}
			v, err := a.eval(off, line)
			if err != nil {
				return err
			}
			if inner[i] == '-' {
				v = -v
			}
			return setSimm13(in, v, line)
		}
	}
	if r1, ok := parseReg(inner); ok {
		in.Rs1 = r1
		in.Imm = true
		return nil
	}
	v, err := a.eval(inner, line)
	if err != nil {
		return err
	}
	return setSimm13(in, v, line)
}

func setSimm13(in *sparc.Inst, v int64, line int) error {
	if v < -4096 || v > 4095 {
		return &Error{line, fmt.Sprintf("immediate %d out of simm13 range", v)}
	}
	in.Imm = true
	in.Simm13 = int32(v)
	return nil
}

// regOrImm parses an ALU second operand.
func (a *assembler) regOrImm(s string, in *sparc.Inst, line int) error {
	if r, ok := parseReg(s); ok {
		in.Rs2 = r
		return nil
	}
	v, err := a.eval(s, line)
	if err != nil {
		return err
	}
	return setSimm13(in, v, line)
}

func (a *assembler) encodeInst(it item) error {
	switch it.mnem {
	case "nop":
		a.emit32(sparc.Encode(sparc.Inst{Op: sparc.OpSETHI}))
		return nil
	case "set":
		return a.encodeSet(it)
	case "mov":
		return a.encodeALU(sparc.OpOR, []string{"%g0", it.args[0], it.args[len(it.args)-1]}, it.line)
	case "clr":
		if len(it.args) != 1 {
			return &Error{it.line, "clr needs one register"}
		}
		return a.encodeALU(sparc.OpOR, []string{"%g0", "%g0", it.args[0]}, it.line)
	case "cmp":
		if len(it.args) != 2 {
			return &Error{it.line, "cmp needs two operands"}
		}
		return a.encodeALU(sparc.OpSUBCC, []string{it.args[0], it.args[1], "%g0"}, it.line)
	case "tst":
		if len(it.args) != 1 {
			return &Error{it.line, "tst needs one register"}
		}
		return a.encodeALU(sparc.OpORCC, []string{"%g0", it.args[0], "%g0"}, it.line)
	case "btst":
		if len(it.args) != 2 {
			return &Error{it.line, "btst needs two operands"}
		}
		return a.encodeALU(sparc.OpANDCC, []string{it.args[1], it.args[0], "%g0"}, it.line)
	case "inc":
		return a.encodeIncDec(sparc.OpADD, it)
	case "deccc":
		return a.encodeIncDec(sparc.OpSUBCC, it)
	case "inccc":
		return a.encodeIncDec(sparc.OpADDCC, it)
	case "dec":
		return a.encodeIncDec(sparc.OpSUB, it)
	case "neg":
		if len(it.args) != 1 {
			return &Error{it.line, "neg needs one register"}
		}
		return a.encodeALU(sparc.OpSUB, []string{"%g0", it.args[0], it.args[0]}, it.line)
	case "not":
		if len(it.args) != 1 {
			return &Error{it.line, "not needs one register"}
		}
		return a.encodeALU(sparc.OpXNOR, []string{it.args[0], "%g0", it.args[0]}, it.line)
	case "ret":
		a.emit32(sparc.Encode(sparc.Inst{Op: sparc.OpJMPL, Rd: 0, Rs1: 31, Imm: true, Simm13: 8}))
		return nil
	case "retl":
		a.emit32(sparc.Encode(sparc.Inst{Op: sparc.OpJMPL, Rd: 0, Rs1: 15, Imm: true, Simm13: 8}))
		return nil
	case "jmp":
		in := sparc.Inst{Op: sparc.OpJMPL, Rd: 0}
		if err := a.jmpOperand(it.args, &in, it.line); err != nil {
			return err
		}
		a.emit32(sparc.Encode(in))
		return nil
	}

	op, ok := mnemonics[it.mnem]
	if !ok {
		return &Error{it.line, fmt.Sprintf("unknown mnemonic %q", it.mnem)}
	}
	switch {
	case op == sparc.OpSETHI:
		if len(it.args) != 2 {
			return &Error{it.line, "sethi needs imm22, rd"}
		}
		v, err := a.eval(it.args[0], it.line)
		if err != nil {
			return err
		}
		rd, ok := parseReg(it.args[1])
		if !ok {
			return &Error{it.line, "sethi destination must be a register"}
		}
		a.emit32(sparc.Encode(sparc.Inst{Op: op, Rd: rd, Imm22: int32(uint32(v) & 0x3fffff)}))
		return nil
	case op.IsBicc():
		return a.encodeBranch(op, it)
	case op == sparc.OpCALL:
		if len(it.args) != 1 {
			return &Error{it.line, "call needs a target"}
		}
		v, err := a.eval(it.args[0], it.line)
		if err != nil {
			return err
		}
		disp := (int64(uint32(v)) - int64(it.addr)) >> 2
		a.emit32(sparc.Encode(sparc.Inst{Op: op, Disp30: int32(disp)}))
		return nil
	case op.IsTicc():
		in := sparc.Inst{Op: op}
		switch len(it.args) {
		case 1:
			if err := a.regOrImm(it.args[0], &in, it.line); err != nil {
				return err
			}
		case 2:
			r1, ok := parseReg(it.args[0])
			if !ok {
				return &Error{it.line, "ticc first operand must be a register"}
			}
			in.Rs1 = r1
			if err := a.regOrImm(it.args[1], &in, it.line); err != nil {
				return err
			}
		default:
			return &Error{it.line, "ticc needs 1 or 2 operands"}
		}
		a.emit32(sparc.Encode(in))
		return nil
	case op == sparc.OpRDY:
		return a.encodeRd(it)
	case op == sparc.OpWRY:
		return a.encodeWr(it)
	case op.IsLoad() || op.IsStore():
		return a.encodeMem(op, it)
	case op == sparc.OpJMPL:
		if len(it.args) != 2 {
			return &Error{it.line, "jmpl needs address, rd"}
		}
		rd, ok := parseReg(it.args[1])
		if !ok {
			return &Error{it.line, "jmpl destination must be a register"}
		}
		in := sparc.Inst{Op: op, Rd: rd}
		if err := a.jmpOperand(it.args[:1], &in, it.line); err != nil {
			return err
		}
		a.emit32(sparc.Encode(in))
		return nil
	case op == sparc.OpRETT:
		in := sparc.Inst{Op: op}
		if err := a.jmpOperand(it.args, &in, it.line); err != nil {
			return err
		}
		a.emit32(sparc.Encode(in))
		return nil
	case op == sparc.OpSAVE || op == sparc.OpRESTORE:
		if len(it.args) == 0 { // bare restore
			a.emit32(sparc.Encode(sparc.Inst{Op: op}))
			return nil
		}
		return a.encodeALU(op, it.args, it.line)
	}
	return a.encodeALU(op, it.args, it.line)
}

// jmpOperand parses a jmpl/jmp/rett address operand: %r, %r+imm, %r+%r.
func (a *assembler) jmpOperand(args []string, in *sparc.Inst, line int) error {
	if len(args) != 1 {
		return &Error{line, "needs one address operand"}
	}
	return a.memOperand("["+strings.TrimSpace(args[0])+"]", in, line)
}

func (a *assembler) encodeIncDec(op sparc.Op, it item) error {
	switch len(it.args) {
	case 1:
		return a.encodeALU(op, []string{it.args[0], "1", it.args[0]}, it.line)
	case 2:
		return a.encodeALU(op, []string{it.args[1], it.args[0], it.args[1]}, it.line)
	}
	return &Error{it.line, "inc/dec needs 1 or 2 operands"}
}

// encodeALU encodes the common three-operand format: rs1, reg_or_imm, rd.
func (a *assembler) encodeALU(op sparc.Op, args []string, line int) error {
	if len(args) != 3 {
		return &Error{line, fmt.Sprintf("%v needs rs1, reg_or_imm, rd", op)}
	}
	in := sparc.Inst{Op: op}
	r1, ok := parseReg(args[0])
	if !ok {
		return &Error{line, fmt.Sprintf("bad source register %q", args[0])}
	}
	in.Rs1 = r1
	if err := a.regOrImm(args[1], &in, line); err != nil {
		return err
	}
	rd, ok := parseReg(args[2])
	if !ok {
		return &Error{line, fmt.Sprintf("bad destination register %q", args[2])}
	}
	in.Rd = rd
	a.emit32(sparc.Encode(in))
	return nil
}

func (a *assembler) encodeBranch(op sparc.Op, it item) error {
	if len(it.args) != 1 {
		return &Error{it.line, "branch needs a target label"}
	}
	v, err := a.eval(it.args[0], it.line)
	if err != nil {
		return err
	}
	disp := (int64(uint32(v)) - int64(it.addr)) >> 2
	if disp < -(1<<21) || disp >= 1<<21 {
		return &Error{it.line, "branch displacement out of range"}
	}
	a.emit32(sparc.Encode(sparc.Inst{Op: op, Annul: it.annul, Imm22: int32(disp)}))
	return nil
}

func (a *assembler) encodeMem(op sparc.Op, it item) error {
	if len(it.args) != 2 {
		return &Error{it.line, fmt.Sprintf("%v needs two operands", op)}
	}
	in := sparc.Inst{Op: op}
	regArg, memArg := it.args[0], it.args[1]
	if op.IsLoad() && !op.IsStore() || op == sparc.OpLDSTUB || op == sparc.OpSWAP {
		regArg, memArg = it.args[1], it.args[0]
	}
	rd, ok := parseReg(regArg)
	if !ok {
		return &Error{it.line, fmt.Sprintf("bad data register %q", regArg)}
	}
	in.Rd = rd
	if err := a.memOperand(memArg, &in, it.line); err != nil {
		return err
	}
	a.emit32(sparc.Encode(in))
	return nil
}

// encodeSet expands "set value, %rd" into sethi %hi(v),%rd ; or %rd,%lo(v),%rd.
// It always occupies two words so that layout is independent of the value.
func (a *assembler) encodeSet(it item) error {
	if len(it.args) != 2 {
		return &Error{it.line, "set needs value, rd"}
	}
	v64, err := a.eval(it.args[0], it.line)
	if err != nil {
		return err
	}
	v := uint32(v64)
	rd, ok := parseReg(it.args[1])
	if !ok {
		return &Error{it.line, "set destination must be a register"}
	}
	a.emit32(sparc.Encode(sparc.Inst{Op: sparc.OpSETHI, Rd: rd, Imm22: int32(v >> 10)}))
	a.emit32(sparc.Encode(sparc.Inst{Op: sparc.OpOR, Rd: rd, Rs1: rd, Imm: true, Simm13: int32(v & 0x3ff)}))
	return nil
}

var specialRegs = map[string]struct {
	rd, wr sparc.Op
}{
	"%y": {sparc.OpRDY, sparc.OpWRY}, "%psr": {sparc.OpRDPSR, sparc.OpWRPSR},
	"%wim": {sparc.OpRDWIM, sparc.OpWRWIM}, "%tbr": {sparc.OpRDTBR, sparc.OpWRTBR},
}

// encodeRd handles "rd %y|%psr|%wim|%tbr, %rd".
func (a *assembler) encodeRd(it item) error {
	if len(it.args) != 2 {
		return &Error{it.line, "rd needs special register, rd"}
	}
	sr, ok := specialRegs[strings.ToLower(it.args[0])]
	if !ok {
		return &Error{it.line, fmt.Sprintf("bad special register %q", it.args[0])}
	}
	rd, ok := parseReg(it.args[1])
	if !ok {
		return &Error{it.line, "rd destination must be a register"}
	}
	a.emit32(sparc.Encode(sparc.Inst{Op: sr.rd, Rd: rd}))
	return nil
}

// encodeWr handles "wr rs1, reg_or_imm, %y|%psr|%wim|%tbr" and the common
// two-operand form "wr rs1, %y".
func (a *assembler) encodeWr(it item) error {
	if len(it.args) != 2 && len(it.args) != 3 {
		return &Error{it.line, "wr needs rs1 [, reg_or_imm], special register"}
	}
	sr, ok := specialRegs[strings.ToLower(it.args[len(it.args)-1])]
	if !ok {
		return &Error{it.line, fmt.Sprintf("bad special register %q", it.args[len(it.args)-1])}
	}
	in := sparc.Inst{Op: sr.wr}
	r1, ok := parseReg(it.args[0])
	if !ok {
		return &Error{it.line, "wr source must be a register"}
	}
	in.Rs1 = r1
	if len(it.args) == 3 {
		if err := a.regOrImm(it.args[1], &in, it.line); err != nil {
			return err
		}
	} else {
		in.Imm = true
	}
	a.emit32(sparc.Encode(in))
	return nil
}
