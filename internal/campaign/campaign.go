// Package campaign orchestrates the reproduction of every table and figure
// of the paper's evaluation (Table 1, Figures 3-7, and the simulation-time
// comparison). Each experiment function returns a structured result whose
// Render method prints the same rows/series the paper reports.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/diversity"
	"repro/internal/fault"
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ClockMHz is the assumed core clock for converting cycles to time
// (LEON3-class automotive silicon).
const ClockMHz = 100

// Options tunes campaign cost versus precision.
type Options struct {
	// Nodes is the per-target injection-node sample size (statistical
	// fault injection). 0 selects 256.
	Nodes int
	// Seed makes node sampling reproducible.
	Seed int64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// Iterations overrides workload kernel iterations for RTL campaigns
	// (0 = 2, which §4.2 shows is sufficient for permanent faults).
	Iterations int
	// NoCheckpoint disables the checkpointed campaign engine: every
	// experiment then re-simulates its golden warm-up prefix from reset
	// (the paper's original cost model; useful only for debugging or for
	// measuring the engine's speedup).
	NoCheckpoint bool
	// NoBatch disables the bit-parallel (PPSFP) campaign engine: every
	// experiment then runs as its own scalar simulation instead of
	// sharing one witnessed golden pass per batch of fault universes.
	// Results are identical; the toggle exists for debugging and for the
	// DESIGN.md §10 lane ablation.
	NoBatch bool
	// Context, when non-nil, bounds every campaign the experiment
	// functions run: cancellation stops the worker loops within one
	// experiment granule and the experiment function returns ctx.Err().
	Context context.Context
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) nodes() int {
	if o.Nodes <= 0 {
		return 256
	}
	return o.Nodes
}

func (o Options) iters() int {
	if o.Iterations <= 0 {
		return 2
	}
	return o.Iterations
}

// injectFraction positions the fixed injection instant 5% into each run,
// so that open-line faults freeze live state rather than the all-zero
// reset values (the paper's "fixed injection instant").
const injectFraction = 0.05

// runnerKey identifies a memoized fault runner: the workload, its
// configuration and the full runner options that shape golden run,
// checkpoint and engine behaviour. Campaign options that only affect
// sampling (Nodes, Seed, Workers) deliberately do not participate.
type runnerKey struct {
	name string
	cfg  workloads.Config
	opts fault.Options
}

// runnerCache memoizes fault runners process-wide, so the golden run and
// checkpoint of each (workload, config) pair are simulated once and then
// shared across Figure3/4/5/6/7 and Eq1 — Figure 7 alone used to rebuild
// the same six runners Figure 5 had already built. Runners are safe for
// concurrent campaigns, so sharing one across experiment functions is
// sound; the cache holds at most maxRunners entries, evicted
// oldest-first (the experiment functions need only a dozen).
var runnerCache struct {
	mu    sync.Mutex
	m     map[runnerKey]*runnerEntry
	order []runnerKey // recency order, oldest first, for LRU eviction
}

// maxRunners bounds the memoized runner cache. The experiment functions
// only ever need a dozen entries, but the campaign job service keys this
// cache from client-supplied requests, so an unbounded map would let a
// request stream with ever-new injection instants pin one golden run +
// checkpoint each until the daemon dies. Eviction is least-recently-used
// and only drops the memoization: runners still referenced by in-flight
// campaigns stay alive until those campaigns finish.
const maxRunners = 64

// buildSem bounds concurrent golden-run constructions: each is a full
// RTL simulation of a workload's fault-free run, so an unbounded number
// of them (e.g. a burst of distinct job-service requests) would swamp
// the cores the campaigns themselves need. Cache hits never touch it.
var buildSem = make(chan struct{}, runtime.GOMAXPROCS(0))

type runnerEntry struct {
	once sync.Once
	r    *fault.Runner
	err  error
}

// RunnerFor returns the process-wide memoized fault runner for a
// (workload, config, runner options) triple, building it — golden run
// included — on first use. Runners are safe for concurrent campaigns, so
// callers (the experiment functions here, and the campaign job service in
// internal/jobs) share one runner per triple: the golden run and its
// checkpoint are simulated once and reused until the entry ages out of
// the bounded cache.
func RunnerFor(name string, cfg workloads.Config, fopts fault.Options) (*fault.Runner, error) {
	key := runnerKey{name: name, cfg: cfg, opts: fopts}
	// The observability registry is a sink, never an input: two requests
	// that differ only in Obs want the same golden run and checkpoint, so
	// the registry must not fragment the cache (nor, being a pointer,
	// could two equal-valued options ever collide on it). The first build
	// of a triple decides which registry its engine counters feed — in
	// the daemon every build goes through the manager's registry, so this
	// is moot there.
	key.opts.Obs = nil
	runnerCache.mu.Lock()
	if runnerCache.m == nil {
		runnerCache.m = make(map[runnerKey]*runnerEntry)
	}
	e := runnerCache.m[key]
	if e == nil {
		for len(runnerCache.m) >= maxRunners {
			delete(runnerCache.m, runnerCache.order[0])
			runnerCache.order = runnerCache.order[1:]
		}
		e = &runnerEntry{}
		runnerCache.m[key] = e
		runnerCache.order = append(runnerCache.order, key)
	} else {
		// LRU touch: move the key to the back so the hottest runners are
		// the last to be evicted.
		for i, k := range runnerCache.order {
			if k == key {
				copy(runnerCache.order[i:], runnerCache.order[i+1:])
				runnerCache.order[len(runnerCache.order)-1] = key
				break
			}
		}
	}
	runnerCache.mu.Unlock()
	e.once.Do(func() {
		buildSem <- struct{}{}
		defer func() { <-buildSem }()
		w, err := workloads.Build(name, cfg)
		if err != nil {
			e.err = err
			return
		}
		e.r, e.err = fault.NewRunner(w.Program, fopts)
	})
	return e.r, e.err
}

// runnerFor is the experiment functions' view of RunnerFor: every figure
// uses the same fixed injection fraction, so runners are shared across
// Figures 3-7 and Eq1.
func runnerFor(o Options, name string, cfg workloads.Config) (*fault.Runner, error) {
	return RunnerFor(name, cfg, fault.Options{
		InjectAtFraction: injectFraction,
		NoCheckpoint:     o.NoCheckpoint,
		NoBatch:          o.NoBatch,
	})
}

// pfOf runs one (workload, target, model) campaign and returns Pf plus the
// raw results.
func pfOf(o Options, name string, cfg workloads.Config, target fault.Target, model rtl.FaultModel) (float64, []fault.Result, error) {
	r, err := runnerFor(o, name, cfg)
	if err != nil {
		return 0, nil, err
	}
	nodes := fault.SampleNodes(r.Nodes(target), o.nodes(), o.Seed)
	results, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, model), o.Workers, nil)
	if err != nil {
		return 0, nil, err
	}
	return fault.Pf(results), results, nil
}

// ---------------------------------------------------------------------------
// Table 1 — benchmark characterization.

// Table1Row characterizes one benchmark.
type Table1Row struct {
	Name      string
	Total     uint64
	IU        uint64
	Memory    uint64
	Diversity int
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the six paper benchmarks on the ISS.
func Table1() (*Table1Result, error) {
	out := &Table1Result{}
	for _, name := range workloads.Table1Names() {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		prof, err := diversity.Measure(name, w.Program, 50_000_000)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table1Row{
			Name:      name,
			Total:     prof.TotalInsts,
			IU:        prof.IUInsts,
			Memory:    prof.MemoryInsts,
			Diversity: prof.Diversity,
		})
	}
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render() string {
	tab := &report.Table{
		Title:   "Table 1: Benchmarks characterization",
		Columns: []string{"Instructions", "puwmod", "canrdr", "ttsprk", "rspeed", "membench", "intbench"},
	}
	row := func(label string, f func(Table1Row) string) {
		cells := []interface{}{label}
		for _, r := range t.Rows {
			cells = append(cells, f(r))
		}
		tab.AddRow(cells...)
	}
	row("Total", func(r Table1Row) string { return fmt.Sprint(r.Total) })
	row("Integer Unit", func(r Table1Row) string { return fmt.Sprint(r.IU) })
	row("Memory", func(r Table1Row) string { return fmt.Sprint(r.Memory) })
	row("Diversity", func(r Table1Row) string { return fmt.Sprint(r.Diversity) })
	return tab.String()
}

// ---------------------------------------------------------------------------
// Figure 3 — input-data variation on fixed-code excerpts.

// Fig3Point is one excerpt bar.
type Fig3Point struct {
	Subset  string // "A" (8 types) or "B" (11 types)
	Dataset string // the EEMBC member whose data flavor it carries
	Pf      float64
}

// Fig3Result holds both subsets.
type Fig3Result struct {
	Points []Fig3Point
	// SpreadA/B are the max-min Pf differences within each subset
	// (the paper observes up to ~4 percentage points).
	SpreadA, SpreadB float64
}

// Figure3 injects stuck-at-1 faults at the IU while running the six
// benchmark excerpts (two code variants x three datasets).
func Figure3(o Options) (*Fig3Result, error) {
	labels := map[string][]string{
		"A": {"a2time", "ttsprk", "bitmap"},
		"B": {"rspeed", "tblook", "basefp"},
	}
	out := &Fig3Result{}
	for _, subset := range []string{"A", "B"} {
		var min, max float64
		for ds := 0; ds < 3; ds++ {
			pf, _, err := pfOf(o, "excerpt"+subset, workloads.Config{Dataset: ds}, fault.TargetIU, rtl.StuckAt1)
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, Fig3Point{Subset: subset, Dataset: labels[subset][ds], Pf: pf})
			if ds == 0 || pf < min {
				min = pf
			}
			if ds == 0 || pf > max {
				max = pf
			}
		}
		if subset == "A" {
			out.SpreadA = max - min
		} else {
			out.SpreadB = max - min
		}
	}
	return out, nil
}

// Render prints the two bar groups.
func (f *Fig3Result) Render() string {
	var la, lb []string
	var va, vb []float64
	for _, p := range f.Points {
		if p.Subset == "A" {
			la = append(la, p.Dataset)
			va = append(va, p.Pf)
		} else {
			lb = append(lb, p.Dataset)
			vb = append(vb, p.Pf)
		}
	}
	return report.Bars("Figure 3(a): excerpts, 8 instruction types, stuck-at-1 @ IU", la, va, 100) +
		fmt.Sprintf("spread: %.1f pp\n\n", 100*f.SpreadA) +
		report.Bars("Figure 3(b): excerpts, 11 instruction types, stuck-at-1 @ IU", lb, vb, 100) +
		fmt.Sprintf("spread: %.1f pp\n", 100*f.SpreadB)
}

// ---------------------------------------------------------------------------
// Figure 4 — iteration count: Pf stability and propagation latency.

// Fig4Point is one iteration configuration of rspeed.
type Fig4Point struct {
	Iterations   int
	Pf           float64
	MaxLatencyUS float64
}

// Fig4Result holds the three configurations.
type Fig4Result struct {
	Points []Fig4Point
}

// Figure4 runs rspeed with 2, 4 and 10 iterations under stuck-at-1 at the
// IU nodes.
func Figure4(o Options) (*Fig4Result, error) {
	out := &Fig4Result{}
	for _, iters := range []int{2, 4, 10} {
		r, err := runnerFor(o, "rspeed", workloads.Config{Iterations: iters})
		if err != nil {
			return nil, err
		}
		nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)
		results, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, rtl.StuckAt1), o.Workers, nil)
		if err != nil {
			return nil, err
		}
		lat := fault.MaxLatency(results)
		out.Points = append(out.Points, Fig4Point{
			Iterations:   iters,
			Pf:           fault.Pf(results),
			MaxLatencyUS: float64(lat) / ClockMHz,
		})
	}
	return out, nil
}

// Render prints both panels.
func (f *Fig4Result) Render() string {
	tab := &report.Table{
		Title:   "Figure 4: rspeed iterations, stuck-at-1 @ IU",
		Columns: []string{"config", "Pf", "max propagation latency (us)"},
	}
	for _, p := range f.Points {
		tab.AddRow(fmt.Sprintf("rspeed%d", p.Iterations), report.Percent(p.Pf),
			fmt.Sprintf("%.1f", p.MaxLatencyUS))
	}
	return tab.String()
}

// ---------------------------------------------------------------------------
// Figures 5 and 6 — Pf per benchmark and fault model at IU / CMEM nodes.

// FigPfPoint is one bar of Figures 5/6.
type FigPfPoint struct {
	Benchmark string
	Model     rtl.FaultModel
	Pf        float64
}

// FigPfResult holds one target's sweep.
type FigPfResult struct {
	Target fault.Target
	Points []FigPfPoint
}

func figurePf(o Options, target fault.Target) (*FigPfResult, error) {
	out := &FigPfResult{Target: target}
	for _, name := range workloads.Table1Names() {
		cfg := workloads.Config{Iterations: o.iters()}
		for _, model := range rtl.FaultModels() {
			pf, _, err := pfOf(o, name, cfg, target, model)
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, FigPfPoint{Benchmark: name, Model: model, Pf: pf})
		}
	}
	return out, nil
}

// Figure5 sweeps the IU nodes.
func Figure5(o Options) (*FigPfResult, error) { return figurePf(o, fault.TargetIU) }

// Figure6 sweeps the CMEM nodes.
func Figure6(o Options) (*FigPfResult, error) { return figurePf(o, fault.TargetCMEM) }

// Render prints the grouped bars.
func (f *FigPfResult) Render() string {
	num := 5
	if f.Target == fault.TargetCMEM {
		num = 6
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Figure %d: propagated faults to failures at %v nodes", num, f.Target),
		Columns: []string{"benchmark", "stuck-at-1", "stuck-at-0", "open-line"},
	}
	byBench := map[string]map[rtl.FaultModel]float64{}
	var order []string
	for _, p := range f.Points {
		if byBench[p.Benchmark] == nil {
			byBench[p.Benchmark] = map[rtl.FaultModel]float64{}
			order = append(order, p.Benchmark)
		}
		byBench[p.Benchmark][p.Model] = p.Pf
	}
	for _, b := range order {
		m := byBench[b]
		tab.AddRow(b, report.Percent(m[rtl.StuckAt1]), report.Percent(m[rtl.StuckAt0]),
			report.Percent(m[rtl.OpenLine]))
	}
	return tab.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — Pf versus instruction diversity with logarithmic fit.

// Fig7Point is one scatter point.
type Fig7Point struct {
	Label     string
	Diversity int
	Pf        float64
}

// Fig7Result is the scatter plus the fitted model.
type Fig7Result struct {
	Points        []Fig7Point
	A, Bderiv, R2 float64
}

// Figure7 correlates Pf (stuck-at-1 at IU) against instruction diversity
// over the six Table-1 benchmarks and the six Figure-3 excerpts, then fits
// y = a*ln(x) + b.
func Figure7(o Options) (*Fig7Result, error) {
	out := &Fig7Result{}
	add := func(label string, name string, cfg workloads.Config) error {
		w, err := workloads.Build(name, cfg)
		if err != nil {
			return err
		}
		prof, err := diversity.Measure(label, w.Program, 50_000_000)
		if err != nil {
			return err
		}
		pf, _, err := pfOf(o, name, cfg, fault.TargetIU, rtl.StuckAt1)
		if err != nil {
			return err
		}
		out.Points = append(out.Points, Fig7Point{Label: label, Diversity: prof.Diversity, Pf: pf})
		return nil
	}
	for _, name := range workloads.Table1Names() {
		if err := add(name, name, workloads.Config{Iterations: o.iters()}); err != nil {
			return nil, err
		}
	}
	for ds := 0; ds < 3; ds++ {
		if err := add(fmt.Sprintf("excerptA/%d", ds), "excerptA", workloads.Config{Dataset: ds}); err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("excerptB/%d", ds), "excerptB", workloads.Config{Dataset: ds}); err != nil {
			return nil, err
		}
	}
	xs := make([]float64, len(out.Points))
	ys := make([]float64, len(out.Points))
	for i, p := range out.Points {
		xs[i] = float64(p.Diversity)
		ys[i] = p.Pf
	}
	a, b, r2, err := stats.LogFit(xs, ys)
	if err != nil {
		return nil, err
	}
	out.A, out.Bderiv, out.R2 = a, b, r2
	return out, nil
}

// Render prints the scatter and the fit.
func (f *Fig7Result) Render() string {
	tab := &report.Table{
		Title:   "Figure 7: propagated faults vs instruction diversity (stuck-at-1 @ IU)",
		Columns: []string{"point", "diversity", "Pf"},
	}
	for _, p := range f.Points {
		tab.AddRow(p.Label, p.Diversity, report.Percent(p.Pf))
	}
	return tab.String() + fmt.Sprintf(
		"fit: y = %.4f*ln(x) %+.4f   R^2 = %.4f   (paper: y = 0.0838*ln(x) - 0.0191, R^2 = 0.9246)\n",
		f.A, f.Bderiv, f.R2)
}

// ---------------------------------------------------------------------------
// Simulation-time comparison (§4.2).

// SimTimeResult compares RTL and ISS simulation cost.
type SimTimeResult struct {
	RTLCyclesPerSec float64
	ISSInstPerSec   float64
	// RTLRunSec and ISSRunSec are the measured wall-clock times of one
	// full benchmark execution on each simulator.
	RTLRunSec, ISSRunSec float64
	// Speedup is the per-run ISS/RTL wall-clock ratio.
	Speedup float64
	// CampaignRuns is the size of a full exhaustive campaign (all IU and
	// CMEM nodes x 3 models x 6 benchmarks).
	CampaignRuns int
	// RTLCampaignHours and ISSCampaignHours extrapolate the full campaign
	// cost on one worker.
	RTLCampaignHours, ISSCampaignHours float64
	// CheckpointSpeedup is the measured speedup of the checkpointed
	// campaign engine over from-reset re-simulation on an identical
	// experiment set at the injection instant the repo's campaigns
	// actually use (injectFraction into the run): the warm-up prefix is
	// simulated once and every experiment forks from the frozen
	// snapshot. The speedup grows with the injection instant — the
	// BenchmarkCampaign pair measures ~2x at mid-run.
	CheckpointSpeedup float64
	// CheckpointedRTLCampaignHours extrapolates the full RTL campaign
	// cost with golden-run forking enabled, using that same speedup.
	CheckpointedRTLCampaignHours float64
}

// SimTime measures both simulators on the puwmod benchmark and
// extrapolates the full-campaign cost the paper reports (25,478 h of RTL
// versus <300 h of ISS computing time).
func SimTime(o Options) (*SimTimeResult, error) {
	w, err := workloads.Build("puwmod", workloads.Config{Iterations: o.iters()})
	if err != nil {
		return nil, err
	}

	mi := mem.NewMemory()
	mi.LoadImage(w.Program.Origin, w.Program.Image)
	cpu := iss.New(mem.NewBus(mi), w.Program.Entry)
	// SimTime's deliverable IS wall-clock: it reproduces the paper's
	// simulation-time table, and no measured duration feeds a campaign
	// result or content address.
	t0 := time.Now() //lint:allow det measured quantity of the SimTime table
	if st := cpu.Run(100_000_000); st != iss.StatusExited {
		return nil, fmt.Errorf("campaign: ISS timing run: %v", st)
	}
	issSec := time.Since(t0).Seconds() //lint:allow det measured quantity of the SimTime table

	mr := mem.NewMemory()
	mr.LoadImage(w.Program.Origin, w.Program.Image)
	core := leon3.New(mem.NewBus(mr), w.Program.Entry)
	t0 = time.Now() //lint:allow det measured quantity of the SimTime table
	if st := core.Run(400_000_000); st != iss.StatusExited {
		return nil, fmt.Errorf("campaign: RTL timing run: %v", st)
	}
	rtlSec := time.Since(t0).Seconds() //lint:allow det measured quantity of the SimTime table

	nodes := core.K.Nodes("iu.")
	cmem := core.K.Nodes("cmem.")
	runs := (len(nodes) + len(cmem)) * 3 * len(workloads.Table1Names())

	// Golden-run reuse: time the same small experiment set with the
	// checkpointed engine forking from the golden snapshot versus
	// re-simulating every warm-up prefix from reset.
	ckSec, resetSec, err := checkpointSpeedup(o, w)
	if err != nil {
		return nil, err
	}

	out := &SimTimeResult{
		RTLCyclesPerSec:  float64(core.Cycles()) / rtlSec,
		ISSInstPerSec:    float64(cpu.Icount) / issSec,
		RTLRunSec:        rtlSec,
		ISSRunSec:        issSec,
		Speedup:          rtlSec / issSec,
		CampaignRuns:     runs,
		RTLCampaignHours: rtlSec * float64(runs) / 3600,
		ISSCampaignHours: issSec * float64(runs) / 3600,
	}
	out.CheckpointSpeedup = resetSec / ckSec
	out.CheckpointedRTLCampaignHours = out.RTLCampaignHours / out.CheckpointSpeedup
	return out, nil
}

// checkpointSpeedup measures one experiment set both ways: forked from the
// golden-run checkpoint and re-simulated from reset. It injects at the
// same injectFraction the repo's campaigns use, so dividing the
// extrapolated campaign hours by this speedup stays honest.
func checkpointSpeedup(o Options, w *workloads.Workload) (ckSec, resetSec float64, err error) {
	sample := 12
	if o.Nodes > 0 && o.Nodes < sample {
		sample = o.Nodes
	}
	for _, noCkpt := range []bool{false, true} {
		// Deliberately unmemoized: this measures golden-run + campaign
		// cost both ways, so a RunnerFor cache hit would time an empty
		// build and overstate the speedup.
		r, err := fault.NewRunner(w.Program, fault.Options{ //lint:allow seam audited one-shot timing build
			InjectAtFraction: injectFraction,
			NoCheckpoint:     noCkpt,
			NoBatch:          o.NoBatch,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("campaign: checkpoint timing: %w", err)
		}
		exps := fault.Expand(fault.SampleNodes(r.Nodes(fault.TargetIU), sample, o.Seed), rtl.StuckAt1)
		r.PrepareCheckpoint() // capture outside the timed region
		t0 := time.Now()      //lint:allow det measured quantity of the checkpoint-speedup row
		if _, err := r.CampaignContext(o.ctx(), exps, o.Workers, nil); err != nil {
			return 0, 0, err
		}
		if noCkpt {
			resetSec = time.Since(t0).Seconds() //lint:allow det measured quantity of the checkpoint-speedup row
		} else {
			ckSec = time.Since(t0).Seconds() //lint:allow det measured quantity of the checkpoint-speedup row
		}
	}
	return ckSec, resetSec, nil
}

// Render prints the comparison next to the paper's numbers.
func (s *SimTimeResult) Render() string {
	tab := &report.Table{
		Title:   "Simulation time: RTL fault injection vs ISS (one benchmark run)",
		Columns: []string{"metric", "RTL", "ISS"},
	}
	tab.AddRow("wall-clock per run (s)", fmt.Sprintf("%.4f", s.RTLRunSec), fmt.Sprintf("%.4f", s.ISSRunSec))
	tab.AddRow("throughput", fmt.Sprintf("%.0f cycles/s", s.RTLCyclesPerSec), fmt.Sprintf("%.0f inst/s", s.ISSInstPerSec))
	tab.AddRow("full campaign (1 worker, h)", fmt.Sprintf("%.1f", s.RTLCampaignHours), fmt.Sprintf("%.1f", s.ISSCampaignHours))
	tab.AddRow("checkpointed campaign (h)", fmt.Sprintf("%.1f", s.CheckpointedRTLCampaignHours), "-")
	return tab.String() + fmt.Sprintf(
		"per-run RTL/ISS slowdown: %.1fx over %d campaign runs (paper: 25,478 h RTL on clusters vs <300 h ISS on one workstation)\n"+
			"golden-run forking at the campaign injection instant: %.2fx speedup (warm-up prefix simulated once, experiments forked copy-on-write; ~2x at mid-run injection)\n",
		s.Speedup, s.CampaignRuns, s.CheckpointSpeedup)
}
