package campaign

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/workloads"
)

// small keeps test campaigns fast; benchmarks use larger samples.
var small = Options{Nodes: 48, Seed: 1, Iterations: 2}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	// Automotive benchmarks share a diversity plateau well above the
	// synthetic ones (paper: 47-48 vs 18-20).
	for _, n := range []string{"puwmod", "canrdr", "ttsprk", "rspeed"} {
		if d := byName[n].Diversity; d < 40 {
			t.Errorf("%s diversity %d below plateau", n, d)
		}
		if byName[n].Total < 50_000 {
			t.Errorf("%s total %d too small", n, byName[n].Total)
		}
	}
	for _, n := range []string{"membench", "intbench"} {
		if d := byName[n].Diversity; d > 26 {
			t.Errorf("%s diversity %d above synthetic band", n, d)
		}
	}
	if byName["intbench"].Total > 10_000 {
		t.Errorf("intbench total %d, paper has 2621", byName["intbench"].Total)
	}
	out := res.Render()
	if !strings.Contains(out, "Diversity") || !strings.Contains(out, "puwmod") {
		t.Error("render missing expected cells")
	}
}

func TestFigure3DataSensitivity(t *testing.T) {
	res, err := Figure3(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Pf <= 0 || p.Pf >= 0.9 {
			t.Errorf("%s/%s: implausible Pf %.3f", p.Subset, p.Dataset, p.Pf)
		}
	}
	// Input data moves Pf by a few percentage points, not tens.
	if res.SpreadA > 0.15 || res.SpreadB > 0.15 {
		t.Errorf("spreads too large: %.3f %.3f", res.SpreadA, res.SpreadB)
	}
	_ = res.Render()
}

func TestFigure4IterationStability(t *testing.T) {
	// The latency tail comes from faults in rarely-read register-file
	// cells, so this figure needs a larger node sample than the others.
	res, err := Figure4(Options{Nodes: 192, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Panel (a): Pf approximately constant across iteration counts.
	base := res.Points[0].Pf
	for _, p := range res.Points {
		if diff := p.Pf - base; diff > 0.06 || diff < -0.06 {
			t.Errorf("rspeed%d Pf %.3f deviates from rspeed2 %.3f", p.Iterations, p.Pf, base)
		}
	}
	// Panel (b): max propagation latency grows with iterations.
	if !(res.Points[2].MaxLatencyUS > res.Points[0].MaxLatencyUS) {
		t.Errorf("latency did not grow: %v", res.Points)
	}
	_ = res.Render()
}

func TestFigure5AutomotivePlateauAndSyntheticDip(t *testing.T) {
	res, err := Figure5(small)
	if err != nil {
		t.Fatal(err)
	}
	sa1 := map[string]float64{}
	for _, p := range res.Points {
		if p.Model.String() == "stuck-at-1" {
			sa1[p.Benchmark] = p.Pf
		}
	}
	auto := []float64{sa1["puwmod"], sa1["canrdr"], sa1["ttsprk"], sa1["rspeed"]}
	min, max := auto[0], auto[0]
	for _, v := range auto {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Paper: automotive Pf almost constant; synthetics clearly below.
	if max-min > 0.12 {
		t.Errorf("automotive Pf not flat: spread %.3f (%v)", max-min, sa1)
	}
	autoMean := (auto[0] + auto[1] + auto[2] + auto[3]) / 4
	if sa1["intbench"] >= autoMean {
		t.Errorf("intbench Pf %.3f not below automotive mean %.3f", sa1["intbench"], autoMean)
	}
	t.Logf("Figure5 sa1: %v", sa1)
	_ = res.Render()
}

func TestFigure6CMEM(t *testing.T) {
	res, err := Figure6(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != fault.TargetCMEM {
		t.Fatal("wrong target")
	}
	if len(res.Points) != 18 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Pf < 0 || p.Pf > 0.8 {
			t.Errorf("%s/%v: implausible CMEM Pf %.3f", p.Benchmark, p.Model, p.Pf)
		}
	}
	_ = res.Render()
}

func TestFigure7CorrelationIsPositiveAndLogShaped(t *testing.T) {
	res, err := Figure7(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.A <= 0 {
		t.Errorf("fit slope %.4f not positive", res.A)
	}
	if res.R2 < 0.5 {
		t.Errorf("R^2 = %.3f, correlation too weak", res.R2)
	}
	t.Logf("fit: y = %.4f*ln(x) %+.4f, R^2 = %.3f", res.A, res.Bderiv, res.R2)
	_ = res.Render()
}

func TestExtTransientTemporalVariation(t *testing.T) {
	res, err := ExtTransient(small, "rspeed")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Transient Pf must not exceed the permanent Pf on the same nodes,
	// and must show some temporal variation (the effect the paper's
	// permanent-fault restriction removes).
	for _, p := range res.Points {
		if p.Pf > res.PermanentPf+0.05 {
			t.Errorf("transient Pf %.3f at cycle %d above permanent %.3f", p.Pf, p.AtCycle, res.PermanentPf)
		}
	}
	_ = res.Render()
}

func TestEq1CalibrationPredicts(t *testing.T) {
	res, err := Eq1(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.A <= 0 {
		t.Errorf("per-unit slope %.4f not positive", res.A)
	}
	// Predictions must rank the benchmarks consistently with the
	// measurements (the whole point of Equation 1).
	if res.PredCorr < 0.5 {
		t.Errorf("predicted-vs-measured correlation %.3f too weak", res.PredCorr)
	}
	for _, p := range res.Points {
		if p.PredictedPf < 0 || p.PredictedPf > 1 {
			t.Errorf("%s: prediction %.3f out of range", p.Benchmark, p.PredictedPf)
		}
	}
	t.Logf("%s", res.Render())
}

func TestSimTimeRatio(t *testing.T) {
	res, err := SimTime(Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of the paper: ISS is orders of magnitude cheaper.
	if res.Speedup < 5 {
		t.Errorf("RTL/ISS slowdown only %.1fx", res.Speedup)
	}
	if res.CampaignRuns < 10000 {
		t.Errorf("campaign size %d suspiciously small", res.CampaignRuns)
	}
	t.Logf("%s", res.Render())
}

// TestRunnerCacheMemoizes pins the campaign-wide golden-run reuse: the
// same (workload, config, runner options) key must yield the same cached
// runner — one golden run and one checkpoint per process, shared across
// every figure — while a different config or engine option builds its
// own.
func TestRunnerCacheMemoizes(t *testing.T) {
	o := Options{}
	cfg := workloads.Config{Iterations: 2}
	a, err := runnerFor(o, "rspeed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runnerFor(o, "rspeed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical key rebuilt the runner (golden run re-simulated)")
	}
	c, err := runnerFor(o, "rspeed", workloads.Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different iteration count shared a runner")
	}
	d, err := runnerFor(Options{NoCheckpoint: true}, "rspeed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("NoCheckpoint shared a checkpointed runner")
	}
}

func TestTransientBreakdown(t *testing.T) {
	res, err := TransientBreakdown(small, "rspeed", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want one per fault model", len(res.Rows))
	}
	perm, trans := 0, 0
	for _, row := range res.Rows {
		if row.Transient {
			trans++
		} else {
			perm++
		}
		if row.PfLow < 0 || row.PfHigh > 1 || row.PfLow > row.Pf || row.Pf > row.PfHigh {
			t.Errorf("%v: interval [%v,%v] does not bracket Pf %v", row.Model, row.PfLow, row.PfHigh, row.Pf)
		}
	}
	if perm != 3 || trans != 2 {
		t.Fatalf("class split %d permanent / %d transient, want 3/2", perm, trans)
	}
	// Single upsets expose strictly less corruption opportunity than
	// permanent forcing on the same sample.
	if res.TransientPf > res.PermanentPf+0.05 {
		t.Errorf("transient class Pf %.3f above permanent %.3f", res.TransientPf, res.PermanentPf)
	}
	// Deterministic: the same options reproduce the same breakdown.
	again, err := TransientBreakdown(small, "rspeed", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("breakdown not reproducible")
	}
	_ = res.Render()
}
