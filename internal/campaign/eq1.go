package campaign

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/diversity"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Eq1Point is one benchmark's measured-versus-predicted failure
// probability.
type Eq1Point struct {
	Benchmark   string
	Diversity   int
	MeasuredPf  float64
	PredictedPf float64
}

// Eq1Result exercises the paper's Equation (1) end to end: per-unit
// failure probabilities Pmf are measured on a calibration set, a log
// model Pmf = a*ln(Dm)+b is fitted over (unit, benchmark) points, and
// each benchmark's total Pf is then predicted as the area-weighted sum —
// the workflow a verification team would run once per core generation and
// reuse at the ISS level thereafter.
type Eq1Result struct {
	// A and B are the means of the fitted per-unit slopes and intercepts
	// (the headline Pmf = A*ln(Dm)+B model).
	A, B  float64
	FitR2 float64
	// UnitFits holds the individual per-unit models the prediction uses.
	UnitFits map[sparc.Unit]UnitFit
	Points   []Eq1Point
	// PredCorr is the Pearson correlation between predicted and measured
	// benchmark Pf.
	PredCorr float64
}

// UnitFit is one functional unit's fitted Equation (1) model
// Pmf = A*ln(Dm) + B with its goodness of fit.
type UnitFit struct {
	A, B, R2 float64
}

// FitUnit fits one unit's log model over (diversity, Pmf) calibration
// points: the per-class fit Eq1 aggregates and the hybrid router's
// confidence machinery builds on.
func FitUnit(divs, pmfs []float64) (UnitFit, error) {
	a, b, r2, err := stats.LogFit(divs, pmfs)
	if err != nil {
		return UnitFit{}, err
	}
	return UnitFit{A: a, B: b, R2: r2}, nil
}

// Eq1 runs the calibration-and-predict experiment over the Table-1
// benchmarks with stuck-at-1 faults at the IU.
func Eq1(o Options) (*Eq1Result, error) {
	type benchData struct {
		name     string
		prof     diversity.Profile
		pf       float64
		unitPf   map[sparc.Unit]float64
		unitDivs [sparc.NumUnits]int
	}
	var all []benchData
	var weights map[sparc.Unit]float64

	for _, name := range workloads.Table1Names() {
		cfg := workloads.Config{Iterations: o.iters()}
		w, err := workloads.Build(name, cfg)
		if err != nil {
			return nil, err
		}
		prof, err := diversity.Measure(name, w.Program, 50_000_000)
		if err != nil {
			return nil, err
		}
		r, err := runnerFor(o, name, cfg)
		if err != nil {
			return nil, err
		}
		nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)
		if weights == nil {
			counts := map[sparc.Unit]int{}
			for _, n := range r.Nodes(fault.TargetIU) {
				counts[n.Unit]++
			}
			weights = diversity.AreaWeights(counts)
		}
		results, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, rtl.StuckAt1), o.Workers, nil)
		if err != nil {
			return nil, err
		}
		all = append(all, benchData{
			name:     name,
			prof:     prof,
			pf:       fault.Pf(results),
			unitPf:   fault.PfByUnit(results),
			unitDivs: prof.UnitDiversity,
		})
	}

	// Fit Pmf = a_m*ln(Dm) + b_m per functional unit, across benchmarks —
	// the paper's "Dm has to be related with the failure probabilities
	// for the different processor functional units". Pooling units would
	// conflate their different base utilizations.
	fits := map[sparc.Unit]UnitFit{}
	var r2sum float64
	var r2n int
	var aAvg, bAvg float64
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		var xs, ys []float64
		for _, b := range all {
			if d := b.unitDivs[u]; d > 0 {
				if pmf, sampled := b.unitPf[u]; sampled {
					xs = append(xs, float64(d))
					ys = append(ys, pmf)
				}
			}
		}
		f, err := FitUnit(xs, ys)
		if err != nil {
			continue
		}
		fits[u] = f
		r2sum += f.R2
		r2n++
		aAvg += f.A
		bAvg += f.B
	}
	if r2n == 0 {
		return nil, fmt.Errorf("campaign: no unit admitted a fit")
	}

	out := &Eq1Result{
		A:        aAvg / float64(r2n),
		B:        bAvg / float64(r2n),
		FitR2:    r2sum / float64(r2n),
		UnitFits: fits,
	}
	var preds, meas []float64
	for _, b := range all {
		pred := 0.0
		for u, w := range weights {
			f, ok := fits[u]
			if !ok || b.unitDivs[u] <= 0 {
				continue
			}
			p := f.A*logOf(float64(b.unitDivs[u])) + f.B
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			pred += w * p
		}
		out.Points = append(out.Points, Eq1Point{
			Benchmark:   b.name,
			Diversity:   b.prof.Diversity,
			MeasuredPf:  b.pf,
			PredictedPf: pred,
		})
		preds = append(preds, pred)
		meas = append(meas, b.pf)
	}
	if corr, err := stats.Pearson(preds, meas); err == nil {
		out.PredCorr = corr
	}
	sort.Slice(out.Points, func(i, j int) bool {
		return out.Points[i].MeasuredPf > out.Points[j].MeasuredPf
	})
	return out, nil
}

func logOf(x float64) float64 { return math.Log(x) }

// Render prints the calibration table.
func (e *Eq1Result) Render() string {
	tab := &report.Table{
		Title:   "Equation (1): area-weighted per-unit prediction vs measured Pf (SA1 @ IU)",
		Columns: []string{"benchmark", "diversity", "measured", "predicted"},
	}
	for _, p := range e.Points {
		tab.AddRow(p.Benchmark, p.Diversity, report.Percent(p.MeasuredPf), report.Percent(p.PredictedPf))
	}
	return tab.String() + fmt.Sprintf(
		"per-unit fits: mean slope %.4f, mean intercept %.4f, mean R^2 = %.3f; predicted-vs-measured r = %.3f\n",
		e.A, e.B, e.FitR2, e.PredCorr)
}
