package campaign

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/diversity"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Eq1Point is one benchmark's measured-versus-predicted failure
// probability.
type Eq1Point struct {
	Benchmark   string
	Diversity   int
	MeasuredPf  float64
	PredictedPf float64
}

// Eq1Result exercises the paper's Equation (1) end to end: per-unit
// failure probabilities Pmf are measured on a calibration set, a log
// model Pmf = a*ln(Dm)+b is fitted over (unit, benchmark) points, and
// each benchmark's total Pf is then predicted as the area-weighted sum —
// the workflow a verification team would run once per core generation and
// reuse at the ISS level thereafter.
type Eq1Result struct {
	A, B   float64 // fitted per-unit model
	FitR2  float64
	Points []Eq1Point
	// PredCorr is the Pearson correlation between predicted and measured
	// benchmark Pf.
	PredCorr float64
}

// Eq1 runs the calibration-and-predict experiment over the Table-1
// benchmarks with stuck-at-1 faults at the IU.
func Eq1(o Options) (*Eq1Result, error) {
	type benchData struct {
		name     string
		prof     diversity.Profile
		pf       float64
		unitPf   map[sparc.Unit]float64
		unitDivs [sparc.NumUnits]int
	}
	var all []benchData
	var weights map[sparc.Unit]float64

	for _, name := range workloads.Table1Names() {
		cfg := workloads.Config{Iterations: o.iters()}
		w, err := workloads.Build(name, cfg)
		if err != nil {
			return nil, err
		}
		prof, err := diversity.Measure(name, w.Program, 50_000_000)
		if err != nil {
			return nil, err
		}
		r, err := runnerFor(o, name, cfg)
		if err != nil {
			return nil, err
		}
		nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)
		if weights == nil {
			counts := map[sparc.Unit]int{}
			for _, n := range r.Nodes(fault.TargetIU) {
				counts[n.Unit]++
			}
			weights = diversity.AreaWeights(counts)
		}
		results, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, rtl.StuckAt1), o.Workers, nil)
		if err != nil {
			return nil, err
		}
		all = append(all, benchData{
			name:     name,
			prof:     prof,
			pf:       fault.Pf(results),
			unitPf:   fault.PfByUnit(results),
			unitDivs: prof.UnitDiversity,
		})
	}

	// Fit Pmf = a_m*ln(Dm) + b_m per functional unit, across benchmarks —
	// the paper's "Dm has to be related with the failure probabilities
	// for the different processor functional units". Pooling units would
	// conflate their different base utilizations.
	type unitFit struct {
		a, b float64
		ok   bool
	}
	fits := map[sparc.Unit]unitFit{}
	var r2sum float64
	var r2n int
	var aAvg float64
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		var xs, ys []float64
		for _, b := range all {
			if d := b.unitDivs[u]; d > 0 {
				if pmf, sampled := b.unitPf[u]; sampled {
					xs = append(xs, float64(d))
					ys = append(ys, pmf)
				}
			}
		}
		a, bcoef, r2, err := stats.LogFit(xs, ys)
		if err != nil {
			continue
		}
		fits[u] = unitFit{a: a, b: bcoef, ok: true}
		r2sum += r2
		r2n++
		aAvg += a
	}
	if r2n == 0 {
		return nil, fmt.Errorf("campaign: no unit admitted a fit")
	}

	out := &Eq1Result{A: aAvg / float64(r2n), B: 0, FitR2: r2sum / float64(r2n)}
	var preds, meas []float64
	for _, b := range all {
		pred := 0.0
		for u, w := range weights {
			f := fits[u]
			if !f.ok || b.unitDivs[u] <= 0 {
				continue
			}
			p := f.a*logOf(float64(b.unitDivs[u])) + f.b
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			pred += w * p
		}
		out.Points = append(out.Points, Eq1Point{
			Benchmark:   b.name,
			Diversity:   b.prof.Diversity,
			MeasuredPf:  b.pf,
			PredictedPf: pred,
		})
		preds = append(preds, pred)
		meas = append(meas, b.pf)
	}
	if corr, err := stats.Pearson(preds, meas); err == nil {
		out.PredCorr = corr
	}
	sort.Slice(out.Points, func(i, j int) bool {
		return out.Points[i].MeasuredPf > out.Points[j].MeasuredPf
	})
	return out, nil
}

func logOf(x float64) float64 { return math.Log(x) }

// Render prints the calibration table.
func (e *Eq1Result) Render() string {
	tab := &report.Table{
		Title:   "Equation (1): area-weighted per-unit prediction vs measured Pf (SA1 @ IU)",
		Columns: []string{"benchmark", "diversity", "measured", "predicted"},
	}
	for _, p := range e.Points {
		tab.AddRow(p.Benchmark, p.Diversity, report.Percent(p.MeasuredPf), report.Percent(p.PredictedPf))
	}
	return tab.String() + fmt.Sprintf(
		"per-unit fits: mean slope %.4f, mean R^2 = %.3f; predicted-vs-measured r = %.3f\n",
		e.A, e.FitR2, e.PredCorr)
}
