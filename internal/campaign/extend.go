package campaign

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/workloads"
)

// TransientPoint is the Pf of single-event upsets injected at one instant.
type TransientPoint struct {
	AtCycle uint64
	Pf      float64
}

// TransientResult is the exploratory extension experiment: the paper
// restricts itself to permanent faults precisely because transient-fault
// outcomes depend on the injection instant; this experiment demonstrates
// that temporal dependence on our RTL model (the paper's declared future
// work).
type TransientResult struct {
	Benchmark string
	Points    []TransientPoint
	// PermanentPf is the stuck-at-1 Pf on the same node sample, for
	// contrast.
	PermanentPf float64
}

// ExtTransient sweeps bit-flip injection instants across the run of one
// benchmark and contrasts the resulting Pf with the permanent stuck-at-1
// Pf of the same nodes.
func ExtTransient(o Options, benchmark string) (*TransientResult, error) {
	r, err := runnerFor(o, benchmark, workloads.Config{Iterations: o.iters()})
	if err != nil {
		return nil, err
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)

	out := &TransientResult{Benchmark: benchmark}
	perm, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, 1 /* StuckAt1 */), o.Workers, nil)
	if err != nil {
		return nil, err
	}
	out.PermanentPf = fault.Pf(perm)

	// Five instants spread across the golden run.
	for _, frac := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		at := uint64(frac * float64(r.GoldenCycles))
		results, err := r.TransientCampaignContext(o.ctx(), nodes, []uint64{at}, o.Workers)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, TransientPoint{AtCycle: at, Pf: fault.Pf(results)})
	}
	return out, nil
}

// Render prints the sweep.
func (t *TransientResult) Render() string {
	tab := &report.Table{
		Title:   fmt.Sprintf("Extension: transient bit-flips on %s IU nodes (paper future work)", t.Benchmark),
		Columns: []string{"injection cycle", "Pf"},
	}
	for _, p := range t.Points {
		tab.AddRow(fmt.Sprint(p.AtCycle), report.Percent(p.Pf))
	}
	return tab.String() +
		fmt.Sprintf("permanent stuck-at-1 Pf on the same nodes: %s\n", report.Percent(t.PermanentPf))
}
