package campaign

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TransientPoint is the Pf of single-event upsets injected at one instant.
type TransientPoint struct {
	AtCycle uint64
	Pf      float64
}

// TransientResult is the exploratory extension experiment: the paper
// restricts itself to permanent faults precisely because transient-fault
// outcomes depend on the injection instant; this experiment demonstrates
// that temporal dependence on our RTL model (the paper's declared future
// work).
type TransientResult struct {
	Benchmark string
	Points    []TransientPoint
	// PermanentPf is the stuck-at-1 Pf on the same node sample, for
	// contrast.
	PermanentPf float64
}

// ExtTransient sweeps bit-flip injection instants across the run of one
// benchmark and contrasts the resulting Pf with the permanent stuck-at-1
// Pf of the same nodes.
func ExtTransient(o Options, benchmark string) (*TransientResult, error) {
	r, err := runnerFor(o, benchmark, workloads.Config{Iterations: o.iters()})
	if err != nil {
		return nil, err
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)

	out := &TransientResult{Benchmark: benchmark}
	perm, err := r.CampaignContext(o.ctx(), fault.Expand(nodes, 1 /* StuckAt1 */), o.Workers, nil)
	if err != nil {
		return nil, err
	}
	out.PermanentPf = fault.Pf(perm)

	// Five instants spread across the golden run.
	for _, frac := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		at := uint64(frac * float64(r.GoldenCycles))
		results, err := r.TransientCampaignContext(o.ctx(), nodes, []uint64{at}, o.Workers)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, TransientPoint{AtCycle: at, Pf: fault.Pf(results)})
	}
	return out, nil
}

// ModelPf is one fault model's Pf column with its Wilson interval.
type ModelPf struct {
	Model         rtl.FaultModel
	Transient     bool
	Pf            float64
	PfLow, PfHigh float64
}

// TransientBreakdownResult is the figure-style per-model breakdown: the
// Pf of every fault model — the paper's three permanent models and the
// two transient extensions — on one benchmark's shared IU node sample,
// plus the per-class aggregates.
type TransientBreakdownResult struct {
	Benchmark   string
	PulseCycles uint64
	Rows        []ModelPf
	// PermanentPf and TransientPf aggregate Pf over each model class
	// (all class experiments pooled).
	PermanentPf, TransientPf float64
}

// TransientBreakdown runs one campaign per fault model over a shared
// node sample and contrasts the permanent and transient classes.
// Transient injection instants are scheduled deterministically from the
// sampling seed, so the breakdown is reproducible. pulse is the SET
// glitch width in cycles (0 = 1).
func TransientBreakdown(o Options, benchmark string, pulse uint64) (*TransientBreakdownResult, error) {
	r, err := RunnerFor(benchmark, workloads.Config{Iterations: o.iters()}, fault.Options{
		InjectAtFraction: injectFraction,
		PulseCycles:      pulse,
		NoCheckpoint:     o.NoCheckpoint,
		NoBatch:          o.NoBatch,
	})
	if err != nil {
		return nil, err
	}
	nodes := fault.SampleNodes(r.Nodes(fault.TargetIU), o.nodes(), o.Seed)
	out := &TransientBreakdownResult{Benchmark: benchmark, PulseCycles: max(pulse, 1)}
	classDone := map[bool]int{}
	classFail := map[bool]int{}
	for _, model := range rtl.AllFaultModels() {
		exps := fault.Expand(nodes, model)
		r.ScheduleTransients(exps, o.Seed)
		results, err := r.CampaignContext(o.ctx(), exps, o.Workers, nil)
		if err != nil {
			return nil, err
		}
		lo, hi := fault.PfInterval(results, stats.Z95)
		out.Rows = append(out.Rows, ModelPf{
			Model:     model,
			Transient: model.Transient(),
			Pf:        fault.Pf(results),
			PfLow:     lo,
			PfHigh:    hi,
		})
		classDone[model.Transient()] += len(results)
		classFail[model.Transient()] += fault.Failures(results)
	}
	if n := classDone[false]; n > 0 {
		out.PermanentPf = float64(classFail[false]) / float64(n)
	}
	if n := classDone[true]; n > 0 {
		out.TransientPf = float64(classFail[true]) / float64(n)
	}
	return out, nil
}

// Render prints the per-model columns with their class contrast.
func (t *TransientBreakdownResult) Render() string {
	tab := &report.Table{
		Title: fmt.Sprintf("Extension: per-model Pf on %s IU nodes (SET pulse %d cycles)",
			t.Benchmark, t.PulseCycles),
		Columns: []string{"model", "class", "Pf", "95% CI (Wilson)"},
	}
	for _, row := range t.Rows {
		class := "permanent"
		if row.Transient {
			class = "transient"
		}
		tab.AddRow(row.Model.String(), class, report.Percent(row.Pf),
			fmt.Sprintf("%s..%s", report.Percent(row.PfLow), report.Percent(row.PfHigh)))
	}
	return tab.String() + fmt.Sprintf("class aggregate: permanent %s, transient %s\n",
		report.Percent(t.PermanentPf), report.Percent(t.TransientPf))
}

// Render prints the sweep.
func (t *TransientResult) Render() string {
	tab := &report.Table{
		Title:   fmt.Sprintf("Extension: transient bit-flips on %s IU nodes (paper future work)", t.Benchmark),
		Columns: []string{"injection cycle", "Pf"},
	}
	for _, p := range t.Points {
		tab.AddRow(fmt.Sprint(p.AtCycle), report.Percent(p.Pf))
	}
	return tab.String() +
		fmt.Sprintf("permanent stuck-at-1 Pf on the same nodes: %s\n", report.Percent(t.PermanentPf))
}
