package campaign

import "repro/internal/stats"

// Tally is the unit of campaign progress accounting shared by the shard
// layer and the job service: how many experiments have completed and how
// many of them propagated to a failure. Shard workers report tallies,
// coordinators fold them, and the folded tally drives both the streamed
// progressive Pf estimate and the adaptive early-stopping decision.
//
// Folding is exact, order-independent and loss-free: a campaign's merged
// tally is identical no matter how its experiment set was partitioned
// into shards, which is what keeps sharded and unsharded campaigns
// statistically — and, with early stopping off, bit-for-bit — equivalent.
type Tally struct {
	Done     int `json:"done"`
	Failures int `json:"failures"`
}

// Add folds another tally into t.
func (t *Tally) Add(u Tally) {
	t.Done += u.Done
	t.Failures += u.Failures
}

// Sub removes a previously folded tally from t (used when a shard's
// in-flight partial tally is replaced by its final counts). The fold is
// clamped: on the coordinator requeue path a reclaimed shard's in-flight
// partial can exceed its replacement's counts, and an unguarded
// subtraction would drive Done or Failures negative — feeding
// out-of-range inputs into the Wilson interval and the stopping rule. A
// clamped tally stays a valid (0 <= Failures <= Done) sample.
func (t *Tally) Sub(u Tally) {
	t.Done -= u.Done
	t.Failures -= u.Failures
	if t.Done < 0 {
		t.Done = 0
	}
	if t.Failures < 0 {
		t.Failures = 0
	}
	if t.Failures > t.Done {
		t.Failures = t.Done
	}
}

// Pf returns the progressive failure-probability estimate over the
// completed experiments (0 while nothing has completed).
func (t Tally) Pf() float64 {
	if t.Done == 0 {
		return 0
	}
	return float64(t.Failures) / float64(t.Done)
}

// Estimate returns the progressive Pf point estimate together with its
// Wilson interval at confidence level z. With no completed experiments
// the point estimate is 0 but the interval is the vacuous (0,1): that
// pair is what lets a progress-stream consumer distinguish "no data yet"
// from a genuine zero-failure estimate, whose interval tightens around 0
// as Done grows. Emit all three together — a bare Pf of 0 is ambiguous.
func (t Tally) Estimate(z float64) (pf, lo, hi float64) {
	lo, hi = t.Interval(z)
	return t.Pf(), lo, hi
}

// Interval returns the Wilson score confidence interval around the
// progressive Pf at confidence level z.
func (t Tally) Interval(z float64) (lo, hi float64) {
	return stats.WilsonCI(t.Failures, t.Done, z)
}

// HalfWidth returns half the Wilson interval width, the sequential
// statistic adaptive early stopping tests against its epsilon.
func (t Tally) HalfWidth(z float64) float64 {
	return stats.HalfWidth(t.Failures, t.Done, z)
}

// Converged reports whether the tally satisfies the adaptive stopping
// rule: at least one completed experiment and a Wilson half-width at or
// below epsilon. epsilon <= 0 disables the rule (campaigns run to
// completion), matching the job service's "off by default" contract.
func (t Tally) Converged(epsilon, z float64) bool {
	return epsilon > 0 && t.Done > 0 && t.HalfWidth(z) <= epsilon
}
