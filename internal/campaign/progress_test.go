package campaign

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// TestTallyFoldExact pins the merge semantics the shard layer relies on:
// folding any partition of per-experiment tallies reproduces the global
// tally exactly, independent of fold order.
func TestTallyFoldExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		outcomes := make([]bool, n) // true = failure
		want := Tally{}
		for i := range outcomes {
			outcomes[i] = rng.Intn(3) == 0
			want.Done++
			if outcomes[i] {
				want.Failures++
			}
		}
		// Random partition into contiguous shards, folded in random order.
		var shards []Tally
		for start := 0; start < n; {
			end := start + 1 + rng.Intn(n-start)
			sh := Tally{}
			for i := start; i < end; i++ {
				sh.Done++
				if outcomes[i] {
					sh.Failures++
				}
			}
			shards = append(shards, sh)
			start = end
		}
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
		got := Tally{}
		for _, sh := range shards {
			got.Add(sh)
		}
		if got != want {
			t.Fatalf("trial %d: folded %+v, want %+v", trial, got, want)
		}
	}
}

func TestTallySub(t *testing.T) {
	tl := Tally{Done: 10, Failures: 4}
	tl.Add(Tally{Done: 5, Failures: 1})
	tl.Sub(Tally{Done: 5, Failures: 1})
	if tl != (Tally{Done: 10, Failures: 4}) {
		t.Fatalf("Add/Sub not inverse: %+v", tl)
	}
}

// TestTallySubClamped pins the requeue-corruption guard: subtracting an
// in-flight partial that exceeds its replacement must clamp at a valid
// sample instead of going negative — a negative tally would feed
// out-of-range counts into the Wilson interval and the stopping rule.
func TestTallySubClamped(t *testing.T) {
	tl := Tally{Done: 3, Failures: 1}
	tl.Sub(Tally{Done: 5, Failures: 2}) // reclaimed partial larger than fold
	if tl != (Tally{}) {
		t.Fatalf("over-subtraction not clamped to zero: %+v", tl)
	}
	tl = Tally{Done: 10, Failures: 2}
	tl.Sub(Tally{Done: 0, Failures: 5})
	if tl.Failures < 0 || tl.Failures > tl.Done {
		t.Fatalf("failures outside [0, Done]: %+v", tl)
	}
	tl = Tally{Done: 10, Failures: 9}
	tl.Sub(Tally{Done: 5, Failures: 0}) // failures would exceed done
	if tl != (Tally{Done: 5, Failures: 5}) {
		t.Fatalf("failures not clamped to Done: %+v", tl)
	}
	// The clamped result always yields in-range statistics.
	for _, bad := range []Tally{{Done: 1, Failures: 1}, {Done: 100, Failures: 100}} {
		tl := Tally{}
		tl.Sub(bad)
		lo, hi := tl.Interval(stats.Z95)
		if !(lo >= 0 && lo <= hi && hi <= 1) {
			t.Fatalf("clamped tally %+v yields interval [%v,%v]", tl, lo, hi)
		}
	}
}

// TestTallyEstimateDistinguishesNoData pins the progressive-progress
// contract: a record with Done==0 reports Pf 0 with the vacuous (0,1)
// Wilson interval, while a genuine zero-failure estimate reports Pf 0
// with an interval that tightens around 0 — so NDJSON consumers can tell
// "no data yet" from "no failures observed".
func TestTallyEstimateDistinguishesNoData(t *testing.T) {
	pf, lo, hi := Tally{}.Estimate(stats.Z95)
	if pf != 0 || lo != 0 || hi != 1 {
		t.Fatalf("empty tally estimate = (%v, %v, %v), want (0, 0, 1)", pf, lo, hi)
	}
	pf, lo, hi = Tally{Done: 200}.Estimate(stats.Z95)
	if pf != 0 || lo != 0 {
		t.Fatalf("zero-failure estimate = (%v, %v, %v), want pf=lo=0", pf, lo, hi)
	}
	if hi >= 0.5 {
		t.Fatalf("200 clean experiments still report hi=%v; indistinguishable from no data", hi)
	}
	if _, _, vacuous := (Tally{}).Estimate(stats.Z95); vacuous == hi {
		t.Fatal("no-data and zero-failure estimates are indistinguishable")
	}
}

func TestTallyStats(t *testing.T) {
	tl := Tally{Done: 100, Failures: 25}
	if pf := tl.Pf(); pf != 0.25 {
		t.Errorf("Pf = %v, want 0.25", pf)
	}
	lo, hi := tl.Interval(stats.Z95)
	wlo, whi := stats.WilsonCI(25, 100, stats.Z95)
	if lo != wlo || hi != whi {
		t.Errorf("Interval = [%v, %v], want [%v, %v]", lo, hi, wlo, whi)
	}
	if hw := tl.HalfWidth(stats.Z95); hw != (whi-wlo)/2 {
		t.Errorf("HalfWidth = %v, want %v", hw, (whi-wlo)/2)
	}
	if (Tally{}).Pf() != 0 {
		t.Error("empty tally Pf != 0")
	}
}

func TestTallyConverged(t *testing.T) {
	tl := Tally{Done: 400, Failures: 100}
	hw := tl.HalfWidth(stats.Z95) // ~0.042
	if !tl.Converged(hw+0.001, stats.Z95) {
		t.Error("tally should converge at epsilon above its half-width")
	}
	if tl.Converged(hw-0.001, stats.Z95) {
		t.Error("tally converged at epsilon below its half-width")
	}
	// epsilon <= 0 disables the rule, and an empty tally never converges
	// (its vacuous interval would otherwise stop at huge epsilon).
	if tl.Converged(0, stats.Z95) {
		t.Error("epsilon 0 must disable the stop rule")
	}
	if (Tally{}).Converged(0.6, stats.Z95) {
		t.Error("empty tally must not converge")
	}
}
