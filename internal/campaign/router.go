package campaign

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file holds the hybrid router's statistical primitive and the
// memoized ISS-runner cache. The router itself lives in internal/jobs
// (it needs the request/outcome schema); the confidence signal it
// routes on is computed here, next to the Equation (1) machinery it
// descends from.

// IndicatorR2 computes the routing confidence of one node class from
// its audited (ISS-predicted failure, RTL-measured failure) indicator
// pairs: the R² of the least-squares fit of measured on predicted —
// for a simple regression, the squared Pearson correlation of the two
// indicators. It is the per-class goodness-of-fit of Equation (1)'s
// prediction applied at experiment granularity: 1 when the ISS verdict
// determines the RTL verdict on the audit sample, 0 when it carries no
// information.
//
// Degenerate samples are resolved by agreement, not by the fit: when
// either indicator has zero variance (all-failing or all-passing), R²
// is 1 if every pair agrees and 0 otherwise. A constant predictor that
// matches a constant measurement is a perfect router even though no
// line can be fitted through it; a constant predictor that misses even
// once has demonstrated nothing.
func IndicatorR2(pred, meas []bool) float64 {
	if len(pred) != len(meas) || len(pred) == 0 {
		return 0
	}
	xs := make([]float64, len(pred))
	ys := make([]float64, len(meas))
	agree := true
	for i := range pred {
		if pred[i] {
			xs[i] = 1
		}
		if meas[i] {
			ys[i] = 1
		}
		if pred[i] != meas[i] {
			agree = false
		}
	}
	if _, _, r2, err := stats.LinFit(xs, ys); err == nil {
		// LinFit reports R²=1 for a zero-variance response; that verdict
		// is only trustworthy when the predictor actually tracked it.
		if !varies(ys) {
			if agree {
				return 1
			}
			return 0
		}
		return r2
	}
	// Zero-variance predictor (or n<2): no fit exists.
	if agree {
		return 1
	}
	return 0
}

func varies(xs []float64) bool {
	for _, x := range xs {
		if x != xs[0] {
			return true
		}
	}
	return false
}

// issRunnerKey identifies a memoized ISS runner: the RTL runnerKey plus
// the timebase pinning (cycleRef, fixedCycle) — an ISS runner pinned to
// a different RTL golden length is a different engine.
type issRunnerKey struct {
	runnerKey
	cycleRef   uint64
	fixedCycle uint64
}

type issRunnerEntry struct {
	once sync.Once
	r    *fault.ISSRunner
	err  error
}

var issRunnerCache struct {
	mu    sync.Mutex
	m     map[issRunnerKey]*issRunnerEntry
	order []issRunnerKey
}

// ISSRunnerFor returns the process-wide memoized ISS campaign runner
// for a (workload, config, options, timebase) tuple, building it —
// golden emulation included — on first use. The cache mirrors
// RunnerFor's: bounded, LRU-evicted, build-concurrency-limited, and
// keyed with the observability registry stripped.
func ISSRunnerFor(name string, cfg workloads.Config, fopts fault.Options, cycleRef, fixedCycle uint64) (*fault.ISSRunner, error) {
	key := issRunnerKey{
		runnerKey:  runnerKey{name: name, cfg: cfg, opts: fopts},
		cycleRef:   cycleRef,
		fixedCycle: fixedCycle,
	}
	key.opts.Obs = nil
	issRunnerCache.mu.Lock()
	if issRunnerCache.m == nil {
		issRunnerCache.m = make(map[issRunnerKey]*issRunnerEntry)
	}
	e := issRunnerCache.m[key]
	if e == nil {
		for len(issRunnerCache.m) >= maxRunners {
			delete(issRunnerCache.m, issRunnerCache.order[0])
			issRunnerCache.order = issRunnerCache.order[1:]
		}
		e = &issRunnerEntry{}
		issRunnerCache.m[key] = e
		issRunnerCache.order = append(issRunnerCache.order, key)
	} else {
		for i, k := range issRunnerCache.order {
			if k == key {
				copy(issRunnerCache.order[i:], issRunnerCache.order[i+1:])
				issRunnerCache.order[len(issRunnerCache.order)-1] = key
				break
			}
		}
	}
	issRunnerCache.mu.Unlock()
	e.once.Do(func() {
		buildSem <- struct{}{}
		defer func() { <-buildSem }()
		w, err := workloads.Build(name, cfg)
		if err != nil {
			e.err = err
			return
		}
		e.r, e.err = fault.NewISSRunner(w.Program, fopts, cycleRef, fixedCycle)
	})
	return e.r, e.err
}
