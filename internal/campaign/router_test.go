package campaign

import (
	"math"
	"testing"
)

// Known-value regression test for the per-class fit: points generated
// exactly on Pmf = 0.1*ln(D) + 0.05 must recover slope, intercept and a
// perfect R². The intercept assertion pins the eq1.go fix — B used to
// be hardcoded to zero.
func TestFitUnitKnownValues(t *testing.T) {
	divs := []float64{math.E, math.E * math.E, math.Exp(3), math.Exp(4)}
	pmfs := make([]float64, len(divs))
	for i, d := range divs {
		pmfs[i] = 0.1*math.Log(d) + 0.05
	}
	f, err := FitUnit(divs, pmfs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-0.1) > 1e-9 {
		t.Errorf("slope = %v, want 0.1", f.A)
	}
	if math.Abs(f.B-0.05) > 1e-9 {
		t.Errorf("intercept = %v, want 0.05 (B must not be dropped)", f.B)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestFitUnitNoisyIntercept(t *testing.T) {
	// y = 0.2*ln(x) + 0.3 with alternating ±0.01 noise: the intercept
	// must land near 0.3, not at zero.
	divs := []float64{2, 4, 8, 16, 32, 64}
	pmfs := make([]float64, len(divs))
	for i, d := range divs {
		noise := 0.01
		if i%2 == 1 {
			noise = -0.01
		}
		pmfs[i] = 0.2*math.Log(d) + 0.3 + noise
	}
	f, err := FitUnit(divs, pmfs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.B-0.3) > 0.05 {
		t.Errorf("intercept = %v, want ~0.3", f.B)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", f.R2)
	}
}

func TestIndicatorR2(t *testing.T) {
	cases := []struct {
		name       string
		pred, meas []bool
		want       float64
	}{
		{"perfect agreement", []bool{true, false, true, false}, []bool{true, false, true, false}, 1},
		{"perfect anticorrelation", []bool{true, false, true, false}, []bool{false, true, false, true}, 1},
		{"no information", []bool{true, true, false, false}, []bool{true, false, true, false}, 0},
		{"constant agreeing", []bool{true, true, true}, []bool{true, true, true}, 1},
		{"constant disagreeing once", []bool{false, false, false}, []bool{false, true, false}, 0},
		{"constant predictor varying measurement", []bool{true, true, true, true}, []bool{true, false, true, true}, 0},
		{"empty", nil, nil, 0},
		{"length mismatch", []bool{true}, []bool{true, false}, 0},
		{"single agreeing pair", []bool{true}, []bool{true}, 1},
	}
	for _, c := range cases {
		if got := IndicatorR2(c.pred, c.meas); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: IndicatorR2 = %v, want %v", c.name, got, c.want)
		}
	}
	// Three-of-four agreement: R² equals the squared Pearson correlation
	// of the indicators, strictly between 0 and 1.
	r2 := IndicatorR2([]bool{true, true, false, false}, []bool{true, false, false, false})
	if r2 <= 0 || r2 >= 1 {
		t.Errorf("partial agreement R2 = %v, want in (0,1)", r2)
	}
}
