// Package difftest provides differential testing between the functional
// ISS and the RTL core: a constrained random program generator whose
// output always terminates, plus a runner that executes each program on
// both simulators and compares architectural results and the off-core
// trace. It is the fuzzing layer that backs the claim that the two models
// implement the same ISA semantics.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
)

// GenOptions constrains the random program generator.
type GenOptions struct {
	// Insts is the approximate number of generated body instructions.
	Insts int
	// Loops enables bounded counted loops.
	Loops bool
	// Memory enables loads/stores to a scratch buffer.
	Memory bool
	// Branches enables forward conditional branches (with and without
	// annul bits).
	Branches bool
	// MulDiv enables multiply/divide instructions.
	MulDiv bool
	// Windows enables save/restore pairs (bounded depth).
	Windows bool
}

// AllFeatures enables everything.
func AllFeatures(n int) GenOptions {
	return GenOptions{Insts: n, Loops: true, Memory: true, Branches: true, MulDiv: true, Windows: true}
}

// workRegs are the registers the generator mutates freely.
var workRegs = []string{"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5"}

// Generate emits a random terminating SPARC program. The same seed always
// produces the same program.
func Generate(seed int64, o GenOptions) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	reg := func() string { return workRegs[r.Intn(len(workRegs))] }
	imm := func() int { return r.Intn(8191) - 4095 }

	b.WriteString("start:\n\tset scratch, %g1\n")
	// Seed the working registers with random values.
	for _, wr := range workRegs {
		fmt.Fprintf(&b, "\tset 0x%08x, %s\n", r.Uint32(), wr)
	}

	label := 0
	var emit func(n, depth int)
	emit = func(n, depth int) {
		for i := 0; i < n; i++ {
			switch k := r.Intn(20); {
			case k < 8: // plain ALU
				ops := []string{"add", "sub", "and", "or", "xor", "andn", "orn", "xnor"}
				fmt.Fprintf(&b, "\t%s %s, %d, %s\n", ops[r.Intn(len(ops))], reg(), imm(), reg())
			case k < 10: // cc-setting ALU, register form
				ops := []string{"addcc", "subcc", "andcc", "orcc", "xorcc"}
				fmt.Fprintf(&b, "\t%s %s, %s, %s\n", ops[r.Intn(len(ops))], reg(), reg(), reg())
			case k < 12: // shifts
				ops := []string{"sll", "srl", "sra"}
				fmt.Fprintf(&b, "\t%s %s, %d, %s\n", ops[r.Intn(len(ops))], reg(), r.Intn(32), reg())
			case k < 13: // carry chain
				fmt.Fprintf(&b, "\taddcc %s, %s, %s\n", reg(), reg(), reg())
				fmt.Fprintf(&b, "\taddx %s, %d, %s\n", reg(), r.Intn(64), reg())
			case k < 15 && o.Memory: // memory round trips, incl. atomics
				off := 4 * r.Intn(32)
				switch r.Intn(4) {
				case 0:
					fmt.Fprintf(&b, "\tswap [%%g1+%d], %s\n", off, reg())
					fmt.Fprintf(&b, "\tld [%%g1+%d], %s\n", off, reg())
				case 1:
					fmt.Fprintf(&b, "\tldstub [%%g1+%d], %s\n", off, reg())
					fmt.Fprintf(&b, "\tldub [%%g1+%d], %s\n", off, reg())
				default:
					fmt.Fprintf(&b, "\tst %s, [%%g1+%d]\n", reg(), off)
					fmt.Fprintf(&b, "\tld [%%g1+%d], %s\n", off, reg())
				}
			case k < 16 && o.Memory: // sub-word accesses
				off := 4*r.Intn(32) + 2*r.Intn(2)
				fmt.Fprintf(&b, "\tsth %s, [%%g1+%d]\n", reg(), off)
				fmt.Fprintf(&b, "\tldsh [%%g1+%d], %s\n", off, reg())
			case k < 17 && o.MulDiv:
				if r.Intn(2) == 0 {
					fmt.Fprintf(&b, "\t%s %s, %s, %s\n",
						[]string{"umul", "smul"}[r.Intn(2)], reg(), reg(), reg())
				} else {
					// Guarantee a nonzero divisor and a bounded dividend.
					fmt.Fprintf(&b, "\twr %%g0, %%y\n")
					fmt.Fprintf(&b, "\tor %%g0, %d, %%l6\n", 1+r.Intn(1000))
					fmt.Fprintf(&b, "\tudiv %s, %%l6, %s\n", reg(), reg())
				}
			case k < 18 && o.Branches: // forward branch over 1-3 insts
				cond := []string{"be", "bne", "bg", "ble", "bgeu", "blu", "bpos", "bneg"}[r.Intn(8)]
				annul := ""
				if r.Intn(3) == 0 {
					annul = ",a"
				}
				skip := 1 + r.Intn(3)
				label++
				fmt.Fprintf(&b, "\tcmp %s, %s\n", reg(), reg())
				fmt.Fprintf(&b, "\t%s%s df_l%d\n", cond, annul, label)
				fmt.Fprintf(&b, "\tadd %s, 1, %s\n", reg(), reg()) // delay slot
				for j := 0; j < skip; j++ {
					fmt.Fprintf(&b, "\txor %s, %d, %s\n", reg(), imm(), reg())
				}
				fmt.Fprintf(&b, "df_l%d:\n", label)
			case k < 19 && o.Windows && depth < 4:
				fmt.Fprintf(&b, "\tsave %%sp, -96, %%sp\n")
				emit(2, depth+1)
				fmt.Fprintf(&b, "\trestore %%o0, 0, %%o0\n")
			default:
				fmt.Fprintf(&b, "\tset 0x%08x, %s\n", r.Uint32(), reg())
			}
		}
	}

	if o.Loops {
		iters := 2 + r.Intn(4)
		label++
		loopLabel := label
		fmt.Fprintf(&b, "\tset %d, %%l7\n", iters)
		fmt.Fprintf(&b, "df_loop%d:\n", loopLabel)
		emit(o.Insts/2, 0)
		fmt.Fprintf(&b, "\tsubcc %%l7, 1, %%l7\n\tbne df_loop%d\n\tnop\n", loopLabel)
		emit(o.Insts/2, 0)
	} else {
		emit(o.Insts, 0)
	}

	// Publish every working register (off-core comparison points) and
	// exit.
	b.WriteString("\tset results, %g2\n")
	for i, wr := range workRegs {
		fmt.Fprintf(&b, "\tst %s, [%%g2+%d]\n", wr, 4*i)
	}
	b.WriteString(`
	set 0x90000000, %g3
	st %g0, [%g3]
	nop
	.align 8
scratch:
	.space 256
results:
	.space 64
	.align 8
	.space 2048
stacktop:
	.word 0
`)
	src := b.String()
	// The generator body may reference the stack: point %sp at it first.
	return strings.Replace(src, "start:\n", "start:\n\tset stacktop, %sp\n", 1)
}

// Mismatch describes a divergence between the two simulators.
type Mismatch struct {
	Seed   int64
	Detail string
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("difftest: seed %d: %s", m.Seed, m.Detail)
}

// Run generates the seeded program and executes it on both simulators,
// returning a Mismatch error if they disagree.
func Run(seed int64, o GenOptions) error {
	src := Generate(seed, o)
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		return &Mismatch{seed, "assemble: " + err.Error()}
	}

	mi := mem.NewMemory()
	mi.LoadImage(p.Origin, p.Image)
	cpu := iss.New(mem.NewBus(mi), p.Entry)
	stI := cpu.Run(2_000_000)

	mr := mem.NewMemory()
	mr.LoadImage(p.Origin, p.Image)
	core := leon3.New(mem.NewBus(mr), p.Entry)
	stR := core.Run(40_000_000)

	if stI != stR {
		return &Mismatch{seed, fmt.Sprintf("status ISS=%v RTL=%v", stI, stR)}
	}
	if stI != iss.StatusExited {
		// Both refused identically (e.g. generated a trap); acceptable,
		// but traces must still agree up to the halt.
		if d := core.Bus.Trace.Divergence(&cpu.Bus.Trace); d != -1 {
			return &Mismatch{seed, fmt.Sprintf("non-exit divergence at write %d", d)}
		}
		return nil
	}
	if d := core.Bus.Trace.Divergence(&cpu.Bus.Trace); d != -1 {
		var gi, gr mem.Access
		if d < len(cpu.Bus.Trace.Writes) {
			gi = cpu.Bus.Trace.Writes[d]
		}
		if d < len(core.Bus.Trace.Writes) {
			gr = core.Bus.Trace.Writes[d]
		}
		return &Mismatch{seed, fmt.Sprintf("write %d: ISS %v RTL %v", d, gi, gr)}
	}
	if cpu.Icount != core.Icount {
		return &Mismatch{seed, fmt.Sprintf("icount ISS=%d RTL=%d", cpu.Icount, core.Icount)}
	}
	for r := 1; r < 32; r++ {
		if cpu.Reg(r) != core.Reg(r) {
			return &Mismatch{seed, fmt.Sprintf("reg %d ISS=%#x RTL=%#x", r, cpu.Reg(r), core.Reg(r))}
		}
	}
	return nil
}
