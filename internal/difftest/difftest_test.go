package difftest

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, AllFeatures(30))
	b := Generate(42, AllFeatures(30))
	if a != b {
		t.Fatal("same seed generated different programs")
	}
	c := Generate(43, AllFeatures(30))
	if a == c {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestGenerateRespectsFeatureGates(t *testing.T) {
	src := Generate(7, GenOptions{Insts: 60})
	for _, forbidden := range []string{"umul", "udiv", "save %sp", "\tld ", "\tbne df_loop"} {
		if strings.Contains(src, forbidden) {
			t.Errorf("feature-gated construct %q leaked into minimal program", forbidden)
		}
	}
	full := Generate(7, AllFeatures(200))
	for _, expected := range []string{"df_loop", "st "} {
		if !strings.Contains(full, expected) {
			t.Errorf("full-feature program lacks %q", expected)
		}
	}
}

// TestDifferentialALU fuzzes the arithmetic subset.
func TestDifferentialALU(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		if err := Run(seed, GenOptions{Insts: 60}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialMemory adds loads and stores.
func TestDifferentialMemory(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		if err := Run(seed, GenOptions{Insts: 60, Memory: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialBranches adds forward branches with annul bits.
func TestDifferentialBranches(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		if err := Run(seed, GenOptions{Insts: 60, Branches: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialMulDiv adds the iterative unit.
func TestDifferentialMulDiv(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		if err := Run(seed, GenOptions{Insts: 60, MulDiv: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialWindows adds save/restore nesting.
func TestDifferentialWindows(t *testing.T) {
	for seed := int64(400); seed < 440; seed++ {
		if err := Run(seed, GenOptions{Insts: 60, Windows: true}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialEverything fuzzes the full feature set with loops.
func TestDifferentialEverything(t *testing.T) {
	for seed := int64(1000); seed < 1120; seed++ {
		if err := Run(seed, AllFeatures(80)); err != nil {
			t.Fatal(err)
		}
	}
}
