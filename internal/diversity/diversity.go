// Package diversity implements the paper's contribution: the
// instruction-diversity metric computed from ISS traces, the per-unit
// variant Dm, RTL-derived area weights, and the weighted failure
// probability model of Equation (1):
//
//	Pf = sum_m alpha_m * Pmf
//
// where alpha_m is the fraction of the microcontroller's injectable RTL
// nodes (a proxy for area) in functional unit m.
package diversity

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sparc"
)

func logf(x float64) float64 { return math.Log(x) }

// Profile characterizes a workload the way Table 1 does.
type Profile struct {
	Name          string
	TotalInsts    uint64
	IUInsts       uint64 // instructions flowing through the integer unit
	MemoryInsts   uint64
	Diversity     int
	UnitDiversity [sparc.NumUnits]int
	ExecutedOps   []sparc.Op
}

// Measure runs the program on the functional ISS and extracts its profile.
// This is the cheap, early-design-stage measurement the paper advocates.
func Measure(name string, p *asm.Program, maxInsts uint64) (Profile, error) {
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	cpu := iss.New(mem.NewBus(m), p.Entry)
	if st := cpu.Run(maxInsts); st != iss.StatusExited {
		return Profile{}, fmt.Errorf("diversity: %s did not exit: %v", name, st)
	}
	prof := Profile{
		Name:          name,
		TotalInsts:    cpu.Icount,
		IUInsts:       cpu.Icount, // every instruction uses the IU pipeline
		MemoryInsts:   cpu.MemoryInstCount(),
		Diversity:     cpu.Diversity(),
		UnitDiversity: cpu.UnitDiversity(),
	}
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		if cpu.OpCounts[op] > 0 {
			prof.ExecutedOps = append(prof.ExecutedOps, op)
		}
	}
	return prof, nil
}

// AreaWeights computes alpha_m: the fraction of injectable RTL nodes per
// functional unit, normalized over the given units. nodeCounts maps each
// unit to its node count (obtained from the RTL model's enumeration).
func AreaWeights(nodeCounts map[sparc.Unit]int) map[sparc.Unit]float64 {
	total := 0
	for _, n := range nodeCounts {
		total += n
	}
	out := make(map[sparc.Unit]float64, len(nodeCounts))
	if total == 0 {
		return out
	}
	for u, n := range nodeCounts {
		out[u] = float64(n) / float64(total)
	}
	return out
}

// UnitPf is a per-unit failure probability estimate Pmf.
type UnitPf map[sparc.Unit]float64

// CombinePf evaluates Equation (1): the area-weighted sum of per-unit
// failure probabilities.
func CombinePf(weights map[sparc.Unit]float64, pmf UnitPf) float64 {
	s := 0.0
	for u, a := range weights {
		s += a * pmf[u]
	}
	return s
}

// PredictPmf maps per-unit diversity to a per-unit failure probability via
// a fitted log model (a, b): Pmf = a*ln(Dm)+b, clamped to [0, 1]. Units
// with zero diversity predict zero.
func PredictPmf(unitDiv [sparc.NumUnits]int, a, b float64) UnitPf {
	out := UnitPf{}
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		d := unitDiv[u]
		if d <= 0 {
			out[u] = 0
			continue
		}
		p := a*logf(float64(d)) + b
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		out[u] = p
	}
	return out
}
