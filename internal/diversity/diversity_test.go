package diversity

import (
	"math"
	"testing"

	"repro/internal/sparc"
	"repro/internal/workloads"
)

func TestMeasureProfiles(t *testing.T) {
	w, err := workloads.Get("ttsprk")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Measure("ttsprk", w.Program, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Name != "ttsprk" || prof.TotalInsts == 0 {
		t.Fatalf("profile %+v", prof)
	}
	if prof.IUInsts != prof.TotalInsts {
		t.Error("all instructions flow through the IU")
	}
	if prof.MemoryInsts == 0 || prof.MemoryInsts >= prof.TotalInsts {
		t.Errorf("memory insts %d of %d", prof.MemoryInsts, prof.TotalInsts)
	}
	if len(prof.ExecutedOps) != prof.Diversity {
		t.Errorf("executed op list %d vs diversity %d", len(prof.ExecutedOps), prof.Diversity)
	}
	// Unit diversity invariants: fetch/decode/regfile see every type; no
	// unit can see more types than the total.
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		if prof.UnitDiversity[u] > prof.Diversity {
			t.Errorf("unit %v diversity %d exceeds total %d", u, prof.UnitDiversity[u], prof.Diversity)
		}
	}
	if prof.UnitDiversity[sparc.UnitDecode] != prof.Diversity {
		t.Error("decode unit must see every executed type")
	}
}

func TestMeasureErrorsOnNonExit(t *testing.T) {
	w, err := workloads.Get("rspeed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure("rspeed", w.Program, 10); err == nil {
		t.Error("tiny budget must error")
	}
}

func TestAreaWeights(t *testing.T) {
	w := AreaWeights(map[sparc.Unit]int{sparc.UnitALU: 300, sparc.UnitShifter: 100})
	if math.Abs(w[sparc.UnitALU]-0.75) > 1e-12 || math.Abs(w[sparc.UnitShifter]-0.25) > 1e-12 {
		t.Errorf("weights %v", w)
	}
	if len(AreaWeights(nil)) != 0 {
		t.Error("empty input must produce empty weights")
	}
}

func TestCombinePfEquation1(t *testing.T) {
	weights := map[sparc.Unit]float64{sparc.UnitALU: 0.6, sparc.UnitLSU: 0.4}
	pmf := UnitPf{sparc.UnitALU: 0.5, sparc.UnitLSU: 0.25}
	got := CombinePf(weights, pmf)
	if math.Abs(got-(0.6*0.5+0.4*0.25)) > 1e-12 {
		t.Errorf("Pf = %v", got)
	}
}

func TestPredictPmfClampsAndZeroes(t *testing.T) {
	var ud [sparc.NumUnits]int
	ud[sparc.UnitALU] = 40
	ud[sparc.UnitShifter] = 0
	ud[sparc.UnitMulDiv] = 1
	// Steep positive model forces clamping at 1 for high diversity; a
	// negative intercept clamps low-diversity units at 0.
	pmf := PredictPmf(ud, 0.5, -0.1)
	if pmf[sparc.UnitShifter] != 0 {
		t.Error("unused unit must predict 0")
	}
	if pmf[sparc.UnitALU] != 1 {
		t.Errorf("high diversity should clamp to 1, got %v", pmf[sparc.UnitALU])
	}
	if pmf[sparc.UnitMulDiv] != 0 {
		t.Errorf("ln(1)=0 with negative intercept should clamp to 0, got %v", pmf[sparc.UnitMulDiv])
	}
}

func TestPredictPmfMonotone(t *testing.T) {
	var lo, hi [sparc.NumUnits]int
	for u := range lo {
		lo[u] = 5
		hi[u] = 40
	}
	a, b := 0.08, -0.02
	pl := PredictPmf(lo, a, b)
	ph := PredictPmf(hi, a, b)
	for u := sparc.Unit(0); u < sparc.NumUnits; u++ {
		if ph[u] < pl[u] {
			t.Errorf("unit %v: prediction not monotone", u)
		}
	}
}
