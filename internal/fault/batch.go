package fault

import (
	"time"

	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/rtl"
)

// This file implements the bit-parallel (PPSFP) campaign engine: one
// witnessed golden pass resolves up to 64 fault universes ("lanes") at
// once, and only the lanes whose fault is actually read with a differing
// value ever pay for a scalar simulation.
//
// Classic PPSFP packs one gate-level net's value across 64 test patterns
// into a machine word. That transplant is impossible for a word-level
// cycle-based RTL model — a 32-bit adder cannot be evaluated 64-ways
// bitwise — so the bit-parallel dimension here is the *activation
// predicate* instead. Fault forcing in the rtl kernel is strictly
// read-side: an armed fault never mutates raw slab state, it only edits
// the value consumers observe. A faulted universe whose raw state still
// equals the golden run's therefore diverges exactly at the first cycle
// where some process reads the faulted net and the forced bit differs
// from the clean bit. During one shared golden continuation pass, a
// rtl.Witness accumulates per-net read observations (Ones/Zeros masks);
// whether any of a batch's lanes activates at a cycle is then one AND
// per lane against its net's accumulator — all 64 bit positions of a net
// checked at once, which is where the 64-way parallelism lives.
//
// Lanes that never activate are finalized from the golden trajectory
// without simulating a single faulted cycle. Activated lanes fork a
// scalar continuation from the golden state at their first activation
// cycle (materialized from periodic pass snapshots, bounded replay) and
// run the exact scalar engine loop from there — which is why a batched
// campaign is byte-identical to a scalar one (TestEngineEquivalence
// checks this for every fault model). A forked lane that heals — its
// committed state re-equals a golden snapshot and its off-core write
// position matches — is dropped back onto the golden trajectory, or
// teleported forward to its next activation cycle.

// batchSnapInterval is the spacing of the periodic golden-state
// snapshots taken during a batch pass. It bounds lane materialization
// (at most this many replayed clean cycles) and sets the granularity of
// the reconvergence drop check.
const batchSnapInterval = 128

// maxBatchLanes is the lane capacity of one batch: the accumulator words
// do not limit it (each lane checks one bit of its own net), but 64
// keeps batch bookkeeping, pass snapshot lifetime and stop-rule
// granularity bounded, and matches the PPSFP word width the design is
// named for.
const maxBatchLanes = 64

// planItem is one dispatch granule of a campaign: a single scalar
// experiment (lanes nil) or a batch of experiment indices.
type planItem struct {
	idx   int
	lanes []int
}

// planBatches partitions a campaign's experiments into dispatch
// granules. Experiments are batchable when the checkpointed engine is on
// and the experiment is a forcing the witnessed pass can reason about:
// the permanent models and SETPulse. BitFlip mutates raw state (its
// effect can propagate through raw register copies without ever being
// "read", so read-witness gating would be unsound), transients sampled
// before the checkpoint cannot fork from it, and invalid nodes must
// reproduce the scalar engine's inject-error result — all of those run
// scalar. Batches are filled in input order; result content is
// independent of the partition, so the plan shape is free to change
// without affecting campaign or shard determinism.
func (r *Runner) planBatches(exps []Experiment) []planItem {
	lanes := r.opts.BatchLanes
	if lanes <= 0 || lanes > maxBatchLanes {
		lanes = maxBatchLanes
	}
	plan := make([]planItem, 0, len(exps))
	if r.opts.NoBatch || !r.Checkpointed() {
		for i := range exps {
			plan = append(plan, planItem{idx: i})
		}
		return plan
	}
	eng := r.getEngine()
	defer r.engines.Put(eng)
	k := eng.core.K

	var cur []int
	flush := func() {
		if len(cur) > 0 {
			r.met.lanesPlanned.Add(float64(len(cur)))
			plan = append(plan, planItem{idx: -1, lanes: cur})
			cur = nil
		}
	}
	for i, e := range exps {
		batchable := e.Model != rtl.BitFlip &&
			!(e.Model.Transient() && e.AtCycle < r.opts.InjectAtCycle) &&
			k.NodeValid(e.Node.Node)
		if !batchable {
			plan = append(plan, planItem{idx: i})
			continue
		}
		cur = append(cur, i)
		if len(cur) == lanes {
			flush()
		}
	}
	flush()
	return plan
}

// lane is one fault universe of a batch.
type lane struct {
	e        Experiment
	f        rtl.Fault
	net      int    // witness net index
	bit      uint64 // 1 << Node.Bit
	injectAt uint64
	pulseEnd uint64 // SETPulse window end; 0 for permanent models
	// forcedOne is the armed polarity of the faulted bit. For the
	// charge-sampling models it is derived from sampled, the net's raw
	// word at the injection instant.
	forcedOne bool
	sampled   uint64
	pending   bool // SETPulse lane whose instant the pass has not reached
	// activateAt is the first golden cycle at which a consumer read the
	// faulted net with a differing bit; active is false if that never
	// happened.
	active     bool
	activateAt uint64
}

// activatesOn reports whether a golden-pass observation of the lane's
// net activates the lane: some consumer read the faulted bit with the
// polarity the forcing would invert.
func (l *lane) activatesOn(a rtl.WitnessAcc) bool {
	if l.forcedOne {
		return a.Zeros&l.bit != 0
	}
	return a.Ones&l.bit != 0
}

// inWindow reports whether the lane's forcing is armed at golden cycle
// t. Permanent lanes are armed from the injection instant onward;
// SETPulse lanes only within their pulse window.
func (l *lane) inWindow(t uint64) bool {
	if t < l.injectAt || l.pending {
		return false
	}
	return l.pulseEnd == 0 || t < l.pulseEnd
}

// passSnap is one periodic golden-state snapshot of a batch pass.
type passSnap struct {
	cycle  uint64
	core   *leon3.Snapshot
	img    *mem.Image
	writes int
}

// runBatch executes one batch: a single witnessed golden continuation
// pass over all lanes, then per-lane resolution. The returned results
// are positionally parallel to idxs and byte-identical to what RunOne
// would produce for each experiment.
func (r *Runner) runBatch(exps []Experiment, idxs []int) []Result {
	ck := r.checkpoint()
	var core *leon3.Core
	if r.opts.NoPool {
		core, _ = r.freshCore()
	} else {
		eng := r.getEngine()
		defer r.engines.Put(eng)
		core = eng.core
	}

	bus := mem.NewBus(ck.img.Fork())
	core.Bus = bus
	if err := core.Restore(ck.core); err != nil {
		return r.runScalarFallback(exps, idxs)
	}
	bus.Trace.Exited, bus.Trace.ExitCode = ck.exited, ck.exitCode
	start := core.Cycles()

	// Build the lane set and the deduplicated witness net list (two
	// lanes may fault different bits, or different models, of one net).
	lanes := make([]*lane, len(idxs))
	netIdx := map[rtl.WitnessNet]int{}
	var nets []rtl.WitnessNet
	pendingSamples := 0
	for j, i := range idxs {
		e := exps[i]
		n := rtl.WitnessNet{Name: e.Node.Node.Name, Word: e.Node.Node.Word}
		ni, ok := netIdx[n]
		if !ok {
			ni = len(nets)
			netIdx[n] = ni
			nets = append(nets, n)
		}
		l := &lane{
			e:        e,
			f:        rtl.Fault{Node: e.Node.Node, Model: e.Model},
			net:      ni,
			bit:      uint64(1) << e.Node.Node.Bit,
			injectAt: r.armAt(e),
		}
		if e.Model == rtl.SETPulse {
			l.pulseEnd = l.injectAt + r.opts.PulseCycles
			l.pending = true
			pendingSamples++
		}
		lanes[j] = l
	}
	w, err := core.K.StartWitness(nets)
	if err != nil {
		return r.runScalarFallback(exps, idxs)
	}

	// Arm the permanent lanes' polarities; the charge-sampling models
	// read the net's raw word at the injection instant, which for
	// permanents is the pass start (exactly the value a scalar Inject at
	// that boundary would sample).
	for _, l := range lanes {
		switch l.e.Model {
		case rtl.StuckAt1:
			l.forcedOne = true
		case rtl.StuckAt0:
			l.forcedOne = false
		case rtl.OpenLine:
			l.sampled = w.Sample(l.net)
			l.forcedOne = l.sampled&l.bit != 0
		}
	}

	// The witnessed golden pass: one clean continuation from the
	// checkpoint to program exit, recording per-cycle read observations
	// for every lane net, sampling SETPulse instants as they are
	// reached, and freezing periodic snapshots for lane materialization
	// and the reconvergence drop check.
	nNets := len(nets)
	wave := make([]rtl.WitnessAcc, 0, nNets*int(r.GoldenCycles-start+1))
	var snaps []passSnap
	acc := w.Accs()
	unresolved := len(lanes)
	var passStart time.Time
	if r.met.live {
		// Behind the live flag: an unregistered engine never reads the
		// clock, and the value only feeds the golden-pass rate metric.
		passStart = time.Now() //lint:allow det live-guarded golden-pass metric
	}
	for core.Status() == iss.StatusRunning {
		t := core.Cycles()
		if (t-start)%batchSnapInterval == 0 {
			snaps = append(snaps, passSnap{
				cycle: t,
				core:  core.Snapshot(),
				img:   bus.Mem.Snapshot(),
				// The forked bus's trace holds only post-checkpoint writes;
				// comparators index the absolute golden stream.
				writes: ck.writes + len(bus.Trace.Writes),
			})
		}
		if pendingSamples > 0 {
			for _, l := range lanes {
				if l.pending && l.injectAt == t {
					l.sampled = w.Sample(l.net)
					// A SET glitch drives the complement of the charge.
					l.forcedOne = l.sampled&l.bit == 0
					l.pending = false
					pendingSamples--
				}
			}
		}
		core.StepCycle()
		wave = append(wave, acc...)
		if unresolved > 0 {
			for _, l := range lanes {
				if !l.active && l.inWindow(t) && l.activatesOn(acc[l.net]) {
					l.active, l.activateAt = true, t
					unresolved--
				}
			}
		}
		for i := range acc {
			acc[i] = rtl.WitnessAcc{}
		}
	}
	w.Stop()
	goldenEnd := core.Cycles()
	if r.met.live {
		r.met.goldenSeconds.Add(time.Since(passStart).Seconds()) //lint:allow det live-guarded golden-pass metric
		r.met.goldenCycles.Add(float64(goldenEnd - start))
	}

	// Lane resolution. Never-activated lanes tracked the golden
	// trajectory bit-for-bit to program exit: no consumer ever read
	// their faulted bit with a differing value, so the scalar run would
	// have produced the golden trace and length exactly.
	results := make([]Result, len(lanes))
	for j, l := range lanes {
		res := Result{
			Fault:    l.f,
			Unit:     l.e.Node.Unit,
			Latency:  -1,
			InjectAt: l.injectAt,
		}
		if !l.active {
			r.met.lanesFree.Inc()
			res.Outcome = OutcomeNoEffect
			res.Cycles = goldenEnd
		} else {
			r.met.lanesActivated.Inc()
			r.runLane(core, ck, l, &res, snaps, wave, nNets, start, goldenEnd)
		}
		results[j] = res
	}
	return results
}

// runScalarFallback resolves a batch through the scalar engine — the
// defensive path for a pass setup failure, which never happens with a
// same-program core and plan-validated nodes.
func (r *Runner) runScalarFallback(exps []Experiment, idxs []int) []Result {
	r.met.fallbacks.Add(float64(len(idxs)))
	out := make([]Result, len(idxs))
	for j, i := range idxs {
		out[j] = r.RunOne(exps[i])
	}
	return out
}

// materialize positions core (with a fresh bus and comparator) on the
// golden trajectory at cycle t: restore the nearest periodic snapshot at
// or before t, then replay clean cycles — at most batchSnapInterval of
// them. The comparator comes out exactly as a scalar run's would at t:
// no mismatch, write index at the golden position.
func (r *Runner) materialize(core *leon3.Core, ck *checkpoint, snaps []passSnap, start, t uint64) (*mem.Bus, *comparator) {
	r.met.snapshots.Inc()
	s := snaps[int((t-start)/batchSnapInterval)]
	bus := mem.NewBus(s.img.Fork())
	core.Bus = bus
	// Restore never fails here: the snapshot came from a same-program
	// core a few calls up the stack.
	core.Restore(s.core) //nolint:errcheck
	bus.Trace.Exited, bus.Trace.ExitCode = ck.exited, ck.exitCode
	c := r.watch(bus, core, s.writes)
	for core.Cycles() < t && core.Status() == iss.StatusRunning {
		core.StepCycle()
	}
	return bus, c
}

// nextActivation scans the recorded golden pass for the first cycle at
// or after from where the lane's activation predicate holds, or -1 if
// its fault is never again read with a differing bit.
func (l *lane) nextActivation(wave []rtl.WitnessAcc, nNets int, start, from, goldenEnd uint64) int64 {
	end := goldenEnd
	if l.pulseEnd != 0 && l.pulseEnd < end {
		end = l.pulseEnd
	}
	if from < l.injectAt {
		from = l.injectAt
	}
	for t := from; t < end; t++ {
		if l.activatesOn(wave[int(t-start)*nNets+l.net]) {
			return int64(t)
		}
	}
	return -1
}

// arm applies the lane's fault to a core positioned at or after the
// injection instant, reproducing exactly the forcing a scalar Inject at
// the original instant armed: the charge-sampling models take their
// frozen value from the lane's recorded sample, not the present state.
func (l *lane) arm(core *leon3.Core) error {
	switch l.e.Model {
	case rtl.OpenLine, rtl.SETPulse:
		return core.K.InjectForced(l.f, l.sampled)
	default:
		return core.K.Inject(l.f)
	}
}

// runLane resolves one activated lane: fork the golden state at the
// first activation cycle, arm the fault, and run the scalar engine loop
// from there. At periodic snapshot boundaries a diverged-but-healed lane
// (committed state re-equals the golden snapshot, off-core write
// position matches — which together imply identical memory, since every
// off-core write flowed through the matching comparator) is dropped back
// onto the golden trajectory: finalized as no-effect if its fault is
// never read divergently again, teleported to the next activation cycle
// if that is far away, or simply left running if it is near.
func (r *Runner) runLane(core *leon3.Core, ck *checkpoint, l *lane, res *Result, snaps []passSnap, wave []rtl.WitnessAcc, nNets int, start, goldenEnd uint64) {
	bus, c := r.materialize(core, ck, snaps, start, l.activateAt)
	if err := l.arm(core); err != nil {
		// Unreachable for plan-validated nodes; mirrors the scalar
		// engine's inject-error result for robustness.
		res.Outcome = OutcomeNoEffect
		return
	}
	if l.e.Model == rtl.SETPulse {
		for core.Cycles() < l.pulseEnd && core.Status() == iss.StatusRunning &&
			core.Cycles() < r.budget && (r.opts.NoEarlyExit || c.mismatchAt < 0) {
			core.StepCycle()
		}
		core.K.ClearFaults()
	}
	for core.Status() == iss.StatusRunning && core.Cycles() < r.budget &&
		(r.opts.NoEarlyExit || c.mismatchAt < 0) {
		core.StepCycle()
		t := core.Cycles()
		if c.mismatchAt >= 0 || (t-start)%batchSnapInterval != 0 {
			continue
		}
		si := int((t - start) / batchSnapInterval)
		if si >= len(snaps) || snaps[si].cycle != t {
			continue // past the last golden snapshot (budget overrun region)
		}
		if c.idx != snaps[si].writes || !core.StateEquals(snaps[si].core) {
			continue
		}
		// Healed: this universe is bit-identical to the golden run again.
		next := l.nextActivation(wave, nNets, start, t, goldenEnd)
		if next < 0 {
			res.Outcome = OutcomeNoEffect
			res.Cycles = goldenEnd
			return
		}
		if uint64(next)-t > 2*batchSnapInterval {
			// Teleport across the quiet stretch: re-fork at the next
			// activation cycle instead of simulating golden cycles.
			bus, c = r.materialize(core, ck, snaps, start, uint64(next))
			if err := l.arm(core); err != nil {
				res.Outcome = OutcomeNoEffect
				return
			}
		}
	}
	r.classify(res, core, bus, c, l.injectAt)
}
