package fault

import (
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
)

// This file implements the checkpointed campaign engine. The paper's cost
// argument (§4.2) is that RTL fault injection is orders of magnitude more
// expensive than ISS simulation; a large share of that cost used to be
// pure redundancy here, because every experiment re-simulated the
// fault-free warm-up from reset to the injection instant. Instead, the
// golden prefix is now simulated exactly once: its full state — every RTL
// signal and memory array, the architectural counters, the memory image
// and the off-core trace position — is frozen in a checkpoint, and each
// experiment forks a bit-identical continuation from it. Memory forks are
// copy-on-write, so thousands of concurrent experiments share one frozen
// page set.

// checkpoint is the forkable golden-run state at the injection instant.
type checkpoint struct {
	core *leon3.Snapshot
	img  *mem.Image
	// Off-core trace position of the golden prefix: the number of writes
	// already emitted and the exit-device state, restored onto every
	// forked bus so end-of-run classification sees the full run.
	writes   int
	exited   bool
	exitCode uint32
}

// Checkpointed reports whether experiments fork from the golden-run
// checkpoint instead of re-simulating from reset. It is a pure status
// query; the checkpoint itself is captured lazily by the first experiment
// (or explicitly by PrepareCheckpoint).
func (r *Runner) Checkpointed() bool {
	return !r.opts.NoCheckpoint && r.opts.InjectAtCycle != 0
}

// PrepareCheckpoint captures the golden-run checkpoint eagerly (a no-op
// when the engine is off or the checkpoint is already taken). Benchmarks
// call it to keep the one-time warm-up simulation out of timed regions.
func (r *Runner) PrepareCheckpoint() { r.checkpoint() }

// checkpoint returns the lazily-captured golden-run checkpoint, or nil
// when the engine is disabled or injection happens at reset (where there
// is no prefix to save).
func (r *Runner) checkpoint() *checkpoint {
	if !r.Checkpointed() {
		return nil
	}
	r.ckptOnce.Do(func() { r.ckpt = r.capture() })
	return r.ckpt
}

// capture re-runs the clean core once up to the injection instant and
// freezes every layer of its state. This is the only time the warm-up
// prefix is simulated, no matter how many experiments the campaign runs.
func (r *Runner) capture() *checkpoint {
	core, bus := r.freshCore()
	for core.Cycles() < r.opts.InjectAtCycle && core.Status() == iss.StatusRunning {
		core.StepCycle()
	}
	return &checkpoint{
		core:     core.Snapshot(),
		img:      bus.Mem.Snapshot(),
		writes:   len(bus.Trace.Writes),
		exited:   bus.Trace.Exited,
		exitCode: bus.Trace.ExitCode,
	}
}

// runForked executes one experiment forked from the checkpoint on the
// given core — a pooled worker core or (under Options.NoPool) a freshly
// built one — whose bus must already sit on a copy-on-write fork of the
// checkpoint image. The core is restored in place to the snapshotted
// state, the fault is armed, and the run continues under the usual
// comparator. The false return (snapshot/core structure mismatch) never
// happens with a same-program core and makes RunOne fall back to the
// from-reset path.
func (r *Runner) runForked(core *leon3.Core, bus *mem.Bus, ck *checkpoint, e Experiment) (Result, bool) {
	if err := core.Restore(ck.core); err != nil {
		return Result{}, false
	}
	bus.Trace.Exited, bus.Trace.ExitCode = ck.exited, ck.exitCode
	c := r.watch(bus, core, ck.writes)
	return r.finish(core, bus, c, e), true
}
