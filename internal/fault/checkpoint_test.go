package fault

import (
	"fmt"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestCheckpointFidelity is the engine's correctness contract: forking
// every experiment from the golden-run checkpoint must produce exactly the
// same outcome sequence, latencies, run lengths and Pf as re-simulating
// each experiment from reset — across both injection targets and all three
// permanent fault models.
func TestCheckpointFidelity(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []Target{TargetIU, TargetCMEM} {
		for _, model := range rtl.FaultModels() {
			t.Run(fmt.Sprintf("%v-%v", target, model), func(t *testing.T) {
				forked, err := NewRunner(w.Program, Options{InjectAtFraction: 0.4})
				if err != nil {
					t.Fatal(err)
				}
				reset, err := NewRunner(w.Program, Options{InjectAtFraction: 0.4, NoCheckpoint: true})
				if err != nil {
					t.Fatal(err)
				}
				if !forked.Checkpointed() {
					t.Fatal("checkpoint engine inactive on default options")
				}
				if reset.Checkpointed() {
					t.Fatal("NoCheckpoint runner still checkpointed")
				}

				nodes := SampleNodes(forked.Nodes(target), 10, 3)
				exps := Expand(nodes, model)
				a := forked.Campaign(exps, 4)
				b := reset.Campaign(exps, 4)
				for i := range exps {
					if a[i] != b[i] {
						t.Errorf("experiment %v: forked %+v, from-reset %+v", exps[i], a[i], b[i])
					}
				}
				if pa, pb := Pf(a), Pf(b); pa != pb {
					t.Errorf("Pf: forked %v, from-reset %v", pa, pb)
				}
			})
		}
	}
}

// TestCheckpointInjectAtResetFallsBack: with injection at cycle 0 there is
// no golden prefix to save, so the engine stays off and results still
// match the from-reset semantics trivially.
func TestCheckpointInjectAtResetFallsBack(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpointed() {
		t.Fatal("checkpointed with InjectAtCycle 0")
	}
}

// TestInjectAtFractionRange: fractions outside [0,1) would silently place
// the injection instant at or past the golden run's end, so NewRunner
// rejects them.
func TestInjectAtFractionRange(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{-0.1, 1, 1.5, 50} {
		if _, err := NewRunner(w.Program, Options{InjectAtFraction: frac}); err == nil {
			t.Errorf("InjectAtFraction %v accepted", frac)
		}
	}
}

// TestCheckpointLateInjection exercises the boundary where the injection
// instant lies beyond the golden run's end: both engines must classify
// every fault as no-effect (the program already finished cleanly).
func TestCheckpointLateInjection(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := NewRunner(w.Program, Options{NoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	late := probe.GoldenCycles + 1000
	forked, err := NewRunner(w.Program, Options{InjectAtCycle: late})
	if err != nil {
		t.Fatal(err)
	}
	reset, err := NewRunner(w.Program, Options{InjectAtCycle: late, NoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	e := Experiment{
		Node:  NodeInfo{Node: rtl.Node{Name: "iu.ex.result", Bit: 20}},
		Model: rtl.StuckAt1,
	}
	a := forked.RunOne(e)
	b := reset.RunOne(e)
	if a != b {
		t.Fatalf("late injection: forked %+v, from-reset %+v", a, b)
	}
	if a.Outcome != OutcomeNoEffect {
		t.Fatalf("late injection propagated: %v", a.Outcome)
	}
}
