package fault

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestCampaignContextCancel pins the cancellation contract: cancelling
// mid-campaign stops the worker loops within one dispatch granule —
// already-completed experiments keep their results, the remainder never
// run — and the partial results come back with ctx.Err(). Batching is
// disabled so the granule is a single experiment; the batched granule
// is pinned by TestCampaignStopContext.
func TestCampaignContextCancel(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.3, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	exps := Expand(r.Nodes(TargetIU), rtl.FaultModels()...)
	if len(exps) < 32 {
		t.Fatalf("want a large experiment set, got %d", len(exps))
	}

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	results, err := r.CampaignContext(ctx, exps, 2, func(i int, res Result) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(exps) {
		t.Fatalf("results length %d != %d", len(results), len(exps))
	}
	completed := int(ran.Load())
	if completed >= len(exps) {
		t.Fatalf("campaign ran to completion (%d experiments) despite cancellation", completed)
	}
	// Workers finish at most the experiment they were on: with 2 workers
	// and cancellation after the 3rd completion, only a handful complete.
	if completed > 8 {
		t.Errorf("%d experiments completed after cancel; want within one granule per worker", completed)
	}
}

// TestCampaignContextComplete checks the ctx path is a no-op for
// uncancelled campaigns: identical results to Campaign, nil error, and
// the tap sees every experiment exactly once.
func TestCampaignContextComplete(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	exps := Expand(SampleNodes(r.Nodes(TargetIU), 6, 3), rtl.StuckAt1)
	var taps atomic.Int64
	got, err := r.CampaignContext(context.Background(), exps, 3, func(i int, res Result) {
		taps.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(taps.Load()) != len(exps) {
		t.Errorf("tap saw %d completions, want %d", taps.Load(), len(exps))
	}
	want := r.Campaign(exps, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("experiment %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestCampaignStopContext pins the stop-rule contract behind adaptive
// early stopping: the rule sees monotonically growing completion counts,
// halting via it is a success (nil error) with a ran bitmap marking
// exactly the completed prefix set, and experiments whose slot is unset
// in the bitmap never executed. The scalar engine stops within one
// experiment per worker; the batched engine within one batch per worker.
func TestCampaignStopContext(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.3, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	exps := Expand(r.Nodes(TargetIU), rtl.FaultModels()...)
	if len(exps) < 32 {
		t.Fatalf("want a large experiment set, got %d", len(exps))
	}

	const stopAt = 5
	results, ran, err := r.CampaignStopContext(context.Background(), exps, 2, nil,
		func(done, failures int) bool { return done >= stopAt })
	if err != nil {
		t.Fatalf("stop-rule halt returned %v, want nil", err)
	}
	completed := 0
	for i, ok := range ran {
		if ok {
			completed++
		} else if results[i] != (Result{}) {
			t.Fatalf("experiment %d has a result but ran=false", i)
		}
	}
	if completed < stopAt || completed > stopAt+2 {
		t.Fatalf("%d experiments completed, want within one granule of %d", completed, stopAt)
	}

	// Under the bit-parallel engine the dispatch granule is one batch of
	// up to 64 experiments per worker, so a stop overshoots by at most
	// that much — never by the rest of the campaign.
	rb, err := NewRunner(w.Program, Options{InjectAtFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	_, ranB, err := rb.CampaignStopContext(context.Background(), exps, 2, nil,
		func(done, failures int) bool { return done >= stopAt })
	if err != nil {
		t.Fatalf("batched stop-rule halt returned %v, want nil", err)
	}
	completedB := 0
	for _, ok := range ranB {
		if ok {
			completedB++
		}
	}
	if completedB < stopAt || completedB > stopAt+2*64 {
		t.Fatalf("batched: %d experiments completed, want within one batch per worker of %d", completedB, stopAt)
	}
	if completedB >= len(exps) {
		t.Fatalf("batched campaign ran to completion (%d) despite stop rule", completedB)
	}

	// Unstopped: every experiment runs, bitmap all true, identical to the
	// plain campaign.
	small := Expand(SampleNodes(r.Nodes(TargetIU), 6, 3), rtl.StuckAt1)
	got, ran2, err := r.CampaignStopContext(context.Background(), small, 3, nil,
		func(done, failures int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran2 {
		if !ok {
			t.Fatalf("experiment %d never ran in unstopped campaign", i)
		}
		want := r.Campaign(small, 1)
		if got[i] != want[i] {
			t.Fatalf("experiment %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}

	// External cancellation still reports ctx.Err, not a silent success.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.CampaignStopContext(ctx, small, 2, nil,
		func(done, failures int) bool { return false }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
}

func TestPfInterval(t *testing.T) {
	results := []Result{
		{Outcome: OutcomeMismatch},
		{Outcome: OutcomeNoEffect},
		{Outcome: OutcomeNoEffect},
		{Outcome: OutcomeHang},
	}
	if n := Failures(results); n != 2 {
		t.Fatalf("Failures = %d, want 2", n)
	}
	lo, hi := PfInterval(results, 1.96)
	if !(lo > 0.09 && lo < 0.2) || !(hi > 0.8 && hi < 0.91) {
		t.Errorf("PfInterval = [%v, %v], want roughly [0.15, 0.85]", lo, hi)
	}
	if lo, hi := PfInterval(nil, 1.96); lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}
}
