package fault

import (
	"context"

	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/sparc"
)

// CampaignEngine is the execution contract every campaign-capable
// simulation backend satisfies: golden-run construction happens in the
// backend's constructor, and the interface exposes what campaign
// orchestration (the jobs layer, the shard coordinator, the hybrid
// router) needs afterwards — node enumeration, deterministic transient
// scheduling, the golden run's length in the backend's own timebase,
// whether experiments fork from a snapshot, and the parallel campaign
// loop with tap/stop hooks.
//
// Timebase: every tick-valued quantity (GoldenTicks, Result.Cycles,
// Result.InjectAt, Result.Latency, Experiment.AtCycle) is in the
// engine's native unit — clock cycles for the RTL slab kernel,
// executed instructions for the ISS. The hybrid router pins both
// engines to the RTL cycle timebase (see NewISSRunner's cycleRef) so a
// single experiment list with RTL-cycle instants drives either side.
type CampaignEngine interface {
	// Nodes enumerates the injectable nodes of a target, annotated with
	// their functional units. Node identity is a property of the RTL
	// design, not of any particular engine, so every engine enumerates
	// the identical list in the identical order.
	Nodes(target Target) []NodeInfo
	// ScheduleTransients assigns every transient-model experiment its
	// injection instant, keyed by (seed, absolute index) alone — the
	// determinism rule of sharded campaigns.
	ScheduleTransients(exps []Experiment, seed int64)
	// GoldenTicks is the clean run's length in the engine's timebase.
	GoldenTicks() uint64
	// Checkpointed reports whether experiments fork from a golden-run
	// snapshot at the fixed injection instant.
	Checkpointed() bool
	// RunOne executes a single injection experiment.
	RunOne(e Experiment) Result
	// CampaignStopContext runs the experiments across workers with
	// per-completion taps and an optional sequential stop rule; see
	// Runner.CampaignStopContext for the full contract.
	CampaignStopContext(ctx context.Context, exps []Experiment, workers int,
		tap func(i int, res Result), stop func(done, failures int) bool) ([]Result, []bool, error)
}

// Both campaign backends satisfy the engine contract.
var (
	_ CampaignEngine = (*Runner)(nil)
	_ CampaignEngine = (*ISSRunner)(nil)
)

// GoldenTicks returns the golden run length in the RTL engine's
// timebase (clock cycles).
func (r *Runner) GoldenTicks() uint64 { return r.GoldenCycles }

// InjectCycle returns the resolved fixed injection instant in cycles
// (InjectAtFraction already applied). The hybrid router reads it to pin
// the ISS engine to the same instant on the RTL cycle timebase.
func (r *Runner) InjectCycle() uint64 { return r.opts.InjectAtCycle }

// enumerateNodes builds the annotated injectable-node list of a target
// from a throwaway core. Node identity comes from the RTL design alone,
// so the ISS engine enumerates through the same kernel and yields the
// byte-identical list the RTL engine does.
func enumerateNodes(entry uint32, target Target) []NodeInfo {
	core := leon3.New(mem.NewBus(mem.NewMemory()), entry)
	nodes := core.K.Nodes(target.Prefix())
	out := make([]NodeInfo, len(nodes))
	for j, n := range nodes {
		out[j] = NodeInfo{Node: n, Unit: sparc.Unit(core.K.UnitOf(n.Name))}
	}
	return out
}

// watchTrace hooks the early-exit golden comparator onto a bus. tick
// reports the engine's current time (cycles for RTL, instructions for
// the ISS) and timestamps the first mismatch. start is the index of the
// next expected golden write: 0 for a from-reset run, the checkpoint's
// write count for a forked run (the golden prefix is identical by
// construction).
func watchTrace(golden *mem.Trace, bus *mem.Bus, tick func() uint64, start int) *comparator {
	c := &comparator{mismatchAt: -1, idx: start}
	bus.OnWrite = func(a mem.Access) {
		if c.mismatchAt >= 0 {
			return
		}
		g := golden.Writes
		if c.idx >= len(g) || a.Write != g[c.idx].Write || a.Addr != g[c.idx].Addr ||
			a.Size != g[c.idx].Size || a.Data != g[c.idx].Data {
			c.mismatchAt = int64(tick())
		}
		c.idx++
	}
	return c
}

// classifyRun maps a finished faulted run onto outcome and latency —
// the classification rules both engines share. status and ticks are the
// run's terminal status and length in the engine's timebase; injectAt
// is the instant the fault was armed, in the same timebase (latencies
// are relative to it).
func classifyRun(res *Result, golden *mem.Trace, status iss.Status, ticks uint64,
	bus *mem.Bus, c *comparator, injectAt uint64) {
	res.Cycles = ticks
	switch {
	case c.mismatchAt >= 0:
		res.Outcome = OutcomeMismatch
		res.Latency = c.mismatchAt - int64(injectAt)
	case status == iss.StatusErrorMode:
		// Detected when off-core activity ceases: at the halt point.
		res.Outcome = OutcomeErrorMode
		res.Latency = int64(ticks) - int64(injectAt)
	case status == iss.StatusRunning || status == iss.StatusBudget:
		res.Outcome = OutcomeHang
	case c.idx != len(golden.Writes) || bus.ExitCode() != golden.ExitCode:
		// Detected at program end, when the write count disagrees.
		res.Outcome = OutcomeTruncated
		res.Latency = int64(ticks) - int64(injectAt)
	default:
		res.Outcome = OutcomeNoEffect
	}
}

// auditSalt keys the RTL-audit Bernoulli draw apart from the transient
// instant sampler that shares splitmix64. Like the scrambler itself it
// must never change: sharded hybrid campaigns rely on every process
// selecting the identical audit set.
const auditSalt = 0xa5d17bd790c43f21

// AuditSample reports whether experiment i belongs to a hybrid
// campaign's deterministic RTL-audit sample: a Bernoulli(fraction) draw
// keyed by (seed, absolute index) alone, so any contiguous shard of the
// experiment list audits exactly the experiments the unsharded campaign
// would. fraction >= 1 audits everything; <= 0 audits nothing.
func AuditSample(seed int64, i int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	h := splitmix64(splitmix64(uint64(seed)^auditSalt) + uint64(i))
	// 53 uniform bits → [0,1) with full float64 precision.
	return float64(h>>11)/(1<<53) < fraction
}
