package fault

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestEngineEquivalence is the campaign engines' correctness contract:
// every engine combination — pooled or fork-per-experiment, checkpointed
// or from-reset, scalar or bit-parallel at any lane count — must produce
// bit-identical Result slices (outcomes, latencies, run lengths, hence
// Pf) across both injection targets and all five fault models, with
// transient instants scheduled over the full experiment list. The scalar
// pooled checkpointed engine is the reference; the batched variants pin
// DESIGN.md §10's claim that lane-masked execution is an optimization,
// not an approximation.
func TestEngineEquivalence(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		opts Options
	}{
		{"scalar-pooled-checkpointed", Options{InjectAtFraction: 0.3, NoBatch: true}},
		{"batched-64", Options{InjectAtFraction: 0.3}},
		{"batched-8", Options{InjectAtFraction: 0.3, BatchLanes: 8}},
		{"batched-1", Options{InjectAtFraction: 0.3, BatchLanes: 1}},
		{"batched-fork-per-experiment", Options{InjectAtFraction: 0.3, NoPool: true}},
		{"pooled-from-reset", Options{InjectAtFraction: 0.3, NoCheckpoint: true}},
		{"unpooled-from-reset", Options{InjectAtFraction: 0.3, NoCheckpoint: true, NoPool: true}},
	}
	for _, target := range []Target{TargetIU, TargetCMEM} {
		t.Run(target.String(), func(t *testing.T) {
			var ref []Result
			var batched *Runner
			var scheduled []Experiment
			for _, eng := range engines {
				r, err := NewRunner(w.Program, eng.opts)
				if err != nil {
					t.Fatal(err)
				}
				nodes := SampleNodes(r.Nodes(target), 6, 7)
				exps := Expand(nodes, rtl.AllFaultModels()...)
				// Same options-derived window and seed in every runner, so
				// each engine sees identical transient instants.
				r.ScheduleTransients(exps, 21)
				results := r.Campaign(exps, 3)
				if ref == nil {
					ref = results
					continue
				}
				if eng.name == "batched-64" {
					batched, scheduled = r, exps
				}
				if !reflect.DeepEqual(ref, results) {
					for i := range ref {
						if !reflect.DeepEqual(ref[i], results[i]) {
							t.Errorf("%s: experiment %d (%v %v) diverged: %+v vs %+v",
								eng.name, i, exps[i].Node.Node, exps[i].Model, ref[i], results[i])
						}
					}
					t.Fatalf("%s: results differ from %s", eng.name, engines[0].name)
				}
				if got, want := Pf(results), Pf(ref); got != want {
					t.Fatalf("%s: Pf %v != %v", eng.name, got, want)
				}
			}

			// Sharded batched execution: running contiguous slices of the
			// scheduled list as separate campaigns (the shard layer's
			// currency — instants were assigned over the full list) and
			// concatenating must reassemble the unsharded byte stream, no
			// matter how the slicing interacts with batch boundaries.
			var merged []Result
			for lo := 0; lo < len(scheduled); {
				hi := lo + 7
				if hi > len(scheduled) {
					hi = len(scheduled)
				}
				merged = append(merged, batched.Campaign(scheduled[lo:hi], 2)...)
				lo = hi
			}
			if !reflect.DeepEqual(merged, ref) {
				t.Fatal("sharded batched campaign diverged from unsharded results")
			}
		})
	}
}

// TestBatchedCampaignRace drives the bit-parallel engine through a
// parallel campaign with multiple concurrent batches, so `go test -race`
// exercises concurrent witness arming on pooled cores, pass-snapshot
// capture, copy-on-write image forks and per-lane materialization — and
// the lane demultiplexing stays byte-identical to serial execution.
func TestBatchedCampaignRace(t *testing.T) {
	w, err := workloads.Build("excerptB", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.5, BatchLanes: 8, PulseCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	nodes := SampleNodes(r.Nodes(TargetIU), 12, 11)
	exps := Expand(nodes, rtl.AllFaultModels()...)
	r.ScheduleTransients(exps, 4)
	par := r.Campaign(exps, 8)
	ser := r.Campaign(exps, 1)
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel batched campaign diverged from serial")
	}
}

// TestPooledCampaignRace drives the pooled engine through a parallel
// campaign with more workers than experiments per slot, so `go test
// -race` exercises concurrent checkout/restore of pooled cores, the
// shared checkpoint and the copy-on-write image forks.
func TestPooledCampaignRace(t *testing.T) {
	w, err := workloads.Build("excerptB", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := SampleNodes(r.Nodes(TargetIU), 16, 11)
	exps := Expand(nodes, rtl.StuckAt1, rtl.StuckAt0)
	par := r.Campaign(exps, 8)
	ser := r.Campaign(exps, 1)
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel pooled campaign diverged from serial")
	}
}

// TestNodesCachedPerRunner pins the satellite fix: Nodes used to build a
// complete throwaway core on every call; it is now enumerated once per
// runner and the same backing slice is handed back.
func TestNodesCachedPerRunner(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []Target{TargetIU, TargetCMEM} {
		a, b := r.Nodes(target), r.Nodes(target)
		if len(a) == 0 {
			t.Fatalf("%v: empty enumeration", target)
		}
		if &a[0] != &b[0] {
			t.Errorf("%v: enumeration rebuilt on second call", target)
		}
	}
	if fmt.Sprint(r.Nodes(TargetIU)[0]) == fmt.Sprint(r.Nodes(TargetCMEM)[0]) {
		t.Error("IU and CMEM enumerations alias each other")
	}
}
