package fault

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestEngineEquivalence is the pooled slab engine's correctness contract:
// the default engine (per-worker pooled cores restored in place from the
// golden-run checkpoint) must produce bit-identical Result slices —
// outcomes, latencies and run lengths, hence Pf — versus the PR-1
// fork-per-experiment engine (a fresh core per experiment) and versus
// from-reset re-simulation, across both injection targets and all three
// permanent fault models.
func TestEngineEquivalence(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		opts Options
	}{
		{"pooled-checkpointed", Options{InjectAtFraction: 0.3}},
		{"fork-per-experiment", Options{InjectAtFraction: 0.3, NoPool: true}},
		{"pooled-from-reset", Options{InjectAtFraction: 0.3, NoCheckpoint: true}},
		{"unpooled-from-reset", Options{InjectAtFraction: 0.3, NoCheckpoint: true, NoPool: true}},
	}
	for _, target := range []Target{TargetIU, TargetCMEM} {
		t.Run(target.String(), func(t *testing.T) {
			var ref []Result
			for _, eng := range engines {
				r, err := NewRunner(w.Program, eng.opts)
				if err != nil {
					t.Fatal(err)
				}
				nodes := SampleNodes(r.Nodes(target), 6, 7)
				exps := Expand(nodes, rtl.FaultModels()...)
				results := r.Campaign(exps, 3)
				if ref == nil {
					ref = results
					continue
				}
				if !reflect.DeepEqual(ref, results) {
					for i := range ref {
						if !reflect.DeepEqual(ref[i], results[i]) {
							t.Errorf("%s: experiment %d (%v) diverged: %+v vs %+v",
								eng.name, i, exps[i].Node.Node, ref[i], results[i])
						}
					}
					t.Fatalf("%s: results differ from %s", eng.name, engines[0].name)
				}
				if got, want := Pf(results), Pf(ref); got != want {
					t.Fatalf("%s: Pf %v != %v", eng.name, got, want)
				}
			}
		})
	}
}

// TestPooledCampaignRace drives the pooled engine through a parallel
// campaign with more workers than experiments per slot, so `go test
// -race` exercises concurrent checkout/restore of pooled cores, the
// shared checkpoint and the copy-on-write image forks.
func TestPooledCampaignRace(t *testing.T) {
	w, err := workloads.Build("excerptB", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := SampleNodes(r.Nodes(TargetIU), 16, 11)
	exps := Expand(nodes, rtl.StuckAt1, rtl.StuckAt0)
	par := r.Campaign(exps, 8)
	ser := r.Campaign(exps, 1)
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel pooled campaign diverged from serial")
	}
}

// TestNodesCachedPerRunner pins the satellite fix: Nodes used to build a
// complete throwaway core on every call; it is now enumerated once per
// runner and the same backing slice is handed back.
func TestNodesCachedPerRunner(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []Target{TargetIU, TargetCMEM} {
		a, b := r.Nodes(target), r.Nodes(target)
		if len(a) == 0 {
			t.Fatalf("%v: empty enumeration", target)
		}
		if &a[0] != &b[0] {
			t.Errorf("%v: enumeration rebuilt on second call", target)
		}
	}
	if fmt.Sprint(r.Nodes(TargetIU)[0]) == fmt.Sprint(r.Nodes(TargetCMEM)[0]) {
		t.Error("IU and CMEM enumerations alias each other")
	}
}
