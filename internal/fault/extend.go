package fault

import (
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/rtl"
	"sync"
)

// This file extends the campaign runner beyond the paper's permanent-fault
// scope: transient single-event upsets (the paper's declared future work,
// whose outcome depends on the injection instant) and saboteur-style
// bridging faults between two nets.

// TransientExperiment is one bit-flip at a fixed cycle.
type TransientExperiment struct {
	Node    NodeInfo
	AtCycle uint64
}

// RunTransient executes a single-event-upset experiment: the program runs
// cleanly until AtCycle, the node's present value is inverted once, and
// the run continues under the same off-core comparison as permanent
// faults.
func (r *Runner) RunTransient(e TransientExperiment) Result {
	m := mem.NewMemory()
	m.LoadImage(r.prog.Origin, r.prog.Image)
	bus := mem.NewBus(m)
	core := leon3.New(bus, r.prog.Entry)

	res := Result{
		Fault:   rtl.Fault{Node: e.Node.Node},
		Unit:    e.Node.Unit,
		Latency: -1,
	}

	mismatchAt := int64(-1)
	idx := 0
	bus.OnWrite = func(a mem.Access) {
		if mismatchAt >= 0 {
			return
		}
		g := r.golden.Writes
		if idx >= len(g) || a.Write != g[idx].Write || a.Addr != g[idx].Addr ||
			a.Size != g[idx].Size || a.Data != g[idx].Data {
			mismatchAt = int64(core.Cycles())
		}
		idx++
	}

	for core.Cycles() < e.AtCycle && core.Status() == iss.StatusRunning {
		core.StepCycle()
	}
	if err := core.K.FlipBit(e.Node.Node); err != nil {
		res.Outcome = OutcomeNoEffect
		return res
	}
	for core.Status() == iss.StatusRunning && core.Cycles() < r.budget && mismatchAt < 0 {
		core.StepCycle()
	}
	res.Cycles = core.Cycles()

	switch {
	case mismatchAt >= 0:
		res.Outcome = OutcomeMismatch
		res.Latency = mismatchAt - int64(e.AtCycle)
	case core.Status() == iss.StatusErrorMode:
		res.Outcome = OutcomeErrorMode
		res.Latency = int64(res.Cycles) - int64(e.AtCycle)
	case core.Status() == iss.StatusRunning || core.Status() == iss.StatusBudget:
		res.Outcome = OutcomeHang
	case idx != len(r.golden.Writes) || bus.ExitCode() != r.golden.ExitCode:
		res.Outcome = OutcomeTruncated
		res.Latency = int64(res.Cycles) - int64(e.AtCycle)
	default:
		res.Outcome = OutcomeNoEffect
	}
	return res
}

// TransientCampaign crosses nodes with injection instants and runs the
// experiments in parallel, returning results in input order (nodes major,
// instants minor).
func (r *Runner) TransientCampaign(nodes []NodeInfo, atCycles []uint64, workers int) []Result {
	exps := make([]TransientExperiment, 0, len(nodes)*len(atCycles))
	for _, n := range nodes {
		for _, c := range atCycles {
			exps = append(exps, TransientExperiment{Node: n, AtCycle: c})
		}
	}
	if workers <= 0 {
		workers = 8
	}
	results := make([]Result, len(exps))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = r.RunTransient(exps[i])
			}
		}()
	}
	for i := range exps {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// BridgeExperiment shorts two nodes for the whole run.
type BridgeExperiment struct {
	A, B NodeInfo
	Kind rtl.BridgeKind
}

// RunBridge executes a bridging-fault experiment.
func (r *Runner) RunBridge(e BridgeExperiment) Result {
	m := mem.NewMemory()
	m.LoadImage(r.prog.Origin, r.prog.Image)
	bus := mem.NewBus(m)
	core := leon3.New(bus, r.prog.Entry)

	res := Result{
		Fault:   rtl.Fault{Node: e.A.Node},
		Unit:    e.A.Unit,
		Latency: -1,
	}

	mismatchAt := int64(-1)
	idx := 0
	bus.OnWrite = func(a mem.Access) {
		if mismatchAt >= 0 {
			return
		}
		g := r.golden.Writes
		if idx >= len(g) || a.Addr != g[idx].Addr || a.Size != g[idx].Size || a.Data != g[idx].Data {
			mismatchAt = int64(core.Cycles())
		}
		idx++
	}

	if err := core.K.InjectBridge(e.A.Node, e.B.Node, e.Kind); err != nil {
		res.Outcome = OutcomeNoEffect
		return res
	}
	for core.Status() == iss.StatusRunning && core.Cycles() < r.budget && mismatchAt < 0 {
		core.StepCycle()
	}
	res.Cycles = core.Cycles()

	switch {
	case mismatchAt >= 0:
		res.Outcome = OutcomeMismatch
		res.Latency = mismatchAt
	case core.Status() == iss.StatusErrorMode:
		res.Outcome = OutcomeErrorMode
		res.Latency = int64(res.Cycles)
	case core.Status() == iss.StatusRunning || core.Status() == iss.StatusBudget:
		res.Outcome = OutcomeHang
	case idx != len(r.golden.Writes) || bus.ExitCode() != r.golden.ExitCode:
		res.Outcome = OutcomeTruncated
		res.Latency = int64(res.Cycles)
	default:
		res.Outcome = OutcomeNoEffect
	}
	return res
}
