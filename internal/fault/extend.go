package fault

import (
	"context"

	"repro/internal/rtl"
)

// This file extends the campaign runner beyond the paper's permanent-fault
// scope with saboteur-style bridging faults between two nets, and keeps
// the historical single-experiment transient surface (RunTransient,
// TransientCampaign) as thin wrappers over the first-class transient
// models in fault.go.

// TransientExperiment is one bit-flip at a fixed cycle.
type TransientExperiment struct {
	Node    NodeInfo
	AtCycle uint64
}

// RunTransient executes a single-event-upset experiment: the program runs
// cleanly until AtCycle, the node's present value is inverted once, and
// the run continues under the same off-core comparison as permanent
// faults. It is RunOne with the BitFlip model, so it rides the pooled
// (and, for instants at or beyond the fork point, checkpointed) engine.
func (r *Runner) RunTransient(e TransientExperiment) Result {
	return r.RunOne(Experiment{Node: e.Node, Model: rtl.BitFlip, AtCycle: e.AtCycle})
}

// TransientCampaign crosses nodes with injection instants and runs the
// experiments in parallel, returning results in input order (nodes major,
// instants minor).
func (r *Runner) TransientCampaign(nodes []NodeInfo, atCycles []uint64, workers int) []Result {
	results, _ := r.TransientCampaignContext(context.Background(), nodes, atCycles, workers)
	return results
}

// TransientCampaignContext is TransientCampaign under a context, with the
// same cancellation semantics as CampaignContext: workers stop within one
// experiment granule and the partial results return with ctx.Err().
func (r *Runner) TransientCampaignContext(ctx context.Context, nodes []NodeInfo, atCycles []uint64, workers int) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	exps := make([]TransientExperiment, 0, len(nodes)*len(atCycles))
	for _, n := range nodes {
		for _, c := range atCycles {
			exps = append(exps, TransientExperiment{Node: n, AtCycle: c})
		}
	}
	if workers <= 0 {
		workers = 8
	}
	results := make([]Result, len(exps))
	err := runIndexed(ctx, len(exps), workers, func(i int) {
		results[i] = r.RunTransient(exps[i])
	})
	return results, err
}

// BridgeExperiment shorts two nodes for the whole run.
type BridgeExperiment struct {
	A, B NodeInfo
	Kind rtl.BridgeKind
}

// RunBridge executes a bridging-fault experiment.
func (r *Runner) RunBridge(e BridgeExperiment) Result {
	core, bus := r.freshCore()
	res := Result{
		Fault:   rtl.Fault{Node: e.A.Node},
		Unit:    e.A.Unit,
		Latency: -1,
	}
	c := r.watch(bus, core, 0)

	if err := core.K.InjectBridge(e.A.Node, e.B.Node, e.Kind); err != nil {
		res.Outcome = OutcomeNoEffect
		return res
	}
	r.runFaulted(core, c)
	r.classify(&res, core, bus, c, 0)
	return res
}
