package fault

import (
	"testing"

	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/workloads"
)

func TestTransientFlipTemporalDependence(t *testing.T) {
	// Transient outcome depends on WHEN the flip happens (the temporal
	// sensitivity the paper removes by restricting itself to permanent
	// faults). A flip in the expected-PC register is catastrophic while
	// the program runs, and harmless after the exit store has retired.
	r := newRunner(t, "excerptA", workloads.Config{})
	early := r.RunTransient(TransientExperiment{
		Node:    NodeInfo{Node: rtl.Node{Name: "iu.ctl.exppc", Bit: 4}, Unit: sparc.UnitBranch},
		AtCycle: 50,
	})
	if !early.Outcome.IsFailure() {
		t.Errorf("early PC flip did not fail: %v", early.Outcome)
	}
	late := r.RunTransient(TransientExperiment{
		Node:    NodeInfo{Node: rtl.Node{Name: "iu.ctl.exppc", Bit: 4}, Unit: sparc.UnitBranch},
		AtCycle: r.GoldenCycles - 1,
	})
	if late.Outcome != OutcomeNoEffect {
		t.Errorf("post-exit flip propagated: %v", late.Outcome)
	}
}

func TestTransientWeakerThanPermanent(t *testing.T) {
	// On the same node sample, single flips must not out-fail permanent
	// stuck-at faults (they expose strictly less opportunity).
	r := newRunner(t, "excerptB", workloads.Config{})
	nodes := SampleNodes(r.Nodes(TargetIU), 48, 11)
	perm := r.Campaign(Expand(nodes, rtl.StuckAt1), 0)
	trans := r.TransientCampaign(nodes, []uint64{100}, 0)
	if len(trans) != len(nodes) {
		t.Fatalf("transient results = %d", len(trans))
	}
	pfPerm, pfTrans := Pf(perm), Pf(trans)
	t.Logf("permanent Pf=%.3f transient Pf=%.3f", pfPerm, pfTrans)
	if pfTrans > pfPerm+0.05 {
		t.Errorf("transient Pf %.3f exceeds permanent %.3f", pfTrans, pfPerm)
	}
}

func TestTransientFlipInDeadStateIsSilent(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	res := r.RunTransient(TransientExperiment{
		Node:    NodeInfo{Node: rtl.Node{Name: "iu.md.acc", Bit: 32}, Unit: sparc.UnitMulDiv},
		AtCycle: 100,
	})
	if res.Outcome != OutcomeNoEffect {
		t.Errorf("flip in unused muldiv unit propagated: %v", res.Outcome)
	}
}

func TestBridgeFaultPropagates(t *testing.T) {
	// Shorting an ALU result bit to the (usually different) store-data
	// path corrupts values whenever the two disagree.
	r := newRunner(t, "excerptB", workloads.Config{})
	res := r.RunBridge(BridgeExperiment{
		A:    NodeInfo{Node: rtl.Node{Name: "iu.ex.result", Bit: 12}, Unit: sparc.UnitALU},
		B:    NodeInfo{Node: rtl.Node{Name: "iu.ex.aluout", Bit: 29}, Unit: sparc.UnitALU},
		Kind: rtl.WiredAND,
	})
	if !res.Outcome.IsFailure() {
		t.Errorf("ALU bridge did not fail: %v", res.Outcome)
	}
}

func TestBridgeBetweenQuiescentNetsIsSilent(t *testing.T) {
	// Bridging two bits that are always equal (here: two nets that stay 0
	// for the whole run — excerptA never divides, so the muldiv overflow
	// flag never rises, and error mode is never entered) cannot manifest.
	r := newRunner(t, "excerptA", workloads.Config{})
	res := r.RunBridge(BridgeExperiment{
		A:    NodeInfo{Node: rtl.Node{Name: "iu.ctl.errm", Bit: 0}, Unit: sparc.UnitPSR},
		B:    NodeInfo{Node: rtl.Node{Name: "iu.md.ovf", Bit: 0}, Unit: sparc.UnitMulDiv},
		Kind: rtl.WiredOR,
	})
	if res.Outcome != OutcomeNoEffect {
		t.Errorf("bridge between quiescent nets propagated: %v", res.Outcome)
	}
}
