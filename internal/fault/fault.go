// Package fault implements the RTL fault-injection framework of the
// reproduction: enumeration and sampling of injection nodes over the IU
// and CMEM hierarchies, single-fault experiment execution with early-exit
// golden-trace comparison at the off-core boundary, and parallel campaign
// orchestration.
//
// The experiment design follows the paper's §4.1: single permanent
// hardware faults (stuck-at-0, stuck-at-1, open-line) applied to RTL
// signals at a fixed injection instant; any mismatch in the off-core
// write stream — the point where light-lockstep cores compare — is a
// system failure. Beyond the paper's scope, the same machinery executes
// transient faults (rtl.BitFlip single-event upsets and rtl.SETPulse
// glitches) whose injection instants are sampled deterministically per
// experiment by ScheduleTransients.
package fault

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/stats"
)

// Target selects the microcontroller unit whose nodes are injected.
type Target int

// Injection targets.
const (
	TargetIU Target = iota
	TargetCMEM
)

func (t Target) String() string {
	if t == TargetCMEM {
		return "CMEM"
	}
	return "IU"
}

// Prefix returns the RTL hierarchy prefix of the target.
func (t Target) Prefix() string {
	if t == TargetCMEM {
		return "cmem."
	}
	return "iu."
}

// Outcome classifies one injection experiment.
type Outcome int

// Experiment outcomes. Everything except OutcomeNoEffect manifests at the
// off-core boundary and counts as a failure in Pf.
const (
	OutcomeNoEffect  Outcome = iota
	OutcomeMismatch          // off-core write differed from the golden run
	OutcomeTruncated         // program ended with missing or extra writes
	OutcomeErrorMode         // processor entered error mode
	OutcomeHang              // cycle budget exhausted without exit
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNoEffect:
		return "no-effect"
	case OutcomeMismatch:
		return "mismatch"
	case OutcomeTruncated:
		return "truncated"
	case OutcomeErrorMode:
		return "error-mode"
	case OutcomeHang:
		return "hang"
	}
	return "outcome?"
}

// IsFailure reports whether the outcome counts as a propagated failure.
func (o Outcome) IsFailure() bool { return o != OutcomeNoEffect }

// NodeInfo is an injectable node annotated with its functional unit.
type NodeInfo struct {
	Node rtl.Node
	Unit sparc.Unit
}

// Result is the outcome of one injection experiment.
type Result struct {
	Fault   rtl.Fault
	Unit    sparc.Unit
	Outcome Outcome
	// Latency is the number of cycles from injection to the first off-core
	// mismatch (propagation latency); -1 when the fault did not manifest
	// as a mismatch while running.
	Latency int64
	// Cycles is the faulted run's length.
	Cycles uint64
	// InjectAt is the cycle at which the fault was applied: the runner's
	// fixed instant for permanent models, the experiment's sampled
	// instant for transient ones.
	InjectAt uint64
}

// Options configures a Runner.
type Options struct {
	// InjectAtCycle is the fixed injection instant (paper: faults "appear
	// at a fixed injection instant"). Zero injects at reset.
	InjectAtCycle uint64
	// InjectAtFraction, when nonzero, positions the injection instant at
	// this fraction of the golden run length (overrides InjectAtCycle).
	// Injecting mid-run matters for the open-line model, whose frozen
	// value is the charge the net carries at that instant.
	InjectAtFraction float64
	// BudgetFactor scales the golden run length into the faulted-run cycle
	// budget (hang detection). Default 3.
	BudgetFactor uint64
	// ExtraCycles is added on top of the scaled budget. Default 10000.
	ExtraCycles uint64
	// PulseCycles is the width of a SETPulse glitch in cycles: the net is
	// forced to the complement of its present value for this many cycles,
	// then released. Zero selects 1 (a single-cycle glitch). Permanent
	// models and BitFlip ignore it.
	PulseCycles uint64
	// NoEarlyExit disables stopping a faulted run at its first off-core
	// mismatch (ablation A1 in DESIGN.md). The classification is
	// identical; only the campaign cost changes.
	NoEarlyExit bool
	// NoCheckpoint disables the checkpointed campaign engine: every
	// experiment then re-simulates the warm-up prefix from reset instead
	// of forking from the golden-run snapshot at the injection instant.
	// Classifications are identical either way; disabling is only useful
	// for debugging the engine or measuring its speedup.
	NoCheckpoint bool
	// NoPool disables the pooled campaign engine: every experiment then
	// builds a fresh RTL core (the fork-per-experiment engine of PR 1)
	// instead of restoring a per-worker pooled core in place. Results are
	// identical; the option exists for engine debugging and the
	// engine-equivalence tests.
	NoPool bool
	// NoBatch disables the bit-parallel (PPSFP) campaign engine: every
	// experiment then runs as its own scalar simulation instead of
	// sharing one witnessed golden pass per batch of up to 64 fault
	// universes (see batch.go and DESIGN.md §10). Results are identical;
	// like NoPool and NoCheckpoint the toggle exists for debugging and
	// the engine-equivalence tests. Batching also requires the
	// checkpointed engine; with NoCheckpoint set or InjectAtCycle zero
	// every experiment is scalar regardless of NoBatch.
	NoBatch bool
	// BatchLanes caps the number of fault universes a batch carries
	// (DESIGN.md §10 ablates 1/8/32/64). Zero selects the full 64 lanes;
	// values above 64 are clamped. One lane still exercises the batched
	// engine (witnessed pass plus per-lane forks), just without lane
	// sharing.
	BatchLanes int
	// Obs, when non-nil, receives the engine's counters (experiments,
	// batch-lane funnel, golden-pass throughput). Observation only: it
	// never influences planning, ordering or results, it is excluded from
	// the campaign runner-cache identity, and it never reaches content
	// addressing — a runner with a registry is byte-identical to one
	// without.
	Obs *obs.Registry
}

// Runner executes fault-injection experiments for one program.
type Runner struct {
	prog   *asm.Program
	opts   Options
	golden mem.Trace
	// GoldenCycles is the clean run's length in cycles.
	GoldenCycles uint64
	// GoldenStatus is the clean run's terminal status.
	GoldenStatus iss.Status
	budget       uint64

	// baseImg is the pristine program memory, loaded once per runner;
	// every from-reset run forks it copy-on-write instead of re-writing
	// the image byte stream into a fresh memory.
	baseImg *mem.Image

	// Golden-run checkpoint, captured lazily on first use (the campaign
	// engine forks every experiment from it instead of re-simulating the
	// fault-free prefix up to the injection instant).
	ckptOnce sync.Once
	ckpt     *checkpoint

	// engines pools reusable RTL cores: each campaign worker restores a
	// pooled core in place per experiment instead of rebuilding the whole
	// design graph with leon3.New.
	engines sync.Pool

	// Per-target injection-node enumeration, built once per runner (it
	// used to construct a throwaway core on every call).
	nodesOnce [2]sync.Once
	nodesVal  [2][]NodeInfo

	// met holds the engine's metric handles — no-ops unless Options.Obs
	// was set.
	met engineMetrics
}

// freshCore builds a clean RTL core over a copy-on-write fork of the
// pristine program image (shared by every from-reset experiment and the
// checkpoint capture, so all of them see identical memory).
func (r *Runner) freshCore() (*leon3.Core, *mem.Bus) {
	bus := mem.NewBus(r.baseImg.Fork())
	return leon3.New(bus, r.prog.Entry), bus
}

// NewRunner builds the golden reference by running the program on a clean
// RTL core.
func NewRunner(p *asm.Program, opts Options) (*Runner, error) {
	if opts.BudgetFactor == 0 {
		opts.BudgetFactor = 3
	}
	if opts.ExtraCycles == 0 {
		opts.ExtraCycles = 10000
	}
	if opts.PulseCycles == 0 {
		opts.PulseCycles = 1
	}
	if math.IsNaN(opts.InjectAtFraction) || math.IsInf(opts.InjectAtFraction, 0) ||
		opts.InjectAtFraction < 0 || opts.InjectAtFraction >= 1 {
		return nil, fmt.Errorf("fault: InjectAtFraction %v outside [0,1)", opts.InjectAtFraction)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	r := &Runner{prog: p, opts: opts, baseImg: m.Snapshot(), met: newEngineMetrics(opts.Obs)}
	core, _ := r.freshCore()
	st := core.Run(200_000_000)
	if st != iss.StatusExited {
		return nil, fmt.Errorf("fault: golden run did not exit: %v", st)
	}
	r.golden = core.Bus.Trace
	r.GoldenCycles = core.Cycles()
	r.GoldenStatus = st
	if opts.InjectAtFraction > 0 {
		r.opts.InjectAtCycle = uint64(opts.InjectAtFraction * float64(r.GoldenCycles))
	}
	r.budget = r.GoldenCycles*opts.BudgetFactor + opts.ExtraCycles
	return r, nil
}

// Golden returns the clean off-core trace.
func (r *Runner) Golden() *mem.Trace { return &r.golden }

// Nodes enumerates the injectable nodes of a target, annotated with their
// functional units. The enumeration is computed once per runner and the
// same slice is returned to every caller; callers must not mutate it.
func (r *Runner) Nodes(target Target) []NodeInfo {
	i := 0
	if target == TargetCMEM {
		i = 1
	}
	r.nodesOnce[i].Do(func() {
		r.nodesVal[i] = enumerateNodes(r.prog.Entry, target)
	})
	return r.nodesVal[i]
}

// SampleNodes draws a deterministic uniform sample of n nodes (statistical
// fault injection). If n >= len(nodes) the full set is returned.
func SampleNodes(nodes []NodeInfo, n int, seed int64) []NodeInfo {
	if n >= len(nodes) {
		return nodes
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(nodes))
	out := make([]NodeInfo, n)
	for i := 0; i < n; i++ {
		out[i] = nodes[perm[i]]
	}
	return out
}

// Experiment is one (node, model) injection.
type Experiment struct {
	Node  NodeInfo
	Model rtl.FaultModel
	// AtCycle is the injection instant of a transient-model experiment
	// (BitFlip, SETPulse); permanent models ignore it and inject at the
	// runner's fixed instant. ScheduleTransients assigns it
	// deterministically; left zero, a transient experiment injects at
	// reset.
	AtCycle uint64
}

// Expand crosses nodes with fault models. The enumeration order —
// models outer, nodes inner — is load-bearing: the shard layer's
// experiment-index currency and the job service's content addressing
// both assume every expansion of the same (nodes, models) pair yields
// the identical sequence.
func Expand(nodes []NodeInfo, models ...rtl.FaultModel) []Experiment {
	out := make([]Experiment, 0, len(nodes)*len(models))
	for _, m := range models {
		for _, n := range nodes {
			out = append(out, Experiment{Node: n, Model: m})
		}
	}
	return out
}

// splitmix64 is the SplitMix64 output scrambler: a fixed, dependency-free
// bijection used to derive per-experiment injection cycles. It must never
// change — sharded campaigns rely on every process sampling the same
// instants.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// transientCycle samples the injection instant of the transient
// experiment at absolute index i: uniform over [lo, hi) keyed by (seed,
// i) alone.
func transientCycle(seed int64, i int, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + splitmix64(splitmix64(uint64(seed))+uint64(i))%(hi-lo)
}

// ScheduleTransients assigns every transient-model experiment its
// injection instant: a deterministic uniform sample over [the runner's
// fixed injection instant, the golden run length), keyed by the seed and
// the experiment's absolute index in exps. Keying by absolute index —
// never by worker-local completion or dispatch order — is the
// determinism rule that keeps sharded campaigns byte-identical to
// unsharded ones: any contiguous slice of a scheduled list carries the
// same instants no matter which worker executes it. The window starts at
// the runner's fixed instant so every sampled cycle lies at or beyond
// the golden-run checkpoint and the fork engine stays usable.
func (r *Runner) ScheduleTransients(exps []Experiment, seed int64) {
	lo, hi := r.opts.InjectAtCycle, r.GoldenCycles
	for i := range exps {
		if exps[i].Model.Transient() {
			exps[i].AtCycle = transientCycle(seed, i, lo, hi)
		}
	}
}

// comparator is the early-exit golden-trace comparator state of one
// faulted run: the index of the next expected golden write and the cycle
// of the first off-core mismatch (-1 while none).
type comparator struct {
	mismatchAt int64
	idx        int
}

// watch hooks the comparator onto the bus. start is the index of the next
// expected golden write: 0 for a from-reset run, the checkpoint's write
// count for a forked run (the golden prefix is identical by construction).
func (r *Runner) watch(bus *mem.Bus, core *leon3.Core, start int) *comparator {
	return watchTrace(&r.golden, bus, core.Cycles, start)
}

// runFaulted advances a core with an armed fault until exit, error mode,
// the cycle budget, or (unless NoEarlyExit) the first off-core mismatch.
func (r *Runner) runFaulted(core *leon3.Core, c *comparator) {
	for core.Status() == iss.StatusRunning && core.Cycles() < r.budget &&
		(r.opts.NoEarlyExit || c.mismatchAt < 0) {
		core.StepCycle()
	}
}

// classify maps a finished faulted run onto its outcome and latency.
// injectAt is the instant the fault was armed (latencies are relative to
// it).
func (r *Runner) classify(res *Result, core *leon3.Core, bus *mem.Bus, c *comparator, injectAt uint64) {
	classifyRun(res, &r.golden, core.Status(), core.Cycles(), bus, c, injectAt)
}

// engine is a pooled per-worker execution context: one reusable RTL core
// whose kernel state is restored in place per experiment, so the design
// graph is built once per worker instead of once per experiment.
type engine struct {
	core *leon3.Core
}

// getEngine takes a pooled engine, building one on first use.
func (r *Runner) getEngine() *engine {
	if e, ok := r.engines.Get().(*engine); ok {
		return e
	}
	core, _ := r.freshCore()
	return &engine{core: core}
}

// armAt returns the cycle at which the experiment's fault is applied:
// the sampled per-experiment instant for transient models, the runner's
// fixed injection instant otherwise.
func (r *Runner) armAt(e Experiment) uint64 {
	if e.Model.Transient() {
		return e.AtCycle
	}
	return r.opts.InjectAtCycle
}

// finish takes a core positioned at or before the experiment's injection
// instant (comparator already attached), advances the clean run to that
// instant, applies the fault and runs it to classification. Permanent
// models stay forced to the end of the run; a BitFlip mutates state once
// and the design runs free; a SETPulse holds its forcing for
// Options.PulseCycles cycles and is then released.
func (r *Runner) finish(core *leon3.Core, bus *mem.Bus, c *comparator, e Experiment) Result {
	injectAt := r.armAt(e)
	res := Result{
		Fault:    rtl.Fault{Node: e.Node.Node, Model: e.Model},
		Unit:     e.Node.Unit,
		Latency:  -1,
		InjectAt: injectAt,
	}
	for core.Cycles() < injectAt && core.Status() == iss.StatusRunning {
		core.StepCycle()
	}
	if err := core.K.Inject(res.Fault); err != nil {
		res.Outcome = OutcomeNoEffect
		return res
	}
	if e.Model == rtl.SETPulse {
		// Hold the glitch for the pulse window, then release the net. The
		// budget, terminal-status and early-exit bounds all apply inside
		// the window too, so a pulse can never outlive the run.
		for end := core.Cycles() + r.opts.PulseCycles; core.Cycles() < end &&
			core.Status() == iss.StatusRunning && core.Cycles() < r.budget &&
			(r.opts.NoEarlyExit || c.mismatchAt < 0); {
			core.StepCycle()
		}
		core.K.ClearFaults()
	}
	r.runFaulted(core, c)
	r.classify(&res, core, bus, c, injectAt)
	return res
}

// runFromReset executes one experiment on a freshly reset core: finish
// simulates the warm-up prefix up to the injection instant, arms the
// fault and continues under the comparator.
func (r *Runner) runFromReset(core *leon3.Core, bus *mem.Bus, e Experiment) Result {
	c := r.watch(bus, core, 0)
	return r.finish(core, bus, c, e)
}

// RunOne executes a single injection experiment. When the checkpointed
// engine is active the experiment forks from the golden-run snapshot at
// the runner's fixed injection instant; otherwise it re-simulates from
// reset. Transient experiments whose sampled instant lies at or beyond
// that fork point ride the same engine (the clean continuation is
// advanced to the sampled cycle before arming); one sampled earlier
// falls back to from-reset execution so the injection is never skipped.
// By default both paths reuse a pooled core restored in place (see
// Options.NoPool for the fork-per-experiment engine). All engine
// combinations produce identical results.
func (r *Runner) RunOne(e Experiment) Result {
	ck := r.checkpoint()
	if ck != nil && e.Model.Transient() && e.AtCycle < r.opts.InjectAtCycle {
		ck = nil
	}
	if r.opts.NoPool {
		if ck != nil {
			bus := mem.NewBus(ck.img.Fork())
			if res, ok := r.runForked(leon3.New(bus, r.prog.Entry), bus, ck, e); ok {
				return res
			}
		}
		core, bus := r.freshCore()
		return r.runFromReset(core, bus, e)
	}

	eng := r.getEngine()
	defer r.engines.Put(eng)
	core := eng.core
	if ck != nil {
		bus := mem.NewBus(ck.img.Fork())
		core.Bus = bus
		if res, ok := r.runForked(core, bus, ck, e); ok {
			return res
		}
		// A restore failure never happens with a same-program core; fall
		// through to the from-reset path for robustness.
	}
	bus := mem.NewBus(r.baseImg.Fork())
	core.Bus = bus
	core.Reset()
	return r.runFromReset(core, bus, e)
}

// Campaign runs the experiments across workers and returns results in
// input order.
func (r *Runner) Campaign(exps []Experiment, workers int) []Result {
	results, _ := r.CampaignContext(context.Background(), exps, workers, nil)
	return results
}

// CampaignContext runs the experiments across workers, honouring ctx:
// cancellation stops the campaign within one experiment granule (workers
// finish the experiment they are on, skip the rest, and the dispatcher
// stops feeding). Results are in input order; experiments that never ran
// are left zero-valued. On cancellation the partial results are returned
// together with ctx.Err().
//
// tap, when non-nil, is invoked as each experiment completes with its
// index and result. It is called concurrently from worker goroutines and
// must be safe for concurrent use.
func (r *Runner) CampaignContext(ctx context.Context, exps []Experiment, workers int, tap func(i int, res Result)) ([]Result, error) {
	results, _, err := r.CampaignStopContext(ctx, exps, workers, tap, nil)
	return results, err
}

// CampaignStopContext is CampaignContext plus sequential early stopping
// and completion tracking, the engine entry point of sharded and adaptive
// campaigns. After every completed experiment the stop rule — when
// non-nil — is consulted with the running completion and failure counts;
// once it returns true the campaign halts within one dispatch granule
// per worker, exactly like a context cancellation, but with a nil error:
// stopping adaptively is a successful outcome, not an abort.
//
// The dispatch granule is one batch of up to 64 experiments under the
// bit-parallel engine (see batch.go), or one experiment when batching is
// off. A stop or cancellation therefore overshoots by at most one batch
// per worker; every experiment a finished granule covered is tallied and
// reported, so the stop rule's decisions remain a function of completed
// experiment counts only.
//
// The returned ran bitmap marks which experiments actually executed, so
// callers of a stopped or cancelled campaign can distinguish a completed
// zero-valued Result from an experiment that never ran. ctx cancellation
// still returns the partial results together with ctx.Err().
func (r *Runner) CampaignStopContext(ctx context.Context, exps []Experiment, workers int, tap func(i int, res Result), stop func(done, failures int) bool) ([]Result, []bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(exps))
	ran := make([]bool, len(exps))
	cctx := ctx
	var cancel context.CancelFunc
	if stop != nil {
		cctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	var mu sync.Mutex
	done, failures := 0, 0
	deliver := func(i int, res Result) {
		r.met.experiments.Inc()
		results[i] = res
		mu.Lock()
		ran[i] = true
		done++
		if res.Outcome.IsFailure() {
			failures++
		}
		d, f := done, failures
		mu.Unlock()
		if tap != nil {
			tap(i, res)
		}
		if stop != nil && stop(d, f) {
			cancel()
		}
	}
	plan := r.planBatches(exps)
	err := runIndexed(cctx, len(plan), workers, func(pi int) {
		item := plan[pi]
		if item.lanes == nil {
			deliver(item.idx, r.RunOne(exps[item.idx]))
			return
		}
		for j, res := range r.runBatch(exps, item.lanes) {
			deliver(item.lanes[j], res)
		}
	})
	if err != nil && ctx.Err() == nil {
		// The halt came from the stop rule, not the caller: report success.
		err = nil
	}
	return results, ran, err
}

// runIndexed dispatches n experiment indices across workers under ctx —
// the shared scaffolding of every campaign kind. Cancellation stops the
// dispatch within one granule per worker: each worker finishes the index
// it is on, the feeder stops, and ctx.Err() is returned.
func runIndexed(ctx context.Context, n, workers int, run func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				select {
				case <-done:
					return
				default:
				}
				run(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// Pf returns the fraction of experiments whose fault propagated to a
// failure at the off-core boundary.
func Pf(results []Result) float64 {
	if len(results) == 0 {
		return 0
	}
	return float64(Failures(results)) / float64(len(results))
}

// Failures counts the experiments whose fault propagated to a failure.
func Failures(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Outcome.IsFailure() {
			n++
		}
	}
	return n
}

// PfInterval returns the Wilson score confidence interval around Pf at
// confidence level z (1.96 for 95%): the range of true failure
// probabilities compatible with the campaign's sample. Campaigns are
// statistical fault injection (a node sample, not the exhaustive set), so
// every reported Pf carries this sampling uncertainty.
func PfInterval(results []Result, z float64) (lo, hi float64) {
	return stats.WilsonCI(Failures(results), len(results), z)
}

// PfByUnit groups Pf by functional unit.
func PfByUnit(results []Result) map[sparc.Unit]float64 {
	tot := map[sparc.Unit]int{}
	fail := map[sparc.Unit]int{}
	for _, r := range results {
		tot[r.Unit]++
		if r.Outcome.IsFailure() {
			fail[r.Unit]++
		}
	}
	out := map[sparc.Unit]float64{}
	for u, n := range tot {
		out[u] = float64(fail[u]) / float64(n)
	}
	return out
}

// MaxLatency returns the maximum detection latency in cycles over the
// experiments whose fault manifested at a bounded instant (mismatches,
// truncations and error modes; hangs are unbounded and excluded). This is
// Figure 4(b)'s metric: it grows with run length because some faults only
// corrupt data consumed in the program's final phase.
func MaxLatency(results []Result) int64 {
	max := int64(-1)
	for _, r := range results {
		if r.Outcome != OutcomeHang && r.Latency > max {
			max = r.Latency
		}
	}
	return max
}

// OutcomeCounts tallies the outcome distribution.
func OutcomeCounts(results []Result) map[Outcome]int {
	out := map[Outcome]int{}
	for _, r := range results {
		out[r.Outcome]++
	}
	return out
}
