package fault

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/rtl"
	"repro/internal/sparc"
	"repro/internal/workloads"
)

func newRunner(t *testing.T, name string, cfg workloads.Config) *Runner {
	t.Helper()
	w, err := workloads.Build(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGoldenRunMatchesWorkload(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	if !r.Golden().Exited {
		t.Fatal("golden trace did not exit")
	}
	if len(r.Golden().Writes) < 10 {
		t.Fatalf("golden writes = %d", len(r.Golden().Writes))
	}
}

func TestNodesEnumerationAndUnits(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	iu := r.Nodes(TargetIU)
	cm := r.Nodes(TargetCMEM)
	if len(iu) == 0 || len(cm) == 0 {
		t.Fatalf("node counts: iu=%d cmem=%d", len(iu), len(cm))
	}
	for _, n := range iu {
		if !n.Unit.IsIU() {
			t.Fatalf("IU node %v tagged %v", n.Node, n.Unit)
		}
	}
	for _, n := range cm {
		if !n.Unit.IsCMEM() {
			t.Fatalf("CMEM node %v tagged %v", n.Node, n.Unit)
		}
	}
}

func TestSampleNodesDeterministic(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	nodes := r.Nodes(TargetIU)
	s1 := SampleNodes(nodes, 10, 42)
	s2 := SampleNodes(nodes, 10, 42)
	s3 := SampleNodes(nodes, 10, 43)
	if len(s1) != 10 {
		t.Fatalf("sample size %d", len(s1))
	}
	for i := range s1 {
		if s1[i].Node != s2[i].Node {
			t.Fatal("same seed produced different samples")
		}
	}
	diff := false
	for i := range s1 {
		if s1[i].Node != s3[i].Node {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical samples")
	}
	if got := SampleNodes(nodes, len(nodes)+5, 1); len(got) != len(nodes) {
		t.Errorf("oversample returned %d nodes", len(got))
	}
}

func TestStuckAtOnALUPropagates(t *testing.T) {
	// A stuck-at on a high bit of the ALU output must corrupt results in
	// a workload doing arithmetic stores.
	r := newRunner(t, "excerptA", workloads.Config{})
	res := r.RunOne(Experiment{
		Node:  NodeInfo{Node: rtl.Node{Name: "iu.ex.result", Bit: 20}, Unit: sparc.UnitALU},
		Model: rtl.StuckAt1,
	})
	if !res.Outcome.IsFailure() {
		t.Fatalf("ALU stuck-at-1 did not fail: %v", res.Outcome)
	}
	if res.Outcome == OutcomeMismatch && res.Latency < 0 {
		t.Error("mismatch without latency")
	}
}

func TestUnusedUnitFaultIsSilent(t *testing.T) {
	// excerptA executes no multiply/divide: faults in the muldiv partial
	// registers must not propagate (this is the mechanism behind the
	// diversity correlation).
	r := newRunner(t, "excerptA", workloads.Config{})
	for _, bitNode := range []rtl.Node{
		{Name: "iu.md.acc", Bit: 13},
		{Name: "iu.md.quot", Bit: 5},
	} {
		res := r.RunOne(Experiment{
			Node:  NodeInfo{Node: bitNode, Unit: sparc.UnitMulDiv},
			Model: rtl.StuckAt1,
		})
		if res.Outcome != OutcomeNoEffect {
			t.Errorf("muldiv fault %v propagated: %v", bitNode, res.Outcome)
		}
	}
}

func TestStuckAt0OnZeroSignalIsSilent(t *testing.T) {
	// Stuck-at-0 on a bit that is always 0 in this run cannot manifest.
	r := newRunner(t, "excerptA", workloads.Config{})
	res := r.RunOne(Experiment{
		Node:  NodeInfo{Node: rtl.Node{Name: "iu.ctl.errm", Bit: 0}, Unit: sparc.UnitPSR},
		Model: rtl.StuckAt0,
	})
	if res.Outcome != OutcomeNoEffect {
		t.Errorf("sa0 on errm propagated: %v", res.Outcome)
	}
}

func TestPCFaultCausesControlFailure(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	res := r.RunOne(Experiment{
		Node:  NodeInfo{Node: rtl.Node{Name: "iu.ctl.exppc", Bit: 3}, Unit: sparc.UnitBranch},
		Model: rtl.StuckAt1,
	})
	if !res.Outcome.IsFailure() {
		t.Errorf("PC fault did not fail: %v", res.Outcome)
	}
}

func TestCampaignParallelMatchesSerial(t *testing.T) {
	r := newRunner(t, "excerptA", workloads.Config{})
	nodes := SampleNodes(r.Nodes(TargetIU), 24, 7)
	exps := Expand(nodes, rtl.StuckAt1)
	serial := make([]Result, len(exps))
	for i, e := range exps {
		serial[i] = r.RunOne(e)
	}
	parallel := r.Campaign(exps, 8)
	for i := range exps {
		if serial[i].Outcome != parallel[i].Outcome {
			t.Fatalf("exp %d: serial %v, parallel %v", i, serial[i].Outcome, parallel[i].Outcome)
		}
	}
	pf := Pf(parallel)
	if pf < 0 || pf > 1 {
		t.Fatalf("Pf = %v", pf)
	}
	t.Logf("excerptA IU sa1 sample Pf = %.3f, outcomes %v", pf, OutcomeCounts(parallel))
}

func TestExpandCrossesModels(t *testing.T) {
	nodes := []NodeInfo{{}, {}}
	exps := Expand(nodes, rtl.StuckAt0, rtl.StuckAt1, rtl.OpenLine)
	if len(exps) != 6 {
		t.Fatalf("expanded %d", len(exps))
	}
}

func TestPfByUnitGrouping(t *testing.T) {
	results := []Result{
		{Unit: sparc.UnitALU, Outcome: OutcomeMismatch},
		{Unit: sparc.UnitALU, Outcome: OutcomeNoEffect},
		{Unit: sparc.UnitShifter, Outcome: OutcomeNoEffect},
	}
	m := PfByUnit(results)
	if m[sparc.UnitALU] != 0.5 || m[sparc.UnitShifter] != 0 {
		t.Errorf("per-unit pf = %v", m)
	}
}

func TestMaxLatency(t *testing.T) {
	results := []Result{
		{Outcome: OutcomeMismatch, Latency: 10},
		{Outcome: OutcomeMismatch, Latency: 99},
		{Outcome: OutcomeHang, Latency: -1},
	}
	if got := MaxLatency(results); got != 99 {
		t.Errorf("max latency = %d", got)
	}
}

func TestInjectionAtLaterInstant(t *testing.T) {
	r1, err := NewRunner(mustProg(t, "excerptA"), Options{InjectAtCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(mustProg(t, "excerptA"), Options{InjectAtCycle: 200})
	if err != nil {
		t.Fatal(err)
	}
	e := Experiment{
		Node:  NodeInfo{Node: rtl.Node{Name: "iu.ex.result", Bit: 0}, Unit: sparc.UnitALU},
		Model: rtl.StuckAt1,
	}
	a := r1.RunOne(e)
	b := r2.RunOne(e)
	// Permanent faults: both injection instants should produce failures
	// here, but the later injection cannot manifest earlier than its
	// instant.
	if a.Outcome == OutcomeNoEffect && b.Outcome != OutcomeNoEffect {
		t.Errorf("earlier injection weaker than later: %v vs %v", a.Outcome, b.Outcome)
	}
}

func mustProg(t *testing.T, name string) *asm.Program {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Program
}
