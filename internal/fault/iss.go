package fault

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// This file implements the ISS campaign engine: a CampaignEngine over
// the functional emulator in internal/iss. The paper's central claim is
// that ISS-level injection predicts RTL-level failure probability well
// enough to calibrate via Equation (1); this engine is the prediction
// side of that trade. It runs the same experiment list as the RTL
// engine — same node identities, same fault models, same off-core
// golden-trace classification — but executes each run on the emulator,
// which has no RTL signals to force. Every RTL node is therefore mapped
// onto an architectural victim (a register bit, chosen deterministically
// from the node's identity) and the fault model's semantics are applied
// there: a coarse microarchitectural abstraction, cheap and
// deterministic, whose prediction error is exactly what the hybrid
// router's RTL audits measure and bound.
//
// Timebase: the emulator has no clock, so ticks are executed
// instructions. A standalone ISSRunner interprets every instant
// (InjectAtCycle, transient schedules, budgets, latencies) in
// instructions. Under the hybrid router the engine is instead pinned to
// the RTL cycle timebase (cycleRef > 0): experiment instants arrive in
// RTL cycles and are mapped onto instruction indices by the ratio of
// the two golden-run lengths, and reported Result.InjectAt echoes the
// RTL-cycle input so hybrid outcome rows stay in one currency.

// ISSRunner executes fault-injection experiments on the instruction-set
// simulator. It satisfies CampaignEngine; see Runner for the RTL
// counterpart.
type ISSRunner struct {
	prog   *asm.Program
	opts   Options
	golden mem.Trace
	// GoldenInsts is the clean run's length in executed instructions —
	// the ISS engine's timebase.
	GoldenInsts uint64
	// GoldenStatus is the clean run's terminal status.
	GoldenStatus iss.Status
	budget       uint64

	// cycleRef, when nonzero, pins the engine to the RTL cycle timebase:
	// experiment instants are RTL cycles out of a golden run of cycleRef
	// cycles, mapped onto instruction indices by the golden-length
	// ratio. Zero means instants are instruction indices already.
	cycleRef uint64
	// injectAt is the fixed injection instant in instructions;
	// injectExt is the same instant in the externally visible timebase
	// (RTL cycles when pinned, instructions otherwise).
	injectAt  uint64
	injectExt uint64
	// pulseTicks is the SETPulse hold window in instructions.
	pulseTicks uint64

	baseImg *mem.Image

	ckptOnce sync.Once
	ckpt     *issCheckpoint

	nodesOnce [2]sync.Once
	nodesVal  [2][]NodeInfo

	met issMetrics
}

type issMetrics struct{ experiments *obs.Counter }

func newISSMetrics(r *obs.Registry) issMetrics {
	return issMetrics{experiments: r.Counter("iss_engine_experiments_total",
		"Fault-injection experiments executed and classified by the ISS prediction engine.")}
}

// NewISSRunner builds the golden reference by running the program on a
// clean emulator. cycleRef pins the engine to an external RTL cycle
// timebase (the RTL golden run's length in cycles) and fixedCycle is
// then the fixed injection instant in that timebase; both zero leave
// the engine in its native instruction timebase, where Options
// instants are interpreted as instruction indices.
func NewISSRunner(p *asm.Program, opts Options, cycleRef, fixedCycle uint64) (*ISSRunner, error) {
	if opts.BudgetFactor == 0 {
		opts.BudgetFactor = 3
	}
	if opts.ExtraCycles == 0 {
		opts.ExtraCycles = 10000
	}
	if opts.PulseCycles == 0 {
		opts.PulseCycles = 1
	}
	if math.IsNaN(opts.InjectAtFraction) || math.IsInf(opts.InjectAtFraction, 0) ||
		opts.InjectAtFraction < 0 || opts.InjectAtFraction >= 1 {
		return nil, fmt.Errorf("fault: InjectAtFraction %v outside [0,1)", opts.InjectAtFraction)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	r := &ISSRunner{prog: p, opts: opts, cycleRef: cycleRef, met: newISSMetrics(opts.Obs)}
	r.baseImg = m.Snapshot()
	cpu := r.freshCPU()
	st := cpu.Run(200_000_000)
	if st != iss.StatusExited {
		return nil, fmt.Errorf("fault: ISS golden run did not exit: %v", st)
	}
	r.golden = cpu.Bus.Trace
	r.GoldenInsts = cpu.Icount
	r.GoldenStatus = st
	switch {
	case cycleRef != 0:
		r.injectExt = fixedCycle
		r.injectAt = r.mapTicks(fixedCycle)
	case opts.InjectAtFraction > 0:
		r.injectAt = uint64(opts.InjectAtFraction * float64(r.GoldenInsts))
		r.injectExt = r.injectAt
	default:
		r.injectAt = opts.InjectAtCycle
		r.injectExt = r.injectAt
	}
	r.opts.InjectAtCycle = r.injectExt
	r.budget = r.GoldenInsts*r.opts.BudgetFactor + r.opts.ExtraCycles
	r.pulseTicks = r.opts.PulseCycles
	if cycleRef != 0 {
		if r.pulseTicks = r.mapTicks(r.opts.PulseCycles); r.pulseTicks == 0 {
			r.pulseTicks = 1
		}
	}
	return r, nil
}

func (r *ISSRunner) freshCPU() *iss.CPU {
	return iss.New(mem.NewBus(r.baseImg.Fork()), r.prog.Entry)
}

// mapTicks converts an externally-timed instant into an instruction
// index: the identity in native mode, the golden-length ratio when the
// engine is pinned to the RTL cycle timebase. Golden runs are bounded
// by the 2e8-instruction budget, so the product cannot overflow.
func (r *ISSRunner) mapTicks(c uint64) uint64 {
	if r.cycleRef == 0 {
		return c
	}
	return c * r.GoldenInsts / r.cycleRef
}

// Golden returns the clean off-core trace.
func (r *ISSRunner) Golden() *mem.Trace { return &r.golden }

// GoldenTicks returns the golden run length in the engine's external
// timebase: RTL cycles when pinned, executed instructions otherwise.
func (r *ISSRunner) GoldenTicks() uint64 {
	if r.cycleRef != 0 {
		return r.cycleRef
	}
	return r.GoldenInsts
}

// Nodes enumerates the injectable nodes of a target — the identical
// list the RTL engine yields, because node identity is a property of
// the design, not the engine.
func (r *ISSRunner) Nodes(target Target) []NodeInfo {
	i := 0
	if target == TargetCMEM {
		i = 1
	}
	r.nodesOnce[i].Do(func() {
		r.nodesVal[i] = enumerateNodes(r.prog.Entry, target)
	})
	return r.nodesVal[i]
}

// ScheduleTransients assigns transient experiments their instants over
// [fixed instant, golden length) in the engine's external timebase,
// keyed by (seed, absolute index). When pinned to the RTL timebase the
// window and sampler match the RTL engine's exactly, so both engines
// schedule the byte-identical instants for the same experiment list.
func (r *ISSRunner) ScheduleTransients(exps []Experiment, seed int64) {
	lo, hi := r.injectExt, r.GoldenTicks()
	for i := range exps {
		if exps[i].Model.Transient() {
			exps[i].AtCycle = transientCycle(seed, i, lo, hi)
		}
	}
}

// issCheckpoint is the forkable golden-run state at the fixed injection
// instant: the full architectural state (the CPU is a value type apart
// from its bus), the memory image, and the off-core trace position.
type issCheckpoint struct {
	cpu      iss.CPU // Bus and OnInst nilled; restored per fork
	img      *mem.Image
	writes   int
	exited   bool
	exitCode uint32
}

// Checkpointed reports whether experiments fork from the golden-run
// checkpoint instead of re-emulating from reset.
func (r *ISSRunner) Checkpointed() bool {
	return !r.opts.NoCheckpoint && r.injectAt != 0
}

// PrepareCheckpoint captures the checkpoint eagerly (benchmarks call it
// to keep the one-time warm-up out of timed regions).
func (r *ISSRunner) PrepareCheckpoint() { r.checkpoint() }

func (r *ISSRunner) checkpoint() *issCheckpoint {
	if !r.Checkpointed() {
		return nil
	}
	r.ckptOnce.Do(func() { r.ckpt = r.capture() })
	return r.ckpt
}

func (r *ISSRunner) capture() *issCheckpoint {
	cpu := r.freshCPU()
	bus := cpu.Bus
	for cpu.Icount < r.injectAt && cpu.Status() == iss.StatusRunning {
		cpu.Step()
	}
	snap := *cpu
	snap.Bus, snap.OnInst = nil, nil
	return &issCheckpoint{
		cpu:      snap,
		img:      bus.Mem.Snapshot(),
		writes:   len(bus.Trace.Writes),
		exited:   bus.Trace.Exited,
		exitCode: bus.Trace.ExitCode,
	}
}

// victim is the architectural injection point an RTL node maps onto: a
// register (g1-g7 or the current window's r8-r31 — never g0, which
// reads zero architecturally) and a bit position. The mapping is a
// fixed hash of the node's identity so the same node perturbs the same
// state in every process — another face of the determinism rule.
type victim struct {
	reg int
	bit uint
}

func victimOf(n rtl.Node) victim {
	h := splitmix64(strHash(n.Name) + uint64(n.Word)*0x9e3779b97f4a7c15)
	return victim{reg: 1 + int(h%31), bit: uint(n.Bit) & 31}
}

// strHash is FNV-1a over the node name — stable, dependency-free, and
// frozen for the same reason splitmix64 is.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func (v victim) read(cpu *iss.CPU) uint32 { return cpu.Reg(v.reg) >> v.bit & 1 }

func (v victim) force(cpu *iss.CPU, bit uint32) {
	old := cpu.Reg(v.reg)
	cpu.SetReg(v.reg, old&^(1<<v.bit)|bit<<v.bit)
}

func (v victim) flip(cpu *iss.CPU) {
	cpu.SetReg(v.reg, cpu.Reg(v.reg)^(1<<v.bit))
}

// armAt returns the externally-timed instant at which the experiment's
// fault is applied: the sampled per-experiment instant for transient
// models, the fixed instant otherwise.
func (r *ISSRunner) armAt(e Experiment) uint64 {
	if e.Model.Transient() {
		return e.AtCycle
	}
	return r.injectExt
}

// RunOne executes a single injection experiment on the emulator. The
// structure mirrors Runner.RunOne: fork from the golden checkpoint when
// the instant allows it, otherwise re-emulate from reset, then advance
// to the instant, apply the fault model at the node's architectural
// victim, and classify against the golden off-core trace.
func (r *ISSRunner) RunOne(e Experiment) Result {
	atExt := r.armAt(e)
	at := r.mapTicks(atExt)
	ck := r.checkpoint()
	if ck != nil && at < r.injectAt {
		ck = nil // transient sampled before the fork point
	}
	var cpu *iss.CPU
	start := 0
	if ck != nil {
		c := ck.cpu
		cpu = &c
		cpu.Bus = mem.NewBus(ck.img.Fork())
		cpu.Bus.Trace.Exited, cpu.Bus.Trace.ExitCode = ck.exited, ck.exitCode
		start = ck.writes
	} else {
		cpu = r.freshCPU()
	}
	c := watchTrace(&r.golden, cpu.Bus, func() uint64 { return cpu.Icount }, start)
	return r.finish(cpu, c, e, at, atExt)
}

// finish advances the clean emulation to the injection instant, applies
// the fault model at the node's victim and runs to classification.
// Permanent models re-force the victim bit before every instruction; an
// open line freezes the bit at the value it carried at the instant; a
// BitFlip mutates state once; a SETPulse forces the complement for the
// pulse window and then releases. Latency and run length are computed
// in instructions and the reported InjectAt echoes the external instant.
func (r *ISSRunner) finish(cpu *iss.CPU, c *comparator, e Experiment, at, atExt uint64) Result {
	r.met.experiments.Inc()
	res := Result{
		Fault:    rtl.Fault{Node: e.Node.Node, Model: e.Model},
		Unit:     e.Node.Unit,
		Latency:  -1,
		InjectAt: atExt,
	}
	for cpu.Icount < at && cpu.Status() == iss.StatusRunning {
		cpu.Step()
	}
	v := victimOf(e.Node.Node)
	var hold func()
	holdUntil := uint64(math.MaxUint64)
	switch e.Model {
	case rtl.StuckAt0:
		hold = func() { v.force(cpu, 0) }
	case rtl.StuckAt1:
		hold = func() { v.force(cpu, 1) }
	case rtl.OpenLine:
		frozen := v.read(cpu)
		hold = func() { v.force(cpu, frozen) }
	case rtl.BitFlip:
		v.flip(cpu)
	case rtl.SETPulse:
		glitch := v.read(cpu) ^ 1
		hold = func() { v.force(cpu, glitch) }
		holdUntil = cpu.Icount + r.pulseTicks
	}
	for cpu.Status() == iss.StatusRunning && cpu.Icount < r.budget &&
		(r.opts.NoEarlyExit || c.mismatchAt < 0) {
		if hold != nil && cpu.Icount < holdUntil {
			hold()
		}
		cpu.Step()
	}
	classifyRun(&res, &r.golden, cpu.Status(), cpu.Icount, cpu.Bus, c, at)
	res.InjectAt = atExt
	return res
}

// Campaign runs the experiments across workers and returns results in
// input order.
func (r *ISSRunner) Campaign(exps []Experiment, workers int) []Result {
	results, _, _ := r.CampaignStopContext(context.Background(), exps, workers, nil, nil)
	return results
}

// CampaignStopContext runs the experiments across workers with the same
// tap/stop/cancellation contract as Runner.CampaignStopContext. The ISS
// engine has no bit-parallel mode, so the dispatch granule is always
// one experiment.
func (r *ISSRunner) CampaignStopContext(ctx context.Context, exps []Experiment, workers int,
	tap func(i int, res Result), stop func(done, failures int) bool) ([]Result, []bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(exps))
	ran := make([]bool, len(exps))
	cctx := ctx
	var cancel context.CancelFunc
	if stop != nil {
		cctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	var mu sync.Mutex
	done, failures := 0, 0
	err := runIndexed(cctx, len(exps), workers, func(i int) {
		res := r.RunOne(exps[i])
		results[i] = res
		mu.Lock()
		ran[i] = true
		done++
		if res.Outcome.IsFailure() {
			failures++
		}
		d, f := done, failures
		mu.Unlock()
		if tap != nil {
			tap(i, res)
		}
		if stop != nil && stop(d, f) {
			cancel()
		}
	})
	if err != nil && ctx.Err() == nil {
		err = nil // halt came from the stop rule: a successful outcome
	}
	return results, ran, err
}
