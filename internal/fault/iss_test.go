package fault

import (
	"reflect"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

func newISSRunner(t *testing.T, opts Options, cycleRef, fixedCycle uint64) *ISSRunner {
	t.Helper()
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewISSRunner(w.Program, opts, cycleRef, fixedCycle)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestISSGoldenRunExits(t *testing.T) {
	r := newISSRunner(t, Options{}, 0, 0)
	if !r.Golden().Exited {
		t.Fatal("ISS golden trace did not exit")
	}
	if r.GoldenInsts == 0 {
		t.Fatal("zero golden instruction count")
	}
	if got, want := r.GoldenTicks(), r.GoldenInsts; got != want {
		t.Fatalf("native GoldenTicks = %d, want GoldenInsts %d", got, want)
	}
}

func TestISSNodesMatchRTL(t *testing.T) {
	ir := newISSRunner(t, Options{}, 0, 0)
	rr := newRunner(t, "excerptA", workloads.Config{})
	for _, target := range []Target{TargetIU, TargetCMEM} {
		if !reflect.DeepEqual(ir.Nodes(target), rr.Nodes(target)) {
			t.Fatalf("%v node enumeration diverges between engines", target)
		}
	}
}

// The ISS engine must schedule the byte-identical transient instants the
// RTL engine does when pinned to its cycle timebase — the hybrid router
// feeds one experiment list to both sides.
func TestISSScheduleMatchesRTLWhenPinned(t *testing.T) {
	rr := newRunner(t, "excerptA", workloads.Config{})
	rr.opts.InjectAtCycle = rr.GoldenCycles / 3
	ir := newISSRunner(t, Options{}, rr.GoldenCycles, rr.InjectCycle())

	nodes := SampleNodes(rr.Nodes(TargetIU), 8, 1)
	a := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	b := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	rr.ScheduleTransients(a, 42)
	ir.ScheduleTransients(b, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pinned ISS transient schedule diverges from RTL schedule")
	}
}

// Checkpoint-forked and from-reset ISS execution must classify
// identically — the same engine-equivalence contract the RTL runner
// keeps.
func TestISSCheckpointEquivalence(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewISSRunner(w.Program, Options{InjectAtFraction: 0.4}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewISSRunner(w.Program, Options{InjectAtFraction: 0.4, NoCheckpoint: true}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Checkpointed() || plain.Checkpointed() {
		t.Fatal("checkpoint engine gating wrong")
	}
	nodes := SampleNodes(ck.Nodes(TargetIU), 16, 7)
	exps := Expand(nodes, rtl.FaultModels()...)
	ck.ScheduleTransients(exps, 7)
	plain.ScheduleTransients(exps, 7)
	a := ck.Campaign(exps, 4)
	b := plain.Campaign(exps, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("checkpointed ISS campaign diverges from from-reset campaign")
	}
}

func TestISSRunOneDeterministic(t *testing.T) {
	r := newISSRunner(t, Options{InjectAtFraction: 0.5}, 0, 0)
	nodes := SampleNodes(r.Nodes(TargetIU), 6, 3)
	exps := Expand(nodes, rtl.FaultModels()...)
	r.ScheduleTransients(exps, 3)
	for _, e := range exps {
		if a, b := r.RunOne(e), r.RunOne(e); !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic result for %v: %+v vs %+v", e.Node.Node, a, b)
		}
	}
}

func TestAuditSample(t *testing.T) {
	for i := 0; i < 100; i++ {
		if !AuditSample(1, i, 1.0) {
			t.Fatal("fraction 1.0 must audit everything")
		}
		if AuditSample(1, i, 0) {
			t.Fatal("fraction 0 must audit nothing")
		}
		if AuditSample(5, i, 0.3) != AuditSample(5, i, 0.3) {
			t.Fatal("audit draw not deterministic")
		}
	}
	// The draw is keyed by (seed, index) alone, and roughly respects the
	// fraction over a large sample.
	n := 0
	for i := 0; i < 10000; i++ {
		if AuditSample(9, i, 0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Fatalf("audit fraction 0.25 selected %d/10000", n)
	}
	// Different seeds select different sets.
	same := 0
	for i := 0; i < 1000; i++ {
		if AuditSample(1, i, 0.5) == AuditSample(2, i, 0.5) {
			same++
		}
	}
	if same > 950 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 draws", same)
	}
}
