package fault

import "repro/internal/obs"

// engineMetrics is the fault engine's counter set. All handles are
// nil-safe no-ops when the runner was built without a registry, so the
// count points below cost one nil check on the library path; `live`
// additionally gates the few points that would otherwise pay for a
// time.Now() just to discard it.
type engineMetrics struct {
	live bool

	// experiments counts every classified experiment, whichever engine
	// (scalar, forked, batched) resolved it.
	experiments *obs.Counter
	// lanesPlanned/Activated/Free follow the PPSFP funnel: lanes placed
	// into batch granules, lanes whose fault was read divergently during
	// the witnessed pass, and lanes finalized from the golden trajectory
	// without a single faulted cycle.
	lanesPlanned   *obs.Counter
	lanesActivated *obs.Counter
	lanesFree      *obs.Counter
	// snapshots counts lane materializations from periodic pass snapshots
	// (forks plus reconvergence teleports).
	snapshots *obs.Counter
	// fallbacks counts experiments resolved through runScalarFallback —
	// nonzero only when a witnessed pass failed to set up.
	fallbacks *obs.Counter
	// goldenCycles/goldenSeconds accumulate witnessed golden-pass work;
	// their rate quotient is the engine's golden-pass cycles/s.
	goldenCycles  *obs.Counter
	goldenSeconds *obs.Counter
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		live: r != nil,
		experiments: r.Counter("engine_experiments_total",
			"Fault-injection experiments executed and classified."),
		lanesPlanned: r.Counter("engine_batch_lanes_planned_total",
			"Experiments placed into bit-parallel batch lanes."),
		lanesActivated: r.Counter("engine_batch_lanes_activated_total",
			"Batch lanes whose fault was read divergently during the witnessed pass."),
		lanesFree: r.Counter("engine_batch_lanes_free_total",
			"Batch lanes finalized from the golden trajectory without scalar simulation."),
		snapshots: r.Counter("engine_snapshot_materializations_total",
			"Lane materializations replayed from periodic golden-pass snapshots."),
		fallbacks: r.Counter("engine_scalar_fallbacks_total",
			"Experiments resolved through the scalar fallback after a batch pass setup failure."),
		goldenCycles: r.Counter("engine_golden_pass_cycles_total",
			"Cycles simulated by witnessed golden passes."),
		goldenSeconds: r.Counter("engine_golden_pass_seconds_total",
			"Wall-clock seconds spent in witnessed golden passes."),
	}
}
