package fault

import (
	"reflect"
	"testing"

	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestExpandOrderGolden locks the enumeration order the shard partition
// and the job service's content addressing depend on: models outer,
// nodes inner, both in caller order. Extending the model list must never
// reorder an existing expansion.
func TestExpandOrderGolden(t *testing.T) {
	na := NodeInfo{Node: rtl.Node{Name: "a", Bit: 0}}
	nb := NodeInfo{Node: rtl.Node{Name: "b", Bit: 1}}
	got := Expand([]NodeInfo{na, nb}, rtl.AllFaultModels()...)
	want := []Experiment{
		{Node: na, Model: rtl.StuckAt0}, {Node: nb, Model: rtl.StuckAt0},
		{Node: na, Model: rtl.StuckAt1}, {Node: nb, Model: rtl.StuckAt1},
		{Node: na, Model: rtl.OpenLine}, {Node: nb, Model: rtl.OpenLine},
		{Node: na, Model: rtl.BitFlip}, {Node: nb, Model: rtl.BitFlip},
		{Node: na, Model: rtl.SETPulse}, {Node: nb, Model: rtl.SETPulse},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Expand order drifted:\n got %v\nwant %v", got, want)
	}
}

// TestScheduleTransientsDeterministic pins the determinism rule of
// sharded transient campaigns: injection cycles are a pure function of
// (seed, absolute experiment index, window), so re-expanding and
// re-scheduling — as every shard worker does — reproduces the identical
// instants, and any slice of the scheduled list carries them unchanged.
func TestScheduleTransientsDeterministic(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(w.Program, Options{InjectAtFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	nodes := SampleNodes(r.Nodes(TargetIU), 8, 3)
	exps := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	r.ScheduleTransients(exps, 9)

	again := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	r.ScheduleTransients(again, 9)
	if !reflect.DeepEqual(exps, again) {
		t.Fatal("re-scheduling the same expansion diverged")
	}

	lo, hi := r.opts.InjectAtCycle, r.GoldenCycles
	distinct := map[uint64]bool{}
	for i, e := range exps {
		if e.AtCycle < lo || e.AtCycle >= hi {
			t.Fatalf("experiment %d scheduled at %d outside [%d,%d)", i, e.AtCycle, lo, hi)
		}
		distinct[e.AtCycle] = true
	}
	if len(distinct) < 2 {
		t.Fatal("scheduling collapsed every instant onto one cycle")
	}

	other := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
	r.ScheduleTransients(other, 10)
	if reflect.DeepEqual(exps, other) {
		t.Fatal("seed does not influence the schedule")
	}

	// Permanent experiments are never touched.
	perm := Expand(nodes, rtl.StuckAt1)
	r.ScheduleTransients(perm, 9)
	for _, e := range perm {
		if e.AtCycle != 0 {
			t.Fatalf("permanent experiment scheduled at %d", e.AtCycle)
		}
	}
}

// TestTransientEngineEquivalence extends the engine contract to the
// transient models: pooled-checkpointed, fork-per-experiment and both
// from-reset engines must classify a scheduled BitFlip/SETPulse campaign
// bit-identically.
func TestTransientEngineEquivalence(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		opts Options
	}{
		{"pooled-checkpointed", Options{InjectAtFraction: 0.3, PulseCycles: 3}},
		{"fork-per-experiment", Options{InjectAtFraction: 0.3, PulseCycles: 3, NoPool: true}},
		{"pooled-from-reset", Options{InjectAtFraction: 0.3, PulseCycles: 3, NoCheckpoint: true}},
		{"unpooled-from-reset", Options{InjectAtFraction: 0.3, PulseCycles: 3, NoCheckpoint: true, NoPool: true}},
	}
	var ref []Result
	for _, eng := range engines {
		r, err := NewRunner(w.Program, eng.opts)
		if err != nil {
			t.Fatal(err)
		}
		nodes := SampleNodes(r.Nodes(TargetIU), 6, 7)
		exps := Expand(nodes, rtl.BitFlip, rtl.SETPulse)
		r.ScheduleTransients(exps, 5)
		results := r.Campaign(exps, 3)
		if ref == nil {
			ref = results
			continue
		}
		if !reflect.DeepEqual(ref, results) {
			for i := range ref {
				if !reflect.DeepEqual(ref[i], results[i]) {
					t.Errorf("%s: experiment %d (%v@%d) diverged: %+v vs %+v",
						eng.name, i, exps[i].Node.Node, exps[i].AtCycle, ref[i], results[i])
				}
			}
			t.Fatalf("%s: results differ from %s", eng.name, engines[0].name)
		}
	}
}

// TestSETPulseTemporalDependence mirrors the BitFlip temporal test: a
// glitch on the expected-PC register is catastrophic mid-run and silent
// once the exit store has retired, and the forcing must actually release
// after its window (a permanent fault on the same node also fails, so
// the test distinguishes the pulse only through the late injection).
func TestSETPulseTemporalDependence(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A 64-cycle pulse: wide enough that the glitched expected PC is
	// guaranteed to be sampled by the control logic inside the window.
	r, err := NewRunner(w.Program, Options{PulseCycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	node := NodeInfo{Node: rtl.Node{Name: "iu.ctl.exppc", Bit: 4}}
	early := r.RunOne(Experiment{Node: node, Model: rtl.SETPulse, AtCycle: 50})
	if !early.Outcome.IsFailure() {
		t.Errorf("early PC glitch did not fail: %v", early.Outcome)
	}
	if early.InjectAt != 50 {
		t.Errorf("InjectAt = %d, want 50", early.InjectAt)
	}
	late := r.RunOne(Experiment{Node: node, Model: rtl.SETPulse, AtCycle: r.GoldenCycles - 1})
	if late.Outcome != OutcomeNoEffect {
		t.Errorf("post-exit glitch propagated: %v", late.Outcome)
	}
}

// TestSETPulseReleasesOnQuasiStaticWire pins the release semantics at
// campaign level: a single-cycle glitch on a wire that is recomputed
// combinationally every cycle can only corrupt the cycles inside its
// window, so it must not out-fail the permanent stuck-at on the same
// sample.
func TestSETPulseWeakerThanPermanent(t *testing.T) {
	r := newRunner(t, "excerptB", workloads.Config{})
	nodes := SampleNodes(r.Nodes(TargetIU), 48, 11)
	perm := r.Campaign(Expand(nodes, rtl.StuckAt1), 0)
	set := Expand(nodes, rtl.SETPulse)
	r.ScheduleTransients(set, 11)
	trans := r.Campaign(set, 0)
	pfPerm, pfTrans := Pf(perm), Pf(trans)
	t.Logf("permanent Pf=%.3f set-pulse Pf=%.3f", pfPerm, pfTrans)
	if pfTrans > pfPerm+0.05 {
		t.Errorf("set-pulse Pf %.3f exceeds permanent %.3f", pfTrans, pfPerm)
	}
}
