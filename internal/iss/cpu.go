// Package iss implements the functional emulator part of a SPARC V8
// instruction set simulator (the "ISS" of the reproduced paper): an exact
// architectural-state interpreter with register windows, PSR/WIM/TBR/Y,
// delayed control transfer, traps and the full V8 integer instruction set.
//
// The emulator keeps per-instruction-type execution counts, from which the
// instruction-diversity metric is computed (internal/diversity), and
// records its off-core write trace (internal/mem) which serves as the
// golden reference for RTL fault-injection experiments.
package iss

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sparc"
)

// NWindows is the number of register windows, matching the default LEON3
// configuration.
const NWindows = 8

// Trap types (SPARC V8 tt values).
const (
	TrapReset           = 0x00
	TrapIllegalInst     = 0x02
	TrapPrivilegedInst  = 0x03
	TrapWindowOverflow  = 0x05
	TrapWindowUnderflow = 0x06
	TrapMemNotAligned   = 0x07
	TrapTagOverflow     = 0x0a
	TrapDivByZero       = 0x2a
	TrapInstBase        = 0x80 // ta N traps to 0x80+N
)

// PSR holds the processor state register fields relevant to the IU.
type PSR struct {
	ICC sparc.CC
	EC  bool  // coprocessor enable (unused, kept for wrpsr fidelity)
	EF  bool  // FPU enable (unused)
	PIL uint8 // processor interrupt level
	S   bool  // supervisor
	PS  bool  // previous supervisor
	ET  bool  // enable traps
	CWP uint8 // current window pointer
}

// Bits packs the PSR into its architectural encoding.
func (p PSR) Bits() uint32 {
	v := uint32(0x00f<<24) | p.ICC.Bits()<<20 // impl/ver fields fixed
	if p.EC {
		v |= 1 << 13
	}
	if p.EF {
		v |= 1 << 12
	}
	v |= uint32(p.PIL&0xf) << 8
	if p.S {
		v |= 1 << 7
	}
	if p.PS {
		v |= 1 << 6
	}
	if p.ET {
		v |= 1 << 5
	}
	v |= uint32(p.CWP) & 0x1f
	return v
}

// PSRFromBits unpacks an architectural PSR value.
func PSRFromBits(v uint32) PSR {
	return PSR{
		ICC: sparc.CCFromBits(v >> 20 & 0xf),
		EC:  v&(1<<13) != 0,
		EF:  v&(1<<12) != 0,
		PIL: uint8(v >> 8 & 0xf),
		S:   v&(1<<7) != 0,
		PS:  v&(1<<6) != 0,
		ET:  v&(1<<5) != 0,
		CWP: uint8(v & 0x1f % NWindows),
	}
}

// Status is the terminal state of a run.
type Status int

// Run outcomes.
const (
	StatusRunning   Status = iota
	StatusExited           // program wrote ExitAddr
	StatusErrorMode        // trap taken while ET=0 (processor error mode)
	StatusBudget           // instruction budget exhausted
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusExited:
		return "exited"
	case StatusErrorMode:
		return "error-mode"
	case StatusBudget:
		return "budget-exhausted"
	}
	return "status?"
}

// CPU is the architectural state of the functional emulator.
type CPU struct {
	Bus *mem.Bus

	PC, NPC uint32
	PSR     PSR
	WIM     uint32
	TBR     uint32
	Y       uint32

	g  [8]uint32             // global registers (g0 always reads zero)
	rf [NWindows * 16]uint32 // windowed registers: ins+locals per window

	annul bool // next instruction is annulled

	// Icount is the number of executed (non-annulled) instructions.
	Icount uint64
	// Annulled counts annulled delay slots (they consume a pipeline slot
	// but are not executed).
	Annulled uint64
	// OpCounts is the per-instruction-type execution histogram from which
	// diversity is computed.
	OpCounts [sparc.NumOps]uint64

	// OnInst, when non-nil, observes every executed instruction.
	OnInst func(pc uint32, in sparc.Inst)

	status   Status
	trapType uint8
	trapped  bool // current instruction raised a trap
}

// New returns a CPU in the post-reset state, executing from entry in
// supervisor mode with traps enabled and all windows free except the
// current one's invalid mask cleared.
func New(bus *mem.Bus, entry uint32) *CPU {
	c := &CPU{Bus: bus}
	c.Reset(entry)
	return c
}

// Reset restores the post-reset architectural state.
func (c *CPU) Reset(entry uint32) {
	c.PC = entry
	c.NPC = entry + 4
	// Start in the highest window with window 0 marked invalid, so that
	// NWindows-2 nested saves are available before a spill trap.
	c.PSR = PSR{S: true, ET: true, CWP: NWindows - 1}
	c.WIM = 1
	c.TBR = 0
	c.Y = 0
	c.g = [8]uint32{}
	c.rf = [NWindows * 16]uint32{}
	c.annul = false
	c.Icount = 0
	c.Annulled = 0
	c.OpCounts = [sparc.NumOps]uint64{}
	c.status = StatusRunning
}

// physIndex maps architectural register r (8..31) of window w to its slot
// in rf. Each window owns 16 slots: its 8 ins followed by its 8 locals.
// The outs of window w are the ins of window (w-1) mod NWindows, which is
// the window SAVE switches to.
func physIndex(w uint8, r int) int {
	switch {
	case r < 16: // outs
		return int((w+NWindows-1)%NWindows)*16 + (r - 8)
	case r < 24: // locals
		return int(w)*16 + 8 + (r - 16)
	default: // ins
		return int(w)*16 + (r - 24)
	}
}

// Reg reads architectural register r in the current window.
func (c *CPU) Reg(r int) uint32 {
	if r < 8 {
		if r == 0 {
			return 0
		}
		return c.g[r]
	}
	return c.rf[physIndex(c.PSR.CWP, r)]
}

// SetReg writes architectural register r in the current window.
func (c *CPU) SetReg(r int, v uint32) {
	if r < 8 {
		if r != 0 {
			c.g[r] = v
		}
		return
	}
	c.rf[physIndex(c.PSR.CWP, r)] = v
}

// RegInWindow reads register r as seen from window w (used by tests and by
// the RTL lockstep checker).
func (c *CPU) RegInWindow(w uint8, r int) uint32 {
	if r < 8 {
		if r == 0 {
			return 0
		}
		return c.g[r]
	}
	return c.rf[physIndex(w, r)]
}

// Status returns the terminal status of the CPU.
func (c *CPU) Status() Status { return c.status }

// TrapTaken returns the tt value of the trap that put the CPU in error
// mode, if Status() == StatusErrorMode.
func (c *CPU) TrapTaken() uint8 { return c.trapType }

// Diversity returns the number of distinct instruction types executed —
// the paper's headline metric.
func (c *CPU) Diversity() int {
	n := 0
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		if c.OpCounts[op] > 0 {
			n++
		}
	}
	return n
}

// UnitDiversity returns Dm: for each functional unit, the number of
// distinct instruction types that exercise it.
func (c *CPU) UnitDiversity() [sparc.NumUnits]int {
	var d [sparc.NumUnits]int
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		if c.OpCounts[op] == 0 {
			continue
		}
		for _, u := range sparc.UnitsOf(op).Units() {
			d[u]++
		}
	}
	return d
}

// MemoryInstCount returns the number of executed load/store instructions.
func (c *CPU) MemoryInstCount() uint64 {
	var n uint64
	for op := sparc.Op(1); op < sparc.NumOps; op++ {
		if op.IsMemory() {
			n += c.OpCounts[op]
		}
	}
	return n
}

func (c *CPU) String() string {
	return fmt.Sprintf("cpu{pc=%08x npc=%08x cwp=%d icc=%04b icount=%d %v}",
		c.PC, c.NPC, c.PSR.CWP, c.PSR.ICC.Bits(), c.Icount, c.status)
}
