package iss

import (
	"testing"

	"repro/internal/sparc"
)

func TestTaggedArithmetic(t *testing.T) {
	// taddcc/tsubcc set V when either operand has nonzero tag bits.
	c := runFrag(t, `
	mov 4, %o0
	mov 8, %o1
	taddcc %o0, %o1, %o2   ! clean tags: V=0
	bvs bad1
	nop
	mov 5, %o3             ! tag bits set
	taddcc %o3, %o1, %o4
	bvc bad2
	nop
	tsubcc %o1, %o0, %o5   ! clean
	ba done
	nop
bad1:	mov 0xe1, %l0
	ba done
	nop
bad2:	mov 0xe2, %l0
done:
`)
	if c.Reg(16) != 0 {
		t.Errorf("tagged overflow detection failed: marker %#x", c.Reg(16))
	}
	if c.Reg(10) != 12 || c.Reg(12) != 13 || c.Reg(13) != 4 {
		t.Errorf("tagged results: %d %d %d", c.Reg(10), c.Reg(12), c.Reg(13))
	}
}

func TestUserModePrivilegeTraps(t *testing.T) {
	// Drop to user mode via rett with PS=0, then attempt rdpsr: must take
	// a privileged-instruction trap through the handler.
	c := run(t, `
start:
	set table, %g1
	wr %g1, %tbr
	ta 0                   ! enter the trap path to gain a clean rett
	nop
user:
	rd %psr, %o0           ! privileged: traps with tt=3
	nop
dead:
	ba dead
	nop
	.align 4096
table:
	.org table+0x30        ! tt=3 privileged_instruction
	ba priv_handler
	nop
	.org table+0x800       ! tt=0x80 (ta 0)
	! Clear PS so rett returns to user mode.
	rd %psr, %l4
	andn %l4, 0x40, %l4    ! PS := 0
	wr %l4, 0, %psr
	jmpl %l2, %g0          ! continue at 'user'
	rett %l2+4
	.org table+0xa00
priv_handler:
	set 0x90000000, %l5
	mov 1, %l6
	st %l6, [%l5]          ! exit code 1 proves we trapped
	nop
`, 100000)
	if c.Status() != StatusExited {
		t.Fatalf("status %v trap %#x cpu %v", c.Status(), c.TrapTaken(), c)
	}
	if c.Bus.ExitCode() != 1 {
		t.Errorf("exit code %d, want 1 (privileged trap path)", c.Bus.ExitCode())
	}
	if c.TrapTaken() != TrapPrivilegedInst {
		t.Errorf("tt = %#x, want %#x", c.TrapTaken(), TrapPrivilegedInst)
	}
}

func TestWrpsrInvalidCWPTraps(t *testing.T) {
	c := run(t, `
start:
	rd %psr, %o0
	or %o0, 0x1f, %o1     ! CWP=31 >= NWindows
	wr %o1, 0, %psr
`, 1000)
	if c.Status() != StatusErrorMode {
		t.Fatalf("status %v", c.Status())
	}
}

func TestDivisionOverflowClamps(t *testing.T) {
	c := runFrag(t, `
	mov 1, %o0
	wr %o0, %y            ! Y=1 -> dividend = 2^32 + rs1
	mov 0, %o1
	udiv %o1, 2, %o2      ! (1<<32)/2 = 2^31 fits
	mov 1, %o3
	wr %o3, %y
	udivcc %o1, 1, %o4    ! 2^32 overflows -> clamp all ones, V=1
	bvs ovf_ok
	nop
	mov 0xbad, %l0
ovf_ok:
	sra %o1, 31, %g0      ! nop-ish
`)
	if c.Reg(10) != 1<<31 {
		t.Errorf("udiv = %#x", c.Reg(10))
	}
	if c.Reg(12) != 0xffffffff {
		t.Errorf("overflow clamp = %#x", c.Reg(12))
	}
	if c.Reg(16) == 0xbad {
		t.Error("V flag not set on division overflow")
	}
}

func TestSdivNegativeClamp(t *testing.T) {
	c := runFrag(t, `
	mov -1, %o0
	wr %o0, %y            ! Y = 0xffffffff (sign extension of negative)
	set 0x80000000, %o1   ! dividend low
	sdiv %o1, 1, %o2      ! -2^31 / 1 = -2^31, representable
`)
	if got := int32(c.Reg(10)); got != -2147483648 {
		t.Errorf("sdiv = %d", got)
	}
}

func TestOpcodeCoverageOfSuite(t *testing.T) {
	// Across the whole automotive suite, a large share of the integer ISA
	// must actually be exercised — this is what gives the diversity
	// plateau its meaning.
	seen := map[sparc.Op]bool{}
	for _, frag := range []string{
		`
	mov 3, %o0
	orn %g0, %o0, %o1
	orncc %o1, %o0, %o2
	andncc %o2, 1, %o3
	xnorcc %o3, %o0, %o4
	subxcc %o4, 0, %o5
	addxcc %o5, 1, %l0
	umulcc %l0, 3, %l1
	smulcc %l1, 3, %l2
	wr %g0, %y
	udivcc %l2, 7, %l3
	wr %g0, %y
	sdivcc %l3, 3, %l4
	mulscc %l4, %o0, %l5
`,
	} {
		c := runFrag(t, frag)
		for op := sparc.Op(1); op < sparc.NumOps; op++ {
			if c.OpCounts[op] > 0 {
				seen[op] = true
			}
		}
	}
	for _, op := range []sparc.Op{
		sparc.OpORN, sparc.OpORNCC, sparc.OpANDNCC, sparc.OpXNORCC,
		sparc.OpSUBXCC, sparc.OpADDXCC, sparc.OpUMULCC, sparc.OpSMULCC,
		sparc.OpUDIVCC, sparc.OpSDIVCC, sparc.OpMULSCC,
	} {
		if !seen[op] {
			t.Errorf("op %v not exercised", op)
		}
	}
}

func TestAnnulledCounter(t *testing.T) {
	c := runFrag(t, `
	ba,a over
	mov 1, %o0
over:
	cmp %g0, %g0
	bne,a never
	mov 2, %o1
never:
`)
	if c.Annulled != 2 {
		t.Errorf("annulled = %d, want 2", c.Annulled)
	}
}
