package iss

import "repro/internal/sparc"

// trap redirects control to the trap vector. A trap taken while traps are
// disabled puts the processor in error mode (execution halts), which the
// failure comparator observes as a truncated off-core trace.
func (c *CPU) trap(tt uint8) {
	c.trapped = true
	if !c.PSR.ET {
		c.status = StatusErrorMode
		c.trapType = tt
		return
	}
	c.PSR.ET = false
	c.PSR.PS = c.PSR.S
	c.PSR.S = true
	c.PSR.CWP = (c.PSR.CWP + NWindows - 1) % NWindows
	c.SetReg(sparc.RegL1, c.PC)
	c.SetReg(sparc.RegL2, c.NPC)
	c.TBR = c.TBR&0xfffff000 | uint32(tt)<<4
	c.PC = c.TBR
	c.NPC = c.TBR + 4
	c.annul = false
	c.trapType = tt
}

// advance moves sequentially past the current instruction.
func (c *CPU) advance() {
	c.PC = c.NPC
	c.NPC += 4
}

// Step executes one instruction (or consumes one annulled delay slot).
func (c *CPU) Step() {
	if c.status != StatusRunning {
		return
	}
	if c.PC&3 != 0 {
		c.trap(TrapMemNotAligned)
		return
	}
	word := c.Bus.Fetch32(c.PC)
	if c.annul {
		c.annul = false
		c.Annulled++
		c.advance()
		return
	}
	in := sparc.Decode(word)
	pc := c.PC
	c.trapped = false
	c.exec(in)
	// A trapped instruction did not complete: it re-executes after the
	// handler returns and must not be counted twice.
	if !c.trapped && (c.status == StatusRunning || c.status == StatusExited) {
		c.Icount++
		c.OpCounts[in.Op]++
		if c.OnInst != nil {
			c.OnInst(pc, in)
		}
	}
	if c.Bus.Exited() {
		c.status = StatusExited
	}
}

// operand2 evaluates the second ALU operand (register or immediate).
func (c *CPU) operand2(in *sparc.Inst) uint32 {
	if in.Imm {
		return uint32(in.Simm13)
	}
	return c.Reg(in.Rs2)
}

func (c *CPU) exec(in sparc.Inst) {
	op := in.Op
	switch {
	case op == sparc.OpUnknown:
		c.trap(TrapIllegalInst)
	case op == sparc.OpSETHI:
		c.SetReg(in.Rd, uint32(in.Imm22)<<10)
		c.advance()
	case op.IsBicc():
		c.execBicc(in)
	case op == sparc.OpCALL:
		t := in.Target(c.PC)
		c.SetReg(15, c.PC)
		c.PC = c.NPC
		c.NPC = t
	case op.IsTicc():
		if sparc.EvalCond(op.Cond(), c.PSR.ICC) {
			tn := (c.Reg(in.Rs1) + c.operand2(&in)) & 0x7f
			c.trap(uint8(TrapInstBase + tn))
			return
		}
		c.advance()
	case op == sparc.OpJMPL:
		t := c.Reg(in.Rs1) + c.operand2(&in)
		if t&3 != 0 {
			c.trap(TrapMemNotAligned)
			return
		}
		c.SetReg(in.Rd, c.PC)
		c.PC = c.NPC
		c.NPC = t
	case op == sparc.OpRETT:
		c.execRett(in)
	case op == sparc.OpSAVE || op == sparc.OpRESTORE:
		c.execWindow(in)
	case op.IsMemory():
		c.execMem(in)
	default:
		c.execALU(in)
	}
}

func (c *CPU) execBicc(in sparc.Inst) {
	taken := sparc.EvalCond(in.Op.Cond(), c.PSR.ICC)
	if taken {
		t := in.Target(c.PC)
		c.PC = c.NPC
		c.NPC = t
		// Only the unconditional BA annuls its delay slot when taken.
		if in.Annul && in.Op == sparc.OpBA {
			c.annul = true
		}
		return
	}
	if in.Annul {
		c.annul = true
	}
	c.advance()
}

func (c *CPU) execRett(in sparc.Inst) {
	if c.PSR.ET {
		c.trap(TrapIllegalInst)
		return
	}
	if !c.PSR.S {
		c.trap(TrapPrivilegedInst)
		return
	}
	t := c.Reg(in.Rs1) + c.operand2(&in)
	if t&3 != 0 {
		c.trap(TrapMemNotAligned)
		return
	}
	newCWP := (c.PSR.CWP + 1) % NWindows
	if c.WIM&(1<<newCWP) != 0 {
		c.trap(TrapWindowUnderflow)
		return
	}
	c.PSR.CWP = newCWP
	c.PSR.S = c.PSR.PS
	c.PSR.ET = true
	c.PC = c.NPC
	c.NPC = t
}

func (c *CPU) execWindow(in sparc.Inst) {
	var newCWP uint8
	var trapType uint8
	if in.Op == sparc.OpSAVE {
		newCWP = (c.PSR.CWP + NWindows - 1) % NWindows
		trapType = TrapWindowOverflow
	} else {
		newCWP = (c.PSR.CWP + 1) % NWindows
		trapType = TrapWindowUnderflow
	}
	if c.WIM&(1<<newCWP) != 0 {
		c.trap(trapType)
		return
	}
	// Source operands come from the old window, the result goes to rd in
	// the new window.
	v := c.Reg(in.Rs1) + c.operand2(&in)
	c.PSR.CWP = newCWP
	c.SetReg(in.Rd, v)
	c.advance()
}

func (c *CPU) execMem(in sparc.Inst) {
	addr := c.Reg(in.Rs1) + c.operand2(&in)
	op := in.Op
	var align uint32
	switch op {
	case sparc.OpLD, sparc.OpST, sparc.OpSWAP:
		align = 3
	case sparc.OpLDUH, sparc.OpLDSH, sparc.OpSTH:
		align = 1
	case sparc.OpLDD, sparc.OpSTD:
		align = 7
	}
	if addr&align != 0 {
		c.trap(TrapMemNotAligned)
		return
	}
	if (op == sparc.OpLDD || op == sparc.OpSTD) && in.Rd&1 != 0 {
		c.trap(TrapIllegalInst)
		return
	}
	switch op {
	case sparc.OpLD:
		c.SetReg(in.Rd, c.Bus.Read(addr, 4, c.Icount))
	case sparc.OpLDUB:
		c.SetReg(in.Rd, c.Bus.Read(addr, 1, c.Icount))
	case sparc.OpLDSB:
		c.SetReg(in.Rd, uint32(int32(int8(c.Bus.Read(addr, 1, c.Icount)))))
	case sparc.OpLDUH:
		c.SetReg(in.Rd, c.Bus.Read(addr, 2, c.Icount))
	case sparc.OpLDSH:
		c.SetReg(in.Rd, uint32(int32(int16(c.Bus.Read(addr, 2, c.Icount)))))
	case sparc.OpLDD:
		c.SetReg(in.Rd, c.Bus.Read(addr, 4, c.Icount))
		c.SetReg(in.Rd|1, c.Bus.Read(addr+4, 4, c.Icount))
	case sparc.OpST:
		c.Bus.Write(addr, 4, c.Reg(in.Rd), c.Icount)
	case sparc.OpSTB:
		c.Bus.Write(addr, 1, c.Reg(in.Rd)&0xff, c.Icount)
	case sparc.OpSTH:
		c.Bus.Write(addr, 2, c.Reg(in.Rd)&0xffff, c.Icount)
	case sparc.OpSTD:
		c.Bus.Write(addr, 4, c.Reg(in.Rd), c.Icount)
		c.Bus.Write(addr+4, 4, c.Reg(in.Rd|1), c.Icount)
	case sparc.OpLDSTUB:
		c.SetReg(in.Rd, c.Bus.Read(addr, 1, c.Icount))
		c.Bus.Write(addr, 1, 0xff, c.Icount)
	case sparc.OpSWAP:
		old := c.Bus.Read(addr, 4, c.Icount)
		c.Bus.Write(addr, 4, c.Reg(in.Rd), c.Icount)
		c.SetReg(in.Rd, old)
	}
	c.advance()
}

func (c *CPU) execALU(in sparc.Inst) {
	a := c.Reg(in.Rs1)
	b := c.operand2(&in)
	op := in.Op
	var res uint32
	cc := c.PSR.ICC
	setCC := op.SetsCC()
	switch op {
	case sparc.OpADD, sparc.OpADDCC:
		res, cc = sparc.AddCC(a, b, false)
	case sparc.OpADDX, sparc.OpADDXCC:
		res, cc = sparc.AddCC(a, b, c.PSR.ICC.C)
	case sparc.OpSUB, sparc.OpSUBCC:
		res, cc = sparc.SubCC(a, b, false)
	case sparc.OpSUBX, sparc.OpSUBXCC:
		res, cc = sparc.SubCC(a, b, c.PSR.ICC.C)
	case sparc.OpTADDCC:
		res, cc = sparc.AddCC(a, b, false)
		if (a|b)&3 != 0 {
			cc.V = true
		}
	case sparc.OpTSUBCC:
		res, cc = sparc.SubCC(a, b, false)
		if (a|b)&3 != 0 {
			cc.V = true
		}
	case sparc.OpAND, sparc.OpANDCC:
		res = a & b
		cc = sparc.LogicCC(res)
	case sparc.OpANDN, sparc.OpANDNCC:
		res = a &^ b
		cc = sparc.LogicCC(res)
	case sparc.OpOR, sparc.OpORCC:
		res = a | b
		cc = sparc.LogicCC(res)
	case sparc.OpORN, sparc.OpORNCC:
		res = a | ^b
		cc = sparc.LogicCC(res)
	case sparc.OpXOR, sparc.OpXORCC:
		res = a ^ b
		cc = sparc.LogicCC(res)
	case sparc.OpXNOR, sparc.OpXNORCC:
		res = ^(a ^ b)
		cc = sparc.LogicCC(res)
	case sparc.OpSLL:
		res = a << (b & 31)
	case sparc.OpSRL:
		res = a >> (b & 31)
	case sparc.OpSRA:
		res = uint32(int32(a) >> (b & 31))
	case sparc.OpUMUL, sparc.OpUMULCC:
		wide := uint64(a) * uint64(b)
		res = uint32(wide)
		c.Y = uint32(wide >> 32)
		cc = sparc.LogicCC(res)
	case sparc.OpSMUL, sparc.OpSMULCC:
		wide := int64(int32(a)) * int64(int32(b))
		res = uint32(wide)
		c.Y = uint32(uint64(wide) >> 32)
		cc = sparc.LogicCC(res)
	case sparc.OpMULSCC:
		// V8 multiply step: one bit of a Booth-free iterative multiply.
		op1 := a>>1 | boolBit(c.PSR.ICC.N != c.PSR.ICC.V)<<31
		op2 := uint32(0)
		if c.Y&1 != 0 {
			op2 = b
		}
		res, cc = sparc.AddCC(op1, op2, false)
		c.Y = c.Y>>1 | (a&1)<<31
	case sparc.OpUDIV, sparc.OpUDIVCC:
		if b == 0 {
			c.trap(TrapDivByZero)
			return
		}
		wide := uint64(c.Y)<<32 | uint64(a)
		q := wide / uint64(b)
		v := false
		if q > 0xffffffff {
			q = 0xffffffff
			v = true
		}
		res = uint32(q)
		cc = sparc.LogicCC(res)
		cc.V = v
	case sparc.OpSDIV, sparc.OpSDIVCC:
		if b == 0 {
			c.trap(TrapDivByZero)
			return
		}
		wide := int64(uint64(c.Y)<<32 | uint64(a))
		q := wide / int64(int32(b))
		v := false
		if q > 0x7fffffff {
			q = 0x7fffffff
			v = true
		} else if q < -0x80000000 {
			q = -0x80000000
			v = true
		}
		res = uint32(q)
		cc = sparc.LogicCC(res)
		cc.V = v
	case sparc.OpRDY:
		res = c.Y
	case sparc.OpRDPSR:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		res = c.PSR.Bits()
	case sparc.OpRDWIM:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		res = c.WIM
	case sparc.OpRDTBR:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		res = c.TBR
	case sparc.OpWRY:
		c.Y = a ^ b
		c.advance()
		return
	case sparc.OpWRPSR:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		v := a ^ b
		if v&0x1f >= NWindows {
			c.trap(TrapIllegalInst)
			return
		}
		c.PSR = PSRFromBits(v)
		c.advance()
		return
	case sparc.OpWRWIM:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		c.WIM = (a ^ b) & (1<<NWindows - 1)
		c.advance()
		return
	case sparc.OpWRTBR:
		if !c.PSR.S {
			c.trap(TrapPrivilegedInst)
			return
		}
		c.TBR = (a ^ b) & 0xfffff000
		c.advance()
		return
	default:
		c.trap(TrapIllegalInst)
		return
	}
	c.SetReg(in.Rd, res)
	if setCC {
		c.PSR.ICC = cc
	}
	c.advance()
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Run executes until the program exits, the processor enters error mode, or
// maxInsts instructions have executed. It returns the terminal status.
func (c *CPU) Run(maxInsts uint64) Status {
	for c.status == StatusRunning && c.Icount < maxInsts {
		c.Step()
	}
	if c.status == StatusRunning {
		c.status = StatusBudget
	}
	return c.status
}
