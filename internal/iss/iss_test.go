package iss

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/sparc"
)

// run assembles src at the RAM base, executes it and returns the CPU.
func run(t *testing.T, src string, maxInsts uint64) *CPU {
	t.Helper()
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	c := New(mem.NewBus(m), p.Entry)
	c.Run(maxInsts)
	return c
}

// exitWrapper surrounds a code fragment with the standard exit sequence.
const exitWrapper = `
start:
%s
	set 0x90000000, %%l7   ! ExitAddr
	st %%g0, [%%l7]
	nop
`

func runFrag(t *testing.T, frag string) *CPU {
	t.Helper()
	c := run(t, fmt.Sprintf(exitWrapper, frag), 100000)
	if c.Status() != StatusExited {
		t.Fatalf("status = %v, want exited (cpu %v)", c.Status(), c)
	}
	return c
}

func TestArithmeticBasics(t *testing.T) {
	c := runFrag(t, `
	mov 10, %o0
	mov 3, %o1
	add %o0, %o1, %o2    ! 13
	sub %o0, %o1, %o3    ! 7
	and %o0, %o1, %o4    ! 2
	or  %o0, %o1, %o5    ! 11
	xor %o0, %o1, %l0    ! 9
	sll %o0, 2, %l1      ! 40
	srl %o0, 1, %l2      ! 5
	mov -8, %l3
	sra %l3, 2, %l3      ! -2
`)
	want := map[int]uint32{
		10: 13, 11: 7, 12: 2, 13: 11, 16: 9, 17: 40, 18: 5, 19: 0xfffffffe,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%s = %#x, want %#x", sparc.RegName(r), got, v)
		}
	}
}

func TestG0AlwaysZero(t *testing.T) {
	c := runFrag(t, `
	mov 99, %g0
	add %g0, 0, %o0
`)
	if c.Reg(8) != 0 {
		t.Errorf("g0 leaked value: %d", c.Reg(8))
	}
}

func TestConditionCodesAndBranches(t *testing.T) {
	// Sum 1..10 with a loop: tests subcc/bne and delayed branching.
	c := runFrag(t, `
	mov 10, %o0
	clr %o1
loop:
	add %o1, %o0, %o1
	subcc %o0, 1, %o0
	bne loop
	nop
`)
	if got := c.Reg(9); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAnnulledDelaySlot(t *testing.T) {
	// bne,a: delay slot executes only when the branch is taken.
	c := runFrag(t, `
	mov 3, %o0
	clr %o1
loop:
	subcc %o0, 1, %o0
	bne,a loop
	add %o1, 1, %o1    ! executed twice (taken twice), annulled on exit
	mov 77, %o2
`)
	if got := c.Reg(9); got != 2 {
		t.Errorf("annulled-slot counter = %d, want 2", got)
	}
	if got := c.Reg(10); got != 77 {
		t.Errorf("fallthrough inst lost: %d", got)
	}
}

func TestBaAnnulSkipsDelay(t *testing.T) {
	c := runFrag(t, `
	clr %o0
	ba,a over
	mov 1, %o0    ! must be annulled
over:
`)
	if c.Reg(8) != 0 {
		t.Error("ba,a executed its delay slot")
	}
}

func TestCallRetAndWindows(t *testing.T) {
	c := runFrag(t, `
	mov 5, %o0
	call double
	nop
	mov %o0, %l0        ! result visible in caller's window
	ba done
	nop
double:
	save %sp, -96, %sp
	add %i0, %i0, %i0   ! result in callee's in = caller's out
	ret
	restore
done:
`)
	if got := c.Reg(16); got != 10 {
		t.Errorf("double(5) = %d, want 10", got)
	}
}

func TestWindowOverlapSemantics(t *testing.T) {
	// outs of caller == ins of callee after save; restore's result lands
	// in the restored-to (old) window.
	c := runFrag(t, `
	set 0x1234, %o3
	save %sp, -96, %sp
	add %i3, 1, %o5     ! write an out in the new window
	restore %o5, 0, %o4 ! restore's result lands in the old window's %o4
`)
	if got := c.Reg(12); got != 0x1235 {
		t.Errorf("restore result = %#x, want 0x1235", got)
	}
	if got := c.Reg(11); got != 0x1234 {
		t.Errorf("caller %%o3 = %#x, want 0x1234", got)
	}
}

func TestWindowTrapMechanics(t *testing.T) {
	// Without a handler, overflowing while ET=1 vectors through TBR; with
	// TBR=0 and empty memory the handler is a stream of OpUnknown -> the
	// second trap (illegal, ET=0) halts in error mode.
	c := run(t, `
start:
	save %sp, -96, %sp
	save %sp, -96, %sp
	save %sp, -96, %sp
	save %sp, -96, %sp
	save %sp, -96, %sp
	save %sp, -96, %sp
	save %sp, -96, %sp   ! 7th save hits the WIM-invalid window
	nop
`, 1000)
	if c.Status() != StatusErrorMode {
		t.Fatalf("status = %v, want error-mode", c.Status())
	}
	if c.OpCounts[sparc.OpSAVE] != 6 {
		t.Errorf("completed saves = %d, want 6", c.OpCounts[sparc.OpSAVE])
	}
}

func TestLoadsAndStores(t *testing.T) {
	c := runFrag(t, `
	set data, %o0
	ld  [%o0], %o1
	ldub [%o0], %o2
	ldsb [%o0+4], %o3
	lduh [%o0+2], %o4
	ldsh [%o0+4], %o5
	st  %o1, [%o0+8]
	sth %o1, [%o0+12]
	stb %o1, [%o0+14]
	ba skipdata
	nop
data:
	.word 0x8091a2b3, 0xfffe0000
	.word 0, 0
skipdata:
	set data, %l0
	ld [%l0+8], %l1
	ld [%l0+12], %l2
`)
	if got := c.Reg(9); got != 0x8091a2b3 {
		t.Errorf("ld = %#x", got)
	}
	if got := c.Reg(10); got != 0x80 {
		t.Errorf("ldub = %#x", got)
	}
	if got := c.Reg(11); got != 0xffffffff {
		t.Errorf("ldsb = %#x, want sign-extended -1", got)
	}
	if got := c.Reg(12); got != 0xa2b3 {
		t.Errorf("lduh = %#x", got)
	}
	if got := c.Reg(13); got != 0xfffffffe {
		t.Errorf("ldsh = %#x", got)
	}
	if got := c.Reg(17); got != 0x8091a2b3 {
		t.Errorf("st roundtrip = %#x", got)
	}
	if got := c.Reg(18); got != 0xa2b30000|0xb3<<8 {
		// sth wrote 0xa2b3 at +12, stb wrote 0xb3 at +14.
		t.Errorf("sth/stb = %#x", got)
	}
}

func TestLddStd(t *testing.T) {
	c := runFrag(t, `
	set buf, %o0
	mov 0x111, %o2
	mov 0x222, %o3
	std %o2, [%o0]
	ldd [%o0], %o4
	ba over
	nop
	.align 8
buf:
	.word 0, 0
over:
`)
	if c.Reg(12) != 0x111 || c.Reg(13) != 0x222 {
		t.Errorf("ldd = %#x, %#x", c.Reg(12), c.Reg(13))
	}
}

func TestLdstubSwap(t *testing.T) {
	c := runFrag(t, `
	set cell, %o0
	ldstub [%o0], %o1   ! o1 = 0xab, cell = 0xff
	ldub [%o0], %o2
	mov 7, %o3
	swap [%o0+4], %o3   ! o3 = 0x77665544, cell+4 = 7
	ld [%o0+4], %o4
	ba over
	nop
cell:
	.word 0xab000000, 0x77665544
over:
`)
	if c.Reg(9) != 0xab || c.Reg(10) != 0xff {
		t.Errorf("ldstub: %#x %#x", c.Reg(9), c.Reg(10))
	}
	if c.Reg(11) != 0x77665544 || c.Reg(12) != 7 {
		t.Errorf("swap: %#x %#x", c.Reg(11), c.Reg(12))
	}
}

func TestMulDiv(t *testing.T) {
	c := runFrag(t, `
	mov 1000, %o0
	mov 3000, %o1
	umul %o0, %o1, %o2   ! 3,000,000
	rd %y, %o3           ! 0
	mov -4, %o4
	smul %o4, %o1, %o5   ! -12000
	rd %y, %l0           ! sign bits
	wr %g0, %y
	mov 100, %l1
	udiv %l1, 7, %l2     ! 14
	mov -100, %l3
	wr %l3, %y           ! broken dividend? set Y to all ones via sra
	sra %l3, 31, %l4
	wr %l4, %y
	sdiv %l3, 7, %l5     ! -14
`)
	if c.Reg(10) != 3000000 || c.Reg(11) != 0 {
		t.Errorf("umul = %d Y=%d", c.Reg(10), c.Reg(11))
	}
	if got := int32(c.Reg(13)); got != -12000 {
		t.Errorf("smul = %d", got)
	}
	if c.Reg(16) != 0xffffffff {
		t.Errorf("smul Y = %#x", c.Reg(16))
	}
	if c.Reg(18) != 14 {
		t.Errorf("udiv = %d", c.Reg(18))
	}
	if got := int32(c.Reg(21)); got != -14 {
		t.Errorf("sdiv = %d", got)
	}
}

func TestDivisionByZeroTrapsToErrorMode(t *testing.T) {
	c := run(t, `
start:
	mov 1, %o0
	udiv %o0, %g0, %o1
`, 1000)
	// TBR=0 -> vector lands on 'start' again? TBR points at 0x40000000?
	// TBR resets to 0, which is unmapped (reads zero -> OpUnknown ->
	// illegal trap with ET=0 -> error mode).
	if c.Status() != StatusErrorMode {
		t.Fatalf("status = %v, want error-mode", c.Status())
	}
	if c.TrapTaken() != TrapIllegalInst && c.TrapTaken() != TrapDivByZero {
		t.Errorf("trap = %#x", c.TrapTaken())
	}
}

func TestMulsccMatchesSmul(t *testing.T) {
	// The canonical V8 32-step multiply using mulscc must agree with smul
	// for non-negative multipliers.
	src := `
	mov 1234, %o0        ! multiplicand (rs1 operand source)
	set 56789, %o1       ! multiplier
	wr %o1, %y
	andcc %g0, %g0, %o4  ! clear partial product and icc
` + strings.Repeat("\tmulscc %o4, %o0, %o4\n", 32) + `
	mulscc %o4, %g0, %o4 ! final shift
	rd %y, %o5           ! low 32 bits of the product
	smul %o0, %o1, %l0   ! reference
`
	c := runFrag(t, src)
	if got, want := c.Reg(13), c.Reg(16); got != want {
		t.Errorf("mulscc product low = %d, smul = %d", got, want)
	}
}

func TestTaTrapVectorsThroughTBR(t *testing.T) {
	c := run(t, `
start:
	set table, %g1
	wr %g1, %tbr
	ta 3
	nop
after:
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 4096
table:
	.org table+0x830     ! tt = 0x83 -> offset 0x83*16
	! handler: return to the instruction after ta
	jmpl %l2, %g0        ! l2 = npc of the ta
	rett %l2+4
`, 100000)
	if c.Status() != StatusExited {
		t.Fatalf("status = %v trap=%#x cpu=%v", c.Status(), c.TrapTaken(), c)
	}
	if c.TrapTaken() != 0x83 {
		t.Errorf("tt = %#x, want 0x83", c.TrapTaken())
	}
}

func TestAlignmentTrap(t *testing.T) {
	c := run(t, `
start:
	set 0x40000002, %o0
	ld [%o0], %o1
`, 1000)
	if c.Status() != StatusErrorMode {
		t.Fatalf("status = %v", c.Status())
	}
}

func TestSethiAndSetBuildConstants(t *testing.T) {
	c := runFrag(t, `
	set 0xdeadbeef, %o0
	sethi %hi(0xcafe0000), %o1
`)
	if c.Reg(8) != 0xdeadbeef {
		t.Errorf("set = %#x", c.Reg(8))
	}
	if c.Reg(9) != 0xcafe0000 {
		t.Errorf("sethi = %#x", c.Reg(9))
	}
}

func TestPSRReadWrite(t *testing.T) {
	c := runFrag(t, `
	rd %psr, %o0
	or %o0, 0x20, %o1    ! keep ET set
	wr %o1, 0, %psr
	rd %psr, %o2
`)
	if c.Reg(10)&0x80 == 0 {
		t.Error("supervisor bit lost")
	}
	if sup := PSRFromBits(c.Reg(8)); !sup.S || !sup.ET {
		t.Errorf("initial psr = %#x", c.Reg(8))
	}
}

func TestOffCoreTraceAndExit(t *testing.T) {
	c := runFrag(t, `
	set 0x40001000, %o0
	mov 0x11, %o1
	st %o1, [%o0]
	sth %o1, [%o0+4]
	set 0x90000004, %o2  ! OutAddr
	st %o1, [%o2]
`)
	tr := c.Bus.Trace
	if !tr.Exited || tr.ExitCode != 0 {
		t.Fatalf("exit = %v code %d", tr.Exited, tr.ExitCode)
	}
	// 3 explicit writes + 1 exit write.
	if len(tr.Writes) != 4 {
		t.Fatalf("writes = %d: %v", len(tr.Writes), tr.Writes)
	}
	if out := c.Bus.Out(); len(out) != 1 || out[0] != 0x11 {
		t.Errorf("out port = %v", out)
	}
}

func TestDiversityCounting(t *testing.T) {
	c := runFrag(t, `
	mov 1, %o0        ! or
	add %o0, 1, %o1
	sll %o1, 1, %o2
	umul %o2, 3, %o3
`)
	// Executed types: sethi(set/nop), or, add, sll, umul, st, ba?, jmpl?...
	// At minimum the four explicit ones are present.
	for _, op := range []sparc.Op{sparc.OpOR, sparc.OpADD, sparc.OpSLL, sparc.OpUMUL, sparc.OpST} {
		if c.OpCounts[op] == 0 {
			t.Errorf("op %v not counted", op)
		}
	}
	if c.Diversity() < 5 {
		t.Errorf("diversity = %d", c.Diversity())
	}
	ud := c.UnitDiversity()
	if ud[sparc.UnitFetch] != c.Diversity() {
		t.Errorf("fetch diversity %d != total %d", ud[sparc.UnitFetch], c.Diversity())
	}
	if ud[sparc.UnitMulDiv] != 1 {
		t.Errorf("muldiv diversity = %d, want 1", ud[sparc.UnitMulDiv])
	}
}

func TestRunBudget(t *testing.T) {
	c := run(t, "start:\n\tba start\n\tnop\n", 100)
	if c.Status() != StatusBudget {
		t.Errorf("status = %v, want budget", c.Status())
	}
}

func TestPhysIndexWindowOverlap(t *testing.T) {
	// outs of window w must alias ins of window w-1.
	for w := uint8(0); w < NWindows; w++ {
		for i := 0; i < 8; i++ {
			outs := physIndex(w, 8+i)
			ins := physIndex((w+NWindows-1)%NWindows, 24+i)
			if outs != ins {
				t.Errorf("window %d out%d phys %d != next-in phys %d", w, i, outs, ins)
			}
		}
		// locals are private.
		for w2 := uint8(0); w2 < NWindows; w2++ {
			if w == w2 {
				continue
			}
			for i := 16; i < 24; i++ {
				if physIndex(w, i) == physIndex(w2, i) {
					t.Errorf("locals of windows %d and %d collide", w, w2)
				}
			}
		}
	}
}
