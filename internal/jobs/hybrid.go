package jobs

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file implements the hybrid ISS-predicted, RTL-audited campaign
// router — the production form of the paper's thesis that a cheap ISS
// predicts RTL failure probability well enough to stand in for it. The
// router runs the full experiment list on the ISS engine, re-runs a
// deterministic Bernoulli(rtl_audit) sample on RTL, scores each node
// class (functional unit) by the R² of its audited
// predicted-vs-measured failure indicators, and escalates every class
// below the confidence threshold to full RTL re-execution. ISS-trusted
// experiments keep their predicted classification; audited and
// escalated ones carry RTL truth plus the prediction they replaced, so
// every aggregate the router reports is recomputable from the
// experiments array alone — the single-merge-path property that keeps
// sharded hybrid campaigns byte-identical to unsharded ones.
//
// Sharding: the routing plan (ISS pass, audit sample, escalation set)
// is a pure function of the normalized request, so every shard — and
// every remote worker process — computes the identical plan and each
// experiment's final engine is a pure function of (request, absolute
// index). In-process the plan is memoized; a remote worker pays the
// plan once per process. The audit sample spans the whole campaign, so
// a worker executing one shard still audits out-of-range experiments —
// bounded duplicated work (rtl_audit of the campaign per worker
// process), the price of keeping shard outputs order- and
// partition-independent.

// minClassAudits is the smallest audit sample a node class may be
// judged on; with fewer audited experiments the class escalates to RTL
// outright — an unjudged prediction is never trusted.
const minClassAudits = 2

// escalateClass is the router's per-class verdict: escalate to full RTL
// re-execution when the audit sample is too small to judge, or when the
// R² of its predicted-vs-measured failure indicators falls below the
// confidence threshold. Both the planner and the outcome accounting go
// through this one function, so the reported Escalated flags are always
// the decisions the router actually made.
func escalateClass(pred, meas []bool, confidence float64) bool {
	return len(pred) < minClassAudits || campaign.IndicatorR2(pred, meas) < confidence
}

// issRunnerFor resolves the memoized ISS campaign runner for a
// normalized request, with the same detached-build cancellation
// behaviour as runnerFor. cycleRef/fixedCycle pin the engine to the RTL
// cycle timebase (hybrid); both zero select the native instruction
// timebase (engine "iss").
func issRunnerFor(ctx context.Context, n Request, reg *obs.Registry, cycleRef, fixedCycle uint64) (*fault.ISSRunner, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type built struct {
		r   *fault.ISSRunner
		err error
	}
	ch := make(chan built, 1)
	go func() {
		r, err := campaign.ISSRunnerFor(n.Workload,
			workloads.Config{Iterations: n.Iterations, Dataset: n.Dataset},
			fault.Options{
				InjectAtCycle:    n.InjectAtCycle,
				InjectAtFraction: n.InjectAtFraction,
				PulseCycles:      n.PulseCycles,
				NoCheckpoint:     n.NoCheckpoint,
				Obs:              reg,
			}, cycleRef, fixedCycle)
		ch <- built{r, err}
	}()
	select {
	case b := <-ch:
		return b.r, b.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// routerMetrics counts the hybrid router's decisions. Registries dedupe
// by name, so constructing the set per plan build is cheap and safe.
type routerMetrics struct {
	experiments   *obs.CounterVec
	decisions     *obs.CounterVec
	disagreements *obs.Counter
	escalated     *obs.Counter
}

func newRouterMetrics(r *obs.Registry) routerMetrics {
	return routerMetrics{
		experiments: r.CounterVec("router_experiments_total",
			"Hybrid-campaign experiment executions by engine (audits and escalations count as rtl).", "engine"),
		decisions: r.CounterVec("router_decisions_total",
			"Hybrid-router routing decisions per experiment (trust, audit, escalate).", "decision"),
		disagreements: r.Counter("router_audit_disagreements_total",
			"Audited hybrid experiments whose ISS-predicted failure indicator disagreed with RTL."),
		escalated: r.Counter("router_classes_escalated_total",
			"Node classes escalated to full RTL re-execution by the confidence rule."),
	}
}

// hybridPlan is the routing plan of one hybrid campaign: the shared RTL
// runner, the deterministic expansion, the full ISS prediction pass,
// the audit sample with its RTL results, and the escalation set. It is
// a pure function of the normalized request.
type hybridPlan struct {
	rtl       *fault.Runner
	exps      []fault.Experiment
	units     []string
	pred      []fault.Result
	audited   []bool
	auditRes  map[int]fault.Result
	escalated map[string]bool
}

// planCache memoizes hybrid plans per content address so the in-process
// shard pool pays the ISS pass and audit set once per campaign, not
// once per shard. Failed builds (including cancellations) are evicted
// so a later submission retries cleanly.
var planCache struct {
	mu    sync.Mutex
	m     map[string]*planEntry
	order []string
}

const maxPlans = 8

type planEntry struct {
	done chan struct{}
	plan *hybridPlan
	err  error
}

func hybridPlanFor(ctx context.Context, n Request, workers int, reg *obs.Registry) (*hybridPlan, error) {
	key, err := keyOf(n)
	if err != nil {
		return nil, err
	}
	planCache.mu.Lock()
	if planCache.m == nil {
		planCache.m = make(map[string]*planEntry)
	}
	e := planCache.m[key]
	owner := e == nil
	if owner {
		for len(planCache.m) >= maxPlans {
			delete(planCache.m, planCache.order[0])
			planCache.order = planCache.order[1:]
		}
		e = &planEntry{done: make(chan struct{})}
		planCache.m[key] = e
		planCache.order = append(planCache.order, key)
	}
	planCache.mu.Unlock()
	if owner {
		e.plan, e.err = buildHybridPlan(ctx, n, workers, reg)
		if e.err != nil {
			planCache.mu.Lock()
			delete(planCache.m, key)
			for i, k := range planCache.order {
				if k == key {
					planCache.order = append(planCache.order[:i], planCache.order[i+1:]...)
					break
				}
			}
			planCache.mu.Unlock()
		}
		close(e.done)
		return e.plan, e.err
	}
	select {
	case <-e.done:
		return e.plan, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// buildHybridPlan executes the routing plan's two phases: the full ISS
// prediction pass and the RTL audit pass, then scores every node class.
func buildHybridPlan(ctx context.Context, n Request, workers int, reg *obs.Registry) (*hybridPlan, error) {
	rtlR, err := runnerFor(ctx, n, reg)
	if err != nil {
		return nil, err
	}
	exps := experimentsFor(rtlR, n)
	// Pin the ISS engine to the RTL cycle timebase so one experiment
	// list — instants in RTL cycles — drives both engines.
	issR, err := issRunnerFor(ctx, n, reg, rtlR.GoldenCycles, rtlR.InjectCycle())
	if err != nil {
		return nil, err
	}
	met := newRouterMetrics(reg)
	pred, _, err := issR.CampaignStopContext(ctx, exps, workers, nil, nil)
	if err != nil {
		return nil, err
	}
	met.experiments.With("iss").Add(float64(len(exps)))

	units := make([]string, len(exps))
	for i := range exps {
		units[i] = exps[i].Node.Unit.String()
	}
	audited := make([]bool, len(exps))
	var auditIdx []int
	for i := range exps {
		if fault.AuditSample(n.Seed, i, n.RTLAudit) {
			audited[i] = true
			auditIdx = append(auditIdx, i)
		}
	}
	auditExps := make([]fault.Experiment, len(auditIdx))
	for j, i := range auditIdx {
		auditExps[j] = exps[i]
	}
	auditRes0, _, err := rtlR.CampaignStopContext(ctx, auditExps, workers, nil, nil)
	if err != nil {
		return nil, err
	}
	met.experiments.With("rtl").Add(float64(len(auditIdx)))

	type pairs struct{ pred, meas []bool }
	byClass := map[string]*pairs{}
	auditRes := make(map[int]fault.Result, len(auditIdx))
	disag := 0
	for j, i := range auditIdx {
		auditRes[i] = auditRes0[j]
		p := pred[i].Outcome.IsFailure()
		m := auditRes0[j].Outcome.IsFailure()
		if p != m {
			disag++
		}
		c := byClass[units[i]]
		if c == nil {
			c = &pairs{}
			byClass[units[i]] = c
		}
		c.pred = append(c.pred, p)
		c.meas = append(c.meas, m)
	}
	met.disagreements.Add(float64(disag))

	escalated := map[string]bool{}
	seen := map[string]bool{}
	for _, u := range units {
		if seen[u] {
			continue
		}
		seen[u] = true
		var p, m []bool
		if c := byClass[u]; c != nil {
			p, m = c.pred, c.meas
		}
		if escalateClass(p, m, n.Confidence) {
			escalated[u] = true
			met.escalated.Inc()
		}
	}
	for i := range exps {
		switch {
		case audited[i]:
			met.decisions.With("audit").Inc()
		case escalated[units[i]]:
			met.decisions.With("escalate").Inc()
		default:
			met.decisions.With("trust").Inc()
		}
	}
	return &hybridPlan{
		rtl:       rtlR,
		exps:      exps,
		units:     units,
		pred:      pred,
		audited:   audited,
		auditRes:  auditRes,
		escalated: escalated,
	}, nil
}

// hybridOutcomes finalizes experiments [start,end) of a planned hybrid
// campaign: escalated-class experiments that were not already audited
// are re-run on RTL here (the only per-range engine work — predictions
// and audits live in the plan), and every index is assembled into its
// wire outcome. tap observes range-local completions against the range
// size; escalations report live, plan-resolved entries are counted as
// they are assembled.
func hybridOutcomes(ctx context.Context, plan *hybridPlan, n Request, start, end, workers int, tap Tap, reg *obs.Registry) ([]ExperimentOutcome, error) {
	total := end - start
	var mu sync.Mutex
	done, failures := 0, 0
	if tap != nil {
		tap(0, total, 0)
	}
	count := func(res fault.Result) {
		if tap == nil {
			return
		}
		mu.Lock()
		done++
		if res.Outcome.IsFailure() {
			failures++
		}
		tap(done, total, failures)
		mu.Unlock()
	}

	var escIdx []int
	for i := start; i < end; i++ {
		if !plan.audited[i] && plan.escalated[plan.units[i]] {
			escIdx = append(escIdx, i)
		}
	}
	escExps := make([]fault.Experiment, len(escIdx))
	for j, i := range escIdx {
		escExps[j] = plan.exps[i]
	}
	escRes0, _, err := plan.rtl.CampaignStopContext(ctx, escExps, workers, func(j int, res fault.Result) {
		count(res)
	}, nil)
	if err != nil {
		return nil, err
	}
	newRouterMetrics(reg).experiments.With("rtl").Add(float64(len(escIdx)))
	escRes := make(map[int]fault.Result, len(escIdx))
	for j, i := range escIdx {
		escRes[i] = escRes0[j]
	}

	outs := make([]ExperimentOutcome, 0, total)
	for i := start; i < end; i++ {
		var eo ExperimentOutcome
		switch {
		case plan.audited[i]:
			eo = experimentOutcome(plan.auditRes[i])
			eo.Engine, eo.Audited = "rtl", true
			eo.Predicted = plan.pred[i].Outcome.String()
			count(plan.auditRes[i])
		case plan.escalated[plan.units[i]]:
			eo = experimentOutcome(escRes[i])
			eo.Engine = "rtl"
			eo.Predicted = plan.pred[i].Outcome.String()
			// counted live above
		default:
			eo = experimentOutcome(plan.pred[i])
			eo.Engine = "iss"
			count(plan.pred[i])
		}
		outs = append(outs, eo)
	}
	return outs, nil
}

// executeHybrid is ExecuteObs's hybrid path: plan, finalize the full
// range, assemble. Golden-run metadata is the RTL engine's — the hybrid
// campaign's experiments are defined on the RTL cycle timebase.
func executeHybrid(ctx context.Context, n Request, workers int, tap Tap, reg *obs.Registry) (*Outcome, error) {
	tr := obs.TracerFrom(ctx)
	endPlan := tr.Stage("golden")
	plan, err := hybridPlanFor(ctx, n, workers, reg)
	endPlan()
	if err != nil {
		return nil, err
	}
	endExec := tr.Stage("execute")
	outs, err := hybridOutcomes(ctx, plan, n, 0, len(plan.exps), workers, tap, reg)
	endExec()
	if err != nil {
		return nil, err
	}
	endAsm := tr.Stage("assemble")
	defer endAsm()
	return assembleOutcome(n, plan.rtl.GoldenCycles, plan.rtl.Checkpointed(), len(plan.exps), outs), nil
}

// hybridShard is ExecuteShardObs's hybrid path. Unlike the single-engine
// shard path it reports no partial output on cancellation — a hybrid
// shard is final only when its whole range is resolved — so the
// coordinator requeues the full range.
func hybridShard(ctx context.Context, n Request, start, end, workers int, tap Tap, reg *obs.Registry) (*ShardOutput, error) {
	plan, err := hybridPlanFor(ctx, n, workers, reg)
	if err != nil {
		return nil, err
	}
	if start < 0 || end > len(plan.exps) || start > end {
		return nil, fmt.Errorf("jobs: shard range [%d,%d) outside campaign of %d experiments", start, end, len(plan.exps))
	}
	outs, err := hybridOutcomes(ctx, plan, n, start, end, workers, tap, reg)
	if err != nil {
		return nil, err
	}
	so := &ShardOutput{GoldenCycles: plan.rtl.GoldenCycles, Checkpointed: plan.rtl.Checkpointed()}
	for j, eo := range outs {
		so.Indices = append(so.Indices, start+j)
		so.Experiments = append(so.Experiments, eo)
	}
	return so, nil
}

// HybridClass is one node class (functional unit) of a hybrid
// campaign's audit accounting, in first-appearance order of the
// experiments array.
type HybridClass struct {
	Unit        string `json:"unit"`
	Experiments int    `json:"experiments"`
	// RTLExperiments counts the class's experiments whose final
	// classification came from RTL (audits plus escalations).
	RTLExperiments int `json:"rtl_experiments"`
	Audited        int `json:"audited"`
	Disagreements  int `json:"disagreements"`
	// R2 is the class's routing confidence: IndicatorR2 over its audited
	// predicted-vs-measured failure indicator pairs.
	R2 float64 `json:"r2"`
	// Escalated reports the router's verdict, recomputed from the
	// experiments array by the same rule the router applied: too few
	// audits, or R² below the request's confidence threshold.
	Escalated bool `json:"escalated"`
	// PredictedPf is the ISS-predicted failure fraction over the whole
	// class; AuditedPf is the RTL-measured fraction over its audits.
	PredictedPf float64 `json:"predicted_pf"`
	AuditedPf   float64 `json:"audited_pf"`
}

// HybridOutcome is the router's audit-disagreement accounting. Every
// field is a pure function of the request and the experiments array —
// assembleOutcome recomputes it after any shard merge, so hybrid
// campaigns keep the byte-identity-under-sharding property.
type HybridOutcome struct {
	// ISSExperiments and RTLExperiments partition the campaign by the
	// engine that produced each final classification.
	ISSExperiments int `json:"iss_experiments"`
	RTLExperiments int `json:"rtl_experiments"`
	Audited        int `json:"audited"`
	// Disagreements counts audited experiments whose predicted and
	// measured failure indicators differ; DisagreementRate is their
	// fraction of the audit sample.
	Disagreements    int           `json:"disagreements"`
	DisagreementRate float64       `json:"disagreement_rate"`
	Classes          []HybridClass `json:"classes"`
	// CorrectedPfLow/High widen the campaign's Wilson interval by the
	// audit-measured prediction-error bound: the Wilson upper bound of
	// the disagreement rate, scaled by the unaudited ISS-trusted
	// fraction of the campaign. Within the audit's own confidence, the
	// true (all-RTL) Pf lies inside this interval even if every
	// unaudited ISS verdict is wrong in the same direction.
	CorrectedPfLow  float64 `json:"corrected_pf_low"`
	CorrectedPfHigh float64 `json:"corrected_pf_high"`
}

// hybridAccounting recomputes the router's accounting from the merged
// experiments array alone (plus the request's thresholds).
func hybridAccounting(req Request, out *Outcome) *HybridOutcome {
	h := &HybridOutcome{}
	type cls struct {
		n, rtl, audited, disag int
		predFail, measFail     int
		pred, meas             []bool
	}
	classes := map[string]*cls{}
	var order []string
	for _, e := range out.Experiments {
		c := classes[e.Unit]
		if c == nil {
			c = &cls{}
			classes[e.Unit] = c
			order = append(order, e.Unit)
		}
		c.n++
		predStr := e.Predicted
		if predStr == "" {
			predStr = e.Outcome // ISS-trusted: the outcome is the prediction
		}
		pf := predStr != noEffect
		if pf {
			c.predFail++
		}
		switch e.Engine {
		case "iss":
			h.ISSExperiments++
		case "rtl":
			h.RTLExperiments++
			c.rtl++
		}
		if e.Audited {
			h.Audited++
			c.audited++
			mf := e.Outcome != noEffect
			c.pred = append(c.pred, pf)
			c.meas = append(c.meas, mf)
			if mf {
				c.measFail++
			}
			if pf != mf {
				c.disag++
				h.Disagreements++
			}
		}
	}
	if h.Audited > 0 {
		h.DisagreementRate = float64(h.Disagreements) / float64(h.Audited)
	}
	for _, u := range order {
		c := classes[u]
		hc := HybridClass{
			Unit:           u,
			Experiments:    c.n,
			RTLExperiments: c.rtl,
			Audited:        c.audited,
			Disagreements:  c.disag,
			R2:             campaign.IndicatorR2(c.pred, c.meas),
			PredictedPf:    float64(c.predFail) / float64(c.n),
		}
		hc.Escalated = escalateClass(c.pred, c.meas, req.Confidence)
		if c.audited > 0 {
			hc.AuditedPf = float64(c.measFail) / float64(c.audited)
		}
		h.Classes = append(h.Classes, hc)
	}
	if out.Injections > 0 {
		u := float64(h.ISSExperiments) / float64(out.Injections)
		_, dHi := stats.WilsonCI(h.Disagreements, h.Audited, stats.Z95)
		h.CorrectedPfLow = math.Max(0, out.PfLow-dHi*u)
		h.CorrectedPfHigh = math.Min(1, out.PfHigh+dHi*u)
	}
	return h
}
