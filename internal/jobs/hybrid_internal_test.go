package jobs

import "testing"

// Table-driven router decision tests: the per-class escalation verdict
// is the router's whole routing rule, shared verbatim between the
// planner and the outcome accounting.
func TestEscalateClass(t *testing.T) {
	agree8 := make([]bool, 8)
	for i := range agree8 {
		agree8[i] = i%2 == 0
	}
	inverted := make([]bool, 8)
	for i := range agree8 {
		inverted[i] = !agree8[i]
	}
	uncorrelated := []bool{true, true, false, false}
	cases := []struct {
		name       string
		pred, meas []bool
		confidence float64
		want       bool
	}{
		{"confident class trusted", agree8, agree8, 0.9, false},
		{"uncorrelated class escalates", uncorrelated, []bool{true, false, true, false}, 0.9, true},
		{"no audits escalates", nil, nil, 0.9, true},
		{"one audit escalates even when agreeing", []bool{true}, []bool{true}, 0.9, true},
		{"two agreeing audits suffice", []bool{true, false}, []bool{true, false}, 0.9, false},
		{"zero confidence still distrusts zero R2", uncorrelated, []bool{true, false, true, false}, 0.1, true},
		{"anticorrelated prediction has R2 1", agree8, inverted, 0.9, false},
		{"perfect agreement at full confidence", agree8, agree8, 1.0, false},
		{"one disagreement at full confidence", agree8, append(append([]bool{}, agree8[:7]...), !agree8[7]), 1.0, true},
	}
	for _, c := range cases {
		if got := escalateClass(c.pred, c.meas, c.confidence); got != c.want {
			t.Errorf("%s: escalateClass = %v, want %v", c.name, got, c.want)
		}
	}
}
