package jobs_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// hybridSmall is a cheap real hybrid campaign: three permanent models
// over a 12-node sample, with a high audit fraction so every class
// collects a judgeable sample.
var hybridSmall = jobs.Request{
	Workload:         "excerptA",
	Models:           []string{"sa0", "sa1", "open"},
	Nodes:            12,
	Seed:             3,
	InjectAtFraction: 0.3,
	Engine:           "hybrid",
	RTLAudit:         0.5,
}

func TestHybridNormalize(t *testing.T) {
	n, err := hybridSmall.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Engine != "hybrid" || n.RTLAudit != 0.5 || n.Confidence != 0.9 {
		t.Fatalf("normalized hybrid = engine %q audit %v confidence %v", n.Engine, n.RTLAudit, n.Confidence)
	}
	// Defaults pinned under hybrid.
	n2, err := jobs.Request{Workload: "excerptA", Engine: "hybrid"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n2.RTLAudit != 0.1 || n2.Confidence != 0.9 {
		t.Fatalf("hybrid defaults = audit %v confidence %v, want 0.1/0.9", n2.RTLAudit, n2.Confidence)
	}
	// The audit sample is seed-keyed, so an exhaustive permanent hybrid
	// campaign must keep its seed.
	n3, err := jobs.Request{Workload: "excerptA", Engine: "hybrid", Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n3.Seed != 7 {
		t.Fatalf("hybrid normalization dropped the seed: %d", n3.Seed)
	}
	for _, bad := range []jobs.Request{
		{Workload: "excerptA", Engine: "gatesim"},
		{Workload: "excerptA", RTLAudit: 0.5},                     // audit without hybrid
		{Workload: "excerptA", Engine: "iss", Confidence: 0.5},    // confidence without hybrid
		{Workload: "excerptA", Engine: "hybrid", RTLAudit: -0.1},  // out of range
		{Workload: "excerptA", Engine: "hybrid", Confidence: 1.5}, // out of range
		{Workload: "excerptA", Engine: "hybrid", Epsilon: 0.01},   // adaptive + hybrid
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an invalid request", bad)
		}
	}
}

// Auditing everything is a pure RTL campaign: the request must collapse
// to the pure-RTL spelling — same content address, and therefore a
// byte-identical outcome.
func TestHybridFullAuditIsPureRTL(t *testing.T) {
	full := hybridSmall
	full.RTLAudit = 1.0
	pure := hybridSmall
	pure.Engine, pure.RTLAudit = "", 0

	kf, err := full.Key()
	if err != nil {
		t.Fatal(err)
	}
	kp, err := pure.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kf != kp {
		t.Fatalf("rtl_audit=1.0 hybrid key %s != pure RTL key %s", kf, kp)
	}

	of, err := jobs.Execute(context.Background(), full, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := jobs.Execute(context.Background(), pure, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, of), encode(t, op)) {
		t.Fatal("rtl_audit=1.0 hybrid outcome differs from pure RTL outcome")
	}
	if of.Hybrid != nil {
		t.Fatal("collapsed full-audit campaign still carries hybrid accounting")
	}
}

// The routing contract, end to end: every experiment's final engine is
// consistent with the audit sample and the per-class escalation
// verdicts reported in the outcome, and the hybrid accounting is
// internally consistent with the experiments array.
func TestHybridRoutingContract(t *testing.T) {
	out, err := jobs.Execute(context.Background(), hybridSmall, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hybrid == nil {
		t.Fatal("hybrid campaign without hybrid accounting")
	}
	h := out.Hybrid
	if h.ISSExperiments+h.RTLExperiments != out.Injections {
		t.Fatalf("engine partition %d+%d != %d injections", h.ISSExperiments, h.RTLExperiments, out.Injections)
	}
	escalated := map[string]bool{}
	for _, c := range h.Classes {
		escalated[c.Unit] = c.Escalated
	}
	iss, rtl, audited := 0, 0, 0
	for i, e := range out.Experiments {
		switch e.Engine {
		case "iss":
			iss++
			if e.Audited || e.Predicted != "" {
				t.Fatalf("experiment %d: ISS-trusted entry carries audit fields", i)
			}
			if escalated[e.Unit] {
				t.Fatalf("experiment %d: ISS-trusted entry in escalated class %s", i, e.Unit)
			}
		case "rtl":
			rtl++
			if e.Predicted == "" {
				t.Fatalf("experiment %d: RTL entry without its ISS prediction", i)
			}
			if e.Audited {
				audited++
			} else if !escalated[e.Unit] {
				t.Fatalf("experiment %d: unaudited RTL entry in trusted class %s", i, e.Unit)
			}
		default:
			t.Fatalf("experiment %d: engine %q", i, e.Engine)
		}
	}
	if iss != h.ISSExperiments || rtl != h.RTLExperiments || audited != h.Audited {
		t.Fatalf("accounting (%d,%d,%d) != recount (%d,%d,%d)",
			h.ISSExperiments, h.RTLExperiments, h.Audited, iss, rtl, audited)
	}
	if h.Audited == 0 {
		t.Fatal("audit fraction 0.5 selected nothing")
	}
	if h.CorrectedPfLow > out.PfLow || h.CorrectedPfHigh < out.PfHigh {
		t.Fatalf("corrected interval [%v,%v] narrower than Wilson [%v,%v]",
			h.CorrectedPfLow, h.CorrectedPfHigh, out.PfLow, out.PfHigh)
	}
}

// Sharded hybrid campaigns must be byte-identical to unsharded ones:
// the routing plan is a pure function of the request, the audit sample
// of (seed, absolute index).
func TestHybridShardedMatchesUnsharded(t *testing.T) {
	ctx := context.Background()
	un, err := jobs.Execute(ctx, hybridSmall, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := jobs.ExecuteSharded(ctx, hybridSmall, 3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, un), encode(t, sh)) {
		t.Fatal("sharded hybrid outcome differs from unsharded")
	}
}

// The pure ISS engine is a first-class backend: same expansion, its own
// timebase, deterministic outcomes.
func TestISSEngineExecute(t *testing.T) {
	req := small
	req.Engine = "iss"
	out, err := jobs.Execute(context.Background(), req, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rtlOut, err := jobs.Execute(context.Background(), small, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Injections != rtlOut.Injections {
		t.Fatalf("ISS expansion %d != RTL expansion %d", out.Injections, rtlOut.Injections)
	}
	if out.Hybrid != nil {
		t.Fatal("pure ISS campaign carries hybrid accounting")
	}
	if out.Request.Engine != "iss" {
		t.Fatalf("outcome request engine = %q", out.Request.Engine)
	}
	for _, e := range out.Experiments {
		if e.Engine != "" || e.Predicted != "" || e.Audited {
			t.Fatal("single-engine campaign rows must not carry hybrid fields")
		}
	}
	again, err := jobs.Execute(context.Background(), req, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, out), encode(t, again)) {
		t.Fatal("ISS campaign not deterministic across worker counts")
	}
	// The engine participates in the content address.
	ki, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	kr, err := small.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ki == kr {
		t.Fatal("iss and rtl requests share a content address")
	}
	if !strings.Contains(string(encode(t, out)), `"engine": "iss"`) {
		t.Fatal("outcome request encoding omits the engine")
	}
}
