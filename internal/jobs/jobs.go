// Package jobs is the campaign job service: a long-running scheduler that
// accepts fault-injection campaign requests, deduplicates them through a
// content-addressed result cache, runs them on a bounded worker pool with
// cooperative cancellation, and streams incremental progress — experiment
// counts and progressive Pf estimates with Wilson confidence intervals —
// to any number of watchers.
//
// The package is the engine behind both the public async API in repro/core
// (SubmitCampaign / JobStatus / WatchProgress) and the HTTP/NDJSON daemon
// in cmd/faultserverd (via internal/server). Both surfaces share the same
// Request and Outcome encodings, so a campaign submitted over HTTP is
// byte-for-byte diffable against `faultcampaign -json` run with the same
// spec.
//
// # Content addressing
//
// A request's identity is the SHA-256 of the canonical JSON encoding of
// its normalized form (defaults applied, names validated; see
// Request.Normalize). Scheduling knobs — how many workers execute the
// campaign — are deliberately not part of the request, so two submissions
// that describe the same experiment set hash identically no matter how
// the service is configured. The manager uses the hash twice: an
// in-flight submission with the same key coalesces onto the running job,
// and a completed one is served straight from the result cache without
// touching the engine.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Request describes one fault-injection campaign. The zero value of every
// optional field selects the engine default. Normalize canonicalizes the
// named fields before hashing — a blank target and "iu", or an empty
// model list and all three models spelled out, yield the same content
// address — while numeric fields participate verbatim: 0 iterations
// means "workload default" and hashes differently from the same count
// written out, because the service cannot know a workload's default
// without building it.
type Request struct {
	// Workload names a bundled benchmark (core.WorkloadNames).
	Workload string `json:"workload"`
	// Iterations is the kernel iteration count (0 = workload default).
	Iterations int `json:"iterations,omitempty"`
	// Dataset selects the input dataset.
	Dataset int `json:"dataset,omitempty"`
	// Target is the injected hierarchy: "iu" (default) or "cmem".
	Target string `json:"target"`
	// Models lists fault models: permanent ("sa0", "sa1", "open") and
	// transient ("seu" single-event bit-flip, "set" transient glitch
	// pulse). Empty selects the three permanent models in the engine's
	// canonical order — transient models are opted into by name, so every
	// pre-existing request keeps its content address.
	Models []string `json:"models"`
	// Nodes is the statistical node sample size; 0 injects every node.
	Nodes int `json:"nodes,omitempty"`
	// Seed makes node sampling reproducible.
	Seed int64 `json:"seed,omitempty"`
	// InjectAtCycle is the fixed injection instant.
	InjectAtCycle uint64 `json:"inject_at_cycle,omitempty"`
	// InjectAtFraction positions the injection instant at this fraction
	// of the golden run (overrides InjectAtCycle when nonzero).
	InjectAtFraction float64 `json:"inject_at_fraction,omitempty"`
	// PulseCycles is the width of a "set" glitch in cycles (0 selects 1).
	// Like the models list it changes which experiments run, so it
	// participates in the content address; requests without the "set"
	// model normalize it away entirely.
	PulseCycles uint64 `json:"pulse_cycles,omitempty"`
	// NoCheckpoint re-simulates every experiment from reset (engine
	// debugging only; results are identical).
	NoCheckpoint bool `json:"no_checkpoint,omitempty"`
	// NoBatch disables the bit-parallel (PPSFP) engine so every
	// experiment runs as its own scalar simulation (engine debugging
	// only; results are identical). Like no_checkpoint it is omitted
	// from the encoding when false, so pre-existing requests keep their
	// content addresses.
	NoBatch bool `json:"no_batch,omitempty"`
	// Epsilon, when nonzero, enables adaptive early stopping: the campaign
	// halts — and outstanding shards are cancelled — once the Wilson 95%
	// half-width around the progressive Pf drops to Epsilon or below. The
	// outcome then covers only the completed experiments (EarlyStopped is
	// set and Requested records the planned total). Unlike scheduling
	// knobs, Epsilon changes the result's content, so it participates in
	// the content address.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Engine selects the simulation backend: "rtl" (default, normalized
	// to the empty string so every pre-existing request keeps its content
	// address), "iss" (the instruction-set simulator alone — cheap,
	// predictive, not signal-accurate), or "hybrid" (the ISS-first
	// router: predict everything on the ISS, audit a deterministic
	// RTLAudit fraction on RTL, and re-run whole node classes whose
	// audited prediction quality falls below Confidence). Unlike
	// scheduling knobs the engine changes what the reported numbers
	// mean — an ISS latency is in instructions, a hybrid Pf carries
	// audit-corrected uncertainty — so it participates in the content
	// address.
	Engine string `json:"engine,omitempty"`
	// RTLAudit is the hybrid router's audit fraction: the deterministic
	// Bernoulli(RTLAudit) sample of experiments — keyed by (seed,
	// absolute index) — that run on RTL regardless of class confidence.
	// Zero selects the 0.1 default under engine "hybrid"; 1.0 audits
	// everything, which is a pure RTL campaign and normalizes to one.
	RTLAudit float64 `json:"rtl_audit,omitempty"`
	// Confidence is the per-class R² threshold below which the hybrid
	// router distrusts the ISS and re-runs the whole class on RTL. Zero
	// selects the 0.9 default under engine "hybrid".
	Confidence float64 `json:"confidence,omitempty"`
}

// MaxIterations bounds a request's kernel iteration count. The largest
// workload default is 60 and Figure 4 tops out at 10; anything near this
// limit would blow the engine's 200M-cycle golden-run budget anyway.
const MaxIterations = 100_000

// modelOrder maps wire names onto fault models, in canonical order:
// permanent models first (the historical trio an empty request selects),
// then the transient extensions.
var modelOrder = []struct {
	name  string
	model rtl.FaultModel
}{
	{"sa0", rtl.StuckAt0},
	{"sa1", rtl.StuckAt1},
	{"open", rtl.OpenLine},
	{"seu", rtl.BitFlip},
	{"set", rtl.SETPulse},
}

func parseModel(name string) (rtl.FaultModel, error) {
	for _, m := range modelOrder {
		if m.name == name {
			return m.model, nil
		}
	}
	return 0, fmt.Errorf("jobs: unknown fault model %q (want sa0, sa1, open, seu or set)", name)
}

// Normalize validates the request and returns its canonical form: target
// and model names checked, an empty model list expanded to all models in
// canonical order. The canonical form is what Key hashes, so requests
// that differ only in how defaults are spelled are the same campaign.
func (r Request) Normalize() (Request, error) {
	if r.Workload == "" {
		return r, fmt.Errorf("jobs: request missing workload")
	}
	// Reject unknown workloads up front: accepting them would hand out a
	// job doomed to fail at execution, and every distinct bad name would
	// burn a slot in the bounded runner cache.
	known := false
	for _, name := range workloads.Names() {
		if name == r.Workload {
			known = true
			break
		}
	}
	if !known {
		return r, fmt.Errorf("jobs: unknown workload %q", r.Workload)
	}
	switch r.Target {
	case "", "iu":
		r.Target = "iu"
	case "cmem":
	default:
		return r, fmt.Errorf("jobs: unknown target %q (want iu or cmem)", r.Target)
	}
	hasSET, hasTransient := false, false
	if len(r.Models) == 0 {
		// The empty list means the paper's permanent trio, never the
		// transient extensions: widening the default would silently remap
		// every pre-existing content address onto a different campaign.
		names := make([]string, 0, len(rtl.FaultModels()))
		for _, m := range modelOrder {
			if m.model.Transient() {
				continue
			}
			names = append(names, m.name)
		}
		r.Models = names
	} else {
		seen := map[string]bool{}
		for _, name := range r.Models {
			m, err := parseModel(name)
			if err != nil {
				return r, err
			}
			if seen[name] {
				return r, fmt.Errorf("jobs: duplicate fault model %q", name)
			}
			seen[name] = true
			if m.Transient() {
				hasTransient = true
			}
			if m == rtl.SETPulse {
				hasSET = true
			}
		}
	}
	if r.Iterations < 0 || r.Dataset < 0 || r.Nodes < 0 {
		return r, fmt.Errorf("jobs: negative iterations/dataset/nodes")
	}
	// Bound the request's golden-run cost at the validation boundary.
	// (fault.NewRunner's 200M-cycle run budget is the hard stop — a
	// too-long golden run fails the build — but rejecting absurd
	// iteration counts up front avoids burning a build slot discovering
	// that.)
	if r.Iterations > MaxIterations {
		return r, fmt.Errorf("jobs: iterations %d exceeds the limit %d", r.Iterations, MaxIterations)
	}
	// NaN passes both range comparisons and would poison the runner
	// cache (NaN != NaN), so reject non-finite values explicitly.
	if math.IsNaN(r.InjectAtFraction) || math.IsInf(r.InjectAtFraction, 0) ||
		r.InjectAtFraction < 0 || r.InjectAtFraction >= 1 {
		return r, fmt.Errorf("jobs: inject_at_fraction %v outside [0,1)", r.InjectAtFraction)
	}
	if r.InjectAtFraction > 0 {
		// A nonzero fraction overrides the cycle instant in the engine,
		// so a leftover cycle value must not fragment the cache key.
		r.InjectAtCycle = 0
	}
	switch r.Engine {
	case "", "rtl":
		// "rtl" is the default spelled out; canonicalize to the empty
		// string so pre-existing content addresses are untouched.
		r.Engine = ""
		if r.RTLAudit != 0 || r.Confidence != 0 {
			return r, fmt.Errorf("jobs: rtl_audit/confidence require engine \"hybrid\"")
		}
	case "iss":
		if r.RTLAudit != 0 || r.Confidence != 0 {
			return r, fmt.Errorf("jobs: rtl_audit/confidence require engine \"hybrid\"")
		}
	case "hybrid":
		if math.IsNaN(r.RTLAudit) || math.IsInf(r.RTLAudit, 0) || r.RTLAudit < 0 || r.RTLAudit > 1 {
			return r, fmt.Errorf("jobs: rtl_audit %v outside [0,1]", r.RTLAudit)
		}
		if math.IsNaN(r.Confidence) || math.IsInf(r.Confidence, 0) || r.Confidence < 0 || r.Confidence > 1 {
			return r, fmt.Errorf("jobs: confidence %v outside [0,1]", r.Confidence)
		}
		if r.Epsilon > 0 {
			// Adaptive stopping is defined over a single sequential
			// engine; the router's two-phase plan (predict all, then
			// audit) has no meaningful completed-prefix to stop on.
			return r, fmt.Errorf("jobs: epsilon requires engine \"rtl\" or \"iss\"")
		}
		if r.RTLAudit == 0 {
			r.RTLAudit = 0.1
		}
		if r.Confidence == 0 {
			r.Confidence = 0.9
		}
		if r.RTLAudit >= 1 {
			// Auditing every experiment is by definition a pure RTL
			// campaign: every final classification comes from the RTL
			// engine. Collapse the spelling so the content address — and
			// therefore the cached outcome — is byte-identical to the
			// pure RTL request. This is also what pins the hybrid
			// engine's -rtl-audit=1.0 contract.
			r.Engine, r.RTLAudit, r.Confidence = "", 0, 0
		}
	default:
		return r, fmt.Errorf("jobs: unknown engine %q (want rtl, iss or hybrid)", r.Engine)
	}
	if r.Nodes == 0 && !hasTransient && r.Engine != "hybrid" {
		// Exhaustive permanent campaigns never consult the seed, so it
		// must not fragment the cache key. Transient campaigns sample
		// their injection cycles from the seed even when the node set is
		// exhaustive, and the hybrid router draws its audit sample from
		// it unconditionally, so in both those cases it stays.
		r.Seed = 0
	}
	if !hasSET {
		// The pulse width only shapes "set" experiments; without that
		// model it must not fragment the cache key.
		r.PulseCycles = 0
	} else if r.PulseCycles == 0 {
		// Zero means the engine default (a single-cycle glitch); pin it
		// so the spelled-out form hashes identically.
		r.PulseCycles = 1
	}
	// A Wilson half-width never exceeds 0.5, so epsilon at or above it
	// would stop a campaign after its very first experiment — reject the
	// degenerate request rather than cache a one-experiment "campaign".
	// NaN would pass the range checks and poison the content address.
	if math.IsNaN(r.Epsilon) || r.Epsilon < 0 || r.Epsilon >= 0.5 {
		return r, fmt.Errorf("jobs: epsilon %v outside [0,0.5)", r.Epsilon)
	}
	return r, nil
}

// Key returns the request's content address: the SHA-256 hex digest of
// the canonical JSON encoding of the normalized request. JSON struct
// encoding has a fixed field order, so the digest is deterministic.
func (r Request) Key() (string, error) {
	n, err := r.Normalize()
	if err != nil {
		return "", err
	}
	return keyOf(n)
}

// keyOf hashes an already-normalized request (Manager.Submit normalizes
// once and keys from that form directly).
func keyOf(n Request) (string, error) {
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func (r Request) target() fault.Target {
	if r.Target == "cmem" {
		return fault.TargetCMEM
	}
	return fault.TargetIU
}

// ExperimentOutcome is one experiment of an Outcome, in campaign order.
type ExperimentOutcome struct {
	Node    string `json:"node"`
	Model   string `json:"model"`
	Unit    string `json:"unit"`
	Outcome string `json:"outcome"`
	Latency int64  `json:"latency"`
	Cycles  uint64 `json:"cycles"`
	// AtCycle is the sampled injection instant of a transient experiment;
	// nil (omitted) for permanent models, whose instant is the request's
	// fixed one — keeping permanent encodings byte-identical to earlier
	// releases. A pointer rather than omitempty-on-zero: an instant
	// legitimately sampled at cycle 0 must still be emitted.
	AtCycle *uint64 `json:"at_cycle,omitempty"`
	// Engine marks which engine produced the final classification of a
	// hybrid campaign's experiment: "iss" (trusted prediction) or "rtl"
	// (audited or escalated). Omitted for single-engine campaigns, so
	// their encodings are unchanged.
	Engine string `json:"engine,omitempty"`
	// Predicted is the ISS-predicted outcome of a hybrid experiment whose
	// final classification came from the RTL engine. Together with
	// Audited it makes every hybrid aggregate — per-class R², audit
	// disagreement rate, corrected interval — recomputable from the
	// experiments array alone, preserving the single-merge-path property
	// shards rely on.
	Predicted string `json:"predicted,omitempty"`
	// Audited marks hybrid experiments in the deterministic RTL-audit
	// sample (as opposed to class escalations, which also run on RTL but
	// carry no fresh information about the router's calibration).
	Audited bool `json:"audited,omitempty"`
}

// Outcome is the deterministic result encoding shared by the job service,
// the HTTP API and `faultcampaign -json`: no timing, no scheduling state,
// only the campaign's content. Identical requests produce byte-identical
// encodings.
type Outcome struct {
	Request      Request `json:"request"`
	Injections   int     `json:"injections"`
	GoldenCycles uint64  `json:"golden_cycles"`
	Checkpointed bool    `json:"checkpointed"`
	// EarlyStopped marks an adaptive campaign that halted once its Wilson
	// half-width reached the request's epsilon; Requested then records the
	// planned experiment count (Injections covers only completed ones).
	// Both fields are omitted from campaigns that ran to completion, so
	// the encoding of a full run is unchanged by their existence.
	EarlyStopped     bool               `json:"early_stopped,omitempty"`
	Requested        int                `json:"requested,omitempty"`
	Pf               float64            `json:"pf"`
	PfLow            float64            `json:"pf_low"`
	PfHigh           float64            `json:"pf_high"`
	Failures         int                `json:"failures"`
	MaxLatencyCycles int64              `json:"max_latency_cycles"`
	Outcomes         map[string]int     `json:"outcomes"`
	PfByUnit         map[string]float64 `json:"pf_by_unit"`
	// Hybrid carries the router's audit-disagreement accounting; present
	// only for engine "hybrid" campaigns.
	Hybrid      *HybridOutcome      `json:"hybrid,omitempty"`
	Experiments []ExperimentOutcome `json:"experiments"`
}

// EncodeOutcome writes the canonical indented JSON encoding of an
// outcome. The CLI's -json flag and the server's result endpoint both use
// it, which is what makes their outputs diffable.
func EncodeOutcome(w io.Writer, o *Outcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o)
}

// experimentOutcome is the wire encoding of one raw engine result.
func experimentOutcome(res fault.Result) ExperimentOutcome {
	eo := ExperimentOutcome{
		Node:    res.Fault.Node.String(),
		Model:   res.Fault.Model.String(),
		Unit:    res.Unit.String(),
		Outcome: res.Outcome.String(),
		Latency: res.Latency,
		Cycles:  res.Cycles,
	}
	if res.Fault.Model.Transient() {
		at := res.InjectAt
		eo.AtCycle = &at
	}
	return eo
}

// noEffect is the one outcome string that does not count as a propagated
// failure; everything else manifests at the off-core boundary.
var noEffect = fault.OutcomeNoEffect.String()

// outcomeHang excludes unbounded latencies from the max-latency metric,
// mirroring fault.MaxLatency.
var outcomeHang = fault.OutcomeHang.String()

// assembleOutcome builds the canonical result encoding from wire-encoded
// experiments. It is the single merge path shared by unsharded execution,
// the in-process shard pool and remote shard workers: every aggregate —
// Pf, Wilson interval, failure count, per-unit Pf, outcome tallies, max
// latency — is recomputed from the experiment array alone, so any
// partition of a campaign into shards that reassembles the same array
// yields byte-identical output. requested is the planned experiment
// count; when the array is shorter the campaign stopped early and the
// outcome says so.
func assembleOutcome(req Request, goldenCycles uint64, checkpointed bool, requested int, exps []ExperimentOutcome) *Outcome {
	out := &Outcome{
		Request:          req,
		Injections:       len(exps),
		GoldenCycles:     goldenCycles,
		Checkpointed:     checkpointed,
		MaxLatencyCycles: -1,
		Outcomes:         map[string]int{},
		PfByUnit:         map[string]float64{},
		Experiments:      exps,
	}
	if len(exps) < requested {
		out.EarlyStopped = true
		out.Requested = requested
	}
	unitTotal := map[string]int{}
	unitFail := map[string]int{}
	for _, e := range exps {
		out.Outcomes[e.Outcome]++
		unitTotal[e.Unit]++
		if e.Outcome != noEffect {
			out.Failures++
			unitFail[e.Unit]++
		}
		if e.Outcome != outcomeHang && e.Latency > out.MaxLatencyCycles {
			out.MaxLatencyCycles = e.Latency
		}
	}
	if len(exps) > 0 {
		out.Pf = float64(out.Failures) / float64(len(exps))
	}
	out.PfLow, out.PfHigh = stats.WilsonCI(out.Failures, len(exps), stats.Z95)
	for u, n := range unitTotal {
		out.PfByUnit[u] = float64(unitFail[u]) / float64(n)
	}
	if req.Engine == "hybrid" {
		out.Hybrid = hybridAccounting(req, out)
	}
	return out
}

// Progress is one incremental snapshot of a running campaign: how many
// experiments have completed and the progressive Pf estimate with its
// Wilson confidence interval over the completed prefix.
type Progress struct {
	JobID    string  `json:"job_id,omitempty"`
	State    State   `json:"state"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Failures int     `json:"failures"`
	Pf       float64 `json:"pf"`
	PfLow    float64 `json:"pf_low"`
	PfHigh   float64 `json:"pf_high"`
}

// Tap receives monotonic progress snapshots from a running campaign. It
// is called serially.
type Tap func(done, total, failures int)

// runnerFor resolves the memoized fault runner for a normalized request
// while honouring cancellation: the golden-run simulation inside
// campaign.RunnerFor cannot be interrupted mid-flight, so on ctx expiry
// the build is left to finish in the background — where it still
// populates the process-wide cache for a later resubmission — and the
// caller returns promptly with ctx.Err().
func runnerFor(ctx context.Context, n Request, reg *obs.Registry) (*fault.Runner, error) {
	// A dead context must not kick off an orphan build: Manager.Close
	// drains every still-queued job through here with the base context
	// already cancelled.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type built struct {
		r   *fault.Runner
		err error
	}
	ch := make(chan built, 1)
	go func() {
		// A cancelled caller leaves this build running detached; that is
		// safe because campaign.RunnerFor bounds concurrent golden-run
		// constructions with its own semaphore, so a submit-and-cancel
		// loop over ever-new specs queues cheap goroutines, not
		// simulations.
		r, err := campaign.RunnerFor(n.Workload,
			workloads.Config{Iterations: n.Iterations, Dataset: n.Dataset},
			fault.Options{
				InjectAtCycle:    n.InjectAtCycle,
				InjectAtFraction: n.InjectAtFraction,
				PulseCycles:      n.PulseCycles,
				NoCheckpoint:     n.NoCheckpoint,
				NoBatch:          n.NoBatch,
				Obs:              reg,
			})
		ch <- built{r, err}
	}()
	select {
	case b := <-ch:
		return b.r, b.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// engineFor resolves the campaign engine a normalized single-engine
// request runs on: the RTL slab kernel by default, the ISS wrapper for
// engine "iss" (in its native instruction timebase — instants in the
// request are instruction indices there). Hybrid requests never come
// here; their router drives both engines explicitly.
func engineFor(ctx context.Context, n Request, reg *obs.Registry) (fault.CampaignEngine, error) {
	if n.Engine == "iss" {
		return issRunnerFor(ctx, n, reg, 0, 0)
	}
	return runnerFor(ctx, n, reg)
}

// experimentsFor returns the campaign's deterministic experiment
// expansion: the sampled (or exhaustive) node set crossed with the
// requested fault models, in canonical order, with every transient
// experiment's injection cycle scheduled from (seed, absolute index).
// Every shard of a campaign and its unsharded execution expand the
// identical list — instants included — which is what makes
// experiment-index ranges a sound shard currency: scheduling happens on
// the full list before any slicing, never per worker.
func experimentsFor(r fault.CampaignEngine, n Request) []fault.Experiment {
	nodes := r.Nodes(n.target())
	if n.Nodes > 0 {
		nodes = fault.SampleNodes(nodes, n.Nodes, n.Seed)
	}
	models := make([]rtl.FaultModel, len(n.Models))
	for i, name := range n.Models {
		models[i], _ = parseModel(name) // validated by Normalize
	}
	exps := fault.Expand(nodes, models...)
	r.ScheduleTransients(exps, n.Seed)
	return exps
}

// Execute runs one campaign request synchronously on the process-wide
// memoized runner cache and returns its canonical outcome. Cancellation
// via ctx stops the engine within one experiment granule and returns
// ctx.Err(). tap, when non-nil, observes per-experiment completions.
// A request with a nonzero Epsilon stops adaptively once the Wilson
// half-width around the progressive Pf reaches it.
//
// This is the single execution path behind the job service's workers and
// `faultcampaign -json`: both produce bit-identical outcomes by
// construction. Sharded execution (ShardPool, ExecuteSharded) reassembles
// the same per-experiment array and therefore the same bytes.
func Execute(ctx context.Context, req Request, workers int, tap Tap) (*Outcome, error) {
	return ExecuteObs(ctx, req, workers, tap, nil)
}

// ExecuteObs is Execute with an optional metrics registry threaded to the
// fault engine's counters. A tracer carried on ctx (obs.WithTracer)
// additionally receives per-stage timings: golden (runner build or cache
// hit), plan (experiment expansion), execute (engine), assemble (outcome
// encoding). With reg == nil and no tracer it is Execute, byte for byte.
func ExecuteObs(ctx context.Context, req Request, workers int, tap Tap, reg *obs.Registry) (*Outcome, error) {
	tr := obs.TracerFrom(ctx)
	n, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Engine == "hybrid" {
		return executeHybrid(ctx, n, workers, tap, reg)
	}
	endGolden := tr.Stage("golden")
	r, err := engineFor(ctx, n, reg)
	endGolden()
	if err != nil {
		return nil, err
	}
	endPlan := tr.Stage("plan")
	exps := experimentsFor(r, n)
	endPlan()

	var mu sync.Mutex
	done, failures := 0, 0
	if tap != nil {
		tap(0, len(exps), 0)
	}
	var stop func(done, failures int) bool
	if n.Epsilon > 0 {
		stop = func(done, failures int) bool {
			return campaign.Tally{Done: done, Failures: failures}.Converged(n.Epsilon, stats.Z95)
		}
	}
	endExec := tr.Stage("execute")
	results, ran, err := r.CampaignStopContext(ctx, exps, workers, func(i int, res fault.Result) {
		if tap == nil {
			return
		}
		mu.Lock()
		done++
		if res.Outcome.IsFailure() {
			failures++
		}
		tap(done, len(exps), failures)
		mu.Unlock()
	}, stop)
	endExec()
	if err != nil {
		return nil, err
	}
	endAsm := tr.Stage("assemble")
	defer endAsm()
	out := make([]ExperimentOutcome, 0, len(results))
	for i, res := range results {
		if ran[i] {
			out = append(out, experimentOutcome(res))
		}
	}
	return assembleOutcome(n, r.GoldenTicks(), r.Checkpointed(), len(exps), out), nil
}

// ShardOutput is what one executed experiment-range shard reports back:
// the golden-run metadata (identical across the shards of one campaign —
// the coordinator cross-checks it), the absolute experiment indices that
// completed, and their outcomes. A cancelled or early-stopped shard
// reports the subset it finished; a complete shard reports its full
// range.
type ShardOutput struct {
	GoldenCycles uint64              `json:"golden_cycles"`
	Checkpointed bool                `json:"checkpointed"`
	Indices      []int               `json:"indices"`
	Experiments  []ExperimentOutcome `json:"experiments"`
}

// ExecuteShard runs experiments [start,end) of a campaign's deterministic
// expansion on the process-wide memoized runner cache. It is the worker
// side of the shard protocol: in-process shard workers and remote
// `faultserverd -worker` processes both execute leases through it. On ctx
// cancellation the partial output is returned together with ctx.Err() so
// the caller can still fold the completed experiments. tap observes
// shard-local completions (done counts shard experiments, total is the
// shard size).
func ExecuteShard(ctx context.Context, req Request, start, end, workers int, tap Tap) (*ShardOutput, error) {
	return ExecuteShardObs(ctx, req, start, end, workers, tap, nil)
}

// ExecuteShardObs is ExecuteShard with an optional metrics registry
// threaded to the fault engine. Shard execution deliberately carries no
// stage tracer: many shards share one campaign, so per-shard spans would
// double-count into the campaign's stage histogram.
func ExecuteShardObs(ctx context.Context, req Request, start, end, workers int, tap Tap, reg *obs.Registry) (*ShardOutput, error) {
	n, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	if n.Engine == "hybrid" {
		return hybridShard(ctx, n, start, end, workers, tap, reg)
	}
	r, err := engineFor(ctx, n, reg)
	if err != nil {
		return nil, err
	}
	exps := experimentsFor(r, n)
	if start < 0 || end > len(exps) || start > end {
		return nil, fmt.Errorf("jobs: shard range [%d,%d) outside campaign of %d experiments", start, end, len(exps))
	}
	slice := exps[start:end]

	var mu sync.Mutex
	done, failures := 0, 0
	results, ran, err := r.CampaignStopContext(ctx, slice, workers, func(i int, res fault.Result) {
		if tap == nil {
			return
		}
		mu.Lock()
		done++
		if res.Outcome.IsFailure() {
			failures++
		}
		tap(done, len(slice), failures)
		mu.Unlock()
	}, nil)
	so := &ShardOutput{GoldenCycles: r.GoldenTicks(), Checkpointed: r.Checkpointed()}
	for i, res := range results {
		if ran[i] {
			so.Indices = append(so.Indices, start+i)
			so.Experiments = append(so.Experiments, experimentOutcome(res))
		}
	}
	return so, err
}
