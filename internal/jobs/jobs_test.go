package jobs_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// small is a cheap real campaign: excerptA's golden run is under a
// thousand cycles and four nodes on one model finish in milliseconds.
var small = jobs.Request{
	Workload:         "excerptA",
	Target:           "iu",
	Models:           []string{"sa1"},
	Nodes:            4,
	Seed:             1,
	InjectAtFraction: 0.3,
}

func TestNormalizeDefaults(t *testing.T) {
	n, err := jobs.Request{Workload: "excerptA"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Target != "iu" {
		t.Errorf("target = %q, want iu", n.Target)
	}
	if want := []string{"sa0", "sa1", "open"}; strings.Join(n.Models, ",") != strings.Join(want, ",") {
		t.Errorf("models = %v, want %v", n.Models, want)
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []jobs.Request{
		{}, // no workload
		{Workload: "no-such-workload"},
		{Workload: "excerptA", Target: "alu"}, // unknown target
		{Workload: "excerptA", Models: []string{"sa9"}},        // unknown model
		{Workload: "excerptA", Models: []string{"sa1", "sa1"}}, // duplicate
		{Workload: "excerptA", Nodes: -1},                      // negative
		{Workload: "excerptA", InjectAtFraction: 1.5},          // out of range
		{Workload: "excerptA", InjectAtFraction: math.NaN()},   // non-finite
		{Workload: "excerptA", InjectAtFraction: math.Inf(1)},  // non-finite
		{Workload: "excerptA", Iterations: jobs.MaxIterations + 1},
	}
	for i, req := range bad {
		if _, err := req.Normalize(); err == nil {
			t.Errorf("case %d: %+v accepted", i, req)
		}
	}
}

// TestKeyCanonicalization pins the content-address contract: spelling a
// default out and leaving it blank are the same campaign; changing any
// field that shapes the experiment set is a different one.
func TestKeyCanonicalization(t *testing.T) {
	base := jobs.Request{Workload: "excerptA"}
	spelled := jobs.Request{Workload: "excerptA", Target: "iu", Models: []string{"sa0", "sa1", "open"}}
	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := spelled.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("defaults spelled out changed the key: %s vs %s", k1, k2)
	}
	// A nonzero fraction overrides the cycle instant in the engine, so a
	// leftover cycle value must not fragment the cache.
	fracOnly, err := jobs.Request{Workload: "excerptA", InjectAtFraction: 0.5}.Key()
	if err != nil {
		t.Fatal(err)
	}
	overridden, err := jobs.Request{Workload: "excerptA", InjectAtFraction: 0.5, InjectAtCycle: 500}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if fracOnly != overridden {
		t.Error("overridden inject_at_cycle fragmented the cache key")
	}
	// Exhaustive campaigns (nodes=0) never consult the sampling seed, so
	// the seed must not fragment the cache key either.
	exh1, err := jobs.Request{Workload: "excerptA", Seed: 1}.Key()
	if err != nil {
		t.Fatal(err)
	}
	exh2, err := jobs.Request{Workload: "excerptA", Seed: 2}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if exh1 != exh2 {
		t.Error("unused seed fragmented the exhaustive-campaign cache key")
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}
	variants := []jobs.Request{
		{Workload: "excerptB"},
		{Workload: "excerptA", Target: "cmem"},
		{Workload: "excerptA", Models: []string{"sa1"}},
		{Workload: "excerptA", Models: []string{"sa1", "sa0", "open"}}, // order matters: different experiment order
		{Workload: "excerptA", Nodes: 16},
		{Workload: "excerptA", Nodes: 16, Seed: 2}, // seed matters when sampling
		{Workload: "excerptA", Iterations: 4},
		{Workload: "excerptA", InjectAtFraction: 0.5},
		{Workload: "excerptA", NoCheckpoint: true},
	}
	seen := map[string]int{k1: -1}
	for i, v := range variants {
		k, err := v.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide: %+v", i, j, v)
		}
		seen[k] = i
	}
}

// TestExecuteDeterministic runs the same small campaign twice and demands
// identical canonical encodings — the property the result cache and the
// CLI/server diffability guarantee both rest on.
func TestExecuteDeterministic(t *testing.T) {
	var taps []int
	a, err := jobs.Execute(context.Background(), small, 2, func(done, total, failures int) {
		taps = append(taps, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := jobs.Execute(context.Background(), small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb strings.Builder
	if err := jobs.EncodeOutcome(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := jobs.EncodeOutcome(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Fatalf("outcome encodings differ across worker counts:\n%s\nvs\n%s", ab.String(), bb.String())
	}
	if a.Injections != 4 || len(a.Experiments) != 4 {
		t.Errorf("injections = %d, experiments = %d, want 4", a.Injections, len(a.Experiments))
	}
	if a.Pf < a.PfLow || a.Pf > a.PfHigh {
		t.Errorf("Pf %v outside its Wilson interval [%v, %v]", a.Pf, a.PfLow, a.PfHigh)
	}
	if len(taps) == 0 || taps[0] != 0 || taps[len(taps)-1] != 4 {
		t.Errorf("tap sequence %v: want initial 0/total and final total/total", taps)
	}
}

// TestExecuteCancelledBeforeGoldenRun pins the cancellation behaviour of
// runner construction: the golden-run simulation itself cannot be
// interrupted, but a cancelled context must return promptly instead of
// blocking behind it.
func TestExecuteCancelledBeforeGoldenRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An injection fraction no other test uses, so the runner is not
	// already memoized and a real golden-run build starts.
	req := jobs.Request{
		Workload: "rspeed", Iterations: 10, Models: []string{"sa1"},
		Nodes: 2, InjectAtFraction: 0.37,
	}
	if _, err := jobs.Execute(ctx, req, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// blockingExecutor returns an executor that parks until released (or its
// context is cancelled) and counts executions.
type blockingExecutor struct {
	mu      sync.Mutex
	started chan string // job keys in execution order
	release chan struct{}
	runs    int
}

func newBlockingExecutor() *blockingExecutor {
	return &blockingExecutor{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingExecutor) exec(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	key, _ := req.Key()
	b.started <- key
	if tap != nil {
		tap(0, 10, 0)
	}
	select {
	case <-b.release:
		if tap != nil {
			tap(10, 10, 3)
		}
		return &jobs.Outcome{Request: req, Injections: 10, Failures: 3, Pf: 0.3}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingExecutor) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

func TestManagerCoalesceAndCache(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 2, Executor: be.exec})
	defer m.Close()

	st1, fresh, err := m.Submit(small)
	if err != nil || !fresh {
		t.Fatalf("first submit: fresh=%v err=%v", fresh, err)
	}
	<-be.started // wait until the job is running

	st2, fresh, err := m.Submit(small)
	if err != nil || fresh {
		t.Fatalf("duplicate submit: fresh=%v err=%v", fresh, err)
	}
	if st2.ID != st1.ID {
		t.Fatalf("duplicate submission got job %s, want coalesced onto %s", st2.ID, st1.ID)
	}

	close(be.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone || final.Result == nil {
		t.Fatalf("final state %v, result %v", final.State, final.Result)
	}

	st3, fresh, err := m.Submit(small)
	if err != nil || fresh {
		t.Fatalf("cache-hit submit: fresh=%v err=%v", fresh, err)
	}
	if st3.ID != st1.ID || st3.Result == nil {
		t.Fatalf("cache hit returned job %s (result %v), want completed %s", st3.ID, st3.Result, st1.ID)
	}
	if got := be.count(); got != 1 {
		t.Fatalf("engine ran %d times for three submissions, want 1", got)
	}
	s := m.ManagerStats()
	if s.Submitted != 3 || s.Coalesced != 1 || s.CacheHits != 1 || s.Executed != 1 {
		t.Errorf("stats = %+v, want 3 submitted / 1 coalesced / 1 cache hit / 1 executed", s)
	}
}

func TestManagerCancelRunning(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, Executor: be.exec})
	defer m.Close()

	st, _, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	<-be.started
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateCancelled {
		t.Fatalf("state = %v, want cancelled", final.State)
	}
	if _, err := m.Cancel(st.ID); !errors.Is(err, jobs.ErrTerminal) {
		t.Errorf("cancelling a terminal job: %v, want ErrTerminal", err)
	}

	// The key is released: resubmitting retries instead of serving the
	// cancelled job.
	st2, fresh, err := m.Submit(small)
	if err != nil || !fresh {
		t.Fatalf("resubmit after cancel: fresh=%v err=%v", fresh, err)
	}
	if st2.ID == st.ID {
		t.Error("resubmission reused the cancelled job")
	}
	<-be.started
	close(be.release)
}

// TestCancelReleasesKeyImmediately pins that the content key is freed at
// Cancel time, not when the worker notices: a resubmission inside that
// window must start a fresh job instead of coalescing onto the dying one.
func TestCancelReleasesKeyImmediately(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 2, Executor: be.exec})
	defer m.Close()

	st, _, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	<-be.started
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	// The worker has not observed the cancellation yet (the executor is
	// still parked), but the key must already be free.
	st2, fresh, err := m.Submit(small)
	if err != nil || !fresh {
		t.Fatalf("resubmit in the cancel window: fresh=%v err=%v", fresh, err)
	}
	if st2.ID == st.ID {
		t.Fatal("resubmission coalesced onto the dying job")
	}
	close(be.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if final, err := m.Wait(ctx, st.ID); err != nil || final.State != jobs.StateCancelled {
		t.Fatalf("first job: %v %v", final.State, err)
	}
	if final, err := m.Wait(ctx, st2.ID); err != nil || final.State != jobs.StateDone {
		t.Fatalf("second job: %v %v", final.State, err)
	}
}

func TestManagerCancelQueued(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, Executor: be.exec})
	defer m.Close()

	blocker, _, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	<-be.started

	queued := small
	queued.Seed = 99
	st, fresh, err := m.Submit(queued)
	if err != nil || !fresh {
		t.Fatalf("queued submit: fresh=%v err=%v", fresh, err)
	}
	if st.State != jobs.StateQueued {
		t.Fatalf("state = %v, want queued", st.State)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateCancelled {
		t.Fatalf("state = %v, want cancelled immediately", got.State)
	}
	close(be.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	// The cancelled queued job must never have reached the engine.
	if got := be.count(); got != 1 {
		t.Errorf("engine ran %d times, want 1 (cancelled job skipped)", got)
	}
}

func TestManagerQueueFull(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, QueueDepth: 1, Executor: be.exec})
	defer m.Close()

	if _, _, err := m.Submit(small); err != nil {
		t.Fatal(err)
	}
	<-be.started
	q1 := small
	q1.Seed = 2
	if _, _, err := m.Submit(q1); err != nil {
		t.Fatal(err)
	}
	q2 := small
	q2.Seed = 3
	if _, _, err := m.Submit(q2); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	// Rejected submissions are not counted as accepted.
	if s := m.ManagerStats(); s.Submitted != 2 {
		t.Errorf("Submitted = %d after a queue-full rejection, want 2", s.Submitted)
	}
	close(be.release)
}

// TestQueueCapacityReleasedByCancel pins that a job cancelled while
// queued frees its capacity slot immediately — the queue bound counts
// live queued jobs, not FIFO carcasses.
func TestQueueCapacityReleasedByCancel(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, QueueDepth: 1, Executor: be.exec})
	defer m.Close()

	if _, _, err := m.Submit(small); err != nil {
		t.Fatal(err)
	}
	<-be.started
	q1 := small
	q1.Seed = 2
	st, _, err := m.Submit(q1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	q2 := small
	q2.Seed = 3
	if _, fresh, err := m.Submit(q2); err != nil || !fresh {
		t.Fatalf("submit after cancelling the queued job: fresh=%v err=%v", fresh, err)
	}
	close(be.release)
}

// TestManagerRetentionBound pins the eviction policy: beyond MaxJobs the
// oldest terminal jobs disappear — cached outcomes included, so an
// evicted spec reruns — while newer jobs survive.
func TestManagerRetentionBound(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{
		Concurrency: 1,
		MaxJobs:     2,
		Executor: func(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
			return &jobs.Outcome{Request: req}, nil
		},
	})
	defer m.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		req := small
		req.Seed = seed
		st, fresh, err := m.Submit(req)
		if err != nil || !fresh {
			t.Fatalf("seed %d: fresh=%v err=%v", seed, fresh, err)
		}
		ids = append(ids, st.ID)
		if _, err := m.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("retained %d jobs, want 2", got)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("oldest job still retrievable: %v", err)
	}
	if _, err := m.Get(ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	// The evicted outcome left the cache: resubmitting is fresh again.
	req := small
	req.Seed = 1
	if _, fresh, err := m.Submit(req); err != nil || !fresh {
		t.Errorf("resubmit of evicted spec: fresh=%v err=%v", fresh, err)
	}
}

func TestManagerWatch(t *testing.T) {
	be := newBlockingExecutor()
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, Executor: be.exec})
	defer m.Close()

	st, _, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	<-be.started
	close(be.release)

	var last jobs.Progress
	n := 0
	for p := range ch {
		if p.Done < last.Done {
			t.Errorf("progress went backwards: %d after %d", p.Done, last.Done)
		}
		last = p
		n++
	}
	if n == 0 {
		t.Fatal("no progress snapshots")
	}
	if last.State != jobs.StateDone || last.Done != 10 || last.Failures != 3 {
		t.Errorf("terminal snapshot = %+v, want done state with 10/10 and 3 failures", last)
	}
	if last.Pf != 0.3 {
		t.Errorf("terminal Pf = %v, want 0.3", last.Pf)
	}

	// Watching a terminal job yields its final snapshot and closes.
	ch2, unsub2, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub2()
	p, ok := <-ch2
	if !ok || p.State != jobs.StateDone {
		t.Fatalf("terminal watch: %+v ok=%v", p, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal watch channel not closed after final snapshot")
	}
}

// TestManagerRealCancellation exercises the full stack — manager, Execute
// and the fault engine's context plumbing — and checks an in-flight
// campaign stops within one experiment granule of cancellation.
func TestManagerRealCancellation(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, CampaignWorkers: 1})
	defer m.Close()

	// Exhaustive IU sweep over all three models: far more experiments
	// than could finish before the cancel lands.
	big := jobs.Request{Workload: "excerptA", InjectAtFraction: 0.3}
	st, _, err := m.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	// Wait for the first running snapshot with a known total, then cancel.
	var total int
	for p := range ch {
		if p.State == jobs.StateRunning && p.Total > 0 {
			total = p.Total
			break
		}
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateCancelled {
		t.Fatalf("state = %v, want cancelled", final.State)
	}
	if final.Progress.Done >= total {
		t.Errorf("campaign completed all %d experiments despite cancellation", total)
	}
}

func TestManagerClosedRejectsSubmissions(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1, Executor: newBlockingExecutor().exec})
	m.Close()
	if _, _, err := m.Submit(small); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestManagerConcurrentSubmissions hammers one manager with identical and
// distinct requests from many goroutines under -race: identical requests
// must collapse onto one job, distinct ones must all complete.
func TestManagerConcurrentSubmissions(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 2})
	defer m.Close()

	const dup = 8
	ids := make([]string, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := m.Submit(small)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	// Two distinct requests racing with the duplicates.
	distinct := []jobs.Request{small, small}
	distinct[0].Seed = 7
	distinct[1].Models = []string{"sa0"}
	other := make([]string, len(distinct))
	for i, req := range distinct {
		wg.Add(1)
		go func(i int, req jobs.Request) {
			defer wg.Done()
			st, _, err := m.Submit(req)
			if err != nil {
				t.Error(err)
				return
			}
			other[i] = st.ID
		}(i, req)
	}
	wg.Wait()
	for i := 1; i < dup; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("duplicate submissions got jobs %v", ids)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range append([]string{ids[0]}, other...) {
		final, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("job %s: state %v (%s)", id, final.State, final.Error)
		}
	}
	if got := m.ManagerStats().Executed; got != 3 {
		t.Errorf("engine ran %d times, want 3 (one per distinct request)", got)
	}
}

func TestManagerUnknownWorkloadRejected(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{Concurrency: 1})
	defer m.Close()
	if _, _, err := m.Submit(jobs.Request{Workload: "no-such-benchmark"}); err == nil {
		t.Fatal("unknown workload accepted at submit")
	}
}

// TestManagerFailedJobReleasesKey pins the retry contract for execution
// failures: the job reports failed with its error and the key is freed so
// a resubmission runs again.
func TestManagerFailedJobReleasesKey(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{
		Concurrency: 1,
		Executor: func(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
			return nil, errors.New("engine exploded")
		},
	})
	defer m.Close()
	st, _, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateFailed || final.Error != "engine exploded" {
		t.Fatalf("state = %v (%q), want failed with the executor's error", final.State, final.Error)
	}
	// A failed key is released, so a resubmission is fresh.
	if _, fresh, err := m.Submit(small); err != nil || !fresh {
		t.Errorf("resubmit after failure: fresh=%v err=%v", fresh, err)
	}
}

// TestTransientContentAddress pins the cache-safety rules of the
// transient knobs: model lists and pulse width participate in the
// content address (a cached permanent result can never be served for a
// transient request), the pulse is normalized away when no "set" model
// can consume it, and the sampling seed survives normalization for
// transient campaigns even when the node set is exhaustive (it drives
// injection-cycle sampling there).
func TestTransientContentAddress(t *testing.T) {
	key := func(r jobs.Request) string {
		t.Helper()
		k, err := r.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	perm := key(jobs.Request{Workload: "excerptA"})
	seu := key(jobs.Request{Workload: "excerptA", Models: []string{"seu"}})
	if perm == seu {
		t.Fatal("seu request shares the permanent trio's content address")
	}

	set1 := key(jobs.Request{Workload: "excerptA", Models: []string{"set"}})
	set1b := key(jobs.Request{Workload: "excerptA", Models: []string{"set"}, PulseCycles: 1})
	set4 := key(jobs.Request{Workload: "excerptA", Models: []string{"set"}, PulseCycles: 4})
	if set1 != set1b {
		t.Error("default pulse width and spelled-out 1 hash differently")
	}
	if set1 == set4 {
		t.Error("pulse width did not change the content address")
	}

	// Without the set model the pulse shapes nothing and must not
	// fragment the key.
	sa1 := key(jobs.Request{Workload: "excerptA", Models: []string{"sa1"}})
	sa1p := key(jobs.Request{Workload: "excerptA", Models: []string{"sa1"}, PulseCycles: 9})
	if sa1 != sa1p {
		t.Error("pulse width fragmented a permanent-only request")
	}

	// Exhaustive permanent campaigns drop the seed; exhaustive transient
	// ones keep it (it picks the injection cycles).
	permS1 := key(jobs.Request{Workload: "excerptA", Models: []string{"sa1"}, Seed: 1})
	permS2 := key(jobs.Request{Workload: "excerptA", Models: []string{"sa1"}, Seed: 2})
	if permS1 != permS2 {
		t.Error("seed fragmented an exhaustive permanent campaign")
	}
	seuS1 := key(jobs.Request{Workload: "excerptA", Models: []string{"seu"}, Seed: 1})
	seuS2 := key(jobs.Request{Workload: "excerptA", Models: []string{"seu"}, Seed: 2})
	if seuS1 == seuS2 {
		t.Error("seed ignored by an exhaustive transient campaign")
	}

	// The empty model list still means the paper's permanent trio — the
	// transient models must be opted into by name.
	n, err := jobs.Request{Workload: "excerptA"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Models) != 3 {
		t.Fatalf("default model list = %v, want the permanent trio", n.Models)
	}
	if _, err := (jobs.Request{Workload: "excerptA", Models: []string{"flip"}}).Normalize(); err == nil {
		t.Error("unknown transient model name accepted")
	}
}
