package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/stats"
)

// State is a job's lifecycle phase.
type State string

// Job states. Queued and Running jobs are in flight (new submissions with
// the same key coalesce onto them); Done jobs feed the result cache;
// Failed and Cancelled jobs release their key so a resubmission retries.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors returned by Manager accessors.
var (
	ErrNotFound  = errors.New("jobs: no such job")
	ErrQueueFull = errors.New("jobs: queue full")
	ErrClosed    = errors.New("jobs: manager closed")
	ErrTerminal  = errors.New("jobs: job already terminal")
)

// ManagerOptions sizes the job service.
type ManagerOptions struct {
	// Concurrency is the number of jobs executed in parallel (the worker
	// pool size). Default 2.
	Concurrency int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it fail with ErrQueueFull. Default 64.
	QueueDepth int
	// CampaignWorkers bounds each campaign's own experiment parallelism
	// (0 = GOMAXPROCS). The total engine parallelism is roughly
	// Concurrency x CampaignWorkers.
	CampaignWorkers int
	// MaxJobs bounds how many jobs (and cached outcomes) the manager
	// retains: when exceeded, the oldest terminal jobs are evicted —
	// including their cache entries — so a long-running daemon's memory
	// stays bounded. In-flight jobs are never evicted. Default 512.
	MaxJobs int
	// Shards, when above 1, executes every campaign through a shard pool:
	// the campaign is split into that many deterministic experiment-range
	// shards, drained by in-process shard workers and by any remote
	// workers pulling leases over the HTTP shard surface. Results are
	// bit-identical to unsharded execution (sharding is scheduling, not
	// content), so Shards deliberately does not participate in request
	// content addresses.
	Shards int
	// ShardLocalWorkers bounds the in-process shard executors per
	// campaign: 0 selects CampaignWorkers (GOMAXPROCS when that is also
	// unset), -1 disables local execution so shards are served only to
	// remote workers.
	ShardLocalWorkers int
	// ShardLeaseTTL is how long a silent shard lease pins its shard
	// before it is reclaimed for another worker. Default 2 minutes.
	ShardLeaseTTL time.Duration
	// DataDir, when set, makes the service durable: completed outcomes
	// are committed to an on-disk content-addressed result store and job/
	// shard lifecycle events to a write-ahead journal under this
	// directory, so a restarted process serves finished campaigns from
	// disk and resumes in-flight ones from their last completed shard.
	// Only OpenManager honours it — NewManager stays in-memory (it
	// cannot surface an I/O error) and ignores the field.
	DataDir string
	// Executor overrides the campaign executor; nil selects Execute (or
	// the shard pool's Execute when Shards > 1). Tests substitute
	// deterministic or blocking executors here.
	Executor func(ctx context.Context, req Request, workers int, tap Tap) (*Outcome, error)
	// Obs, when non-nil, receives the service's metrics: manager counters
	// mirroring Stats, a queue-depth gauge, job and per-stage latency
	// histograms, shard-pool counters, the engine's counters, and — under
	// OpenManager — store/journal gauges. Pure observation with a no-op
	// default: a manager without a registry produces byte-identical
	// outcomes and content addresses.
	Obs *obs.Registry
	// Log, when non-nil, receives structured job lifecycle logs with
	// per-job and per-shard attributes. Nil discards them — the library
	// path stays silent; the daemon wires its slog handler here.
	Log *slog.Logger
}

// Stats counts what the manager has done since it started. Submitted is
// every accepted submission; Coalesced are submissions that joined an
// in-flight job; CacheHits are submissions answered from the completed
// result cache; Executed are campaigns that actually ran the engine.
type Stats struct {
	Submitted int `json:"submitted"`
	Coalesced int `json:"coalesced"`
	CacheHits int `json:"cache_hits"`
	Executed  int `json:"executed"`
}

// Status is an external snapshot of one job.
type Status struct {
	ID string `json:"id"`
	// Key is the request's content address (see Request.Key).
	Key     string    `json:"key"`
	State   State     `json:"state"`
	Request Request   `json:"request"`
	Created time.Time `json:"created"`
	// Error is set on failed and cancelled jobs.
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
	// Result is present once the job is done; List omits it (fetch the
	// job by ID, or the server's result endpoint, for the payload).
	Result *Outcome `json:"result,omitempty"`
}

// job is the manager-internal record; all fields are guarded by
// Manager.mu except the immutable identity fields.
type job struct {
	id      string
	key     string
	req     Request // normalized
	created time.Time

	state    State
	errMsg   string
	result   *Outcome
	done     int
	total    int
	failures int
	step     int // progress notification stride

	cancel   context.CancelFunc
	watchers []chan Progress
	finished chan struct{}
}

// Manager is the campaign job scheduler: a bounded worker pool over a
// submission queue, a content-addressed cache of completed outcomes, and
// per-job progress fan-out. All methods are safe for concurrent use.
type Manager struct {
	opts    ManagerOptions
	exec    func(ctx context.Context, req Request, workers int, tap Tap) (*Outcome, error)
	pool    *ShardPool   // non-nil when opts.Shards > 1 selected sharded execution
	persist *persistence // non-nil when OpenManager bound a data directory

	met managerMetrics
	log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond // signals pending work or closure to workers
	pending []*job     // submission FIFO; may hold cancelled-while-queued entries
	queued  int        // live queued jobs (excludes cancelled-in-queue)
	closed  bool
	seq     int
	jobs    map[string]*job // by ID
	order   []*job          // submission order, for List
	byKey   map[string]*job // latest non-failed job per content key
	stats   Stats
}

// NewManager starts an in-memory job service with its worker pool
// running. For a durable service backed by a data directory, use
// OpenManager (this constructor ignores ManagerOptions.DataDir — it has
// no way to report the I/O errors durability can hit).
func NewManager(opts ManagerOptions) *Manager {
	return newManager(opts, nil)
}

func newManager(opts ManagerOptions, p *persistence) *Manager {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 512
	}
	m := &Manager{
		opts:    opts,
		exec:    opts.Executor,
		persist: p,
		jobs:    map[string]*job{},
		byKey:   map[string]*job{},
		met:     newManagerMetrics(opts.Obs),
		log:     opts.Log,
	}
	if m.log == nil {
		m.log = slog.New(slog.DiscardHandler)
	}
	if p != nil {
		p.log = m.log
		p.registerMetrics(opts.Obs)
	}
	if m.exec == nil {
		if opts.Shards > 1 {
			m.pool = NewShardPool(ShardPoolOptions{
				Shards:       opts.Shards,
				LocalWorkers: opts.ShardLocalWorkers,
				LeaseTTL:     opts.ShardLeaseTTL,
				Obs:          opts.Obs,
				Log:          m.log,
				persist:      poolPersist(p),
			})
			m.exec = m.pool.Execute
		} else {
			reg := opts.Obs
			m.exec = func(ctx context.Context, req Request, workers int, tap Tap) (*Outcome, error) {
				return ExecuteObs(ctx, req, workers, tap, reg)
			}
		}
	}
	// Scrape-time gauge: the live queued count already lives behind the
	// manager lock, so read it there instead of mirroring it.
	opts.Obs.GaugeFunc("jobs_queue_depth",
		"Jobs queued but not yet running.", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.queued)
		})
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Concurrency; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close cancels every in-flight job, stops the workers and waits for them
// to drain (queued jobs are popped and immediately cancelled via the
// already-dead base context). Submissions after Close fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	if m.persist != nil {
		m.persist.Close()
	}
}

// Submit accepts a campaign request. A request whose content key matches
// a queued or running job coalesces onto it; one matching a completed
// outcome is answered from the cache as an already-done job. Either way
// the engine runs at most once per key, the returned status carries the
// job the caller should follow, and `fresh` reports whether this
// submission created a new job (false for coalesced and cached answers).
func (m *Manager) Submit(req Request) (st Status, fresh bool, err error) {
	n, err := req.Normalize()
	if err != nil {
		return Status{}, false, err
	}
	key, err := keyOf(n)
	if err != nil {
		return Status{}, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, false, ErrClosed
	}
	if j := m.byKey[key]; j != nil {
		m.stats.Submitted++
		m.met.submitted.Inc()
		if j.state == StateDone {
			m.stats.CacheHits++
			m.met.cacheHits.Inc()
		} else {
			m.stats.Coalesced++
			m.met.coalesced.Inc()
		}
		return m.statusLocked(j), false, nil
	}
	// The persistent result store extends the cache across process
	// lifetimes: a campaign completed before the last restart answers
	// here without touching the engine.
	if m.persist != nil {
		if out, ok := m.persist.loadOutcome(key); ok {
			m.stats.Submitted++
			m.stats.CacheHits++
			m.met.submitted.Inc()
			m.met.cacheHits.Inc()
			j := m.installStoredLocked(key, n, out)
			return m.statusLocked(j), false, nil
		}
	}
	// The bound counts live queued jobs; cancelled-while-queued entries
	// are spliced out of the FIFO by Cancel and free their slot.
	if m.queued >= m.opts.QueueDepth {
		return Status{}, false, ErrQueueFull
	}
	// Durably record the submission before admitting it: a job the
	// journal cannot remember would vanish in the next crash, which is
	// worse than failing the submit now.
	if m.persist != nil {
		if err := m.persist.journalSubmit(key, n); err != nil {
			return Status{}, false, fmt.Errorf("jobs: journaling submission: %w", err)
		}
	}
	m.stats.Submitted++
	m.met.submitted.Inc()
	m.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", m.seq),
		key:      key,
		req:      n,
		created:  time.Now().UTC(), //lint:allow det status-API timestamp, not result state
		state:    StateQueued,
		finished: make(chan struct{}),
	}
	m.pending = append(m.pending, j)
	m.queued++
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.byKey[key] = j
	m.pruneLocked()
	m.cond.Signal()
	m.log.Info("job submitted", "job", j.id, "key", shortKey(key), "workload", n.Workload)
	return m.statusLocked(j), true, nil
}

// shortKey abbreviates a content address for log attrs, mirroring the
// 12-hex prefix lease ids already use.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// installStoredLocked materializes a persistent-store hit as an
// already-done job so status, result, watch and wait all behave exactly
// as for a job that completed in this process. No lifecycle records are
// journaled — the outcome is already durable under its content address.
func (m *Manager) installStoredLocked(key string, n Request, out *Outcome) *job {
	m.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", m.seq),
		key:      key,
		req:      n,
		created:  time.Now().UTC(), //lint:allow det status-API timestamp, not result state
		state:    StateDone,
		result:   out,
		finished: make(chan struct{}),
	}
	close(j.finished)
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.byKey[key] = j
	m.pruneLocked()
	return j
}

// submitRecovered requeues one journal-recovered in-flight job on boot.
// It bypasses the queue-depth bound (the job was admitted before the
// crash) and does not journal — the compacted journal already carries
// its submission record — but it does stash the job's durable completed
// shards for the coordinator that will resume it.
func (m *Manager) submitRecovered(rj *RecoveredJob) error {
	n, err := rj.Request.Normalize()
	if err != nil {
		return err
	}
	key, err := keyOf(n)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.byKey[key] != nil {
		return nil // duplicate submission records collapsed to one job
	}
	m.persist.stashRecovered(key, rj.Completed)
	m.stats.Submitted++
	m.met.submitted.Inc()
	m.seq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", m.seq),
		key:      key,
		req:      n,
		created:  time.Now().UTC(), //lint:allow det status-API timestamp, not result state
		state:    StateQueued,
		finished: make(chan struct{}),
	}
	m.pending = append(m.pending, j)
	m.queued++
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.byKey[key] = j
	m.cond.Signal()
	return nil
}

// pruneLocked evicts the oldest terminal jobs — and their cached
// outcomes — once the retention bound is exceeded. In-flight jobs are
// skipped, so the manager can transiently hold more than MaxJobs when
// the backlog itself exceeds the bound.
func (m *Manager) pruneLocked() {
	excess := len(m.order) - m.opts.MaxJobs
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if excess > 0 && j.state.Terminal() {
			excess--
			delete(m.jobs, j.id)
			if m.byKey[j.key] == j {
				delete(m.byKey, j.key)
			}
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns every job in submission order. Result payloads are
// omitted from list snapshots — a done campaign's Outcome embeds the full
// per-experiment array, so a list near the retention bound would re-ship
// megabytes per poll; fetch Get(id) or the result endpoint instead.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, len(m.order))
	for i, j := range m.order {
		out[i] = m.statusLocked(j)
		out[i].Result = nil
	}
	return out
}

// ManagerStats returns the counters accumulated so far.
func (m *Manager) ManagerStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ShardPool returns the manager's shard pool, or nil when sharded
// execution is not enabled. The HTTP layer serves shard leases to remote
// workers through it.
func (m *Manager) ShardPool() *ShardPool { return m.pool }

// Cancel stops a job and returns its status as of the cancellation: a
// queued job is cancelled immediately, a running one has its context
// cancelled and stops within one experiment granule. Terminal jobs
// return ErrTerminal. The status is snapshotted under the same lock —
// callers must not re-resolve the ID afterwards, since a finished job
// can be pruned at any moment.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		m.queued--
		// Splice the job out of the pending FIFO now: leaving carcasses
		// for workers to skip would let a submit-and-cancel loop grow the
		// slice without bound while every worker is busy.
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.finishLocked(j)
		return m.statusLocked(j), nil
	case StateRunning:
		// Release the content key now, not when the worker notices the
		// cancellation: a resubmission in that window must start a fresh
		// job rather than coalesce onto this dying one.
		if m.byKey[j.key] == j {
			delete(m.byKey, j.key)
		}
		j.cancel()
		return m.statusLocked(j), nil
	default:
		return m.statusLocked(j), ErrTerminal
	}
}

// Watch subscribes to a job's progress. The returned channel first yields
// the job's current snapshot, then throttled incremental snapshots, and
// finally the terminal snapshot, after which it is closed. Slow consumers
// lose intermediate snapshots (newest wins), never the terminal one. The
// unsubscribe function releases the subscription early.
func (m *Manager) Watch(id string) (<-chan Progress, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Progress, 16)
	ch <- m.progressLocked(j)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	j.watchers = append(j.watchers, ch)
	unsub := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				close(ch)
				return
			}
		}
	}
	return ch, unsub, nil
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns its final status.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.finished:
		// Snapshot the captured job rather than re-resolving the ID: a
		// just-finished job can be pruned concurrently, and its waiters
		// must still see the final status.
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.statusLocked(j), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// worker drains the pending FIFO until Close. After Close it keeps
// popping: queued jobs then run against the cancelled base context and
// terminate as cancelled immediately, so no waiter is left hanging.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pending) == 0 {
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		if j.state != StateQueued { // cancelled while queued
			continue
		}
		m.queued--
		j.state = StateRunning
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		m.notifyLocked(j)
		m.mu.Unlock()

		// The tracer rides the executor context so the unchanged Executor
		// seam still yields per-stage timings; its spans also join the
		// job-finished log line below.
		tr := obs.NewTracer(m.met.stageSeconds)
		m.log.Info("job started", "job", j.id, "key", shortKey(j.key), "workload", j.req.Workload)
		started := time.Now() //lint:allow det job-duration metric, observation only
		out, err := m.exec(obs.WithTracer(ctx, tr), j.req, m.opts.CampaignWorkers, func(done, total, failures int) {
			m.mu.Lock()
			j.done, j.total, j.failures = done, total, failures
			if j.step == 0 {
				// ~64 notifications per campaign, plus the final one.
				j.step = total/64 + 1
			}
			if done == total || done%j.step == 0 {
				m.notifyLocked(j)
			}
			m.mu.Unlock()
		})
		cancel()
		dur := time.Since(started) //lint:allow det job-duration metric, observation only
		m.met.jobSeconds.Observe(dur.Seconds())

		// Commit the outcome before the in-memory terminal transition
		// journals job_done: recovery treats a done record as "the result
		// is in the store", and the reverse order would open a crash
		// window where the record exists but the result does not.
		if err == nil && m.persist != nil {
			m.persist.saveOutcome(j.key, out)
		}
		m.mu.Lock()
		switch {
		case err == nil:
			j.state = StateDone
			j.result = out
			m.stats.Executed++
			m.met.executed.Inc()
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.state = StateCancelled
			j.errMsg = err.Error()
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
		}
		state, errMsg := j.state, j.errMsg
		m.finishLocked(j)
		m.mu.Unlock()

		args := []any{"job", j.id, "key", shortKey(j.key), "state", string(state), "duration_s", dur.Seconds()}
		for _, sp := range tr.Spans() {
			args = append(args, "stage_"+sp.Stage+"_s", sp.Seconds)
		}
		if errMsg != "" {
			args = append(args, "error", errMsg)
		}
		m.log.Info("job finished", args...)
		m.mu.Lock()
	}
}

// finishLocked publishes a job's terminal state: releases its content key
// unless it produced a cacheable outcome, emits the terminal progress
// snapshot, closes all watcher channels and unblocks waiters.
func (m *Manager) finishLocked(j *job) {
	if m.persist != nil {
		m.persist.journalJobEnd(j.state, j.key, j.errMsg)
	}
	if j.state == StateDone {
		// A cancelled-then-completed-anyway job had its key released at
		// Cancel; restore cacheability unless a fresh job took the key.
		if m.byKey[j.key] == nil {
			m.byKey[j.key] = j
		}
	} else if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	m.notifyLocked(j)
	for _, ch := range j.watchers {
		close(ch)
	}
	j.watchers = nil
	close(j.finished)
}

// notifyLocked pushes the current progress snapshot to every watcher,
// dropping the oldest buffered snapshot when a watcher is full.
func (m *Manager) notifyLocked(j *job) {
	p := m.progressLocked(j)
	for _, ch := range j.watchers {
		select {
		case ch <- p:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

func (m *Manager) progressLocked(j *job) Progress {
	p := Progress{
		JobID:    j.id,
		State:    j.state,
		Done:     j.done,
		Total:    j.total,
		Failures: j.failures,
	}
	// Estimate emits the Wilson interval alongside the point estimate so
	// a Done==0 snapshot (Pf 0, interval (0,1)) is distinguishable from a
	// true zero-failure estimate (Pf 0, interval shrinking around 0).
	p.Pf, p.PfLow, p.PfHigh = campaign.Tally{Done: j.done, Failures: j.failures}.Estimate(stats.Z95)
	if j.state == StateDone && j.result != nil {
		// The terminal snapshot reports the exact final numbers.
		p.Pf, p.PfLow, p.PfHigh = j.result.Pf, j.result.PfLow, j.result.PfHigh
		p.Done, p.Total, p.Failures = j.result.Injections, j.result.Injections, j.result.Failures
	}
	return p
}

func (m *Manager) statusLocked(j *job) Status {
	return Status{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Request:  j.req,
		Created:  j.created,
		Error:    j.errMsg,
		Progress: m.progressLocked(j),
		Result:   j.result,
	}
}
