package jobs

import "repro/internal/obs"

// This file holds the job service's metric handles. Everything is
// nil-safe: a manager built without ManagerOptions.Obs carries no-op
// handles, so the instrumented code paths below cost a nil check each
// and the in-memory library path behaves exactly as before. Counters
// mirror the Stats/ShardStats snapshot structs one-for-one — the
// snapshots stay the HTTP healthz payload, the counters give the same
// numbers a time dimension.

// managerMetrics instruments the job manager.
type managerMetrics struct {
	submitted *obs.Counter
	coalesced *obs.Counter
	cacheHits *obs.Counter
	executed  *obs.Counter
	// jobSeconds observes wall-clock executor latency per executed job
	// (coalesced and cache-hit submissions never reach the executor).
	jobSeconds *obs.Histogram
	// stageSeconds breaks a campaign execution into its stages (golden,
	// plan, execute, assemble) via the obs.Tracer each worker threads
	// through the executor context.
	stageSeconds *obs.HistogramVec
}

func newManagerMetrics(r *obs.Registry) managerMetrics {
	return managerMetrics{
		submitted: r.Counter("jobs_submitted_total",
			"Campaign submissions accepted (including coalesced and cache hits)."),
		coalesced: r.Counter("jobs_coalesced_total",
			"Submissions that joined an in-flight job with the same content key."),
		cacheHits: r.Counter("jobs_cache_hits_total",
			"Submissions answered from the completed result cache or the on-disk store."),
		executed: r.Counter("jobs_executed_total",
			"Campaigns that actually ran the engine."),
		jobSeconds: r.Histogram("jobs_job_duration_seconds",
			"Executor wall-clock latency per executed job.", obs.DurationBuckets),
		stageSeconds: r.HistogramVec("jobs_campaign_stage_seconds",
			"Per-stage campaign execution latency.", obs.DurationBuckets, "stage"),
	}
}

// shardMetrics instruments the shard pool and its coordinators.
type shardMetrics struct {
	campaigns *obs.Counter
	leased    *obs.Counter
	completed *obs.Counter
	requeued  *obs.Counter
	// reclaimed is the subset of requeues caused by TTL expiry of a
	// silent lease (dead worker), as opposed to explicit Fail reports.
	reclaimed *obs.Counter
	// poisoned counts campaigns failed by a shard exhausting its
	// failure/reclaim bounds or reporting diverged golden-run metadata.
	poisoned     *obs.Counter
	earlyStopped *obs.Counter
}

// newShardMetrics registers the pool's counters plus the in-flight lease
// gauge, which reads len(p.owner) at scrape time.
func newShardMetrics(r *obs.Registry, p *ShardPool) shardMetrics {
	r.GaugeFunc("shards_inflight",
		"Shard leases currently held by workers.", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.owner))
		})
	return shardMetrics{
		campaigns: r.Counter("shards_campaigns_total",
			"Sharded campaigns executed."),
		leased: r.Counter("shards_leased_total",
			"Shard leases handed out (including re-leases of requeued shards)."),
		completed: r.Counter("shards_completed_total",
			"Shard results merged into their campaign."),
		requeued: r.Counter("shards_requeued_total",
			"Shards put back in the queue after a worker failure or lease expiry."),
		reclaimed: r.Counter("shards_reclaimed_total",
			"Shard leases reclaimed after their TTL expired (silent worker)."),
		poisoned: r.Counter("shards_poisoned_total",
			"Campaigns failed by a shard exhausting its failure or reclaim bound."),
		earlyStopped: r.Counter("shards_early_stopped_total",
			"Sharded campaigns halted by the adaptive epsilon rule."),
	}
}
