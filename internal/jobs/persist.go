package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Durability: when a manager is opened with a data directory, every
// completed campaign outcome is committed to an on-disk content-addressed
// result store and every job/shard lifecycle event is appended to a
// checksummed write-ahead journal. A crashed coordinator reopens both on
// boot: completed campaigns are served from the store without touching
// the engine (dedup across process lifetimes), and in-flight jobs are
// resubmitted with their journaled completed shards pre-folded, so a
// recovered campaign resumes from its last durable shard instead of
// restarting from zero. Because the shard plan and experiment expansion
// are pure functions of the normalized request, the recovered run's
// merged outcome is byte-identical to an uninterrupted one.
//
// Journal record types. Only job_submitted and shard_completed carry
// recovery state (and are fsync'd); the rest are breadcrumbs — cheap,
// unsynced, and ignored by replay — that make a post-mortem journal read
// like a flight recorder.
const (
	recJobSubmitted   = "job_submitted"   // Data: normalized Request
	recJobDone        = "job_done"        // outcome committed to the store
	recJobFailed      = "job_failed"      // Data: {"error": ...}
	recJobCancelled   = "job_cancelled"   //
	recShardPlanned   = "shard_planned"   // Data: {"total": N, "shards": K}
	recShardLeased    = "shard_leased"    // Data: lease id + range
	recShardProgress  = "shard_progress"  // Data: lease id + tally
	recShardCompleted = "shard_completed" // Data: ShardOutput
)

// journalName is the WAL file inside a manager's data directory; results
// live in the resultsDir subdirectory beside it.
const (
	journalName = "journal.ndjson"
	resultsDir  = "results"
)

// RecoveredJob is one in-flight campaign reconstructed from the journal:
// its normalized request and every shard output that was durably
// completed before the crash.
type RecoveredJob struct {
	Key       string
	Request   Request
	Completed []ShardOutput
}

// RecoveryInfo summarizes what OpenManager found in the data directory.
type RecoveryInfo struct {
	// StoredResults is the number of verified outcomes in the result
	// store (completed campaigns that will cache-hit without executing).
	StoredResults int
	// ResumedJobs is the number of in-flight jobs resubmitted from the
	// journal.
	ResumedJobs int
	// RecoveredShards counts the durable completed shards pre-folded
	// into the resumed jobs.
	RecoveredShards int
	// TornTail reports that the journal ended in a torn or corrupt
	// record, which recovery truncated — expected after a crash, worth a
	// log line.
	TornTail bool
}

// persistence binds a manager to its store and journal. All methods are
// safe for concurrent use and degrade to logging on I/O errors: a full
// disk must never take down the in-memory service, only its durability.
type persistence struct {
	store   *store.Store
	journal *store.Journal
	log     *slog.Logger

	mu        sync.Mutex
	recovered map[string][]ShardOutput // journaled completed shards, by campaign key
}

// openPersistence opens (or creates) the store and journal under dir and
// replays the journal into the set of in-flight jobs.
func openPersistence(dir string) (*persistence, []*RecoveredJob, error) {
	st, err := store.Open(filepath.Join(dir, resultsDir))
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening result store: %w", err)
	}
	j, recs, err := store.OpenJournal(filepath.Join(dir, journalName))
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	p := &persistence{
		store: st, journal: j, recovered: map[string][]ShardOutput{},
		log: slog.New(slog.DiscardHandler),
	}
	return p, replayJournal(recs), nil
}

// registerMetrics exposes the store and journal as scrape-time gauges.
// Everything reads a consistent snapshot under the component's own lock,
// so the numbers stay live without per-write counter plumbing.
func (p *persistence) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("store_results",
		"Verified campaign outcomes in the on-disk result store.", func() float64 {
			return float64(p.store.Len())
		})
	reg.GaugeFunc("store_journal_size_bytes",
		"Bytes of valid records in the write-ahead journal.", func() float64 {
			return float64(p.journal.Stats().SizeBytes)
		})
	reg.GaugeFunc("store_journal_records",
		"Live records in the write-ahead journal.", func() float64 {
			return float64(p.journal.Stats().Records)
		})
	reg.CounterFunc("store_journal_fsyncs_total",
		"Fsync calls issued against the journal file.", func() float64 {
			return float64(p.journal.Stats().Fsyncs)
		})
	reg.GaugeFunc("store_journal_compaction_age_seconds",
		"Seconds since the journal was last compacted (or opened).", func() float64 {
			//lint:allow det scrape-time compaction-age gauge, observation only
			return time.Since(p.journal.Stats().LastCompaction).Seconds()
		})
}

// replayJournal folds the journal's records into the jobs that were
// still in flight when the process died, in submission order. Terminal
// records retire their job; duplicate submissions of a live key merge
// (keeping the completed shards already folded); completion records for
// untracked keys are dropped. Lease, plan and progress records are
// breadcrumbs only.
func replayJournal(recs []store.Record) []*RecoveredJob {
	byKey := map[string]*RecoveredJob{}
	var order []*RecoveredJob
	for _, rec := range recs {
		switch rec.Type {
		case recJobSubmitted:
			if byKey[rec.Key] != nil {
				continue // duplicate submission record; keep folded state
			}
			var req Request
			if err := json.Unmarshal(rec.Data, &req); err != nil {
				continue // unreadable request: nothing to resume
			}
			rj := &RecoveredJob{Key: rec.Key, Request: req}
			byKey[rec.Key] = rj
			order = append(order, rj)
		case recJobDone, recJobFailed, recJobCancelled:
			if rj := byKey[rec.Key]; rj != nil {
				delete(byKey, rec.Key)
				for i, o := range order {
					if o == rj {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		case recShardCompleted:
			rj := byKey[rec.Key]
			if rj == nil {
				continue
			}
			var out ShardOutput
			if err := json.Unmarshal(rec.Data, &out); err != nil {
				continue
			}
			if len(out.Indices) != len(out.Experiments) {
				continue // malformed despite checksum: drop, shard re-runs
			}
			rj.Completed = append(rj.Completed, out)
		}
	}
	return order
}

// compact rewrites the journal down to the live jobs' recovery state:
// one submission record per in-flight job plus its completed shards.
// Everything else — terminal pairs, breadcrumbs, torn tails — has been
// folded and is dropped, bounding journal growth across restarts.
func (p *persistence) compact(live []*RecoveredJob) error {
	var recs []store.Record
	for _, rj := range live {
		req, err := json.Marshal(rj.Request)
		if err != nil {
			return err
		}
		recs = append(recs, store.Record{Type: recJobSubmitted, Key: rj.Key, Data: req})
		for _, out := range rj.Completed {
			b, err := json.Marshal(out)
			if err != nil {
				return err
			}
			recs = append(recs, store.Record{Type: recShardCompleted, Key: rj.Key, Data: b})
		}
	}
	return p.journal.Rewrite(recs)
}

// journalSubmit durably records a fresh submission before the job is
// queued; failing it fails the submission — accepting a job the journal
// cannot remember would silently drop it on the next crash.
func (p *persistence) journalSubmit(key string, req Request) error {
	return p.journal.AppendSync(recJobSubmitted, key, req)
}

// journalJobEnd retires a job in the journal. Loss of this record is
// tolerable (the job replays as in-flight and its completed outcome
// cache-hits the store), so errors only log.
func (p *persistence) journalJobEnd(state State, key string, errMsg string) {
	typ := recJobCancelled
	switch state {
	case StateDone:
		typ = recJobDone
	case StateFailed:
		typ = recJobFailed
	}
	var data interface{}
	if errMsg != "" {
		data = struct {
			Error string `json:"error"`
		}{errMsg}
	}
	if err := p.journal.AppendSync(typ, key, data); err != nil {
		p.log.Error("journal append failed", "record", typ, "key", shortKey(key), "error", err)
	}
}

// saveOutcome commits a completed campaign's canonical encoding to the
// result store. Best-effort: on failure the outcome survives in memory
// for this process's lifetime, just not across a restart.
func (p *persistence) saveOutcome(key string, out *Outcome) {
	var buf bytes.Buffer
	if err := EncodeOutcome(&buf, out); err != nil {
		p.log.Error("encoding outcome for store failed", "key", shortKey(key), "error", err)
		return
	}
	if err := p.store.Put(key, buf.Bytes()); err != nil {
		p.log.Error("persisting outcome failed", "key", shortKey(key), "error", err)
	}
}

// loadOutcome fetches and decodes a stored campaign outcome.
func (p *persistence) loadOutcome(key string) (*Outcome, bool) {
	b, ok := p.store.Get(key)
	if !ok {
		return nil, false
	}
	var out Outcome
	if err := json.Unmarshal(b, &out); err != nil {
		// Verified bytes that fail to decode mean a schema change, not
		// corruption; treat as a miss and re-execute.
		return nil, false
	}
	return &out, true
}

// ShardEvent journals one shard lifecycle event. Completed shards are
// the currency of crash recovery and are fsync'd; leases and progress
// are breadcrumbs and ride the next sync.
func (p *persistence) ShardEvent(typ, key string, data interface{}) {
	var err error
	if typ == recShardCompleted {
		err = p.journal.AppendSync(typ, key, data)
	} else {
		err = p.journal.Append(typ, key, data)
	}
	if err != nil {
		p.log.Error("journal append failed", "record", typ, "key", shortKey(key), "error", err)
	}
}

// stashRecovered records a resumed job's journaled shard outputs for the
// coordinator that will re-plan it.
func (p *persistence) stashRecovered(key string, outs []ShardOutput) {
	if len(outs) == 0 {
		return
	}
	p.mu.Lock()
	p.recovered[key] = outs
	p.mu.Unlock()
}

// TakeRecovered hands a campaign's journaled completed shards to its
// coordinator, exactly once.
func (p *persistence) TakeRecovered(key string) []ShardOutput {
	p.mu.Lock()
	defer p.mu.Unlock()
	outs := p.recovered[key]
	delete(p.recovered, key)
	return outs
}

// Close flushes and closes the journal.
func (p *persistence) Close() {
	if err := p.journal.Close(); err != nil {
		p.log.Error("closing journal failed", "error", err)
	}
}

// OpenManager starts a job service backed by the data directory in
// opts.DataDir: the result store and write-ahead journal are opened (and
// integrity-checked) first, completed campaigns become persistent cache
// hits, and journaled in-flight jobs are resubmitted with their durable
// shards pre-folded. With an empty DataDir it is NewManager with an
// empty RecoveryInfo.
func OpenManager(opts ManagerOptions) (*Manager, RecoveryInfo, error) {
	if opts.DataDir == "" {
		return NewManager(opts), RecoveryInfo{}, nil
	}
	p, live, err := openPersistence(opts.DataDir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{StoredResults: p.store.Len(), TornTail: p.journal.TornTail()}
	// A job whose outcome reached the store before the crash retired the
	// journal record is already done; drop it from the live set rather
	// than re-executing a campaign whose result is durable.
	kept := live[:0]
	for _, rj := range live {
		if _, ok := p.store.Get(rj.Key); ok {
			continue
		}
		kept = append(kept, rj)
	}
	live = kept
	if err := p.compact(live); err != nil {
		p.Close()
		return nil, RecoveryInfo{}, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	m := newManager(opts, p)
	for _, rj := range live {
		if err := m.submitRecovered(rj); err != nil {
			// A request that no longer normalizes (e.g. a workload removed
			// between releases) cannot resume; log and drop it.
			m.log.Warn("dropping unrecoverable job", "key", shortKey(rj.Key), "error", err)
			continue
		}
		info.ResumedJobs++
		info.RecoveredShards += len(rj.Completed)
	}
	return m, info, nil
}
