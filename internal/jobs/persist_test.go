package jobs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/store"
)

// The recovery tests below simulate crashes the honest way: they write
// the same journal records a dying coordinator would have left behind
// (the record vocabulary is part of the on-disk format, pinned here on
// purpose) and then open a manager over the debris. Nothing reaches
// into unexported state — if these pass, a real SIGKILL recovers too,
// which is exactly what cmd/crashsmoke demonstrates process-for-real.

func encodeOutcome(t *testing.T, o *jobs.Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := jobs.EncodeOutcome(&buf, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitDone(t *testing.T, m *jobs.Manager, id string) jobs.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %q (%s)", st.State, st.Error)
	}
	full, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// journalRecords writes a hand-crafted journal into dir — the debris of
// a simulated crash — using the same framing the live service uses.
func journalRecords(t *testing.T, dir string, recs ...store.Record) {
	t.Helper()
	j, _, err := store.OpenJournal(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.AppendSync(r.Type, r.Key, json.RawMessage(r.Data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func submittedRecord(t *testing.T, req jobs.Request) store.Record {
	t.Helper()
	n, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return store.Record{Type: "job_submitted", Key: key, Data: data}
}

// TestStoreBackedCacheSurvivesRestart is the headline durability
// contract: a campaign executed before a restart is served from the
// on-disk result store after it — same bytes, zero engine runs.
func TestStoreBackedCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := jobs.ManagerOptions{Concurrency: 1, DataDir: dir}

	m1, info, err := jobs.OpenManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	if info != (jobs.RecoveryInfo{}) {
		t.Fatalf("fresh data dir reported recovery %+v", info)
	}
	st, fresh, err := m1.Submit(small)
	if err != nil || !fresh {
		t.Fatalf("Submit = fresh %v, err %v; want a fresh job", fresh, err)
	}
	first := encodeOutcome(t, waitDone(t, m1, st.ID).Result)
	m1.Close()

	m2, info, err := jobs.OpenManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if info.StoredResults != 1 || info.ResumedJobs != 0 {
		t.Fatalf("recovery %+v: want 1 stored result, 0 resumed jobs", info)
	}
	st2, fresh2, err := m2.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2 {
		t.Fatal("resubmission after restart executed instead of hitting the store")
	}
	if st2.State != jobs.StateDone {
		t.Fatalf("stored-result submission is %q, want done immediately", st2.State)
	}
	stats := m2.ManagerStats()
	if stats.Executed != 0 || stats.CacheHits != 1 {
		t.Fatalf("stats %+v: want 0 executed, 1 cache hit", stats)
	}
	got, err := m2.Get(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOutcome(t, got.Result), first) {
		t.Fatal("stored outcome bytes differ from the pre-restart outcome")
	}
}

// TestReplayResumesInFlightJob: a journal holding a submission with no
// terminal record is a campaign the dead process never finished; the
// next boot must run it to completion unprompted.
func TestReplayResumesInFlightJob(t *testing.T) {
	dir := t.TempDir()
	journalRecords(t, dir, submittedRecord(t, small))

	m, info, err := jobs.OpenManager(jobs.ManagerOptions{Concurrency: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if info.ResumedJobs != 1 || info.StoredResults != 0 {
		t.Fatalf("recovery %+v: want 1 resumed job", info)
	}
	list := m.List()
	if len(list) != 1 {
		t.Fatalf("recovered manager lists %d jobs, want 1", len(list))
	}
	got := waitDone(t, m, list[0].ID)

	want, err := jobs.Execute(context.Background(), small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOutcome(t, got.Result), encodeOutcome(t, want)) {
		t.Fatal("recovered run diverged from a direct Execute of the same request")
	}

	// A client resubmitting after the crash coalesces or cache-hits —
	// never a second execution.
	if _, fresh, err := m.Submit(small); err != nil || fresh {
		t.Fatalf("resubmit = fresh %v, err %v; want coalesced/cached", fresh, err)
	}
	if ex := m.ManagerStats().Executed; ex != 1 {
		t.Fatalf("executed %d campaigns, want exactly 1", ex)
	}
}

// shardOutputRecord materializes the durable record of one completed
// shard, exactly as a coordinator journals it after folding.
func shardOutputRecord(t *testing.T, req jobs.Request, start, end int) store.Record {
	t.Helper()
	out, err := jobs.ExecuteShard(context.Background(), req, start, end, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return store.Record{Type: "shard_completed", Key: key, Data: data}
}

// TestReplayDedupsDuplicateShardCompletions: a crash between a shard
// requeue and its completion can journal the same shard twice. Replay
// must fold it once — the per-experiment have[] guard — and the resumed
// campaign must only execute the genuinely missing ranges.
func TestReplayDedupsDuplicateShardCompletions(t *testing.T) {
	dir := t.TempDir()
	done := shardOutputRecord(t, small, 0, 1)
	journalRecords(t, dir, submittedRecord(t, small), done, done)

	// small expands to 4 experiments; Shards:4 plans one per shard.
	m, info, err := jobs.OpenManager(jobs.ManagerOptions{Concurrency: 1, Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if info.ResumedJobs != 1 {
		t.Fatalf("recovery %+v: want 1 resumed job", info)
	}
	if info.RecoveredShards == 0 {
		t.Fatalf("recovery %+v: completed shard not recovered", info)
	}
	list := m.List()
	got := waitDone(t, m, list[0].ID)

	want, err := jobs.Execute(context.Background(), small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOutcome(t, got.Result), encodeOutcome(t, want)) {
		t.Fatal("resumed sharded run diverged from a direct Execute")
	}
	// Experiment 0 was recovered from the journal: the pool must only
	// have planned the three uncovered shards.
	if st := m.ShardPool().Stats(); st.Planned != 3 || st.Completed != 3 {
		t.Fatalf("shard stats %+v: want 3 planned / 3 completed (1 of 4 recovered)", st)
	}
}

// TestReplayIgnoresLeaseWithoutCompletion: a lease breadcrumb with no
// completion record is work the crash destroyed. The shard must stay
// pending and re-execute; nothing may be trusted from the lease alone.
func TestReplayIgnoresLeaseWithoutCompletion(t *testing.T) {
	dir := t.TempDir()
	key, err := small.Key()
	if err != nil {
		t.Fatal(err)
	}
	journalRecords(t, dir,
		submittedRecord(t, small),
		store.Record{Type: "shard_leased", Key: key,
			Data: json.RawMessage(`{"lease":"gone-with-the-crash","worker":"w1","start":0,"end":2}`)},
	)

	m, info, err := jobs.OpenManager(jobs.ManagerOptions{Concurrency: 1, Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if info.ResumedJobs != 1 || info.RecoveredShards != 0 {
		t.Fatalf("recovery %+v: want 1 resumed job, 0 recovered shards", info)
	}
	got := waitDone(t, m, m.List()[0].ID)

	want, err := jobs.Execute(context.Background(), small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOutcome(t, got.Result), encodeOutcome(t, want)) {
		t.Fatal("recovered run diverged from a direct Execute")
	}
	if st := m.ShardPool().Stats(); st.Planned != 2 {
		t.Fatalf("shard stats %+v: leased-but-incomplete shard should replan fully (want 2 planned)", st)
	}
}

// TestReplayRejectsMalformedShardRecord: a shard_completed record whose
// tallies do not cover its range (truncated Data that still parses) is
// discarded rather than folded as partial truth.
func TestReplayRejectsMalformedShardRecord(t *testing.T) {
	dir := t.TempDir()
	key, err := small.Key()
	if err != nil {
		t.Fatal(err)
	}
	journalRecords(t, dir,
		submittedRecord(t, small),
		store.Record{Type: "shard_completed", Key: key,
			Data: json.RawMessage(`{"golden_cycles":1,"indices":[0,1],"experiments":[]}`)},
	)

	m, info, err := jobs.OpenManager(jobs.ManagerOptions{Concurrency: 1, Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if info.RecoveredShards != 0 {
		t.Fatalf("recovery %+v: malformed shard record was trusted", info)
	}
	got := waitDone(t, m, m.List()[0].ID)
	want, err := jobs.Execute(context.Background(), small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeOutcome(t, got.Result), encodeOutcome(t, want)) {
		t.Fatal("recovered run diverged from a direct Execute")
	}
}

// TestReplayDropsFinishedJobWithStoredResult: a crash after the store
// commit but before the journal's terminal record leaves a "live" job
// whose result is already durable. Recovery must serve it, not rerun it.
func TestReplayDropsFinishedJobWithStoredResult(t *testing.T) {
	dir := t.TempDir()
	opts := jobs.ManagerOptions{Concurrency: 1, DataDir: dir}

	// Run once to populate the store...
	m1, _, err := jobs.OpenManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := m1.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m1, st.ID)
	m1.Close()

	// ...then forge the crash window: a journal claiming the job never
	// finished, next to a store that has its outcome.
	journalRecords(t, dir, submittedRecord(t, small))

	m2, info, err := jobs.OpenManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if info.StoredResults != 1 || info.ResumedJobs != 0 {
		t.Fatalf("recovery %+v: want the stored result to retire the in-flight record", info)
	}
	if _, fresh, err := m2.Submit(small); err != nil || fresh {
		t.Fatalf("resubmit = fresh %v, err %v; want a store hit", fresh, err)
	}
	if ex := m2.ManagerStats().Executed; ex != 0 {
		t.Fatalf("executed %d campaigns, want 0 (result was already durable)", ex)
	}
}
