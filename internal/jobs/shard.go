package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The shard layer splits one campaign into deterministic experiment-range
// shards and merges the executed ranges back into the canonical outcome.
//
// The currency is an index range over the campaign's deterministic
// experiment expansion (experimentsFor): every worker — in-process
// goroutine or remote `faultserverd -worker` — expands the identical
// list from the normalized request, so a shard is fully described by
// [Start,End) and the union of any partition of [0,N) reassembles the
// exact per-experiment array an unsharded run produces. With early
// stopping off, sharded and unsharded campaigns are therefore
// byte-identical; scheduling (shard count, worker count, lease order)
// can never change a result.
//
// Adaptive early stopping folds live shard tallies into a progressive
// Pf estimate; once the Wilson half-width reaches the request's epsilon
// the coordinator stops leasing, cancels outstanding shards, and
// finalizes over the experiments that completed.

// ErrNoLease reports a lease the coordinator no longer tracks: the shard
// was reclaimed, its campaign finished, or the lease never existed. A
// worker holding it should discard the shard and ask for new work.
var ErrNoLease = errors.New("jobs: unknown or expired shard lease")

// ErrNoShards reports that the service is not running a shard pool.
var ErrNoShards = errors.New("jobs: sharded execution not enabled")

// maxShardAttempts bounds how often one shard is re-leased after
// explicit worker failures before the whole campaign is declared
// failed: a shard that fails deterministically (e.g. its workload
// cannot build) would otherwise bounce between workers forever.
const maxShardAttempts = 3

// maxShardReclaims separately bounds TTL reclaims of one shard. A
// reclaim usually means a dead worker, not a poisoned shard — workers
// send keepalives, so a slow shard is not reclaimed — but a shard whose
// every worker dies silently (e.g. an input that crashes the process
// before it can report failure) must still not bounce forever. The
// bound is much looser than maxShardAttempts because reclaims are
// expected during rolling worker restarts.
const maxShardReclaims = 10

// ShardRange is one contiguous experiment range of a sharded campaign.
// Index identifies the shard within the campaign's plan; requeued
// remainders keep their parent's index.
type ShardRange struct {
	Index int `json:"index"`
	Start int `json:"start"`
	End   int `json:"end"`
}

// PlanShards splits [0,n) into at most k contiguous, non-empty,
// near-equal ranges in ascending order. The plan is a pure function of
// (n, k); workers never see it — they only execute the ranges they
// lease — so any partition of [0,n), planned or hand-written, merges to
// the same campaign.
func PlanShards(n, k int) []ShardRange {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]ShardRange, k)
	base, rem := n/k, n%k
	start := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = ShardRange{Index: i, Start: start, End: start + size}
		start += size
	}
	return out
}

// ShardLease hands one shard to a worker: the lease token to report
// under, the campaign's content key, the normalized request to expand,
// and the experiment range to execute.
type ShardLease struct {
	Lease   string     `json:"lease"`
	Key     string     `json:"key"`
	Request Request    `json:"request"`
	Range   ShardRange `json:"range"`
	// Total is the campaign's full experiment count (for progress
	// display and report throttling on the worker side).
	Total int `json:"total"`
	// LeaseTTLSeconds tells the worker how long the coordinator waits
	// for a silent lease before reclaiming it; workers pace their
	// keepalive progress reports well inside it.
	LeaseTTLSeconds float64 `json:"lease_ttl_seconds,omitempty"`
}

// ShardResult is a worker's final report for a leased shard.
type ShardResult struct {
	Lease  string      `json:"lease"`
	Output ShardOutput `json:"output"`
}

// leaseCounter makes lease ids process-unique.
var leaseCounter atomic.Int64

// shardPersist is the durability seam between the shard layer and the
// manager's write-ahead journal: coordinators report lifecycle events
// through it and pull a resumed campaign's journaled completed shards
// from it. A nil value means in-memory operation.
type shardPersist interface {
	// ShardEvent appends one journal record (completed shards are
	// fsync'd; the rest are breadcrumbs).
	ShardEvent(typ, key string, data interface{})
	// TakeRecovered hands over the completed shard outputs journaled for
	// a campaign before the last crash, exactly once.
	TakeRecovered(key string) []ShardOutput
}

// poolPersist adapts a possibly-nil *persistence into the seam without
// producing a non-nil interface wrapping a nil pointer.
func poolPersist(p *persistence) shardPersist {
	if p == nil {
		return nil
	}
	return p
}

// shardLease is the coordinator-side lease record.
type shardLease struct {
	id       string
	rng      ShardRange
	worker   string
	tally    campaign.Tally // last reported in-flight progress
	lastSeen time.Time
}

// Coordinator owns one sharded campaign: it plans the ranges, leases
// them to workers, folds reported tallies into the progressive Pf and
// its Wilson interval, applies the adaptive stopping rule, and merges
// completed ranges into the canonical outcome. It is safe for
// concurrent use by any number of workers.
type Coordinator struct {
	key   string
	req   Request // normalized
	total int
	// meta shared by every shard of the campaign, cross-checked on merge.
	goldenCycles uint64
	checkpointed bool

	// onProgress, when non-nil, observes folded tallies (called without
	// the coordinator lock held).
	onProgress func(t campaign.Tally, total int)
	// persist, when non-nil, journals shard lifecycle events so a
	// restarted coordinator resumes from the completed shards.
	persist shardPersist
	// met and log are inherited from the owning pool (no-op/discard when
	// the pool is uninstrumented).
	met shardMetrics
	log *slog.Logger

	mu       sync.Mutex
	pending  []ShardRange
	attempts map[int]int
	reclaims map[int]int
	leases   map[string]*shardLease
	slots    []ExperimentOutcome
	have     []bool
	folded   campaign.Tally // over folded (merged) experiments only
	stopped  bool           // epsilon rule fired; no more leases
	done     bool
	outcome  *Outcome
	err      error
	finished chan struct{}
}

// newCoordinator plans a campaign into shards. The runner is resolved
// through the process-wide memoized cache, so a coordinator that also
// runs local workers pays for the golden run exactly once. With persist
// set, any completed shards journaled before a crash are folded in
// before leasing begins — the resumed campaign only executes the ranges
// that never durably finished, and because the expansion is a pure
// function of the request the merged outcome is byte-identical to an
// undisturbed run.
func newCoordinator(ctx context.Context, p *ShardPool, req Request, onProgress func(campaign.Tally, int)) (*Coordinator, error) {
	persist := p.opts.persist
	n, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	key, err := keyOf(n)
	if err != nil {
		return nil, err
	}
	r, err := engineFor(ctx, n, p.opts.Obs)
	if err != nil {
		return nil, err
	}
	total := len(experimentsFor(r, n))
	c := &Coordinator{
		key:          key,
		req:          n,
		total:        total,
		goldenCycles: r.GoldenTicks(),
		checkpointed: r.Checkpointed(),
		onProgress:   onProgress,
		persist:      persist,
		met:          p.met,
		log:          p.log,
		pending:      PlanShards(total, p.opts.Shards),
		attempts:     map[int]int{},
		reclaims:     map[int]int{},
		leases:       map[string]*shardLease{},
		slots:        make([]ExperimentOutcome, total),
		have:         make([]bool, total),
		finished:     make(chan struct{}),
	}
	if persist != nil {
		persist.ShardEvent(recShardPlanned, key, struct {
			Total  int `json:"total"`
			Shards int `json:"shards"`
		}{total, len(c.pending)})
		c.preloadRecovered(persist.TakeRecovered(key))
	}
	if total == 0 {
		c.finishLocked() // degenerate empty campaign
	}
	return c, nil
}

// preloadRecovered folds journaled completed shard outputs into the
// fresh plan and drops the pending ranges they fully cover. It runs
// before the coordinator is visible to any worker, so no locking.
// Defensive by construction: outputs whose golden-run metadata diverges
// from the freshly simulated run, whose indices fall outside the
// campaign, or that duplicate already-folded indices (a shard requeued
// and completed twice before the crash) are skipped — the worst a bad
// journal can do is re-execute work. The shard count need not match the
// previous process's: coverage is tracked per experiment index, so a
// plan resumed under a different -shards flag still only re-runs the
// uncovered remainder of each range.
func (c *Coordinator) preloadRecovered(outs []ShardOutput) {
	for _, out := range outs {
		if out.GoldenCycles != c.goldenCycles || out.Checkpointed != c.checkpointed {
			continue // journaled under a different engine; re-execute
		}
		if len(out.Indices) != len(out.Experiments) {
			continue
		}
		for i, idx := range out.Indices {
			if idx < 0 || idx >= c.total || c.have[idx] {
				continue
			}
			c.have[idx] = true
			c.slots[idx] = out.Experiments[i]
			c.folded.Done++
			if out.Experiments[i].Outcome != noEffect {
				c.folded.Failures++
			}
		}
	}
	kept := c.pending[:0]
	for _, rng := range c.pending {
		covered := true
		for idx := rng.Start; idx < rng.End; idx++ {
			if !c.have[idx] {
				covered = false
				break
			}
		}
		if !covered {
			kept = append(kept, rng)
		}
	}
	c.pending = kept
	c.maybeStopLocked()
	c.maybeFinishLocked()
}

// Lease hands the next pending shard to a worker, or reports no work.
func (c *Coordinator) Lease(worker string) (*ShardLease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done || c.stopped || len(c.pending) == 0 {
		return nil, false
	}
	rng := c.pending[0]
	c.pending = c.pending[1:]
	l := &shardLease{
		// The process-wide counter keeps lease ids unique even across two
		// coordinators for the same campaign key (cancel + resubmit).
		id:     fmt.Sprintf("%s-%d", c.key[:12], leaseCounter.Add(1)),
		rng:    rng,
		worker: worker,
		// Lease liveness is scheduling state, never result state: TTL
		// reclaim decides who re-executes a range, not what it computes.
		lastSeen: time.Now(), //lint:allow det lease keepalive timestamp
	}
	c.leases[l.id] = l
	if c.persist != nil {
		// Breadcrumb only: a lease with no completion record is exactly
		// what recovery treats as never-happened, so the shard is pending
		// again after a restart (crash-only reclaim).
		c.persist.ShardEvent(recShardLeased, c.key, struct {
			Lease  string `json:"lease"`
			Worker string `json:"worker"`
			Index  int    `json:"index"`
			Start  int    `json:"start"`
			End    int    `json:"end"`
		}{l.id, worker, rng.Index, rng.Start, rng.End})
	}
	return &ShardLease{Lease: l.id, Key: c.key, Request: c.req, Range: rng, Total: c.total}, true
}

// Progress folds a worker's in-flight tally for a leased shard and
// reports whether the worker should cancel the shard (the campaign
// stopped, converged, or no longer tracks the lease). done and failures
// are shard-local absolute counts.
func (c *Coordinator) Progress(leaseID string, done, failures int) (cancel bool) {
	c.mu.Lock()
	l := c.leases[leaseID]
	if l == nil {
		c.mu.Unlock()
		return true
	}
	// Clamp the reported tally into the leased range: a buggy or
	// malicious worker must not be able to inflate the progressive Pf,
	// drive the folded tally negative, or falsely trip the epsilon stop
	// rule with counts its shard cannot contain.
	if size := l.rng.End - l.rng.Start; done > size {
		done = size
	}
	if done < 0 {
		done = 0
	}
	if failures < 0 {
		failures = 0
	}
	if failures > done {
		failures = done
	}
	l.tally = campaign.Tally{Done: done, Failures: failures}
	l.lastSeen = time.Now() //lint:allow det lease keepalive timestamp
	c.maybeStopLocked()
	stop := c.stopped || c.done
	t := c.tallyLocked()
	c.mu.Unlock()
	if c.persist != nil {
		c.persist.ShardEvent(recShardProgress, c.key, struct {
			Lease    string `json:"lease"`
			Done     int    `json:"done"`
			Failures int    `json:"failures"`
		}{leaseID, done, failures})
	}
	c.notify(t)
	return stop
}

// Complete merges a finished (or, once the campaign stopped, partial)
// shard. An incomplete range reported while the campaign is still
// running means the worker was cancelled externally: nothing is folded
// and the shard is requeued for another worker.
func (c *Coordinator) Complete(res ShardResult) error {
	c.mu.Lock()
	l := c.leases[res.Lease]
	if l == nil {
		c.mu.Unlock()
		return ErrNoLease
	}
	out := res.Output
	if len(out.Indices) != len(out.Experiments) {
		c.mu.Unlock()
		return fmt.Errorf("jobs: shard result with %d indices but %d experiments", len(out.Indices), len(out.Experiments))
	}
	for _, idx := range out.Indices {
		if idx < l.rng.Start || idx >= l.rng.End {
			c.mu.Unlock()
			return fmt.Errorf("jobs: shard result index %d outside leased range [%d,%d)", idx, l.rng.Start, l.rng.End)
		}
	}
	delete(c.leases, res.Lease)
	complete := len(out.Indices) == l.rng.End-l.rng.Start
	if !complete && !c.stopped {
		// Externally cancelled worker: requeue the whole range.
		c.requeueLocked(l, "incomplete shard result")
		t := c.tallyLocked()
		c.mu.Unlock()
		c.notify(t)
		return nil
	}
	// Golden-run metadata must agree across every shard of one campaign —
	// the coordinator simulated the same golden run while planning. A
	// mismatch means a worker executed a different campaign than the
	// coordinator planned, and merging would silently corrupt the result.
	if out.GoldenCycles != c.goldenCycles || out.Checkpointed != c.checkpointed {
		c.fatalLocked(fmt.Errorf("jobs: shard golden-run metadata diverged (%d/%v vs %d/%v)",
			out.GoldenCycles, out.Checkpointed, c.goldenCycles, c.checkpointed))
		c.mu.Unlock()
		return nil
	}
	for i, idx := range out.Indices {
		if c.have[idx] {
			continue
		}
		c.have[idx] = true
		c.slots[idx] = out.Experiments[i]
		c.folded.Done++
		if out.Experiments[i].Outcome != noEffect {
			c.folded.Failures++
		}
	}
	c.maybeStopLocked()
	c.maybeFinishLocked()
	t := c.tallyLocked()
	c.mu.Unlock()
	if complete && c.persist != nil {
		// The durable record of this shard's work — fsync'd, because its
		// loss would re-execute the whole range after a crash. Journaled
		// after the fold (outside the lock): a crash in between merely
		// re-runs the shard, and determinism folds identical bytes.
		c.persist.ShardEvent(recShardCompleted, c.key, out)
	}
	c.notify(t)
	return nil
}

// Fail releases a lease after a worker error and requeues its shard; a
// shard that keeps failing takes the campaign down with it.
func (c *Coordinator) Fail(leaseID, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[leaseID]
	if l == nil {
		return ErrNoLease
	}
	delete(c.leases, leaseID)
	c.requeueLocked(l, msg)
	return nil
}

// requeueLocked puts a released lease's range back in the queue, unless
// the campaign already stopped (its remainder is then moot) or the shard
// exhausted its attempts (campaign failure).
func (c *Coordinator) requeueLocked(l *shardLease, msg string) {
	if c.stopped || c.done {
		c.maybeFinishLocked()
		return
	}
	c.attempts[l.rng.Index]++
	if c.attempts[l.rng.Index] >= maxShardAttempts {
		c.fatalLocked(fmt.Errorf("jobs: shard %d failed %d times, last: %s", l.rng.Index, c.attempts[l.rng.Index], msg))
		return
	}
	c.pending = append(c.pending, l.rng)
}

// reclaimStaleLocked requeues shards whose leases went silent for longer
// than ttl — the worker crashed or lost its network — so a campaign
// survives worker death. Reclaims are accounted separately from
// explicit failures: live workers keepalive inside the TTL, so a
// reclaim indicts the worker, not the shard, and must not trip the
// tight poison bound — only the loose maxShardReclaims backstop.
func (c *Coordinator) reclaimStaleLocked(ttl time.Duration, now time.Time) (reclaimed int) {
	var expired []*shardLease
	for _, l := range c.leases {
		if now.Sub(l.lastSeen) > ttl {
			expired = append(expired, l)
		}
	}
	// Requeue in ascending shard order: map iteration order would hand
	// the reclaimed ranges back to workers in a different order every
	// run, and reclaim behaviour — which shard trips the poison bound
	// first, which range the next lease serves — should be reproducible.
	sort.Slice(expired, func(i, j int) bool { return expired[i].rng.Index < expired[j].rng.Index })
	for _, l := range expired {
		delete(c.leases, l.id)
		reclaimed++
		if c.stopped || c.done {
			c.maybeFinishLocked()
			continue
		}
		c.reclaims[l.rng.Index]++
		if c.reclaims[l.rng.Index] >= maxShardReclaims {
			c.fatalLocked(fmt.Errorf("jobs: shard %d reclaimed %d times (every worker died mid-shard)",
				l.rng.Index, c.reclaims[l.rng.Index]))
			return reclaimed
		}
		c.pending = append(c.pending, l.rng)
	}
	return reclaimed
}

// tallyLocked is the live progressive tally: folded experiments plus
// every lease's last reported in-flight progress.
func (c *Coordinator) tallyLocked() campaign.Tally {
	t := c.folded
	for _, l := range c.leases {
		t.Add(l.tally)
	}
	return t
}

// maybeStopLocked applies the adaptive stopping rule to the live tally.
func (c *Coordinator) maybeStopLocked() {
	if c.stopped || c.done || c.req.Epsilon <= 0 {
		return
	}
	if c.tallyLocked().Converged(c.req.Epsilon, stats.Z95) {
		c.stopped = true
		c.pending = nil
		c.maybeFinishLocked()
	}
}

// maybeFinishLocked finalizes the campaign when nothing remains
// outstanding: all slots folded, or — once stopped — every lease has
// reported back its partial.
func (c *Coordinator) maybeFinishLocked() {
	if c.done {
		return
	}
	if c.stopped {
		if len(c.leases) > 0 {
			return
		}
	} else if len(c.pending) > 0 || len(c.leases) > 0 || c.folded.Done < c.total {
		return
	}
	c.finishLocked()
}

// finishLocked assembles the canonical outcome from the folded slots.
func (c *Coordinator) finishLocked() {
	if c.done {
		return
	}
	exps := make([]ExperimentOutcome, 0, c.folded.Done)
	for i, ok := range c.have {
		if ok {
			exps = append(exps, c.slots[i])
		}
	}
	c.outcome = assembleOutcome(c.req, c.goldenCycles, c.checkpointed, c.total, exps)
	c.done = true
	close(c.finished)
}

// fatalLocked fails the whole campaign.
func (c *Coordinator) fatalLocked(err error) {
	if c.done {
		return
	}
	c.met.poisoned.Inc()
	if c.log != nil {
		c.log.Warn("sharded campaign poisoned", "key", shortKey(c.key), "error", err)
	}
	c.err = err
	c.pending = nil
	c.leases = map[string]*shardLease{}
	c.done = true
	close(c.finished)
}

func (c *Coordinator) notify(t campaign.Tally) {
	if c.onProgress != nil {
		c.onProgress(t, c.total)
	}
}

// Wait blocks until the campaign finishes or ctx expires and returns the
// merged outcome.
func (c *Coordinator) Wait(ctx context.Context) (*Outcome, error) {
	select {
	case <-c.finished:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.outcome, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Tally returns the live progressive tally and the planned total.
func (c *Coordinator) Tally() (campaign.Tally, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tallyLocked(), c.total
}

// ShardStats counts what a shard pool has done since it started.
type ShardStats struct {
	// Campaigns is the number of sharded campaigns executed.
	Campaigns int `json:"campaigns"`
	// Planned counts shards planned across all campaigns.
	Planned int `json:"planned"`
	// Leased counts leases handed out, including requeued re-leases.
	Leased int `json:"leased"`
	// Completed counts shard results merged.
	Completed int `json:"completed"`
	// Requeued counts shards put back after a worker failure or expiry.
	Requeued int `json:"requeued"`
	// EarlyStopped counts campaigns the epsilon rule halted.
	EarlyStopped int `json:"early_stopped"`
	// Workers tallies leases per worker name.
	Workers map[string]int `json:"workers,omitempty"`
}

// ShardPoolOptions sizes a shard pool.
type ShardPoolOptions struct {
	// Shards is the number of experiment-range shards each campaign is
	// split into. Default 8.
	Shards int
	// LocalWorkers is the number of in-process shard executors per
	// campaign: 0 selects the campaign's worker budget (GOMAXPROCS when
	// that is unset), -1 disables local execution entirely (shards are
	// then only served to remote workers).
	LocalWorkers int
	// LeaseTTL bounds how long a silent lease pins its shard before the
	// shard is requeued for another worker. Default 2 minutes.
	LeaseTTL time.Duration
	// Obs, when non-nil, receives the pool's shard lifecycle counters and
	// the fault engine's counters for locally executed shards. Purely
	// observational — see ManagerOptions.Obs.
	Obs *obs.Registry
	// Log, when non-nil, receives shard lifecycle events (leases and
	// completions at Debug, reclaims at Info, poisoned shards at Warn).
	// Nil discards.
	Log *slog.Logger
	// persist, when non-nil, journals every coordinator's shard
	// lifecycle and preloads recovered completed shards. Only the
	// manager sets it (through OpenManager's data directory).
	persist shardPersist
}

// ShardPool coordinates sharded campaign execution: each Execute call
// plans one campaign into shards, runs local worker goroutines over
// them, and — through the Lease/Progress/Complete/Fail surface the HTTP
// layer exposes — lets any number of remote workers pull shards from
// every active campaign. Work is pulled, never pushed: a remote worker
// that attaches mid-campaign simply starts winning leases.
type ShardPool struct {
	opts ShardPoolOptions
	met  shardMetrics
	log  *slog.Logger

	mu     sync.Mutex
	active []*Coordinator
	owner  map[string]*Coordinator // lease id -> owning coordinator
	stats  ShardStats
}

// NewShardPool builds a shard pool.
func NewShardPool(opts ShardPoolOptions) *ShardPool {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Minute
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	p := &ShardPool{opts: opts, log: opts.Log, owner: map[string]*Coordinator{}}
	p.met = newShardMetrics(opts.Obs, p)
	return p
}

// Execute runs one campaign sharded and returns its canonical outcome;
// it matches the ManagerOptions.Executor signature so a manager can
// substitute it for the unsharded path wholesale. workers bounds the
// local shard executors (see ShardPoolOptions.LocalWorkers); tap
// observes folded progressive tallies.
func (p *ShardPool) Execute(ctx context.Context, req Request, workers int, tap Tap) (*Outcome, error) {
	onProgress := func(t campaign.Tally, total int) {
		if tap != nil {
			tap(t.Done, total, t.Failures)
		}
	}
	tr := obs.TracerFrom(ctx)
	endGolden := tr.Stage("golden")
	c, err := newCoordinator(ctx, p, req, onProgress)
	endGolden()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	p.active = append(p.active, c)
	p.stats.Campaigns++
	// Snapshot the shard count before c becomes leasable: once p.mu is
	// released, workers mutate c.pending under c.mu.
	planned := len(c.pending)
	p.stats.Planned += planned
	p.mu.Unlock()
	p.met.campaigns.Inc()
	p.log.Debug("sharded campaign planned",
		"key", shortKey(c.key), "experiments", c.total, "shards", planned)
	defer p.unregister(c)

	if tap != nil {
		tap(0, c.total, 0)
	}
	local := p.opts.LocalWorkers
	if local == 0 {
		local = workers
	}
	if local == 0 {
		local = runtime.GOMAXPROCS(0)
	}
	for i := 0; i < local; i++ {
		go p.localWorker(ctx, c, fmt.Sprintf("local-%d", i))
	}
	// Janitor: a remote worker that crashes mid-shard leaves a silent
	// lease; without it the campaign would finish every other shard and
	// then hang. Reclaim expired leases periodically and put a local
	// worker on the requeued remainder (unless the pool is remote-only,
	// where the next polling worker picks it up).
	go func() {
		tick := time.NewTicker(p.opts.LeaseTTL)
		defer tick.Stop()
		for {
			select {
			case <-c.finished:
				return
			case <-ctx.Done():
				return
			case now := <-tick.C:
				c.mu.Lock()
				n := c.reclaimStaleLocked(p.opts.LeaseTTL, now)
				c.mu.Unlock()
				if n > 0 {
					p.mu.Lock()
					p.stats.Requeued += n
					p.mu.Unlock()
					p.met.reclaimed.Add(float64(n))
					p.met.requeued.Add(float64(n))
					p.log.Info("reclaimed expired shard leases",
						"key", shortKey(c.key), "count", n, "ttl", p.opts.LeaseTTL)
					if p.opts.LocalWorkers >= 0 {
						go p.localWorker(ctx, c, "local-reclaim")
					}
				}
			}
		}
	}()
	endExec := tr.Stage("execute")
	out, err := c.Wait(ctx)
	endExec()
	if err == nil && out.EarlyStopped {
		p.mu.Lock()
		p.stats.EarlyStopped++
		p.mu.Unlock()
		p.met.earlyStopped.Inc()
	}
	return out, err
}

// localWorker drains one coordinator's pending shards in-process. Each
// shard executes single-threaded so a campaign's total parallelism stays
// at the local worker count.
func (p *ShardPool) localWorker(ctx context.Context, c *Coordinator, name string) {
	for {
		l, ok := p.leaseFrom(c, name)
		if !ok {
			return
		}
		sctx, cancel := context.WithCancel(ctx)
		var mu sync.Mutex
		var last campaign.Tally
		// Keepalive: refresh the lease through the tap-silent phases so
		// the janitor never reclaims a live worker's shard.
		kaStop := make(chan struct{})
		go func() {
			tick := time.NewTicker(KeepaliveInterval(p.opts.LeaseTTL))
			defer tick.Stop()
			for {
				select {
				case <-kaStop:
					return
				case <-sctx.Done():
					return
				case <-tick.C:
					mu.Lock()
					t := last
					mu.Unlock()
					if c.Progress(l.Lease, t.Done, t.Failures) {
						cancel()
					}
				}
			}
		}()
		out, err := ExecuteShardObs(sctx, l.Request, l.Range.Start, l.Range.End, 1, func(done, total, failures int) {
			mu.Lock()
			last = campaign.Tally{Done: done, Failures: failures}
			mu.Unlock()
			if c.Progress(l.Lease, done, failures) {
				cancel()
			}
		}, p.opts.Obs)
		close(kaStop)
		cancel()
		switch {
		case err != nil && ctx.Err() != nil:
			// Externally aborted: release the lease and stop working.
			p.fail(c, l.Lease, err.Error())
			return
		case out == nil:
			// Engine failure (workload build, bad range): requeue; the
			// attempt bound turns a deterministic failure into a campaign
			// failure instead of an infinite bounce.
			p.fail(c, l.Lease, err.Error())
		default:
			// Completed, or cancelled by the coordinator's stop rule with
			// a partial — either way the fold path takes it from here.
			p.complete(c, ShardResult{Lease: l.Lease, Output: *out})
		}
	}
}

// leaseFrom takes the next shard of one coordinator (local workers).
func (p *ShardPool) leaseFrom(c *Coordinator, worker string) (*ShardLease, bool) {
	l, ok := c.Lease(worker)
	if !ok {
		return nil, false
	}
	p.record(c, l, worker)
	return l, true
}

// Lease hands the next pending shard of any active campaign to a remote
// worker, oldest campaign first. With every queue empty it reclaims
// expired leases before reporting no work.
func (p *ShardPool) Lease(worker string) (*ShardLease, bool) {
	p.mu.Lock()
	active := append([]*Coordinator(nil), p.active...)
	ttl := p.opts.LeaseTTL
	p.mu.Unlock()
	for _, c := range active {
		if l, ok := c.Lease(worker); ok {
			p.record(c, l, worker)
			return l, true
		}
	}
	// No pending work anywhere: requeue shards whose workers went silent,
	// then retry once.
	now := time.Now() //lint:allow det lease-TTL reclaim clock, scheduling only
	reclaimed := 0
	for _, c := range active {
		c.mu.Lock()
		n := c.reclaimStaleLocked(ttl, now)
		c.mu.Unlock()
		reclaimed += n
	}
	if reclaimed == 0 {
		return nil, false
	}
	p.mu.Lock()
	p.stats.Requeued += reclaimed
	p.mu.Unlock()
	p.met.reclaimed.Add(float64(reclaimed))
	p.met.requeued.Add(float64(reclaimed))
	p.log.Info("reclaimed expired shard leases", "count", reclaimed, "ttl", ttl)
	for _, c := range active {
		if l, ok := c.Lease(worker); ok {
			p.record(c, l, worker)
			return l, true
		}
	}
	return nil, false
}

// record registers a fresh lease with its owning coordinator and stamps
// the pool's TTL on it so workers can pace keepalives inside it.
func (p *ShardPool) record(c *Coordinator, l *ShardLease, worker string) {
	l.LeaseTTLSeconds = p.opts.LeaseTTL.Seconds()
	p.mu.Lock()
	p.owner[l.Lease] = c
	p.stats.Leased++
	if p.stats.Workers == nil {
		p.stats.Workers = map[string]int{}
	}
	p.stats.Workers[worker]++
	p.mu.Unlock()
	p.met.leased.Inc()
	p.log.Debug("shard leased", "lease", l.Lease, "worker", worker,
		"shard", l.Range.Index, "start", l.Range.Start, "end", l.Range.End)
}

// KeepaliveInterval paces a worker's lease keepalives: a third of the
// TTL, clamped to [1s, TTL], with a 5s default for a missing TTL. The
// silent phases of shard execution — golden-run construction, a long
// hang-budget experiment — produce no progress taps, and without
// keepalives the janitor would reclaim a live worker's shard.
func KeepaliveInterval(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return 5 * time.Second
	}
	iv := ttl / 3
	if iv < time.Second {
		iv = time.Second
	}
	return iv
}

// Progress routes a worker's in-flight tally to the owning coordinator.
// An unknown lease answers cancel=true: the campaign is gone and the
// worker should abandon the shard.
func (p *ShardPool) Progress(leaseID string, done, failures int) (cancel bool) {
	p.mu.Lock()
	c := p.owner[leaseID]
	p.mu.Unlock()
	if c == nil {
		return true
	}
	return c.Progress(leaseID, done, failures)
}

// Complete merges a finished shard into its campaign.
func (p *ShardPool) Complete(res ShardResult) error {
	p.mu.Lock()
	c := p.owner[res.Lease]
	p.mu.Unlock()
	if c == nil {
		return ErrNoLease
	}
	err := c.Complete(res)
	if err == nil {
		p.mu.Lock()
		delete(p.owner, res.Lease)
		p.stats.Completed++
		p.mu.Unlock()
		p.met.completed.Inc()
		p.log.Debug("shard completed", "lease", res.Lease,
			"experiments", len(res.Output.Indices))
	}
	return err
}

// Fail releases a lease after a worker-side error.
func (p *ShardPool) Fail(leaseID, msg string) error {
	p.mu.Lock()
	c := p.owner[leaseID]
	p.mu.Unlock()
	if c == nil {
		return ErrNoLease
	}
	err := c.Fail(leaseID, msg)
	if err == nil {
		p.mu.Lock()
		delete(p.owner, leaseID)
		p.stats.Requeued++
		p.mu.Unlock()
		p.met.requeued.Inc()
		p.log.Info("shard failed by worker, requeued", "lease", leaseID, "error", msg)
	}
	return err
}

// complete is the local-worker twin of Complete.
func (p *ShardPool) complete(c *Coordinator, res ShardResult) {
	if err := c.Complete(res); err == nil {
		p.mu.Lock()
		delete(p.owner, res.Lease)
		p.stats.Completed++
		p.mu.Unlock()
		p.met.completed.Inc()
		p.log.Debug("shard completed", "lease", res.Lease,
			"experiments", len(res.Output.Indices))
	}
}

// fail is the local-worker twin of Fail.
func (p *ShardPool) fail(c *Coordinator, leaseID, msg string) {
	if err := c.Fail(leaseID, msg); err == nil {
		p.mu.Lock()
		delete(p.owner, leaseID)
		p.stats.Requeued++
		p.mu.Unlock()
		p.met.requeued.Inc()
		p.log.Info("shard failed by worker, requeued", "lease", leaseID, "error", msg)
	}
}

// unregister drops a finished campaign and its outstanding leases.
func (p *ShardPool) unregister(c *Coordinator) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, a := range p.active {
		if a == c {
			p.active = append(p.active[:i], p.active[i+1:]...)
			break
		}
	}
	for id, owner := range p.owner {
		if owner == c {
			delete(p.owner, id)
		}
	}
}

// Stats returns the counters accumulated so far.
func (p *ShardPool) Stats() ShardStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	if p.stats.Workers != nil {
		st.Workers = make(map[string]int, len(p.stats.Workers))
		for k, v := range p.stats.Workers {
			st.Workers[k] = v
		}
	}
	return st
}

// ExecuteSharded runs one campaign split into `shards` deterministic
// experiment-range shards on `workers` in-process shard executors (0 =
// GOMAXPROCS) and returns the canonical outcome — with early stopping
// off, byte-identical to Execute for the same request. It is the
// single-binary multi-worker mode behind `faultcampaign -shards`.
func ExecuteSharded(ctx context.Context, req Request, shards, workers int, tap Tap) (*Outcome, error) {
	return NewShardPool(ShardPoolOptions{Shards: shards}).Execute(ctx, req, workers, tap)
}
