package jobs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

func encode(t *testing.T, o *jobs.Outcome) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := jobs.EncodeOutcome(&buf, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{100, 4, 4},
		{7, 3, 3},
		{3, 8, 3}, // never more shards than experiments
		{5, 0, 1}, // k<=0 collapses to one shard
		{0, 4, 0}, // empty campaign plans nothing
		{1, 1, 1},
		{64, 64, 64},
	} {
		plan := jobs.PlanShards(tc.n, tc.k)
		if len(plan) != tc.want {
			t.Errorf("PlanShards(%d,%d): %d shards, want %d", tc.n, tc.k, len(plan), tc.want)
			continue
		}
		// Contiguous, ascending, non-empty, covering exactly [0,n), and
		// near-equal (sizes differ by at most one).
		next, min, max := 0, tc.n+1, 0
		for i, sh := range plan {
			if sh.Index != i || sh.Start != next || sh.End <= sh.Start {
				t.Errorf("PlanShards(%d,%d)[%d] = %+v, want contiguous from %d", tc.n, tc.k, i, sh, next)
			}
			size := sh.End - sh.Start
			if size < min {
				min = size
			}
			if size > max {
				max = size
			}
			next = sh.End
		}
		if len(plan) > 0 && (next != tc.n || max-min > 1) {
			t.Errorf("PlanShards(%d,%d) covers [0,%d) with spread %d", tc.n, tc.k, next, max-min)
		}
	}
}

// shardSpec is a campaign big enough to shard meaningfully but cheap
// enough to rerun many times: a 24-node sample of excerptA across all
// three models (72 experiments).
func shardSpec(target string) jobs.Request {
	return jobs.Request{
		Workload:         "excerptA",
		Target:           target,
		Nodes:            24,
		Seed:             1,
		InjectAtFraction: 0.3,
	}
}

// TestShardPartitionDeterminism is the determinism property behind the
// whole shard layer: ANY partition of [0,N) into ranges — not just the
// planner's — reproduces the unsharded per-experiment array exactly, on
// both injection targets. Outcome aggregates are pure functions of that
// array, so array equality is byte equality of the encoded result.
func TestShardPartitionDeterminism(t *testing.T) {
	for _, target := range []string{"iu", "cmem"} {
		req := shardSpec(target)
		want, err := jobs.Execute(context.Background(), req, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		n := want.Injections
		if n < 16 {
			t.Fatalf("target %s: campaign too small to partition (%d experiments)", target, n)
		}
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 3; trial++ {
			// Random partition into contiguous ranges.
			var cuts []int
			for i := 1; i < n; i++ {
				if rng.Intn(n/6+1) == 0 {
					cuts = append(cuts, i)
				}
			}
			bounds := append(append([]int{0}, cuts...), n)
			merged := make([]jobs.ExperimentOutcome, 0, n)
			for i := 0; i+1 < len(bounds); i++ {
				out, err := jobs.ExecuteShard(context.Background(), req, bounds[i], bounds[i+1], 2, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(out.Indices) != bounds[i+1]-bounds[i] {
					t.Fatalf("target %s: shard [%d,%d) completed %d of %d experiments",
						target, bounds[i], bounds[i+1], len(out.Indices), bounds[i+1]-bounds[i])
				}
				if out.GoldenCycles != want.GoldenCycles || out.Checkpointed != want.Checkpointed {
					t.Fatalf("target %s: shard golden metadata diverged", target)
				}
				merged = append(merged, out.Experiments...)
			}
			if !reflect.DeepEqual(merged, want.Experiments) {
				t.Fatalf("target %s trial %d: partition %v reassembled a different experiment array",
					target, trial, bounds)
			}
		}
	}
}

// TestExecuteShardedBitIdentical is the acceptance criterion verbatim: a
// sharded campaign on 3 in-process workers produces a byte-identical
// canonical outcome to the unsharded run, on both targets.
func TestExecuteShardedBitIdentical(t *testing.T) {
	for _, target := range []string{"iu", "cmem"} {
		req := shardSpec(target)
		want, err := jobs.Execute(context.Background(), req, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := jobs.ExecuteSharded(context.Background(), req, 5, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w, g := encode(t, want), encode(t, got); !bytes.Equal(w, g) {
			t.Fatalf("target %s: sharded outcome diverged from unsharded:\n--- unsharded\n%s\n--- sharded\n%s", target, w, g)
		}
	}
}

// TestManagerSharded runs a campaign through a shard-pool-backed manager
// and checks the result matches unsharded execution byte for byte, the
// progress stream reaches the terminal count, and the pool accounted for
// every shard.
func TestManagerSharded(t *testing.T) {
	m := jobs.NewManager(jobs.ManagerOptions{
		Concurrency: 1,
		Shards:      4,
	})
	defer m.Close()
	st, fresh, err := m.Submit(shardSpec("iu"))
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Fatal("first submission not fresh")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	want, err := jobs.Execute(context.Background(), shardSpec("iu"), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := encode(t, want), encode(t, final.Result); !bytes.Equal(w, g) {
		t.Fatal("manager sharded result diverged from unsharded execution")
	}
	pool := m.ShardPool()
	if pool == nil {
		t.Fatal("manager with Shards>1 has no shard pool")
	}
	ps := pool.Stats()
	if ps.Campaigns != 1 || ps.Planned != 4 || ps.Completed != 4 {
		t.Fatalf("pool stats %+v: want 1 campaign, 4 planned, 4 completed", ps)
	}
}

// TestEarlyStopping checks the adaptive epsilon rule end to end on both
// the unsharded and sharded paths: the campaign halts before its planned
// total, says so in the outcome, and the final interval honours epsilon.
func TestEarlyStopping(t *testing.T) {
	req := shardSpec("iu")
	full, err := jobs.Execute(context.Background(), req, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Epsilon = 0.2 // coarse: converges after a few dozen experiments
	// One-experiment dispatch granule: under the batch engine the stop
	// rule is only consulted between ≤64-lane batches, so on a box whose
	// scheduler dispatches both workers' batches back to back (1 CPU
	// under -race) the whole 72-experiment campaign can be in flight
	// before the rule ever fires. This test is about the stop rule, not
	// the granule; the granule overshoot is pinned in internal/fault.
	req.NoBatch = true

	for name, run := range map[string]func() (*jobs.Outcome, error){
		"unsharded": func() (*jobs.Outcome, error) {
			return jobs.Execute(context.Background(), req, 2, nil)
		},
		"sharded": func() (*jobs.Outcome, error) {
			return jobs.ExecuteSharded(context.Background(), req, 8, 2, nil)
		},
	} {
		out, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.EarlyStopped {
			t.Fatalf("%s: campaign ran to completion despite epsilon", name)
		}
		if out.Requested != full.Injections {
			t.Errorf("%s: requested %d, want the planned total %d", name, out.Requested, full.Injections)
		}
		if out.Injections >= out.Requested || out.Injections == 0 {
			t.Errorf("%s: %d of %d experiments completed; want a strict non-empty subset",
				name, out.Injections, out.Requested)
		}
		if len(out.Experiments) != out.Injections {
			t.Errorf("%s: %d experiments in array, injections %d", name, len(out.Experiments), out.Injections)
		}
		// The live tally converged at epsilon; the folded result has at
		// least those experiments, so its half-width stays in the same
		// regime — allow slack for the fold/tally gap.
		if hw := (out.PfHigh - out.PfLow) / 2; hw > req.Epsilon*1.5 {
			t.Errorf("%s: final half-width %.3f far above epsilon %.3f", name, hw, req.Epsilon)
		}
	}

	// Epsilon validation: NaN, negative, and >= 0.5 are rejected.
	for _, eps := range []float64{-0.1, 0.5, 0.7} {
		bad := shardSpec("iu")
		bad.Epsilon = eps
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
	// Epsilon is content: it must fragment the cache key.
	k0, err := shardSpec("iu").Key()
	if err != nil {
		t.Fatal(err)
	}
	withEps := shardSpec("iu")
	withEps.Epsilon = 0.2
	k1, err := withEps.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Error("epsilon did not change the content address")
	}
}

// TestRemoteShardProtocol drives a remote-only pool through the exact
// Lease/Progress/Complete surface the HTTP layer exposes and checks the
// merged result matches unsharded execution.
func TestRemoteShardProtocol(t *testing.T) {
	pool := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 3, LocalWorkers: -1})
	req := shardSpec("iu")

	type res struct {
		out *jobs.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := pool.Execute(context.Background(), req, 0, nil)
		ch <- res{out, err}
	}()

	// Drain all three shards as a remote worker would.
	seen := 0
	deadline := time.Now().Add(30 * time.Second)
	for seen < 3 {
		l, ok := pool.Lease("w1")
		if !ok {
			if time.Now().After(deadline) {
				t.Fatal("no lease before deadline")
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		seen++
		out, err := jobs.ExecuteShard(context.Background(), l.Request, l.Range.Start, l.Range.End, 2,
			func(done, total, failures int) {
				if pool.Progress(l.Lease, done, failures) {
					t.Errorf("coordinator cancelled lease %s unexpectedly", l.Lease)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Complete(jobs.ShardResult{Lease: l.Lease, Output: *out}); err != nil {
			t.Fatal(err)
		}
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	want, err := jobs.Execute(context.Background(), req, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := encode(t, want), encode(t, r.out); !bytes.Equal(w, g) {
		t.Fatal("remote-protocol result diverged from unsharded execution")
	}

	// Protocol edges: an unknown lease cancels the worker; completing or
	// failing one reports ErrNoLease.
	if !pool.Progress("no-such-lease", 1, 0) {
		t.Error("unknown lease progress did not request cancel")
	}
	if err := pool.Complete(jobs.ShardResult{Lease: "no-such-lease"}); !errors.Is(err, jobs.ErrNoLease) {
		t.Errorf("unknown lease complete: %v, want ErrNoLease", err)
	}
	if err := pool.Fail("no-such-lease", "boom"); !errors.Is(err, jobs.ErrNoLease) {
		t.Errorf("unknown lease fail: %v, want ErrNoLease", err)
	}
	if st := pool.Stats(); st.Completed != 3 || st.Workers["w1"] != 3 {
		t.Errorf("pool stats %+v: want 3 completions by w1", st)
	}
}

// TestShardFailureRequeueAndAttempts: a failed lease requeues its shard
// for another worker; a shard that keeps failing takes the campaign down
// instead of bouncing forever.
func TestShardFailureRequeueAndAttempts(t *testing.T) {
	pool := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 1, LocalWorkers: -1})
	req := shardSpec("iu")
	type res struct {
		out *jobs.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := pool.Execute(context.Background(), req, 0, nil)
		ch <- res{out, err}
	}()

	lease := func() *jobs.ShardLease {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if l, ok := pool.Lease("flaky"); ok {
				return l
			}
			if time.Now().After(deadline) {
				t.Fatal("no lease before deadline")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Two failures requeue; the third kills the campaign.
	for i := 0; i < 2; i++ {
		if err := pool.Fail(lease().Lease, "synthetic worker crash"); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Fail(lease().Lease, "synthetic worker crash"); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err == nil {
		t.Fatal("campaign survived a shard that failed every attempt")
	}

	// A divergent golden-run report is an integrity failure, not a merge.
	pool2 := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 1, LocalWorkers: -1})
	go func() {
		out, err := pool2.Execute(context.Background(), req, 0, nil)
		ch <- res{out, err}
	}()
	var l2 *jobs.ShardLease
	deadline := time.Now().Add(30 * time.Second)
	for {
		if l, ok := pool2.Lease("w"); ok {
			l2 = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	out, err := jobs.ExecuteShard(context.Background(), l2.Request, l2.Range.Start, l2.Range.End, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	out.GoldenCycles++ // corrupt the metadata
	if err := pool2.Complete(jobs.ShardResult{Lease: l2.Lease, Output: *out}); err != nil {
		t.Fatal(err)
	}
	r = <-ch
	if r.err == nil {
		t.Fatal("campaign accepted a shard with divergent golden metadata")
	}
}

// TestStaleLeaseReclaim: a worker that leases a shard and goes silent
// loses it to the next worker once the TTL expires.
func TestStaleLeaseReclaim(t *testing.T) {
	// TTL long enough that a live worker's per-experiment progress reports
	// keep its lease fresh, short enough for the test to wait it out.
	pool := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 1, LocalWorkers: -1, LeaseTTL: 250 * time.Millisecond})
	req := shardSpec("iu")
	type res struct {
		out *jobs.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := pool.Execute(context.Background(), req, 0, nil)
		ch <- res{out, err}
	}()
	deadline := time.Now().Add(30 * time.Second)
	var dead *jobs.ShardLease
	for {
		if l, ok := pool.Lease("dying-worker"); ok {
			dead = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let the lease expire

	var l *jobs.ShardLease
	for {
		if got, ok := pool.Lease("healthy-worker"); ok {
			l = got
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never reclaimed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if l.Range != dead.Range {
		t.Fatalf("reclaimed range %+v, want the dead worker's %+v", l.Range, dead.Range)
	}
	// The dead worker's late report is refused.
	if !pool.Progress(dead.Lease, 1, 0) {
		t.Error("expired lease progress did not request cancel")
	}
	out, err := jobs.ExecuteShard(context.Background(), l.Request, l.Range.Start, l.Range.End, 2,
		func(done, total, failures int) { pool.Progress(l.Lease, done, failures) })
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Complete(jobs.ShardResult{Lease: l.Lease, Output: *out}); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.out.Injections == 0 {
		t.Fatal("reclaimed campaign produced no experiments")
	}
}

// TestReclaimsDoNotTripPoisonBound: TTL reclaims indict the worker, not
// the shard — more reclaims than the explicit-failure bound allows must
// still let the campaign complete once a live worker picks the shard up.
func TestReclaimsDoNotTripPoisonBound(t *testing.T) {
	pool := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 1, LocalWorkers: -1, LeaseTTL: 50 * time.Millisecond})
	req := shardSpec("iu")
	type res struct {
		out *jobs.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, err := pool.Execute(context.Background(), req, 0, nil)
		ch <- res{out, err}
	}()
	lease := func(worker string) *jobs.ShardLease {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if l, ok := pool.Lease(worker); ok {
				return l
			}
			if time.Now().After(deadline) {
				t.Fatal("no lease before deadline")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Four silent deaths in a row — beyond maxShardAttempts (3), below
	// maxShardReclaims — each waiting out the TTL.
	for i := 0; i < 4; i++ {
		lease(fmt.Sprintf("dying-%d", i))
		time.Sleep(70 * time.Millisecond)
	}
	l := lease("survivor")
	out, err := jobs.ExecuteShard(context.Background(), l.Request, l.Range.Start, l.Range.End, 2,
		func(done, total, failures int) { pool.Progress(l.Lease, done, failures) })
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Complete(jobs.ShardResult{Lease: l.Lease, Output: *out}); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("campaign failed after worker deaths: %v", r.err)
	}
	if r.out.Injections != r.out.Request.Nodes*3 {
		t.Fatalf("campaign finished with %d experiments", r.out.Injections)
	}
}

// TestCrashedWorkerTallyNeverNegative is the requeue-corruption
// regression test: a worker that over-reports its in-flight tally and
// then crashes mid-shard must never drive the coordinator's merged
// progressive tally negative (or beyond the campaign total), and the
// recovered campaign must still merge to the unsharded bytes. The
// coordinator clamps reported tallies into the leased range and
// campaign.Tally.Sub clamps the fold, so every progress snapshot the
// pool emits stays a valid sample.
func TestCrashedWorkerTallyNeverNegative(t *testing.T) {
	pool := jobs.NewShardPool(jobs.ShardPoolOptions{Shards: 2, LocalWorkers: -1})
	req := shardSpec("iu")

	type res struct {
		out *jobs.Outcome
		err error
	}
	ch := make(chan res, 1)
	var tapErr error
	var tapMu sync.Mutex
	go func() {
		out, err := pool.Execute(context.Background(), req, 0, func(done, total, failures int) {
			tapMu.Lock()
			defer tapMu.Unlock()
			if tapErr != nil {
				return
			}
			if done < 0 || failures < 0 || failures > done || done > total {
				tapErr = fmt.Errorf("merged tally went out of range: done=%d failures=%d total=%d",
					done, failures, total)
			}
		})
		ch <- res{out, err}
	}()

	lease := func(worker string) *jobs.ShardLease {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if l, ok := pool.Lease(worker); ok {
				return l
			}
			if time.Now().After(deadline) {
				t.Fatal("no lease before deadline")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A lying worker reports an in-flight tally far beyond its shard —
	// and beyond the whole campaign — then crashes mid-shard.
	liar := lease("liar")
	if pool.Progress(liar.Lease, 1_000_000, 2_000_000) {
		t.Fatal("coordinator cancelled the lying worker's lease prematurely")
	}
	if pool.Progress(liar.Lease, -5, -7) {
		t.Fatal("coordinator cancelled after negative report")
	}
	if err := pool.Fail(liar.Lease, "synthetic mid-shard crash"); err != nil {
		t.Fatal(err)
	}

	// Honest workers execute the requeued shard and the remaining one;
	// their real counts are smaller than the dead worker's claim, which
	// is exactly the fold the clamp guards.
	for done := 0; done < 2; done++ {
		l := lease("honest")
		out, err := jobs.ExecuteShard(context.Background(), l.Request, l.Range.Start, l.Range.End, 2,
			func(done, total, failures int) { pool.Progress(l.Lease, done, failures) })
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Complete(jobs.ShardResult{Lease: l.Lease, Output: *out}); err != nil {
			t.Fatal(err)
		}
	}

	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	tapMu.Lock()
	err := tapErr
	tapMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	want, err2 := jobs.Execute(context.Background(), req, 4, nil)
	if err2 != nil {
		t.Fatal(err2)
	}
	if w, g := encode(t, want), encode(t, r.out); !bytes.Equal(w, g) {
		t.Fatal("recovered campaign diverged from unsharded execution")
	}
}

// transientSpec is the transient twin of shardSpec: both transient
// models over a 24-node sample with a 2-cycle SET pulse.
func transientSpec() jobs.Request {
	return jobs.Request{
		Workload:         "excerptA",
		Models:           []string{"seu", "set"},
		PulseCycles:      2,
		Nodes:            24,
		Seed:             1,
		InjectAtFraction: 0.3,
	}
}

// TestShardedTransientByteIdentical is the transient acceptance
// criterion: a seu/set campaign executed as shards on 3 in-process
// workers is byte-identical to its unsharded run — which requires the
// injection-cycle schedule to be keyed by absolute experiment index,
// never by worker-local order.
func TestShardedTransientByteIdentical(t *testing.T) {
	req := transientSpec()
	want, err := jobs.Execute(context.Background(), req, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Injections != 48 {
		t.Fatalf("transient campaign ran %d experiments, want 48", want.Injections)
	}
	transient := 0
	for _, e := range want.Experiments {
		if e.Model == "bit-flip" || e.Model == "set-pulse" {
			transient++
			if e.AtCycle == nil {
				t.Fatalf("transient experiment %s carries no at_cycle", e.Node)
			}
			if *e.AtCycle < want.GoldenCycles*3/10 || *e.AtCycle >= want.GoldenCycles {
				t.Fatalf("experiment %s at_cycle %d outside the [fork, golden) window", e.Node, *e.AtCycle)
			}
		}
	}
	if transient != want.Injections {
		t.Fatalf("%d of %d experiments carry a transient model", transient, want.Injections)
	}
	got, err := jobs.ExecuteSharded(context.Background(), req, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := encode(t, want), encode(t, got); !bytes.Equal(w, g) {
		t.Fatalf("sharded transient outcome diverged from unsharded:\n--- unsharded\n%s\n--- sharded\n%s", w, g)
	}
}
