package leon3

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/rtl"
)

func runRTL(t *testing.T, src string, maxCycles uint64) *Core {
	t.Helper()
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	c := New(mem.NewBus(m), p.Entry)
	c.Run(maxCycles)
	return c
}

func TestDCacheMissThenHitTiming(t *testing.T) {
	// Two loads from the same line: the first misses (pays dcMissPen),
	// the second hits.
	cold := runRTL(t, `
start:
	set data, %o0
	ld [%o0], %o1
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 16
data:
	.word 1, 2, 3, 4
`, 10000)
	warm := runRTL(t, `
start:
	set data, %o0
	ld [%o0], %o1
	ld [%o0+4], %o2
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 16
data:
	.word 1, 2, 3, 4
`, 10000)
	if cold.Status() != iss.StatusExited || warm.Status() != iss.StatusExited {
		t.Fatal("runs did not exit")
	}
	// The warm run has one extra instruction but the extra load hits, so
	// the cycle delta must be exactly 1 (no second miss penalty).
	delta := warm.Cycles() - cold.Cycles()
	if delta != 1 {
		t.Errorf("second load on same line cost %d cycles, want 1", delta)
	}
}

func TestWriteThroughKeepsMemoryCurrent(t *testing.T) {
	c := runRTL(t, `
start:
	set data, %o0
	ld [%o0], %o1          ! bring the line in
	set 0x1234, %o2
	st %o2, [%o0]          ! write-through
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 16
data:
	.word 0xffffffff
`, 10000)
	if got := c.Bus.Mem.Read32(c.Bus.Trace.Writes[0].Addr); got != 0x1234 {
		t.Errorf("memory after write-through = %#x", got)
	}
}

func TestDCacheDataFaultCorruptsOnlyCachedLoads(t *testing.T) {
	// A stuck-at in the data array corrupts a load that hits the faulted
	// word; memory itself stays correct (write-through), so the fault is
	// visible only through load-dependent stores.
	src := `
start:
	set data, %o0
	ld [%o0], %o1          ! miss -> fill -> read via array
	set out, %o2
	st %o1, [%o2]          ! propagate the (possibly corrupt) value
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 16
data:
	.word 0x00000000
out:
	.word 0
`
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	// Find the set index of `data` to fault the right array word.
	dataAddr := p.Symbols["data"]
	set := int(dataAddr >> 4 & (dcSets - 1))
	word := set*lineWords + int(dataAddr>>2&(lineWords-1))

	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	c := New(mem.NewBus(m), p.Entry)
	if err := c.K.Inject(rtl.Fault{
		Node:  rtl.Node{Name: "cmem.dc.data", Word: word, Bit: 9},
		Model: rtl.StuckAt1,
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(10000); st != iss.StatusExited {
		t.Fatalf("status %v", st)
	}
	outAddr := p.Symbols["out"]
	if got := c.Bus.Mem.Read32(outAddr); got != 1<<9 {
		t.Errorf("store of corrupted load = %#x, want %#x", got, 1<<9)
	}
	if got := c.Bus.Mem.Read32(dataAddr); got != 0 {
		t.Errorf("backing memory corrupted: %#x", got)
	}
}

func TestICacheTagFaultCanMisdirectFetch(t *testing.T) {
	// Force the icache valid bit of every set stuck at 0: every fetch
	// misses, the program still runs correctly (only slower).
	p, err := asm.Assemble(`
start:
	mov 5, %o0
	clr %o1
loop:
	add %o1, %o0, %o1
	subcc %o0, 1, %o0
	bne loop
	nop
	set 0x90000004, %o2
	st %o1, [%o2]
	set 0x90000000, %o2
	st %g0, [%o2]
	nop
`, mem.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	c := New(mem.NewBus(m), p.Entry)
	// Stuck-at-0 on the valid bit (bit 22) of the set holding `start`.
	if err := c.K.Inject(rtl.Fault{
		Node:  rtl.Node{Name: "cmem.ic.tags", Word: int(mem.RAMBase >> 4 & (icSets - 1)), Bit: 22},
		Model: rtl.StuckAt0,
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(100000); st != iss.StatusExited {
		t.Fatalf("status %v", st)
	}
	if got := c.Bus.Out(); len(got) != 1 || got[0] != 15 {
		t.Errorf("result with always-missing set = %v, want [15]", got)
	}
}

func TestDCacheStallFreezesArchitecture(t *testing.T) {
	// During a data-cache miss the instruction count must not advance.
	c := runRTL(t, `
start:
	set data, %o0
	ld [%o0], %o1
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
	.align 16
data:
	.word 7
`, 10000)
	if c.StallDCache == 0 {
		t.Error("cold load produced no dcache stalls")
	}
	// Sum of retire slots and stall causes must cover all cycles.
	covered := c.Icount + c.StallDCache + c.StallMulDiv + c.StallLoadUse +
		c.StallMismatch + c.StallEmpty + c.StallAnnul
	if covered < c.Cycles()-1 { // halt cycles after exit may be uncovered
		t.Errorf("cycle accounting: covered %d of %d", covered, c.Cycles())
	}
}
