// Package leon3 is a structural RTL model of a LEON3-like 32-bit SPARC V8
// microcontroller: a 7-stage integer unit (FE DE RA EX ME XC WB) with a
// windowed register file, forwarding network, iterative multiply/divide
// unit and trap machinery, plus a cache memory subsystem (CMEM) with
// direct-mapped write-through instruction and data caches.
//
// The model is built on the internal/rtl kernel: every pipeline register,
// control wire and memory array is a named RTL node, so the fault injector
// can force stuck-at and open-line faults on "all available points" of the
// IU and CMEM hierarchies, exactly as the reproduced paper does on the
// VHDL description.
//
// Microarchitectural notes (documented deviations from the Gaisler RTL,
// see DESIGN.md): control transfers resolve in EX against an expected-PC
// chain with a self-correcting fetch (mispredicted sequential fetches turn
// into bubbles), rather than LEON3's RA-stage branch address mux; loads
// and stores perform both words of LDD/STD in a single ME pass. Both
// simplifications change only cycle counts, never architectural results.
package leon3

import (
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/sparc"
)

// NWindows matches the ISS configuration.
const NWindows = iss.NWindows

// Cache geometry and timing.
const (
	icSets     = 64 // direct-mapped, 4-word lines
	dcSets     = 64
	lineWords  = 4
	icMissPen  = 3 // cycles
	dcMissPen  = 4
	mulCycles  = 5  // init + 4 byte-steps, finalize on the last
	divCycles  = 34 // init + 32 bit-steps + finalize
	physRegCnt = 8 + NWindows*16
)

// Status mirrors the ISS run status for lockstep comparison.
type Status = iss.Status

// stageRegs groups the pipeline registers at one stage boundary.
type fetchRegs struct {
	pc *rtl.Signal // fetch program counter
}

type deRegs struct {
	valid *rtl.Signal
	pc    *rtl.Signal
	inst  *rtl.Signal
}

type raRegs struct {
	valid *rtl.Signal
	pc    *rtl.Signal
	op    *rtl.Signal // sparc.Op, 7 bits
	rd    *rtl.Signal
	rs1   *rtl.Signal
	rs2   *rtl.Signal
	imm   *rtl.Signal // immediate flag
	simm  *rtl.Signal // sign-extended simm13 (32 bits)
	disp  *rtl.Signal // branch/call displacement (32 bits, words)
	annul *rtl.Signal // Bicc annul bit
	cond  *rtl.Signal // Bicc/Ticc condition
	raw   *rtl.Signal // raw word (for unknown-op traps)
}

type exRegs struct {
	valid *rtl.Signal
	pc    *rtl.Signal
	op    *rtl.Signal
	rd    *rtl.Signal
	a     *rtl.Signal // operand 1
	b     *rtl.Signal // operand 2 (register or immediate)
	sd    *rtl.Signal // store data / wr source
	disp  *rtl.Signal
	annul *rtl.Signal
	cond  *rtl.Signal
	rs1   *rtl.Signal // kept for rett/jmpl addressing and diagnostics
}

type meRegs struct {
	valid  *rtl.Signal
	isMem  *rtl.Signal // performs a data-cache access
	load   *rtl.Signal
	store  *rtl.Signal
	dbl    *rtl.Signal // LDD/STD second word
	size   *rtl.Signal // 1, 2, 4 bytes (3 bits)
	signed *rtl.Signal // sign-extend loaded value
	addr   *rtl.Signal
	wdata  *rtl.Signal // store data word 0
	wdata2 *rtl.Signal // store data word 1 (STD)
	swap   *rtl.Signal // SWAP/LDSTUB read-modify-write
	stub   *rtl.Signal // LDSTUB (write 0xff)
	result *rtl.Signal // ALU result for non-loads
	wbEn   *rtl.Signal
	wbIdx  *rtl.Signal // physical register index (8 bits)
	wb2En  *rtl.Signal // second write port (LDD, trap l1/l2)
	wb2Idx *rtl.Signal
	wb2Val *rtl.Signal
}

type xcRegs struct {
	valid  *rtl.Signal
	wbEn   *rtl.Signal
	wbIdx  *rtl.Signal
	wbVal  *rtl.Signal
	wb2En  *rtl.Signal
	wb2Idx *rtl.Signal
	wb2Val *rtl.Signal
}

type wbRegs struct {
	wbEn   *rtl.Signal
	wbIdx  *rtl.Signal
	wbVal  *rtl.Signal
	wb2En  *rtl.Signal
	wb2Idx *rtl.Signal
	wb2Val *rtl.Signal
}

// archRegs is the EX-owned architectural control state.
type archRegs struct {
	expPC  *rtl.Signal // architectural PC of the next instruction to execute
	expNPC *rtl.Signal
	icc    *rtl.Signal // 4 bits NZVC
	cwp    *rtl.Signal
	sS     *rtl.Signal // supervisor
	sPS    *rtl.Signal
	sET    *rtl.Signal
	wim    *rtl.Signal
	tbr    *rtl.Signal
	y      *rtl.Signal
	annul  *rtl.Signal // next executed instruction is annulled
	redirT *rtl.Signal // a fetch redirect for the current expPC was issued
	errm   *rtl.Signal // error mode (trap while ET=0)
	halt   *rtl.Signal // exit-device store retired; stop executing
	tt     *rtl.Signal // last trap type
}

// mdRegs is the iterative multiply/divide unit state.
type mdRegs struct {
	count *rtl.Signal // remaining cycles (6 bits)
	acc   *rtl.Signal // partial product / remainder (64 bits)
	quot  *rtl.Signal // partial quotient (32 bits)
	neg   *rtl.Signal // result sign (signed ops)
	ovf   *rtl.Signal // overflow detected
}

// cacheRegs is one direct-mapped cache (tags+data arrays plus controller
// state).
type cacheRegs struct {
	tags    *rtl.MemArray // valid(1) | tag(22) per set
	data    *rtl.MemArray // lineWords words per set
	counter *rtl.Signal   // miss stall counter
	// controller wires
	idx, tag, hit *rtl.Signal
}

// Core is the RTL microcontroller.
type Core struct {
	K   *rtl.Kernel
	Bus *mem.Bus

	fe   fetchRegs
	de   deRegs
	ra   raRegs
	ex   exRegs
	me   meRegs
	xc   xcRegs
	wb   wbRegs
	arch archRegs
	md   mdRegs

	rf *rtl.MemArray // physical register file

	ic, dc cacheRegs

	// inter-stage wires
	wRedir    *rtl.Signal // fetch redirect request
	wRedirPC  *rtl.Signal
	wExResult *rtl.Signal // EX bypass value
	wExWbEn   *rtl.Signal
	wExWbIdx  *rtl.Signal
	wMeWbVal  *rtl.Signal // ME bypass value (load data or carried result)
	wMeWb2Val *rtl.Signal
	wNextCWP  *rtl.Signal // CWP after the instruction in EX
	wLoadUse  *rtl.Signal
	wMdBusy   *rtl.Signal
	wDcStall  *rtl.Signal
	wIcStall  *rtl.Signal
	wAluOut   *rtl.Signal // ALU datapath wires
	wAluCC    *rtl.Signal
	wShOut    *rtl.Signal
	wBrTaken  *rtl.Signal
	wExTrap   *rtl.Signal
	wExTT     *rtl.Signal
	wMemAddr  *rtl.Signal
	wMatch    *rtl.Signal // EX instruction matches expected PC
	wDeOp     *rtl.Signal // decode output wires
	wDeRd     *rtl.Signal
	wDeRs1    *rtl.Signal
	wDeRs2    *rtl.Signal
	wDeImm    *rtl.Signal
	wDeSimm   *rtl.Signal
	wDeDisp   *rtl.Signal
	wDeAnnul  *rtl.Signal
	wDeCond   *rtl.Signal
	wRaOp1    *rtl.Signal // register-access output wires
	wRaOp2    *rtl.Signal
	wRaSd     *rtl.Signal

	// Precomputed stall groups (see rtl.Group): the architectural state
	// held by executeComb every cycle, and the per-stage register sets
	// frozen by stallComb.
	gArch, gFE, gRA, gEX, gME rtl.Group

	// Icount counts architecturally executed (non-annulled) instructions.
	Icount uint64
	// OpCounts mirrors the ISS histogram for cross-checks.
	OpCounts [sparc.NumOps]uint64

	// Pipeline diagnostics (cycles lost per cause).
	StallMismatch uint64 // EX saw a stale prefetched instruction
	StallEmpty    uint64 // EX had no instruction (fetch bubbles)
	StallDCache   uint64 // data-cache miss freeze
	StallMulDiv   uint64 // multiply/divide iteration
	StallLoadUse  uint64 // load-use interlock
	StallAnnul    uint64 // annulled delay slots

	status   Status
	trapType uint8
	entry    uint32
}

// u32 truncates a signal value to 32 bits.
func u32(s *rtl.Signal) uint32 { return uint32(s.Get()) }

// New builds the RTL core over the given bus, ready to execute from entry.
func New(bus *mem.Bus, entry uint32) *Core {
	k := rtl.NewKernel()
	c := &Core{K: k, Bus: bus, entry: entry, status: iss.StatusRunning}

	uF := rtl.Unit(sparc.UnitFetch)
	uD := rtl.Unit(sparc.UnitDecode)
	uR := rtl.Unit(sparc.UnitRegfile)
	uA := rtl.Unit(sparc.UnitALU)
	uS := rtl.Unit(sparc.UnitShifter)
	uM := rtl.Unit(sparc.UnitMulDiv)
	uB := rtl.Unit(sparc.UnitBranch)
	uL := rtl.Unit(sparc.UnitLSU)
	uP := rtl.Unit(sparc.UnitPSR)
	uCC := rtl.Unit(sparc.UnitCCtrl)
	uCT := rtl.Unit(sparc.UnitCTag)
	uCD := rtl.Unit(sparc.UnitCData)

	// Fetch.
	c.fe.pc = k.Reg("iu.fe.pc", 32, uF)
	c.de.valid = k.Reg("iu.de.valid", 1, uF)
	c.de.pc = k.Reg("iu.de.pc", 32, uF)
	c.de.inst = k.Reg("iu.de.inst", 32, uF)

	// Decode wires.
	c.wDeOp = k.Wire("iu.de.op", 7, uD)
	c.wDeRd = k.Wire("iu.de.rd", 5, uD)
	c.wDeRs1 = k.Wire("iu.de.rs1", 5, uD)
	c.wDeRs2 = k.Wire("iu.de.rs2", 5, uD)
	c.wDeImm = k.Wire("iu.de.immf", 1, uD)
	c.wDeSimm = k.Wire("iu.de.simm", 32, uD)
	c.wDeDisp = k.Wire("iu.de.disp", 32, uD)
	c.wDeAnnul = k.Wire("iu.de.annul", 1, uD)
	c.wDeCond = k.Wire("iu.de.cond", 4, uD)

	// RA stage registers.
	c.ra.valid = k.Reg("iu.ra.valid", 1, uD)
	c.ra.pc = k.Reg("iu.ra.pc", 32, uD)
	c.ra.op = k.Reg("iu.ra.op", 7, uD)
	c.ra.rd = k.Reg("iu.ra.rd", 5, uD)
	c.ra.rs1 = k.Reg("iu.ra.rs1", 5, uD)
	c.ra.rs2 = k.Reg("iu.ra.rs2", 5, uD)
	c.ra.imm = k.Reg("iu.ra.immf", 1, uD)
	c.ra.simm = k.Reg("iu.ra.simm", 32, uD)
	c.ra.disp = k.Reg("iu.ra.disp", 32, uD)
	c.ra.annul = k.Reg("iu.ra.annul", 1, uD)
	c.ra.cond = k.Reg("iu.ra.cond", 4, uD)
	c.ra.raw = k.Reg("iu.ra.raw", 32, uD)

	// Register file and read wires.
	c.rf = k.Array("iu.rf.regs", 32, physRegCnt, uR)
	c.wRaOp1 = k.Wire("iu.ra.op1", 32, uR)
	c.wRaOp2 = k.Wire("iu.ra.op2", 32, uR)
	c.wRaSd = k.Wire("iu.ra.sd", 32, uR)

	// EX stage registers.
	c.ex.valid = k.Reg("iu.ex.valid", 1, uR)
	c.ex.pc = k.Reg("iu.ex.pc", 32, uR)
	c.ex.op = k.Reg("iu.ex.op", 7, uR)
	c.ex.rd = k.Reg("iu.ex.rd", 5, uR)
	c.ex.a = k.Reg("iu.ex.a", 32, uR)
	c.ex.b = k.Reg("iu.ex.b", 32, uR)
	c.ex.sd = k.Reg("iu.ex.sd", 32, uR)
	c.ex.disp = k.Reg("iu.ex.disp", 32, uR)
	c.ex.annul = k.Reg("iu.ex.annulf", 1, uR)
	c.ex.cond = k.Reg("iu.ex.cond", 4, uR)
	c.ex.rs1 = k.Reg("iu.ex.rs1", 5, uR)

	// EX datapath wires.
	c.wAluOut = k.Wire("iu.ex.aluout", 32, uA)
	c.wAluCC = k.Wire("iu.ex.alucc", 4, uA)
	c.wShOut = k.Wire("iu.ex.shout", 32, uS)
	c.wBrTaken = k.Wire("iu.ex.brtaken", 1, uB)
	c.wExTrap = k.Wire("iu.ex.trap", 1, uP)
	c.wExTT = k.Wire("iu.ex.tt", 8, uP)
	c.wMemAddr = k.Wire("iu.ex.memaddr", 32, uL)
	c.wMatch = k.Wire("iu.ex.match", 1, uB)
	c.wExResult = k.Wire("iu.ex.result", 32, uA)
	c.wExWbEn = k.Wire("iu.ex.wben", 1, uR)
	c.wExWbIdx = k.Wire("iu.ex.wbidx", 8, uR)
	c.wNextCWP = k.Wire("iu.ex.nextcwp", 3, uP)
	c.wRedir = k.Wire("iu.fe.redir", 1, uB)
	c.wRedirPC = k.Wire("iu.fe.redirpc", 32, uB)

	// Multiply/divide unit.
	c.md.count = k.Reg("iu.md.count", 6, uM)
	c.md.acc = k.Reg("iu.md.acc", 64, uM)
	c.md.quot = k.Reg("iu.md.quot", 32, uM)
	c.md.neg = k.Reg("iu.md.neg", 1, uM)
	c.md.ovf = k.Reg("iu.md.ovf", 1, uM)
	c.wMdBusy = k.Wire("iu.md.busy", 1, uM)

	// Architectural control state.
	c.arch.expPC = k.Reg("iu.ctl.exppc", 32, uB)
	c.arch.expNPC = k.Reg("iu.ctl.expnpc", 32, uB)
	c.arch.icc = k.Reg("iu.psr.icc", 4, uP)
	c.arch.cwp = k.Reg("iu.psr.cwp", 3, uP)
	c.arch.sS = k.Reg("iu.psr.s", 1, uP)
	c.arch.sPS = k.Reg("iu.psr.ps", 1, uP)
	c.arch.sET = k.Reg("iu.psr.et", 1, uP)
	c.arch.wim = k.Reg("iu.psr.wim", 8, uP)
	c.arch.tbr = k.Reg("iu.psr.tbr", 32, uP)
	c.arch.y = k.Reg("iu.psr.y", 32, uP)
	c.arch.annul = k.Reg("iu.ctl.annul", 1, uB)
	c.arch.redirT = k.Reg("iu.ctl.redirt", 1, uB)
	c.arch.errm = k.Reg("iu.ctl.errm", 1, uP)
	c.arch.halt = k.Reg("iu.ctl.halt", 1, uP)
	c.arch.tt = k.Reg("iu.psr.tt", 8, uP)

	// ME stage registers.
	c.me.valid = k.Reg("iu.me.valid", 1, uL)
	c.me.isMem = k.Reg("iu.me.ismem", 1, uL)
	c.me.load = k.Reg("iu.me.load", 1, uL)
	c.me.store = k.Reg("iu.me.store", 1, uL)
	c.me.dbl = k.Reg("iu.me.dbl", 1, uL)
	c.me.size = k.Reg("iu.me.size", 3, uL)
	c.me.signed = k.Reg("iu.me.signed", 1, uL)
	c.me.addr = k.Reg("iu.me.addr", 32, uL)
	c.me.wdata = k.Reg("iu.me.wdata", 32, uL)
	c.me.wdata2 = k.Reg("iu.me.wdata2", 32, uL)
	c.me.swap = k.Reg("iu.me.swapf", 1, uL)
	c.me.stub = k.Reg("iu.me.stub", 1, uL)
	c.me.result = k.Reg("iu.me.result", 32, uL)
	c.me.wbEn = k.Reg("iu.me.wben", 1, uL)
	c.me.wbIdx = k.Reg("iu.me.wbidx", 8, uL)
	c.me.wb2En = k.Reg("iu.me.wb2en", 1, uL)
	c.me.wb2Idx = k.Reg("iu.me.wb2idx", 8, uL)
	c.me.wb2Val = k.Reg("iu.me.wb2val", 32, uL)
	c.wMeWbVal = k.Wire("iu.me.wbval", 32, uL)
	c.wMeWb2Val = k.Wire("iu.me.wb2valw", 32, uL)
	c.wLoadUse = k.Wire("iu.ra.loaduse", 1, uR)

	// XC stage registers.
	c.xc.valid = k.Reg("iu.xc.valid", 1, uP)
	c.xc.wbEn = k.Reg("iu.xc.wben", 1, uP)
	c.xc.wbIdx = k.Reg("iu.xc.wbidx", 8, uP)
	c.xc.wbVal = k.Reg("iu.xc.wbval", 32, uP)
	c.xc.wb2En = k.Reg("iu.xc.wb2en", 1, uP)
	c.xc.wb2Idx = k.Reg("iu.xc.wb2idx", 8, uP)
	c.xc.wb2Val = k.Reg("iu.xc.wb2val", 32, uP)

	// WB stage registers.
	c.wb.wbEn = k.Reg("iu.wb.wben", 1, uR)
	c.wb.wbIdx = k.Reg("iu.wb.wbidx", 8, uR)
	c.wb.wbVal = k.Reg("iu.wb.wbval", 32, uR)
	c.wb.wb2En = k.Reg("iu.wb.wb2en", 1, uR)
	c.wb.wb2Idx = k.Reg("iu.wb.wb2idx", 8, uR)
	c.wb.wb2Val = k.Reg("iu.wb.wb2val", 32, uR)

	// Cache memory (CMEM).
	c.ic.tags = k.Array("cmem.ic.tags", 23, icSets, uCT)
	c.ic.data = k.Array("cmem.ic.data", 32, icSets*lineWords, uCD)
	c.ic.counter = k.Reg("cmem.ic.count", 4, uCC)
	c.ic.idx = k.Wire("cmem.ic.idx", 6, uCC)
	c.ic.tag = k.Wire("cmem.ic.tag", 22, uCC)
	c.ic.hit = k.Wire("cmem.ic.hit", 1, uCC)
	c.wIcStall = k.Wire("cmem.ic.stall", 1, uCC)

	c.dc.tags = k.Array("cmem.dc.tags", 23, dcSets, uCT)
	c.dc.data = k.Array("cmem.dc.data", 32, dcSets*lineWords, uCD)
	c.dc.counter = k.Reg("cmem.dc.count", 4, uCC)
	c.dc.idx = k.Wire("cmem.dc.idx", 6, uCC)
	c.dc.tag = k.Wire("cmem.dc.tag", 22, uCC)
	c.dc.hit = k.Wire("cmem.dc.hit", 1, uCC)
	c.wDcStall = k.Wire("cmem.dc.stall", 1, uCC)

	// Stall groups: the architectural state executeComb holds by default
	// each cycle, and the per-stage register sets stallComb freezes.
	c.gArch = k.Group(
		c.arch.expPC, c.arch.expNPC, c.arch.icc, c.arch.cwp,
		c.arch.sS, c.arch.sPS, c.arch.sET, c.arch.wim, c.arch.tbr,
		c.arch.y, c.arch.annul, c.arch.redirT, c.arch.errm, c.arch.halt, c.arch.tt,
		c.md.count, c.md.acc, c.md.quot, c.md.neg, c.md.ovf)
	c.gFE = k.Group(c.fe.pc, c.de.valid, c.de.pc, c.de.inst, c.ic.counter)
	c.gRA = k.Group(c.ra.valid, c.ra.pc, c.ra.op, c.ra.rd, c.ra.rs1, c.ra.rs2,
		c.ra.imm, c.ra.simm, c.ra.disp, c.ra.annul, c.ra.cond, c.ra.raw)
	c.gEX = k.Group(c.ex.valid, c.ex.pc, c.ex.op, c.ex.rd, c.ex.a, c.ex.b,
		c.ex.sd, c.ex.disp, c.ex.annul, c.ex.cond, c.ex.rs1)
	c.gME = k.Group(c.me.valid, c.me.isMem, c.me.load, c.me.store, c.me.dbl,
		c.me.size, c.me.signed, c.me.addr, c.me.wdata, c.me.wdata2,
		c.me.swap, c.me.stub, c.me.result, c.me.wbEn, c.me.wbIdx,
		c.me.wb2En, c.me.wb2Idx, c.me.wb2Val)

	c.resetSignals()

	// Processes in evaluation order: write-first register file, then the
	// older stages before the younger ones so that bypass wires are valid
	// when the register-access stage samples them.
	k.Comb(c.writebackComb)
	k.Comb(c.decodeComb)
	k.Comb(c.memoryComb)
	k.Comb(c.executeComb)
	k.Comb(c.regaccessComb)
	k.Comb(c.fetchComb)
	k.Comb(c.stallComb)
	return c
}

// resetSignals drives the power-on values onto the (all-zero) kernel
// state: entry PC into the fetch and expected-PC chain, top window,
// supervisor mode with traps enabled, and window 0 invalid.
func (c *Core) resetSignals() {
	entry := c.entry
	c.fe.pc.Set(uint64(entry))
	c.fe.pc.SetNext(uint64(entry))
	c.arch.expPC.Set(uint64(entry))
	c.arch.expPC.SetNext(uint64(entry))
	c.arch.expNPC.Set(uint64(entry + 4))
	c.arch.expNPC.SetNext(uint64(entry + 4))
	c.arch.cwp.Set(NWindows - 1)
	c.arch.cwp.SetNext(NWindows - 1)
	c.arch.sS.Set(1)
	c.arch.sS.SetNext(1)
	c.arch.sET.Set(1)
	c.arch.sET.SetNext(1)
	c.arch.wim.Set(1)
	c.arch.wim.SetNext(1)
}

// Reset returns the core to its power-on state in place — every RTL
// signal and array back to the reset values, counters and diagnostics
// zeroed, status running — so a pooled core can be reused across
// fault-injection experiments instead of being rebuilt. The bus is left
// untouched: callers install a fresh (or forked) memory image themselves
// by assigning Bus before resuming execution.
func (c *Core) Reset() {
	c.K.ResetState()
	c.resetSignals()
	c.Icount = 0
	c.OpCounts = [sparc.NumOps]uint64{}
	c.StallMismatch, c.StallEmpty, c.StallDCache = 0, 0, 0
	c.StallMulDiv, c.StallLoadUse, c.StallAnnul = 0, 0, 0
	c.status = iss.StatusRunning
	c.trapType = 0
}

// physReg maps architectural register r under window w to its physical
// index (globals first, then the windowed file; mirrors the ISS layout).
func physReg(w uint64, r uint64) uint64 {
	if r < 8 {
		return r
	}
	switch {
	case r < 16: // outs = ins of the window below
		return 8 + ((w+NWindows-1)%NWindows)*16 + (r - 8)
	case r < 24: // locals
		return 8 + w*16 + 8 + (r - 16)
	default: // ins
		return 8 + w*16 + (r - 24)
	}
}

// Status returns the core's terminal status.
func (c *Core) Status() Status { return c.status }

// TrapTaken returns the tt of the trap that caused error mode.
func (c *Core) TrapTaken() uint8 { return c.trapType }

// Cycles returns the elapsed clock cycles.
func (c *Core) Cycles() uint64 { return c.K.Now() }

// RegPhys reads a physical register (for lockstep checks).
func (c *Core) RegPhys(i int) uint32 { return uint32(c.rf.Read(i)) }

// Reg reads architectural register r in the current window.
func (c *Core) Reg(r int) uint32 {
	if r == 0 {
		return 0
	}
	return uint32(c.rf.Read(int(physReg(c.arch.cwp.Get(), uint64(r)))))
}

// PC returns the architectural PC (next instruction to execute).
func (c *Core) PC() uint32 { return u32(c.arch.expPC) }
