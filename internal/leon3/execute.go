package leon3

import (
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sparc"
)

// executeComb is the EX stage: it validates the incoming instruction
// against the expected-PC chain, computes the ALU/shifter/multiply-divide
// datapaths, evaluates branches, takes traps and commits all architectural
// control state (PC chain, PSR fields, WIM, TBR, Y, CWP).
func (c *Core) executeComb() {
	// Default wire values and register pass-through.
	c.wRedir.SetBool(false)
	c.wRedirPC.Set(c.arch.expPC.Get())
	c.wExWbEn.SetBool(false)
	c.wExWbIdx.Set(0)
	c.wExResult.Set(0)
	c.wMdBusy.SetBool(false)
	c.wExTrap.SetBool(false)
	c.wExTT.Set(0)
	c.wMatch.SetBool(false)
	c.wBrTaken.SetBool(false)
	c.wAluOut.Set(0)
	c.wShOut.Set(0)
	c.wMemAddr.Set(0)
	c.wNextCWP.Set(c.arch.cwp.Get())

	c.gArch.Hold()

	meBubble := func() {
		c.me.valid.SetNext(0)
		c.me.isMem.SetNext(0)
		c.me.wbEn.SetNext(0)
		c.me.wb2En.SetNext(0)
	}
	meBubble()

	// A data-cache stall freezes EX entirely (stallComb holds the input
	// registers; nothing may commit twice).
	if c.wDcStall.GetBool() {
		c.StallDCache++
		return
	}
	if c.arch.errm.GetBool() || c.arch.halt.GetBool() {
		return
	}
	if !c.ex.valid.GetBool() {
		c.StallEmpty++
		return
	}

	expPC := u32(c.arch.expPC)
	pc := u32(c.ex.pc)
	if pc != expPC {
		// Stale sequential prefetch: bubble it. Redirect fetch unless the
		// expected instruction is already in flight (short forward
		// branches land inside the sequential prefetch window) or a
		// redirect for this expectation was already issued.
		c.StallMismatch++
		inFlight := (c.ra.valid.GetBool() && u32(c.ra.pc) == expPC) ||
			(c.de.valid.GetBool() && u32(c.de.pc) == expPC) ||
			u32(c.fe.pc) == expPC
		if !inFlight && !c.arch.redirT.GetBool() {
			c.wRedir.SetBool(true)
			c.wRedirPC.Set(uint64(expPC))
			c.arch.redirT.SetNext(1)
		}
		return
	}
	c.wMatch.SetBool(true)
	c.arch.redirT.SetNext(0)

	expNPC := u32(c.arch.expNPC)
	advance := func() {
		c.arch.expPC.SetNext(uint64(expNPC))
		c.arch.expNPC.SetNext(uint64(expNPC + 4))
	}
	jumpTo := func(t uint32) {
		c.arch.expPC.SetNext(uint64(expNPC))
		c.arch.expNPC.SetNext(uint64(t))
	}

	if c.arch.annul.GetBool() {
		// Annulled delay slot: consumes a pipeline slot, no effects.
		c.StallAnnul++
		c.arch.annul.SetNext(0)
		advance()
		return
	}

	// Operand reads happen inside the cases that consume them (and the
	// case-specific helpers below), never eagerly: a read-witness on the
	// EX operand registers or the condition codes must see only true
	// consumption. cwp is genuinely consumed every cycle (the wNextCWP
	// default above already reads it).
	op := sparc.Op(c.ex.op.Get())
	cwp := c.arch.cwp.Get()
	opA := func() uint32 { return u32(c.ex.a) }
	opB := func() uint32 { return u32(c.ex.b) }
	archICC := func() sparc.CC { return sparc.CCFromBits(uint32(c.arch.icc.Get())) }

	trap := func(tt uint8) {
		c.wExTrap.SetBool(true)
		c.wExTT.Set(uint64(tt))
		c.arch.tt.SetNext(uint64(tt))
		if !c.arch.sET.GetBool() {
			c.arch.errm.SetNext(1)
			return
		}
		newCWP := (cwp + NWindows - 1) % NWindows
		c.arch.sET.SetNext(0)
		c.arch.sPS.SetNext(c.arch.sS.Get())
		c.arch.sS.SetNext(1)
		c.arch.cwp.SetNext(newCWP)
		c.wNextCWP.Set(newCWP)
		tbr := u32(c.arch.tbr)&0xfffff000 | uint32(tt)<<4
		c.arch.tbr.SetNext(uint64(tbr))
		c.arch.expPC.SetNext(uint64(tbr))
		c.arch.expNPC.SetNext(uint64(tbr + 4))
		c.arch.annul.SetNext(0)
		// l1/l2 of the new window receive PC/nPC via the WB ports.
		c.me.valid.SetNext(1)
		c.me.isMem.SetNext(0)
		c.me.wbEn.SetNext(1)
		c.me.wbIdx.SetNext(physReg(newCWP, sparc.RegL1))
		c.me.result.SetNext(uint64(pc))
		c.me.wb2En.SetNext(1)
		c.me.wb2Idx.SetNext(physReg(newCWP, sparc.RegL2))
		c.me.wb2Val.SetNext(uint64(expNPC))
	}

	// commit pushes a non-memory result toward writeback.
	commit := func(wbEn bool, rd uint64, val uint32) {
		c.me.valid.SetNext(1)
		c.me.isMem.SetNext(0)
		if wbEn {
			idx := physReg(c.wNextCWP.Get(), rd&31)
			if idx != 0 {
				c.me.wbEn.SetNext(1)
				c.me.wbIdx.SetNext(idx)
				c.me.result.SetNext(uint64(val))
				c.wExWbEn.SetBool(true)
				c.wExWbIdx.Set(idx)
				c.wExResult.Set(uint64(val))
			}
		}
	}

	retire := func() {
		c.Icount++
		c.OpCounts[op]++
	}

	switch {
	case op == sparc.OpUnknown:
		trap(iss.TrapIllegalInst)
		return

	case op == sparc.OpSETHI:
		b := opB()
		c.wAluOut.Set(uint64(b))
		commit(true, c.ex.rd.Get(), b)
		advance()
		retire()
		return

	case op.IsBicc():
		taken := sparc.EvalCond(uint32(c.ex.cond.Get()), archICC())
		c.wBrTaken.SetBool(taken)
		if taken {
			t := pc + u32(c.ex.disp)<<2
			jumpTo(t)
			if c.ex.annul.GetBool() && op == sparc.OpBA {
				c.arch.annul.SetNext(1)
			}
		} else {
			if c.ex.annul.GetBool() {
				c.arch.annul.SetNext(1)
			}
			advance()
		}
		commit(false, 0, 0)
		retire()
		return

	case op == sparc.OpCALL:
		t := pc + u32(c.ex.disp)<<2
		jumpTo(t)
		commit(true, 15, pc)
		retire()
		return

	case op.IsTicc():
		if sparc.EvalCond(uint32(c.ex.cond.Get()), archICC()) {
			trap(uint8(iss.TrapInstBase + (opA()+opB())&0x7f))
			return
		}
		advance()
		commit(false, 0, 0)
		retire()
		return

	case op == sparc.OpJMPL:
		t := opA() + opB()
		c.wMemAddr.Set(uint64(t))
		if t&3 != 0 {
			trap(iss.TrapMemNotAligned)
			return
		}
		jumpTo(t)
		commit(true, c.ex.rd.Get(), pc)
		retire()
		return

	case op == sparc.OpRETT:
		if c.arch.sET.GetBool() {
			trap(iss.TrapIllegalInst)
			return
		}
		if !c.arch.sS.GetBool() {
			trap(iss.TrapPrivilegedInst)
			return
		}
		t := opA() + opB()
		if t&3 != 0 {
			trap(iss.TrapMemNotAligned)
			return
		}
		newCWP := (cwp + 1) % NWindows
		if c.arch.wim.Get()&(1<<newCWP) != 0 {
			trap(iss.TrapWindowUnderflow)
			return
		}
		c.arch.cwp.SetNext(newCWP)
		c.wNextCWP.Set(newCWP)
		c.arch.sS.SetNext(c.arch.sPS.Get())
		c.arch.sET.SetNext(1)
		jumpTo(t)
		commit(false, 0, 0)
		retire()
		return

	case op == sparc.OpSAVE || op == sparc.OpRESTORE:
		var newCWP uint64
		var tt uint8
		if op == sparc.OpSAVE {
			newCWP = (cwp + NWindows - 1) % NWindows
			tt = iss.TrapWindowOverflow
		} else {
			newCWP = (cwp + 1) % NWindows
			tt = iss.TrapWindowUnderflow
		}
		if c.arch.wim.Get()&(1<<newCWP) != 0 {
			trap(tt)
			return
		}
		sum := opA() + opB()
		c.wAluOut.Set(uint64(sum))
		c.arch.cwp.SetNext(newCWP)
		c.wNextCWP.Set(newCWP)
		commit(true, c.ex.rd.Get(), sum)
		advance()
		retire()
		return

	case op.IsMemory():
		c.executeMemOp(op, opA(), opB(), trap, advance, retire)
		return

	case op >= sparc.OpUMUL && op <= sparc.OpSDIVCC:
		c.executeMulDiv(op, opA(), opB(), trap, advance, retire, commit)
		return
	}

	// Single-cycle ALU and state-register operations (all consume both
	// operands).
	a, b := opA(), opB()
	res, cc, ok := c.aluOp(op, a, b, archICC())
	if !ok {
		trap(c.aluTrapType(op))
		return
	}
	c.wAluOut.Set(uint64(res))
	c.wAluCC.Set(uint64(cc.Bits()))
	if op.SetsCC() {
		c.arch.icc.SetNext(c.wAluCC.Get())
	}
	advance()
	retire()

	switch op {
	case sparc.OpWRY:
		c.arch.y.SetNext(uint64(a ^ b))
		commit(false, 0, 0)
	case sparc.OpWRPSR:
		v := a ^ b
		psr := iss.PSRFromBits(v)
		c.arch.icc.SetNext(uint64(psr.ICC.Bits()))
		c.arch.sS.SetNextBool(psr.S)
		c.arch.sPS.SetNextBool(psr.PS)
		c.arch.sET.SetNextBool(psr.ET)
		c.arch.cwp.SetNext(uint64(psr.CWP))
		c.wNextCWP.Set(uint64(psr.CWP))
		commit(false, 0, 0)
	case sparc.OpWRWIM:
		c.arch.wim.SetNext(uint64((a ^ b) & (1<<NWindows - 1)))
		commit(false, 0, 0)
	case sparc.OpWRTBR:
		c.arch.tbr.SetNext(uint64((a ^ b) & 0xfffff000))
		commit(false, 0, 0)
	default:
		commit(true, c.ex.rd.Get(), res)
	}
}

// aluTrapType returns the trap a failed ALU op raises.
func (c *Core) aluTrapType(op sparc.Op) uint8 {
	switch op {
	case sparc.OpRDPSR, sparc.OpRDWIM, sparc.OpRDTBR, sparc.OpWRPSR, sparc.OpWRWIM, sparc.OpWRTBR:
		if !c.arch.sS.GetBool() {
			return iss.TrapPrivilegedInst
		}
	}
	return iss.TrapIllegalInst
}

// aluOp computes single-cycle ALU results. ok=false raises a trap.
func (c *Core) aluOp(op sparc.Op, a, b uint32, icc sparc.CC) (res uint32, cc sparc.CC, ok bool) {
	cc = icc
	ok = true
	switch op {
	case sparc.OpADD, sparc.OpADDCC:
		res, cc = sparc.AddCC(a, b, false)
	case sparc.OpADDX, sparc.OpADDXCC:
		res, cc = sparc.AddCC(a, b, icc.C)
	case sparc.OpSUB, sparc.OpSUBCC:
		res, cc = sparc.SubCC(a, b, false)
	case sparc.OpSUBX, sparc.OpSUBXCC:
		res, cc = sparc.SubCC(a, b, icc.C)
	case sparc.OpTADDCC:
		res, cc = sparc.AddCC(a, b, false)
		if (a|b)&3 != 0 {
			cc.V = true
		}
	case sparc.OpTSUBCC:
		res, cc = sparc.SubCC(a, b, false)
		if (a|b)&3 != 0 {
			cc.V = true
		}
	case sparc.OpAND, sparc.OpANDCC:
		res = a & b
		cc = sparc.LogicCC(res)
	case sparc.OpANDN, sparc.OpANDNCC:
		res = a &^ b
		cc = sparc.LogicCC(res)
	case sparc.OpOR, sparc.OpORCC:
		res = a | b
		cc = sparc.LogicCC(res)
	case sparc.OpORN, sparc.OpORNCC:
		res = a | ^b
		cc = sparc.LogicCC(res)
	case sparc.OpXOR, sparc.OpXORCC:
		res = a ^ b
		cc = sparc.LogicCC(res)
	case sparc.OpXNOR, sparc.OpXNORCC:
		res = ^(a ^ b)
		cc = sparc.LogicCC(res)
	case sparc.OpSLL:
		res = a << (b & 31)
		c.wShOut.Set(uint64(res))
	case sparc.OpSRL:
		res = a >> (b & 31)
		c.wShOut.Set(uint64(res))
	case sparc.OpSRA:
		res = uint32(int32(a) >> (b & 31))
		c.wShOut.Set(uint64(res))
	case sparc.OpMULSCC:
		op1 := a>>1 | bit(icc.N != icc.V)<<31
		op2 := uint32(0)
		y := u32(c.arch.y)
		if y&1 != 0 {
			op2 = b
		}
		res, cc = sparc.AddCC(op1, op2, false)
		c.arch.y.SetNext(uint64(y>>1 | (a&1)<<31))
	case sparc.OpRDY:
		res = u32(c.arch.y)
	case sparc.OpRDPSR:
		if !c.arch.sS.GetBool() {
			return 0, cc, false
		}
		res = c.psrBits()
	case sparc.OpRDWIM:
		if !c.arch.sS.GetBool() {
			return 0, cc, false
		}
		res = u32(c.arch.wim)
	case sparc.OpRDTBR:
		if !c.arch.sS.GetBool() {
			return 0, cc, false
		}
		res = u32(c.arch.tbr)
	case sparc.OpWRY:
		res = 0
	case sparc.OpWRPSR, sparc.OpWRWIM, sparc.OpWRTBR:
		if !c.arch.sS.GetBool() {
			return 0, cc, false
		}
		if op == sparc.OpWRPSR && (a^b)&0x1f >= NWindows {
			return 0, cc, false
		}
		res = 0
	default:
		return 0, cc, false
	}
	return res, cc, true
}

// psrBits assembles the architectural PSR value from the RTL fields.
func (c *Core) psrBits() uint32 {
	p := iss.PSR{
		ICC: sparc.CCFromBits(uint32(c.arch.icc.Get())),
		S:   c.arch.sS.GetBool(),
		PS:  c.arch.sPS.GetBool(),
		ET:  c.arch.sET.GetBool(),
		CWP: uint8(c.arch.cwp.Get()),
	}
	return p.Bits()
}

func bit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// executeMemOp generates the data-cache request for a load/store.
func (c *Core) executeMemOp(op sparc.Op, a, b uint32, trap func(uint8), advance, retire func()) {
	addr := a + b
	c.wMemAddr.Set(uint64(addr))
	var align uint32
	size := uint64(4)
	switch op {
	case sparc.OpLD, sparc.OpST, sparc.OpSWAP:
		align = 3
	case sparc.OpLDUH, sparc.OpLDSH, sparc.OpSTH:
		align, size = 1, 2
	case sparc.OpLDD, sparc.OpSTD:
		align = 7
	case sparc.OpLDUB, sparc.OpLDSB, sparc.OpSTB, sparc.OpLDSTUB:
		size = 1
	}
	if addr&align != 0 {
		trap(iss.TrapMemNotAligned)
		return
	}
	rd := c.ex.rd.Get()
	dbl := op == sparc.OpLDD || op == sparc.OpSTD
	if dbl && rd&1 != 0 {
		trap(iss.TrapIllegalInst)
		return
	}

	if op.IsStore() && addr == mem.ExitAddr {
		// The exit device terminates the program once this store drains.
		c.arch.halt.SetNext(1)
	}

	c.me.valid.SetNext(1)
	c.me.isMem.SetNext(1)
	c.me.load.SetNextBool(op.IsLoad())
	c.me.store.SetNextBool(op.IsStore() && op != sparc.OpSWAP && op != sparc.OpLDSTUB)
	c.me.dbl.SetNextBool(dbl)
	c.me.size.SetNext(size)
	c.me.signed.SetNextBool(op == sparc.OpLDSB || op == sparc.OpLDSH)
	c.me.addr.SetNext(uint64(addr))
	if op.IsStore() {
		// Loads never consume the write-data port; reading sd for them
		// would make every load an observer of the store-data path.
		c.me.wdata.SetNext(c.ex.sd.Get())
	}
	c.me.swap.SetNextBool(op == sparc.OpSWAP)
	c.me.stub.SetNextBool(op == sparc.OpLDSTUB)

	if op.IsLoad() {
		idx := physReg(c.wNextCWP.Get(), rd&31)
		if idx != 0 {
			c.me.wbEn.SetNext(1)
			c.me.wbIdx.SetNext(idx)
		}
		if op == sparc.OpLDD {
			c.me.wb2En.SetNext(1)
			c.me.wb2Idx.SetNext(physReg(c.wNextCWP.Get(), (rd|1)&31))
		}
	}
	if op == sparc.OpSTD {
		// The second word travels via the sd path read at RA? STD needs
		// rd|1 as well: it was read as part of the bypass network below.
		c.me.wdata2.SetNext(uint64(c.stdSecondWord()))
	}
	advance()
	retire()
}

// stdSecondWord supplies rd|1 for STD. It is read directly from the
// retired register state (plus in-flight writeback ports), which is
// architecturally equal to a second RA read port.
func (c *Core) stdSecondWord() uint32 {
	idx := physReg(c.wNextCWP.Get(), (c.ex.rd.Get()|1)&31)
	if idx == 0 {
		return 0
	}
	v := c.rf.Read(int(idx % physRegCnt))
	if c.xc.valid.GetBool() {
		if c.xc.wbEn.GetBool() && c.xc.wbIdx.Get() == idx {
			v = c.xc.wbVal.Get()
		}
		if c.xc.wb2En.GetBool() && c.xc.wb2Idx.Get() == idx {
			v = c.xc.wb2Val.Get()
		}
	}
	if c.me.valid.GetBool() { // ME is younger than XC: it wins
		if c.me.wbEn.GetBool() && c.me.wbIdx.Get() == idx {
			v = c.wMeWbVal.Get()
		}
		if c.me.wb2En.GetBool() && c.me.wb2Idx.Get() == idx {
			v = c.wMeWb2Val.Get()
		}
	}
	return uint32(v)
}
