package leon3

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
)

func assembleProg(src string) (*asm.Program, error) {
	return asm.Assemble(src, mem.RAMBase)
}

func newCore(p *asm.Program) *Core {
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	return New(mem.NewBus(m), p.Entry)
}

// Forwarding and hazard corner cases, each validated in lockstep against
// the ISS through lockstepSrc (defined in leon3_test.go).

func TestForwardStoreDataFromLoad(t *testing.T) {
	lockstepSrc(t, `
start:
	set buf, %o0
	mov 0x5a, %o1
	st %o1, [%o0]
	ld [%o0], %o2
	st %o2, [%o0+4]      ! store data depends on the load (load-use on rd)
	ld [%o0+4], %o3
	st %o3, [%o0+8]
`+exitSeq+`
buf:
	.space 16
`, 1000)
}

func TestForwardStdSecondWord(t *testing.T) {
	lockstepSrc(t, `
start:
	set buf, %o0
	mov 0x11, %o2
	mov 0x22, %o3
	add %o2, 1, %o2      ! freshen rd
	add %o3, 1, %o3      ! freshen rd|1 right before the std
	std %o2, [%o0]
	ldd [%o0], %o4
	std %o4, [%o0+8]
`+exitSeq+`
	.align 8
buf:
	.space 32
`, 1000)
}

func TestForwardThroughSaveRestoreWindowShift(t *testing.T) {
	lockstepSrc(t, `
start:
	set stacktop, %sp
	mov 7, %o0
	save %sp, -96, %sp   ! %o0 becomes %i0 of the new window
	add %i0, 1, %i1      ! read the renamed register immediately
	mov %i1, %i2
	restore %i2, 0, %o1  ! result lands in the old window
	set buf, %o2
	st %o1, [%o2]
`+exitSeq+`
buf:
	.space 8
	.space 256
stacktop:
	.word 0
`, 1000)
}

func TestBackToBackMulDiv(t *testing.T) {
	lockstepSrc(t, `
start:
	set 12345, %o0
	umul %o0, %o0, %o1   ! iterative unit busy
	umul %o1, 3, %o2     ! immediately reissue
	rd %y, %o3
	wr %g0, %y
	udiv %o2, 7, %o4     ! div right after mul
	smul %o4, %o4, %o5
	set buf, %g1
	st %o1, [%g1]
	st %o2, [%g1+4]
	st %o4, [%g1+8]
	st %o5, [%g1+12]
`+exitSeq+`
buf:
	.space 16
`, 2000)
}

func TestMulDivResultImmediatelyConsumed(t *testing.T) {
	lockstepSrc(t, `
start:
	mov 100, %o0
	smul %o0, %o0, %o1
	add %o1, 1, %o2      ! consume the muldiv result with no gap
	sub %o2, %o1, %o3
	set buf, %g1
	st %o2, [%g1]
	st %o3, [%g1+4]
`+exitSeq+`
buf:
	.space 8
`, 1000)
}

func TestSwapWithForwardedOperands(t *testing.T) {
	lockstepSrc(t, `
start:
	set cell, %o0
	mov 0xaa, %o1
	add %o1, 1, %o1      ! forwarded into swap's store data
	swap [%o0], %o1
	st %o1, [%o0+4]      ! old memory value
	ld [%o0], %o2        ! new memory value
	st %o2, [%o0+8]
`+exitSeq+`
cell:
	.word 0x1234, 0, 0
`, 1000)
}

func TestTrapL1L2ForwardToHandler(t *testing.T) {
	// The trap bubble writes l1/l2 through the WB ports; the handler's
	// first instructions read them immediately (bypass distance 1-2).
	lockstepSrc(t, `
start:
	set table, %g1
	wr %g1, %tbr
	ta 1
	nop
	set 0x90000004, %g2
	mov 7, %g3
	st %g3, [%g2]
`+exitSeq+`
	.align 4096
table:
	.org table+0x810     ! tt = 0x81
	add %l1, %g0, %l4    ! read l1 right away
	add %l2, %g0, %l5
	jmpl %l5, %g0
	rett %l5+4
`, 100000)
}

func TestBranchIntoDelaySlotRegion(t *testing.T) {
	// Dense short-forward branches (distance 1..3) exercise the
	// in-flight redirect suppression.
	lockstepSrc(t, `
start:
	mov 10, %o0
	clr %o1
dense:
	cmp %o0, 5
	bg d1
	nop
	add %o1, 1, %o1
d1:	ble d2
	nop
	add %o1, 2, %o1
d2:	bne d3
	nop
	add %o1, 4, %o1
d3:	subcc %o0, 1, %o0
	bne dense
	nop
	set buf, %g1
	st %o1, [%g1]
`+exitSeq+`
buf:
	.space 8
`, 5000)
}

func TestRTLStatusAfterBudget(t *testing.T) {
	p, err := assembleProg("start:\n\tba start\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	core := newCore(p)
	if st := core.Run(500); st != iss.StatusBudget {
		t.Errorf("status %v, want budget", st)
	}
}
