package leon3

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sparc"
	"repro/internal/workloads"
)

// runBoth executes the same program image on the ISS and the RTL core.
func runBoth(t *testing.T, p *asm.Program, maxInsts uint64) (*iss.CPU, *Core) {
	t.Helper()
	mi := mem.NewMemory()
	mi.LoadImage(p.Origin, p.Image)
	cpu := iss.New(mem.NewBus(mi), p.Entry)
	cpu.Run(maxInsts)

	mr := mem.NewMemory()
	mr.LoadImage(p.Origin, p.Image)
	core := New(mem.NewBus(mr), p.Entry)
	core.Run(maxInsts * 12) // generous cycle budget (CPI plus stalls)
	return cpu, core
}

// checkLockstep asserts architectural equivalence of a finished pair.
func checkLockstep(t *testing.T, name string, cpu *iss.CPU, core *Core) {
	t.Helper()
	if cpu.Status() != core.Status() {
		t.Fatalf("%s: status ISS=%v RTL=%v (RTL pc=%08x cycles=%d icount=%d)",
			name, cpu.Status(), core.Status(), core.PC(), core.Cycles(), core.Icount)
	}
	if d := core.Bus.Trace.Divergence(&cpu.Bus.Trace); d != -1 {
		var a, b mem.Access
		if d < len(cpu.Bus.Trace.Writes) {
			a = cpu.Bus.Trace.Writes[d]
		}
		if d < len(core.Bus.Trace.Writes) {
			b = core.Bus.Trace.Writes[d]
		}
		t.Fatalf("%s: off-core traces diverge at write %d: ISS %v, RTL %v", name, d, a, b)
	}
	if cpu.Icount != core.Icount {
		t.Errorf("%s: icount ISS=%d RTL=%d", name, cpu.Icount, core.Icount)
	}
	if cpu.OpCounts != core.OpCounts {
		for op := sparc.Op(0); op < sparc.NumOps; op++ {
			if cpu.OpCounts[op] != core.OpCounts[op] {
				t.Errorf("%s: opcount[%v] ISS=%d RTL=%d", name, op, cpu.OpCounts[op], core.OpCounts[op])
			}
		}
	}
	// Full register file sweep across all windows.
	for w := uint8(0); w < NWindows; w++ {
		for r := 1; r < 32; r++ {
			want := cpu.RegInWindow(w, r)
			got := uint32(core.rf.Read(int(physReg(uint64(w), uint64(r)))))
			if r < 8 {
				got = uint32(core.rf.Read(r))
			}
			if want != got {
				t.Errorf("%s: w%d %s ISS=%#x RTL=%#x", name, w, sparc.RegName(r), want, got)
			}
		}
	}
}

func lockstepSrc(t *testing.T, src string, maxInsts uint64) (*iss.CPU, *Core) {
	t.Helper()
	p, err := asm.Assemble(src, mem.RAMBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cpu, core := runBoth(t, p, maxInsts)
	checkLockstep(t, "src", cpu, core)
	return cpu, core
}

const exitSeq = `
	set 0x90000000, %l7
	st %g0, [%l7]
	nop
`

func TestLockstepBasicALU(t *testing.T) {
	lockstepSrc(t, `
start:
	mov 10, %o0
	mov 3, %o1
	add %o0, %o1, %o2
	subcc %o0, %o1, %o3
	and %o2, %o3, %o4
	orcc %o4, 1, %o5
	xor %o5, %o0, %l0
	sll %l0, 4, %l1
	sra %l1, 2, %l2
	set results, %l6
	st %o2, [%l6]
	st %o3, [%l6+4]
	st %l2, [%l6+8]
`+exitSeq+`
results:
	.space 16
`, 1000)
}

func TestLockstepForwardingChains(t *testing.T) {
	// Back-to-back dependencies exercise every bypass distance.
	lockstepSrc(t, `
start:
	mov 1, %o0
	add %o0, %o0, %o0   ! EX->RA
	add %o0, %o0, %o0
	add %o0, %o0, %o0
	add %o0, %o0, %o0
	set buf, %o1
	st %o0, [%o1]
	ld [%o1], %o2       ! load
	add %o2, 1, %o3     ! load-use stall + ME->RA forward
	st %o3, [%o1+4]
	ld [%o1+4], %o4
	nop
	add %o4, 1, %o5     ! XC->RA distance
	st %o5, [%o1+8]
`+exitSeq+`
buf:
	.space 16
`, 1000)
}

func TestLockstepBranchesAndAnnul(t *testing.T) {
	lockstepSrc(t, `
start:
	mov 5, %o0
	clr %o1
loop:
	add %o1, %o0, %o1
	subcc %o0, 1, %o0
	bne,a loop
	nop
	cmp %o1, 15
	be good
	nop
	mov 99, %o1
good:
	ba,a skip
	mov 77, %o1        ! annulled
skip:
	set out, %o2
	st %o1, [%o2]
`+exitSeq+`
out:
	.space 8
`, 1000)
}

func TestLockstepCallSaveRestore(t *testing.T) {
	lockstepSrc(t, `
start:
	set stacktop, %sp
	mov 21, %o0
	call double
	nop
	set out, %o1
	st %o0, [%o1]
`+exitSeq+`
double:
	save %sp, -96, %sp
	add %i0, %i0, %i0
	ret
	restore
out:
	.space 8
	.space 256
stacktop:
	.word 0
`, 1000)
}

func TestLockstepMulDiv(t *testing.T) {
	lockstepSrc(t, `
start:
	set 123456, %o0
	set 789, %o1
	umul %o0, %o1, %o2
	rd %y, %o3
	smul %o0, %o1, %o4
	mov -77, %o5
	smul %o5, %o1, %l0
	rd %y, %l1
	wr %g0, %y
	set 1000000, %l2
	udiv %l2, 7, %l3
	sra %o5, 31, %l4
	wr %l4, %y
	sdiv %o5, 3, %l5
	set out, %g1
	st %o2, [%g1]
	st %o3, [%g1+4]
	st %o4, [%g1+8]
	st %l0, [%g1+12]
	st %l3, [%g1+16]
	st %l5, [%g1+20]
`+exitSeq+`
out:
	.space 32
`, 1000)
}

func TestLockstepMulsccSequence(t *testing.T) {
	lockstepSrc(t, `
start:
	set 30011, %o0
	set 721, %o1
	wr %o1, %y
	andcc %g0, %g0, %o4
	mulscc %o4, %o0, %o4
	mulscc %o4, %o0, %o4
	mulscc %o4, %o0, %o4
	mulscc %o4, %o0, %o4
	rd %y, %o5
	set out, %g1
	st %o4, [%g1]
	st %o5, [%g1+4]
`+exitSeq+`
out:
	.space 8
`, 1000)
}

func TestLockstepMemoryWidths(t *testing.T) {
	lockstepSrc(t, `
start:
	set data, %o0
	ld [%o0], %o1
	ldub [%o0+1], %o2
	ldsb [%o0], %o3
	lduh [%o0+2], %o4
	ldsh [%o0], %o5
	ldd [%o0+8], %l0
	set buf, %l6
	st %o1, [%l6]
	stb %o2, [%l6+4]
	sth %o4, [%l6+6]
	std %l0, [%l6+8]
	mov 5, %l3
	swap [%l6], %l3
	ldstub [%l6+4], %l4
	st %l3, [%l6+16]
	st %l4, [%l6+20]
`+exitSeq+`
	.align 8
data:
	.word 0xdeadbeef, 0x01020304, 0x11223344, 0x55667788
	.align 8
buf:
	.space 32
`, 1000)
}

func TestLockstepTrapsAndErrorMode(t *testing.T) {
	// Division by zero with TBR pointing at unmapped memory ends in error
	// mode on both simulators.
	cpu, core := lockstepSrc(t, `
start:
	mov 3, %o0
	udiv %o0, %g0, %o1
`, 1000)
	if cpu.Status() != iss.StatusErrorMode || core.Status() != iss.StatusErrorMode {
		t.Fatalf("statuses: ISS=%v RTL=%v", cpu.Status(), core.Status())
	}
}

func TestLockstepTaTrapHandler(t *testing.T) {
	lockstepSrc(t, `
start:
	set table, %g1
	wr %g1, %tbr
	ta 3
	nop
	set 0x90000004, %g2
	mov 1, %g3
	st %g3, [%g2]
`+exitSeq+`
	.align 4096
table:
	.org table+0x830
	jmpl %l2, %g0
	rett %l2+4
`, 100000)
}

func TestLockstepWindowSpillRecursion(t *testing.T) {
	w := workloadFromRuntime(t, `
	save %sp, -96, %sp
	mov 12, %o0
	call rec
	nop
	mov %o0, %i0
	ret
	restore
rec:
	save %sp, -96, %sp
	cmp %i0, 0
	be rec_base
	nop
	sub %i0, 1, %o0
	call rec
	nop
	add %o0, 1, %i0
	ret
	restore
rec_base:
	clr %i0
	ret
	restore
`)
	cpu, core := runBoth(t, w, 1_000_000)
	checkLockstep(t, "recursion", cpu, core)
	if cpu.Bus.ExitCode() != 12 {
		t.Errorf("exit code %d, want 12", cpu.Bus.ExitCode())
	}
}

// workloadFromRuntime builds a full-runtime program from a main body.
func workloadFromRuntime(t *testing.T, body string) *asm.Program {
	t.Helper()
	w, err := workloads.BuildRaw(body)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLockstepAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := workloads.Config{}
			if name != "excerptA" && name != "excerptB" {
				cfg.Iterations = 2 // keep RTL runtime manageable
			}
			w, err := workloads.Build(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cpu, core := runBoth(t, w.Program, 3_000_000)
			checkLockstep(t, name, cpu, core)
			t.Logf("%s: %d insts, %d cycles, CPI=%.2f",
				name, core.Icount, core.Cycles(), float64(core.Cycles())/float64(core.Icount))
		})
	}
}

func TestRTLNodeInventory(t *testing.T) {
	bus := mem.NewBus(mem.NewMemory())
	core := New(bus, mem.RAMBase)
	iu := core.K.Nodes("iu.")
	cm := core.K.Nodes("cmem.")
	if len(iu) < 1000 {
		t.Errorf("IU nodes = %d, suspiciously few", len(iu))
	}
	if len(cm) < 5000 {
		t.Errorf("CMEM nodes = %d, suspiciously few", len(cm))
	}
	t.Logf("injection nodes: IU=%d CMEM=%d (%v)", len(iu), len(cm), core.K)
}
