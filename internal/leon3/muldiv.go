package leon3

import (
	"repro/internal/iss"
	"repro/internal/sparc"
)

// executeMulDiv drives the iterative multiply/divide unit: UMUL/SMUL run a
// byte-per-cycle partial-product accumulation (5-cycle latency, like the
// LEON3 32x32 multiplier), UDIV/SDIV a bit-serial restoring division over
// the 64-bit Y:rs1 dividend (34-cycle latency). The unit's partial
// registers (md.acc, md.quot, ...) are injectable RTL state.
func (c *Core) executeMulDiv(op sparc.Op, a, b uint32,
	trap func(uint8), advance, retire func(), commit func(bool, uint64, uint32)) {

	isDiv := op == sparc.OpUDIV || op == sparc.OpUDIVCC || op == sparc.OpSDIV || op == sparc.OpSDIVCC
	signedOp := op == sparc.OpSDIV || op == sparc.OpSDIVCC || op == sparc.OpSMUL || op == sparc.OpSMULCC

	// Operand magnitudes and result sign (recomputed each cycle from the
	// held EX operand registers; only partial state lives in md.*).
	ma, mb := uint64(a), uint64(b)
	neg := false
	if signedOp {
		if int32(a) < 0 {
			ma = uint64(uint32(-int32(a)))
			neg = !neg
		}
		if int32(b) < 0 {
			mb = uint64(uint32(-int32(b)))
			neg = !neg
		}
	}

	switch cnt := c.md.count.Get(); {
	case cnt == 0: // issue cycle
		if isDiv {
			if b == 0 {
				trap(iss.TrapDivByZero)
				return
			}
			dividend := c.arch.y.Get()<<32 | uint64(a)
			if signedOp {
				neg = false
				if int64(dividend) < 0 {
					dividend = uint64(-int64(dividend))
					neg = !neg
				}
				if int32(b) < 0 {
					neg = !neg
				}
			} else {
				neg = false
			}
			divisor := mb
			if !signedOp {
				divisor = uint64(b)
			}
			c.md.acc.SetNext(dividend)
			c.md.quot.SetNext(0)
			c.md.neg.SetNextBool(neg)
			c.md.ovf.SetNextBool(dividend>>32 >= divisor)
			c.md.count.SetNext(33) // 32 bit-steps + finalize
		} else {
			c.md.acc.SetNext(0)
			c.md.neg.SetNextBool(neg)
			c.md.ovf.SetNext(0)
			c.md.count.SetNext(mulCycles) // 4 byte-steps + finalize
		}
		c.wMdBusy.SetBool(true)
		c.StallMulDiv++
		return

	case cnt > 1: // iteration
		if isDiv {
			if !c.md.ovf.GetBool() {
				divisor := mb
				if !signedOp {
					divisor = uint64(b)
				}
				i := cnt - 2 // bit index 31..0
				acc := c.md.acc.Get()
				rem := acc >> 32
				low := acc & 0xffffffff
				rem = rem<<1 | (low>>i)&1
				q := c.md.quot.Get()
				if rem >= divisor {
					rem -= divisor
					q |= 1 << i
				}
				c.md.acc.SetNext(rem<<32 | low)
				c.md.quot.SetNext(q)
			}
		} else {
			j := mulCycles - cnt // byte index 0..3
			part := (ma * (mb >> (8 * j) & 0xff)) << (8 * j)
			c.md.acc.SetNext(c.md.acc.Get() + part)
		}
		c.md.count.SetNext(cnt - 1)
		c.wMdBusy.SetBool(true)
		c.StallMulDiv++
		return
	}

	// cnt == 1: finalize and retire.
	c.md.count.SetNext(0)
	var res uint32
	var cc sparc.CC
	if isDiv {
		q := c.md.quot.Get()
		v := false
		if signedOp {
			limit := uint64(0x7fffffff)
			if c.md.neg.GetBool() {
				limit = 0x80000000
			}
			if c.md.ovf.GetBool() || q > limit {
				v = true
				q = limit
			}
			if c.md.neg.GetBool() {
				q = uint64(uint32(-int32(uint32(q))))
			}
		} else if c.md.ovf.GetBool() {
			v = true
			q = 0xffffffff
		}
		res = uint32(q)
		cc = sparc.LogicCC(res)
		cc.V = v
	} else {
		prod := c.md.acc.Get()
		if c.md.neg.GetBool() {
			prod = -prod
		}
		res = uint32(prod)
		c.arch.y.SetNext(prod >> 32)
		cc = sparc.LogicCC(res)
	}
	if op.SetsCC() {
		c.arch.icc.SetNext(uint64(cc.Bits()))
	}
	c.wAluOut.Set(uint64(res))
	commit(true, c.ex.rd.Get(), res)
	advance()
	retire()
}
