package leon3

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/sparc"
)

// Snapshot captures the complete dynamic state of a core at a cycle
// boundary: every RTL signal and memory array via the kernel snapshot,
// plus the architectural instruction counters, pipeline diagnostics and
// run status. Together with a mem.Image of the bus memory it is enough to
// fork bit-identical continuations of a run — the checkpoint mechanism the
// fault-injection campaign engine uses to avoid re-simulating the golden
// warm-up prefix for every experiment.
type Snapshot struct {
	kern     *rtl.Snapshot
	icount   uint64
	opCounts [sparc.NumOps]uint64
	stalls   [6]uint64
	status   Status
	trapType uint8
	entry    uint32
}

// Cycle returns the cycle count at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.kern.Cycle() }

// Snapshot captures the core's dynamic state as a deep copy; the core may
// keep running without disturbing it. Bus state (memory contents, off-core
// trace) is owned by the bus and must be snapshotted separately.
func (c *Core) Snapshot() *Snapshot {
	return &Snapshot{
		kern:     c.K.Snapshot(),
		icount:   c.Icount,
		opCounts: c.OpCounts,
		stalls: [6]uint64{c.StallMismatch, c.StallEmpty, c.StallDCache,
			c.StallMulDiv, c.StallLoadUse, c.StallAnnul},
		status:   c.status,
		trapType: c.trapType,
		entry:    c.entry,
	}
}

// Restore loads a snapshot into the core, which must have been built by
// New with the same entry point (the kernel structure is deterministic, so
// any same-entry core matches). The core's bus is left untouched: callers
// fork the memory image and preload the trace prefix themselves.
func (c *Core) Restore(s *Snapshot) error {
	if s.entry != c.entry {
		return fmt.Errorf("leon3: snapshot entry %08x does not match core entry %08x", s.entry, c.entry)
	}
	if err := c.K.Restore(s.kern); err != nil {
		return err
	}
	c.Icount = s.icount
	c.OpCounts = s.opCounts
	c.StallMismatch, c.StallEmpty, c.StallDCache = s.stalls[0], s.stalls[1], s.stalls[2]
	c.StallMulDiv, c.StallLoadUse, c.StallAnnul = s.stalls[3], s.stalls[4], s.stalls[5]
	c.status = s.status
	c.trapType = s.trapType
	return nil
}

// StateEquals reports whether the core's committed RTL state (register
// slab, memory arrays, cycle count) equals the snapshot's. Wire slabs
// and the architectural diagnostics (instruction/stall counters) are
// deliberately excluded: wires carry no state across the clock edge
// (TestWiresCarryNoState enforces that), and the counters never feed
// back into the datapath. The batched campaign engine uses this as its
// reconvergence check — a forked fault universe that StateEquals a
// golden snapshot, with a matching off-core write position, produces
// the same future as the golden run while its fault stays unread.
func (c *Core) StateEquals(s *Snapshot) bool {
	return c.K.StateEquals(s.kern)
}
