package leon3

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// TestSnapshotForkBitIdentical runs a reference core to completion, then
// forks a second core from a mid-run snapshot (kernel state plus a
// copy-on-write memory image) and checks that the continuation is
// bit-identical: same status, cycle count, instruction counters, off-core
// write stream and register file.
func TestSnapshotForkBitIdentical(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Program

	// Reference run, uninterrupted.
	mr := mem.NewMemory()
	mr.LoadImage(p.Origin, p.Image)
	ref := New(mem.NewBus(mr), p.Entry)
	if st := ref.Run(10_000_000); st != iss.StatusExited {
		t.Fatalf("reference run: %v", st)
	}

	for _, frac := range []float64{0.1, 0.5, 0.9} {
		at := uint64(frac * float64(ref.Cycles()))
		// Warm-up run to the snapshot point.
		mw := mem.NewMemory()
		mw.LoadImage(p.Origin, p.Image)
		wbus := mem.NewBus(mw)
		warm := New(wbus, p.Entry)
		for warm.Cycles() < at && warm.Status() == iss.StatusRunning {
			warm.StepCycle()
		}
		snap := warm.Snapshot()
		img := mw.Snapshot()
		prefix := len(wbus.Trace.Writes)

		// Keep the warm core running past the snapshot to prove the frozen
		// image is immune to the parent's later writes.
		warm.Run(10_000_000)

		// Fork and run to completion.
		fbus := mem.NewBus(img.Fork())
		fork := New(fbus, p.Entry)
		if err := fork.Restore(snap); err != nil {
			t.Fatalf("fork@%d: %v", at, err)
		}
		if fork.Cycles() != at {
			t.Fatalf("fork@%d: restored cycle count %d", at, fork.Cycles())
		}
		if st := fork.Run(10_000_000); st != ref.Status() {
			t.Fatalf("fork@%d: status %v, reference %v", at, st, ref.Status())
		}
		if fork.Cycles() != ref.Cycles() {
			t.Errorf("fork@%d: cycles %d, reference %d", at, fork.Cycles(), ref.Cycles())
		}
		if fork.Icount != ref.Icount {
			t.Errorf("fork@%d: icount %d, reference %d", at, fork.Icount, ref.Icount)
		}
		if fork.OpCounts != ref.OpCounts {
			t.Errorf("fork@%d: op histogram diverged", at)
		}

		// The forked trace holds only post-fork writes; it must equal the
		// reference suffix exactly, bit for bit.
		suffix := ref.Bus.Trace.Writes[prefix:]
		if len(fbus.Trace.Writes) != len(suffix) {
			t.Fatalf("fork@%d: %d post-fork writes, reference suffix %d",
				at, len(fbus.Trace.Writes), len(suffix))
		}
		for i, a := range fbus.Trace.Writes {
			if a != suffix[i] {
				t.Fatalf("fork@%d: write %d = %v, reference %v", at, prefix+i, a, suffix[i])
			}
		}
		if fbus.ExitCode() != ref.Bus.ExitCode() {
			t.Errorf("fork@%d: exit code %d, reference %d", at, fbus.ExitCode(), ref.Bus.ExitCode())
		}
		for i := 0; i < physRegCnt; i++ {
			if fork.RegPhys(i) != ref.RegPhys(i) {
				t.Errorf("fork@%d: phys reg %d = %08x, reference %08x",
					at, i, fork.RegPhys(i), ref.RegPhys(i))
			}
		}
	}
}

// TestRestoreRejectsForeignSnapshot checks the structural guards.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(mem.NewBus(mem.NewMemory()), w.Program.Entry)
	snap := c.Snapshot()
	other := New(mem.NewBus(mem.NewMemory()), w.Program.Entry+8)
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into a different-entry core succeeded")
	}
}
