package leon3

import (
	"repro/internal/iss"
	"repro/internal/sparc"
)

// writebackComb runs first each cycle: it retires the WB stage into the
// register file (write-before-read, like the LEON3 register file's
// half-cycle write) and advances XC -> WB.
func (c *Core) writebackComb() {
	if c.wb.wbEn.GetBool() {
		if idx := c.wb.wbIdx.Get() % physRegCnt; idx != 0 {
			c.rf.Write(int(idx), c.wb.wbVal.Get())
		}
	}
	if c.wb.wb2En.GetBool() {
		if idx := c.wb.wb2Idx.Get() % physRegCnt; idx != 0 {
			c.rf.Write(int(idx), c.wb.wb2Val.Get())
		}
	}
	// The index/value ports are only latched behind their enables, so a
	// read-witness on the XC registers observes true consumption: a
	// bubble's (or non-writeback instruction's) stale port values never
	// reach the register file.
	valid := c.xc.valid.GetBool()
	wbEn := valid && c.xc.wbEn.GetBool()
	c.wb.wbEn.SetNextBool(wbEn)
	if wbEn {
		c.wb.wbIdx.SetNext(c.xc.wbIdx.Get())
		c.wb.wbVal.SetNext(c.xc.wbVal.Get())
	}
	wb2En := valid && c.xc.wb2En.GetBool()
	c.wb.wb2En.SetNextBool(wb2En)
	if wb2En {
		c.wb.wb2Idx.SetNext(c.xc.wb2Idx.Get())
		c.wb.wb2Val.SetNext(c.xc.wb2Val.Get())
	}
}

// decodeComb decodes the instruction in DE into control wires and latches
// them into the RA stage registers.
func (c *Core) decodeComb() {
	// A fetch bubble decodes nothing: only the valid bit propagates. The
	// RA operand registers keep their stale contents, which regaccessComb
	// never reads for an invalid slot.
	if !c.de.valid.GetBool() {
		c.ra.valid.SetNext(0)
		return
	}
	word := u32(c.de.inst)
	in := sparc.Decode(word)
	c.wDeOp.Set(uint64(in.Op))
	c.wDeRd.Set(uint64(in.Rd))
	c.wDeRs1.Set(uint64(in.Rs1))
	c.wDeRs2.Set(uint64(in.Rs2))
	c.wDeImm.SetBool(in.Imm)
	simm := uint64(uint32(in.Simm13))
	if in.Op == sparc.OpSETHI {
		simm = uint64(uint32(in.Imm22) << 10)
		c.wDeImm.SetBool(true)
	}
	c.wDeSimm.Set(simm)
	disp := uint64(uint32(in.Imm22))
	if in.Op == sparc.OpCALL {
		disp = uint64(uint32(in.Disp30))
	}
	c.wDeDisp.Set(disp)
	c.wDeAnnul.SetBool(in.Annul)
	c.wDeCond.Set(uint64(in.Op.Cond()))

	c.ra.valid.SetNext(1)
	c.ra.pc.SetNext(c.de.pc.Get())
	c.ra.op.SetNext(c.wDeOp.Get())
	c.ra.rd.SetNext(c.wDeRd.Get())
	c.ra.rs1.SetNext(c.wDeRs1.Get())
	c.ra.rs2.SetNext(c.wDeRs2.Get())
	c.ra.imm.SetNext(c.wDeImm.Get())
	c.ra.simm.SetNext(c.wDeSimm.Get())
	c.ra.disp.SetNext(c.wDeDisp.Get())
	c.ra.annul.SetNext(c.wDeAnnul.Get())
	c.ra.cond.SetNext(c.wDeCond.Get())
	c.ra.raw.SetNext(uint64(word))
}

// memoryComb performs the data-cache access of the instruction in ME and
// advances ME -> XC. It runs before executeComb so that the stall wire and
// the load-data bypass are visible to the younger stages in the same
// cycle.
func (c *Core) memoryComb() {
	c.wDcStall.SetBool(false)

	bubble := func() {
		c.xc.valid.SetNext(0)
		c.xc.wbEn.SetNext(0)
		c.xc.wb2En.SetNext(0)
	}
	if !c.me.valid.GetBool() {
		bubble()
		return
	}
	// pass advances ME -> XC. The writeback value ports (and the bypass
	// wires the younger stages snoop) are only touched behind their
	// enables, and the value closures defer the ME register reads until
	// an enable proves the value is consumed.
	pass := func(val, val2 func() uint64) {
		c.xc.valid.SetNext(1)
		wbEn := c.me.wbEn.GetBool()
		c.xc.wbEn.SetNextBool(wbEn)
		if wbEn {
			c.xc.wbIdx.SetNext(c.me.wbIdx.Get())
			c.xc.wbVal.SetNext(val())
		}
		wb2En := c.me.wb2En.GetBool()
		c.xc.wb2En.SetNextBool(wb2En)
		if wb2En {
			c.xc.wb2Idx.SetNext(c.me.wb2Idx.Get())
			c.xc.wb2Val.SetNext(val2())
		}
	}
	meResult := func() uint64 {
		v := c.me.result.Get()
		c.wMeWbVal.Set(v)
		return v
	}
	meWb2 := func() uint64 {
		v := c.me.wb2Val.Get()
		c.wMeWb2Val.Set(v)
		return v
	}
	if !c.me.isMem.GetBool() {
		pass(meResult, meWb2)
		return
	}

	addr := u32(c.me.addr)
	c.dc.idx.Set(uint64(addr >> 4 & (dcSets - 1)))
	c.dc.tag.Set(uint64(addr >> 10))
	idx := int(c.dc.idx.Get())
	entry := c.dc.tags.Read(idx)
	hit := entry>>22&1 == 1 && entry&0x3fffff == c.dc.tag.Get()
	c.dc.hit.SetBool(hit)

	load := c.me.load.GetBool()
	needLine := load && !hit
	switch cnt := c.dc.counter.Get(); {
	case needLine && cnt == 0:
		c.dc.counter.SetNext(dcMissPen)
		c.wDcStall.SetBool(true)
		bubble()
		return
	case needLine && cnt > 1:
		c.dc.counter.SetNext(cnt - 1)
		c.wDcStall.SetBool(true)
		bubble()
		return
	case needLine && cnt == 1:
		// Line fill from the bus, then fall through and complete. The
		// line is now present: read-modify-write accesses (SWAP, LDSTUB)
		// must update it below.
		base := addr &^ (4*lineWords - 1)
		for w := 0; w < lineWords; w++ {
			c.dc.data.Write(idx*lineWords+w, uint64(c.Bus.Mem.Read32(base+uint32(4*w))))
		}
		c.dc.tags.Write(idx, 1<<22|c.dc.tag.Get())
		c.dc.counter.SetNext(0)
		hit = true
		c.dc.hit.SetBool(true)
	}

	seq := c.K.Now()
	off := int(addr >> 2 & (lineWords - 1))
	word := uint32(c.dc.data.Read(idx*lineWords + off))
	size := uint32(c.me.size.Get())

	var loaded uint64
	if load {
		switch size {
		case 1:
			sh := 24 - 8*(addr&3)
			b := word >> sh & 0xff
			if c.me.signed.GetBool() {
				b = uint32(int32(int8(b)))
			}
			loaded = uint64(b)
		case 2:
			sh := 16 - 8*(addr&2)
			h := word >> sh & 0xffff
			if c.me.signed.GetBool() {
				h = uint32(int32(int16(h)))
			}
			loaded = uint64(h)
		default:
			loaded = uint64(word)
		}
	}
	var loaded2 uint64
	if load && c.me.dbl.GetBool() {
		loaded2 = c.dc.data.Read(idx*lineWords + (off | 1))
	}

	// Stores are write-through with no-allocate; on a hit the cached word
	// is updated in place.
	updateLine := func(a uint32, sz uint32, v uint32) {
		if !hit {
			return
		}
		o := int(a >> 2 & (lineWords - 1))
		w := uint32(c.dc.data.Read(idx*lineWords + o))
		switch sz {
		case 1:
			sh := 24 - 8*(a&3)
			w = w&^(0xff<<sh) | (v&0xff)<<sh
		case 2:
			sh := 16 - 8*(a&2)
			w = w&^(0xffff<<sh) | (v&0xffff)<<sh
		default:
			w = v
		}
		c.dc.data.Write(idx*lineWords+o, uint64(w))
	}

	switch {
	case c.me.stub.GetBool(): // LDSTUB: read byte, write 0xff
		c.Bus.Write(addr, 1, 0xff, seq)
		updateLine(addr, 1, 0xff)
	case c.me.swap.GetBool(): // SWAP: read word, write rd
		v := u32(c.me.wdata)
		c.Bus.Write(addr, 4, v, seq)
		updateLine(addr, 4, v)
	case c.me.store.GetBool():
		v := u32(c.me.wdata)
		c.Bus.Write(addr, uint8(size&7), v, seq)
		updateLine(addr, size, v)
		if c.me.dbl.GetBool() {
			v2 := u32(c.me.wdata2)
			c.Bus.Write(addr+4, 4, v2, seq)
			updateLine(addr+4, 4, v2)
		}
	}

	if load {
		c.wMeWbVal.Set(loaded)
		if c.me.dbl.GetBool() {
			c.wMeWb2Val.Set(loaded2)
		}
		pass(func() uint64 { return loaded }, func() uint64 { return loaded2 })
		return
	}
	pass(meResult, meWb2)
}

// regaccessComb reads the register file with full bypassing from the
// EX/ME/XC stages, latches operands into EX and raises the load-use stall.
func (c *Core) regaccessComb() {
	// A bubble touches no operand state: it neither reads the register
	// file nor latches the EX operand registers.
	if !c.ra.valid.GetBool() {
		c.ex.valid.SetNext(0)
		c.wLoadUse.SetBool(false)
		return
	}
	w := c.wNextCWP.Get()
	read := func(r uint64) uint64 {
		idx := physReg(w, r&31)
		if idx == 0 {
			return 0
		}
		v := c.rf.Read(int(idx % physRegCnt))
		if c.xc.valid.GetBool() {
			if c.xc.wbEn.GetBool() && c.xc.wbIdx.Get() == idx {
				v = c.xc.wbVal.Get()
			}
			if c.xc.wb2En.GetBool() && c.xc.wb2Idx.Get() == idx {
				v = c.xc.wb2Val.Get()
			}
		}
		if c.me.valid.GetBool() {
			if c.me.wbEn.GetBool() && c.me.wbIdx.Get() == idx {
				v = c.wMeWbVal.Get()
			}
			if c.me.wb2En.GetBool() && c.me.wb2Idx.Get() == idx {
				v = c.wMeWb2Val.Get()
			}
		}
		if c.wExWbEn.GetBool() && c.wExWbIdx.Get() == idx {
			v = c.wExResult.Get()
		}
		return v
	}

	rs1 := c.ra.rs1.Get()
	rs2 := c.ra.rs2.Get()
	rd := c.ra.rd.Get()
	op := sparc.Op(c.ra.op.Get())
	useRs2 := !c.ra.imm.GetBool()

	// Operand consumption by op class. Branch-steering ops (Bicc, CALL)
	// and undecodable words never touch the operand datapath, SETHI
	// consumes only its immediate, and only stores read rd as data. Reads
	// the EX stage will not consume are not performed at all, so a
	// read-witness on the register file or the RA operand registers
	// observes true consumption only (the batched campaign engine's
	// activation predicate depends on this; see rtl.StartWitness).
	needA := !(op == sparc.OpUnknown || op == sparc.OpSETHI || op.IsBicc() || op == sparc.OpCALL)
	if needA {
		c.wRaOp1.Set(read(rs1))
		c.ex.a.SetNext(c.wRaOp1.Get())
	}
	if needA || op == sparc.OpSETHI {
		op2 := uint64(0)
		if useRs2 {
			op2 = read(rs2)
		} else {
			op2 = c.ra.simm.Get()
		}
		c.wRaOp2.Set(op2)
		c.ex.b.SetNext(c.wRaOp2.Get())
	}
	if op.IsStore() {
		c.wRaSd.Set(read(rd))
		c.ex.sd.SetNext(c.wRaSd.Get())
	}
	if op.IsBicc() || op == sparc.OpCALL {
		c.ex.disp.SetNext(c.ra.disp.Get())
	}
	if op.IsBicc() || op.IsTicc() {
		c.ex.cond.SetNext(c.ra.cond.Get())
	}
	if op.IsBicc() {
		c.ex.annul.SetNext(c.ra.annul.Get())
	}

	c.ex.valid.SetNext(1)
	c.ex.pc.SetNext(c.ra.pc.Get())
	c.ex.op.SetNext(c.ra.op.Get())
	c.ex.rd.SetNext(rd)
	c.ex.rs1.SetNext(rs1)

	// Load-use hazard: the instruction in EX is a load whose destination
	// feeds one of our sources; its data only exists at ME next cycle.
	lu := false
	if c.ex.valid.GetBool() && c.wMatch.GetBool() {
		exOp := sparc.Op(c.ex.op.Get())
		if exOp.IsLoad() {
			dst := physReg(c.wNextCWP.Get(), c.ex.rd.Get()&31)
			dbl := exOp == sparc.OpLDD
			match := func(r uint64) bool {
				i := physReg(w, r&31)
				if i == 0 {
					return false
				}
				return i == dst || (dbl && i == (dst|1))
			}
			if match(rs1) || (useRs2 && match(rs2)) || (op.IsStore() && match(rd)) {
				lu = true
			}
		}
	}
	c.wLoadUse.SetBool(lu)
}

// fetchComb fetches through the instruction cache along the sequential
// prefetch path, honoring redirect requests from EX.
func (c *Core) fetchComb() {
	bubble := func() {
		c.de.valid.SetNext(0)
	}
	if c.wRedir.GetBool() {
		// Abandon the current fetch (and any miss in progress).
		c.fe.pc.SetNext(c.wRedirPC.Get())
		c.ic.counter.SetNext(0)
		c.wIcStall.SetBool(false)
		bubble()
		return
	}
	pc := u32(c.fe.pc) &^ 3
	c.ic.idx.Set(uint64(pc >> 4 & (icSets - 1)))
	c.ic.tag.Set(uint64(pc >> 10))
	idx := int(c.ic.idx.Get())
	entry := c.ic.tags.Read(idx)
	hit := entry>>22&1 == 1 && entry&0x3fffff == c.ic.tag.Get()
	c.ic.hit.SetBool(hit)

	switch cnt := c.ic.counter.Get(); {
	case !hit && cnt == 0:
		c.ic.counter.SetNext(icMissPen)
		c.wIcStall.SetBool(true)
		c.fe.pc.Hold()
		bubble()
		return
	case !hit && cnt > 1:
		c.ic.counter.SetNext(cnt - 1)
		c.wIcStall.SetBool(true)
		c.fe.pc.Hold()
		bubble()
		return
	case !hit && cnt == 1:
		base := pc &^ (4*lineWords - 1)
		for w := 0; w < lineWords; w++ {
			c.ic.data.Write(idx*lineWords+w, uint64(c.Bus.Fetch32(base+uint32(4*w))))
		}
		c.ic.tags.Write(idx, 1<<22|c.ic.tag.Get())
		c.ic.counter.SetNext(0)
	default:
		c.wIcStall.SetBool(false)
	}

	off := int(pc >> 2 & (lineWords - 1))
	inst := c.ic.data.Read(idx*lineWords + off)
	c.de.valid.SetNext(1)
	c.de.pc.SetNext(uint64(pc))
	c.de.inst.SetNext(inst)
	c.fe.pc.SetNext(uint64(pc + 4))
}

// stallComb runs last and applies the pipeline holds demanded by the
// stall wires, using the precomputed per-stage hold groups. Stall scopes
// (younger stages always freeze first):
//
//	load-use:  FE DE RA frozen, EX bubbled
//	muldiv:    FE DE RA EX frozen (ME was bubbled by EX)
//	dcache:    FE DE RA EX ME frozen (XC was bubbled by ME)
func (c *Core) stallComb() {
	dc := c.wDcStall.GetBool()
	md := c.wMdBusy.GetBool()
	lu := c.wLoadUse.GetBool()
	if !(dc || md || lu) {
		return
	}
	c.gFE.Hold()
	c.gRA.Hold()
	if lu && !dc && !md {
		c.StallLoadUse++
		c.ex.valid.SetNext(0)
		return
	}
	c.gEX.Hold()
	if dc {
		c.gME.Hold()
		// The architectural state scheduled by a skipped EX must also
		// freeze (executeComb held off all its commits already).
	}
}

// StepCycle advances the core by one clock cycle and updates its status.
func (c *Core) StepCycle() Status {
	if c.status != iss.StatusRunning {
		return c.status
	}
	c.K.Cycle()
	if c.Bus.Exited() {
		c.status = iss.StatusExited
	} else if c.arch.errm.GetBool() {
		c.status = iss.StatusErrorMode
		c.trapType = uint8(c.arch.tt.Get())
	}
	return c.status
}

// Run advances the core until exit, error mode or the cycle budget.
func (c *Core) Run(maxCycles uint64) Status {
	for c.status == iss.StatusRunning && c.K.Now() < maxCycles {
		c.StepCycle()
	}
	if c.status == iss.StatusRunning {
		c.status = iss.StatusBudget
	}
	return c.status
}
