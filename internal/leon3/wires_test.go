package leon3

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/rtl"
	"repro/internal/workloads"
)

// TestWiresCarryNoState poisons every wire of a running core with
// pseudo-random garbage between clock cycles and checks that the run
// stays bit-identical to an unmolested reference: same per-cycle
// committed state (sampled periodically), same off-core write stream,
// same final status and instruction counters. A pass dynamically
// enforces the drive-before-read discipline the design claims for its
// wires — the property that lets rtl.Kernel.StateEquals (the batched
// campaign engine's reconvergence check) ignore the wire slabs
// entirely.
func TestWiresCarryNoState(t *testing.T) {
	w, err := workloads.Build("excerptA", workloads.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Program

	mr := mem.NewMemory()
	mr.LoadImage(p.Origin, p.Image)
	ref := New(mem.NewBus(mr), p.Entry)

	mp := mem.NewMemory()
	mp.LoadImage(p.Origin, p.Image)
	poisoned := New(mem.NewBus(mp), p.Entry)

	var wires []*rtl.Signal
	for _, s := range poisoned.K.Signals() {
		if !s.IsReg() {
			wires = append(wires, s)
		}
	}
	if len(wires) == 0 {
		t.Fatal("design declares no wires")
	}

	rng := uint64(0x9e3779b97f4a7c15)
	garbage := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}

	const budget = 10_000_000
	for cyc := uint64(0); cyc < budget; cyc++ {
		if ref.Status() != iss.StatusRunning && poisoned.Status() != iss.StatusRunning {
			break
		}
		for _, s := range wires {
			s.Set(garbage())
		}
		ps := poisoned.StepCycle()
		rs := ref.StepCycle()
		if ps != rs {
			t.Fatalf("cycle %d: status diverged: poisoned %v, reference %v", cyc, ps, rs)
		}
		if cyc%512 == 511 && !poisoned.StateEquals(ref.Snapshot()) {
			t.Fatalf("cycle %d: committed state diverged under wire poisoning", cyc)
		}
	}

	if ref.Status() != iss.StatusExited {
		t.Fatalf("reference did not exit: %v", ref.Status())
	}
	if poisoned.Icount != ref.Icount {
		t.Errorf("icount diverged: poisoned %d, reference %d", poisoned.Icount, ref.Icount)
	}
	if d := poisoned.Bus.Trace.Divergence(&ref.Bus.Trace); d != -1 {
		t.Errorf("off-core traces diverge at write %d", d)
	}
	if !poisoned.StateEquals(ref.Snapshot()) {
		t.Error("final committed state diverged under wire poisoning")
	}
}
