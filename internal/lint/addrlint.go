package lint

import (
	"go/ast"
	"reflect"
	"strings"
)

// addrStruct pins one content-addressed (or canonically encoded)
// struct: where it lives, and the JSON field names its v1 schema shipped
// with. Fields with other JSON names are post-v1 by definition and must
// be omitempty, so a request or outcome that predates them marshals to
// the exact bytes it always did — old content addresses and recorded
// encodings stay stable by construction (DESIGN.md §9, §13).
type addrStruct struct {
	pathSuffix string
	typeName   string
	role       string
	v1         []string
}

// addrStructs is the registry of schema-frozen structs. Growing one of
// these structs is fine; changing what an existing request hashes to is
// not, and this table is what turns that rule into a build failure.
var addrStructs = []addrStruct{
	{
		pathSuffix: "internal/jobs", typeName: "Request",
		role: "the request sha256 content address",
		v1: []string{
			"workload", "iterations", "dataset", "target", "models", "nodes",
			"seed", "inject_at_cycle", "inject_at_fraction", "no_checkpoint",
		},
	},
	{
		pathSuffix: "internal/jobs", typeName: "ExperimentOutcome",
		role: "the canonical outcome encoding",
		v1:   []string{"node", "model", "unit", "outcome", "latency", "cycles"},
	},
	{
		pathSuffix: "internal/jobs", typeName: "Outcome",
		role: "the canonical outcome encoding",
		v1: []string{
			"request", "injections", "golden_cycles", "checkpointed", "pf",
			"pf_low", "pf_high", "failures", "max_latency_cycles", "outcomes",
			"pf_by_unit", "experiments",
		},
	},
	{
		pathSuffix: "core", typeName: "CampaignSpec",
		role: "the public campaign spec mirrored into jobs.Request",
		v1: []string{
			"target", "models", "nodes", "seed", "workers", "inject_at_cycle",
			"inject_at_fraction", "no_checkpoint",
		},
	},
}

// AddrAnalyzer (addrlint) enforces the content-address stability rule:
// every exported field of a registered struct must carry an explicit
// json tag (never "-" — every field of a hashed struct participates),
// the v1 field names must all still exist under their original
// spelling, and any field whose json name is not in the v1 set must be
// omitempty. Deleting the omitempty from a post-v1 field — which would
// silently remap every pre-existing content address — is a lint error,
// not a code-review hope.
var AddrAnalyzer = &Analyzer{
	Name: "addrlint",
	Tag:  "addr",
	Doc: "content-addressed structs (jobs.Request, jobs.Outcome, core.CampaignSpec):\n" +
		"every field json-tagged, v1 names intact, post-v1 fields omitempty",
	Run: runAddrlint,
}

func runAddrlint(pass *Pass) error {
	for i := range addrStructs {
		spec := &addrStructs[i]
		if !PathMatch(pass.Pkg.Path(), spec.pathSuffix) {
			continue
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok || ts.Name.Name != spec.typeName {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					addrlintStruct(pass, spec, ts, st)
				}
			}
		}
	}
	return nil
}

func addrlintStruct(pass *Pass, spec *addrStruct, ts *ast.TypeSpec, st *ast.StructType) {
	v1 := map[string]bool{}
	for _, name := range spec.v1 {
		v1[name] = true
	}
	seen := map[string]bool{}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "embedded field in %s (feeds %s) hides its encoding behind another type: spell the fields out with explicit json tags", spec.typeName, spec.role)
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				// encoding/json ignores unexported fields, so they cannot
				// perturb the encoding.
				continue
			}
			jsonName, opts, ok := jsonTag(field)
			if !ok || jsonName == "" {
				pass.Reportf(name.Pos(), "field %s.%s feeds %s but has no json name: encoding would fall back to the Go identifier, so a rename silently changes every content address — tag it explicitly", spec.typeName, name.Name, spec.role)
				continue
			}
			if jsonName == "-" {
				pass.Reportf(name.Pos(), "field %s.%s is excluded from %s with json:\"-\": every field of a hashed struct must participate in its encoding", spec.typeName, name.Name, spec.role)
				continue
			}
			if seen[jsonName] {
				pass.Reportf(name.Pos(), "duplicate json name %q in %s", jsonName, spec.typeName)
			}
			seen[jsonName] = true
			if !v1[jsonName] && !hasOpt(opts, "omitempty") {
				pass.Reportf(name.Pos(), "post-v1 field %s.%s (json %q) must be omitempty: without it every pre-existing request or outcome re-encodes with a new zero-valued field and its content address silently changes", spec.typeName, name.Name, jsonName)
			}
		}
	}
	for _, name := range spec.v1 {
		if !seen[name] {
			pass.Reportf(ts.Pos(), "v1 field %q of %s is gone: removing or renaming it changes the content address of every request that ever hashed it", name, spec.typeName)
		}
	}
}

// jsonTag extracts the json name and options from a struct field tag.
func jsonTag(field *ast.Field) (name string, opts []string, ok bool) {
	if field.Tag == nil {
		return "", nil, false
	}
	raw := strings.Trim(field.Tag.Value, "`")
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", nil, false
	}
	parts := strings.Split(tag, ",")
	return parts[0], parts[1:], true
}

func hasOpt(opts []string, want string) bool {
	for _, o := range opts {
		if o == want {
			return true
		}
	}
	return false
}
