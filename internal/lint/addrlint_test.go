package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestAddrlint pins the content-address analyzer: the jobs fixture
// carries a correctly tagged v1 Request plus one violation per rule
// (post-v1 without omitempty, untagged, json:"-", duplicate name,
// embedded field, hatched legacy field); the core fixture drops a v1
// field and must be flagged at the type declaration.
func TestAddrlint(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.AddrAnalyzer,
		"b/internal/jobs",
		"c/core",
	)
}
