package lint

import (
	"go/ast"
	"go/types"
)

// detCritical lists the determinism-critical packages (by import-path
// suffix): the packages whose code decides what a campaign computes.
// Everything a shard re-executes, a content address hashes, or an
// outcome encodes flows through them, so wall-clock reads, the global
// math/rand source, and order-sensitive map iteration are all bugs
// there unless a line-level audit says otherwise.
var detCritical = []string{
	"internal/fault",
	"internal/rtl",
	"internal/jobs",
	"internal/campaign",
}

// DetAnalyzer (detlint) enforces the repo's first determinism rule:
// inside the determinism-critical packages, results may depend only on
// the request. It reports
//
//   - calls to time.Now / time.Since — wall-clock values must never
//     reach result state (audited observability timing sites carry
//     //lint:allow det);
//   - calls to package-level math/rand functions — they draw from the
//     shared process-wide source; deterministic code seeds its own
//     rand.New(rand.NewSource(seed));
//   - range statements over maps whose bodies feed order-sensitive
//     sinks: appends to slices declared outside the loop, formatted
//     output (fmt.Print*/Fprint*), writer/hash writes, or channel
//     sends. Building another map, or accumulating commutatively into
//     scalars, is fine; so is collecting keys that are sorted later in
//     the same function.
var DetAnalyzer = &Analyzer{
	Name: "detlint",
	Tag:  "det",
	Doc: "forbid wall-clock reads, the global math/rand source, and order-sensitive\n" +
		"map iteration inside the determinism-critical packages\n" +
		"(internal/fault, internal/rtl, internal/jobs, internal/campaign)",
	Run: runDetlint,
}

// seededRandOK lists the math/rand package-level functions that do not
// touch the global source.
var seededRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetlint(pass *Pass) error {
	critical := false
	for _, suffix := range detCritical {
		if PathMatch(pass.Pkg.Path(), suffix) {
			critical = true
			break
		}
	}
	if !critical {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			detlintFunc(pass, fn)
		}
	}
	return nil
}

func detlintFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeFrom(pass.TypesInfo, x, "time", "Now", "Since"); ok {
				pass.Reportf(x.Pos(), "call to time.%s in determinism-critical package %s: wall-clock values must never influence campaign results (//lint:allow det for audited observability sites)", name, pass.Pkg.Name())
			}
			if f := calleeFunc(pass.TypesInfo, x); f != nil && f.Pkg() != nil &&
				(f.Pkg().Path() == "math/rand" || f.Pkg().Path() == "math/rand/v2") &&
				f.Type().(*types.Signature).Recv() == nil && !seededRandOK[f.Name()] {
				pass.Reportf(x.Pos(), "global math/rand.%s draws from the process-wide source: deterministic code must seed its own rand.New(rand.NewSource(seed))", f.Name())
			}
		case *ast.RangeStmt:
			detlintMapRange(pass, fn, x)
		}
		return true
	})
}

// detlintMapRange flags a range-over-map whose body feeds an
// order-sensitive sink.
func detlintMapRange(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass.TypesInfo, call.Fun, "append") || i >= len(x.Lhs) {
					continue
				}
				root := rootIdent(x.Lhs[i])
				if root == nil {
					continue
				}
				obj := objectOf(pass.TypesInfo, root)
				if obj == nil || obj.Pos() >= rs.Pos() {
					continue // loop-local accumulator: scoped to one iteration
				}
				if sortedInFunc(pass, fn, obj) {
					continue // collect-then-sort is the sanctioned idiom
				}
				pass.Reportf(x.Pos(), "map iteration appends to %q declared outside the loop: map order is nondeterministic, so the slice's element order varies run to run — iterate sorted keys instead (//lint:allow det if the order provably never reaches an encoded result)", root.Name)
			}
		case *ast.CallExpr:
			if f := calleeFunc(pass.TypesInfo, x); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				switch f.Name() {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					pass.Reportf(x.Pos(), "map iteration writes formatted output via fmt.%s: output order follows nondeterministic map order — iterate sorted keys instead", f.Name())
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					switch sel.Sel.Name {
					case "Write", "WriteString", "WriteByte", "WriteRune":
						pass.Reportf(x.Pos(), "map iteration streams bytes via %s: a writer or hash absorbs values in nondeterministic map order — iterate sorted keys instead", sel.Sel.Name)
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "map iteration sends on a channel: the receiver observes values in nondeterministic map order — iterate sorted keys instead")
		}
		return true
	})
}

// sortedInFunc reports whether the function contains a sort.* /
// slices.Sort* call whose first argument roots at obj — the signal
// that a slice appended under map iteration is order-normalized before
// use.
func sortedInFunc(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || len(call.Args) == 0 {
			return !sorted
		}
		f := calleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && objectOf(pass.TypesInfo, root) == obj {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
