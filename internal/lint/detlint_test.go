package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestDetlint pins the determinism analyzer against its fixtures: the
// critical-path package exercises every rule (clock reads, global
// math/rand, map-iteration sinks) plus both escape-hatch placements,
// and the non-critical package asserts the analyzer scopes itself to
// the determinism-critical paths.
func TestDetlint(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.DetAnalyzer,
		"a/internal/fault",
		"a/pkg/notcritical",
	)
}
