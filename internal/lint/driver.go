package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader turns `go list -export -deps -json` output into
// type-checked packages without golang.org/x/tools/go/packages: the
// toolchain compiles (or reuses from the build cache) export data for
// every dependency, stdlib included, and the stdlib gc importer reads
// those files back through a lookup function. Only the packages the
// patterns name are parsed from source — analyzers need their syntax —
// while everything they import comes from export data, which is both
// faster and immune to source-layout surprises. Test files are not
// loaded: the determinism rules police library code; tests measure
// wall-clocks and iterate maps freely.

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadedPackage is one source-parsed, type-checked package ready for
// analysis.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load resolves the go list patterns (e.g. "./...") to source-parsed,
// type-checked packages, importing all dependencies from compiler
// export data. Patterns resolve relative to dir ("" = cwd).
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			pkg := p
			targets = append(targets, &pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var loaded []*LoadedPackage
	for _, t := range targets {
		lp, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files ("unsafe" is built in). linttest
// shares it to resolve fixture imports of the standard library.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses the named files and type-checks them as one
// package, resolving imports through imp.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return CheckFiles(fset, imp, path, files)
}

// CheckFiles type-checks already-parsed files as the package at path.
// Type errors are hard errors: analysis over a broken package would
// under-report, which for a gating linter is worse than failing loud.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*LoadedPackage, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &LoadedPackage{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Main is the multichecker entry point behind cmd/reprolint: load the
// packages the patterns name, run every analyzer over every package,
// print findings, and return the process exit code (0 clean, 1
// findings, 2 driver failure).
func Main(w io.Writer, patterns []string, analyzers ...*Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load("", patterns)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	var all []Diagnostic
	for _, lp := range pkgs {
		for _, a := range analyzers {
			diags, err := RunAnalyzer(a, lp)
			if err != nil {
				fmt.Fprintln(w, err)
				return 2
			}
			all = append(all, diags...)
		}
	}
	sortDiagnostics(all)
	for _, d := range all {
		fmt.Fprintln(w, d)
	}
	if len(all) > 0 {
		fmt.Fprintf(w, "reprolint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}
