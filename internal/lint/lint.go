// Package lint is the repo's static-analysis suite: four custom
// analyzers (detlint, addrlint, obslint, seamlint) that mechanically
// enforce the invariants every speedup since the pooled engine rests
// on — determinism of campaign results, stability of request content
// addresses, nil-safety of the observability seam, and construction of
// engines only through the registry seams. cmd/reprolint is the
// multichecker binary that runs them; `make lint` and CI gate on it.
//
// The package deliberately mirrors the core of golang.org/x/tools/
// go/analysis — an Analyzer with a Run function over a Pass carrying
// the package's syntax and type information, reporting Diagnostics —
// but is built on the standard library alone (go/ast, go/types, and a
// `go list -export` loader in driver.go), because the repo's toolchain
// is hermetic: no module downloads. If the module ever grows an
// x/tools dependency, each Run function ports over unchanged.
//
// # Escape hatches
//
// Every analyzer honours a line-scoped allow comment,
//
//	//lint:allow <tag> <justification>
//
// on the flagged line or the line directly above it, where <tag> is
// the analyzer's Tag ("det", "addr", "obs", "seam"; comma-separate to
// allow several). The hatch is a comment, not configuration, on
// purpose: the justification lives in the diff next to the audited
// site, reviewers see hatch and reason together, and a hatch cannot
// silently widen to cover code it was never audited for — deleting
// the site deletes its exemption.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass: a named rule with a
// Run function that inspects a package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -help output.
	Name string
	// Doc is the one-paragraph description printed by reprolint -help.
	Doc string
	// Tag is the //lint:allow tag that exempts a line from this
	// analyzer.
	Tag string
	// Run inspects one package. Diagnostics go through Pass.Reportf;
	// a non-nil error aborts the whole reprolint run (driver failure,
	// not a lint finding).
	Run func(*Pass) error
}

// A Pass carries one type-checked package to an Analyzer's Run
// function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	// allow maps "file:line" to the set of analyzer tags exempted on
	// that line by //lint:allow comments.
	allow map[string]map[string]bool
}

// A Diagnostic is one lint finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless an //lint:allow comment
// for the analyzer's tag covers the line (or the line above — the
// conventional spot for a hatch with a written justification).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) allowedAt(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if tags := p.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]; tags[p.Analyzer.Tag] {
			return true
		}
	}
	return false
}

// PathMatch reports whether an import path is, or ends with, the given
// slash-separated suffix on a path-segment boundary. Analyzers scope
// themselves with it ("internal/fault" matches repro/internal/fault and
// a fixture's a/internal/fault, never a/notinternal/fault).
func PathMatch(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// allowComments scans a file for //lint:allow comments and records the
// exempted tags per line into the map keyed by "filename:line".
func allowComments(fset *token.FileSet, f *ast.File, into map[string]map[string]bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if into[key] == nil {
				into[key] = map[string]bool{}
			}
			for _, tag := range strings.Split(fields[0], ",") {
				if tag = strings.TrimSpace(tag); tag != "" {
					into[key][tag] = true
				}
			}
		}
	}
}

// RunAnalyzer executes one analyzer over one loaded package and
// returns its findings, already filtered through the //lint:allow
// escape hatches and sorted by position.
func RunAnalyzer(a *Analyzer, lp *LoadedPackage) ([]Diagnostic, error) {
	allow := map[string]map[string]bool{}
	for _, f := range lp.Files {
		allowComments(lp.Fset, f, allow)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      lp.Fset,
		Files:     lp.Files,
		Pkg:       lp.Pkg,
		TypesInfo: lp.Info,
		diags:     &diags,
		allow:     allow,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, lp.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// funcFor returns the *types.Func an expression's callee resolves to,
// or nil: the shared helper behind "is this a call to time.Now" style
// questions. It sees through parentheses but deliberately not through
// function-valued variables — assigning time.Now to a variable to dodge
// the linter is exactly the kind of obfuscation review should catch.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeFrom reports whether call invokes a function named name from a
// package whose import path matches pkgSuffix.
func calleeFrom(info *types.Info, call *ast.CallExpr, pkgSuffix string, names ...string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || !PathMatch(f.Pkg().Path(), pkgSuffix) {
		return "", false
	}
	for _, n := range names {
		if f.Name() == n {
			return n, true
		}
	}
	return "", false
}

// rootIdent returns the leftmost identifier of a (possibly selector /
// index) expression: out in out, out.Field, out[i].Field.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
