// Package linttest is the fixture harness for the repo's analyzers: the
// hermetic counterpart of golang.org/x/tools/go/analysis/analysistest.
// A test points it at testdata/src/<path> packages whose source carries
// `// want "regexp"` comments on the lines where diagnostics are
// expected; the harness type-checks the fixtures (fixture-local imports
// from testdata, everything else from the toolchain's export data), runs
// the analyzer, and fails the test on any unexpected or missing
// diagnostic. //lint:allow escape hatches are honoured exactly as in
// production, so fixtures also pin the hatch semantics.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return abs
}

// Run analyzes each fixture package under testdata/src/<pkgPath> with a
// and compares the diagnostics against the fixtures' // want comments.
// A package listed without any want comments asserts the analyzer stays
// silent on it.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		diags, err := lint.RunAnalyzer(a, lp)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		compare(t, path, wants(t, lp), diags)
	}
}

// loader type-checks fixture packages, resolving fixture-local imports
// recursively and everything else through compiler export data.
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*lint.LoadedPackage
	loading map[string]bool
	std     types.Importer
}

func newLoader(t *testing.T, src string) *loader {
	t.Helper()
	fset := token.NewFileSet()
	exports, err := stdExports(src)
	if err != nil {
		t.Fatalf("linttest: resolving stdlib export data: %v", err)
	}
	return &loader{
		src:     src,
		fset:    fset,
		pkgs:    map[string]*lint.LoadedPackage{},
		loading: map[string]bool{},
		std:     lint.ExportImporter(fset, exports),
	}
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp.Pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*lint.LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lp, err := lint.CheckFiles(l.fset, l, path, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = lp
	return lp, nil
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return names, nil
}

// stdExports maps every non-fixture import reachable from the fixture
// tree to its compiler export data file, via one `go list -export`
// invocation (which builds the export data if the cache is cold).
func stdExports(src string) (map[string]string, error) {
	external := map[string]bool{}
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if st, err := os.Stat(filepath.Join(src, filepath.FromSlash(p))); err != nil || !st.IsDir() {
				external[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(external) == 0 {
		return exports, nil
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	for p := range external {
		args = append(args, p)
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
			Error      *struct{ Err string }
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// want is one expected diagnostic: a position and the regexp its
// message must match.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wants extracts the `// want "re" ...` expectations from a fixture
// package's comments.
func wants(t *testing.T, lp *lint.LoadedPackage) []*want {
	t.Helper()
	var ws []*want
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := lp.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				n := 0
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
					n++
					rest = strings.TrimSpace(rest[len(q):])
				}
				if n == 0 {
					t.Fatalf("%s:%d: want comment with no patterns", pos.Filename, pos.Line)
				}
			}
		}
	}
	return ws
}

// compare reconciles diagnostics against expectations.
func compare(t *testing.T, pkg string, ws []*want, diags []lint.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range ws {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pkg, d)
		}
	}
	for _, w := range ws {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg, w.file, w.line, w.re)
		}
	}
}
