package lint

import (
	"go/ast"
	"go/types"
)

// ObsAnalyzer (obslint) polices the observability seam's two contracts
// inside internal/obs:
//
//  1. Nil-receiver safety. The whole design of the obs package is that
//     a nil *Registry hands out nil handles whose methods do nothing,
//     so the uninstrumented library path needs no conditionals and
//     stays byte-identical to the instrumented one. Every exported
//     pointer-receiver method on an exported type must therefore open
//     with a nil-receiver guard (if x == nil { ... return }) — or use
//     its receiver only to delegate to sibling methods, which are
//     themselves checked.
//
//  2. No clock on the no-op path. time.Now / time.Since may only be
//     called inside a method that already returned on the nil
//     receiver: an unregistered handle must never pay for (or observe)
//     a clock read. This is the package-local half of the engine-wide
//     rule; inside the engine packages detlint forbids the clock
//     outright and the live-guarded metric sites carry audited
//     //lint:allow det hatches.
var ObsAnalyzer = &Analyzer{
	Name: "obslint",
	Tag:  "obs",
	Doc: "internal/obs handle methods must be nil-receiver-safe, and the clock\n" +
		"(time.Now/Since) is reachable only behind a nil-receiver guard",
	Run: runObslint,
}

func runObslint(pass *Pass) error {
	if !PathMatch(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	// guarded collects the bodies of nil-guarded methods; the time rule
	// accepts clock reads only inside them (closures included — a
	// closure minted after the guard can only run on a live handle).
	guarded := map[*ast.FuncDecl]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			recv, recvType := pointerRecv(pass, fn)
			if recvType == nil || !recvType.Obj().Exported() {
				continue
			}
			if recv != nil && hasNilGuard(pass, fn.Body, recv) {
				guarded[fn] = true
				continue
			}
			if !fn.Name.IsExported() {
				continue
			}
			if recv == nil {
				// An unnamed pointer receiver cannot be dereferenced, so the
				// method is vacuously nil-safe.
				continue
			}
			if delegatesOnly(pass, fn.Body, recv) {
				continue
			}
			pass.Reportf(fn.Name.Pos(), "method (*%s).%s is not nil-receiver-safe: a nil handle is the documented no-op seam, so the method must open with an `if %s == nil` guard or only delegate to sibling methods (//lint:allow obs with justification otherwise)", recvType.Obj().Name(), fn.Name.Name, recv.Name())
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || guarded[fn] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := calleeFrom(pass.TypesInfo, call, "time", "Now", "Since"); ok {
					pass.Reportf(call.Pos(), "time.%s outside a nil-guarded handle method: the no-op observability path must never touch the clock — campaign results have to be byte-identical with and without a registry", name)
				}
				return true
			})
		}
	}
	return nil
}

// pointerRecv returns the receiver variable and the named type behind a
// pointer receiver, or nils.
func pointerRecv(pass *Pass, fn *ast.FuncDecl) (*types.Var, *types.Named) {
	if len(fn.Recv.List) != 1 {
		return nil, nil
	}
	field := fn.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return nil, nil
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return nil, nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil, nil
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return nil, named
	}
	v, _ := pass.TypesInfo.Defs[field.Names[0]].(*types.Var)
	return v, named
}

// hasNilGuard reports whether the body's first statement is an if whose
// condition checks recv == nil (possibly OR-ed with further checks, as
// in `if c == nil || c.s == nil`).
func hasNilGuard(pass *Pass, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) == 0 {
		return true // empty body is vacuously nil-safe
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	found := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		if be.Op.String() != "==" {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok || objectOf(pass.TypesInfo, id) != recv {
				continue
			}
			if nid, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && nid.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// delegatesOnly reports whether every use of recv in the body is as the
// receiver of a same-package method call (c.Add(1) inside Inc): such a
// method is nil-safe iff its delegates are, and the delegates are
// themselves under analysis.
func delegatesOnly(pass *Pass, body *ast.BlockStmt, recv *types.Var) bool {
	safe := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || objectOf(pass.TypesInfo, id) != recv {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		if f, ok := s.Obj().(*types.Func); ok && f.Pkg() == pass.Pkg {
			safe[id] = true
		}
		return true
	})
	delegates := true
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !delegates {
			return delegates
		}
		if objectOf(pass.TypesInfo, id) == recv && !safe[id] {
			delegates = false
		}
		return delegates
	})
	return delegates
}
