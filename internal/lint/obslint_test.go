package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestObslint pins the observability-seam analyzer: guarded methods,
// delegation-only methods and guarded clock reads pass; an unguarded
// dereference and a clock read outside any guard are flagged; the
// //lint:allow obs hatch is honoured.
func TestObslint(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.ObsAnalyzer,
		"d/internal/obs",
	)
}
