package lint

import (
	"go/ast"
	"go/types"
)

// SeamAnalyzer (seamlint) keeps campaign execution flowing through the
// engine registry seams. The memoized registries in internal/campaign
// (RunnerFor for the RTL engine, ISSRunnerFor for the ISS one) are
// where golden runs are shared, build concurrency is bounded, and the
// observability registry is stripped from the cache key; an engine
// constructed anywhere else silently re-simulates golden runs and
// fragments those guarantees. seamlint therefore reports, outside
// internal/fault itself and outside the registry functions:
//
//   - calls to fault.NewRunner / fault.NewISSRunner;
//   - composite literals fault.Runner{...} / fault.ISSRunner{...}
//     (and &T{...});
//   - new(fault.Runner) / new(fault.ISSRunner).
//
// Audited one-shot builds — engine ablation timing that must not hit
// the memoization cache, the synchronous one-shot core API — carry
// //lint:allow seam with their justification.
var SeamAnalyzer = &Analyzer{
	Name: "seamlint",
	Tag:  "seam",
	Doc: "fault engines are constructed only through the campaign registry seams\n" +
		"(campaign.RunnerFor / campaign.ISSRunnerFor)",
	Run: runSeamlint,
}

// seamEnginePkg is the package (by path suffix) whose constructors and
// types are fenced.
const seamEnginePkg = "internal/fault"

var seamConstructors = []string{"NewRunner", "NewISSRunner"}

var seamTypes = map[string]bool{"Runner": true, "ISSRunner": true}

// seamRegistry lists the functions allowed to construct engines
// directly: the memoized registries themselves.
var seamRegistry = []struct{ pathSuffix, funcName string }{
	{"internal/campaign", "RunnerFor"},
	{"internal/campaign", "ISSRunnerFor"},
}

func runSeamlint(pass *Pass) error {
	if PathMatch(pass.Pkg.Path(), seamEnginePkg) {
		return nil // the engine package builds its own internals freely
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if seamAllowedFunc(pass, fn) {
				continue
			}
			seamlintFunc(pass, fn)
		}
	}
	return nil
}

func seamAllowedFunc(pass *Pass, fn *ast.FuncDecl) bool {
	for _, reg := range seamRegistry {
		if fn.Name.Name == reg.funcName && PathMatch(pass.Pkg.Path(), reg.pathSuffix) {
			return true
		}
	}
	return false
}

func seamlintFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeFrom(pass.TypesInfo, x, seamEnginePkg, seamConstructors...); ok {
				pass.Reportf(x.Pos(), "direct fault.%s call bypasses the engine registry: golden runs stop being shared and build concurrency unbounded — route through campaign.RunnerFor / campaign.ISSRunnerFor (//lint:allow seam for audited one-shot builds)", name)
			}
			if isBuiltin(pass.TypesInfo, x.Fun, "new") && len(x.Args) == 1 {
				if name, ok := seamEngineType(pass, x.Args[0]); ok {
					pass.Reportf(x.Pos(), "new(fault.%s) constructs an engine outside the registry seam: a zero-valued engine has no golden run — route through campaign.RunnerFor / campaign.ISSRunnerFor", name)
				}
			}
		case *ast.CompositeLit:
			if name, ok := seamEngineType(pass, x.Type); ok {
				pass.Reportf(x.Pos(), "fault.%s composite literal constructs an engine outside the registry seam — route through campaign.RunnerFor / campaign.ISSRunnerFor", name)
			}
		}
		return true
	})
}

// seamEngineType reports whether the type expression names one of the
// fenced engine structs.
func seamEngineType(pass *Pass, expr ast.Expr) (string, bool) {
	if expr == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if !PathMatch(named.Obj().Pkg().Path(), seamEnginePkg) || !seamTypes[named.Obj().Name()] {
		return "", false
	}
	return named.Obj().Name(), true
}
