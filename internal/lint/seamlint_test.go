package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestSeamlint pins the engine-construction analyzer: every
// construction path in a consumer package is flagged (constructor
// call, composite literal, address-of literal, new), the registry
// functions in the campaign package are exempt while other functions
// there are not, and the engine package itself is out of scope.
func TestSeamlint(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), lint.SeamAnalyzer,
		"e/app",
		"e/internal/campaign",
		"e/internal/fault",
	)
}
