// Package fault is a detlint fixture: its import path ends in
// internal/fault, so it is determinism-critical.
package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Time {
	start := time.Now() // want `call to time\.Now`
	_ = start

	_ = time.Since(start) // want `call to time\.Since`

	_ = time.Unix(0, 0) // ok: converts a constant, reads no clock

	allowed := time.Now() //lint:allow det audited observability site
	return allowed
}

func hatchAbove() time.Time {
	//lint:allow det audited observability site, hatch on the line above
	return time.Now()
}

func randoms() int {
	r := rand.New(rand.NewSource(42)) // ok: explicitly seeded source
	n := r.Intn(10)

	n += rand.Intn(10) // want `global math/rand\.Intn`

	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle`

	return n
}

func mapAppends(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration appends to "out"`
	}

	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted before use below
	}
	sort.Strings(keys)

	var hatch []string
	for k := range m {
		hatch = append(hatch, k) //lint:allow det order never reaches an encoding
	}
	_ = hatch

	for k := range m {
		local := []string{}
		local = append(local, k) // ok: accumulator scoped to one iteration
		_ = local
	}
	return out
}

func mapSinks(m map[string]int, w *bytes.Buffer, ch chan string) (int, map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `writes formatted output via fmt\.Println`
	}

	for k := range m {
		w.WriteString(k) // want `streams bytes via WriteString`
	}

	for k := range m {
		ch <- k // want `sends on a channel`
	}

	total := 0
	for _, v := range m { // ok: commutative fold into a scalar
		total += v
	}

	inverse := map[int]string{}
	for k, v := range m { // ok: map-to-map rebuild, no order observed
		inverse[v] = k
	}
	return total, inverse
}
