// Package notcritical is a detlint negative fixture: its path is not
// determinism-critical, so the analyzer must stay silent even on
// patterns it would flag elsewhere.
package notcritical

import (
	"math/rand"
	"time"
)

func Timing(m map[string]int) ([]string, time.Time) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	_ = rand.Intn(10)
	return out, time.Now()
}
