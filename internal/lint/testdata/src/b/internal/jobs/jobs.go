// Package jobs is an addrlint fixture mirroring the real jobs.Request:
// the v1 fields are all present under their frozen names, and the
// violations exercise each rule.
package jobs

// Request mirrors the real content-addressed request schema.
type Request struct {
	Workload         string   `json:"workload"`
	Iterations       int      `json:"iterations,omitempty"`
	Dataset          int      `json:"dataset,omitempty"`
	Target           string   `json:"target"`
	Models           []string `json:"models"`
	Nodes            int      `json:"nodes,omitempty"`
	Seed             int64    `json:"seed,omitempty"`
	InjectAtCycle    uint64   `json:"inject_at_cycle,omitempty"`
	InjectAtFraction float64  `json:"inject_at_fraction,omitempty"`
	NoCheckpoint     bool     `json:"no_checkpoint,omitempty"`

	Epsilon float64 `json:"epsilon,omitempty"` // ok: post-v1 with omitempty

	Engine string `json:"engine"` // want `post-v1 field Request\.Engine \(json "engine"\) must be omitempty`

	Untagged int // want `has no json name`

	Excluded int `json:"-"` // want `excluded from`

	Dup1 string `json:"dup,omitempty"`
	Dup2 string `json:"dup,omitempty"` // want `duplicate json name "dup"`

	Mixin // want `embedded field`

	Legacy int `json:"legacy"` //lint:allow addr grandfathered audited field

	hidden int // ok: unexported fields never encode
}

// Mixin exists to exercise the embedded-field rule.
type Mixin struct {
	Inner int `json:"inner"`
}

func (r Request) use() int { return r.hidden }
