// Package core is an addrlint fixture for the v1-field-removal rule:
// CampaignSpec is missing the frozen "workers" field.
package core

type CampaignSpec struct { // want `v1 field "workers" of CampaignSpec is gone`
	Target           int     `json:"target"`
	Models           []int   `json:"models"`
	Nodes            int     `json:"nodes"`
	Seed             int64   `json:"seed"`
	InjectAtCycle    uint64  `json:"inject_at_cycle"`
	InjectAtFraction float64 `json:"inject_at_fraction"`
	NoCheckpoint     bool    `json:"no_checkpoint"`
	PulseCycles      uint64  `json:"pulse_cycles,omitempty"`
	NoBatch          bool    `json:"no_batch,omitempty"`
}
