// Package obs is an obslint fixture: handle types whose methods must
// be nil-receiver-safe, and clock reads that are only legal behind the
// nil guard.
package obs

import "time"

// Counter is a metric handle; a nil *Counter must be a usable no-op.
type Counter struct{ n int }

// Inc delegates to Add, which carries the guard: nil-safe by
// delegation.
func (c *Counter) Inc() { c.Add(1) }

// Add opens with the canonical compound guard.
func (c *Counter) Add(v int) {
	if c == nil || v < 0 {
		return
	}
	c.n += v
}

// Value dereferences the receiver with no guard.
func (c *Counter) Value() int { // want `\(\*Counter\)\.Value is not nil-receiver-safe`
	return c.n
}

// Timed reads the clock, legally: the nil receiver returned before the
// clock was touched, closures included.
func (c *Counter) Timed() func() float64 {
	if c == nil {
		return func() float64 { return 0 }
	}
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Audited carries the escape hatch instead of a guard.
func (c *Counter) Audited() int { //lint:allow obs only reachable from live registries
	return c.n
}

// reset is unexported: internal helpers run behind the public guards.
func (c *Counter) reset() { c.n = 0 }

// kind is unexported, so its methods are out of scope.
type kind int

func (k *kind) bump() { *k++ }

func clockOutsideGuard() time.Time {
	return time.Now() // want `time\.Now outside a nil-guarded handle method`
}
