// Package app is the seamlint fixture for code outside both the engine
// package and the registries: every construction path is a finding.
package app

import "e/internal/fault"

func builds() []interface{} {
	a := fault.NewRunner(7) // want `direct fault\.NewRunner call`

	b := fault.NewISSRunner(7) // want `direct fault\.NewISSRunner call`

	c := fault.Runner{} // want `fault\.Runner composite literal`

	d := &fault.ISSRunner{} // want `fault\.ISSRunner composite literal`

	e := new(fault.Runner) // want `new\(fault\.Runner\) constructs an engine`

	return []interface{}{a, b, c, d, e}
}

func audited() *fault.Runner {
	return fault.NewRunner(3) //lint:allow seam audited one-shot ablation build
}
