// Package campaign is the seamlint fixture's registry package: the
// registry functions themselves may construct engines, anything else
// may not.
package campaign

import "e/internal/fault"

// RunnerFor is a registry seam: direct construction is its job.
func RunnerFor(seed int64) *fault.Runner {
	return fault.NewRunner(seed)
}

// ISSRunnerFor is the ISS registry seam.
func ISSRunnerFor(seed int64) *fault.ISSRunner {
	return fault.NewISSRunner(seed)
}

func rogue(seed int64) *fault.Runner {
	return fault.NewRunner(seed) // want `direct fault\.NewRunner call`
}
