// Package fault is the seamlint fixture's engine package: the analyzer
// must stay silent here — the engine package builds its own internals.
package fault

// Runner is the fenced RTL engine type.
type Runner struct{ Golden int }

// ISSRunner is the fenced ISS engine type.
type ISSRunner struct{ Golden int }

func NewRunner(seed int64) *Runner { return &Runner{Golden: int(seed)} }

func NewISSRunner(seed int64) *ISSRunner { return &ISSRunner{Golden: int(seed)} }
