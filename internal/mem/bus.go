package mem

import "fmt"

// Access is one off-core bus access. For the failure comparator only write
// accesses matter ("any mismatch detected when writing to memory is
// considered a system failure", paper §4.1), but reads can be recorded for
// analysis.
type Access struct {
	Write bool
	Addr  uint32
	Size  uint8  // 1, 2 or 4 bytes
	Data  uint32 // written value (or value read)
	Seq   uint64 // instruction index (ISS) or cycle (RTL) of the access
}

func (a Access) String() string {
	k := "rd"
	if a.Write {
		k = "wr"
	}
	return fmt.Sprintf("%s%d [%08x] = %08x @%d", k, a.Size*8, a.Addr, a.Data, a.Seq)
}

// Trace is the off-core boundary signature of a run: the ordered sequence
// of writes plus the termination status.
type Trace struct {
	Writes   []Access
	Exited   bool
	ExitCode uint32
}

// Divergence compares t against a golden trace and returns the index of the
// first differing write, or -1 if t is a prefix-consistent match. A run
// that exited with a different code, or that produced fewer writes and then
// stopped, diverges at the end of the shorter sequence.
func (t *Trace) Divergence(golden *Trace) int {
	n := len(t.Writes)
	if len(golden.Writes) < n {
		n = len(golden.Writes)
	}
	for i := 0; i < n; i++ {
		a, b := t.Writes[i], golden.Writes[i]
		if a.Write != b.Write || a.Addr != b.Addr || a.Size != b.Size || a.Data != b.Data {
			return i
		}
	}
	if len(t.Writes) != len(golden.Writes) {
		return n
	}
	if t.Exited != golden.Exited || t.ExitCode != golden.ExitCode {
		return n
	}
	return -1
}

// Bus connects a processor model to memory and the I/O devices, recording
// the off-core access stream. Writes to ExitAddr terminate the program.
type Bus struct {
	Mem *Memory

	// RecordReads includes read accesses in Reads (writes are always
	// recorded in Trace).
	RecordReads bool
	Reads       []Access

	// OnWrite, when non-nil, observes every off-core write as it happens
	// (used by the fault-injection comparator for early mismatch exit).
	OnWrite func(Access)

	Trace Trace

	out []uint32 // values written to OutAddr
}

// NewBus returns a bus over m.
func NewBus(m *Memory) *Bus {
	return &Bus{Mem: m}
}

// Exited reports whether the program wrote ExitAddr.
func (b *Bus) Exited() bool { return b.Trace.Exited }

// ExitCode returns the value written to ExitAddr.
func (b *Bus) ExitCode() uint32 { return b.Trace.ExitCode }

// Out returns the values written to the output port.
func (b *Bus) Out() []uint32 { return b.out }

// Fetch32 reads an instruction word without recording an access (LEON3
// instruction fetches flow through the instruction cache; they are not part
// of the off-core write signature).
func (b *Bus) Fetch32(addr uint32) uint32 { return b.Mem.Read32(addr) }

// Read performs a data read of size bytes.
func (b *Bus) Read(addr uint32, size uint8, seq uint64) uint32 {
	var v uint32
	switch size {
	case 1:
		v = uint32(b.Mem.Read8(addr))
	case 2:
		v = uint32(b.Mem.Read16(addr))
	default:
		v = b.Mem.Read32(addr)
	}
	if b.RecordReads {
		b.Reads = append(b.Reads, Access{Addr: addr, Size: size, Data: v, Seq: seq})
	}
	return v
}

// Write performs a data write of size bytes, records it in the off-core
// trace and handles the I/O devices. The recorded data is truncated to the
// access size, matching what the bus lines carry.
func (b *Bus) Write(addr uint32, size uint8, v uint32, seq uint64) {
	switch size {
	case 1:
		v &= 0xff
	case 2:
		v &= 0xffff
	}
	switch size {
	case 1:
		b.Mem.Write8(addr, uint8(v))
	case 2:
		b.Mem.Write16(addr, uint16(v))
	default:
		b.Mem.Write32(addr, v)
	}
	acc := Access{Write: true, Addr: addr, Size: size, Data: v, Seq: seq}
	b.Trace.Writes = append(b.Trace.Writes, acc)
	if addr == ExitAddr {
		b.Trace.Exited = true
		b.Trace.ExitCode = v
	}
	if addr == OutAddr {
		b.out = append(b.out, v)
	}
	if b.OnWrite != nil {
		b.OnWrite(acc)
	}
}
