package mem

import (
	"sync"
	"testing"
)

func TestSnapshotForkIsolation(t *testing.T) {
	m := NewMemory()
	m.Write32(RAMBase, 0x11111111)
	m.Write32(RAMBase+pageSize, 0x22222222)
	img := m.Snapshot()

	// The parent keeps running; the image and its forks must not see it.
	m.Write32(RAMBase, 0xdeadbeef)

	a := img.Fork()
	b := img.Fork()
	if got := a.Read32(RAMBase); got != 0x11111111 {
		t.Fatalf("fork saw parent write: %08x", got)
	}

	// Forks never observe each other's writes.
	a.Write32(RAMBase, 0xaaaaaaaa)
	if got := b.Read32(RAMBase); got != 0x11111111 {
		t.Fatalf("fork b saw fork a's write: %08x", got)
	}
	if got := a.Read32(RAMBase + pageSize); got != 0x22222222 {
		t.Fatalf("untouched shared page corrupted: %08x", got)
	}

	// The parent still sees its own post-snapshot write.
	if got := m.Read32(RAMBase); got != 0xdeadbeef {
		t.Fatalf("parent lost post-snapshot write: %08x", got)
	}
}

func TestForkSubByteWritesCopyPage(t *testing.T) {
	m := NewMemory()
	m.Write32(RAMBase, 0x01020304)
	img := m.Snapshot()
	f := img.Fork()
	f.Write8(RAMBase+1, 0xee)
	if got := f.Read32(RAMBase); got != 0x01ee0304 {
		t.Fatalf("fork byte write = %08x", got)
	}
	if got := img.Fork().Read32(RAMBase); got != 0x01020304 {
		t.Fatalf("image mutated by fork: %08x", got)
	}
}

func TestCloneFlattensOverlay(t *testing.T) {
	m := NewMemory()
	m.Write32(RAMBase, 1)
	img := m.Snapshot()
	f := img.Fork()
	f.Write32(RAMBase+4, 2)
	c := f.Clone()
	if c.Read32(RAMBase) != 1 || c.Read32(RAMBase+4) != 2 {
		t.Fatal("clone lost a layer")
	}
	c.Write32(RAMBase, 9)
	if f.Read32(RAMBase) != 1 {
		t.Fatal("clone aliases the fork")
	}
}

func TestConcurrentForksRace(t *testing.T) {
	m := NewMemory()
	for i := uint32(0); i < 16; i++ {
		m.Write32(RAMBase+4*i, i)
	}
	img := m.Snapshot()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := img.Fork()
			for i := uint32(0); i < 16; i++ {
				got := f.Read32(RAMBase + 4*i)
				if got != i {
					t.Errorf("worker %d read %d, want %d", w, got, i)
					return
				}
				f.Write32(RAMBase+4*i, got+uint32(w))
			}
		}(w)
	}
	wg.Wait()
}
