// Package mem provides the memory subsystem shared by the instruction set
// simulator and the RTL processor model: a sparse big-endian memory, a
// system bus with memory-mapped I/O, and the off-core access trace that
// serves as the failure-manifestation boundary of the reproduced paper
// (the point where light-lockstep cores compare their outputs).
package mem

import "fmt"

// Memory map constants of the modeled system (LEON3-like).
const (
	RAMBase = 0x40000000 // program RAM
	IOBase  = 0x90000000 // memory-mapped I/O region

	// ExitAddr terminates the program when written; the stored word is the
	// exit code. OutAddr is the output port benchmarks write results to.
	ExitAddr = IOBase + 0x0
	OutAddr  = IOBase + 0x4
)

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, page-granular, big-endian 32-bit address space.
// A memory may sit as a copy-on-write overlay on top of a frozen Image
// (see Snapshot/Fork): reads fall through to the image, the first write
// to a shared page copies it into the overlay.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	base  map[uint32]*[pageSize]byte // frozen COW base; never written
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	if p := m.pages[pn]; p != nil {
		return p
	}
	bp := m.base[pn]
	if !create {
		return bp
	}
	p := new([pageSize]byte)
	if bp != nil {
		*p = *bp
	}
	m.pages[pn] = p
	return p
}

// Read8 reads one byte; unmapped memory reads as zero.
func (m *Memory) Read8(addr uint32) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read16 reads a big-endian halfword. addr must be 2-aligned.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr))<<8 | uint16(m.Read8(addr+1))
}

// Write16 writes a big-endian halfword.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, uint8(v>>8))
	m.Write8(addr+1, uint8(v))
}

// Read32 reads a big-endian word. addr must be 4-aligned.
func (m *Memory) Read32(addr uint32) uint32 {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return uint32(p[off])<<24 | uint32(p[off+1])<<16 | uint32(p[off+2])<<8 | uint32(p[off+3])
	}
	return uint32(m.Read16(addr))<<16 | uint32(m.Read16(addr+2))
}

// Write32 writes a big-endian word.
func (m *Memory) Write32(addr uint32, v uint32) {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := m.page(addr, true)
		p[off] = uint8(v >> 24)
		p[off+1] = uint8(v >> 16)
		p[off+2] = uint8(v >> 8)
		p[off+3] = uint8(v)
		return
	}
	m.Write16(addr, uint16(v>>16))
	m.Write16(addr+2, uint16(v))
}

// LoadImage copies a big-endian image to base, one page-sized chunk at a
// time (a byte-wise load would pay a page lookup per byte).
func (m *Memory) LoadImage(base uint32, image []byte) {
	for len(image) > 0 {
		p := m.page(base, true)
		n := copy(p[base&(pageSize-1):], image)
		image = image[n:]
		base += uint32(n)
	}
}

// Clone returns a deep copy of the memory (used to restore pristine state
// between fault-injection runs without re-assembling the workload).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for _, layer := range []map[uint32]*[pageSize]byte{m.base, m.pages} {
		for pn, p := range layer {
			cp := new([pageSize]byte)
			*cp = *p
			c.pages[pn] = cp
		}
	}
	return c
}

// Image is a frozen page set produced by Snapshot. It backs any number of
// copy-on-write forks; the pages themselves are never written again, so
// concurrent forks may read them without synchronization.
type Image struct {
	pages map[uint32]*[pageSize]byte
}

// Snapshot freezes the memory's current contents into an Image and turns m
// itself into a copy-on-write overlay over it, so the snapshotted state
// stays intact even if m keeps executing. The operation is O(pages), not
// O(bytes): no page data is copied.
func (m *Memory) Snapshot() *Image {
	flat := make(map[uint32]*[pageSize]byte, len(m.base)+len(m.pages))
	for pn, p := range m.base {
		flat[pn] = p
	}
	for pn, p := range m.pages {
		flat[pn] = p
	}
	m.base = flat
	m.pages = make(map[uint32]*[pageSize]byte)
	return &Image{pages: flat}
}

// Fork returns an independent Memory whose initial contents are the image.
// Pages are shared copy-on-write, so a fork is O(1) and forks never observe
// each other's writes. This is what lets a fault-injection campaign branch
// thousands of experiments off one golden-run checkpoint.
func (img *Image) Fork() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte), base: img.pages}
}

// Pages returns the number of frozen pages in the image.
func (img *Image) Pages() int { return len(img.pages) }

// String summarizes the mapped pages.
func (m *Memory) String() string {
	private := len(m.pages)
	shared := 0
	for pn := range m.base {
		if _, own := m.pages[pn]; !own {
			shared++
		}
	}
	if shared > 0 {
		return fmt.Sprintf("mem{%d pages, %d shared}", private+shared, shared)
	}
	return fmt.Sprintf("mem{%d pages}", private)
}
