package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteWidths(t *testing.T) {
	m := NewMemory()
	m.Write32(0x40000000, 0x11223344)
	if got := m.Read32(0x40000000); got != 0x11223344 {
		t.Fatalf("read32 = %#x", got)
	}
	// Big-endian byte order.
	if got := m.Read8(0x40000000); got != 0x11 {
		t.Errorf("byte0 = %#x, want 0x11", got)
	}
	if got := m.Read8(0x40000003); got != 0x44 {
		t.Errorf("byte3 = %#x, want 0x44", got)
	}
	if got := m.Read16(0x40000002); got != 0x3344 {
		t.Errorf("half = %#x, want 0x3344", got)
	}
	m.Write16(0x40000000, 0xaabb)
	if got := m.Read32(0x40000000); got != 0xaabb3344 {
		t.Errorf("after write16 = %#x", got)
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	if m.Read32(0x12345678&^3) != 0 || m.Read8(0) != 0 {
		t.Error("unmapped memory must read as zero")
	}
}

func TestMemoryPageBoundary(t *testing.T) {
	m := NewMemory()
	addr := uint32(0x40000ffe) // crosses the 4 KiB page boundary
	m.Write32(addr&^1, 0xdeadbeef)
	if got := m.Read32(addr &^ 1); got != 0xdeadbeef {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		addr &^= 3
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLoadImageAndClone(t *testing.T) {
	m := NewMemory()
	m.LoadImage(0x40000000, []byte{1, 2, 3, 4, 5})
	c := m.Clone()
	m.Write8(0x40000000, 0xff)
	if c.Read8(0x40000000) != 1 {
		t.Error("clone not independent")
	}
	if c.Read8(0x40000004) != 5 {
		t.Error("clone missing data")
	}
}

func TestBusTraceRecordsWrites(t *testing.T) {
	b := NewBus(NewMemory())
	b.Write(0x40000010, 4, 0xcafe, 7)
	b.Write(0x40000014, 2, 0x1234, 8)
	if len(b.Trace.Writes) != 2 {
		t.Fatalf("writes = %d", len(b.Trace.Writes))
	}
	w := b.Trace.Writes[0]
	if !w.Write || w.Addr != 0x40000010 || w.Size != 4 || w.Data != 0xcafe || w.Seq != 7 {
		t.Errorf("write0 = %v", w)
	}
	if b.Mem.Read16(0x40000014) != 0x1234 {
		t.Error("bus write did not reach memory")
	}
}

func TestBusExitDevice(t *testing.T) {
	b := NewBus(NewMemory())
	if b.Exited() {
		t.Fatal("exited before any write")
	}
	b.Write(ExitAddr, 4, 42, 0)
	if !b.Exited() || b.ExitCode() != 42 {
		t.Errorf("exit state = %v code %d", b.Exited(), b.ExitCode())
	}
}

func TestBusOutPort(t *testing.T) {
	b := NewBus(NewMemory())
	b.Write(OutAddr, 4, 1, 0)
	b.Write(OutAddr, 4, 2, 1)
	if got := b.Out(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("out = %v", got)
	}
}

func TestBusReadRecording(t *testing.T) {
	b := NewBus(NewMemory())
	b.Mem.Write32(0x40000000, 9)
	b.Read(0x40000000, 4, 0)
	if len(b.Reads) != 0 {
		t.Error("reads recorded without RecordReads")
	}
	b.RecordReads = true
	if v := b.Read(0x40000000, 4, 1); v != 9 {
		t.Errorf("read = %d", v)
	}
	if len(b.Reads) != 1 || b.Reads[0].Data != 9 {
		t.Errorf("reads = %v", b.Reads)
	}
}

func TestBusOnWriteHook(t *testing.T) {
	b := NewBus(NewMemory())
	var seen []Access
	b.OnWrite = func(a Access) { seen = append(seen, a) }
	b.Write(0x40000000, 4, 5, 0)
	if len(seen) != 1 || seen[0].Data != 5 {
		t.Errorf("hook saw %v", seen)
	}
}

func TestTraceDivergence(t *testing.T) {
	mk := func(vals ...uint32) *Trace {
		tr := &Trace{Exited: true}
		for i, v := range vals {
			tr.Writes = append(tr.Writes, Access{Write: true, Addr: 0x40000000 + uint32(4*i), Size: 4, Data: v})
		}
		return tr
	}
	g := mk(1, 2, 3)
	if d := mk(1, 2, 3).Divergence(g); d != -1 {
		t.Errorf("identical traces diverge at %d", d)
	}
	if d := mk(1, 9, 3).Divergence(g); d != 1 {
		t.Errorf("data mismatch at %d, want 1", d)
	}
	if d := mk(1, 2).Divergence(g); d != 2 {
		t.Errorf("short trace diverges at %d, want 2", d)
	}
	if d := mk(1, 2, 3, 4).Divergence(g); d != 3 {
		t.Errorf("long trace diverges at %d, want 3", d)
	}
	// Same writes, different exit state.
	h := mk(1, 2, 3)
	h.Exited = false
	if d := h.Divergence(g); d != 3 {
		t.Errorf("exit mismatch diverges at %d, want 3", d)
	}
	// Address mismatch.
	bad := mk(1, 2, 3)
	bad.Writes[0].Addr = 0x50000000
	if d := bad.Divergence(g); d != 0 {
		t.Errorf("addr mismatch at %d, want 0", d)
	}
}
