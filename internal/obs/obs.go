// Package obs is the service's dependency-free observability kit: a
// metrics registry (counters, gauges, histograms, with optional labels)
// that renders the Prometheus text exposition format, plus a per-campaign
// stage-timing tracer (trace.go) that rides a context through the
// executor seam.
//
// The design constraint that shapes everything here is the no-op default:
// every constructor and every metric handle is safe to call on a nil
// receiver. A nil *Registry hands out nil *Counter/*Gauge/*Histogram
// handles whose methods do nothing, so instrumented code paths read
// identically whether or not a registry is wired in — and the library
// path (faultcampaign, the equivalence suites) runs with no registry at
// all, keeping campaign outcomes and content addresses byte-identical to
// the uninstrumented build. Metrics are observation, never input: nothing
// read from a registry may feed back into experiment planning, ordering,
// or encoding.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the three families the registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DurationBuckets is the default histogram bucket layout for latencies in
// seconds: sub-millisecond engine stages through multi-minute campaigns.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// family is one named metric: its metadata plus every labelled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	mu      sync.Mutex
	series  map[string]*series
	order   []*series      // insertion order; sorted at render time
	fn      func() float64 // callback metric (CounterFunc/GaugeFunc); nil otherwise
	buckets []float64      // histogram upper bounds, sorted, +Inf implicit
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string

	valBits atomic.Uint64 // counter/gauge value as float64 bits

	// Histogram state, guarded by hmu.
	hmu    sync.Mutex
	counts []uint64 // per-bucket (non-cumulative) observation counts
	sum    float64
	count  uint64
}

func (s *series) addFloat(v float64) {
	for {
		old := s.valBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if s.valBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Registry holds metric families and renders them. The zero value is not
// useful — use NewRegistry — but a nil *Registry is: every method on it
// returns a no-op handle, which is the seam that keeps instrumentation
// out of the library path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// getOrCreate returns the family registered under name, creating it if
// absent. Re-registering an existing name with the same kind returns the
// existing family (instrumented components may share a registry and race
// to register); a kind mismatch is a programming error and panics.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with %d labels, was %d", name, len(labels), len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, series: map[string]*series{}}
	if kind == kindHistogram {
		f.buckets = normalizeBuckets(buckets)
	}
	r.families[name] = f
	return f
}

// normalizeBuckets sorts, dedupes, and strips non-finite bounds (+Inf is
// always implicit).
func normalizeBuckets(buckets []float64) []float64 {
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

const seriesKeySep = "\xff"

// seriesFor returns the series for the given label values, creating it on
// first use.
func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.counts = make([]uint64, len(f.buckets)+1) // +1 for the +Inf bucket
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter is a monotonically increasing value. All methods are no-ops on
// a nil receiver.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	c.s.addFloat(v)
}

// Gauge is a value that can go up and down. All methods are no-ops on a
// nil receiver.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.valBits.Store(math.Float64bits(v))
}

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.addFloat(v)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Histogram counts observations into cumulative buckets. Observe is a
// no-op on a nil receiver.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	idx := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.s.hmu.Lock()
	h.s.counts[idx]++
	h.s.sum += v
	h.s.count++
	h.s.hmu.Unlock()
}

// CounterVec is a counter family with labels. With is nil-safe.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{s: v.f.seriesFor(values)}
}

// GaugeVec is a gauge family with labels. With is nil-safe.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return &Gauge{s: v.f.seriesFor(values)}
}

// HistogramVec is a histogram family with labels. With is nil-safe.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{f: v.f, s: v.f.seriesFor(values)}
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getOrCreate(name, help, kindCounter, nil, nil)
	return &Counter{s: f.seriesFor(nil)}
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getOrCreate(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getOrCreate(name, help, kindGauge, nil, nil)
	return &Gauge{s: f.seriesFor(nil)}
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getOrCreate(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or returns) an unlabelled histogram with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getOrCreate(name, help, kindHistogram, nil, buckets)
	return &Histogram{f: f, s: f.seriesFor(nil)}
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getOrCreate(name, help, kindHistogram, labels, buckets)}
}

// GaugeFunc registers a gauge whose value is computed by f at scrape
// time — the fit for values that already live behind a component's own
// lock (queue depth, journal size). Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	fam := r.getOrCreate(name, help, kindGauge, nil, nil)
	fam.mu.Lock()
	fam.fn = f
	fam.mu.Unlock()
}

// CounterFunc registers a counter whose value is read by f at scrape
// time. The caller guarantees monotonicity. Re-registering replaces the
// callback.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	if r == nil {
		return
	}
	fam := r.getOrCreate(name, help, kindCounter, nil, nil)
	fam.mu.Lock()
	fam.fn = f
	fam.mu.Unlock()
}

// WriteText renders every family in the Prometheus text exposition
// format: families sorted by name, series sorted by label values,
// histograms as cumulative _bucket/_sum/_count triplets.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	fn := f.fn
	series := make([]*series, len(f.order))
	copy(series, f.order)
	f.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	if fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return err
	}
	sort.Slice(series, func(i, j int) bool {
		return lessStrings(series[i].labelValues, series[j].labelValues)
	})
	for _, s := range series {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s *series) error {
	base := formatLabels(f.labels, s.labelValues, "", "")
	switch f.kind {
	case kindCounter, kindGauge:
		v := math.Float64frombits(s.valBits.Load())
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatFloat(v))
		return err
	case kindHistogram:
		s.hmu.Lock()
		counts := append([]uint64(nil), s.counts...)
		sum, count := s.sum, s.count
		s.hmu.Unlock()
		var cum uint64
		for i, bound := range f.buckets {
			cum += counts[i]
			le := formatLabels(f.labels, s.labelValues, "le", formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		cum += counts[len(f.buckets)]
		le := formatLabels(f.labels, s.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, count)
		return err
	}
	return nil
}

// formatLabels renders {k1="v1",...} with values escaped, appending the
// extra pair (the histogram le label) when extraKey is non-empty. Returns
// "" when there are no labels at all.
func formatLabels(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Handler serves the registry in the text exposition format. Safe on a
// nil receiver (serves an empty, valid exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
