package obs

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp pins the seam the whole design rests on: a nil
// registry (the library path) hands out handles whose every method is
// safe and does nothing.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c", "h").Inc()
	r.Counter("c", "h").Add(3)
	r.Gauge("g", "h").Set(1)
	r.Gauge("g", "h").Add(-1)
	r.Gauge("g", "h").Inc()
	r.Gauge("g", "h").Dec()
	r.Histogram("hist", "h", DurationBuckets).Observe(0.5)
	r.CounterVec("cv", "h", "a").With("x").Inc()
	r.GaugeVec("gv", "h", "a").With("x").Set(2)
	r.HistogramVec("hv", "h", DurationBuckets, "a").With("x").Observe(1)
	r.GaugeFunc("gf", "h", func() float64 { return 1 })
	r.CounterFunc("cf", "h", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q, want empty", sb.String())
	}
	var tr *Tracer
	tr.Stage("x")()
	if tr.Spans() != nil {
		t.Fatal("nil tracer returned spans")
	}
}

// TestLabelEscaping covers the three characters the exposition format
// requires escaping in label values: backslash, double quote, newline.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("evil", "help", "path").With(`a\b"c` + "\nd").Inc()
	out := render(t, r)
	want := `evil{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series line missing:\nwant substring %q\ngot:\n%s", want, out)
	}
}

// TestDeterministicOrdering: families render sorted by name and series
// sorted by label values, independent of registration or touch order.
func TestDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("zeta", "z", "route", "code")
	v.With("/b", "500").Inc()
	v.With("/a", "200").Inc()
	v.With("/a", "404").Inc()
	r.Counter("alpha", "a").Inc()
	out := render(t, r)
	idx := func(sub string) int {
		i := strings.Index(out, sub)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", sub, out)
		}
		return i
	}
	if !(idx("# HELP alpha") < idx("# HELP zeta")) {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	a200 := idx(`zeta{route="/a",code="200"} 1`)
	a404 := idx(`zeta{route="/a",code="404"} 1`)
	b500 := idx(`zeta{route="/b",code="500"} 1`)
	if !(a200 < a404 && a404 < b500) {
		t.Fatalf("series not sorted by label values:\n%s", out)
	}
	// Re-render must be byte-identical: ordering is deterministic, not
	// merely sorted-this-time.
	if again := render(t, r); again != out {
		t.Fatalf("re-render differs:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

// TestHistogramCumulativeBuckets: bucket counts are cumulative, the +Inf
// bucket equals _count, and _sum is the sum of observations.
func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.9, 2.5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="0.5"} 3`,
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Sum: 0.05+0.05+0.3+0.9+2.5 = 3.8 (watch float formatting).
	if !strings.Contains(out, "lat_sum 3.8") {
		t.Errorf("missing lat_sum 3.8 in:\n%s", out)
	}
}

// TestHistogramBoundaryInclusive: an observation equal to a bucket bound
// lands in that bucket (le is <=).
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "h", []float64{1, 2})
	h.Observe(1)
	out := render(t, r)
	if !strings.Contains(out, `b_bucket{le="1"} 1`+"\n") {
		t.Fatalf("observation at bound not counted le-inclusively:\n%s", out)
	}
}

// TestGoldenOutput locks the full exposition byte-for-byte so the format
// cannot drift: HELP/TYPE lines, label rendering, histogram triplets,
// callback metrics, float formatting.
func TestGoldenOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("exp_total", "Experiments executed.").Add(240)
	g := r.Gauge("queue_depth", "Jobs queued.")
	g.Set(3)
	g.Dec()
	r.GaugeFunc("journal_bytes", "Journal size.", func() float64 { return 4096 })
	hv := r.HistogramVec("stage_seconds", "Stage timing.", []float64{0.5, 1}, "stage")
	hv.With("golden").Observe(0.25)
	hv.With("execute").Observe(0.75)
	hv.With("execute").Observe(4)
	cv := r.CounterVec("http_requests_total", "Requests.", "route", "code")
	cv.With("/metrics", "200").Add(2)

	const want = `# HELP exp_total Experiments executed.
# TYPE exp_total counter
exp_total 240
# HELP http_requests_total Requests.
# TYPE http_requests_total counter
http_requests_total{route="/metrics",code="200"} 2
# HELP journal_bytes Journal size.
# TYPE journal_bytes gauge
journal_bytes 4096
# HELP queue_depth Jobs queued.
# TYPE queue_depth gauge
queue_depth 2
# HELP stage_seconds Stage timing.
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="execute",le="0.5"} 0
stage_seconds_bucket{stage="execute",le="1"} 1
stage_seconds_bucket{stage="execute",le="+Inf"} 2
stage_seconds_sum{stage="execute"} 4.75
stage_seconds_count{stage="execute"} 2
stage_seconds_bucket{stage="golden",le="0.5"} 1
stage_seconds_bucket{stage="golden",le="1"} 1
stage_seconds_bucket{stage="golden",le="+Inf"} 1
stage_seconds_sum{stage="golden"} 0.25
stage_seconds_count{stage="golden"} 1
`
	if got := render(t, r); got != want {
		t.Fatalf("golden mismatch:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestCounterMonotone: negative Add is ignored.
func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	c.Add(5)
	c.Add(-3)
	if out := render(t, r); !strings.Contains(out, "c 5\n") {
		t.Fatalf("counter not monotone:\n%s", out)
	}
}

// TestReRegistrationShares: registering the same name twice yields the
// same underlying series — NewRunner calls during a process's lifetime
// must accumulate into one counter, not shadow each other.
func TestReRegistrationShares(t *testing.T) {
	r := NewRegistry()
	r.Counter("shared", "h").Inc()
	r.Counter("shared", "h").Inc()
	if out := render(t, r); !strings.Contains(out, "shared 2\n") {
		t.Fatalf("re-registration did not share series:\n%s", out)
	}
}

// TestSpecialFloats: +Inf bounds are dropped from explicit buckets (it is
// implicit) and special values render in canonical exposition spelling.
func TestSpecialFloats(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "h", []float64{1, math.Inf(1)}).Observe(0.5)
	r.Gauge("inf", "h").Set(math.Inf(1))
	out := render(t, r)
	if strings.Count(out, `h_bucket{le="+Inf"}`) != 1 {
		t.Fatalf("+Inf bucket should appear exactly once:\n%s", out)
	}
	if !strings.Contains(out, "inf +Inf\n") {
		t.Fatalf("+Inf gauge misrendered:\n%s", out)
	}
}

// TestHandler: the HTTP handler serves the exposition with the versioned
// text content type, and a nil registry serves a valid empty body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c 1\n") {
		t.Fatalf("handler body:\n%s", rec.Body.String())
	}
	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry handler: code %d body %q", rec.Code, rec.Body.String())
	}
}

// TestConcurrentUpdates exercises the registry under the race detector:
// concurrent Inc/Observe/With/render must be safe and lose no updates.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "h")
	hv := r.HistogramVec("d", "h", []float64{1}, "lane")
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := string(rune('a' + w%4))
			for i := 0; i < each; i++ {
				c.Inc()
				hv.With(lane).Observe(0.5)
				if i%100 == 0 {
					var sb strings.Builder
					r.WriteText(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if out := render(t, r); !strings.Contains(out, "n 4000\n") {
		t.Fatalf("lost counter updates:\n%s", out)
	}
}

// TestTracer: stages record spans, feed the stage histogram, and stop
// functions are idempotent; the context round-trip preserves the tracer.
func TestTracer(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("stage_seconds", "h", DurationBuckets, "stage")
	tr := NewTracer(hv)
	stop := tr.Stage("golden")
	stop()
	stop() // idempotent: must not double-record
	tr.Stage("execute")()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != "golden" || spans[1].Stage != "execute" {
		t.Fatalf("spans %+v", spans)
	}
	out := render(t, r)
	if !strings.Contains(out, `stage_seconds_count{stage="golden"} 1`+"\n") {
		t.Fatalf("golden stage not observed exactly once:\n%s", out)
	}
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("tracer lost in context round-trip")
	}
	if TracerFrom(context.Background()) != nil {
		t.Fatal("tracer conjured from empty context")
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}
