package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer times the named stages of one campaign execution (golden-model
// build, experiment planning, engine execution, outcome assembly). It is
// carried through the jobs executor seam on a context — the Executor
// function signature predates observability and stays unchanged — and
// feeds a per-stage histogram when one is attached. A nil *Tracer is a
// valid no-op, so engine code calls Stage unconditionally.
type Tracer struct {
	hist *HistogramVec // stage-seconds histogram, labelled by stage; may be nil

	mu    sync.Mutex
	spans []Span
}

// Span is one completed stage timing.
type Span struct {
	Stage   string
	Seconds float64
}

// NewTracer returns a tracer that records spans and, when hist is
// non-nil, observes each stage's duration into hist.With(stage).
func NewTracer(hist *HistogramVec) *Tracer {
	return &Tracer{hist: hist}
}

// Stage starts timing the named stage and returns the function that stops
// it. The stop function is idempotent. Safe on a nil receiver.
func (t *Tracer) Stage(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			secs := time.Since(start).Seconds()
			t.mu.Lock()
			t.spans = append(t.spans, Span{Stage: name, Seconds: secs})
			t.mu.Unlock()
			t.hist.With(name).Observe(secs)
		})
	}
}

// Spans returns the completed stage timings in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type tracerCtxKey struct{}

// WithTracer attaches t to the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil — which is itself
// a usable no-op tracer.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}
