// Package report renders the evaluation artifacts (tables and figure data
// series) as aligned text, the way the benchmark harness prints them.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Percent formats a probability as a percentage.
func Percent(p float64) string { return fmt.Sprintf("%.1f%%", 100*p) }

// Bars renders a labeled horizontal bar chart of probabilities, a crude
// textual stand-in for the paper's bar figures.
func Bars(title string, labels []string, values []float64, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := 0
	for _, l := range labels {
		if len(l) > w {
			w = len(l)
		}
	}
	for i, l := range labels {
		n := int(values[i] * scale)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s | %-40s %s\n", w, l, strings.Repeat("#", n), Percent(values[i]))
	}
	return b.String()
}
