package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 123456)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+1 { // title + header + separator + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines share the same column start for the second field.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		cell := strings.TrimLeft(l[idx:], " ")
		if cell == "" {
			t.Errorf("misaligned row %q", l)
		}
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tab := &Table{Columns: []string{"x"}}
	tab.AddRow(0.123456)
	if tab.Rows[0][0] != "0.1235" {
		t.Errorf("float cell = %q", tab.Rows[0][0])
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.3141) != "31.4%" {
		t.Errorf("got %q", Percent(0.3141))
	}
}

func TestBars(t *testing.T) {
	out := Bars("title", []string{"aa", "b"}, []float64{0.5, 0.25}, 20)
	if !strings.Contains(out, "title") || !strings.Contains(out, "50.0%") {
		t.Errorf("bars output:\n%s", out)
	}
	// Bar lengths proportional to values.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") != 10 || strings.Count(lines[2], "#") != 5 {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
}
