package rtl

import "fmt"

// This file extends the kernel beyond the paper's permanent-fault scope
// with the two mechanisms its §5 discusses: transient single-event upsets
// (the paper's declared future work) and saboteur-style multi-point
// faults — bridges between two nets — which the paper attributes to the
// more intrusive instrumentation technique of Baraza et al.

// FlipBit inverts the present value of a node once (a single-event upset).
// In a pipeline register the flip naturally lasts until the register is
// rewritten — one cycle for flow-through state, indefinitely for
// quasi-static state — exactly the behavior of a real SEU.
func (k *Kernel) FlipBit(n Node) error {
	bit := uint64(1) << n.Bit
	for _, s := range k.signals {
		if s.name != n.Name {
			continue
		}
		if n.Bit >= s.width || n.Word != 0 {
			return fmt.Errorf("rtl: flip %v out of range", n)
		}
		*s.curp ^= bit
		return nil
	}
	for _, a := range k.arrays {
		if a.name != n.Name {
			continue
		}
		if n.Bit >= a.width || n.Word < 0 || n.Word >= len(a.data) {
			return fmt.Errorf("rtl: flip %v out of range", n)
		}
		a.data[n.Word] ^= bit
		return nil
	}
	return fmt.Errorf("rtl: unknown node %v", n)
}

// BridgeKind selects the resolution function of a bridging fault.
type BridgeKind uint8

// Bridging fault resolution functions.
const (
	// WiredAND drives both nets with the AND of their drivers (dominant
	// low short).
	WiredAND BridgeKind = iota
	// WiredOR drives both nets with the OR of their drivers (dominant
	// high short).
	WiredOR
)

func (b BridgeKind) String() string {
	if b == WiredOR {
		return "wired-or"
	}
	return "wired-and"
}

// bridge links one bit of a signal to one bit of another signal.
type bridge struct {
	other    *Signal
	selfBit  int
	otherBit int
	kind     BridgeKind
}

// InjectBridge shorts bit a.Bit of signal a to bit b.Bit of signal b.
// Both nets subsequently read the resolved value. Only signal nodes (not
// memory-array cells) can be bridged.
func (k *Kernel) InjectBridge(a, b Node, kind BridgeKind) error {
	sa := k.findSignal(a.Name)
	sb := k.findSignal(b.Name)
	if sa == nil || sb == nil {
		return fmt.Errorf("rtl: bridge needs two signal nodes (%v, %v)", a, b)
	}
	if a.Bit >= sa.width || b.Bit >= sb.width {
		return fmt.Errorf("rtl: bridge bit out of range (%v, %v)", a, b)
	}
	if sa == sb && a.Bit == b.Bit {
		return fmt.Errorf("rtl: cannot bridge a bit to itself")
	}
	if sa.bridges == nil {
		k.bSigs = append(k.bSigs, sa)
	}
	if sb.bridges == nil && sb != sa {
		k.bSigs = append(k.bSigs, sb)
	}
	sa.bridges = append(sa.bridges, bridge{other: sb, selfBit: a.Bit, otherBit: b.Bit, kind: kind})
	sb.bridges = append(sb.bridges, bridge{other: sa, selfBit: b.Bit, otherBit: a.Bit, kind: kind})
	sa.updateSlow()
	sb.updateSlow()
	k.dirty = true
	return nil
}

func (k *Kernel) findSignal(name string) *Signal {
	for _, s := range k.signals {
		if s.name == name {
			return s
		}
	}
	return nil
}

// applyBridges resolves bridged bits on a sampled value.
func (s *Signal) applyBridges(v uint64) uint64 {
	for _, br := range s.bridges {
		selfBit := v >> br.selfBit & 1
		otherBit := *br.other.curp >> br.otherBit & 1
		var res uint64
		if br.kind == WiredOR {
			res = selfBit | otherBit
		} else {
			res = selfBit & otherBit
		}
		v = v&^(1<<br.selfBit) | res<<br.selfBit
	}
	return v
}

// ClearBridges removes all bridging faults. Like ClearFaults, a clean
// design is a single flag check and only the bridged nets are visited
// otherwise.
func (k *Kernel) ClearBridges() {
	if !k.dirty {
		return
	}
	for _, s := range k.bSigs {
		s.bridges = nil
		s.updateSlow()
	}
	k.bSigs = nil
	k.dirty = len(k.fSigs) > 0 || len(k.fArrs) > 0
}
