package rtl

import "testing"

func TestFlipBitOnWireAndRegister(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 8, 0)
	w.Set(0b1010)
	if err := k.FlipBit(Node{Name: "w", Bit: 1}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 0b1000 {
		t.Errorf("after flip = %#b", w.Get())
	}
	// A register flip survives Hold (quasi-static state keeps the upset).
	r := k.Reg("r", 8, 0)
	load := true
	k.Comb(func() {
		if load {
			r.SetNext(0x55)
		} else {
			r.Hold()
		}
	})
	k.Cycle() // r = 0x55
	load = false
	if err := k.FlipBit(Node{Name: "r", Bit: 0}); err != nil {
		t.Fatal(err)
	}
	k.Cycle()
	if r.Get() != 0x54 {
		t.Errorf("flip did not persist through hold: %#x", r.Get())
	}
}

func TestFlipBitOnArray(t *testing.T) {
	k := NewKernel()
	a := k.Array("m", 16, 4, 0)
	a.Write(2, 0xff)
	if err := k.FlipBit(Node{Name: "m", Word: 2, Bit: 4}); err != nil {
		t.Fatal(err)
	}
	if a.Read(2) != 0xef {
		t.Errorf("array flip = %#x", a.Read(2))
	}
	// Rewriting heals the upset (unlike a stuck-at).
	a.Write(2, 0xff)
	if a.Read(2) != 0xff {
		t.Errorf("flip behaved like a permanent fault")
	}
}

func TestFlipBitErrors(t *testing.T) {
	k := NewKernel()
	k.Wire("w", 4, 0)
	if err := k.FlipBit(Node{Name: "nosuch", Bit: 0}); err == nil {
		t.Error("unknown node accepted")
	}
	if err := k.FlipBit(Node{Name: "w", Bit: 7}); err == nil {
		t.Error("out-of-range bit accepted")
	}
}

func TestBridgeWiredAND(t *testing.T) {
	k := NewKernel()
	a := k.Wire("a", 4, 0)
	b := k.Wire("b", 4, 0)
	if err := k.InjectBridge(Node{Name: "a", Bit: 0}, Node{Name: "b", Bit: 2}, WiredAND); err != nil {
		t.Fatal(err)
	}
	a.Set(1) // a.0 = 1
	b.Set(0) // b.2 = 0
	if a.Get()&1 != 0 {
		t.Error("wired-AND did not pull a.0 low")
	}
	if b.Get()>>2&1 != 0 {
		t.Error("b.2 changed despite being the dominant side")
	}
	b.Set(4) // b.2 = 1
	if a.Get()&1 != 1 || b.Get()>>2&1 != 1 {
		t.Error("both high should read high")
	}
}

func TestBridgeWiredOR(t *testing.T) {
	k := NewKernel()
	a := k.Wire("a", 4, 0)
	b := k.Wire("b", 4, 0)
	if err := k.InjectBridge(Node{Name: "a", Bit: 1}, Node{Name: "b", Bit: 1}, WiredOR); err != nil {
		t.Fatal(err)
	}
	a.Set(0)
	b.Set(2)
	if a.Get()>>1&1 != 1 {
		t.Error("wired-OR did not pull a.1 high")
	}
	k.ClearBridges()
	if a.Get()>>1&1 != 0 {
		t.Error("bridge survived ClearBridges")
	}
}

func TestBridgeErrors(t *testing.T) {
	k := NewKernel()
	k.Wire("a", 4, 0)
	k.Array("m", 8, 2, 0)
	if err := k.InjectBridge(Node{Name: "a", Bit: 0}, Node{Name: "m", Bit: 0}, WiredOR); err == nil {
		t.Error("bridging to an array accepted")
	}
	if err := k.InjectBridge(Node{Name: "a", Bit: 0}, Node{Name: "a", Bit: 0}, WiredOR); err == nil {
		t.Error("self-bridge accepted")
	}
	if err := k.InjectBridge(Node{Name: "a", Bit: 9}, Node{Name: "a", Bit: 0}, WiredOR); err == nil {
		t.Error("out-of-range bridge accepted")
	}
}

func TestBridgeKindString(t *testing.T) {
	if WiredAND.String() != "wired-and" || WiredOR.String() != "wired-or" {
		t.Error("bridge kind names wrong")
	}
}
