package rtl

import "fmt"

// FaultModel enumerates the fault models: the paper's permanent models
// (stuck-at-0/1, open-line) plus the transient models of its declared
// future work (single-event upsets and single-event transients), whose
// outcome depends on the injection instant.
type FaultModel uint8

// Fault models. The first three are permanent (armed once, forced for
// the rest of the run); BitFlip and SETPulse are transient (applied at a
// sampled injection cycle, after which the design runs free).
const (
	StuckAt0 FaultModel = iota
	StuckAt1
	OpenLine // driver disconnected; the net retains its charge
	BitFlip  // SEU: invert the net's present value once, then run free
	SETPulse // SET: force the net's complement for a cycle window, then release
)

func (m FaultModel) String() string {
	switch m {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case OpenLine:
		return "open-line"
	case BitFlip:
		return "bit-flip"
	case SETPulse:
		return "set-pulse"
	}
	return "fault?"
}

// Transient reports whether the model is a transient upset rather than a
// permanent forcing: its effect is tied to an injection cycle, and (for
// SETPulse) the forcing is released after the pulse window.
func (m FaultModel) Transient() bool { return m == BitFlip || m == SETPulse }

// FaultModels lists the paper's permanent models (the historical default
// of every campaign surface; transient models are opted into by name).
func FaultModels() []FaultModel { return []FaultModel{StuckAt0, StuckAt1, OpenLine} }

// TransientFaultModels lists the transient models.
func TransientFaultModels() []FaultModel { return []FaultModel{BitFlip, SETPulse} }

// AllFaultModels lists every supported model, permanent first, in
// canonical enumeration order.
func AllFaultModels() []FaultModel {
	return append(FaultModels(), TransientFaultModels()...)
}

// Node identifies one injectable bit: a bit of a signal, or a bit of one
// word of a memory array.
type Node struct {
	Name string // signal or array name
	Word int    // array word index (0 for signals)
	Bit  int
}

func (n Node) String() string {
	if n.Word > 0 {
		return fmt.Sprintf("%s[%d].%d", n.Name, n.Word, n.Bit)
	}
	return fmt.Sprintf("%s.%d", n.Name, n.Bit)
}

// Fault is a fault model applied at a node.
type Fault struct {
	Node  Node
	Model FaultModel
}

func (f Fault) String() string { return fmt.Sprintf("%v@%v", f.Model, f.Node) }

// Nodes enumerates every injectable bit under the given name prefix.
// Signals contribute width bits each; arrays contribute width bits per
// word. This enumeration is the paper's "all available points" of a unit.
func (k *Kernel) Nodes(prefix string) []Node {
	var out []Node
	for _, s := range k.signals {
		if !hasPrefix(s.name, prefix) {
			continue
		}
		for b := 0; b < s.width; b++ {
			out = append(out, Node{Name: s.name, Bit: b})
		}
	}
	for _, a := range k.arrays {
		if !hasPrefix(a.name, prefix) {
			continue
		}
		for w := 0; w < len(a.data); w++ {
			for b := 0; b < a.width; b++ {
				out = append(out, Node{Name: a.name, Word: w, Bit: b})
			}
		}
	}
	return out
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Inject arms a fault at its node. Stuck-at faults force the bit; an
// open-line fault freezes the bit at its present value; a SET pulse
// forces the complement of the bit's present value (disarm it with
// ClearFaults once the pulse window elapses). A BitFlip is not a forcing
// at all: Inject performs the one-shot state inversion (FlipBit) and
// arms nothing, so there is nothing to clear afterwards. Injecting on an
// unknown node returns an error.
func (k *Kernel) Inject(f Fault) error {
	if f.Model == BitFlip {
		return k.FlipBit(f.Node)
	}
	return k.inject(f, 0, false)
}

// InjectForced arms f like Inject, except that the charge-sampling
// models (OpenLine, SETPulse) derive their frozen value from sampled —
// the raw value the net carried at the experiment's injection instant —
// instead of the net's present value. The batched campaign engine uses
// it to arm a fault on a core forked at a later cycle while reproducing
// exactly the forcing a scalar run armed at the original instant would
// carry. Stuck-at models ignore sampled; BitFlip is not a forcing and is
// rejected.
func (k *Kernel) InjectForced(f Fault, sampled uint64) error {
	if f.Model == BitFlip {
		return fmt.Errorf("rtl: InjectForced cannot arm %v (state mutation, not a forcing)", f)
	}
	return k.inject(f, sampled, true)
}

func (k *Kernel) inject(f Fault, sampled uint64, haveSample bool) error {
	bit := uint64(1) << f.Node.Bit
	for _, s := range k.signals {
		if s.name != f.Node.Name {
			continue
		}
		if f.Node.Bit >= s.width || f.Node.Word != 0 {
			return fmt.Errorf("rtl: fault %v out of range (width %d)", f, s.width)
		}
		if s.fMask == 0 {
			k.fSigs = append(k.fSigs, s)
		}
		cur := *s.curp
		if haveSample {
			cur = sampled
		}
		s.fMask |= bit
		switch f.Model {
		case StuckAt1:
			s.fVal |= bit
		case StuckAt0:
			s.fVal &^= bit
		case OpenLine:
			s.fVal = s.fVal&^bit | cur&bit
		case SETPulse:
			s.fVal = s.fVal&^bit | ^cur&bit
		}
		s.updateSlow()
		k.faults = append(k.faults, f)
		k.dirty = true
		return nil
	}
	for _, a := range k.arrays {
		if a.name != f.Node.Name {
			continue
		}
		if f.Node.Bit >= a.width || f.Node.Word < 0 || f.Node.Word >= len(a.data) {
			return fmt.Errorf("rtl: fault %v out of range", f)
		}
		if a.fWord >= 0 && a.fWord != f.Node.Word {
			return fmt.Errorf("rtl: array %s already faulted at word %d", a.name, a.fWord)
		}
		if a.fWord < 0 {
			k.fArrs = append(k.fArrs, a)
		}
		cur := a.data[f.Node.Word]
		if haveSample {
			cur = sampled
		}
		a.fWord = f.Node.Word
		a.fMask |= bit
		switch f.Model {
		case StuckAt1:
			a.fVal |= bit
		case StuckAt0:
			a.fVal &^= bit
		case OpenLine:
			a.fVal = a.fVal&^bit | cur&bit
		case SETPulse:
			a.fVal = a.fVal&^bit | ^cur&bit
		}
		k.faults = append(k.faults, f)
		k.dirty = true
		return nil
	}
	return fmt.Errorf("rtl: unknown node %v", f.Node)
}

// Faults returns the armed faults.
func (k *Kernel) Faults() []Fault { return k.faults }

// ClearFaults removes all armed faults. The kernel dirty flag makes
// clearing a clean design — the common case on the campaign engine's
// per-experiment restore path — a single check, and only the (few) nodes
// that carry a fault are visited otherwise.
func (k *Kernel) ClearFaults() {
	if !k.dirty {
		return
	}
	for _, s := range k.fSigs {
		s.fMask, s.fVal = 0, 0
		s.updateSlow()
	}
	for _, a := range k.fArrs {
		a.fWord, a.fMask, a.fVal = -1, 0, 0
	}
	k.fSigs, k.fArrs, k.faults = nil, nil, nil
	k.dirty = len(k.bSigs) > 0
}
