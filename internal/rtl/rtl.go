// Package rtl provides a cycle-based register-transfer-level simulation
// kernel: named, width-typed signals (wires and registers), memory arrays,
// ordered combinational processes with a two-phase evaluate/commit clock,
// and per-bit fault forcing.
//
// It plays the role the VHDL simulator plays in the reproduced paper. In
// particular it implements simulator-command fault injection in the style
// of MEFISTO [Jenn et al., FTCS 1994]: faults are forced onto existing
// signals without instrumenting the model. Three permanent fault models
// are supported — stuck-at-0, stuck-at-1 and open-line (a disconnected
// driver whose net retains the charge it had at injection time).
package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Unit tags a signal with the functional unit it belongs to, so that
// injection nodes can be grouped the way the paper groups them (IU versus
// CMEM, and per functional unit for the diversity weighting).
type Unit uint8

// Signal is a named RTL net carrying up to 64 bits. Registers additionally
// hold a pending next value committed on the clock edge.
type Signal struct {
	name  string
	width int
	mask  uint64 // width mask

	cur uint64 // visible value
	nxt uint64 // pending value (registers only)
	reg bool

	fMask uint64 // faulted bits
	fVal  uint64 // values of faulted bits

	bridges []bridge // saboteur-style shorts to other nets
}

// Name returns the hierarchical signal name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal width in bits.
func (s *Signal) Width() int { return s.width }

// IsReg reports whether the signal is clocked.
func (s *Signal) IsReg() bool { return s.reg }

// Get samples the signal as seen by consumers, with any injected fault
// applied at the net.
func (s *Signal) Get() uint64 {
	v := (s.cur &^ s.fMask) | s.fVal
	if s.bridges != nil {
		v = s.applyBridges(v)
	}
	return v
}

// GetBool samples a 1-bit signal.
func (s *Signal) GetBool() bool { return s.Get() != 0 }

// Set drives a wire combinationally (visible to processes that run later
// in the same cycle).
func (s *Signal) Set(v uint64) { s.cur = v & s.mask }

// SetBool drives a 1-bit wire.
func (s *Signal) SetBool(v bool) {
	if v {
		s.Set(1)
	} else {
		s.Set(0)
	}
}

// SetNext schedules a register value for the next clock edge.
func (s *Signal) SetNext(v uint64) { s.nxt = v & s.mask }

// SetNextBool schedules a 1-bit register value.
func (s *Signal) SetNextBool(v bool) {
	if v {
		s.SetNext(1)
	} else {
		s.SetNext(0)
	}
}

// Next returns the currently scheduled next value (used by hold logic to
// re-schedule the present value).
func (s *Signal) Next() uint64 { return s.nxt }

// Hold re-schedules the current committed value, stalling the register.
func (s *Signal) Hold() { s.nxt = s.cur }

// MemArray is an addressable RTL memory block (register file, cache tag or
// data RAM) with per-bit fault support on a single cell at a time.
type MemArray struct {
	name  string
	width int
	mask  uint64
	data  []uint64

	fWord int // faulted word (-1 when clean)
	fMask uint64
	fVal  uint64
}

// Name returns the array name.
func (a *MemArray) Name() string { return a.name }

// Len returns the number of words.
func (a *MemArray) Len() int { return len(a.data) }

// Width returns the word width in bits.
func (a *MemArray) Width() int { return a.width }

// Read samples word i with any injected fault applied.
func (a *MemArray) Read(i int) uint64 {
	v := a.data[i]
	if i == a.fWord {
		v = (v &^ a.fMask) | a.fVal
	}
	return v
}

// Write stores word i. Faulted bits ignore the write (the cell is stuck).
func (a *MemArray) Write(i int, v uint64) { a.data[i] = v & a.mask }

// Kernel owns the signals, arrays and processes of a design and advances
// it cycle by cycle.
type Kernel struct {
	signals []*Signal
	arrays  []*MemArray
	units   map[string]Unit // per signal/array name
	procs   []func()
	cycle   uint64

	faults []Fault
}

// NewKernel returns an empty design.
func NewKernel() *Kernel {
	return &Kernel{units: make(map[string]Unit)}
}

func (k *Kernel) addSignal(name string, width int, unit Unit, reg bool) *Signal {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("rtl: signal %s: bad width %d", name, width))
	}
	if _, dup := k.units[name]; dup {
		panic(fmt.Sprintf("rtl: duplicate name %s", name))
	}
	s := &Signal{name: name, width: width, reg: reg}
	if width == 64 {
		s.mask = ^uint64(0)
	} else {
		s.mask = 1<<width - 1
	}
	k.signals = append(k.signals, s)
	k.units[name] = unit
	return s
}

// Wire declares a combinational signal.
func (k *Kernel) Wire(name string, width int, unit Unit) *Signal {
	return k.addSignal(name, width, unit, false)
}

// Reg declares a clocked signal.
func (k *Kernel) Reg(name string, width int, unit Unit) *Signal {
	return k.addSignal(name, width, unit, true)
}

// Array declares a memory block of n words.
func (k *Kernel) Array(name string, width, n int, unit Unit) *MemArray {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("rtl: array %s: bad width %d", name, width))
	}
	if _, dup := k.units[name]; dup {
		panic(fmt.Sprintf("rtl: duplicate name %s", name))
	}
	a := &MemArray{name: name, width: width, data: make([]uint64, n), fWord: -1}
	if width == 64 {
		a.mask = ^uint64(0)
	} else {
		a.mask = 1<<width - 1
	}
	k.arrays = append(k.arrays, a)
	k.units[name] = unit
	return a
}

// Comb appends a combinational process; processes run in registration
// order each cycle, so producers must be registered before consumers.
func (k *Kernel) Comb(p func()) { k.procs = append(k.procs, p) }

// Cycle evaluates all combinational processes once and commits registers.
func (k *Kernel) Cycle() {
	for _, p := range k.procs {
		p()
	}
	for _, s := range k.signals {
		if s.reg {
			s.cur = s.nxt
		}
	}
	k.cycle++
}

// Now returns the number of elapsed cycles.
func (k *Kernel) Now() uint64 { return k.cycle }

// UnitOf returns the functional unit a signal or array name was declared
// under.
func (k *Kernel) UnitOf(name string) Unit { return k.units[name] }

// Signals returns the declared signals (stable order).
func (k *Kernel) Signals() []*Signal { return k.signals }

// Arrays returns the declared memory blocks (stable order).
func (k *Kernel) Arrays() []*MemArray { return k.arrays }

// String summarizes the design.
func (k *Kernel) String() string {
	bits := 0
	for _, s := range k.signals {
		bits += s.width
	}
	abits := 0
	for _, a := range k.arrays {
		abits += a.width * len(a.data)
	}
	return fmt.Sprintf("rtl{%d signals (%d bits), %d arrays (%d bits), %d procs}",
		len(k.signals), bits, len(k.arrays), abits, len(k.procs))
}

// SignalNamesByPrefix returns the names of signals and arrays under a
// hierarchy prefix, sorted.
func (k *Kernel) SignalNamesByPrefix(prefix string) []string {
	var out []string
	for name := range k.units {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
