// Package rtl provides a cycle-based register-transfer-level simulation
// kernel: named, width-typed signals (wires and registers), memory arrays,
// ordered combinational processes with a two-phase evaluate/commit clock,
// and per-bit fault forcing.
//
// It plays the role the VHDL simulator plays in the reproduced paper. In
// particular it implements simulator-command fault injection in the style
// of MEFISTO [Jenn et al., FTCS 1994]: faults are forced onto existing
// signals without instrumenting the model. Three permanent fault models
// are supported — stuck-at-0, stuck-at-1 and open-line (a disconnected
// driver whose net retains the charge it had at injection time) — plus
// two transient models: bit-flip (a single-event upset that inverts the
// committed value once) and SET pulse (the bit forced to its complement
// for a bounded window, then released).
//
// Fault forcing is read-side for every model except bit-flip: Inject
// never rewrites slab state, it only redirects what consumers observe.
// That property is the seam the bit-parallel (PPSFP) campaign engine is
// built on: StartWitness arms per-net read observation, each cycle's
// WitnessAcc records exactly which bit values the design consumed, and a
// fault universe whose forced value is never read differently from the
// golden run provably cannot diverge — one witnessed golden pass
// therefore resolves up to 64 such universes (lanes) at once (see
// internal/fault and DESIGN.md §10). InjectForced arms open-line and
// SET-pulse faults with an externally sampled charge so a lane's fork
// reproduces the scalar engine's injection instant exactly.
//
// # Slab state layout
//
// All dynamic state lives in kernel-owned flat slabs rather than in
// per-signal heap objects: one []uint64 pair (committed/pending) for the
// clocked signals, one pair for the wires, and one contiguous []uint64
// backing every memory array. Signal and MemArray are thin handles:
// a signal carries direct pointers into its slab slots, an array carries
// a subslice view of the array slab. The layout buys three things on the
// simulation hot path: the clock edge commits every register with a
// single bulk copy of the register slab (no per-signal scan), Snapshot
// and Restore are bulk slab copies instead of per-signal walks, and Get
// collapses to one pointer load plus one well-predicted branch on a
// per-signal slow-path flag (set only for the ≤1 faulted or bridged node
// of an experiment, with the kernel-level dirty flag guarding the
// campaign engine's clear/restore walks).
package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Unit tags a signal with the functional unit it belongs to, so that
// injection nodes can be grouped the way the paper groups them (IU versus
// CMEM, and per functional unit for the diversity weighting).
type Unit uint8

// Signal is a named RTL net carrying up to 64 bits. Registers additionally
// hold a pending next value committed on the clock edge. The values
// themselves live in the owning kernel's slabs; the Signal is a handle
// pointing at its two slab slots.
type Signal struct {
	curp *uint64 // committed value (slab slot)
	nxtp *uint64 // pending value (slab slot)
	mask uint64  // width mask

	slow  uint8 // nonzero when a fault, bridge or witness is armed on this net
	reg   bool
	width int
	idx   int32 // index within the reg or wire slab

	fMask uint64 // faulted bits
	fVal  uint64 // values of faulted bits

	bridges []bridge    // saboteur-style shorts to other nets
	obs     *WitnessAcc // read-observation accumulator (nil unless witnessed)

	k    *Kernel
	name string
}

// Name returns the hierarchical signal name.
func (s *Signal) Name() string { return s.name }

// Width returns the signal width in bits.
func (s *Signal) Width() int { return s.width }

// IsReg reports whether the signal is clocked.
func (s *Signal) IsReg() bool { return s.reg }

// Get samples the signal as seen by consumers, with any injected fault
// applied at the net. The clean-design fast path is a single slab load;
// only the (at most one) faulted or bridged net of an experiment takes
// the slow path.
func (s *Signal) Get() uint64 {
	if s.slow != 0 {
		return s.getSlow()
	}
	return *s.curp
}

// getSlow samples the signal with the armed fault forcing and bridge
// resolution applied, and records the sampled value into the witness
// accumulator when one is armed. It is kept out of line so that Get (and
// GetBool) stay small enough to inline at every sampling site; the call
// is taken only on faulted or witnessed nets.
//
//go:noinline
func (s *Signal) getSlow() uint64 {
	v := *s.curp&^s.fMask | s.fVal
	if s.bridges != nil {
		v = s.applyBridges(v)
	}
	if s.obs != nil {
		s.obs.Ones |= v
		s.obs.Zeros |= ^v
	}
	return v
}

// updateSlow recomputes the slow-path flag after fault, bridge or
// witness changes.
func (s *Signal) updateSlow() {
	if s.fMask != 0 || s.bridges != nil || s.obs != nil {
		s.slow = 1
	} else {
		s.slow = 0
	}
}

// GetBool samples a 1-bit signal.
func (s *Signal) GetBool() bool { return s.Get() != 0 }

// Set drives a wire combinationally (visible to processes that run later
// in the same cycle).
func (s *Signal) Set(v uint64) { *s.curp = v & s.mask }

// SetBool drives a 1-bit wire.
func (s *Signal) SetBool(v bool) {
	if v {
		s.Set(1)
	} else {
		s.Set(0)
	}
}

// SetNext schedules a register value for the next clock edge.
func (s *Signal) SetNext(v uint64) { *s.nxtp = v & s.mask }

// SetNextBool schedules a 1-bit register value.
func (s *Signal) SetNextBool(v bool) {
	if v {
		s.SetNext(1)
	} else {
		s.SetNext(0)
	}
}

// Next returns the currently scheduled next value (used by hold logic to
// re-schedule the present value).
func (s *Signal) Next() uint64 { return *s.nxtp }

// Hold re-schedules the current committed value, stalling the register.
func (s *Signal) Hold() { *s.nxtp = *s.curp }

// MemArray is an addressable RTL memory block (register file, cache tag or
// data RAM) with per-bit fault support on a single cell at a time. Its
// words live in the kernel's contiguous array slab; data is a subslice
// view into it.
type MemArray struct {
	data  []uint64
	mask  uint64
	fWord int // faulted word (-1 when clean)
	fMask uint64
	fVal  uint64

	obs []*WitnessAcc // per-word read observers (nil unless witnessed)

	off   int // word offset into the kernel array slab
	width int
	name  string
}

// Name returns the array name.
func (a *MemArray) Name() string { return a.name }

// Len returns the number of words.
func (a *MemArray) Len() int { return len(a.data) }

// Width returns the word width in bits.
func (a *MemArray) Width() int { return a.width }

// Read samples word i with any injected fault applied, recording the
// sampled value when the word is witnessed.
func (a *MemArray) Read(i int) uint64 {
	v := a.data[i]
	if i == a.fWord {
		v = (v &^ a.fMask) | a.fVal
	}
	if a.obs != nil {
		if w := a.obs[i]; w != nil {
			w.Ones |= v
			w.Zeros |= ^v
		}
	}
	return v
}

// Write stores word i. Faulted bits ignore the write (the cell is stuck).
func (a *MemArray) Write(i int, v uint64) { a.data[i] = v & a.mask }

// Kernel owns the signals, arrays and processes of a design and advances
// it cycle by cycle. All signal and array values live in the kernel's
// flat slabs (see the package comment).
type Kernel struct {
	regCur  []uint64 // committed values of clocked signals
	regNxt  []uint64 // pending values of clocked signals
	wireCur []uint64 // committed values of wires
	wireNxt []uint64 // pending values of wires (API fidelity only)
	arr     []uint64 // contiguous backing of every memory array

	signals []*Signal
	arrays  []*MemArray
	units   map[string]Unit // per signal/array name
	procs   []func()
	cycle   uint64

	faults []Fault
	fSigs  []*Signal   // signals with armed faults
	fArrs  []*MemArray // arrays with armed faults
	bSigs  []*Signal   // signals with armed bridges
	dirty  bool        // any fault or bridge armed on the design
}

// NewKernel returns an empty design.
func NewKernel() *Kernel {
	return &Kernel{units: make(map[string]Unit)}
}

// repoint refreshes every signal handle's slab pointers (slab growth
// during design construction may move the backing arrays).
func (k *Kernel) repoint() {
	for _, s := range k.signals {
		if s.reg {
			s.curp, s.nxtp = &k.regCur[s.idx], &k.regNxt[s.idx]
		} else {
			s.curp, s.nxtp = &k.wireCur[s.idx], &k.wireNxt[s.idx]
		}
	}
}

func (k *Kernel) addSignal(name string, width int, unit Unit, reg bool) *Signal {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("rtl: signal %s: bad width %d", name, width))
	}
	if _, dup := k.units[name]; dup {
		panic(fmt.Sprintf("rtl: duplicate name %s", name))
	}
	s := &Signal{k: k, name: name, width: width, reg: reg}
	if width == 64 {
		s.mask = ^uint64(0)
	} else {
		s.mask = 1<<width - 1
	}
	var grew bool
	if reg {
		s.idx = int32(len(k.regCur))
		grew = cap(k.regCur) == len(k.regCur)
		k.regCur = append(k.regCur, 0)
		k.regNxt = append(k.regNxt, 0)
	} else {
		s.idx = int32(len(k.wireCur))
		grew = cap(k.wireCur) == len(k.wireCur)
		k.wireCur = append(k.wireCur, 0)
		k.wireNxt = append(k.wireNxt, 0)
	}
	k.signals = append(k.signals, s)
	k.units[name] = unit
	if grew {
		// The append moved the slab backing; refresh every handle.
		k.repoint()
	} else if reg {
		s.curp, s.nxtp = &k.regCur[s.idx], &k.regNxt[s.idx]
	} else {
		s.curp, s.nxtp = &k.wireCur[s.idx], &k.wireNxt[s.idx]
	}
	return s
}

// Wire declares a combinational signal.
func (k *Kernel) Wire(name string, width int, unit Unit) *Signal {
	return k.addSignal(name, width, unit, false)
}

// Reg declares a clocked signal.
func (k *Kernel) Reg(name string, width int, unit Unit) *Signal {
	return k.addSignal(name, width, unit, true)
}

// Array declares a memory block of n words.
func (k *Kernel) Array(name string, width, n int, unit Unit) *MemArray {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("rtl: array %s: bad width %d", name, width))
	}
	if _, dup := k.units[name]; dup {
		panic(fmt.Sprintf("rtl: duplicate name %s", name))
	}
	off := len(k.arr)
	k.arr = append(k.arr, make([]uint64, n)...)
	a := &MemArray{off: off, name: name, width: width, fWord: -1}
	if width == 64 {
		a.mask = ^uint64(0)
	} else {
		a.mask = 1<<width - 1
	}
	a.data = k.arr[off : off+n : off+n]
	k.arrays = append(k.arrays, a)
	// Growing the slab may have moved its backing; re-point the existing
	// arrays' views (their slice lengths are unaffected by the move).
	for _, ar := range k.arrays[:len(k.arrays)-1] {
		sz := len(ar.data)
		ar.data = k.arr[ar.off : ar.off+sz : ar.off+sz]
	}
	k.units[name] = unit
	return a
}

// Comb appends a combinational process; processes run in registration
// order each cycle, so producers must be registered before consumers.
func (k *Kernel) Comb(p func()) { k.procs = append(k.procs, p) }

// Group is a precomputed set of registers that stall together. Holding a
// group re-schedules every member's committed value with one tight loop
// over slab indices, replacing a per-signal virtual dispatch on the
// pipeline-stall hot path.
type Group struct {
	k    *Kernel
	idxs []int32
}

// Group precomputes a hold group over the given clocked signals.
func (k *Kernel) Group(sigs ...*Signal) Group {
	g := Group{k: k, idxs: make([]int32, len(sigs))}
	for i, s := range sigs {
		if s.k != k {
			panic("rtl: group signal from another kernel")
		}
		if !s.reg {
			panic(fmt.Sprintf("rtl: group signal %s is not clocked", s.name))
		}
		g.idxs[i] = s.idx
	}
	return g
}

// Hold stalls every signal in the group (nxt = cur).
func (g Group) Hold() {
	cur, nxt := g.k.regCur, g.k.regNxt
	for _, i := range g.idxs {
		nxt[i] = cur[i]
	}
}

// Cycle evaluates all combinational processes once and commits every
// register with one bulk copy of the register slab.
func (k *Kernel) Cycle() {
	for _, p := range k.procs {
		p()
	}
	copy(k.regCur, k.regNxt)
	k.cycle++
}

// Now returns the number of elapsed cycles.
func (k *Kernel) Now() uint64 { return k.cycle }

// ResetState returns every signal, array and the cycle counter to the
// all-zero power-on state and clears any armed faults and bridges. The
// design structure (signals, arrays, processes) is untouched, so a kernel
// can be reset in place and re-run instead of being rebuilt.
func (k *Kernel) ResetState() {
	k.ClearFaults()
	k.ClearBridges()
	clear(k.regCur)
	clear(k.regNxt)
	clear(k.wireCur)
	clear(k.wireNxt)
	clear(k.arr)
	k.cycle = 0
}

// UnitOf returns the functional unit a signal or array name was declared
// under.
func (k *Kernel) UnitOf(name string) Unit { return k.units[name] }

// Signals returns the declared signals (stable order).
func (k *Kernel) Signals() []*Signal { return k.signals }

// Arrays returns the declared memory blocks (stable order).
func (k *Kernel) Arrays() []*MemArray { return k.arrays }

// String summarizes the design.
func (k *Kernel) String() string {
	bits := 0
	for _, s := range k.signals {
		bits += s.width
	}
	abits := 0
	for _, a := range k.arrays {
		abits += a.width * len(a.data)
	}
	return fmt.Sprintf("rtl{%d signals (%d bits), %d arrays (%d bits), %d procs}",
		len(k.signals), bits, len(k.arrays), abits, len(k.procs))
}

// SignalNamesByPrefix returns the names of signals and arrays under a
// hierarchy prefix, sorted.
func (k *Kernel) SignalNamesByPrefix(prefix string) []string {
	var out []string
	for name := range k.units {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
