package rtl

import (
	"testing"
	"testing/quick"
)

func TestWireAndRegSemantics(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 8, 0)
	r := k.Reg("r", 8, 0)
	k.Comb(func() { w.Set(w.Get() + 1); r.SetNext(w.Get()) })
	k.Cycle()
	// Wire took effect within the cycle; register committed at the edge.
	if w.Get() != 1 || r.Get() != 1 {
		t.Fatalf("after cycle 1: w=%d r=%d", w.Get(), r.Get())
	}
	k.Cycle()
	if w.Get() != 2 || r.Get() != 2 {
		t.Fatalf("after cycle 2: w=%d r=%d", w.Get(), r.Get())
	}
	if k.Now() != 2 {
		t.Errorf("cycle count %d", k.Now())
	}
}

func TestRegisterReadsOldValueDuringEval(t *testing.T) {
	k := NewKernel()
	r := k.Reg("r", 16, 0)
	var seen []uint64
	k.Comb(func() {
		seen = append(seen, r.Get())
		r.SetNext(r.Get() + 3)
	})
	k.Cycle()
	k.Cycle()
	k.Cycle()
	if seen[0] != 0 || seen[1] != 3 || seen[2] != 6 {
		t.Fatalf("register visibility wrong: %v", seen)
	}
}

func TestHold(t *testing.T) {
	k := NewKernel()
	r := k.Reg("r", 8, 0)
	hold := false
	k.Comb(func() {
		r.SetNext(r.Get() + 1)
		if hold {
			r.Hold()
		}
	})
	k.Cycle()
	hold = true
	k.Cycle()
	k.Cycle()
	if r.Get() != 1 {
		t.Fatalf("hold failed: r=%d", r.Get())
	}
}

func TestWidthMasking(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 5, 0)
	w.Set(0xfff)
	if w.Get() != 0x1f {
		t.Errorf("5-bit wire = %#x", w.Get())
	}
	w64 := k.Wire("w64", 64, 0)
	w64.Set(^uint64(0))
	if w64.Get() != ^uint64(0) {
		t.Errorf("64-bit wire lost bits")
	}
}

func TestStuckAtFaultOnWire(t *testing.T) {
	k := NewKernel()
	w := k.Wire("iu.w", 8, 0)
	w.Set(0)
	if err := k.Inject(Fault{Node{Name: "iu.w", Bit: 3}, StuckAt1}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 8 {
		t.Errorf("sa1 read = %#x, want 8", w.Get())
	}
	w.Set(0xff)
	if err := k.Inject(Fault{Node{Name: "iu.w", Bit: 0}, StuckAt0}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 0xfe {
		t.Errorf("sa0 read = %#x, want 0xfe", w.Get())
	}
	k.ClearFaults()
	if w.Get() != 0xff {
		t.Errorf("after clear = %#x", w.Get())
	}
}

func TestOpenLineFreezesValue(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 8, 0)
	w.Set(0b100)
	if err := k.Inject(Fault{Node{Name: "w", Bit: 2}, OpenLine}); err != nil {
		t.Fatal(err)
	}
	w.Set(0)
	if w.Get() != 0b100 {
		t.Errorf("open-line did not retain: %#x", w.Get())
	}
	// A bit that was 0 at injection stays 0.
	w2 := k.Wire("w2", 8, 0)
	w2.Set(0)
	if err := k.Inject(Fault{Node{Name: "w2", Bit: 5}, OpenLine}); err != nil {
		t.Fatal(err)
	}
	w2.Set(0xff)
	if w2.Get() != 0xdf {
		t.Errorf("open-line-0 read = %#x, want 0xdf", w2.Get())
	}
}

func TestRegisterFault(t *testing.T) {
	k := NewKernel()
	r := k.Reg("r", 8, 0)
	k.Comb(func() { r.SetNext(r.Get() + 1) })
	if err := k.Inject(Fault{Node{Name: "r", Bit: 0}, StuckAt0}); err != nil {
		t.Fatal(err)
	}
	k.Cycle() // reads 0 (bit0 stuck 0), schedules 1, commits 1, reads as 0
	if r.Get() != 0 {
		t.Errorf("cycle1 read = %d", r.Get())
	}
	k.Cycle()
	if r.Get()&1 != 0 {
		t.Errorf("stuck bit leaked: %d", r.Get())
	}
}

func TestArrayFault(t *testing.T) {
	k := NewKernel()
	a := k.Array("rf", 32, 8, 0)
	a.Write(3, 0)
	if err := k.Inject(Fault{Node{Name: "rf", Word: 3, Bit: 7}, StuckAt1}); err != nil {
		t.Fatal(err)
	}
	if a.Read(3) != 128 {
		t.Errorf("faulted cell = %d", a.Read(3))
	}
	if a.Read(2) != 0 {
		t.Errorf("clean cell affected")
	}
	a.Write(3, 0xffffff7f)
	if a.Read(3)&128 == 0 {
		t.Errorf("stuck bit overwritten")
	}
	// Second fault on a different word of the same array is rejected.
	if err := k.Inject(Fault{Node{Name: "rf", Word: 5, Bit: 0}, StuckAt1}); err == nil {
		t.Error("expected error for second word fault")
	}
}

func TestInjectErrors(t *testing.T) {
	k := NewKernel()
	k.Wire("w", 4, 0)
	if err := k.Inject(Fault{Node{Name: "nosuch", Bit: 0}, StuckAt1}); err == nil {
		t.Error("unknown node accepted")
	}
	if err := k.Inject(Fault{Node{Name: "w", Bit: 9}, StuckAt1}); err == nil {
		t.Error("out-of-width bit accepted")
	}
}

func TestNodesEnumeration(t *testing.T) {
	k := NewKernel()
	k.Wire("iu.a", 3, 0)
	k.Reg("iu.b", 2, 1)
	k.Array("cmem.t", 4, 2, 2)
	k.Wire("other", 8, 3)
	iu := k.Nodes("iu.")
	if len(iu) != 5 {
		t.Errorf("iu nodes = %d, want 5", len(iu))
	}
	cm := k.Nodes("cmem.")
	if len(cm) != 8 {
		t.Errorf("cmem nodes = %d, want 8", len(cm))
	}
	all := k.Nodes("")
	if len(all) != 5+8+8 {
		t.Errorf("all nodes = %d", len(all))
	}
	// Every enumerated node must be injectable.
	for _, n := range all {
		if err := k.Inject(Fault{n, StuckAt1}); err != nil {
			// Arrays allow only one faulted word; skip that error.
			if n.Name == "cmem.t" {
				continue
			}
			t.Errorf("node %v not injectable: %v", n, err)
		}
		k.ClearFaults()
	}
}

func TestStuckAtDominatesWritesQuick(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 32, 0)
	if err := k.Inject(Fault{Node{Name: "w", Bit: 13}, StuckAt1}); err != nil {
		t.Fatal(err)
	}
	f := func(v uint32) bool {
		w.Set(uint64(v))
		got := w.Get()
		return got&(1<<13) != 0 && got&^(1<<13) == uint64(v)&^(1<<13)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitTagging(t *testing.T) {
	k := NewKernel()
	k.Wire("iu.alu.x", 1, 4)
	if k.UnitOf("iu.alu.x") != 4 {
		t.Error("unit tag lost")
	}
	names := k.SignalNamesByPrefix("iu.")
	if len(names) != 1 || names[0] != "iu.alu.x" {
		t.Errorf("prefix query = %v", names)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	k := NewKernel()
	k.Wire("x", 1, 0)
	k.Wire("x", 2, 0)
}
