package rtl

import "fmt"

// Snapshot captures the full dynamic state of a kernel at a cycle
// boundary: the committed and pending value of every signal, the contents
// of every memory array, and the cycle counter. Fault forcing (stuck-at
// masks, bridges) is deliberately not part of a snapshot: checkpoints are
// taken on clean golden runs and restored into clean kernels, so a
// restored design always starts fault-free.
type Snapshot struct {
	cycle  uint64
	sigCur []uint64
	sigNxt []uint64
	arrays [][]uint64
}

// Cycle returns the cycle count at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.cycle }

// Snapshot captures the kernel's dynamic state. The snapshot is a deep
// copy; the kernel may keep running without disturbing it.
func (k *Kernel) Snapshot() *Snapshot {
	s := &Snapshot{
		cycle:  k.cycle,
		sigCur: make([]uint64, len(k.signals)),
		sigNxt: make([]uint64, len(k.signals)),
		arrays: make([][]uint64, len(k.arrays)),
	}
	for i, sig := range k.signals {
		s.sigCur[i] = sig.cur
		s.sigNxt[i] = sig.nxt
	}
	for i, a := range k.arrays {
		s.arrays[i] = append([]uint64(nil), a.data...)
	}
	return s
}

// Restore loads a snapshot into the kernel, which must have an identical
// structure (same signals and arrays in the same declaration order — in
// practice a kernel built by the same constructor as the snapshotted one).
// Any armed faults or bridges on the kernel are cleared so the restored
// design matches the clean snapshotted state exactly.
func (k *Kernel) Restore(s *Snapshot) error {
	if len(s.sigCur) != len(k.signals) || len(s.arrays) != len(k.arrays) {
		return fmt.Errorf("rtl: snapshot shape (%d signals, %d arrays) does not match kernel (%d signals, %d arrays)",
			len(s.sigCur), len(s.arrays), len(k.signals), len(k.arrays))
	}
	for i, a := range k.arrays {
		if len(s.arrays[i]) != len(a.data) {
			return fmt.Errorf("rtl: snapshot array %s has %d words, kernel has %d",
				a.name, len(s.arrays[i]), len(a.data))
		}
	}
	k.ClearFaults()
	k.ClearBridges()
	for i, sig := range k.signals {
		sig.cur = s.sigCur[i]
		sig.nxt = s.sigNxt[i]
	}
	for i, a := range k.arrays {
		copy(a.data, s.arrays[i])
	}
	k.cycle = s.cycle
	return nil
}
