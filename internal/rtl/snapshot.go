package rtl

import (
	"fmt"
	"slices"
)

// Snapshot captures the full dynamic state of a kernel at a cycle
// boundary: the committed and pending value of every signal, the contents
// of every memory array, and the cycle counter. Because the kernel keeps
// all of that state in flat slabs, a snapshot is a handful of bulk slice
// copies rather than a per-signal walk. Fault forcing (stuck-at masks,
// bridges) is deliberately not part of a snapshot: checkpoints are taken
// on clean golden runs and restored into clean kernels, so a restored
// design always starts fault-free.
type Snapshot struct {
	cycle   uint64
	regCur  []uint64
	regNxt  []uint64
	wireCur []uint64
	wireNxt []uint64
	arr     []uint64
	narr    int // array count, for the shape check
}

// Cycle returns the cycle count at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.cycle }

// Snapshot captures the kernel's dynamic state. The snapshot is a deep
// copy; the kernel may keep running without disturbing it.
func (k *Kernel) Snapshot() *Snapshot {
	return &Snapshot{
		cycle:   k.cycle,
		regCur:  append([]uint64(nil), k.regCur...),
		regNxt:  append([]uint64(nil), k.regNxt...),
		wireCur: append([]uint64(nil), k.wireCur...),
		wireNxt: append([]uint64(nil), k.wireNxt...),
		arr:     append([]uint64(nil), k.arr...),
		narr:    len(k.arrays),
	}
}

// Restore loads a snapshot into the kernel, which must have an identical
// structure (same signals and arrays in the same declaration order — in
// practice a kernel built by the same constructor as the snapshotted one).
// Any armed faults or bridges on the kernel are cleared so the restored
// design matches the clean snapshotted state exactly. Restore is the
// campaign engine's per-experiment reset of a pooled core, so it is
// deliberately cheap: clearing is O(armed faults) and the state reload is
// a handful of bulk copies.
func (k *Kernel) Restore(s *Snapshot) error {
	if len(s.regCur) != len(k.regCur) || len(s.wireCur) != len(k.wireCur) ||
		len(s.arr) != len(k.arr) || s.narr != len(k.arrays) {
		return fmt.Errorf("rtl: snapshot shape (%d regs, %d wires, %d arrays, %d array words) does not match kernel (%d regs, %d wires, %d arrays, %d array words)",
			len(s.regCur), len(s.wireCur), s.narr, len(s.arr),
			len(k.regCur), len(k.wireCur), len(k.arrays), len(k.arr))
	}
	k.ClearFaults()
	k.ClearBridges()
	copy(k.regCur, s.regCur)
	copy(k.regNxt, s.regNxt)
	copy(k.wireCur, s.wireCur)
	copy(k.wireNxt, s.wireNxt)
	copy(k.arr, s.arr)
	k.cycle = s.cycle
	return nil
}

// StateEquals reports whether the kernel's committed state at a cycle
// boundary equals the snapshot's: same cycle count, same register slab,
// same array slab. Two slabs are deliberately not compared:
//
//   - the pending register slab, because the clock edge commits with a
//     bulk copy (regCur := regNxt), so at any cycle boundary the two
//     register slabs are identical;
//   - the wire slabs, because in a well-formed design every wire is
//     driven before it is read within a cycle — wire slots carry no
//     information across the clock edge, so two kernels with equal
//     register and array state produce identical futures even if stale
//     wire residue differs. leon3's TestWiresCarryNoState enforces this
//     property dynamically.
//
// The batched campaign engine uses StateEquals as its reconvergence
// check: a forked fault universe whose raw state re-equals a golden
// snapshot (and whose off-core write position matches) has healed and
// will track the golden run for as long as its fault stays unread.
func (k *Kernel) StateEquals(s *Snapshot) bool {
	return k.cycle == s.cycle &&
		slices.Equal(k.regCur, s.regCur) &&
		slices.Equal(k.arr, s.arr)
}
