package rtl

import "testing"

// build constructs a small deterministic design: one register, one wire,
// one array, and a process that accumulates the register into the array.
func build() (*Kernel, *Signal, *Signal, *MemArray) {
	k := NewKernel()
	r := k.Reg("t.r", 8, 0)
	w := k.Wire("t.w", 8, 0)
	a := k.Array("t.a", 8, 4, 0)
	k.Comb(func() {
		w.Set(r.Get() + 1)
		r.SetNext(w.Get())
		a.Write(int(k.Now())&3, a.Read(int(k.Now())&3)+r.Get())
	})
	return k, r, w, a
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	k1, _, _, _ := build()
	for i := 0; i < 7; i++ {
		k1.Cycle()
	}
	snap := k1.Snapshot()

	// The source kernel keeps running; the snapshot must be unaffected.
	for i := 0; i < 5; i++ {
		k1.Cycle()
	}

	k2, _, _, _ := build()
	if err := k2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if k2.Now() != 7 {
		t.Fatalf("restored cycle = %d", k2.Now())
	}

	// Both kernels replayed from the same point must stay in lockstep.
	k3, _, _, _ := build()
	if err := k3.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		k2.Cycle()
		k3.Cycle()
	}
	for i, s := range k2.Signals() {
		if s.Get() != k3.Signals()[i].Get() {
			t.Errorf("signal %s diverged: %x vs %x", s.Name(), s.Get(), k3.Signals()[i].Get())
		}
	}
	for i, a := range k2.Arrays() {
		for w := 0; w < a.Len(); w++ {
			if a.Read(w) != k3.Arrays()[i].Read(w) {
				t.Errorf("array %s[%d] diverged", a.Name(), w)
			}
		}
	}
}

func TestRestoreClearsFaults(t *testing.T) {
	k, r, _, _ := build()
	k.Cycle()
	snap := k.Snapshot()
	if err := k.Inject(Fault{Node: Node{Name: "t.r", Bit: 0}, Model: StuckAt1}); err != nil {
		t.Fatal(err)
	}
	if err := k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(k.Faults()) != 0 {
		t.Error("restore kept armed faults")
	}
	*r.curp = 0
	if r.Get() != 0 {
		t.Error("restore kept fault forcing")
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	k1, _, _, _ := build()
	snap := k1.Snapshot()

	k2 := NewKernel()
	k2.Reg("other", 8, 0)
	if err := k2.Restore(snap); err == nil {
		t.Error("restore into a different design succeeded")
	}

	k3 := NewKernel()
	k3.Reg("t.r", 8, 0)
	k3.Wire("t.w", 8, 0)
	k3.Array("t.a", 8, 2, 0) // wrong word count
	if err := k3.Restore(snap); err == nil {
		t.Error("restore into a resized array succeeded")
	}
}
