package rtl

import (
	"reflect"
	"testing"
)

func TestSETPulseForcesComplementAndReleases(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 8, 0)
	w.Set(0b1010)
	if err := k.Inject(Fault{Node: Node{Name: "w", Bit: 1}, Model: SETPulse}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 0b1000 {
		t.Errorf("pulsed read = %#b, want bit 1 forced low", w.Get())
	}
	// The driver keeps driving underneath; the glitch overrides the read.
	w.Set(0b1010)
	if w.Get() != 0b1000 {
		t.Errorf("pulse did not override the driver: %#b", w.Get())
	}
	k.ClearFaults()
	if w.Get() != 0b1010 {
		t.Errorf("release did not restore the driven value: %#b", w.Get())
	}
}

func TestSETPulseOnZeroBitForcesHigh(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 4, 0)
	w.Set(0)
	if err := k.Inject(Fault{Node: Node{Name: "w", Bit: 2}, Model: SETPulse}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 0b100 {
		t.Errorf("pulse on a low bit should force it high: %#b", w.Get())
	}
}

func TestSETPulseOnArrayCell(t *testing.T) {
	k := NewKernel()
	a := k.Array("m", 16, 4, 0)
	a.Write(1, 0x0f)
	if err := k.Inject(Fault{Node: Node{Name: "m", Word: 1, Bit: 0}, Model: SETPulse}); err != nil {
		t.Fatal(err)
	}
	if a.Read(1) != 0x0e {
		t.Errorf("array pulse read = %#x", a.Read(1))
	}
	k.ClearFaults()
	if a.Read(1) != 0x0f {
		t.Errorf("array pulse survived release: %#x", a.Read(1))
	}
}

func TestInjectBitFlipDelegatesToFlip(t *testing.T) {
	k := NewKernel()
	w := k.Wire("w", 8, 0)
	w.Set(1)
	if err := k.Inject(Fault{Node: Node{Name: "w", Bit: 0}, Model: BitFlip}); err != nil {
		t.Fatal(err)
	}
	if w.Get() != 0 {
		t.Errorf("flip via Inject did not invert the bit: %#b", w.Get())
	}
	if len(k.Faults()) != 0 {
		t.Error("a bit-flip must not arm a forcing")
	}
	// Rewriting heals the upset — it is a state change, not a forcing.
	w.Set(1)
	if w.Get() != 1 {
		t.Error("flip behaved like a permanent fault")
	}
	if err := k.Inject(Fault{Node: Node{Name: "w", Bit: 9}, Model: BitFlip}); err == nil {
		t.Error("out-of-range flip accepted")
	}
}

func TestFaultModelEnumeration(t *testing.T) {
	if !reflect.DeepEqual(FaultModels(), []FaultModel{StuckAt0, StuckAt1, OpenLine}) {
		t.Error("permanent model list changed")
	}
	if !reflect.DeepEqual(TransientFaultModels(), []FaultModel{BitFlip, SETPulse}) {
		t.Error("transient model list changed")
	}
	if !reflect.DeepEqual(AllFaultModels(),
		[]FaultModel{StuckAt0, StuckAt1, OpenLine, BitFlip, SETPulse}) {
		t.Error("canonical model order changed")
	}
	for m, want := range map[FaultModel]string{
		StuckAt0: "stuck-at-0", StuckAt1: "stuck-at-1", OpenLine: "open-line",
		BitFlip: "bit-flip", SETPulse: "set-pulse",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	for _, m := range FaultModels() {
		if m.Transient() {
			t.Errorf("%v reports transient", m)
		}
	}
	for _, m := range TransientFaultModels() {
		if !m.Transient() {
			t.Errorf("%v reports permanent", m)
		}
	}
}
