package rtl

import "fmt"

// This file implements read witnessing, the kernel seam of the batched
// (bit-parallel) fault-simulation engine. A witness observes, during a
// clean golden pass, every value consumers actually sample from a set of
// watched nets. Because fault forcing in this kernel is strictly
// read-side (Inject never mutates raw slab state), a faulted universe
// whose raw state equals the golden run's can only diverge at a cycle
// where some consumer reads the faulted net and the forced bit differs
// from the clean bit. The per-net observation accumulators make that
// activation predicate a pair of bitwise ops across all 64 bits of a net
// at once — the PPSFP trick transplanted from gate-level patterns to
// word-level fault universes (see DESIGN.md §10).

// WitnessNet names one watched net: a signal, or a single word of a
// memory array (Word is 0 for signals).
type WitnessNet struct {
	Name string
	Word int
}

// WitnessAcc accumulates the read observations of one watched net since
// it was last reset: Ones collects the bits that were sampled as 1,
// Zeros the bits sampled as 0 (within the net's width; higher Zeros bits
// are junk). A bit appearing in neither was never consumed; a bit
// appearing in both was consumed with each polarity at least once.
type WitnessAcc struct {
	Ones  uint64
	Zeros uint64
}

// Witness is an armed set of observation accumulators over watched nets.
// It is arm-once, drain-per-cycle: the caller reads (and resets) the
// accumulator slice between kernel cycles, then calls Stop to disarm.
// Witnessing composes with fault forcing (the recorded value is the
// value Get returns, forcing and bridges applied), but its intended use
// is on a clean design, where the recorded values are the golden ones.
type Witness struct {
	k    *Kernel
	acc  []WitnessAcc
	nets []WitnessNet
	sigs []*Signal   // armed signal observers (parallel to nets; nil entries for array nets)
	arrs []*MemArray // arrays with at least one armed word, for Stop
}

// StartWitness arms read observation on the given nets and returns the
// witness handle. The nets must name distinct existing signals or array
// words; on error nothing is armed. Only one witness may be armed per
// net at a time (arming an already-witnessed net is an error). The
// kernel's hot path pays for witnessing only on the watched nets
// themselves, exactly like fault forcing.
func (k *Kernel) StartWitness(nets []WitnessNet) (*Witness, error) {
	w := &Witness{k: k, acc: make([]WitnessAcc, len(nets)), nets: append([]WitnessNet(nil), nets...)}
	w.sigs = make([]*Signal, len(nets))
	type arrNet struct {
		a *MemArray
		i int // index into nets/acc
	}
	var arrNets []arrNet
	seen := make(map[WitnessNet]bool, len(nets))
	for i, n := range nets {
		if seen[n] {
			return nil, fmt.Errorf("rtl: witness net %s[%d] repeated", n.Name, n.Word)
		}
		seen[n] = true
		if s := k.findSignal(n.Name); s != nil {
			if n.Word != 0 {
				return nil, fmt.Errorf("rtl: witness net %s[%d]: signals have no words", n.Name, n.Word)
			}
			if s.obs != nil {
				return nil, fmt.Errorf("rtl: witness net %s already witnessed", n.Name)
			}
			w.sigs[i] = s
			continue
		}
		a := k.findArray(n.Name)
		if a == nil {
			return nil, fmt.Errorf("rtl: unknown witness net %s", n.Name)
		}
		if n.Word < 0 || n.Word >= len(a.data) {
			return nil, fmt.Errorf("rtl: witness net %s[%d] out of range", n.Name, n.Word)
		}
		if a.obs != nil && a.obs[n.Word] != nil {
			return nil, fmt.Errorf("rtl: witness net %s[%d] already witnessed", n.Name, n.Word)
		}
		arrNets = append(arrNets, arrNet{a: a, i: i})
	}
	// Validation passed; arm everything.
	for i, s := range w.sigs {
		if s == nil {
			continue
		}
		s.obs = &w.acc[i]
		s.updateSlow()
	}
	for _, an := range arrNets {
		if an.a.obs == nil {
			an.a.obs = make([]*WitnessAcc, len(an.a.data))
			w.arrs = append(w.arrs, an.a)
		} else if !containsArr(w.arrs, an.a) {
			w.arrs = append(w.arrs, an.a)
		}
		an.a.obs[w.nets[an.i].Word] = &w.acc[an.i]
	}
	return w, nil
}

func containsArr(as []*MemArray, a *MemArray) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// Accs returns the live accumulator slice, indexed like the nets passed
// to StartWitness. Callers drain a cycle's observations by copying the
// entries out and zeroing them in place.
func (w *Witness) Accs() []WitnessAcc { return w.acc }

// Sample returns the present raw (committed, unforced) value of watched
// net i without recording an observation — the charge-sampling models'
// view of the net at an injection instant.
func (w *Witness) Sample(i int) uint64 {
	if s := w.sigs[i]; s != nil {
		return *s.curp
	}
	return w.k.findArray(w.nets[i].Name).data[w.nets[i].Word]
}

// Stop disarms every observer. The witness must be stopped before its
// kernel is reused for non-witnessed simulation (pooled campaign cores),
// and before arming a new witness over the same nets.
func (w *Witness) Stop() {
	for _, s := range w.sigs {
		if s != nil {
			s.obs = nil
			s.updateSlow()
		}
	}
	for _, a := range w.arrs {
		a.obs = nil
	}
	w.sigs, w.arrs = nil, nil
}

func (k *Kernel) findArray(name string) *MemArray {
	for _, a := range k.arrays {
		if a.name == name {
			return a
		}
	}
	return nil
}

// NodeValid reports whether n names an injectable bit of the design
// (Inject on it would not fail with a range or unknown-node error).
func (k *Kernel) NodeValid(n Node) bool {
	if s := k.findSignal(n.Name); s != nil {
		return n.Word == 0 && n.Bit >= 0 && n.Bit < s.width
	}
	if a := k.findArray(n.Name); a != nil {
		return n.Word >= 0 && n.Word < len(a.data) && n.Bit >= 0 && n.Bit < a.width
	}
	return false
}
