package rtl

import "testing"

// buildWitnessDesign is a small design with a conditionally-consumed
// register: the process reads src every cycle, but reads gated only on
// cycles where sel's low bit is set, and reads one word of a 4-word
// array when sel's bit 1 is set.
func buildWitnessDesign() (*Kernel, *Signal, *Signal, *Signal, *MemArray) {
	k := NewKernel()
	src := k.Reg("src", 32, 0)
	gated := k.Reg("gated", 32, 0)
	sel := k.Reg("sel", 8, 0)
	arr := k.Array("arr", 32, 4, 0)
	out := k.Reg("out", 32, 0)
	k.Comb(func() {
		v := src.Get()
		if sel.Get()&1 != 0 {
			v += gated.Get()
		}
		if sel.Get()&2 != 0 {
			v += arr.Read(2)
		}
		out.SetNext(v)
		src.SetNext(src.Get() + 1)
		sel.SetNext(sel.Get() + 1)
	})
	return k, src, gated, sel, arr
}

func TestWitnessRecordsOnlyConsumedReads(t *testing.T) {
	k, _, gated, _, arr := buildWitnessDesign()
	gated.SetNext(0x5)
	arr.Write(2, 0xf0)
	k.Cycle() // commit the seeds; sel=1 after this edge

	w, err := k.StartWitness([]WitnessNet{{Name: "gated"}, {Name: "arr", Word: 2}, {Name: "arr", Word: 3}})
	if err != nil {
		t.Fatal(err)
	}
	acc := w.Accs()

	// sel=1: gated read, arr not.
	k.Cycle()
	if acc[0].Ones != 0x5 || acc[0].Zeros&0xffffffff != ^uint64(0x5)&0xffffffff {
		t.Fatalf("gated acc after consumed read: %+v", acc[0])
	}
	if acc[1] != (WitnessAcc{}) || acc[2] != (WitnessAcc{}) {
		t.Fatalf("array words observed without being read: %+v %+v", acc[1], acc[2])
	}
	acc[0] = WitnessAcc{}

	// sel=2: arr[2] read, gated not.
	k.Cycle()
	if acc[0] != (WitnessAcc{}) {
		t.Fatalf("gated observed on a non-consuming cycle: %+v", acc[0])
	}
	if acc[1].Ones != 0xf0 {
		t.Fatalf("arr[2] acc: %+v", acc[1])
	}
	if acc[2] != (WitnessAcc{}) {
		t.Fatalf("unread word arr[3] observed: %+v", acc[2])
	}

	// Sample returns raw values without recording.
	acc[1] = WitnessAcc{}
	if got := w.Sample(1); got != 0xf0 {
		t.Fatalf("Sample(arr[2]) = %#x", got)
	}
	if got := w.Sample(0); got != 0x5 {
		t.Fatalf("Sample(gated) = %#x", got)
	}
	if acc[0] != (WitnessAcc{}) || acc[1] != (WitnessAcc{}) {
		t.Fatal("Sample recorded an observation")
	}

	w.Stop()
	k.Cycle() // sel=3: both consumed, but witness is stopped
	if acc[0] != (WitnessAcc{}) || acc[1] != (WitnessAcc{}) {
		t.Fatalf("observation after Stop: %+v %+v", acc[0], acc[1])
	}
	for _, s := range k.Signals() {
		if s.slow != 0 {
			t.Fatalf("signal %s still on slow path after Stop", s.Name())
		}
	}
}

func TestWitnessComposesWithForcing(t *testing.T) {
	k, _, gated, _, _ := buildWitnessDesign()
	gated.SetNext(0xff)
	k.Cycle()
	w, err := k.StartWitness([]WitnessNet{{Name: "gated"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Inject(Fault{Node: Node{Name: "gated", Bit: 0}, Model: StuckAt0}); err != nil {
		t.Fatal(err)
	}
	k.Cycle() // sel=1: gated consumed; witness sees the forced value
	if got := w.Accs()[0].Ones; got != 0xfe {
		t.Fatalf("witness recorded %#x, want forced 0xfe", got)
	}
	k.ClearFaults()
	w.Stop()
}

func TestWitnessErrors(t *testing.T) {
	k, _, _, _, _ := buildWitnessDesign()
	cases := [][]WitnessNet{
		{{Name: "nosuch"}},
		{{Name: "gated", Word: 1}},
		{{Name: "arr", Word: 4}},
		{{Name: "arr", Word: -1}},
		{{Name: "gated"}, {Name: "gated"}},
	}
	for _, nets := range cases {
		if _, err := k.StartWitness(nets); err == nil {
			t.Errorf("StartWitness(%v) succeeded", nets)
		}
	}
	// A failed arm must leave the kernel clean.
	for _, s := range k.Signals() {
		if s.slow != 0 {
			t.Fatalf("signal %s armed after failed StartWitness", s.Name())
		}
	}
	w, err := k.StartWitness([]WitnessNet{{Name: "gated"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.StartWitness([]WitnessNet{{Name: "gated"}}); err == nil {
		t.Error("double witness on one net succeeded")
	}
	w.Stop()
	if _, err := k.StartWitness([]WitnessNet{{Name: "gated"}}); err != nil {
		t.Errorf("re-arm after Stop: %v", err)
	}
}

// TestInjectForcedMatchesInject checks that InjectForced with the net's
// present raw value arms exactly what Inject arms, for every forcing
// model, and that a different sampled value shifts only the
// charge-sampling models.
func TestInjectForcedMatchesInject(t *testing.T) {
	for _, m := range []FaultModel{StuckAt0, StuckAt1, OpenLine, SETPulse} {
		ka, _, gateda, _, _ := buildWitnessDesign()
		kb, _, gatedb, _, _ := buildWitnessDesign()
		gateda.SetNext(0xa5)
		gatedb.SetNext(0xa5)
		ka.Cycle()
		kb.Cycle()
		f := Fault{Node: Node{Name: "gated", Bit: 0}, Model: m}
		if err := ka.Inject(f); err != nil {
			t.Fatal(err)
		}
		if err := kb.InjectForced(f, 0xa5); err != nil {
			t.Fatal(err)
		}
		ga, gb := ka.findSignal("gated"), kb.findSignal("gated")
		if ga.Get() != gb.Get() {
			t.Errorf("%v: Inject reads %#x, InjectForced(raw) reads %#x", m, ga.Get(), gb.Get())
		}
	}

	// OpenLine frozen from a *different* instant's sample: forced bit is
	// the sampled one, not the present one.
	k, _, gated, _, _ := buildWitnessDesign()
	gated.SetNext(0x1) // present value has bit 0 set
	k.Cycle()
	f := Fault{Node: Node{Name: "gated", Bit: 0}, Model: OpenLine}
	if err := k.InjectForced(f, 0x0); err != nil { // sampled at an instant where the bit was 0
		t.Fatal(err)
	}
	if got := k.findSignal("gated").Get(); got&1 != 0 {
		t.Errorf("open-line frozen value ignored the sample: read %#x", got)
	}

	if err := k.InjectForced(Fault{Node: Node{Name: "gated", Bit: 1}, Model: BitFlip}, 0); err == nil {
		t.Error("InjectForced(BitFlip) succeeded")
	}
}

func TestNodeValid(t *testing.T) {
	k, _, _, _, _ := buildWitnessDesign()
	valid := []Node{
		{Name: "gated", Bit: 0},
		{Name: "gated", Bit: 31},
		{Name: "arr", Word: 3, Bit: 31},
	}
	invalid := []Node{
		{Name: "nosuch", Bit: 0},
		{Name: "gated", Bit: 32},
		{Name: "gated", Word: 1, Bit: 0},
		{Name: "arr", Word: 4, Bit: 0},
		{Name: "arr", Word: 0, Bit: 32},
		{Name: "arr", Word: -1, Bit: 0},
	}
	for _, n := range valid {
		if !k.NodeValid(n) {
			t.Errorf("NodeValid(%v) = false", n)
		}
	}
	for _, n := range invalid {
		if k.NodeValid(n) {
			t.Errorf("NodeValid(%v) = true", n)
		}
	}
}

func TestStateEquals(t *testing.T) {
	k, _, _, _, _ := buildWitnessDesign()
	k.Cycle()
	k.Cycle()
	snap := k.Snapshot()
	if !k.StateEquals(snap) {
		t.Fatal("kernel differs from its own snapshot")
	}
	k.Cycle()
	if k.StateEquals(snap) {
		t.Fatal("advanced kernel still equals old snapshot")
	}
	if err := k.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !k.StateEquals(snap) {
		t.Fatal("restored kernel differs from snapshot")
	}
	// Array-state differences are seen too.
	k.Arrays()[0].Write(1, 0xdead)
	if k.StateEquals(snap) {
		t.Fatal("array divergence missed")
	}
}
