package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// serverMetrics instruments the HTTP transport. All handles are nil-safe
// no-ops when the server was built without WithObs.
type serverMetrics struct {
	requests      *obs.CounterVec
	latency       *obs.HistogramVec
	activeStreams *obs.Gauge
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	return serverMetrics{
		requests: r.CounterVec("http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		latency: r.HistogramVec("http_request_seconds",
			"HTTP request latency, by route pattern.", obs.DurationBuckets, "route"),
		activeStreams: r.Gauge("http_active_streams",
			"NDJSON progress streams currently open."),
	}
}

// statusRecorder captures the status code a handler writes so the
// middleware can label the request counter with it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher so the NDJSON stream endpoint keeps
// flushing per line through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with request counting and latency timing.
// The route label is the matched ServeMux pattern — bounded cardinality
// by construction — with unmatched requests grouped under "unmatched".
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sr, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.met.requests.With(route, httpCode(sr.code)).Inc()
		s.met.latency.With(route).Observe(time.Since(start).Seconds())
	})
}

// httpCode renders a status code label without fmt.
func httpCode(c int) string {
	if c >= 100 && c < 1000 {
		var b [3]byte
		b[0] = byte('0' + c/100)
		b[1] = byte('0' + c/10%10)
		b[2] = byte('0' + c%10)
		return string(b[:])
	}
	return "000"
}
