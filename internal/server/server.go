// Package server exposes the campaign job service (internal/jobs) over
// HTTP/JSON, with an NDJSON streaming endpoint for live campaign
// progress. It is the transport layer of cmd/faultserverd; all scheduling
// semantics (coalescing, content-addressed caching, cancellation) live in
// the jobs manager.
//
// API (all under /api/v1):
//
//	POST   /campaigns            submit a campaign (jobs.Request JSON);
//	                             201 for a fresh job, 200 when the
//	                             submission coalesced onto an in-flight
//	                             job or hit the result cache
//	GET    /campaigns            list jobs in submission order
//	GET    /campaigns/{id}       job status (result embedded when done)
//	GET    /campaigns/{id}/result canonical outcome JSON only — byte-
//	                             identical to `faultcampaign -json`
//	GET    /campaigns/{id}/stream NDJSON progress snapshots until the job
//	                             reaches a terminal state
//	DELETE /campaigns/{id}       cancel a queued or running job
//	GET    /workloads            bundled workload names
//	GET    /healthz              liveness plus scheduler counters
//
// Two probe endpoints live at the root (outside /api/v1), shaped for
// process supervisors and load balancers:
//
//	GET /healthz   liveness — 200 as soon as the process serves HTTP
//	               (same payload as /api/v1/healthz)
//	GET /readyz    readiness — 503 until the daemon calls SetReady
//	               (journal replayed, result store opened, recovered
//	               jobs resubmitted), 200 afterwards
//
// When the manager runs a shard pool, four more endpoints serve the
// shard protocol to remote `faultserverd -worker` processes:
//
//	POST   /shards/lease           pull the next experiment-range shard
//	                               (200 with a jobs.ShardLease, or 204
//	                               when no campaign has pending shards)
//	POST   /shards/{lease}/progress report an in-flight tally; the reply
//	                               says whether to cancel the shard
//	POST   /shards/{lease}/complete submit the shard's outcomes
//	POST   /shards/{lease}/fail    release the shard after a local error
//
// Sharding is scheduling, not content: shard-executed campaigns return
// byte-identical results to unsharded ones.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// Server routes HTTP traffic onto a jobs.Manager.
type Server struct {
	mgr *jobs.Manager
	mux *http.ServeMux

	// Observability: a nil registry leaves every handle a no-op and
	// /metrics serving an empty (valid) exposition.
	reg   *obs.Registry
	met   serverMetrics
	start time.Time
	// Boot info surfaced on /healthz (WithBootInfo).
	dataDir  string
	recovery *jobs.RecoveryInfo

	// ready gates /readyz: false (503) until the daemon finishes boot
	// work — durability recovery above all — and calls SetReady.
	ready atomic.Bool

	// Stream lifecycle: Drain waits for in-flight NDJSON progress streams
	// to flush their terminal snapshots before the daemon closes its
	// listener, so clients see clean EOFs instead of connection resets.
	streamMu sync.Mutex
	draining bool
	streams  sync.WaitGroup
}

// Option configures a Server beyond its manager.
type Option func(*Server)

// WithObs exposes reg on GET /metrics and instruments every route with
// request/latency series. Purely observational: the API payloads are
// identical with or without it.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithBootInfo surfaces the daemon's durability mode and recovery
// summary on /healthz.
func WithBootInfo(info jobs.RecoveryInfo, dataDir string) Option {
	return func(s *Server) {
		s.dataDir = dataDir
		s.recovery = &info
	}
}

// New builds the HTTP front end of a job manager.
func New(mgr *jobs.Manager, options ...Option) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range options {
		o(s)
	}
	s.met = newServerMetrics(s.reg)
	s.mux.HandleFunc("POST /api/v1/campaigns", s.submit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.list)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.status)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.result)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/stream", s.stream)
	s.mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.cancel)
	s.mux.HandleFunc("GET /api/v1/workloads", s.workloads)
	s.mux.HandleFunc("GET /api/v1/healthz", s.healthz)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("POST /api/v1/shards/lease", s.shardLease)
	s.mux.HandleFunc("POST /api/v1/shards/{lease}/progress", s.shardProgress)
	s.mux.HandleFunc("POST /api/v1/shards/{lease}/complete", s.shardComplete)
	s.mux.HandleFunc("POST /api/v1/shards/{lease}/fail", s.shardFail)
	return s
}

// Handler returns the root handler: the instrumented mux.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// SetReady flips /readyz to 200. Call it once boot work that readiness
// promises — journal replay, result-store open, recovered-job
// resubmission — has completed.
func (s *Server) SetReady() { s.ready.Store(true) }

// Drain marks the server as shutting down — new stream subscriptions are
// refused with 503 — and waits for every in-flight NDJSON progress
// stream to finish flushing (or ctx to expire). Call it after closing
// the job manager (which terminates the jobs the streams are watching)
// and before http.Server.Shutdown, so the connections Shutdown waits on
// have already gone idle and no stream is cut mid-line.
func (s *Server) Drain(ctx context.Context) error {
	s.streamMu.Lock()
	s.draining = true
	s.streamMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.streams.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginStream registers a live stream unless the server is draining.
func (s *Server) beginStream() bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.draining {
		return false
	}
	s.streams.Add(1)
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errCode maps manager errors onto HTTP status codes.
func errCode(err error) int {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrTerminal):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	// A campaign request is a few hundred bytes; bound the body so one
	// oversized POST cannot exhaust server memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, fresh, err := s.mgr.Submit(req)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	code := http.StatusOK
	if fresh {
		code = http.StatusCreated
	}
	writeJSON(w, code, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.Status `json:"jobs"`
	}{Jobs: s.mgr.List()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result serves the bare canonical outcome, the payload that must be
// byte-identical across duplicate submissions and diffable against
// `faultcampaign -json`.
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	if st.Result == nil {
		writeErr(w, http.StatusConflict,
			errors.New("jobs: job has no result yet (state "+string(st.State)+")"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	jobs.EncodeOutcome(w, st.Result)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	// Cancel snapshots the status under its own lock; re-resolving the ID
	// here could 404 if a concurrent submission prunes the finished job.
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// stream writes NDJSON progress snapshots (one jobs.Progress per line,
// flushed immediately) until the job reaches a terminal state or the
// client disconnects. The last line is always the terminal snapshot
// unless the client left first.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	if !s.beginStream() {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("server: shutting down, not accepting new streams"))
		return
	}
	defer s.streams.Done()
	s.met.activeStreams.Inc()
	defer s.met.activeStreams.Dec()
	ch, unsub, err := s.mgr.Watch(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case p, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(p); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads []string `json:"workloads"`
	}{Workloads: workloads.Names()})
}

// recoverySummary is the /healthz rendering of jobs.RecoveryInfo.
type recoverySummary struct {
	StoredResults   int  `json:"stored_results"`
	ResumedJobs     int  `json:"resumed_jobs"`
	RecoveredShards int  `json:"recovered_shards"`
	TornTail        bool `json:"torn_tail"`
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		Status        string           `json:"status"`
		UptimeSeconds float64          `json:"uptime_seconds"`
		Mode          string           `json:"mode"`
		DataDir       string           `json:"data_dir,omitempty"`
		Recovery      *recoverySummary `json:"recovery,omitempty"`
		Stats         jobs.Stats       `json:"stats"`
		Shards        *jobs.ShardStats `json:"shards,omitempty"`
	}{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Mode:          "ephemeral",
		DataDir:       s.dataDir,
		Stats:         s.mgr.ManagerStats(),
	}
	if s.dataDir != "" {
		resp.Mode = "durable"
	}
	if s.recovery != nil {
		resp.Recovery = &recoverySummary{
			StoredResults:   s.recovery.StoredResults,
			ResumedJobs:     s.recovery.ResumedJobs,
			RecoveredShards: s.recovery.RecoveredShards,
			TornTail:        s.recovery.TornTail,
		}
	}
	if pool := s.mgr.ShardPool(); pool != nil {
		st := pool.Stats()
		resp.Shards = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyz answers readiness probes: 503 while the daemon is still booting
// (durability recovery in flight), 200 once SetReady ran. Liveness is
// /healthz; the two differ exactly during recovery, which is the window
// supervisors must not route traffic into.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "starting"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

// pool resolves the manager's shard pool, answering 404 when sharded
// execution is not enabled on this daemon.
func (s *Server) pool(w http.ResponseWriter) *jobs.ShardPool {
	p := s.mgr.ShardPool()
	if p == nil {
		writeErr(w, http.StatusNotFound, jobs.ErrNoShards)
	}
	return p
}

// shardLease hands the next pending shard of any active campaign to a
// remote worker: 200 with the lease, or 204 when nothing is pending.
func (s *Server) shardLease(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w)
	if p == nil {
		return
	}
	var req struct {
		Worker string `json:"worker"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Worker == "" {
		req.Worker = "remote"
	}
	lease, ok := p.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

// shardProgress folds a worker's in-flight tally. The reply's cancel
// field tells the worker to stop the shard (the campaign converged, was
// cancelled, or no longer tracks this lease) and submit what it has.
func (s *Server) shardProgress(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w)
	if p == nil {
		return
	}
	var req struct {
		Done     int `json:"done"`
		Failures int `json:"failures"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cancel := p.Progress(r.PathValue("lease"), req.Done, req.Failures)
	writeJSON(w, http.StatusOK, struct {
		Cancel bool `json:"cancel"`
	}{Cancel: cancel})
}

// shardComplete merges a finished (or stop-cancelled partial) shard.
// 410 Gone tells the worker its lease expired and the work was redone
// elsewhere — discard and move on.
func (s *Server) shardComplete(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w)
	if p == nil {
		return
	}
	var out jobs.ShardOutput
	// A shard of a large campaign carries per-experiment outcomes; size
	// the bound like a result payload, not a control message.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&out); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	err := p.Complete(jobs.ShardResult{Lease: r.PathValue("lease"), Output: out})
	switch {
	case errors.Is(err, jobs.ErrNoLease):
		writeErr(w, http.StatusGone, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, struct{}{})
	}
}

// shardFail releases a lease after a worker-side error so the shard can
// be re-leased; the worker keeps polling for new work afterwards.
func (s *Server) shardFail(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w)
	if p == nil {
		return
	}
	var req struct {
		Error string `json:"error"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	err := p.Fail(r.PathValue("lease"), req.Error)
	switch {
	case errors.Is(err, jobs.ErrNoLease):
		writeErr(w, http.StatusGone, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, struct{}{})
	}
}
