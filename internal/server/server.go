// Package server exposes the campaign job service (internal/jobs) over
// HTTP/JSON, with an NDJSON streaming endpoint for live campaign
// progress. It is the transport layer of cmd/faultserverd; all scheduling
// semantics (coalescing, content-addressed caching, cancellation) live in
// the jobs manager.
//
// API (all under /api/v1):
//
//	POST   /campaigns            submit a campaign (jobs.Request JSON);
//	                             201 for a fresh job, 200 when the
//	                             submission coalesced onto an in-flight
//	                             job or hit the result cache
//	GET    /campaigns            list jobs in submission order
//	GET    /campaigns/{id}       job status (result embedded when done)
//	GET    /campaigns/{id}/result canonical outcome JSON only — byte-
//	                             identical to `faultcampaign -json`
//	GET    /campaigns/{id}/stream NDJSON progress snapshots until the job
//	                             reaches a terminal state
//	DELETE /campaigns/{id}       cancel a queued or running job
//	GET    /workloads            bundled workload names
//	GET    /healthz              liveness plus scheduler counters
package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/workloads"
)

// Server routes HTTP traffic onto a jobs.Manager.
type Server struct {
	mgr *jobs.Manager
	mux *http.ServeMux
}

// New builds the HTTP front end of a job manager.
func New(mgr *jobs.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/v1/campaigns", s.submit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.list)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.status)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.result)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/stream", s.stream)
	s.mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.cancel)
	s.mux.HandleFunc("GET /api/v1/workloads", s.workloads)
	s.mux.HandleFunc("GET /api/v1/healthz", s.healthz)
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errCode maps manager errors onto HTTP status codes.
func errCode(err error) int {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrTerminal):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	// A campaign request is a few hundred bytes; bound the body so one
	// oversized POST cannot exhaust server memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, fresh, err := s.mgr.Submit(req)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	code := http.StatusOK
	if fresh {
		code = http.StatusCreated
	}
	writeJSON(w, code, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.Status `json:"jobs"`
	}{Jobs: s.mgr.List()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result serves the bare canonical outcome, the payload that must be
// byte-identical across duplicate submissions and diffable against
// `faultcampaign -json`.
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	if st.Result == nil {
		writeErr(w, http.StatusConflict,
			errors.New("jobs: job has no result yet (state "+string(st.State)+")"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	jobs.EncodeOutcome(w, st.Result)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	// Cancel snapshots the status under its own lock; re-resolving the ID
	// here could 404 if a concurrent submission prunes the finished job.
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// stream writes NDJSON progress snapshots (one jobs.Progress per line,
// flushed immediately) until the job reaches a terminal state or the
// client disconnects. The last line is always the terminal snapshot
// unless the client left first.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	ch, unsub, err := s.mgr.Watch(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case p, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(p); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads []string `json:"workloads"`
	}{Workloads: workloads.Names()})
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string     `json:"status"`
		Stats  jobs.Stats `json:"stats"`
	}{Status: "ok", Stats: s.mgr.ManagerStats()})
}
