package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

// small is the same cheap real campaign the jobs tests use.
var small = jobs.Request{
	Workload:         "excerptA",
	Target:           "iu",
	Models:           []string{"sa1"},
	Nodes:            4,
	Seed:             1,
	InjectAtFraction: 0.3,
}

func newTestServer(t *testing.T, opts jobs.ManagerOptions) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr := jobs.NewManager(opts)
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts, mgr
}

func post(t *testing.T, url string, req jobs.Request) (*http.Response, jobs.Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestSubmitStatusStreamResult drives the happy path end to end with the
// real engine: submit, stream NDJSON progress to completion, fetch the
// result, and check the acceptance contract — a duplicate submission
// coalesces or cache-hits (engine runs once), both result payloads are
// byte-identical, and they match the canonical encoding `faultcampaign
// -json` produces for the same spec.
func TestSubmitStatusStreamResult(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.ManagerOptions{Concurrency: 2})

	resp1, st1 := post(t, ts.URL, small)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d, want 201", resp1.StatusCode)
	}
	resp2, st2 := post(t, ts.URL, small)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: %d, want 200", resp2.StatusCode)
	}
	if st2.ID != st1.ID {
		t.Fatalf("duplicate submission got %s, want %s", st2.ID, st1.ID)
	}

	// Stream progress until the terminal snapshot.
	sresp, err := http.Get(ts.URL + "/api/v1/campaigns/" + st1.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var last jobs.Progress
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("stream produced no snapshots")
	}
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal snapshot %+v", last)
	}
	if last.State != jobs.StateDone || last.Done != last.Total || last.Total != 4 {
		t.Fatalf("terminal snapshot %+v, want done 4/4", last)
	}
	if last.Pf < last.PfLow || last.Pf > last.PfHigh {
		t.Errorf("progressive Pf %v outside Wilson interval [%v, %v]", last.Pf, last.PfLow, last.PfHigh)
	}

	// Status now embeds the result.
	code, body := get(t, ts.URL+"/api/v1/campaigns/"+st1.ID)
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	var final jobs.Status
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone || final.Result == nil {
		t.Fatalf("final status %+v", final)
	}

	// Result payloads: byte-identical across fetches and against the
	// CLI's canonical encoding.
	code, res1 := get(t, ts.URL+"/api/v1/campaigns/"+st1.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	_, res2 := get(t, ts.URL+"/api/v1/campaigns/"+st1.ID+"/result")
	if !bytes.Equal(res1, res2) {
		t.Fatal("repeated result fetches differ")
	}
	out, err := jobs.Execute(context.Background(), small, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := jobs.EncodeOutcome(&cli, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, cli.Bytes()) {
		t.Fatalf("server result differs from CLI canonical encoding:\n%s\nvs\n%s", res1, cli.Bytes())
	}

	// The engine ran exactly once for the two submissions.
	if s := mgr.ManagerStats(); s.Executed != 1 || s.Submitted != 2 {
		t.Errorf("stats %+v: want 2 submissions, 1 execution", s)
	}

	// A third submission after completion is a cache hit with the same
	// job and an immediately-available result.
	resp3, st3 := post(t, ts.URL, small)
	if resp3.StatusCode != http.StatusOK || st3.ID != st1.ID || st3.Result == nil {
		t.Fatalf("cache-hit submit: %d id=%s result=%v", resp3.StatusCode, st3.ID, st3.Result)
	}
}

func TestListAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, jobs.ManagerOptions{Concurrency: 1})
	post(t, ts.URL, small)
	code, body := get(t, ts.URL+"/api/v1/campaigns")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("list has %d jobs, want 1", len(list.Jobs))
	}
	code, body = get(t, ts.URL+"/api/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body = get(t, ts.URL+"/api/v1/workloads")
	if code != http.StatusOK || !strings.Contains(string(body), "excerptA") {
		t.Fatalf("workloads: %d %s", code, body)
	}
}

func TestCancelEndpoint(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	ts, _ := newTestServer(t, jobs.ManagerOptions{
		Concurrency: 1,
		Executor: func(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &jobs.Outcome{Request: req}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(release)

	_, st := post(t, ts.URL, small)
	<-started

	creq, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, ts.URL+"/api/v1/campaigns/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status after cancel: %d", code)
		}
		var got jobs.Status
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == jobs.StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v after cancel", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Cancelling a terminal job conflicts.
	resp, err = http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel: %d, want 409", resp.StatusCode)
	}
}

func TestValidationAndErrors(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	ts, _ := newTestServer(t, jobs.ManagerOptions{
		Concurrency: 1,
		Executor: func(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &jobs.Outcome{Request: req}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(release)

	// Malformed body and invalid request fields are 400s.
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	badModel := small
	badModel.Models = []string{"sa9"}
	if resp, _ := post(t, ts.URL, badModel); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model: %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"workload":"x","bogus":1}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("unknown field: %d, want 400", resp.StatusCode)
		}
	}

	// Unknown job IDs are 404s on every per-job route.
	for _, path := range []string{"", "/result", "/stream"} {
		if code, _ := get(t, ts.URL+"/api/v1/campaigns/job-999999"+path); code != http.StatusNotFound {
			t.Errorf("unknown id on %q: %d, want 404", path, code)
		}
	}

	// Result before completion is a 409.
	_, st := post(t, ts.URL, small)
	<-started
	if code, _ := get(t, ts.URL+"/api/v1/campaigns/"+st.ID+"/result"); code != http.StatusConflict {
		t.Errorf("early result: %d, want 409", code)
	}
}

// TestConcurrentSubmissions races many identical HTTP submissions under
// -race: exactly one engine execution, one job ID, and identical result
// bytes for every client.
func TestConcurrentSubmissions(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.ManagerOptions{Concurrency: 2})

	const n = 10
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(small)
			resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st jobs.Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, others %s", i, ids[i], ids[0])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	var first []byte
	for i := 0; i < 3; i++ {
		code, body := get(t, ts.URL+fmt.Sprintf("/api/v1/campaigns/%s/result", ids[0]))
		if code != http.StatusOK {
			t.Fatalf("result fetch %d: %d", i, code)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatal("result bytes differ between fetches")
		}
	}
	if s := mgr.ManagerStats(); s.Executed != 1 {
		t.Fatalf("engine ran %d times for %d submissions, want 1", s.Executed, n)
	}
}
