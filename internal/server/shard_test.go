package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

// shardReq is a campaign worth sharding: 24 nodes x 3 models.
var shardReq = jobs.Request{
	Workload:         "excerptA",
	Target:           "iu",
	Nodes:            24,
	Seed:             1,
	InjectAtFraction: 0.3,
}

// TestShardEndpointsDisabled: a daemon without a shard pool answers the
// shard surface with 404 so misconfigured workers fail loudly.
func TestShardEndpointsDisabled(t *testing.T) {
	ts, _ := newTestServer(t, jobs.ManagerOptions{Concurrency: 1})
	resp, err := http.Post(ts.URL+"/api/v1/shards/lease", "application/json",
		strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("lease on unsharded daemon: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestRemoteWorkerEndToEnd is the full distributed path in one process:
// a remote-only coordinator (no local shard execution) serves a
// campaign's shards over HTTP to three server.Worker loops, and the
// merged result is byte-identical to unsharded execution.
func TestRemoteWorkerEndToEnd(t *testing.T) {
	ts, mgr := newTestServer(t, jobs.ManagerOptions{
		Concurrency:       1,
		Shards:            5,
		ShardLocalWorkers: -1, // every shard must travel over HTTP
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w := &server.Worker{
			Coordinator: ts.URL,
			Name:        []string{"w1", "w2", "w3"}[i],
			Workers:     2,
			Poll:        10 * time.Millisecond,
		}
		go w.Run(ctx)
	}

	resp, st := post(t, ts.URL, shardReq)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	final, err := mgr.Wait(wctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	code, body := get(t, ts.URL+"/api/v1/campaigns/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	want, err := jobs.Execute(context.Background(), shardReq, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jobs.EncodeOutcome(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, buf.Bytes()) {
		t.Fatalf("remote-worker result diverged from unsharded execution:\n--- server\n%s\n--- unsharded\n%s", body, buf.Bytes())
	}

	// The pool's accounting surfaces through healthz.
	code, hb := get(t, ts.URL+"/api/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var health struct {
		Shards *jobs.ShardStats `json:"shards"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Shards == nil || health.Shards.Completed != 5 {
		t.Fatalf("healthz shards = %+v, want 5 completed", health.Shards)
	}
	if len(health.Shards.Workers) == 0 {
		t.Fatal("healthz shards missing worker tallies")
	}
}

// TestShardProtocolEdges exercises the HTTP mapping of lease errors: an
// unknown lease completes with 410 Gone, progress on it asks the worker
// to cancel, and a malformed body is a 400.
func TestShardProtocolEdges(t *testing.T) {
	ts, _ := newTestServer(t, jobs.ManagerOptions{
		Concurrency:       1,
		Shards:            2,
		ShardLocalWorkers: -1,
	})
	resp, err := http.Post(ts.URL+"/api/v1/shards/nope/complete", "application/json",
		strings.NewReader(`{"indices":[],"experiments":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown lease complete: HTTP %d, want 410", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/v1/shards/nope/progress", "application/json",
		strings.NewReader(`{"done":1,"failures":0}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Cancel bool `json:"cancel"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rep.Cancel {
		t.Fatalf("unknown lease progress: HTTP %d cancel=%v, want 200 cancel=true", resp.StatusCode, rep.Cancel)
	}
	resp, err = http.Post(ts.URL+"/api/v1/shards/lease", "application/json",
		strings.NewReader(`{bad json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed lease body: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestDrainStreams pins the shutdown ordering fix: after the manager
// closes, Drain waits for in-flight NDJSON streams to flush their
// terminal snapshot, and new stream subscriptions are refused with 503
// instead of racing the closing listener.
func TestDrainStreams(t *testing.T) {
	release := make(chan struct{})
	mgr := jobs.NewManager(jobs.ManagerOptions{
		Concurrency: 1,
		Executor: func(ctx context.Context, req jobs.Request, workers int, tap jobs.Tap) (*jobs.Outcome, error) {
			tap(0, 2, 0)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	srv := server.New(mgr)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})

	_, st := post(t, ts.URL, small)

	// Open a live stream and prove it is attached (first snapshot read).
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	first := make([]byte, 1)
	if _, err := resp.Body.Read(first); err != nil {
		t.Fatal(err)
	}

	streamDone := make(chan error, 1)
	go func() {
		// Drain the rest of the stream; a clean EOF (no reset) is the fix.
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				streamDone <- err
				return
			}
		}
	}()

	// Shut down in the daemon's order: manager first (ends the job and
	// the watcher), then drain the streams.
	go func() {
		time.Sleep(50 * time.Millisecond)
		mgr.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case err := <-streamDone:
		if err.Error() != "EOF" {
			t.Fatalf("stream ended with %v, want clean EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open after Drain returned")
	}

	// New subscriptions are refused while draining.
	resp2, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream during drain: HTTP %d, want 503", resp2.StatusCode)
	}
}
