package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// Worker is the pull side of the shard protocol: the loop behind
// `faultserverd -worker -coordinator=URL`. It polls the coordinator for
// experiment-range shards, executes each on the process-wide pooled
// fault runner (the golden run of a campaign is simulated once per
// worker process and reused across its shards), streams throttled
// partial tallies back, and submits the per-experiment outcomes.
//
// The loop is crash-only by design: a worker that dies mid-shard simply
// stops reporting, and the coordinator requeues the shard once its
// lease TTL expires. Conversely a worker whose coordinator disappears
// (progress answers cancel, or complete answers 410 Gone) abandons the
// shard and keeps polling.
type Worker struct {
	// Coordinator is the coordinator daemon's base URL
	// (e.g. http://127.0.0.1:8080).
	Coordinator string
	// Name identifies the worker in leases and pool statistics.
	Name string
	// Workers bounds the intra-shard experiment parallelism
	// (0 = GOMAXPROCS).
	Workers int
	// Poll is the idle re-poll interval when the coordinator has no
	// pending shards. Default 250ms.
	Poll time.Duration
	// BackoffMax caps the exponential backoff between failed coordinator
	// polls. Default 5s. Backoff sleeps are jittered (uniform over
	// [d/2, d)) so a fleet of workers orphaned by a coordinator crash
	// does not re-lease in lockstep the moment it restarts.
	BackoffMax time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Log, when non-nil, receives worker lifecycle messages; nil
	// discards.
	Log *slog.Logger
	// Obs, when non-nil, receives the worker's counters
	// (worker_shards_executed_total, worker_report_retries_total,
	// worker_dropped_total) and the current lease-poll backoff gauge —
	// the series behind a worker-mode -metrics-addr listener.
	Obs *obs.Registry

	stats WorkerStats
	// backoffNanos is the current lease-poll backoff, exported as the
	// worker_backoff_seconds gauge: zero while the coordinator answers,
	// climbing toward BackoffMax while it is unreachable.
	backoffNanos int64
}

// WorkerStats counts a worker's shard and report-channel outcomes.
// Retries are re-sent completion/failure reports after a transient
// coordinator error; Dropped are shards whose completed work was
// abandoned after every retry failed (the lease TTL requeues them — the
// experiments are re-executed, never lost).
type WorkerStats struct {
	ShardsExecuted int64 `json:"shards_executed"`
	ReportRetries  int64 `json:"report_retries"`
	Dropped        int64 `json:"dropped"`
}

// Stats returns the worker's counters. Safe for concurrent use.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		ShardsExecuted: atomic.LoadInt64(&w.stats.ShardsExecuted),
		ReportRetries:  atomic.LoadInt64(&w.stats.ReportRetries),
		Dropped:        atomic.LoadInt64(&w.stats.Dropped),
	}
}

// RegisterMetrics exposes the worker's counters on reg at scrape time.
// Call once before Run; a nil registry is a no-op.
func (w *Worker) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("worker_shards_executed_total",
		"Shards this worker leased and executed.", func() float64 {
			return float64(atomic.LoadInt64(&w.stats.ShardsExecuted))
		})
	reg.CounterFunc("worker_report_retries_total",
		"Terminal shard reports re-sent after a transient coordinator error.", func() float64 {
			return float64(atomic.LoadInt64(&w.stats.ReportRetries))
		})
	reg.CounterFunc("worker_dropped_total",
		"Completed shards abandoned after every report retry failed.", func() float64 {
			return float64(atomic.LoadInt64(&w.stats.Dropped))
		})
	reg.GaugeFunc("worker_backoff_seconds",
		"Current lease-poll backoff (zero while the coordinator answers).", func() float64 {
			return time.Duration(atomic.LoadInt64(&w.backoffNanos)).Seconds()
		})
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.New(slog.DiscardHandler)
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 250 * time.Millisecond
}

func (w *Worker) backoffMax() time.Duration {
	if w.BackoffMax > 0 {
		return w.BackoffMax
	}
	return 5 * time.Second
}

// Run pulls and executes shards until ctx is cancelled. Transient
// coordinator errors (connection refused, 5xx) back off — exponentially,
// jittered, capped at BackoffMax — and retry: workers are expected to
// outlive coordinator restarts, and the jitter spreads a whole fleet's
// re-lease stampede after one.
func (w *Worker) Run(ctx context.Context) error {
	w.RegisterMetrics(w.Obs)
	defer func() {
		// The final line a dying worker leaves behind: how much it did and
		// how much of its work had to be abandoned to the lease TTL.
		st := w.Stats()
		w.log().Info("worker shutting down",
			"shards_executed", st.ShardsExecuted,
			"report_retries", st.ReportRetries,
			"dropped", st.Dropped)
	}()
	backoff := w.poll()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.lease()
		if err != nil {
			atomic.StoreInt64(&w.backoffNanos, int64(backoff))
			w.log().Warn("lease poll failed", "error", err, "backoff", backoff)
			if !sleepJitter(ctx, backoff) {
				return ctx.Err()
			}
			if backoff < w.backoffMax() {
				backoff *= 2
				if backoff > w.backoffMax() {
					backoff = w.backoffMax()
				}
			}
			continue
		}
		backoff = w.poll()
		atomic.StoreInt64(&w.backoffNanos, 0)
		if lease == nil {
			if !sleep(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		w.runShard(ctx, lease)
	}
}

// sleep waits d or until ctx dies; it reports whether ctx is still live.
func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// sleepJitter waits a uniform duration in [d/2, d). Thundering-herd
// breaker: after a coordinator restart every orphaned worker is in the
// same backoff state, and identical sleeps would land their re-lease
// polls in the same instant.
func sleepJitter(ctx context.Context, d time.Duration) bool {
	if d <= 1 {
		return sleep(ctx, d)
	}
	return sleep(ctx, d/2+time.Duration(rand.Int63n(int64(d/2))))
}

// runShard executes one leased shard and reports it back.
func (w *Worker) runShard(ctx context.Context, lease *jobs.ShardLease) {
	atomic.AddInt64(&w.stats.ShardsExecuted, 1)
	w.log().Info("shard leased", "shard", lease.Range.Index,
		"start", lease.Range.Start, "end", lease.Range.End,
		"campaign", lease.Key[:min(12, len(lease.Key))])
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Throttle progress reports to ~16 per shard plus the first one, so
	// a large campaign doesn't turn into an HTTP request per experiment.
	stride := (lease.Range.End-lease.Range.Start)/16 + 1
	var mu sync.Mutex
	lastDone, lastFailures := 0, 0
	report := func(done, failures int) {
		// Serialize reports: ExecuteShard's tap is already serialized,
		// but the HTTP round trip must not reorder tallies.
		mu.Lock()
		defer mu.Unlock()
		if w.progress(lease.Lease, done, failures) {
			cancel()
		}
	}
	// Keepalive: the golden-run simulation and long experiments produce
	// no taps; refresh the lease inside the coordinator's TTL so a live
	// worker never loses its shard to the reclaim janitor.
	kaStop := make(chan struct{})
	defer close(kaStop)
	go func() {
		tick := time.NewTicker(jobs.KeepaliveInterval(time.Duration(lease.LeaseTTLSeconds * float64(time.Second))))
		defer tick.Stop()
		for {
			select {
			case <-kaStop:
				return
			case <-sctx.Done():
				return
			case <-tick.C:
				mu.Lock()
				d, f := lastDone, lastFailures
				mu.Unlock()
				report(d, f)
			}
		}
	}()
	out, err := jobs.ExecuteShardObs(sctx, lease.Request, lease.Range.Start, lease.Range.End, w.Workers,
		func(done, total, failures int) {
			mu.Lock()
			lastDone, lastFailures = done, failures
			mu.Unlock()
			if done != 1 && done != total && done%stride != 0 {
				return
			}
			report(done, failures)
		}, w.Obs)
	if out == nil {
		// The engine never produced anything (runner build failure or the
		// worker's own shutdown): release the lease for someone else.
		w.log().Warn("shard failed", "shard", lease.Range.Index, "error", err)
		w.fail(ctx, lease.Lease, fmt.Sprintf("%v", err))
		return
	}
	// Completed, cancelled by the coordinator's stop rule, or the worker
	// is shutting down mid-shard: submit what ran. The coordinator folds
	// a partial once the campaign has stopped and requeues it otherwise.
	w.complete(ctx, lease.Lease, out)
}

// lease asks for the next shard; nil without error means no work.
func (w *Worker) lease() (*jobs.ShardLease, error) {
	body, _ := json.Marshal(struct {
		Worker string `json:"worker"`
	}{Worker: w.Name})
	resp, err := w.post(w.Coordinator+"/api/v1/shards/lease", body)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var lease jobs.ShardLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, err
		}
		return &lease, nil
	default:
		return nil, fmt.Errorf("lease: HTTP %d", resp.StatusCode)
	}
}

// progress reports a tally; true means cancel the shard.
func (w *Worker) progress(lease string, done, failures int) (cancel bool) {
	body, _ := json.Marshal(struct {
		Done     int `json:"done"`
		Failures int `json:"failures"`
	}{Done: done, Failures: failures})
	resp, err := w.post(w.Coordinator+"/api/v1/shards/"+lease+"/progress", body)
	if err != nil {
		// A transient network error is not a cancellation: keep computing
		// and let the next report (or the TTL) sort it out.
		w.log().Debug("progress report failed", "error", err)
		return false
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return true
	}
	var rep struct {
		Cancel bool `json:"cancel"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return false
	}
	return rep.Cancel
}

// reportAttempts bounds terminal-report retries: enough to ride out a
// coordinator restart (with backoff the window is several seconds),
// bounded so a worker never wedges on a permanently dead coordinator —
// past it the lease TTL requeues the shard and the work is merely
// re-executed, never lost.
const reportAttempts = 5

// complete submits a shard's outcomes, retrying transient coordinator
// errors with jittered backoff. Silently dropping this POST — the old
// behaviour — discarded the entire shard's completed experiments on one
// flaky round trip; now only exhausting every retry does, and that is
// counted (WorkerStats.Dropped) and logged.
func (w *Worker) complete(ctx context.Context, lease string, out *jobs.ShardOutput) {
	body, err := json.Marshal(out)
	if err != nil {
		w.log().Error("encoding shard result failed", "error", err)
		return
	}
	w.report(ctx, "complete", w.Coordinator+"/api/v1/shards/"+lease+"/complete", body,
		fmt.Sprintf("shard result (%d experiments)", len(out.Experiments)))
}

// fail releases a lease after a worker-side error, with the same retry
// discipline as complete: an undelivered failure report leaves the
// shard pinned until the lease TTL instead of re-leasing it promptly.
func (w *Worker) fail(ctx context.Context, lease, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.report(ctx, "fail", w.Coordinator+"/api/v1/shards/"+lease+"/fail", body, "failure report")
}

// report delivers one terminal shard report. Transient errors (network,
// 5xx) retry with jittered exponential backoff; 410 Gone (lease
// expired, work redone elsewhere) and other 4xx answers are permanent.
// A worker already shutting down gets one quick retry instead of the
// full schedule so the final partial still has a chance to land without
// stalling process exit.
func (w *Worker) report(ctx context.Context, kind, url string, body []byte, what string) {
	backoff := 250 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := w.post(url, body)
		if err == nil {
			code := resp.StatusCode
			drain(resp)
			switch {
			case code == http.StatusOK:
				if attempt > 1 {
					w.log().Info("report delivered after retries", "kind", kind, "attempt", attempt)
				}
				return
			case code == http.StatusGone:
				w.log().Info("lease expired, work redone elsewhere; discarding", "kind", kind)
				return
			case code >= 400 && code < 500:
				w.log().Warn("permanent report rejection; discarding", "kind", kind, "code", code, "what", what)
				return
			}
			err = fmt.Errorf("HTTP %d", code)
		}
		if attempt >= reportAttempts || (ctx.Err() != nil && attempt >= 2) {
			atomic.AddInt64(&w.stats.Dropped, 1)
			w.log().Warn("dropping report; the lease TTL will requeue the shard",
				"kind", kind, "error", err, "attempts", attempt, "what", what)
			return
		}
		atomic.AddInt64(&w.stats.ReportRetries, 1)
		w.log().Warn("report failed, retrying", "kind", kind, "error", err,
			"attempt", attempt, "max_attempts", reportAttempts, "backoff", backoff)
		if ctx.Err() != nil {
			time.Sleep(200 * time.Millisecond) // shutting down: one quick retry
		} else {
			sleepJitter(ctx, backoff)
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) post(url string, body []byte) (*http.Response, error) {
	// Reports must still reach the coordinator while the worker's own
	// ctx is shutting down (the final partial complete), so requests run
	// on a short independent timeout instead of ctx.
	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the request's timeout context with its body.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	b.cancel()
	return b.ReadCloser.Close()
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
