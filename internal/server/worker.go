package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
)

// Worker is the pull side of the shard protocol: the loop behind
// `faultserverd -worker -coordinator=URL`. It polls the coordinator for
// experiment-range shards, executes each on the process-wide pooled
// fault runner (the golden run of a campaign is simulated once per
// worker process and reused across its shards), streams throttled
// partial tallies back, and submits the per-experiment outcomes.
//
// The loop is crash-only by design: a worker that dies mid-shard simply
// stops reporting, and the coordinator requeues the shard once its
// lease TTL expires. Conversely a worker whose coordinator disappears
// (progress answers cancel, or complete answers 410 Gone) abandons the
// shard and keeps polling.
type Worker struct {
	// Coordinator is the coordinator daemon's base URL
	// (e.g. http://127.0.0.1:8080).
	Coordinator string
	// Name identifies the worker in leases and pool statistics.
	Name string
	// Workers bounds the intra-shard experiment parallelism
	// (0 = GOMAXPROCS).
	Workers int
	// Poll is the idle re-poll interval when the coordinator has no
	// pending shards. Default 250ms.
	Poll time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Log, when non-nil, receives worker lifecycle messages.
	Log *log.Logger
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Log != nil {
		w.Log.Printf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 250 * time.Millisecond
}

// Run pulls and executes shards until ctx is cancelled. Transient
// coordinator errors (connection refused, 5xx) back off and retry —
// workers are expected to outlive coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.poll()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.lease()
		if err != nil {
			w.logf("lease: %v (retrying in %v)", err, backoff)
			if !sleep(ctx, backoff) {
				return ctx.Err()
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = w.poll()
		if lease == nil {
			if !sleep(ctx, w.poll()) {
				return ctx.Err()
			}
			continue
		}
		w.runShard(ctx, lease)
	}
}

// sleep waits d or until ctx dies; it reports whether ctx is still live.
func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// runShard executes one leased shard and reports it back.
func (w *Worker) runShard(ctx context.Context, lease *jobs.ShardLease) {
	w.logf("shard %d [%d,%d) of campaign %.12s", lease.Range.Index, lease.Range.Start, lease.Range.End, lease.Key)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Throttle progress reports to ~16 per shard plus the first one, so
	// a large campaign doesn't turn into an HTTP request per experiment.
	stride := (lease.Range.End-lease.Range.Start)/16 + 1
	var mu sync.Mutex
	lastDone, lastFailures := 0, 0
	report := func(done, failures int) {
		// Serialize reports: ExecuteShard's tap is already serialized,
		// but the HTTP round trip must not reorder tallies.
		mu.Lock()
		defer mu.Unlock()
		if w.progress(lease.Lease, done, failures) {
			cancel()
		}
	}
	// Keepalive: the golden-run simulation and long experiments produce
	// no taps; refresh the lease inside the coordinator's TTL so a live
	// worker never loses its shard to the reclaim janitor.
	kaStop := make(chan struct{})
	defer close(kaStop)
	go func() {
		tick := time.NewTicker(jobs.KeepaliveInterval(time.Duration(lease.LeaseTTLSeconds * float64(time.Second))))
		defer tick.Stop()
		for {
			select {
			case <-kaStop:
				return
			case <-sctx.Done():
				return
			case <-tick.C:
				mu.Lock()
				d, f := lastDone, lastFailures
				mu.Unlock()
				report(d, f)
			}
		}
	}()
	out, err := jobs.ExecuteShard(sctx, lease.Request, lease.Range.Start, lease.Range.End, w.Workers,
		func(done, total, failures int) {
			mu.Lock()
			lastDone, lastFailures = done, failures
			mu.Unlock()
			if done != 1 && done != total && done%stride != 0 {
				return
			}
			report(done, failures)
		})
	if out == nil {
		// The engine never produced anything (runner build failure or the
		// worker's own shutdown): release the lease for someone else.
		w.logf("shard %d failed: %v", lease.Range.Index, err)
		w.fail(lease.Lease, fmt.Sprintf("%v", err))
		return
	}
	// Completed, cancelled by the coordinator's stop rule, or the worker
	// is shutting down mid-shard: submit what ran. The coordinator folds
	// a partial once the campaign has stopped and requeues it otherwise.
	w.complete(lease.Lease, out)
}

// lease asks for the next shard; nil without error means no work.
func (w *Worker) lease() (*jobs.ShardLease, error) {
	body, _ := json.Marshal(struct {
		Worker string `json:"worker"`
	}{Worker: w.Name})
	resp, err := w.post(w.Coordinator+"/api/v1/shards/lease", body)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var lease jobs.ShardLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, err
		}
		return &lease, nil
	default:
		return nil, fmt.Errorf("lease: HTTP %d", resp.StatusCode)
	}
}

// progress reports a tally; true means cancel the shard.
func (w *Worker) progress(lease string, done, failures int) (cancel bool) {
	body, _ := json.Marshal(struct {
		Done     int `json:"done"`
		Failures int `json:"failures"`
	}{Done: done, Failures: failures})
	resp, err := w.post(w.Coordinator+"/api/v1/shards/"+lease+"/progress", body)
	if err != nil {
		// A transient network error is not a cancellation: keep computing
		// and let the next report (or the TTL) sort it out.
		w.logf("progress: %v", err)
		return false
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return true
	}
	var rep struct {
		Cancel bool `json:"cancel"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return false
	}
	return rep.Cancel
}

// complete submits a shard's outcomes.
func (w *Worker) complete(lease string, out *jobs.ShardOutput) {
	body, err := json.Marshal(out)
	if err != nil {
		w.logf("complete: %v", err)
		return
	}
	resp, err := w.post(w.Coordinator+"/api/v1/shards/"+lease+"/complete", body)
	if err != nil {
		w.logf("complete: %v (shard will be requeued by the lease TTL)", err)
		return
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		w.logf("complete: HTTP %d", resp.StatusCode)
	}
}

// fail releases a lease after a worker-side error.
func (w *Worker) fail(lease, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	resp, err := w.post(w.Coordinator+"/api/v1/shards/"+lease+"/fail", body)
	if err != nil {
		w.logf("fail: %v", err)
		return
	}
	drain(resp)
}

func (w *Worker) post(url string, body []byte) (*http.Response, error) {
	// Reports must still reach the coordinator while the worker's own
	// ctx is shutting down (the final partial complete), so requests run
	// on a short independent timeout instead of ctx.
	rctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the request's timeout context with its body.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	b.cancel()
	return b.ReadCloser.Close()
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
