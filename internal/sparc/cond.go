package sparc

// CC holds the SPARC integer condition codes (the icc field of the PSR).
type CC struct {
	N bool // negative
	Z bool // zero
	V bool // overflow
	C bool // carry
}

// Bits packs the condition codes into the 4-bit icc encoding (N Z V C from
// bit 3 down to bit 0), matching PSR bits 23:20.
func (cc CC) Bits() uint32 {
	var b uint32
	if cc.N {
		b |= 8
	}
	if cc.Z {
		b |= 4
	}
	if cc.V {
		b |= 2
	}
	if cc.C {
		b |= 1
	}
	return b
}

// CCFromBits unpacks the 4-bit icc encoding.
func CCFromBits(b uint32) CC {
	return CC{N: b&8 != 0, Z: b&4 != 0, V: b&2 != 0, C: b&1 != 0}
}

// EvalCond evaluates a Bicc/Ticc condition field against the condition
// codes, returning whether the branch is taken (or the trap fires).
func EvalCond(cond uint32, cc CC) bool {
	switch cond & 15 {
	case 0: // never
		return false
	case 1: // equal
		return cc.Z
	case 2: // less or equal
		return cc.Z || (cc.N != cc.V)
	case 3: // less
		return cc.N != cc.V
	case 4: // less or equal unsigned
		return cc.C || cc.Z
	case 5: // carry set
		return cc.C
	case 6: // negative
		return cc.N
	case 7: // overflow set
		return cc.V
	case 8: // always
		return true
	case 9: // not equal
		return !cc.Z
	case 10: // greater
		return !(cc.Z || (cc.N != cc.V))
	case 11: // greater or equal
		return cc.N == cc.V
	case 12: // greater unsigned
		return !(cc.C || cc.Z)
	case 13: // carry clear
		return !cc.C
	case 14: // positive
		return !cc.N
	default: // 15: overflow clear
		return !cc.V
	}
}

// AddCC computes a+b(+carry) and the resulting condition codes per the V8
// ADD/ADDX semantics.
func AddCC(a, b uint32, carryIn bool) (sum uint32, cc CC) {
	c := uint64(0)
	if carryIn {
		c = 1
	}
	wide := uint64(a) + uint64(b) + c
	sum = uint32(wide)
	cc.N = int32(sum) < 0
	cc.Z = sum == 0
	cc.V = (a>>31 == b>>31) && (sum>>31 != a>>31)
	cc.C = wide>>32 != 0
	return sum, cc
}

// SubCC computes a-b(-carry) and the resulting condition codes per the V8
// SUB/SUBX semantics.
func SubCC(a, b uint32, carryIn bool) (diff uint32, cc CC) {
	c := uint64(0)
	if carryIn {
		c = 1
	}
	wide := uint64(a) - uint64(b) - c
	diff = uint32(wide)
	cc.N = int32(diff) < 0
	cc.Z = diff == 0
	cc.V = (a>>31 != b>>31) && (diff>>31 != a>>31)
	cc.C = wide>>32 != 0 // borrow
	return diff, cc
}

// LogicCC computes the condition codes of a logical result (V and C clear).
func LogicCC(res uint32) CC {
	return CC{N: int32(res) < 0, Z: res == 0}
}
