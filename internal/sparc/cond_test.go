package sparc

import (
	"testing"
	"testing/quick"
)

func TestEvalCondExhaustive(t *testing.T) {
	// For every icc combination, check the definitional identities between
	// each condition and its negation.
	pairs := []struct{ a, b uint32 }{
		{8, 0},  // BA / BN
		{1, 9},  // BE / BNE
		{2, 10}, // BLE / BG
		{3, 11}, // BL / BGE
		{4, 12}, // BLEU / BGU
		{5, 13}, // BCS / BCC
		{6, 14}, // BNEG / BPOS
		{7, 15}, // BVS / BVC
	}
	for bits := uint32(0); bits < 16; bits++ {
		cc := CCFromBits(bits)
		if cc.Bits() != bits {
			t.Fatalf("CC bits round trip failed for %#x", bits)
		}
		for _, p := range pairs {
			if EvalCond(p.a, cc) == EvalCond(p.b, cc) {
				t.Errorf("cond %d and %d not complementary for icc=%04b", p.a, p.b, bits)
			}
		}
	}
}

func TestEvalCondSignedComparisons(t *testing.T) {
	// subcc a, b then conditions must match Go comparisons.
	cases := []struct{ a, b int32 }{
		{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}, {5, 5},
		{-2147483648, 1}, {2147483647, -1}, {-5, -7}, {100, 99},
	}
	for _, c := range cases {
		_, cc := SubCC(uint32(c.a), uint32(c.b), false)
		checks := []struct {
			cond uint32
			want bool
			name string
		}{
			{1, c.a == c.b, "be"},
			{9, c.a != c.b, "bne"},
			{3, c.a < c.b, "bl"},
			{2, c.a <= c.b, "ble"},
			{10, c.a > c.b, "bg"},
			{11, c.a >= c.b, "bge"},
		}
		for _, ch := range checks {
			if got := EvalCond(ch.cond, cc); got != ch.want {
				t.Errorf("%s after subcc(%d,%d) = %v, want %v", ch.name, c.a, c.b, got, ch.want)
			}
		}
	}
}

func TestEvalCondUnsignedComparisons(t *testing.T) {
	f := func(a, b uint32) bool {
		_, cc := SubCC(a, b, false)
		return EvalCond(12, cc) == (a > b) && // bgu
			EvalCond(4, cc) == (a <= b) && // bleu
			EvalCond(13, cc) == (a >= b) && // bcc
			EvalCond(5, cc) == (a < b) // bcs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCCProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		sum, cc := AddCC(a, b, false)
		if sum != a+b {
			return false
		}
		if cc.Z != (sum == 0) || cc.N != (int32(sum) < 0) {
			return false
		}
		// Carry out iff unsigned overflow.
		if cc.C != (uint64(a)+uint64(b) > 0xffffffff) {
			return false
		}
		// Signed overflow iff operands same sign and result flips.
		want := int64(int32(a)) + int64(int32(b))
		return cc.V == (want < -2147483648 || want > 2147483647)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubCCProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		diff, cc := SubCC(a, b, false)
		if diff != a-b {
			return false
		}
		if cc.C != (a < b) { // borrow
			return false
		}
		want := int64(int32(a)) - int64(int32(b))
		return cc.V == (want < -2147483648 || want > 2147483647)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubCarryChain(t *testing.T) {
	// addcc/addxcc 64-bit addition: (a1:a0) + (b1:b0).
	add64 := func(a1, a0, b1, b0 uint32) (uint32, uint32) {
		lo, cc := AddCC(a0, b0, false)
		hi, _ := AddCC(a1, b1, cc.C)
		return hi, lo
	}
	hi, lo := add64(0, 0xffffffff, 0, 1)
	if hi != 1 || lo != 0 {
		t.Errorf("64-bit add = %#x:%#x, want 1:0", hi, lo)
	}
	f := func(a, b uint64) bool {
		hi, lo := add64(uint32(a>>32), uint32(a), uint32(b>>32), uint32(b))
		s := a + b
		return hi == uint32(s>>32) && lo == uint32(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogicCC(t *testing.T) {
	if cc := LogicCC(0); !cc.Z || cc.N || cc.V || cc.C {
		t.Error("LogicCC(0) wrong")
	}
	if cc := LogicCC(0x80000000); cc.Z || !cc.N {
		t.Error("LogicCC(min int) wrong")
	}
}
