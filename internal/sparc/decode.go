package sparc

// op3ToOpArith maps the op3 field of format-3 op=2 instructions to the
// instruction type. Entries left as OpUnknown decode to OpUnknown and trap
// as illegal instructions in the simulators.
var op3ToOpArith = [64]Op{
	0x00: OpADD, 0x01: OpAND, 0x02: OpOR, 0x03: OpXOR,
	0x04: OpSUB, 0x05: OpANDN, 0x06: OpORN, 0x07: OpXNOR,
	0x08: OpADDX, 0x0a: OpUMUL, 0x0b: OpSMUL, 0x0c: OpSUBX,
	0x0e: OpUDIV, 0x0f: OpSDIV,
	0x10: OpADDCC, 0x11: OpANDCC, 0x12: OpORCC, 0x13: OpXORCC,
	0x14: OpSUBCC, 0x15: OpANDNCC, 0x16: OpORNCC, 0x17: OpXNORCC,
	0x18: OpADDXCC, 0x1a: OpUMULCC, 0x1b: OpSMULCC, 0x1c: OpSUBXCC,
	0x1e: OpUDIVCC, 0x1f: OpSDIVCC,
	0x20: OpTADDCC, 0x21: OpTSUBCC, 0x24: OpMULSCC,
	0x25: OpSLL, 0x26: OpSRL, 0x27: OpSRA,
	0x28: OpRDY, 0x29: OpRDPSR, 0x2a: OpRDWIM, 0x2b: OpRDTBR,
	0x30: OpWRY, 0x31: OpWRPSR, 0x32: OpWRWIM, 0x33: OpWRTBR,
	0x38: OpJMPL, 0x39: OpRETT, 0x3c: OpSAVE, 0x3d: OpRESTORE,
}

// op3ToOpMem maps the op3 field of format-3 op=3 instructions.
var op3ToOpMem = [64]Op{
	0x00: OpLD, 0x01: OpLDUB, 0x02: OpLDUH, 0x03: OpLDD,
	0x04: OpST, 0x05: OpSTB, 0x06: OpSTH, 0x07: OpSTD,
	0x09: OpLDSB, 0x0a: OpLDSH, 0x0d: OpLDSTUB, 0x0f: OpSWAP,
}

// condToBicc maps the Bicc condition field to the branch instruction type.
var condToBicc = [16]Op{
	0: OpBN, 1: OpBE, 2: OpBLE, 3: OpBL, 4: OpBLEU, 5: OpBCS,
	6: OpBNEG, 7: OpBVS, 8: OpBA, 9: OpBNE, 10: OpBG, 11: OpBGE,
	12: OpBGU, 13: OpBCC, 14: OpBPOS, 15: OpBVC,
}

// condToTicc maps the Ticc condition field to the trap instruction type.
var condToTicc = [16]Op{
	0: OpTN, 1: OpTE, 2: OpTLE, 3: OpTL, 4: OpTLEU, 5: OpTCS,
	6: OpTNEG, 7: OpTVS, 8: OpTA, 9: OpTNE, 10: OpTG, 11: OpTGE,
	12: OpTGU, 13: OpTCC, 14: OpTPOS, 15: OpTVC,
}

// signExt sign-extends the low n bits of v.
func signExt(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// Decode decodes a 32-bit SPARC V8 instruction word. Unrecognized encodings
// decode to an Inst with Op == OpUnknown.
func Decode(word uint32) Inst {
	in := Inst{Raw: word}
	switch word >> 30 {
	case 1: // format 1: CALL
		in.Op = OpCALL
		in.Disp30 = signExt(word&0x3fffffff, 30)
		in.Rd = 15
	case 0: // format 2: SETHI / Bicc
		op2 := (word >> 22) & 7
		switch op2 {
		case 4: // SETHI
			in.Op = OpSETHI
			in.Rd = int((word >> 25) & 31)
			in.Imm22 = int32(word & 0x3fffff)
		case 2: // Bicc
			cond := (word >> 25) & 15
			in.Op = condToBicc[cond]
			in.Annul = word&(1<<29) != 0
			in.Imm22 = signExt(word&0x3fffff, 22)
		default:
			in.Op = OpUnknown
		}
	case 2, 3: // format 3
		op3 := (word >> 19) & 63
		ticc := false
		if word>>30 == 2 {
			in.Op = op3ToOpArith[op3]
			if op3 == 0x3a { // Ticc: the rd field holds the condition
				in.Op = condToTicc[(word>>25)&15]
				ticc = true
			}
		} else {
			in.Op = op3ToOpMem[op3]
		}
		if !ticc {
			in.Rd = int((word >> 25) & 31)
		}
		in.Rs1 = int((word >> 14) & 31)
		if word&(1<<13) != 0 {
			in.Imm = true
			in.Simm13 = signExt(word&0x1fff, 13)
		} else {
			in.Rs2 = int(word & 31)
			in.Asi = uint8((word >> 5) & 0xff)
		}
	}
	return in
}

// Encode builds the instruction word for a decoded instruction. It is the
// inverse of Decode for all instruction types this package defines and is
// the single encoder used by the assembler.
func Encode(in Inst) uint32 {
	info := opTable[in.Op]
	switch info.format {
	case 1:
		return 1<<30 | uint32(in.Disp30)&0x3fffffff
	case 2:
		if in.Op == OpSETHI {
			return uint32(in.Rd)<<25 | 4<<22 | uint32(in.Imm22)&0x3fffff
		}
		w := info.cond<<25 | 2<<22 | uint32(in.Imm22)&0x3fffff
		if in.Annul {
			w |= 1 << 29
		}
		return w
	case 3:
		w := info.op<<30 | uint32(in.Rd)<<25 | info.op3<<19 | uint32(in.Rs1)<<14
		if in.Op.IsTicc() {
			w = info.op<<30 | info.cond<<25 | info.op3<<19 | uint32(in.Rs1)<<14
		}
		if in.Imm {
			w |= 1<<13 | uint32(in.Simm13)&0x1fff
		} else {
			w |= uint32(in.Asi)<<5 | uint32(in.Rs2)&31
		}
		return w
	}
	return 0
}
