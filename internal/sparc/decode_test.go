package sparc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeFormat1(t *testing.T) {
	// call with displacement +4 words.
	in := Decode(1<<30 | 4)
	if in.Op != OpCALL {
		t.Fatalf("op = %v, want call", in.Op)
	}
	if in.Disp30 != 4 {
		t.Errorf("disp30 = %d, want 4", in.Disp30)
	}
	if in.Rd != 15 {
		t.Errorf("rd = %d, want 15 (%%o7)", in.Rd)
	}
	if got := in.Target(0x1000); got != 0x1010 {
		t.Errorf("target = %#x, want 0x1010", got)
	}
}

func TestDecodeCallNegative(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpCALL, Disp30: -2}))
	if in.Disp30 != -2 {
		t.Fatalf("disp30 = %d, want -2", in.Disp30)
	}
	if got := in.Target(0x100); got != 0x100-8 {
		t.Errorf("target = %#x, want %#x", got, 0x100-8)
	}
}

func TestDecodeSethi(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpSETHI, Rd: 9, Imm22: 0x12345}))
	if in.Op != OpSETHI || in.Rd != 9 || in.Imm22 != 0x12345 {
		t.Fatalf("got %+v", in)
	}
}

func TestDecodeBranches(t *testing.T) {
	cases := []struct {
		op    Op
		annul bool
		disp  int32
	}{
		{OpBA, false, 10}, {OpBNE, true, -3}, {OpBE, false, 0},
		{OpBG, false, 100}, {OpBLE, true, -100}, {OpBGE, false, 1},
		{OpBL, false, -1}, {OpBGU, true, 7}, {OpBLEU, false, 8},
		{OpBCC, false, 9}, {OpBCS, false, 11}, {OpBPOS, true, 12},
		{OpBNEG, false, 13}, {OpBVC, false, 14}, {OpBVS, false, 15},
		{OpBN, true, 2},
	}
	for _, c := range cases {
		w := Encode(Inst{Op: c.op, Annul: c.annul, Imm22: c.disp})
		in := Decode(w)
		if in.Op != c.op || in.Annul != c.annul || in.Imm22 != c.disp {
			t.Errorf("%v: decoded %+v", c.op, in)
		}
		if !in.Op.IsBicc() || !in.Op.IsBranch() {
			t.Errorf("%v: not classified as branch", c.op)
		}
	}
}

func TestDecodeArithImm(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpADD, Rd: 1, Rs1: 2, Imm: true, Simm13: -7}))
	if in.Op != OpADD || in.Rd != 1 || in.Rs1 != 2 || !in.Imm || in.Simm13 != -7 {
		t.Fatalf("got %+v", in)
	}
}

func TestDecodeArithReg(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpSUBCC, Rd: 30, Rs1: 29, Rs2: 28}))
	if in.Op != OpSUBCC || in.Rd != 30 || in.Rs1 != 29 || in.Rs2 != 28 || in.Imm {
		t.Fatalf("got %+v", in)
	}
	if !in.Op.SetsCC() {
		t.Error("subcc should set condition codes")
	}
}

func TestDecodeMemOps(t *testing.T) {
	loads := []Op{OpLD, OpLDUB, OpLDSB, OpLDUH, OpLDSH, OpLDD}
	for _, op := range loads {
		in := Decode(Encode(Inst{Op: op, Rd: 3, Rs1: 4, Imm: true, Simm13: 16}))
		if in.Op != op {
			t.Errorf("%v: decoded as %v", op, in.Op)
		}
		if !in.Op.IsLoad() || in.Op.IsStore() {
			t.Errorf("%v: wrong load/store classification", op)
		}
	}
	stores := []Op{OpST, OpSTB, OpSTH, OpSTD}
	for _, op := range stores {
		in := Decode(Encode(Inst{Op: op, Rd: 3, Rs1: 4, Imm: true, Simm13: -16}))
		if in.Op != op {
			t.Errorf("%v: decoded as %v", op, in.Op)
		}
		if in.Op.IsLoad() || !in.Op.IsStore() {
			t.Errorf("%v: wrong load/store classification", op)
		}
	}
	for _, op := range []Op{OpLDSTUB, OpSWAP} {
		in := Decode(Encode(Inst{Op: op, Rd: 3, Rs1: 4}))
		if in.Op != op || !in.Op.IsLoad() || !in.Op.IsStore() {
			t.Errorf("%v: decoded as %v", op, in.Op)
		}
	}
}

func TestDecodeTicc(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpTA, Rs1: 0, Imm: true, Simm13: 5}))
	if in.Op != OpTA || in.Simm13 != 5 {
		t.Fatalf("got %+v", in)
	}
	if !in.Op.IsTicc() {
		t.Error("ta should be a Ticc")
	}
}

func TestDecodeStateRegs(t *testing.T) {
	ops := []Op{OpRDY, OpRDPSR, OpRDWIM, OpRDTBR, OpWRY, OpWRPSR, OpWRWIM, OpWRTBR}
	for _, op := range ops {
		in := Decode(Encode(Inst{Op: op, Rd: 5, Rs1: 6, Imm: true, Simm13: 0}))
		if in.Op != op {
			t.Errorf("%v: decoded as %v", op, in.Op)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	// FP op3 slots and illegal op2 must decode to OpUnknown.
	if in := Decode(2<<30 | 0x34<<19); in.Op != OpUnknown {
		t.Errorf("FP encoding decoded to %v", in.Op)
	}
	if in := Decode(0x01000000); in.Op != OpUnknown { // op=0, op2=4? no: op2 bits
		_ = in
	}
	if in := Decode(3<<30 | 0x3f<<19); in.Op != OpUnknown {
		t.Errorf("illegal mem encoding decoded to %v", in.Op)
	}
}

// TestEncodeDecodeRoundTripAll checks Encode/Decode inversion for every
// instruction type with randomized fields.
func TestEncodeDecodeRoundTripAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for op := Op(1); op < NumOps; op++ {
		for trial := 0; trial < 64; trial++ {
			in := Inst{Op: op}
			switch op.Format() {
			case 1:
				in.Disp30 = int32(rng.Uint32()) << 2 >> 2
			case 2:
				if op == OpSETHI {
					in.Rd = rng.Intn(32)
					in.Imm22 = int32(rng.Uint32() & 0x3fffff)
				} else {
					in.Annul = rng.Intn(2) == 0
					in.Imm22 = int32(rng.Uint32()) << 10 >> 10
				}
			case 3:
				if !op.IsTicc() {
					in.Rd = rng.Intn(32)
				}
				in.Rs1 = rng.Intn(32)
				if rng.Intn(2) == 0 {
					in.Imm = true
					in.Simm13 = int32(rng.Uint32()) << 19 >> 19
				} else {
					in.Rs2 = rng.Intn(32)
				}
			}
			got := Decode(Encode(in))
			got.Raw = 0
			want := in
			if op.IsTicc() {
				want.Rd = 0
			}
			if op == OpCALL {
				want.Rd = 15 // implicit link register
			}
			if got != want {
				t.Fatalf("%v: round trip %+v -> %+v", op, want, got)
			}
		}
	}
}

// TestDecodeEncodeRoundTripQuick: decoding any word that decodes to a known
// op and re-encoding must reproduce the word's semantic fields.
func TestDecodeEncodeRoundTripQuick(t *testing.T) {
	f := func(word uint32) bool {
		in := Decode(word)
		if in.Op == OpUnknown {
			return true
		}
		again := Decode(Encode(in))
		again.Raw, in.Raw = 0, 0
		// The reserved asi field is not preserved for loads/stores with
		// immediate addressing; everything else must match.
		return again == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpADD: "add", OpBNE: "bne", OpRDPSR: "rdpsr", OpWRY: "wry",
		OpLDSTUB: "ldstub", OpTA: "ta", OpSETHI: "sethi",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestRegName(t *testing.T) {
	cases := map[int]string{
		0: "%g0", 7: "%g7", 8: "%o0", 14: "%sp", 15: "%o7",
		16: "%l0", 24: "%i0", 30: "%fp", 31: "%i7",
	}
	for r, want := range cases {
		if got := RegName(r); got != want {
			t.Errorf("RegName(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 9, Rs1: 8, Imm: true, Simm13: 4}, "add %o0, 4, %o1"},
		{Inst{Op: OpSETHI, Rd: 0, Imm22: 0}, "nop"},
		{Inst{Op: OpLD, Rd: 10, Rs1: 14, Imm: true, Simm13: 8}, "ld [%sp+8], %o2"},
		{Inst{Op: OpST, Rd: 10, Rs1: 14, Imm: true, Simm13: -4}, "st %o2, [%sp-4]"},
		{Inst{Op: OpBNE, Annul: true, Imm22: -2}, "bne,a -2"},
		{Inst{Op: OpJMPL, Rd: 0, Rs1: 15, Imm: true, Simm13: 8}, "jmpl %o7+8, %g0"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}
