package sparc

import "fmt"

// Register indices of the architecturally visible integer registers within
// the current window: %g0..%g7 are r0..r7, %o0..%o7 are r8..r15, %l0..%l7
// are r16..r23 and %i0..%i7 are r24..r31.
const (
	RegG0 = 0
	RegO0 = 8
	RegO6 = 14 // %sp
	RegO7 = 15 // call return address
	RegL0 = 16
	RegL1 = 17 // trap PC
	RegL2 = 18 // trap nPC
	RegI0 = 24
	RegI6 = 30 // %fp
	RegI7 = 31 // caller's return address
)

// RegName returns the conventional assembler name of register r (0..31).
func RegName(r int) string {
	switch {
	case r == 14:
		return "%sp"
	case r == 30:
		return "%fp"
	case r < 8:
		return fmt.Sprintf("%%g%d", r)
	case r < 16:
		return fmt.Sprintf("%%o%d", r-8)
	case r < 24:
		return fmt.Sprintf("%%l%d", r-16)
	case r < 32:
		return fmt.Sprintf("%%i%d", r-24)
	}
	return fmt.Sprintf("%%r%d", r)
}

// Inst is a decoded SPARC V8 instruction.
type Inst struct {
	Raw uint32 // instruction word
	Op  Op     // instruction type

	Rd  int // destination register (format 3, SETHI)
	Rs1 int // first source register
	Rs2 int // second source register (when Imm is false)

	Imm    bool  // format 3 uses simm13 instead of rs2
	Simm13 int32 // sign-extended 13-bit immediate
	Imm22  int32 // SETHI immediate / Bicc displacement (sign-extended words)
	Disp30 int32 // CALL displacement (sign-extended words)
	Annul  bool  // Bicc annul bit
	Asi    uint8 // alternate space identifier (format 3 register forms)
}

// Operand2 is unset for instructions without a second ALU operand.
//
// Target returns the control-transfer target of a PC-relative instruction
// located at address pc.
func (in *Inst) Target(pc uint32) uint32 {
	switch in.Op.Format() {
	case 1:
		return pc + uint32(in.Disp30)<<2
	case 2:
		return pc + uint32(in.Imm22)<<2
	}
	return 0
}

// String disassembles the instruction (without PC-relative resolution).
func (in *Inst) String() string {
	op := in.Op
	switch {
	case op == OpUnknown:
		return fmt.Sprintf(".word 0x%08x", in.Raw)
	case op == OpSETHI:
		if in.Rd == 0 && in.Imm22 == 0 {
			return "nop"
		}
		return fmt.Sprintf("sethi %%hi(0x%x), %s", uint32(in.Imm22)<<10, RegName(in.Rd))
	case op.IsBicc():
		a := ""
		if in.Annul {
			a = ",a"
		}
		return fmt.Sprintf("%s%s %+d", op, a, in.Imm22)
	case op == OpCALL:
		return fmt.Sprintf("call %+d", in.Disp30)
	case op.IsTicc():
		return fmt.Sprintf("%s %s", op, in.op2str())
	case op == OpRDY || op == OpRDPSR || op == OpRDWIM || op == OpRDTBR:
		return fmt.Sprintf("%s %s", op, RegName(in.Rd))
	case op == OpWRY || op == OpWRPSR || op == OpWRWIM || op == OpWRTBR:
		return fmt.Sprintf("%s %s, %s", op, RegName(in.Rs1), in.op2str())
	case op.IsLoad() && !op.IsStore():
		return fmt.Sprintf("%s [%s], %s", op, in.addrStr(), RegName(in.Rd))
	case op.IsStore() && !op.IsLoad():
		return fmt.Sprintf("%s %s, [%s]", op, RegName(in.Rd), in.addrStr())
	case op == OpLDSTUB || op == OpSWAP:
		return fmt.Sprintf("%s [%s], %s", op, in.addrStr(), RegName(in.Rd))
	case op == OpJMPL:
		return fmt.Sprintf("jmpl %s, %s", in.addrStr(), RegName(in.Rd))
	case op == OpRETT:
		return fmt.Sprintf("rett %s", in.addrStr())
	}
	return fmt.Sprintf("%s %s, %s, %s", op, RegName(in.Rs1), in.op2str(), RegName(in.Rd))
}

func (in *Inst) op2str() string {
	if in.Imm {
		return fmt.Sprintf("%d", in.Simm13)
	}
	return RegName(in.Rs2)
}

func (in *Inst) addrStr() string {
	if in.Imm {
		if in.Simm13 == 0 {
			return RegName(in.Rs1)
		}
		return fmt.Sprintf("%s%+d", RegName(in.Rs1), in.Simm13)
	}
	if in.Rs2 == 0 {
		return RegName(in.Rs1)
	}
	return fmt.Sprintf("%s+%s", RegName(in.Rs1), RegName(in.Rs2))
}
