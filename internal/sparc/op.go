// Package sparc defines the SPARC V8 integer instruction set architecture:
// instruction formats, opcode enumeration, decoding, disassembly, integer
// condition codes and the mapping from instruction types to the processor
// functional units they exercise.
//
// The package is the shared substrate of the instruction set simulator
// (internal/iss), the assembler (internal/asm) and the RTL processor model
// (internal/leon3). "Instruction type" in the sense of the reproduced paper
// (the diversity metric) corresponds to one Op value: branch and trap
// condition variants are distinct types, exactly as distinct opcodes.
package sparc

import "fmt"

// Op enumerates the SPARC V8 integer instruction types recognized by this
// reproduction. Each value is one "instruction type (opcode)" as counted by
// the instruction-diversity metric.
type Op uint8

// Instruction types. Grouping follows The SPARC Architecture Manual V8.
const (
	OpUnknown Op = iota

	// Format 2: SETHI and integer conditional branches.
	OpSETHI
	OpBA
	OpBN
	OpBNE
	OpBE
	OpBG
	OpBLE
	OpBGE
	OpBL
	OpBGU
	OpBLEU
	OpBCC
	OpBCS
	OpBPOS
	OpBNEG
	OpBVC
	OpBVS

	// Format 1.
	OpCALL

	// Format 3, op=2: arithmetic, logical, shift.
	OpADD
	OpADDCC
	OpADDX
	OpADDXCC
	OpSUB
	OpSUBCC
	OpSUBX
	OpSUBXCC
	OpAND
	OpANDCC
	OpANDN
	OpANDNCC
	OpOR
	OpORCC
	OpORN
	OpORNCC
	OpXOR
	OpXORCC
	OpXNOR
	OpXNORCC
	OpTADDCC
	OpTSUBCC
	OpMULSCC
	OpSLL
	OpSRL
	OpSRA
	OpUMUL
	OpUMULCC
	OpSMUL
	OpSMULCC
	OpUDIV
	OpUDIVCC
	OpSDIV
	OpSDIVCC

	// Format 3, op=2: control and state registers.
	OpSAVE
	OpRESTORE
	OpJMPL
	OpRETT
	OpRDY
	OpWRY
	OpRDPSR
	OpWRPSR
	OpRDWIM
	OpWRWIM
	OpRDTBR
	OpWRTBR

	// Format 3, op=2: trap on integer condition codes.
	OpTA
	OpTN
	OpTNE
	OpTE
	OpTG
	OpTLE
	OpTGE
	OpTL
	OpTGU
	OpTLEU
	OpTCC
	OpTCS
	OpTPOS
	OpTNEG
	OpTVC
	OpTVS

	// Format 3, op=3: loads and stores.
	OpLD
	OpLDUB
	OpLDSB
	OpLDUH
	OpLDSH
	OpLDD
	OpST
	OpSTB
	OpSTH
	OpSTD
	OpLDSTUB
	OpSWAP

	// NumOps is the number of instruction types including OpUnknown.
	NumOps
)

// opInfo is the static description of one instruction type.
type opInfo struct {
	name    string
	format  int // 1 = CALL, 2 = SETHI/Bicc, 3 = op=2 or op=3
	op      uint32
	op3     uint32 // op=2/3 formats
	cond    uint32 // Bicc/Ticc condition field
	load    bool
	store   bool
	branch  bool
	setsCC  bool
	readsCC bool
}

var opTable = [NumOps]opInfo{
	OpUnknown: {name: "unknown"},

	OpSETHI: {name: "sethi", format: 2, op: 0},
	OpBA:    {name: "ba", format: 2, op: 0, cond: 8, branch: true},
	OpBN:    {name: "bn", format: 2, op: 0, cond: 0, branch: true},
	OpBNE:   {name: "bne", format: 2, op: 0, cond: 9, branch: true, readsCC: true},
	OpBE:    {name: "be", format: 2, op: 0, cond: 1, branch: true, readsCC: true},
	OpBG:    {name: "bg", format: 2, op: 0, cond: 10, branch: true, readsCC: true},
	OpBLE:   {name: "ble", format: 2, op: 0, cond: 2, branch: true, readsCC: true},
	OpBGE:   {name: "bge", format: 2, op: 0, cond: 11, branch: true, readsCC: true},
	OpBL:    {name: "bl", format: 2, op: 0, cond: 3, branch: true, readsCC: true},
	OpBGU:   {name: "bgu", format: 2, op: 0, cond: 12, branch: true, readsCC: true},
	OpBLEU:  {name: "bleu", format: 2, op: 0, cond: 4, branch: true, readsCC: true},
	OpBCC:   {name: "bcc", format: 2, op: 0, cond: 13, branch: true, readsCC: true},
	OpBCS:   {name: "bcs", format: 2, op: 0, cond: 5, branch: true, readsCC: true},
	OpBPOS:  {name: "bpos", format: 2, op: 0, cond: 14, branch: true, readsCC: true},
	OpBNEG:  {name: "bneg", format: 2, op: 0, cond: 6, branch: true, readsCC: true},
	OpBVC:   {name: "bvc", format: 2, op: 0, cond: 15, branch: true, readsCC: true},
	OpBVS:   {name: "bvs", format: 2, op: 0, cond: 7, branch: true, readsCC: true},

	OpCALL: {name: "call", format: 1, op: 1, branch: true},

	OpADD:     {name: "add", format: 3, op: 2, op3: 0x00},
	OpAND:     {name: "and", format: 3, op: 2, op3: 0x01},
	OpOR:      {name: "or", format: 3, op: 2, op3: 0x02},
	OpXOR:     {name: "xor", format: 3, op: 2, op3: 0x03},
	OpSUB:     {name: "sub", format: 3, op: 2, op3: 0x04},
	OpANDN:    {name: "andn", format: 3, op: 2, op3: 0x05},
	OpORN:     {name: "orn", format: 3, op: 2, op3: 0x06},
	OpXNOR:    {name: "xnor", format: 3, op: 2, op3: 0x07},
	OpADDX:    {name: "addx", format: 3, op: 2, op3: 0x08, readsCC: true},
	OpUMUL:    {name: "umul", format: 3, op: 2, op3: 0x0a},
	OpSMUL:    {name: "smul", format: 3, op: 2, op3: 0x0b},
	OpSUBX:    {name: "subx", format: 3, op: 2, op3: 0x0c, readsCC: true},
	OpUDIV:    {name: "udiv", format: 3, op: 2, op3: 0x0e},
	OpSDIV:    {name: "sdiv", format: 3, op: 2, op3: 0x0f},
	OpADDCC:   {name: "addcc", format: 3, op: 2, op3: 0x10, setsCC: true},
	OpANDCC:   {name: "andcc", format: 3, op: 2, op3: 0x11, setsCC: true},
	OpORCC:    {name: "orcc", format: 3, op: 2, op3: 0x12, setsCC: true},
	OpXORCC:   {name: "xorcc", format: 3, op: 2, op3: 0x13, setsCC: true},
	OpSUBCC:   {name: "subcc", format: 3, op: 2, op3: 0x14, setsCC: true},
	OpANDNCC:  {name: "andncc", format: 3, op: 2, op3: 0x15, setsCC: true},
	OpORNCC:   {name: "orncc", format: 3, op: 2, op3: 0x16, setsCC: true},
	OpXNORCC:  {name: "xnorcc", format: 3, op: 2, op3: 0x17, setsCC: true},
	OpADDXCC:  {name: "addxcc", format: 3, op: 2, op3: 0x18, setsCC: true, readsCC: true},
	OpUMULCC:  {name: "umulcc", format: 3, op: 2, op3: 0x1a, setsCC: true},
	OpSMULCC:  {name: "smulcc", format: 3, op: 2, op3: 0x1b, setsCC: true},
	OpSUBXCC:  {name: "subxcc", format: 3, op: 2, op3: 0x1c, setsCC: true, readsCC: true},
	OpUDIVCC:  {name: "udivcc", format: 3, op: 2, op3: 0x1e, setsCC: true},
	OpSDIVCC:  {name: "sdivcc", format: 3, op: 2, op3: 0x1f, setsCC: true},
	OpTADDCC:  {name: "taddcc", format: 3, op: 2, op3: 0x20, setsCC: true},
	OpTSUBCC:  {name: "tsubcc", format: 3, op: 2, op3: 0x21, setsCC: true},
	OpMULSCC:  {name: "mulscc", format: 3, op: 2, op3: 0x24, setsCC: true, readsCC: true},
	OpSLL:     {name: "sll", format: 3, op: 2, op3: 0x25},
	OpSRL:     {name: "srl", format: 3, op: 2, op3: 0x26},
	OpSRA:     {name: "sra", format: 3, op: 2, op3: 0x27},
	OpRDY:     {name: "rd", format: 3, op: 2, op3: 0x28},
	OpRDPSR:   {name: "rd", format: 3, op: 2, op3: 0x29},
	OpRDWIM:   {name: "rd", format: 3, op: 2, op3: 0x2a},
	OpRDTBR:   {name: "rd", format: 3, op: 2, op3: 0x2b},
	OpWRY:     {name: "wr", format: 3, op: 2, op3: 0x30},
	OpWRPSR:   {name: "wr", format: 3, op: 2, op3: 0x31},
	OpWRWIM:   {name: "wr", format: 3, op: 2, op3: 0x32},
	OpWRTBR:   {name: "wr", format: 3, op: 2, op3: 0x33},
	OpJMPL:    {name: "jmpl", format: 3, op: 2, op3: 0x38, branch: true},
	OpRETT:    {name: "rett", format: 3, op: 2, op3: 0x39, branch: true},
	OpSAVE:    {name: "save", format: 3, op: 2, op3: 0x3c},
	OpRESTORE: {name: "restore", format: 3, op: 2, op3: 0x3d},

	OpTA:   {name: "ta", format: 3, op: 2, op3: 0x3a, cond: 8},
	OpTN:   {name: "tn", format: 3, op: 2, op3: 0x3a, cond: 0},
	OpTNE:  {name: "tne", format: 3, op: 2, op3: 0x3a, cond: 9, readsCC: true},
	OpTE:   {name: "te", format: 3, op: 2, op3: 0x3a, cond: 1, readsCC: true},
	OpTG:   {name: "tg", format: 3, op: 2, op3: 0x3a, cond: 10, readsCC: true},
	OpTLE:  {name: "tle", format: 3, op: 2, op3: 0x3a, cond: 2, readsCC: true},
	OpTGE:  {name: "tge", format: 3, op: 2, op3: 0x3a, cond: 11, readsCC: true},
	OpTL:   {name: "tl", format: 3, op: 2, op3: 0x3a, cond: 3, readsCC: true},
	OpTGU:  {name: "tgu", format: 3, op: 2, op3: 0x3a, cond: 12, readsCC: true},
	OpTLEU: {name: "tleu", format: 3, op: 2, op3: 0x3a, cond: 4, readsCC: true},
	OpTCC:  {name: "tcc", format: 3, op: 2, op3: 0x3a, cond: 13, readsCC: true},
	OpTCS:  {name: "tcs", format: 3, op: 2, op3: 0x3a, cond: 5, readsCC: true},
	OpTPOS: {name: "tpos", format: 3, op: 2, op3: 0x3a, cond: 14, readsCC: true},
	OpTNEG: {name: "tneg", format: 3, op: 2, op3: 0x3a, cond: 6, readsCC: true},
	OpTVC:  {name: "tvc", format: 3, op: 2, op3: 0x3a, cond: 15, readsCC: true},
	OpTVS:  {name: "tvs", format: 3, op: 2, op3: 0x3a, cond: 7, readsCC: true},

	OpLD:     {name: "ld", format: 3, op: 3, op3: 0x00, load: true},
	OpLDUB:   {name: "ldub", format: 3, op: 3, op3: 0x01, load: true},
	OpLDUH:   {name: "lduh", format: 3, op: 3, op3: 0x02, load: true},
	OpLDD:    {name: "ldd", format: 3, op: 3, op3: 0x03, load: true},
	OpST:     {name: "st", format: 3, op: 3, op3: 0x04, store: true},
	OpSTB:    {name: "stb", format: 3, op: 3, op3: 0x05, store: true},
	OpSTH:    {name: "sth", format: 3, op: 3, op3: 0x06, store: true},
	OpSTD:    {name: "std", format: 3, op: 3, op3: 0x07, store: true},
	OpLDSB:   {name: "ldsb", format: 3, op: 3, op3: 0x09, load: true},
	OpLDSH:   {name: "ldsh", format: 3, op: 3, op3: 0x0a, load: true},
	OpLDSTUB: {name: "ldstub", format: 3, op: 3, op3: 0x0d, load: true, store: true},
	OpSWAP:   {name: "swap", format: 3, op: 3, op3: 0x0f, load: true, store: true},
}

// String returns the assembler mnemonic of the instruction type.
func (o Op) String() string {
	if o >= NumOps {
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
	switch o {
	case OpRDY:
		return "rdy"
	case OpRDPSR:
		return "rdpsr"
	case OpRDWIM:
		return "rdwim"
	case OpRDTBR:
		return "rdtbr"
	case OpWRY:
		return "wry"
	case OpWRPSR:
		return "wrpsr"
	case OpWRWIM:
		return "wrwim"
	case OpWRTBR:
		return "wrtbr"
	}
	return opTable[o].name
}

// info returns the opcode descriptor, mapping out-of-range values (which
// can arise from faults injected on decoded-opcode RTL signals) to the
// OpUnknown descriptor.
func (o Op) info() *opInfo {
	if o >= NumOps {
		o = OpUnknown
	}
	return &opTable[o]
}

// IsLoad reports whether the instruction type reads memory.
func (o Op) IsLoad() bool { return o.info().load }

// IsStore reports whether the instruction type writes memory.
func (o Op) IsStore() bool { return o.info().store }

// IsMemory reports whether the instruction type accesses memory.
func (o Op) IsMemory() bool { return o.info().load || o.info().store }

// IsBranch reports whether the instruction type is a control transfer
// (conditional branch, call, jmpl or rett).
func (o Op) IsBranch() bool { return o.info().branch }

// IsBicc reports whether the instruction type is a format-2 conditional
// branch.
func (o Op) IsBicc() bool { return o >= OpBA && o <= OpBVS }

// IsTicc reports whether the instruction type is a trap-on-condition.
func (o Op) IsTicc() bool { return o >= OpTA && o <= OpTVS }

// SetsCC reports whether the instruction type writes the integer condition
// codes.
func (o Op) SetsCC() bool { return o.info().setsCC }

// ReadsCC reports whether the instruction type reads the integer condition
// codes.
func (o Op) ReadsCC() bool { return o.info().readsCC }

// Cond returns the condition field for Bicc/Ticc instruction types.
func (o Op) Cond() uint32 { return o.info().cond }

// Format returns the SPARC instruction format (1, 2 or 3) of the type.
func (o Op) Format() int { return o.info().format }
