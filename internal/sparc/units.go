package sparc

// Unit identifies a processor functional unit for the purposes of the
// instruction-diversity metric (Dm in the paper) and of grouping RTL
// injection nodes. The first group belongs to the integer unit (IU), the
// second to the cache memory (CMEM).
type Unit uint8

// Functional units of the modeled LEON3-like microcontroller.
const (
	UnitFetch   Unit = iota // instruction address generation and fetch
	UnitDecode              // instruction decode and control
	UnitRegfile             // windowed register file and ports
	UnitALU                 // adder/logic datapath
	UnitShifter             // barrel shifter
	UnitMulDiv              // iterative multiply/divide unit
	UnitBranch              // condition evaluation and branch target
	UnitLSU                 // load/store unit, data alignment
	UnitPSR                 // PSR/WIM/TBR/Y special registers, traps
	UnitCCtrl               // cache controller state machines
	UnitCTag                // cache tag arrays and comparators
	UnitCData               // cache data arrays

	// NumUnits is the number of functional units.
	NumUnits
)

var unitNames = [NumUnits]string{
	"fetch", "decode", "regfile", "alu", "shifter", "muldiv",
	"branch", "lsu", "psr", "cctrl", "ctag", "cdata",
}

// String returns the unit name.
func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return "unit?"
}

// IsIU reports whether the unit belongs to the integer unit.
func (u Unit) IsIU() bool { return u <= UnitPSR }

// IsCMEM reports whether the unit belongs to the cache memory.
func (u Unit) IsCMEM() bool { return u >= UnitCCtrl && u < NumUnits }

// UnitSet is a bit set of functional units.
type UnitSet uint16

// Add returns the set with u added.
func (s UnitSet) Add(u Unit) UnitSet { return s | 1<<u }

// Has reports whether u is in the set.
func (s UnitSet) Has(u Unit) bool { return s&(1<<u) != 0 }

// Units returns the members of the set in ascending order.
func (s UnitSet) Units() []Unit {
	var out []Unit
	for u := Unit(0); u < NumUnits; u++ {
		if s.Has(u) {
			out = append(out, u)
		}
	}
	return out
}

// UnitsOf returns the set of functional units instruction type o exercises.
// Every executed instruction flows through fetch, decode and the register
// file; beyond that the set depends on the type, which is what makes
// per-unit diversity discriminate workloads (paper §3 items 1 and 2).
// Memory instructions additionally exercise the cache units.
func UnitsOf(o Op) UnitSet {
	s := UnitSet(0).Add(UnitFetch).Add(UnitDecode).Add(UnitRegfile)
	info := o.info()
	switch {
	case o == OpSETHI:
		s = s.Add(UnitALU)
	case o.IsBicc():
		s = s.Add(UnitBranch)
	case o == OpCALL || o == OpJMPL || o == OpRETT:
		s = s.Add(UnitBranch).Add(UnitALU)
	case o.IsTicc():
		s = s.Add(UnitBranch).Add(UnitPSR)
	case o == OpSLL || o == OpSRL || o == OpSRA:
		s = s.Add(UnitShifter)
	case o >= OpUMUL && o <= OpSDIVCC || o == OpMULSCC:
		s = s.Add(UnitMulDiv).Add(UnitPSR) // Y register
	case o == OpSAVE || o == OpRESTORE:
		s = s.Add(UnitALU).Add(UnitPSR) // CWP update
	case o == OpRDY || o == OpWRY || o == OpRDPSR || o == OpWRPSR ||
		o == OpRDWIM || o == OpWRWIM || o == OpRDTBR || o == OpWRTBR:
		s = s.Add(UnitPSR)
	case info.load || info.store:
		s = s.Add(UnitALU).Add(UnitLSU).Add(UnitCCtrl).Add(UnitCTag).Add(UnitCData)
	default:
		s = s.Add(UnitALU)
	}
	if info.setsCC || info.readsCC {
		s = s.Add(UnitPSR)
	}
	return s
}
