package sparc

import "testing"

func TestUnitsOfBaseline(t *testing.T) {
	// Every instruction exercises fetch, decode and the register file
	// (paper §3: "all instructions have the same probability of triggering
	// a failure at decode and fetch stages").
	for op := Op(1); op < NumOps; op++ {
		s := UnitsOf(op)
		for _, u := range []Unit{UnitFetch, UnitDecode, UnitRegfile} {
			if !s.Has(u) {
				t.Errorf("%v: missing baseline unit %v", op, u)
			}
		}
	}
}

func TestUnitsOfSpecialization(t *testing.T) {
	if !UnitsOf(OpSLL).Has(UnitShifter) || UnitsOf(OpADD).Has(UnitShifter) {
		t.Error("shifter attribution wrong")
	}
	if !UnitsOf(OpUMUL).Has(UnitMulDiv) || UnitsOf(OpXOR).Has(UnitMulDiv) {
		t.Error("muldiv attribution wrong")
	}
	if !UnitsOf(OpLD).Has(UnitLSU) || !UnitsOf(OpST).Has(UnitCData) {
		t.Error("memory attribution wrong")
	}
	if UnitsOf(OpADD).Has(UnitCData) {
		t.Error("non-memory op touches cache data")
	}
	if !UnitsOf(OpBNE).Has(UnitBranch) {
		t.Error("branch attribution wrong")
	}
	if !UnitsOf(OpADDCC).Has(UnitPSR) {
		t.Error("cc-setting op must touch PSR unit")
	}
}

func TestUnitClassification(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		if u.IsIU() == u.IsCMEM() {
			t.Errorf("%v: must be exactly one of IU or CMEM", u)
		}
	}
	if !UnitALU.IsIU() || !UnitCData.IsCMEM() {
		t.Error("sample classifications wrong")
	}
}

func TestUnitSetRoundTrip(t *testing.T) {
	s := UnitSet(0).Add(UnitALU).Add(UnitPSR).Add(UnitCTag)
	got := s.Units()
	if len(got) != 3 || got[0] != UnitALU || got[1] != UnitPSR || got[2] != UnitCTag {
		t.Errorf("Units() = %v", got)
	}
	if s.Has(UnitShifter) {
		t.Error("unexpected member")
	}
}

func TestUnitStrings(t *testing.T) {
	seen := map[string]bool{}
	for u := Unit(0); u < NumUnits; u++ {
		n := u.String()
		if n == "" || n == "unit?" || seen[n] {
			t.Errorf("bad or duplicate unit name %q", n)
		}
		seen[n] = true
	}
}
