// Package stats provides the small statistical toolkit the evaluation
// needs: descriptive summaries, linear regression and the logarithmic fit
// y = a*ln(x) + b with its coefficient of determination, which is the form
// of the paper's Figure 7 trend line (y = 0.0838*ln(x) - 0.0191,
// R^2 = 0.9246).
package stats

import (
	"errors"
	"math"
)

// ErrBadInput reports degenerate regression inputs.
var ErrBadInput = errors.New("stats: need at least two points with nonzero variance")

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of a non-empty slice.
func MinMax(xs []float64) (min, max float64) {
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// LinFit fits y = a*x + b by least squares and returns the coefficient of
// determination R^2.
func LinFit(xs, ys []float64) (a, b, r2 float64, err error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, 0, 0, ErrBadInput
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, 0, ErrBadInput
	}
	a = sxy / sxx
	b = my - a*mx
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		e := ys[i] - (a*xs[i] + b)
		ssRes += e * e
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// LogFit fits y = a*ln(x) + b by least squares on (ln x, y). All xs must
// be positive.
func LogFit(xs, ys []float64) (a, b, r2 float64, err error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return 0, 0, 0, ErrBadInput
		}
		lx[i] = math.Log(x)
	}
	return LinFit(lx, ys)
}

// EvalLog evaluates y = a*ln(x) + b.
func EvalLog(a, b, x float64) float64 { return a*math.Log(x) + b }

// Z95 is the normal z-value of a 95% two-sided confidence interval, the
// level every reported Pf interval uses.
const Z95 = 1.96

// WilsonCI returns the Wilson score confidence interval for a binomial
// proportion: the range of true failure probabilities compatible with
// observing `successes` failures in `trials` experiments at confidence
// level z (1.96 for 95%). Unlike the normal approximation it stays inside
// [0,1] and behaves sensibly at p near 0 or 1 and for small n, which is
// exactly the regime of a streaming campaign's first few experiments.
//
// With no trials the interval is the vacuous [0,1]; z <= 0 collapses to
// the point estimate. Out-of-range successes are clamped into
// [0, trials]: callers fold counts reported by remote workers, and a
// corrupted tally (negative, or exceeding its trial count) must yield a
// defensible interval instead of NaN or out-of-range bounds — this
// function feeds the adaptive stopping rule, where a NaN half-width
// would silently disable (or a negative one instantly satisfy) the
// convergence test.
func WilsonCI(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	if successes < 0 {
		successes = 0
	}
	if successes > trials {
		successes = trials
	}
	n := float64(trials)
	p := float64(successes) / n
	if z <= 0 {
		return p, p
	}
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HalfWidth returns half the width of the Wilson score interval around
// the observed proportion: the sequential-stopping statistic of adaptive
// campaigns. A campaign that stops once HalfWidth drops below a requested
// epsilon guarantees its final Pf estimate is within ±epsilon of any true
// failure probability the sample remains compatible with. With no trials
// the vacuous interval [0,1] gives 0.5.
func HalfWidth(successes, trials int, z float64) float64 {
	lo, hi := WilsonCI(successes, trials, z)
	return (hi - lo) / 2
}

// Pearson returns the Pearson correlation coefficient.
func Pearson(xs, ys []float64) (float64, error) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, ErrBadInput
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrBadInput
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
