package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, eps float64) bool { return math.Abs(a-b) < eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); v != 5 {
		t.Errorf("variance = %v", v)
	}
	if s := StdDev(xs); !close(s, math.Sqrt(5), 1e-12) {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input not zero")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %v %v", min, max)
	}
}

func TestLinFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x+3
	a, b, r2, err := LinFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(a, 2, 1e-12) || !close(b, 3, 1e-12) || !close(r2, 1, 1e-12) {
		t.Errorf("fit = %v %v %v", a, b, r2)
	}
}

func TestLinFitErrors(t *testing.T) {
	if _, _, _, err := LinFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
}

func TestLogFitRecoversModel(t *testing.T) {
	// Generate from the paper's Figure-7 model and recover it.
	const a0, b0 = 0.0838, -0.0191
	var xs, ys []float64
	for _, d := range []float64{8, 11, 18, 20, 47, 48} {
		xs = append(xs, d)
		ys = append(ys, EvalLog(a0, b0, d))
	}
	a, b, r2, err := LogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(a, a0, 1e-9) || !close(b, b0, 1e-9) || !close(r2, 1, 1e-9) {
		t.Errorf("recovered %v %v r2=%v", a, b, r2)
	}
}

func TestLogFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		x := 1 + rng.Float64()*49
		xs = append(xs, x)
		ys = append(ys, EvalLog(0.1, 0.02, x)+rng.NormFloat64()*0.005)
	}
	a, _, r2, err := LogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(a, 0.1, 0.02) {
		t.Errorf("slope = %v", a)
	}
	if r2 < 0.85 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := LogFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("x=0 accepted")
	}
}

func TestWilsonCIKnownValues(t *testing.T) {
	// Reference values computed from the closed-form Wilson score
	// interval (and cross-checked against statsmodels
	// proportion_confint(method="wilson")).
	cases := []struct {
		k, n   int
		z      float64
		lo, hi float64
	}{
		{10, 100, 1.96, 0.055229, 0.174367},
		{0, 20, 1.96, 0.000000, 0.161130},
		{20, 20, 1.96, 0.838870, 1.000000},
		{5, 10, 1.96, 0.236590, 0.763410},
		{1, 3, 1.96, 0.061490, 0.792345},
	}
	for _, c := range cases {
		lo, hi := WilsonCI(c.k, c.n, c.z)
		if !close(lo, c.lo, 1e-5) || !close(hi, c.hi, 1e-5) {
			t.Errorf("WilsonCI(%d,%d,%v) = [%.6f, %.6f], want [%.6f, %.6f]",
				c.k, c.n, c.z, lo, hi, c.lo, c.hi)
		}
	}
}

func TestWilsonCIEdges(t *testing.T) {
	if lo, hi := WilsonCI(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("no trials: [%v, %v], want [0, 1]", lo, hi)
	}
	if lo, hi := WilsonCI(3, 10, 0); lo != 0.3 || hi != 0.3 {
		t.Errorf("z=0: [%v, %v], want point estimate", lo, hi)
	}
	// The interval always contains the point estimate and stays in [0,1].
	for k := 0; k <= 25; k++ {
		lo, hi := WilsonCI(k, 25, 2.5758) // 99%
		p := float64(k) / 25
		if lo < 0 || hi > 1 || lo > p+1e-12 || hi < p-1e-12 {
			t.Errorf("k=%d: [%v, %v] does not bracket %v inside [0,1]", k, lo, hi, p)
		}
	}
}

// TestWilsonCIProperty fuzzes the interval over random — including
// out-of-range — inputs: for every (successes, trials) pair the bounds
// must stay in [0,1], bracket the clamped proportion, and never be NaN.
// Out-of-range successes reach this function when corrupted shard
// tallies are folded, and the bounds feed Converged; garbage in must
// still yield a defensible interval.
func TestWilsonCIProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		trials := rng.Intn(2000) - 100    // sometimes negative or zero
		successes := rng.Intn(3000) - 500 // sometimes negative or > trials
		z := []float64{0, 1.0, 1.96, 2.5758}[rng.Intn(4)]
		lo, hi := WilsonCI(successes, trials, z)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Fatalf("WilsonCI(%d,%d,%v) = NaN bounds", successes, trials, z)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Fatalf("WilsonCI(%d,%d,%v) = [%v,%v] outside 0 <= lo <= hi <= 1",
				successes, trials, z, lo, hi)
		}
		if trials <= 0 {
			if lo != 0 || hi != 1 {
				t.Fatalf("WilsonCI(%d,%d,%v) = [%v,%v], want the vacuous [0,1]",
					successes, trials, z, lo, hi)
			}
			continue
		}
		// The interval brackets the proportion of the clamped inputs.
		k := successes
		if k < 0 {
			k = 0
		}
		if k > trials {
			k = trials
		}
		p := float64(k) / float64(trials)
		if lo > p+1e-12 || hi < p-1e-12 {
			t.Fatalf("WilsonCI(%d,%d,%v) = [%v,%v] does not bracket %v",
				successes, trials, z, lo, hi, p)
		}
		if hw := HalfWidth(successes, trials, z); math.IsNaN(hw) || hw < 0 || hw > 0.5 {
			t.Fatalf("HalfWidth(%d,%d,%v) = %v", successes, trials, z, hw)
		}
	}
}

func TestHalfWidth(t *testing.T) {
	// No trials: the vacuous [0,1] interval has half-width 0.5.
	if hw := HalfWidth(0, 0, 1.96); hw != 0.5 {
		t.Errorf("HalfWidth(0,0) = %v, want 0.5", hw)
	}
	// z=0 collapses to the point estimate: zero width.
	if hw := HalfWidth(3, 10, 0); hw != 0 {
		t.Errorf("HalfWidth(z=0) = %v, want 0", hw)
	}
	// Consistency with WilsonCI at a known value.
	lo, hi := WilsonCI(25, 100, 1.96)
	if hw := HalfWidth(25, 100, 1.96); !close(hw, (hi-lo)/2, 1e-15) {
		t.Errorf("HalfWidth = %v, want %v", hw, (hi-lo)/2)
	}
	// The statistic shrinks as the sample grows at fixed proportion; this
	// monotone narrowing is what makes the epsilon stop rule terminate.
	prev := math.Inf(1)
	for _, n := range []int{10, 40, 160, 640} {
		hw := HalfWidth(n/4, n, 1.96)
		if hw >= prev {
			t.Errorf("HalfWidth(n=%d) = %v, not narrower than %v", n, hw, prev)
		}
		prev = hw
	}
}

func TestPearsonSigns(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(xs, up); !close(r, 1, 1e-12) {
		t.Errorf("r(up) = %v", r)
	}
	if r, _ := Pearson(xs, down); !close(r, -1, 1e-12) {
		t.Errorf("r(down) = %v", r)
	}
}

func TestLinFitResidualOrthogonalityQuick(t *testing.T) {
	// Least-squares residuals are orthogonal to x: sum(res*x) ~ 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		a, b, _, err := LinFit(xs, ys)
		if err != nil {
			return true
		}
		dot := 0.0
		for i := range xs {
			dot += (ys[i] - a*xs[i] - b) * xs[i]
		}
		return math.Abs(dot) < 1e-6*float64(n)*100*100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
