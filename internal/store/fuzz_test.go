package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"testing"
)

// frame encodes one record payload in the journal's on-disk framing.
func frame(payload []byte) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload))
}

// FuzzJournalReplay feeds arbitrary bytes through the WAL replay path
// and asserts its two crash-recovery contracts:
//
//  1. Replay never panics and never errors on in-memory input —
//     arbitrary corruption (a torn tail, a bit flip, garbage) is
//     always resolved to a longest valid prefix.
//  2. Truncation to that prefix is idempotent: replaying data[:valid]
//     reports the same records, the same valid length, and no torn
//     tail. This is exactly what OpenJournal relies on when it
//     truncates a torn file and reopens it after the next crash.
//
// The seed corpus covers the interesting frame shapes: valid records,
// torn tails with and without trailing newlines, checksum mismatches,
// short lines, and valid JSON behind a bad frame.
func FuzzJournalReplay(f *testing.F) {
	rec1 := frame([]byte(`{"seq":1,"type":"job.created","key":"k1"}`))
	rec2 := frame([]byte(`{"seq":2,"type":"job.done","key":"k1","data":{"pf":0.5}}`))

	f.Add([]byte{})
	f.Add(rec1)
	f.Add(append(append([]byte{}, rec1...), rec2...))
	f.Add(append(append([]byte{}, rec1...), rec2[:len(rec2)-5]...)) // torn mid-record
	f.Add(append(append([]byte{}, rec1...), "deadbeef {}\n"...))    // checksum mismatch
	f.Add([]byte("00000000 \n"))                                    // frame too short
	f.Add([]byte("not a journal at all"))
	f.Add([]byte("zzzzzzzz {\"seq\":1}\n")) // non-hex checksum
	corrupt := append([]byte{}, rec1...)
	corrupt[len(corrupt)/2] ^= 0x40 // bit flip inside the payload
	f.Add(append(corrupt, rec2...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn, err := replayAll(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replayAll errored on in-memory input: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("no torn tail reported but valid=%d != len=%d", valid, len(data))
		}

		// Idempotence: replaying the valid prefix — what OpenJournal
		// leaves on disk after truncation — must be a clean full replay
		// of the same records.
		recs2, valid2, torn2, err := replayAll(bytes.NewReader(data[:valid]))
		if err != nil {
			t.Fatalf("replay of valid prefix errored: %v", err)
		}
		if torn2 {
			t.Fatalf("replay of valid prefix still reports a torn tail")
		}
		if valid2 != valid {
			t.Fatalf("replay of valid prefix shrank it: %d -> %d", valid, valid2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("replay of valid prefix lost records: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			a, _ := json.Marshal(recs[i])
			b, _ := json.Marshal(recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d changed across re-replay: %s vs %s", i, a, b)
			}
		}
	})
}
