package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The journal is an append-only NDJSON write-ahead log of job and shard
// lifecycle events. Each line is framed as
//
//	<crc32-ieee, 8 hex digits> <record JSON>\n
//
// so every record is independently verifiable. Replay reads the longest
// valid prefix: the first record whose frame, checksum or JSON fails to
// parse ends the replay, and the file is truncated back to the last
// valid byte — the crash-only contract that a torn tail (the write the
// process died inside) is silently discarded rather than poisoning
// recovery. Records after a corrupt one are dropped with it: a WAL's
// suffix may depend on its prefix, so resuming past a hole could
// resurrect state the lost record had superseded.

// Record is one journal entry. Type tags the event, Key is the campaign
// content address it concerns, and Data carries the event's typed
// payload as raw JSON — the journal itself never interprets it.
type Record struct {
	Seq  int64           `json:"seq"`
	Type string          `json:"type"`
	Key  string          `json:"key,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only checksummed record log. Safe for concurrent
// use.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     int64
	torn    bool  // a torn/corrupt tail was truncated at open
	records int64 // live record count (replayed + appended - compacted)
	size    int64 // bytes of valid records on disk
	fsyncs  int64 // fsync calls issued (Sync/AppendSync/Rewrite/Close)
	// lastCompaction is when the journal contents were last rewritten
	// down to live state (stamped at open, since OpenManager compacts
	// immediately after replay).
	lastCompaction time.Time
}

// JournalStats is an observability snapshot of the journal's size and
// durability activity.
type JournalStats struct {
	// Records is the number of live records (replay survivors plus
	// appends since the last compaction).
	Records int64
	// SizeBytes is the byte length of the valid record prefix on disk.
	SizeBytes int64
	// Fsyncs counts fsync calls issued against the journal file.
	Fsyncs int64
	// LastCompaction is when Rewrite last folded the journal (or when it
	// was opened, whichever is later).
	LastCompaction time.Time
}

// Stats returns a consistent snapshot of the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Records:        j.records,
		SizeBytes:      j.size,
		Fsyncs:         j.fsyncs,
		LastCompaction: j.lastCompaction,
	}
}

// OpenJournal opens (creating if absent) the journal at path, replays
// every valid record, truncates any torn or corrupt tail, and positions
// the journal for appending. The returned records are the durable
// history the caller should fold into its recovered state.
func OpenJournal(path string) (*Journal, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, torn, err := replayAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{
		path: path, f: f, w: bufio.NewWriter(f), torn: torn,
		records: int64(len(recs)), size: valid, lastCompaction: time.Now(),
	}
	for _, r := range recs {
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
	}
	return j, recs, nil
}

// replayAll scans the journal, returning the valid records, the byte
// offset after the last valid record, and whether an invalid tail
// follows it.
func replayAll(r io.Reader) (recs []Record, valid int64, torn bool, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF && len(line) == 0 {
			return recs, valid, torn, nil
		}
		if rerr != nil && rerr != io.EOF {
			return nil, 0, false, rerr
		}
		rec, ok := parseLine(line)
		if !ok || rerr == io.EOF {
			// A record missing its newline is by definition the torn tail
			// even if its checksum happens to verify: the append was cut
			// mid-write. Anything after the first bad record is dropped
			// with it.
			return recs, valid, true, nil
		}
		recs = append(recs, rec)
		valid += int64(len(line))
	}
}

// parseLine verifies one framed journal line.
func parseLine(line []byte) (Record, bool) {
	// Frame: 8 hex digits, one space, JSON, newline.
	if len(line) < 11 || line[8] != ' ' || line[len(line)-1] != '\n' {
		return Record{}, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return Record{}, false
	}
	payload := line[9 : len(line)-1]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// TornTail reports whether OpenJournal found and truncated a torn or
// corrupt tail — worth a log line, not an error.
func (j *Journal) TornTail() bool { return j.torn }

// Append writes one record (assigning its sequence number) without
// forcing it to disk: an un-synced record lost in a crash replays as a
// torn tail, which recovery tolerates by re-deriving the lost event.
// Use AppendSync for records whose loss would redo significant work.
func (j *Journal) Append(typ, key string, data interface{}) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(typ, key, data)
}

// AppendSync writes one record and fsyncs the journal, making the event
// durable before the caller proceeds.
func (j *Journal) AppendSync(typ, key string, data interface{}) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(typ, key, data); err != nil {
		return err
	}
	return j.syncLocked()
}

func (j *Journal) appendLocked(typ, key string, data interface{}) error {
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return err
		}
		raw = b
	}
	j.seq++
	payload, err := json.Marshal(Record{Seq: j.seq, Type: typ, Key: key, Data: raw})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(j.w, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
		return err
	}
	j.records++
	j.size += int64(8 + 1 + len(payload) + 1)
	// The bufio layer exists to batch the frame writes of one record;
	// records must not linger in user-space buffers where even a clean
	// process exit could lose them.
	return j.w.Flush()
}

// Sync forces every appended record to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.fsyncs++
	return j.f.Sync()
}

// Rewrite atomically replaces the journal's contents with recs —
// compaction after recovery has folded the history. The replacement is
// written to a temp file, fsync'd and renamed over the journal, so a
// crash mid-compaction leaves the old journal intact. Sequence numbers
// are reassigned from 1.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"journal-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	var seq, size int64
	for _, r := range recs {
		seq++
		r.Seq = seq
		payload, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := fmt.Fprintf(bw, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
			tmp.Close()
			return err
		}
		size += int64(8 + 1 + len(payload) + 1)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Reopen the live handle onto the new file; the old inode is gone.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	j.w = bufio.NewWriter(f)
	j.seq = seq
	j.records = int64(len(recs))
	j.size = size
	j.fsyncs++ // the temp file's fsync above
	j.lastCompaction = time.Now()
	return nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	j.fsyncs++
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
