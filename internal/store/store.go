// Package store is the durability layer of the campaign job service: an
// on-disk content-addressed result store for completed campaign outcomes
// and an append-only, checksummed write-ahead journal for job and shard
// lifecycle events. Together they make cmd/faultserverd crash-only — a
// SIGKILL'd coordinator reopens its data directory, discards anything
// half-written (torn journal tails, unrenamed result temps, corrupt
// entries), and resumes every in-flight campaign from its last journaled
// shard. Because a campaign's shard plan and experiment expansion are
// pure functions of the normalized request (the PR-4 determinism rule),
// a recovered run is byte-identical to an uninterrupted one.
//
// The store and journal are deliberately generic: keys are SHA-256 hex
// content addresses, payloads are opaque bytes, and journal records carry
// a type tag plus a raw JSON payload. The semantics — what the records
// mean, how replay folds them — live in internal/jobs, which is also what
// keeps this package free of import cycles.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// resultHeader tags every result file with its format version; the rest
// of the header line is the SHA-256 of the payload that follows it.
const resultHeader = "repro-outcome-v1"

// Store is an on-disk content-addressed result store: one file per key
// under its directory, each self-checksummed, written via fsync'd
// temp-file + atomic rename so a crash can never leave a half-written
// entry visible. Safe for concurrent use.
type Store struct {
	dir string

	mu   sync.Mutex
	keys map[string]struct{}
}

// validKey reports whether key is a well-formed SHA-256 hex content
// address — the only names the store will touch on disk, so a corrupt
// journal can never walk the filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Open creates (or reopens) a result store rooted at dir. Every existing
// entry is integrity-checked: files whose checksum or framing do not
// verify — and temp files left behind by a crash mid-write — are deleted,
// so a reopened store only ever serves results that were fully committed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, keys: map[string]struct{}{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // crashed mid-write
			continue
		}
		if !validKey(name) {
			continue // not ours; leave it alone
		}
		if _, err := s.readVerified(name); err != nil {
			os.Remove(filepath.Join(dir, name)) // half-written or bit-rotted
			continue
		}
		s.keys[name] = struct{}{}
	}
	return s, nil
}

const tmpPrefix = ".tmp-"

// readVerified loads one entry and checks its framing and checksum.
func (s *Store) readVerified(key string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, key))
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, c := range b {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("store: %s: missing header line", key)
	}
	var sum string
	if _, err := fmt.Sscanf(string(b[:nl]), resultHeader+" %64s", &sum); err != nil {
		return nil, fmt.Errorf("store: %s: bad header: %w", key, err)
	}
	payload := b[nl+1:]
	got := sha256.Sum256(payload)
	if hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("store: %s: payload checksum mismatch", key)
	}
	return payload, nil
}

// Put durably commits payload under key: the entry is written to a temp
// file, fsync'd, then renamed into place (and the directory fsync'd), so
// readers — including a post-crash Open — see either the whole entry or
// nothing. Re-putting an existing key is a no-op: content-addressed
// payloads for the same key are byte-identical by construction.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid content key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.keys[key]; ok {
		return nil
	}
	sum := sha256.Sum256(payload)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+key+"-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := fmt.Fprintf(tmp, "%s %s\n", resultHeader, hex.EncodeToString(sum[:])); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.keys[key] = struct{}{}
	return nil
}

// Get returns the payload committed under key. A present-but-corrupt
// entry (bit rot since Open) is deleted and reported as a miss: the
// content-addressed contract is that whatever Get returns verified.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.keys[key]; !ok {
		return nil, false
	}
	payload, err := s.readVerified(key)
	if err != nil {
		delete(s.keys, key)
		os.Remove(filepath.Join(s.dir, key))
		return nil, false
	}
	return payload, true
}

// Len returns the number of committed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// Keys returns the committed content addresses in unspecified order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	return out
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Some platforms (and some filesystems) refuse to fsync directories;
// that only weakens the power-loss window, not crash consistency, so the
// error is ignored there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from directory fsync on exotic filesystems is not a
		// durability bug in our code; EIO and friends are real.
		if pe, ok := err.(*os.PathError); ok && pe.Err.Error() == "invalid argument" {
			return nil
		}
		return err
	}
	return nil
}
