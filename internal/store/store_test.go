package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func keyFor(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := keyFor("campaign-a")
	payload := []byte(`{"pf":0.25}` + "\n")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if _, ok := s.Get(keyFor("never-stored")); ok {
		t.Fatal("Get hit for a key never stored")
	}
	// Re-putting the same content address is a no-op, not an error.
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}

	// The commit must survive a reopen — that is the whole point.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("after reopen: Get = %q, %v; want stored payload", got, ok)
	}
}

func TestStoreRejectsInvalidKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"short",
		strings.Repeat("g", 64),      // non-hex
		strings.ToUpper(keyFor("x")), // uppercase hex is not canonical
		"../" + keyFor("x")[:61],     // path traversal shape
		keyFor("x") + "aa",           // too long
		strings.Repeat("a", 63) + string(rune(0)), // embedded NUL
	} {
		if err := s.Put(bad, []byte("p")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit on an invalid key", bad)
		}
	}
}

// TestStoreOpenDiscardsDamage covers the crash debris Open must clean:
// temp files from a mid-write crash, entries whose payload no longer
// matches their checksum, and entries with mangled framing. Foreign
// files that are not content addresses must be left untouched.
func TestStoreOpenDiscardsDamage(t *testing.T) {
	tests := []struct {
		name    string
		file    string // basename to create
		content func(key string, good []byte) []byte
		kept    bool // file still on disk after Open
		served  bool // Get(key) hits after Open
	}{
		{
			name: "intact entry",
			content: func(key string, good []byte) []byte {
				return good
			},
			kept: true, served: true,
		},
		{
			name: "bit rot in payload",
			content: func(key string, good []byte) []byte {
				b := append([]byte(nil), good...)
				b[len(b)-2] ^= 0x40
				return b
			},
			kept: false, served: false,
		},
		{
			name: "truncated payload",
			content: func(key string, good []byte) []byte {
				return good[:len(good)-3]
			},
			kept: false, served: false,
		},
		{
			name: "missing header line",
			content: func(key string, good []byte) []byte {
				return []byte("no newline at all")
			},
			kept: false, served: false,
		},
		{
			name: "wrong format version",
			content: func(key string, good []byte) []byte {
				return append([]byte("repro-outcome-v0 "+strings.Repeat("0", 64)+"\n"), "x"...)
			},
			kept: false, served: false,
		},
		{
			name: "crash-abandoned temp file",
			file: tmpPrefix + keyFor("tmp") + "-123",
			content: func(key string, good []byte) []byte {
				return []byte("half a result")
			},
			kept: false, served: false,
		},
		{
			name: "foreign file is not ours to delete",
			file: "README.txt",
			content: func(key string, good []byte) []byte {
				return []byte("hands off")
			},
			kept: true, served: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir := t.TempDir()
			key := keyFor(tt.name)

			// Produce a well-formed entry via a throwaway store, then
			// replace its bytes with the damaged variant.
			s0, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s0.Put(key, []byte(`{"n":1}`)); err != nil {
				t.Fatal(err)
			}
			good, err := os.ReadFile(filepath.Join(dir, key))
			if err != nil {
				t.Fatal(err)
			}
			name := tt.file
			if name == "" {
				name = key
			} else {
				os.Remove(filepath.Join(dir, key))
			}
			if err := os.WriteFile(filepath.Join(dir, name), tt.content(key, good), 0o644); err != nil {
				t.Fatal(err)
			}

			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(filepath.Join(dir, name)); (err == nil) != tt.kept {
				t.Errorf("file kept = %v, want %v", err == nil, tt.kept)
			}
			if _, ok := s.Get(key); ok != tt.served {
				t.Errorf("Get served = %v, want %v", ok, tt.served)
			}
		})
	}
}

func TestStoreGetDropsLateCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := keyFor("rots-after-open")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Rot sets in after Open verified the entry.
	if err := os.WriteFile(filepath.Join(dir, k), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	if _, err := os.Stat(filepath.Join(dir, k)); err == nil {
		t.Fatal("corrupt entry left on disk after the miss")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("second Get resurrected the deleted entry")
	}
}

func openJournalT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func appendN(t *testing.T, j *Journal, n int, start int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := j.AppendSync("event", keyFor("job"), map[string]int{"i": start + i}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, recs := openJournalT(t, path)
	if len(recs) != 0 || j.TornTail() {
		t.Fatalf("fresh journal: %d records, torn=%v", len(recs), j.TornTail())
	}
	appendN(t, j, 3, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJournalT(t, path)
	defer j2.Close()
	if len(recs) != 3 || j2.TornTail() {
		t.Fatalf("reopen: %d records, torn=%v; want 3, false", len(recs), j2.TornTail())
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) || r.Type != "event" {
			t.Fatalf("record %d = %+v", i, r)
		}
		var d struct{ I int }
		if err := json.Unmarshal(r.Data, &d); err != nil || d.I != i {
			t.Fatalf("record %d data = %s (err %v)", i, r.Data, err)
		}
	}
	// Sequence numbering continues where the durable history ended.
	if err := j2.Append("event", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, recs3, err := OpenJournal(path + ".peek"); err != nil || len(recs3) != 0 {
		t.Fatalf("sanity: %v %d", err, len(recs3))
	}
}

// TestJournalTornTail covers every flavor of invalid final record a
// crash can leave. In each case replay must keep the valid prefix,
// report the tear, truncate it, and leave the journal appendable.
func TestJournalTornTail(t *testing.T) {
	tests := []struct {
		name string
		tail func(valid []byte) []byte // appended after 3 valid records
	}{
		{"record cut mid-json", func(valid []byte) []byte {
			line := validLine(t, 99)
			return line[:len(line)/2]
		}},
		{"record missing only its newline", func(valid []byte) []byte {
			line := validLine(t, 99)
			return line[:len(line)-1] // checksum verifies; still torn
		}},
		{"checksum mismatch", func(valid []byte) []byte {
			line := validLine(t, 99)
			line[len(line)-3] ^= 1
			return line
		}},
		{"frame too short", func(valid []byte) []byte {
			return []byte("abc\n")
		}},
		{"checksum not hex", func(valid []byte) []byte {
			line := validLine(t, 99)
			copy(line, "zzzzzzzz")
			return line
		}},
		{"valid frame, invalid json", func(valid []byte) []byte {
			payload := []byte(`{"seq":4,`)
			return []byte(fmt.Sprintf("%08x %s\n", crcOf(payload), payload))
		}},
		{"valid record then garbage then valid record", func(valid []byte) []byte {
			// The record after the hole must be dropped too: a WAL suffix
			// can depend on its prefix.
			return append([]byte("????????? not a frame\n"), validLine(t, 100)...)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.ndjson")
			j, _ := openJournalT(t, path)
			appendN(t, j, 3, 0)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tt.tail(valid)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			j2, recs := openJournalT(t, path)
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want the 3 valid ones", len(recs))
			}
			if !j2.TornTail() {
				t.Fatal("torn tail not reported")
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(valid) {
				t.Fatalf("tail not truncated back to the valid prefix (%d bytes, want %d)", len(after), len(valid))
			}
			// The journal must be appendable right where the tear was.
			if err := j2.AppendSync("event", "", map[string]int{"i": 3}); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, recs := openJournalT(t, path)
			defer j3.Close()
			if len(recs) != 4 || j3.TornTail() {
				t.Fatalf("after repair+append: %d records, torn=%v; want 4, false", len(recs), j3.TornTail())
			}
			if recs[3].Seq != 4 {
				t.Fatalf("post-repair record got seq %d, want 4", recs[3].Seq)
			}
		})
	}
}

// validLine builds one correctly framed journal line outside the
// Journal API, for splicing damaged variants into test files.
func validLine(t *testing.T, seq int64) []byte {
	t.Helper()
	payload, err := json.Marshal(Record{Seq: seq, Type: "event"})
	if err != nil {
		t.Fatal(err)
	}
	return []byte(fmt.Sprintf("%08x %s\n", crcOf(payload), payload))
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func TestJournalMidFileCorruptionDropsSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, _ := openJournalT(t, path)
	appendN(t, j, 5, 0)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 3's JSON (not its newline).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	mangled := []byte(lines[2])
	mangled[12] ^= 0x20
	lines[2] = string(mangled)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJournalT(t, path)
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (corruption at record 3 drops it and everything after)", len(recs))
	}
	if !j2.TornTail() {
		t.Fatal("mid-file corruption not reported as a torn tail")
	}
}

func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, _ := openJournalT(t, path)
	appendN(t, j, 5, 0)

	// Compact down to two records; seqs are reassigned from 1.
	keep := []Record{
		{Type: "job_submitted", Key: keyFor("a"), Data: json.RawMessage(`{"nodes":4}`)},
		{Type: "shard_completed", Key: keyFor("a"), Data: json.RawMessage(`{"i":0}`)},
	}
	if err := j.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction land in the new file with continuing seqs.
	if err := j.AppendSync("job_done", keyFor("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openJournalT(t, path)
	defer j2.Close()
	if len(recs) != 3 || j2.TornTail() {
		t.Fatalf("after rewrite: %d records, torn=%v; want 3, false", len(recs), j2.TornTail())
	}
	wantTypes := []string{"job_submitted", "shard_completed", "job_done"}
	for i, r := range recs {
		if r.Type != wantTypes[i] || r.Seq != int64(i+1) {
			t.Fatalf("record %d = %+v, want type %s seq %d", i, r, wantTypes[i], i+1)
		}
	}
	// No stray compaction temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("compaction temp file %s left behind", e.Name())
		}
	}
}
