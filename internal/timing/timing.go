// Package timing implements the timing-simulator half of the instruction
// set simulator (Figure 1(b) of the paper): a trace-driven model of the
// 7-stage pipeline and the instruction/data caches that estimates cycle
// counts from the functional emulator's instruction stream.
//
// The model mirrors the structural parameters of the RTL core
// (internal/leon3): control transfers resolved at EX with a
// redirect-on-mismatch fetch, a one-cycle load-use stall, the iterative
// multiply/divide latencies and direct-mapped write-through caches. Its
// estimates track the RTL's cycle counts closely (see the package tests),
// which is what lets ISS-level campaigns reason about time — e.g. the
// propagation-latency axis of Figure 4 — without paying RTL cost.
package timing

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sparc"
)

// Parameters mirrors the RTL core's timing constants.
type Parameters struct {
	BranchPenalty int // redirect bubbles after a taken control transfer
	LoadUse       int // load-to-use stall cycles
	MulLatency    int // extra cycles of UMUL/SMUL beyond one
	DivLatency    int // extra cycles of UDIV/SDIV beyond one
	ICacheSets    int
	DCacheSets    int
	LineWords     int
	ICMissPenalty int
	DCMissPenalty int
}

// DefaultParameters matches internal/leon3.
func DefaultParameters() Parameters {
	return Parameters{
		BranchPenalty: 4,
		LoadUse:       1,
		MulLatency:    5,
		DivLatency:    33,
		ICacheSets:    64,
		DCacheSets:    64,
		LineWords:     4,
		ICMissPenalty: 3,
		DCMissPenalty: 4,
	}
}

// Estimate is the timing simulator's output.
type Estimate struct {
	Insts         uint64
	Cycles        uint64
	ICacheMisses  uint64
	DCacheMisses  uint64
	LoadUseStalls uint64
	BranchFlushes uint64
	MulDivCycles  uint64
}

// CPI returns cycles per instruction.
func (e Estimate) CPI() float64 {
	if e.Insts == 0 {
		return 0
	}
	return float64(e.Cycles) / float64(e.Insts)
}

func (e Estimate) String() string {
	return fmt.Sprintf("timing{%d insts, %d cycles, CPI %.2f, ic$ %d, dc$ %d}",
		e.Insts, e.Cycles, e.CPI(), e.ICacheMisses, e.DCacheMisses)
}

// cache is a direct-mapped tag model.
type cache struct {
	tags  []uint32
	valid []bool
	sets  int
	line  int
}

func newCache(sets, lineWords int) *cache {
	return &cache{tags: make([]uint32, sets), valid: make([]bool, sets), sets: sets, line: lineWords * 4}
}

// access returns true on hit and fills the line otherwise.
func (c *cache) access(addr uint32) bool {
	lineAddr := addr / uint32(c.line)
	idx := int(lineAddr) % c.sets
	tag := lineAddr / uint32(c.sets)
	if c.valid[idx] && c.tags[idx] == tag {
		return true
	}
	c.valid[idx] = true
	c.tags[idx] = tag
	return false
}

// Simulator couples the functional emulator to the timing model.
type Simulator struct {
	Params Parameters
}

// New returns a timing simulator with the default parameters.
func New() *Simulator { return &Simulator{Params: DefaultParameters()} }

// Simulate runs the program functionally and accumulates the timing
// estimate from its instruction stream.
func (s *Simulator) Simulate(p *asm.Program, maxInsts uint64) (Estimate, error) {
	m := mem.NewMemory()
	m.LoadImage(p.Origin, p.Image)
	bus := mem.NewBus(m)
	cpu := iss.New(bus, p.Entry)

	par := s.Params
	ic := newCache(par.ICacheSets, par.LineWords)
	dc := newCache(par.DCacheSets, par.LineWords)

	var est Estimate
	lastPC := cpu.PC
	expectSeq := cpu.PC
	var lastWasLoad bool
	var lastLoadRd, lastLoadRd2 int

	cpu.OnInst = func(pc uint32, in sparc.Inst) {
		est.Cycles++ // base CPI of 1

		// Instruction cache.
		if !ic.access(pc) {
			est.ICacheMisses++
			est.Cycles += uint64(par.ICMissPenalty)
		}

		// Discontinuity beyond the architectural delay slot means the
		// RTL's prefetcher paid bubbles: short forward targets are still
		// inside the sequential prefetch window (penalty = distance in
		// words), everything else costs a full redirect.
		if pc != expectSeq {
			est.BranchFlushes++
			dist := int64(pc-expectSeq) / 4
			pen := par.BranchPenalty
			if dist > 0 && dist < int64(par.BranchPenalty) {
				pen = int(dist)
			}
			est.Cycles += uint64(pen)
		}
		expectSeq = pc + 4
		lastPC = pc
		_ = lastPC

		// Load-use dependency against the previous instruction.
		if lastWasLoad {
			uses := func(r int) bool {
				if r == 0 {
					return false
				}
				return r == lastLoadRd || r == lastLoadRd2
			}
			stall := uses(in.Rs1)
			if !in.Imm && uses(in.Rs2) {
				stall = true
			}
			if in.Op.IsStore() && uses(in.Rd) {
				stall = true
			}
			if stall {
				est.LoadUseStalls++
				est.Cycles += uint64(par.LoadUse)
			}
		}
		lastWasLoad = in.Op.IsLoad()
		if lastWasLoad {
			lastLoadRd = in.Rd
			lastLoadRd2 = -1
			if in.Op == sparc.OpLDD {
				lastLoadRd2 = in.Rd | 1
			}
		}

		// Data cache: loads stall on miss; stores are write-through with
		// no allocate.
		if in.Op.IsMemory() {
			// Reconstruct the effective address from the emulator state
			// (operands were read before execution in the same step, so
			// the registers still hold the source values only for
			// non-overwriting ops; use the bus trace instead for loads).
			addr := cpu.Reg(in.Rs1)
			if in.Imm {
				addr += uint32(in.Simm13)
			} else {
				addr += cpu.Reg(in.Rs2)
			}
			if in.Op.IsLoad() {
				if !dc.access(addr) {
					est.DCacheMisses++
					est.Cycles += uint64(par.DCMissPenalty)
				}
			}
		}

		// Iterative multiply/divide occupancy.
		switch in.Op {
		case sparc.OpUMUL, sparc.OpUMULCC, sparc.OpSMUL, sparc.OpSMULCC:
			est.MulDivCycles += uint64(par.MulLatency)
			est.Cycles += uint64(par.MulLatency)
		case sparc.OpUDIV, sparc.OpUDIVCC, sparc.OpSDIV, sparc.OpSDIVCC:
			est.MulDivCycles += uint64(par.DivLatency)
			est.Cycles += uint64(par.DivLatency)
		}
	}

	st := cpu.Run(maxInsts)
	if st != iss.StatusExited {
		return est, fmt.Errorf("timing: program did not exit: %v", st)
	}
	est.Insts = cpu.Icount
	// Annulled delay slots occupy a pipeline slot without executing.
	est.Cycles += cpu.Annulled
	// Pipeline fill.
	est.Cycles += 4
	return est, nil
}
