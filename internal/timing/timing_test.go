package timing

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/leon3"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// TestEstimateTracksRTL validates the timing simulator against the RTL
// core's actual cycle counts on every workload: the trace-driven model
// must stay within 15% (the paper's premise that ISS-level timing is
// accurate enough for early-stage reasoning).
func TestEstimateTracksRTL(t *testing.T) {
	sim := New()
	for _, name := range workloads.Names() {
		cfg := workloads.Config{}
		if name != "excerptA" && name != "excerptB" {
			cfg.Iterations = 2
		}
		w, err := workloads.Build(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := sim.Simulate(w.Program, 10_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := mem.NewMemory()
		m.LoadImage(w.Program.Origin, w.Program.Image)
		core := leon3.New(mem.NewBus(m), w.Program.Entry)
		if st := core.Run(100_000_000); st != iss.StatusExited {
			t.Fatalf("%s: RTL %v", name, st)
		}
		ratio := float64(est.Cycles) / float64(core.Cycles())
		t.Logf("%-10s est=%7d rtl=%7d ratio=%.3f (%v)", name, est.Cycles, core.Cycles(), ratio, est)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: timing estimate off by %.1f%%", name, 100*(ratio-1))
		}
		if est.Insts != core.Icount {
			t.Errorf("%s: inst count %d vs RTL %d", name, est.Insts, core.Icount)
		}
	}
}

func TestEstimateComponentsPlausible(t *testing.T) {
	sim := New()
	w, err := workloads.Build("membench", workloads.Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	est, err := sim.Simulate(w.Program, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if est.DCacheMisses == 0 {
		t.Error("membench with cold caches must miss")
	}
	if est.BranchFlushes == 0 {
		t.Error("loops must cause redirect flushes")
	}
	if est.CPI() < 1 {
		t.Errorf("CPI %.2f below 1", est.CPI())
	}
}

func TestMulDivLatencyAccounting(t *testing.T) {
	sim := New()
	w, err := workloads.Build("a2time", workloads.Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	est, err := sim.Simulate(w.Program, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// a2time does one umul and one udiv per element: 128 elements at 2
	// iterations -> at least 128*(5+33) muldiv cycles.
	if est.MulDivCycles < 128*38 {
		t.Errorf("muldiv cycles = %d", est.MulDivCycles)
	}
}

func TestCacheModelBasics(t *testing.T) {
	c := newCache(4, 4) // 4 sets, 16-byte lines
	if c.access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.access(0x100c) {
		t.Error("same line missed")
	}
	if c.access(0x1040) {
		t.Error("conflicting line hit") // 0x1040 maps 4 lines later -> set 0
	}
	if c.access(0x1000) {
		t.Error("evicted line still hit")
	}
}

func TestParametersDefaultMatchesRTLConstants(t *testing.T) {
	p := DefaultParameters()
	if p.ICacheSets != 64 || p.DCacheSets != 64 || p.LineWords != 4 {
		t.Error("cache geometry drifted from internal/leon3")
	}
	if p.MulLatency != 5 || p.DivLatency != 33 {
		t.Error("muldiv latencies drifted from internal/leon3")
	}
}
